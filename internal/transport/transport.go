// Package transport implements a reliable, in-order byte stream over a
// lossy netem path — the stand-in for the TCP connection between the
// Kafka producer and the cluster in the paper's testbed.
//
// The model keeps the mechanisms that matter for the paper's findings:
// MSS segmentation, cumulative acknowledgements, an adaptive
// retransmission timeout (RFC 6298-style SRTT/RTTVAR with exponential
// backoff), fast retransmit on duplicate ACKs, and Reno-style congestion
// control (slow start, congestion avoidance, multiplicative decrease).
// Those are exactly the behaviours Sec. IV of the paper attributes the
// observed reliability shapes to: graceful goodput degradation up to
// roughly 8 % packet loss followed by timeout-dominated collapse, and
// round-trip inflation that triggers application-level retries.
package transport

import (
	"errors"
	"fmt"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
)

// Errors surfaced to users of a connection.
var (
	// ErrBroken is reported after a segment exhausts its retransmission
	// budget; the connection must be Reset before further use.
	ErrBroken = errors.New("transport: connection broken")
	// ErrBufferFull is returned by Send when the send buffer limit would
	// be exceeded.
	ErrBufferFull = errors.New("transport: send buffer full")
)

// Config tunes a connection. The zero value is usable: DefaultConfig
// values are substituted for zero fields.
type Config struct {
	// MSS is the maximum segment payload in bytes.
	MSS int
	// SegmentOverhead models IP+TCP header bytes added to every segment
	// on the wire.
	SegmentOverhead int
	// AckSize is the wire size of a pure acknowledgement packet.
	AckSize int
	// InitialCwnd is the initial congestion window in segments.
	InitialCwnd int
	// MaxWindow caps the send window in segments (receiver window).
	MaxWindow int
	// MinRTO, MaxRTO, InitialRTO bound the retransmission timeout.
	MinRTO     time.Duration
	MaxRTO     time.Duration
	InitialRTO time.Duration
	// MaxRetries is the per-segment retransmission budget before the
	// connection is declared broken.
	MaxRetries int
	// DupAckThreshold triggers fast retransmit (TCP's classic 3).
	DupAckThreshold int
	// SendBufferLimit bounds bytes buffered per endpoint (0 = unlimited).
	SendBufferLimit int
	// DelayedAck enables RFC 1122-style delayed acknowledgements: an ack
	// is sent for every second in-order segment, or after this delay,
	// whichever comes first. Out-of-order and duplicate segments are
	// acknowledged immediately (they feed fast retransmit). 0 disables
	// delaying; every segment is acked at once.
	DelayedAck time.Duration
	// Obs attaches the per-run observability bundle. nil disables
	// metrics and tracing for this connection.
	Obs *obs.Obs
}

// DefaultConfig mirrors common Linux TCP constants scaled to the
// experiments' millisecond regime.
func DefaultConfig() Config {
	return Config{
		MSS:             1460,
		SegmentOverhead: 40,
		AckSize:         40,
		InitialCwnd:     10,
		MaxWindow:       64,
		MinRTO:          200 * time.Millisecond,
		MaxRTO:          60 * time.Second,
		InitialRTO:      1 * time.Second,
		MaxRetries:      15, // Linux tcp_retries2

		DupAckThreshold: 3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.SegmentOverhead <= 0 {
		c.SegmentOverhead = d.SegmentOverhead
	}
	if c.AckSize <= 0 {
		c.AckSize = d.AckSize
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = d.InitialCwnd
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = d.MaxWindow
	}
	if c.MinRTO <= 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = d.InitialRTO
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.DupAckThreshold <= 0 {
		c.DupAckThreshold = d.DupAckThreshold
	}
	return c
}

// Stats counts transport-level activity on one endpoint.
type Stats struct {
	SegmentsSent    uint64
	Retransmissions uint64
	FastRetransmits uint64
	Timeouts        uint64
	AcksSent        uint64
	BytesDelivered  uint64
	SRTT            time.Duration
	RTO             time.Duration
}

// dataPkt is a pooled in-flight data packet. It is recycled on its final
// netem delivery (see deliverDataPkt); copies dropped by the network are
// reclaimed by the garbage collector instead.
type dataPkt struct {
	from    *Endpoint
	gen     uint64
	seq     int64
	payload []byte
}

// ackPkt is a pooled in-flight pure acknowledgement.
type ackPkt struct {
	from *Endpoint
	gen  uint64
	ack  int64
}

// deliverDataPkt fires at the far end of the netem link. Fields are
// copied out before the packet struct is recycled; the payload buffer
// itself is recycled separately, by the receiver, once its bytes are
// consumed in order (see deliver).
func deliverDataPkt(a any, last bool) {
	p := a.(*dataPkt)
	from, gen, seq, payload := p.from, p.gen, p.seq, p.payload
	if last {
		from.putDataPkt(p)
	}
	if from.genSent != gen {
		return
	}
	from.peer.receiveData(seq, payload)
}

func deliverAckPkt(a any, last bool) {
	p := a.(*ackPkt)
	from, gen, ack := p.from, p.gen, p.ack
	if last {
		from.putAckPkt(p)
	}
	if from.genSent != gen {
		return
	}
	from.peer.receiveAck(ack)
}

// bufPool recycles MSS-sized segment payload buffers. One pool is shared
// by both endpoints of a Conn: the sender draws a buffer, the receiver
// returns it after consuming the bytes, all on the single DES goroutine.
type bufPool struct {
	mss  int
	free [][]byte
}

func (p *bufPool) get(n int) []byte {
	if k := len(p.free); k > 0 {
		b := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		return b[:n]
	}
	return make([]byte, n, p.mss)
}

// put returns a buffer to the pool. Buffers that did not come from the
// pool (wrong capacity) are left to the garbage collector.
func (p *bufPool) put(b []byte) {
	if cap(b) == p.mss {
		p.free = append(p.free, b[:0])
	}
}

// segMeta tracks an in-flight segment at the sender.
type segMeta struct {
	seq     int64
	size    int
	sentAt  time.Duration
	retries int
	// rttEligible is false after a retransmission (Karn's algorithm: no
	// RTT sample from retransmitted segments).
	rttEligible bool
}

// Endpoint is one side of a connection. Not safe for concurrent use; the
// DES is single-threaded.
type Endpoint struct {
	name string
	sim  *des.Simulator
	cfg  Config
	out  *netem.Link // link towards the peer
	peer *Endpoint

	// Sender state. sendBuf holds accepted bytes; the prefix below
	// sendHead is already acknowledged and is reclaimed by compacting in
	// place when the buffer needs to grow, so steady-state sending reuses
	// one backing array instead of reallocating per send.
	sendBuf   []byte
	sendHead  int   // index of the first live byte in sendBuf
	sndUna    int64 // oldest unacknowledged byte
	sndNxt    int64 // next byte to segment
	bufBase   int64 // byte offset of sendBuf[sendHead]
	inFlight  []*segMeta
	freeMeta  []*segMeta // segMeta free list
	freeData  []*dataPkt // dataPkt free list
	freeAck   []*ackPkt  // ackPkt free list
	bufs      *bufPool   // payload buffers, shared with the peer
	cwnd      float64
	ssthresh  float64
	rto       time.Duration
	srtt      time.Duration
	rttvar    time.Duration
	backoff   int
	dupAcks   int
	timer     *des.Timer
	broken    bool
	brokenErr error

	// Receiver state.
	rcvNxt      int64
	unackedSegs int              // in-order segments since the last ack (delayed-ack mode)
	ackTimer    *des.Timer       // delayed-ack flush
	ooo         map[int64][]byte // out-of-order segments keyed by seq
	onRecv      func([]byte)
	onErr       func(error)
	stats       Stats
	genSent     uint64 // connection generation, bumped by Reset to kill stale timers

	// Observability (nil-safe handles; see internal/obs).
	cSegSent     *obs.Counter
	cRetransmits *obs.Counter
	cFastRetrans *obs.Counter
	cRTOTimeouts *obs.Counter
	gRTOMax      *obs.Gauge
	cAcksSent    *obs.Counter
	cConnBreaks  *obs.Counter
	trace        *obs.Tracer
	lastCwnd     int // last traced integer cwnd, to emit cwnd_change on transitions only
}

// Conn is a duplex connection: the Client endpoint sends on path.Fwd and
// the Server endpoint on path.Rev.
type Conn struct {
	Client  *Endpoint
	Server  *Endpoint
	onReset []func()
}

// OnReset registers a callback invoked after every Reset, letting layers
// that keep per-connection parsing state (frame splitters) start fresh as
// they would on a new socket.
func (c *Conn) OnReset(fn func()) {
	if fn != nil {
		c.onReset = append(c.onReset, fn)
	}
}

// NewConn builds a connection over the path. No handshake is modelled;
// the paper's experiments hold connections open for their whole duration.
func NewConn(sim *des.Simulator, path *netem.Path, cfg Config) (*Conn, error) {
	if sim == nil || path == nil {
		return nil, fmt.Errorf("transport: nil simulator or path")
	}
	cfg = cfg.withDefaults()
	client := newEndpoint("client", sim, cfg, path.Fwd)
	server := newEndpoint("server", sim, cfg, path.Rev)
	client.peer = server
	server.peer = client
	pool := &bufPool{mss: cfg.MSS}
	client.bufs = pool
	server.bufs = pool
	return &Conn{Client: client, Server: server}, nil
}

func (e *Endpoint) getMeta() *segMeta {
	if n := len(e.freeMeta); n > 0 {
		m := e.freeMeta[n-1]
		e.freeMeta[n-1] = nil
		e.freeMeta = e.freeMeta[:n-1]
		*m = segMeta{}
		return m
	}
	return &segMeta{}
}

func (e *Endpoint) putMeta(m *segMeta) { e.freeMeta = append(e.freeMeta, m) }
func (e *Endpoint) putDataPkt(p *dataPkt) {
	*p = dataPkt{}
	e.freeData = append(e.freeData, p)
}
func (e *Endpoint) putAckPkt(p *ackPkt) {
	*p = ackPkt{}
	e.freeAck = append(e.freeAck, p)
}

func (e *Endpoint) getDataPkt() *dataPkt {
	if n := len(e.freeData); n > 0 {
		p := e.freeData[n-1]
		e.freeData[n-1] = nil
		e.freeData = e.freeData[:n-1]
		return p
	}
	return &dataPkt{}
}

func (e *Endpoint) getAckPkt() *ackPkt {
	if n := len(e.freeAck); n > 0 {
		p := e.freeAck[n-1]
		e.freeAck[n-1] = nil
		e.freeAck = e.freeAck[:n-1]
		return p
	}
	return &ackPkt{}
}

func newEndpoint(name string, sim *des.Simulator, cfg Config, out *netem.Link) *Endpoint {
	o := cfg.Obs
	e := &Endpoint{
		name:     name,
		sim:      sim,
		cfg:      cfg,
		out:      out,
		cwnd:     float64(cfg.InitialCwnd),
		ssthresh: float64(cfg.MaxWindow),
		rto:      cfg.InitialRTO,
		ooo:      make(map[int64][]byte),

		cSegSent:     o.Counter(obs.MSegmentsSent),
		cRetransmits: o.Counter(obs.MRetransmits),
		cFastRetrans: o.Counter(obs.MFastRetransmits),
		cRTOTimeouts: o.Counter(obs.MRTOTimeouts),
		gRTOMax:      o.Gauge(obs.MRTOMaxNs),
		cAcksSent:    o.Counter(obs.MAcksSent),
		cConnBreaks:  o.Counter(obs.MConnBreaks),
		trace:        o.Tracer(),
		lastCwnd:     cfg.InitialCwnd,
	}
	e.timer = des.NewTimer(sim, e.onRTO)
	e.ackTimer = des.NewTimer(sim, e.flushAck)
	return e
}

// Reset discards all state on both endpoints, emulating a reconnect after
// a broken connection. Buffered and in-flight bytes are lost, exactly as
// an application sees when it reopens a TCP socket.
func (c *Conn) Reset() {
	c.Client.reset()
	c.Server.reset()
	for _, fn := range c.onReset {
		fn()
	}
}

func (e *Endpoint) reset() {
	e.timer.Stop()
	e.genSent++
	e.sendBuf = e.sendBuf[:0]
	e.sendHead = 0
	e.sndUna, e.sndNxt, e.bufBase = 0, 0, 0
	for i, m := range e.inFlight {
		e.putMeta(m)
		e.inFlight[i] = nil
	}
	e.inFlight = e.inFlight[:0]
	e.cwnd = float64(e.cfg.InitialCwnd)
	e.ssthresh = float64(e.cfg.MaxWindow)
	e.rto = e.cfg.InitialRTO
	e.srtt, e.rttvar = 0, 0
	e.backoff = 0
	e.dupAcks = 0
	e.broken = false
	e.brokenErr = nil
	e.rcvNxt = 0
	e.unackedSegs = 0
	e.ackTimer.Stop()
	clear(e.ooo)
	e.lastCwnd = e.cfg.InitialCwnd
	// Peer receiver state resets on its own endpoint's reset.
}

// OnReceive registers the in-order delivery callback. Chunks arrive in
// stream order with no gaps; boundaries are arbitrary. The chunk is only
// valid for the duration of the callback — the buffer is recycled for
// future segments — so callers that keep the bytes must copy them (as a
// real TCP reader copies out of the kernel buffer).
func (e *Endpoint) OnReceive(fn func([]byte)) { e.onRecv = fn }

// OnBroken registers the callback invoked once when the connection
// breaks.
func (e *Endpoint) OnBroken(fn func(error)) { e.onErr = fn }

// Broken reports whether the endpoint's sender has given up.
func (e *Endpoint) Broken() bool { return e.broken }

// InjectFailure forcibly breaks the endpoint as if its retransmission
// budget had run out — the chaos engine's forced-connection-reset fault.
// The OnBroken callback fires as for an organic break, so the client's
// normal reconnect path takes over. No-op on an already-broken endpoint.
func (e *Endpoint) InjectFailure(reason string) {
	if e.broken {
		return
	}
	e.fail(fmt.Errorf("%w: injected reset: %s", ErrBroken, reason))
}

// Stats returns a snapshot including the current SRTT and RTO.
func (e *Endpoint) Stats() Stats {
	s := e.stats
	s.SRTT = e.srtt
	s.RTO = e.rto
	return s
}

// Probe returns the sender state a timeline sampler reads: the
// instantaneous congestion window, RTT estimate and in-flight count
// plus cumulative segment counters.
func (e *Endpoint) Probe() obs.TransportProbe {
	return obs.TransportProbe{
		Cwnd:         e.cwnd,
		SRTT:         e.srtt,
		RTO:          e.rto,
		InFlight:     len(e.inFlight),
		SegmentsSent: e.stats.SegmentsSent,
		Retransmits:  e.stats.Retransmissions,
		RTOTimeouts:  e.stats.Timeouts,
	}
}

// BufferedBytes returns bytes accepted by Send but not yet acknowledged.
func (e *Endpoint) BufferedBytes() int {
	return int(e.bufBase + int64(len(e.sendBuf)-e.sendHead) - e.sndUna)
}

// Send queues data for reliable delivery to the peer. The data is copied.
func (e *Endpoint) Send(data []byte) error {
	if e.broken {
		return e.brokenErr
	}
	if e.cfg.SendBufferLimit > 0 && e.BufferedBytes()+len(data) > e.cfg.SendBufferLimit {
		return ErrBufferFull
	}
	// Compact the acknowledged prefix back to the start of the backing
	// array when growth would otherwise reallocate: steady-state traffic
	// then cycles through a single buffer.
	if e.sendHead > 0 && len(e.sendBuf)+len(data) > cap(e.sendBuf) {
		n := copy(e.sendBuf, e.sendBuf[e.sendHead:])
		e.sendBuf = e.sendBuf[:n]
		e.sendHead = 0
	}
	e.sendBuf = append(e.sendBuf, data...)
	e.pump()
	return nil
}

// windowSegs returns how many segments may be in flight right now.
func (e *Endpoint) windowSegs() int {
	w := int(e.cwnd)
	if w < 1 {
		w = 1
	}
	if w > e.cfg.MaxWindow {
		w = e.cfg.MaxWindow
	}
	return w
}

// pump segments buffered bytes onto the wire while the window allows.
func (e *Endpoint) pump() {
	for !e.broken && len(e.inFlight) < e.windowSegs() {
		off := e.sendHead + int(e.sndNxt-e.bufBase)
		if off >= len(e.sendBuf) {
			return // nothing new to send
		}
		n := len(e.sendBuf) - off
		if n > e.cfg.MSS {
			n = e.cfg.MSS
		}
		payload := e.bufs.get(n)
		copy(payload, e.sendBuf[off:off+n])
		m := e.getMeta()
		m.seq, m.size, m.sentAt, m.rttEligible = e.sndNxt, n, e.sim.Now(), true
		e.inFlight = append(e.inFlight, m)
		e.sndNxt += int64(n)
		e.transmit(m, payload)
		if !e.timer.Armed() {
			e.timer.Reset(e.rto)
		}
	}
}

// traceCwnd emits a cwnd_change event when the integer congestion window
// moved since the last emission. Called after every cwnd adjustment so the
// trace shows the Reno sawtooth without one event per ack.
func (e *Endpoint) traceCwnd() {
	if e.trace == nil {
		return
	}
	if w := int(e.cwnd); w != e.lastCwnd {
		e.lastCwnd = w
		e.trace.Emit(obs.LayerTransport, obs.EvCwndChange, 0, int64(w), int64(e.ssthresh), e.name)
	}
}

func (e *Endpoint) transmit(m *segMeta, payload []byte) {
	e.stats.SegmentsSent++
	e.cSegSent.Inc()
	e.trace.Emit(obs.LayerTransport, obs.EvSegmentSend, uint64(m.seq), int64(m.size), int64(m.retries), e.name)
	p := e.getDataPkt()
	p.from, p.gen, p.seq, p.payload = e, e.genSent, m.seq, payload
	e.out.SendFn(m.size+e.cfg.SegmentOverhead, deliverDataPkt, p)
}

// retransmit resends the oldest unacked segment. Every in-flight segment
// loses RTT eligibility (Karn's algorithm, conservative form): their
// cumulative acks are delayed by this recovery, so their samples would
// measure head-of-line blocking rather than path RTT.
func (e *Endpoint) retransmit(m *segMeta) {
	m.retries++
	for _, f := range e.inFlight {
		f.rttEligible = false
	}
	m.sentAt = e.sim.Now()
	e.stats.Retransmissions++
	e.cRetransmits.Inc()
	e.trace.Emit(obs.LayerTransport, obs.EvSegmentRetransmit, uint64(m.seq), int64(m.size), int64(m.retries), e.name)
	off := e.sendHead + int(m.seq-e.bufBase)
	payload := e.bufs.get(m.size)
	copy(payload, e.sendBuf[off:off+m.size])
	e.transmit(m, payload)
}

// onRTO handles a retransmission timeout: back off, shrink the window,
// resend the earliest segment.
func (e *Endpoint) onRTO() {
	if e.broken || len(e.inFlight) == 0 {
		return
	}
	e.stats.Timeouts++
	e.cRTOTimeouts.Inc()
	m := e.inFlight[0]
	if m.retries >= e.cfg.MaxRetries {
		e.fail(fmt.Errorf("%w: segment seq=%d exceeded %d retries", ErrBroken, m.seq, e.cfg.MaxRetries))
		return
	}
	// RFC 5681: ssthresh = max(flight/2, 2 segments); cwnd back to 1.
	e.ssthresh = float64(len(e.inFlight)) / 2
	if e.ssthresh < 2 {
		e.ssthresh = 2
	}
	e.cwnd = 1
	e.backoff++
	e.rto *= 2
	if e.rto > e.cfg.MaxRTO {
		e.rto = e.cfg.MaxRTO
	}
	e.gRTOMax.SetMax(int64(e.rto))
	e.trace.Emit(obs.LayerTransport, obs.EvRTOBackoff, 0, int64(e.rto), int64(e.backoff), e.name)
	e.traceCwnd()
	e.dupAcks = 0
	e.retransmit(m)
	e.timer.Reset(e.rto)
}

func (e *Endpoint) fail(err error) {
	e.broken = true
	e.brokenErr = err
	e.cConnBreaks.Inc()
	if e.trace != nil {
		e.trace.Emit(obs.LayerTransport, obs.EvConnBroken, 0, 0, 0, e.name+": "+err.Error())
	}
	e.timer.Stop()
	for i, m := range e.inFlight {
		e.putMeta(m)
		e.inFlight[i] = nil
	}
	e.inFlight = e.inFlight[:0]
	if e.onErr != nil {
		e.onErr(err)
	}
}

// receiveData runs at this endpoint when a data packet from the peer
// lands; it acknowledges and delivers in-order bytes.
func (e *Endpoint) receiveData(seq int64, payload []byte) {
	inOrder := false
	switch {
	case seq == e.rcvNxt:
		inOrder = true
		e.deliver(payload)
		// Drain any out-of-order segments now contiguous.
		for {
			p, ok := e.ooo[e.rcvNxt]
			if !ok {
				break
			}
			delete(e.ooo, e.rcvNxt)
			e.deliver(p)
		}
	case seq > e.rcvNxt:
		e.ooo[seq] = payload
	default:
		// Duplicate of already-delivered data (spurious retransmission or
		// a netem-duplicated copy): re-ack and drop. The buffer is NOT
		// returned to the pool — the consumed copy already recycled it (or
		// will), and a double-put would hand the same buffer to two future
		// segments.
	}
	if e.cfg.DelayedAck <= 0 || !inOrder || len(e.ooo) > 0 {
		// Immediate ack: delaying disabled, or the segment was
		// out-of-order/duplicate (the sender needs dup acks promptly for
		// fast retransmit), or a reordering gap is open.
		e.flushAck()
		return
	}
	e.unackedSegs++
	if e.unackedSegs >= 2 {
		e.flushAck()
		return
	}
	if !e.ackTimer.Armed() {
		e.ackTimer.Reset(e.cfg.DelayedAck)
	}
}

// flushAck emits the pending cumulative acknowledgement now.
func (e *Endpoint) flushAck() {
	e.unackedSegs = 0
	e.ackTimer.Stop()
	e.sendAck()
}

func (e *Endpoint) deliver(payload []byte) {
	e.rcvNxt += int64(len(payload))
	e.stats.BytesDelivered += uint64(len(payload))
	if e.onRecv != nil {
		e.onRecv(payload)
	}
	// The in-order copy is consumed exactly once; any duplicate of this
	// segment arrives with a stale seq and never touches the buffer, so
	// it is safe to recycle here. The pool is shared with the sender.
	e.bufs.put(payload)
}

// sendAck emits a pure cumulative acknowledgement to the peer. It rides
// this endpoint's outbound link, contending with outbound data — the
// bandwidth-preemption effect Sec. IV-A describes.
func (e *Endpoint) sendAck() {
	e.stats.AcksSent++
	e.cAcksSent.Inc()
	p := e.getAckPkt()
	p.from, p.gen, p.ack = e, e.genSent, e.rcvNxt
	e.out.SendFn(e.cfg.AckSize, deliverAckPkt, p)
}

// receiveAck processes a cumulative ack arriving at this endpoint's
// sender.
func (e *Endpoint) receiveAck(ack int64) {
	if e.broken {
		return
	}
	if ack <= e.sndUna {
		// Duplicate ack.
		if len(e.inFlight) == 0 {
			return
		}
		e.dupAcks++
		if e.dupAcks == e.cfg.DupAckThreshold {
			// Fast retransmit + multiplicative decrease (simplified Reno:
			// no explicit fast-recovery inflation).
			e.stats.FastRetransmits++
			e.cFastRetrans.Inc()
			e.trace.Emit(obs.LayerTransport, obs.EvFastRetransmit, uint64(e.inFlight[0].seq), 0, 0, e.name)
			m := e.inFlight[0]
			if m.retries >= e.cfg.MaxRetries {
				e.fail(fmt.Errorf("%w: segment seq=%d exceeded %d retries", ErrBroken, m.seq, e.cfg.MaxRetries))
				return
			}
			e.ssthresh = e.cwnd / 2
			if e.ssthresh < 2 {
				e.ssthresh = 2
			}
			e.cwnd = e.ssthresh
			e.traceCwnd()
			e.retransmit(m)
			e.timer.Reset(e.rto)
		}
		return
	}

	// New data acknowledged: the ack clock is running again, so undo any
	// timeout backoff by restoring the RTO computed from the smoothed
	// estimates (Linux recomputes the RTO on every ack the same way).
	e.dupAcks = 0
	e.backoff = 0
	if e.srtt > 0 {
		e.recomputeRTO()
	}
	acked := 0
	// RTT sampling follows timestamp-style measurement: one sample per
	// cumulative ack, taken from the most recently transmitted segment it
	// covers and never from a retransmitted one (Karn's algorithm).
	// Sampling older segments would record head-of-line blocking time
	// spent behind a loss recovery as if it were path RTT.
	var sampleAt time.Duration = -1
	for acked < len(e.inFlight) {
		m := e.inFlight[acked]
		if m.seq+int64(m.size) > ack {
			break
		}
		if m.rttEligible && m.sentAt > sampleAt {
			sampleAt = m.sentAt
		}
		e.putMeta(m)
		acked++
	}
	if acked > 0 {
		// Compact in place instead of reslicing off the front, so the
		// backing array's capacity keeps being reused.
		n := copy(e.inFlight, e.inFlight[acked:])
		for j := n; j < len(e.inFlight); j++ {
			e.inFlight[j] = nil
		}
		e.inFlight = e.inFlight[:n]
	}
	if sampleAt >= 0 {
		e.updateRTT(e.sim.Now() - sampleAt)
	}
	e.sndUna = ack
	// Release acknowledged bytes: advance the head; the prefix is
	// reclaimed by compaction in Send when the buffer next needs room.
	drop := int(e.sndUna - e.bufBase)
	if drop > 0 {
		if drop > len(e.sendBuf)-e.sendHead {
			drop = len(e.sendBuf) - e.sendHead
		}
		e.sendHead += drop
		e.bufBase += int64(drop)
		if e.sendHead == len(e.sendBuf) {
			e.sendBuf = e.sendBuf[:0]
			e.sendHead = 0
		}
	}
	// Congestion window growth.
	for i := 0; i < acked; i++ {
		if e.cwnd < e.ssthresh {
			e.cwnd++ // slow start
		} else {
			e.cwnd += 1 / e.cwnd // congestion avoidance
		}
	}
	if e.cwnd > float64(e.cfg.MaxWindow) {
		e.cwnd = float64(e.cfg.MaxWindow)
	}
	e.traceCwnd()
	if len(e.inFlight) == 0 {
		e.timer.Stop()
	} else {
		e.timer.Reset(e.rto)
	}
	e.pump()
}

// updateRTT applies RFC 6298 smoothing.
func (e *Endpoint) updateRTT(sample time.Duration) {
	if sample < 0 {
		return
	}
	if e.srtt == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		diff := e.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + sample) / 8
	}
	e.recomputeRTO()
}

func (e *Endpoint) recomputeRTO() {
	rto := e.srtt + 4*e.rttvar
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	e.rto = rto
	e.gRTOMax.SetMax(int64(rto))
}
