package transport

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/netem"
	"kafkarel/internal/stats"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0)) }

// testConn builds a duplex conn over symmetric links with the given delay
// (ms) and loss probability.
func testConn(t testing.TB, sim *des.Simulator, delayMs, loss float64, seed uint64, cfg Config) *Conn {
	t.Helper()
	mk := func(s uint64) netem.Config {
		c := netem.Config{Bandwidth: 100e6} // 100 Mbit/s
		if delayMs > 0 {
			c.Delay = stats.Constant{Value: delayMs}
		}
		if loss > 0 {
			l, err := stats.NewBernoulli(loss, rng(s))
			if err != nil {
				t.Fatal(err)
			}
			c.Loss = l
		}
		return c
	}
	path, err := netem.NewPath(sim, mk(seed), mk(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewConn(sim, path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func pattern(n int, seed uint64) []byte {
	r := rng(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.UintN(256))
	}
	return b
}

func TestLosslessDelivery(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 10, 0, 1, Config{})
	var got bytes.Buffer
	conn.Server.OnReceive(func(b []byte) { got.Write(b) })
	want := pattern(100_000, 42)
	if err := conn.Client.Send(want); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("received %d bytes, want %d; content mismatch", got.Len(), len(want))
	}
	if conn.Client.Stats().Retransmissions != 0 {
		t.Errorf("retransmissions on a lossless link: %d", conn.Client.Stats().Retransmissions)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 5, 0, 2, Config{})
	var s2c, c2s bytes.Buffer
	conn.Server.OnReceive(func(b []byte) { c2s.Write(b) })
	conn.Client.OnReceive(func(b []byte) { s2c.Write(b) })
	up := pattern(30_000, 1)
	down := pattern(50_000, 2)
	if err := conn.Client.Send(up); err != nil {
		t.Fatal(err)
	}
	if err := conn.Server.Send(down); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c2s.Bytes(), up) {
		t.Error("client→server stream corrupted")
	}
	if !bytes.Equal(s2c.Bytes(), down) {
		t.Error("server→client stream corrupted")
	}
}

func TestReliableUnderLoss(t *testing.T) {
	for _, loss := range []float64{0.05, 0.15, 0.30} {
		loss := loss
		sim := des.New()
		conn := testConn(t, sim, 20, loss, 3, Config{})
		var got bytes.Buffer
		conn.Server.OnReceive(func(b []byte) { got.Write(b) })
		want := pattern(50_000, 7)
		if err := conn.Client.Send(want); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("loss=%v: received %d/%d bytes or corrupted", loss, got.Len(), len(want))
		}
		if conn.Client.Stats().Retransmissions == 0 {
			t.Errorf("loss=%v: no retransmissions recorded", loss)
		}
	}
}

func TestRTTEstimation(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 50, 0, 4, Config{})
	conn.Server.OnReceive(func([]byte) {})
	if err := conn.Client.Send(pattern(200_000, 9)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	srtt := conn.Client.Stats().SRTT
	// Path RTT is 100 ms plus negligible serialisation.
	if srtt < 90*time.Millisecond || srtt > 130*time.Millisecond {
		t.Errorf("SRTT = %v, want ≈100ms", srtt)
	}
	if rto := conn.Client.Stats().RTO; rto < 200*time.Millisecond {
		t.Errorf("RTO = %v below MinRTO", rto)
	}
}

func TestGoodputDegradesWithLoss(t *testing.T) {
	transferTime := func(loss float64) time.Duration {
		sim := des.New()
		conn := testConn(t, sim, 10, loss, 5, Config{})
		done := time.Duration(-1)
		total := 0
		conn.Server.OnReceive(func(b []byte) {
			total += len(b)
			if total >= 200_000 {
				done = sim.Now()
			}
		})
		if err := conn.Client.Send(pattern(200_000, 11)); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if done < 0 {
			t.Fatalf("loss=%v: transfer incomplete", loss)
		}
		return done
	}
	t0 := transferTime(0)
	t10 := transferTime(0.10)
	t30 := transferTime(0.30)
	if t10 < 2*t0 {
		t.Errorf("10%% loss too cheap: %v vs %v lossless", t10, t0)
	}
	if t30 < 3*t10 {
		t.Errorf("no timeout-dominated collapse: 30%% loss %v vs 10%% loss %v", t30, t10)
	}
}

func TestBrokenAfterRetryBudget(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 10, 1.0, 6, Config{MaxRetries: 3, MaxRTO: time.Second})
	var gotErr error
	conn.Client.OnBroken(func(err error) { gotErr = err })
	if err := conn.Client.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !conn.Client.Broken() {
		t.Fatal("connection not broken under 100% loss")
	}
	if !errors.Is(gotErr, ErrBroken) {
		t.Errorf("OnBroken err = %v, want ErrBroken", gotErr)
	}
	if err := conn.Client.Send([]byte("more")); !errors.Is(err, ErrBroken) {
		t.Errorf("Send on broken conn = %v, want ErrBroken", err)
	}
	if conn.Client.Stats().Timeouts == 0 {
		t.Error("no timeouts recorded before breaking")
	}
}

func TestResetRestoresService(t *testing.T) {
	sim := des.New()
	path, err := netem.NewPath(sim, netem.Config{}, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := stats.NewBernoulli(1, rng(8))
	if err != nil {
		t.Fatal(err)
	}
	path.SetLoss(loss)
	conn, err := NewConn(sim, path, Config{MaxRetries: 2, MaxRTO: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	conn.Server.OnReceive(func(b []byte) { got.Write(b) })
	if err := conn.Client.Send([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !conn.Client.Broken() {
		t.Fatal("expected broken connection")
	}
	// Heal the network and reconnect.
	path.SetLoss(stats.NoLoss{})
	conn.Reset()
	if err := conn.Client.Send([]byte("hello again")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got.String() != "hello again" {
		t.Errorf("post-reset received %q", got.String())
	}
}

func TestSendBufferLimit(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 1000, 0, 9, Config{SendBufferLimit: 1000})
	conn.Server.OnReceive(func([]byte) {})
	if err := conn.Client.Send(make([]byte, 900)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Client.Send(make([]byte, 200)); !errors.Is(err, ErrBufferFull) {
		t.Errorf("Send = %v, want ErrBufferFull", err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Buffer drained after acks; room again.
	if err := conn.Client.Send(make([]byte, 200)); err != nil {
		t.Errorf("Send after drain = %v", err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFastRetransmitOnIsolatedDrop(t *testing.T) {
	// Drop exactly one data segment mid-stream; dup acks from later
	// segments must trigger fast retransmit well before the RTO.
	sim := des.New()
	path, err := netem.NewPath(sim,
		netem.Config{Delay: stats.Constant{Value: 10}, Bandwidth: 100e6},
		netem.Config{Delay: stats.Constant{Value: 10}, Bandwidth: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	drop := &nthLoss{n: 5} // drop the 5th forward packet
	path.Fwd.SetLoss(drop)
	conn, err := NewConn(sim, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	conn.Server.OnReceive(func(b []byte) { got.Write(b) })
	want := pattern(30_000, 13) // ~21 segments
	if err := conn.Client.Send(want); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("stream corrupted after isolated drop")
	}
	st := conn.Client.Stats()
	if st.FastRetransmits != 1 {
		t.Errorf("FastRetransmits = %d, want 1", st.FastRetransmits)
	}
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (fast retransmit should beat RTO)", st.Timeouts)
	}
}

// nthLoss drops exactly the n-th packet offered (1-based).
type nthLoss struct {
	n     int
	count int
}

func (l *nthLoss) Drop() bool {
	l.count++
	return l.count == l.n
}

func (l *nthLoss) Rate() float64 { return 0 }

func TestAckTrafficCountsOnReverseLink(t *testing.T) {
	sim := des.New()
	path, err := netem.NewPath(sim, netem.Config{}, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewConn(sim, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn.Server.OnReceive(func([]byte) {})
	if err := conn.Client.Send(pattern(100_000, 17)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	acks := conn.Server.Stats().AcksSent
	if acks == 0 {
		t.Fatal("no acks sent")
	}
	if got := path.Rev.Counters().Offered; got < acks {
		t.Errorf("reverse link saw %d packets, want >= %d acks", got, acks)
	}
}

func TestCongestionWindowCapsInFlight(t *testing.T) {
	sim := des.New()
	// Huge RTT so everything the window allows is sent before any ack.
	conn := testConn(t, sim, 10_000, 0, 19, Config{InitialCwnd: 4, MaxWindow: 8})
	conn.Server.OnReceive(func([]byte) {})
	if err := conn.Client.Send(pattern(100_000, 23)); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(900 * time.Millisecond); err != nil { // before the 1s initial RTO
		t.Fatal(err)
	}
	if sent := conn.Client.Stats().SegmentsSent; sent != 4 {
		t.Errorf("segments sent before any ack = %d, want initial cwnd 4", sent)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewConnValidation(t *testing.T) {
	if _, err := NewConn(nil, nil, Config{}); err == nil {
		t.Error("nil args accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	var zero Config
	got := zero.withDefaults()
	want := DefaultConfig()
	if got != want {
		t.Errorf("withDefaults() = %+v, want %+v", got, want)
	}
	// Explicit values survive.
	custom := Config{MSS: 500, MaxRetries: 3}
	got = custom.withDefaults()
	if got.MSS != 500 || got.MaxRetries != 3 {
		t.Errorf("custom fields overwritten: %+v", got)
	}
	if got.AckSize != want.AckSize {
		t.Errorf("zero fields not defaulted: %+v", got)
	}
}

// Property: for any loss rate up to 30% and any message sizes, the
// delivered bytes are a prefix of the sent stream (no corruption, no
// reordering); the stream is complete unless the connection legitimately
// broke after exhausting its retry budget.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(seed uint64, lossRaw, sizeRaw uint8) bool {
		loss := float64(lossRaw%31) / 100
		size := 1000 + int(sizeRaw)*500
		sim := des.New()
		conn := testConn(t, sim, 5, loss, seed, Config{})
		var got bytes.Buffer
		conn.Server.OnReceive(func(b []byte) { got.Write(b) })
		want := pattern(size, seed^0xDEAD)
		if err := conn.Client.Send(want); err != nil {
			return false
		}
		if err := sim.Run(); err != nil {
			return false
		}
		if conn.Client.Broken() {
			return bytes.HasPrefix(want, got.Bytes())
		}
		return bytes.Equal(got.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: many small Sends deliver the same stream as one big Send.
func TestPropertyChunkedSendsEqualStream(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		sim := des.New()
		conn := testConn(t, sim, 2, 0.05, seed, Config{})
		var got bytes.Buffer
		conn.Server.OnReceive(func(b []byte) { got.Write(b) })
		r := rng(seed)
		var want []byte
		chunks := int(n%20) + 1
		for i := 0; i < chunks; i++ {
			c := pattern(r.IntN(4000)+1, r.Uint64())
			want = append(want, c...)
			if err := conn.Client.Send(c); err != nil {
				return false
			}
		}
		if err := sim.Run(); err != nil {
			return false
		}
		return bytes.Equal(got.Bytes(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransfer1MBLossless(b *testing.B) {
	data := pattern(1_000_000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := des.New()
		conn := testConn(b, sim, 10, 0, 1, Config{})
		conn.Server.OnReceive(func([]byte) {})
		if err := conn.Client.Send(data); err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransfer1MBLossy(b *testing.B) {
	data := pattern(1_000_000, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := des.New()
		conn := testConn(b, sim, 10, 0.1, uint64(i), Config{})
		conn.Server.OnReceive(func([]byte) {})
		if err := conn.Client.Send(data); err != nil {
			b.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStaleDeliveryAfterResetIsDropped(t *testing.T) {
	// Packets in flight when the connection resets must not corrupt the
	// new connection's stream (generation filtering).
	sim := des.New()
	path, err := netem.NewPath(sim,
		netem.Config{Delay: stats.Constant{Value: 500}},
		netem.Config{Delay: stats.Constant{Value: 500}})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewConn(sim, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	conn.Server.OnReceive(func(b []byte) { got.Write(b) })
	if err := conn.Client.Send([]byte("old-stream")); err != nil {
		t.Fatal(err)
	}
	// Reset while the segment is still in flight, then send new data.
	sim.Schedule(100*time.Millisecond, func() {
		conn.Reset()
		if err := conn.Client.Send([]byte("new-stream")); err != nil {
			t.Error(err)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got.String() != "new-stream" {
		t.Errorf("received %q; stale pre-reset delivery leaked", got.String())
	}
}

func TestOnResetCallbacksFire(t *testing.T) {
	sim := des.New()
	path, err := netem.NewPath(sim, netem.Config{}, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewConn(sim, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	conn.OnReset(func() { calls++ })
	conn.OnReset(func() { calls++ })
	conn.OnReset(nil) // ignored
	conn.Reset()
	conn.Reset()
	if calls != 4 {
		t.Errorf("reset callbacks ran %d times, want 4", calls)
	}
}

func TestCongestionWindowGrowsAfterAcks(t *testing.T) {
	// Slow start doubles the window per RTT: the second flight must be
	// larger than the first.
	sim := des.New()
	conn := testConn(t, sim, 50, 0, 31, Config{InitialCwnd: 2, MaxWindow: 64})
	conn.Server.OnReceive(func([]byte) {})
	if err := conn.Client.Send(pattern(300_000, 31)); err != nil {
		t.Fatal(err)
	}
	// First flight: 2 segments before any ack.
	if err := sim.RunUntil(90 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	first := conn.Client.Stats().SegmentsSent
	if first != 2 {
		t.Fatalf("first flight = %d segments, want 2", first)
	}
	// After one RTT of acks, the window must have grown.
	if err := sim.RunUntil(190 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	second := conn.Client.Stats().SegmentsSent
	if second < first+3 {
		t.Errorf("window did not grow in slow start: %d -> %d", first, second)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedBytesAccounting(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 100, 0, 33, Config{})
	conn.Server.OnReceive(func([]byte) {})
	if conn.Client.BufferedBytes() != 0 {
		t.Error("fresh endpoint has buffered bytes")
	}
	if err := conn.Client.Send(make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	if got := conn.Client.BufferedBytes(); got != 5000 {
		t.Errorf("BufferedBytes after send = %d, want 5000", got)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := conn.Client.BufferedBytes(); got != 0 {
		t.Errorf("BufferedBytes after full ack = %d, want 0", got)
	}
}

func TestEmulatorDuplicationIsTransparent(t *testing.T) {
	// NetEm-style packet duplication must not corrupt the application
	// stream: the receiver drops already-delivered segments and re-acks.
	sim := des.New()
	path, err := netem.NewPath(sim,
		netem.Config{Delay: stats.Constant{Value: 5}, DuplicateProb: 0.3, DuplicateRand: rng(41)},
		netem.Config{Delay: stats.Constant{Value: 5}, DuplicateProb: 0.3, DuplicateRand: rng(42)})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewConn(sim, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	conn.Server.OnReceive(func(b []byte) { got.Write(b) })
	want := pattern(60_000, 43)
	if err := conn.Client.Send(want); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("stream corrupted by duplication: %d/%d bytes", got.Len(), len(want))
	}
	if path.Fwd.Counters().Duplicated == 0 {
		t.Error("no duplicates were injected; test vacuous")
	}
}

func TestDelayedAckHalvesAckTraffic(t *testing.T) {
	run := func(delayed time.Duration) (acks, segs uint64) {
		sim := des.New()
		conn := testConn(t, sim, 10, 0, 51, Config{DelayedAck: delayed})
		conn.Server.OnReceive(func([]byte) {})
		if err := conn.Client.Send(pattern(200_000, 51)); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return conn.Server.Stats().AcksSent, conn.Client.Stats().SegmentsSent
	}
	immediateAcks, segs := run(0)
	delayedAcks, segsDelayed := run(40 * time.Millisecond)
	if segs != segsDelayed {
		t.Logf("segment counts differ: %d vs %d (window dynamics)", segs, segsDelayed)
	}
	if float64(delayedAcks) > 0.7*float64(immediateAcks) {
		t.Errorf("delayed acks = %d, immediate = %d; expected ≈half", delayedAcks, immediateAcks)
	}
	if delayedAcks == 0 {
		t.Error("no acks at all")
	}
}

func TestDelayedAckTimerFlushesLoneSegment(t *testing.T) {
	// A single segment with nothing following must still be acked after
	// the delayed-ack timeout, not stall the sender until RTO.
	sim := des.New()
	conn := testConn(t, sim, 5, 0, 52, Config{DelayedAck: 40 * time.Millisecond})
	conn.Server.OnReceive(func([]byte) {})
	if err := conn.Client.Send([]byte("lone")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := conn.Server.Stats().AcksSent; got != 1 {
		t.Errorf("acks = %d, want 1", got)
	}
	// The ack must arrive via the delayed-ack timer (~50ms), not the
	// sender's 1s initial RTO.
	if conn.Client.Stats().Timeouts != 0 {
		t.Error("sender hit RTO waiting for a delayed ack")
	}
	if sim.Now() > 200*time.Millisecond {
		t.Errorf("quiesced at %v; delayed ack flushed too late", sim.Now())
	}
}

func TestDelayedAckKeepsStreamCorrectUnderLoss(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 10, 0.12, 53, Config{DelayedAck: 40 * time.Millisecond})
	var got bytes.Buffer
	conn.Server.OnReceive(func(b []byte) { got.Write(b) })
	want := pattern(80_000, 53)
	if err := conn.Client.Send(want); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("stream corrupted with delayed acks under loss: %d/%d", got.Len(), len(want))
	}
}

func TestInjectFailureBreaksAndResetRestores(t *testing.T) {
	sim := des.New()
	conn := testConn(t, sim, 0, 0, 1, Config{})
	var brokenErr error
	conn.Client.OnBroken(func(err error) { brokenErr = err })
	conn.Client.InjectFailure("chaos conn_reset")
	if brokenErr == nil || !errors.Is(brokenErr, ErrBroken) {
		t.Fatalf("OnBroken got %v, want ErrBroken", brokenErr)
	}
	if !conn.Client.Broken() {
		t.Fatal("endpoint not marked broken")
	}
	// Injecting again is a no-op (callback must not re-fire).
	brokenErr = nil
	conn.Client.InjectFailure("again")
	if brokenErr != nil {
		t.Fatal("InjectFailure re-fired OnBroken on a broken endpoint")
	}
	conn.Reset()
	if conn.Client.Broken() {
		t.Fatal("Reset did not clear broken state")
	}
	var got []byte
	conn.Server.OnReceive(func(b []byte) { got = append(got, b...) })
	if err := conn.Client.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("post-reset transfer got %q", got)
	}
}
