package netem

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/stats"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0)) }

func TestZeroConfigDeliversImmediately(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration = -1
	l.Send(100, func() { at = sim.Now() })
	if at != -1 {
		t.Fatal("deliver ran synchronously")
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Errorf("delivered at %v, want 0", at)
	}
	c := l.Counters()
	if c.Offered != 1 || c.Delivered != 1 || c.BytesDelivery != 100 {
		t.Errorf("counters = %+v", c)
	}
}

func TestConstantDelay(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{Delay: stats.Constant{Value: 50}})
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	l.Send(10, func() { at = sim.Now() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 50*time.Millisecond {
		t.Errorf("delivered at %v, want 50ms", at)
	}
}

func TestBandwidthSerialisation(t *testing.T) {
	sim := des.New()
	// 8000 bit/s: a 1000-byte packet takes exactly 1 s to serialise.
	l, err := NewLink(sim, Config{Bandwidth: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var first, second time.Duration
	l.Send(1000, func() { first = sim.Now() })
	l.Send(1000, func() { second = sim.Now() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if first != time.Second {
		t.Errorf("first delivery at %v, want 1s", first)
	}
	if second != 2*time.Second {
		t.Errorf("second delivery at %v, want 2s (queued behind first)", second)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{Bandwidth: 8000, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 5; i++ {
		l.Send(1000, func() { delivered++ })
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	c := l.Counters()
	if delivered != 2 {
		t.Errorf("delivered %d, want 2", delivered)
	}
	if c.LostOverflow != 3 {
		t.Errorf("LostOverflow = %d, want 3", c.LostOverflow)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{Bandwidth: 8000, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	l.Send(1000, func() { delivered++ })
	// Offer the next packet after the first fully serialised: queue has
	// room again.
	sim.Schedule(1500*time.Millisecond, func() {
		l.Send(1000, func() { delivered++ })
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Errorf("delivered %d, want 2", delivered)
	}
	if l.Counters().LostOverflow != 0 {
		t.Errorf("LostOverflow = %d, want 0", l.Counters().LostOverflow)
	}
}

func TestLossModelDrops(t *testing.T) {
	sim := des.New()
	loss, err := stats.NewBernoulli(0.5, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLink(sim, Config{Loss: loss})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(1, func() { delivered++ })
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := float64(delivered) / n
	if math.Abs(got-0.5) > 0.03 {
		t.Errorf("delivery ratio = %v, want ≈0.5", got)
	}
	c := l.Counters()
	if c.LostRandom+c.Delivered != n {
		t.Errorf("counters do not add up: %+v", c)
	}
}

func TestFIFOUnderRandomDelay(t *testing.T) {
	sim := des.New()
	d, err := stats.NewUniform(0, 100, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLink(sim, Config{Delay: d})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 200; i++ {
		i := i
		l.Send(1, func() { order = append(order, i) })
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered delivery at position %d: %v", i, v)
		}
	}
}

func TestAllowReorderCanReorder(t *testing.T) {
	sim := des.New()
	d, err := stats.NewUniform(0, 100, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLink(sim, Config{Delay: d, AllowReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 200; i++ {
		i := i
		l.Send(1, func() { order = append(order, i) })
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	reordered := false
	for i, v := range order {
		if v != i {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("uniform [0,100)ms delay with AllowReorder never reordered 200 packets")
	}
}

func TestSetDelayAndLossMidFlight(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{Delay: stats.Constant{Value: 10}})
	if err != nil {
		t.Fatal(err)
	}
	var times []time.Duration
	l.Send(1, func() { times = append(times, sim.Now()) })
	sim.Schedule(time.Second, func() {
		l.SetDelay(stats.Constant{Value: 200})
		l.Send(1, func() { times = append(times, sim.Now()) })
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 10*time.Millisecond {
		t.Errorf("first at %v, want 10ms", times[0])
	}
	if times[1] != time.Second+200*time.Millisecond {
		t.Errorf("second at %v, want 1.2s", times[1])
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(nil, Config{}); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := NewLink(des.New(), Config{Bandwidth: -1}); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := NewLink(des.New(), Config{QueueLimit: -1}); err == nil {
		t.Error("negative queue limit accepted")
	}
}

func TestSendPanicsOnBadArgs(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative size", func() { l.Send(-1, func() {}) })
	mustPanic("nil deliver", func() { l.Send(1, nil) })
}

func TestPathDuplex(t *testing.T) {
	sim := des.New()
	p, err := NewPath(sim,
		Config{Delay: stats.Constant{Value: 30}},
		Config{Delay: stats.Constant{Value: 5}})
	if err != nil {
		t.Fatal(err)
	}
	var reqAt, respAt time.Duration
	p.Fwd.Send(100, func() {
		reqAt = sim.Now()
		p.Rev.Send(10, func() { respAt = sim.Now() })
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if reqAt != 30*time.Millisecond {
		t.Errorf("request at %v, want 30ms", reqAt)
	}
	if respAt != 35*time.Millisecond {
		t.Errorf("response at %v, want 35ms", respAt)
	}
}

func TestPathSetLossSharesModel(t *testing.T) {
	sim := des.New()
	p, err := NewPath(sim, Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ge, err := stats.NewGilbertElliot(0.3, 0.3, 1, 0, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	p.SetLoss(ge)
	if p.Fwd.LossRate() != p.Rev.LossRate() {
		t.Error("directions report different loss rates")
	}
	if p.Fwd.LossRate() != ge.Rate() {
		t.Errorf("LossRate = %v, want %v", p.Fwd.LossRate(), ge.Rate())
	}
}

// Property: with loss p and n offered packets, Offered == Delivered +
// LostRandom and the delivery ratio is within 5 sigma of 1-p.
func TestPropertyLossAccounting(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := float64(pRaw%90) / 100
		sim := des.New()
		loss, err := stats.NewBernoulli(p, rng(seed))
		if err != nil {
			return false
		}
		l, err := NewLink(sim, Config{Loss: loss})
		if err != nil {
			return false
		}
		const n = 2000
		delivered := 0
		for i := 0; i < n; i++ {
			l.Send(1, func() { delivered++ })
		}
		if err := sim.Run(); err != nil {
			return false
		}
		c := l.Counters()
		if c.Offered != n || c.Delivered+c.LostRandom != n {
			return false
		}
		sigma := math.Sqrt(p*(1-p)/n) + 1e-9
		return math.Abs(float64(delivered)/n-(1-p)) <= 5*sigma+0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTraceApplySwitchesConditions(t *testing.T) {
	sim := des.New()
	p, err := NewPath(sim, Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := Trace{
		{Start: 0, Delay: stats.Constant{Value: 10}, Loss: stats.NoLoss{}},
		{Start: time.Second, Delay: stats.Constant{Value: 100}, Loss: stats.NoLoss{}},
	}
	if err := tr.Apply(sim, p); err != nil {
		t.Fatal(err)
	}
	var times []time.Duration
	p.Fwd.Send(1, func() { times = append(times, sim.Now()) })
	sim.Schedule(2*time.Second, func() {
		p.Fwd.Send(1, func() { times = append(times, sim.Now()) })
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 10*time.Millisecond {
		t.Errorf("segment-1 delivery at %v, want 10ms", times[0])
	}
	if times[1] != 2*time.Second+100*time.Millisecond {
		t.Errorf("segment-2 delivery at %v, want 2.1s", times[1])
	}
}

func TestTraceApplyRejectsUnsorted(t *testing.T) {
	sim := des.New()
	p, err := NewPath(sim, Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := Trace{{Start: time.Second}, {Start: 0}}
	if err := tr.Apply(sim, p); err == nil {
		t.Error("unsorted trace accepted")
	}
	var empty Trace
	if err := empty.Apply(nil, p); err == nil {
		t.Error("nil simulator accepted")
	}
}

func TestConditionAt(t *testing.T) {
	tr := Trace{
		{Start: 0, Delay: stats.Constant{Value: 1}},
		{Start: time.Minute, Delay: stats.Constant{Value: 2}},
	}
	seg, ok := tr.ConditionAt(30 * time.Second)
	if !ok || seg.Delay.Sample() != 1 {
		t.Errorf("ConditionAt(30s) = %+v, %v", seg, ok)
	}
	seg, ok = tr.ConditionAt(2 * time.Minute)
	if !ok || seg.Delay.Sample() != 2 {
		t.Errorf("ConditionAt(2m) = %+v, %v", seg, ok)
	}
	early := Trace{{Start: time.Second}}
	if _, ok := early.ConditionAt(0); ok {
		t.Error("found segment before first start")
	}
}

func TestTraceSpecGenerate(t *testing.T) {
	spec := DefaultTraceSpec()
	tr, err := spec.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	wantSegments := int(spec.Duration / spec.Interval)
	if len(tr) != wantSegments {
		t.Fatalf("segments = %d, want %d", len(tr), wantSegments)
	}
	var delays, losses []float64
	for _, seg := range tr {
		delays = append(delays, seg.Delay.Sample())
		losses = append(losses, seg.Loss.Rate())
	}
	// Delay draws respect the Pareto scale floor and the 500 ms cap.
	for _, d := range delays {
		if d < spec.DelayScaleMs || d > 500 {
			t.Fatalf("delay %v outside [%v, 500]", d, spec.DelayScaleMs)
		}
	}
	// The trace must contain both calm and lossy intervals, or the
	// dynamic-configuration experiment is vacuous.
	calm, lossy := false, false
	for _, l := range losses {
		if l < 0.02 {
			calm = true
		}
		if l > 0.08 {
			lossy = true
		}
	}
	if !calm || !lossy {
		t.Errorf("trace lacks variety: calm=%v lossy=%v", calm, lossy)
	}
}

func TestTraceSpecDeterminism(t *testing.T) {
	spec := DefaultTraceSpec()
	a, err := spec.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Series(), b.Series()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("segment %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestTraceSpecValidation(t *testing.T) {
	bad := DefaultTraceSpec()
	bad.Duration = 0
	if _, err := bad.Generate(1); err == nil {
		t.Error("zero duration accepted")
	}
	bad = DefaultTraceSpec()
	bad.Interval = bad.Duration * 2
	if _, err := bad.Generate(1); err == nil {
		t.Error("interval > duration accepted")
	}
}

func TestSeries(t *testing.T) {
	tr := Trace{
		{Start: 0, Delay: stats.Constant{Value: 12}, Loss: stats.NoLoss{}},
		{Start: time.Second},
	}
	s := tr.Series()
	if len(s) != 2 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0].DelayMs != 12 || s[0].Loss != 0 {
		t.Errorf("point 0 = %+v", s[0])
	}
	if s[1].DelayMs != 0 { // nil delay → 0
		t.Errorf("point 1 = %+v", s[1])
	}
}

func BenchmarkLinkSend(b *testing.B) {
	sim := des.New()
	loss, err := stats.NewBernoulli(0.1, rng(1))
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewLink(sim, Config{
		Delay:     stats.Constant{Value: 10},
		Loss:      loss,
		Bandwidth: 100e6,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Send(1500, func() {})
		if i%1024 == 0 {
			if err := sim.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestDuplicationDeliversExtraCopies(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{DuplicateProb: 0.5, DuplicateRand: rng(21)})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(1, func() { delivered++ })
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	c := l.Counters()
	ratio := float64(delivered) / n
	if ratio < 1.45 || ratio > 1.55 {
		t.Errorf("delivery ratio = %v, want ≈1.5 at 50%% duplication", ratio)
	}
	if c.Duplicated == 0 {
		t.Error("no duplicates counted")
	}
	if c.Delivered != uint64(delivered) {
		t.Errorf("Delivered = %d, callbacks = %d", c.Delivered, delivered)
	}
}

func TestDuplicationValidation(t *testing.T) {
	sim := des.New()
	if _, err := NewLink(sim, Config{DuplicateProb: 1.5, DuplicateRand: rng(1)}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewLink(sim, Config{DuplicateProb: 0.5}); err == nil {
		t.Error("nil duplicate rng accepted")
	}
}

func TestFaultLossOverlay(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	l.SetFaultLoss(stats.AlwaysLoss{})
	if l.LossRate() != 1 {
		t.Errorf("LossRate under partition = %v, want 1", l.LossRate())
	}
	l.Send(10, func() { delivered++ })
	l.SetFaultLoss(nil)
	l.Send(10, func() { delivered++ })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (partition drops, clear restores)", delivered)
	}
	c := l.Counters()
	if c.LostRandom != 1 {
		t.Errorf("LostRandom = %d, want 1 (overlay drops land in LostRandom)", c.LostRandom)
	}
}

func TestFaultDelayOverlayAddsToBase(t *testing.T) {
	sim := des.New()
	l, err := NewLink(sim, Config{Delay: stats.Constant{Value: 10}})
	if err != nil {
		t.Fatal(err)
	}
	l.SetFaultDelay(stats.Constant{Value: 25})
	if pr := l.Probe(); pr.DelayMs != 35 {
		t.Errorf("Probe DelayMs = %v, want 35", pr.DelayMs)
	}
	var at time.Duration
	l.Send(10, func() { at = sim.Now() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 35*time.Millisecond {
		t.Errorf("delivered at %v, want 35ms", at)
	}
	l.SetFaultDelay(nil)
	if pr := l.Probe(); pr.DelayMs != 10 {
		t.Errorf("cleared Probe DelayMs = %v, want 10", pr.DelayMs)
	}
}

func TestPathFaultOverlayBothDirections(t *testing.T) {
	sim := des.New()
	p, err := NewPath(sim, Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.SetFaultLoss(stats.AlwaysLoss{})
	got := 0
	p.Fwd.Send(1, func() { got++ })
	p.Rev.Send(1, func() { got++ })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("delivered %d packets through a both-direction partition", got)
	}
}
