package netem

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/stats"
)

func TestLinkLossRate(t *testing.T) {
	sim := des.New()
	lossless, err := NewLink(sim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := lossless.LossRate(); got != 0 {
		t.Errorf("lossless LossRate = %v, want 0", got)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	bern, err := stats.NewBernoulli(0.19, rng)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLink(sim, Config{Loss: bern})
	if err != nil {
		t.Fatal(err)
	}
	if got := link.LossRate(); got != 0.19 {
		t.Errorf("bernoulli LossRate = %v, want 0.19", got)
	}
	ge, err := stats.NewGilbertElliot(0.02, 0.05, 0.98, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	link.SetLoss(ge)
	// Stationary rate: π_bad(1-H) + π_good(1-K) with π_bad = p/(p+r).
	piBad := 0.02 / (0.02 + 0.05)
	want := piBad*0.8 + (1-piBad)*0.02
	if got := link.LossRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("gilbert-elliot LossRate = %v, want %v", got, want)
	}
}

// TestLinkProbePureObserver pins the probe contract: probing must not
// consume randomness or advance the loss chain, so a run observed by a
// timeline is the same run.
func TestLinkProbePureObserver(t *testing.T) {
	sim := des.New()
	rng := rand.New(rand.NewPCG(3, 4))
	ge, err := stats.NewGilbertElliot(0.5, 0.5, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLink(sim, Config{Loss: ge, Delay: stats.Constant{Value: 7}})
	if err != nil {
		t.Fatal(err)
	}
	var pr obs.NetProbe
	for i := 0; i < 1000; i++ {
		pr = link.Probe()
	}
	// The chain has not advanced and the next draws are untouched: the
	// first Drop must behave exactly as on a fresh identically-seeded
	// model that was never probed.
	fresh, err := stats.NewGilbertElliot(0.5, 0.5, 1, 0, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got, want := ge.Drop(), fresh.Drop(); got != want {
			t.Fatalf("draw %d after probing = %v, fresh model = %v: Probe consumed randomness", i, got, want)
		}
	}
	if pr.GEState != 0 {
		t.Errorf("GEState = %d, want 0 (chain starts good and must not advance)", pr.GEState)
	}
	if pr.DelayMs != 7 {
		t.Errorf("DelayMs = %v, want the configured constant 7", pr.DelayMs)
	}
}

// TestGEStatePhasesViaTimeline drives a steady packet stream through a
// Gilbert-Elliot link while a timeline samples the probe, then splits
// the sampled intervals by chain state: bad-state intervals must lose
// at roughly 1-H, good-state intervals at roughly 1-K, and the fraction
// of bad samples must approach the stationary π_bad = p/(p+r). State
// dwell times (1/p and 1/r packets) are kept an order of magnitude
// longer than the sampling interval so most intervals are pure-state.
func TestGEStatePhasesViaTimeline(t *testing.T) {
	const (
		p, r = 0.002, 0.005 // per-packet transitions: dwells of 500/200 packets
		k, h = 0.99, 0.25   // delivery probabilities good/bad
	)
	sim := des.New()
	rng := rand.New(rand.NewPCG(11, 13))
	ge, err := stats.NewGilbertElliot(p, r, k, h, rng)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLink(sim, Config{Loss: ge})
	if err != nil {
		t.Fatal(err)
	}
	tl := obs.NewTimeline(20 * time.Millisecond) // 20 packets per interval
	tl.BindClock(sim)
	tl.SetProbes(link.Probe, nil, nil, nil)

	const packets = 400_000
	for i := 0; i < packets; i++ {
		at := time.Duration(i) * time.Millisecond
		sim.Schedule(at, func() { link.Send(100, func() {}) })
	}
	interval := tl.Interval()
	for at := interval; at <= packets*time.Millisecond; at += interval {
		sim.Schedule(at, tl.Sample)
	}
	if err := sim.RunUntil(packets * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var goodPkts, goodLost, badPkts, badLost, badRows, rows uint64
	for _, row := range tl.Rows() {
		if row.PktsOffered == 0 {
			continue
		}
		rows++
		switch row.GEState {
		case 0:
			goodPkts += row.PktsOffered
			goodLost += row.PktsLost
		case 1:
			badRows++
			badPkts += row.PktsOffered
			badLost += row.PktsLost
		default:
			t.Fatalf("GEState = %d, want 0 or 1 for a chain model", row.GEState)
		}
	}
	goodRate := float64(goodLost) / float64(goodPkts)
	badRate := float64(badLost) / float64(badPkts)
	// Mixed intervals (state flips mid-interval) blur both estimates
	// toward each other, so the pins are loose but strictly ordered.
	if math.Abs(goodRate-(1-k)) > 0.03 {
		t.Errorf("good-state loss = %.4f, want ≈ %.4f", goodRate, 1-k)
	}
	if math.Abs(badRate-(1-h)) > 0.15 {
		t.Errorf("bad-state loss = %.4f, want ≈ %.4f", badRate, 1-h)
	}
	if badRate < 5*goodRate {
		t.Errorf("bad-state loss %.4f not clearly above good-state %.4f", badRate, goodRate)
	}
	// Stationary occupancy of the bad state.
	piBad := p / (p + r)
	occ := float64(badRows) / float64(rows)
	if math.Abs(occ-piBad) > 0.08 {
		t.Errorf("bad-state sample occupancy = %.4f, want ≈ π_bad = %.4f", occ, piBad)
	}
	// And the empirical total must approach the configured Rate().
	total := float64(goodLost+badLost) / float64(goodPkts+badPkts)
	if math.Abs(total-ge.Rate()) > 0.02 {
		t.Errorf("total empirical loss = %.4f, want ≈ Rate() = %.4f", total, ge.Rate())
	}
}
