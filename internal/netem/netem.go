// Package netem emulates the network path between a Kafka producer and
// the cluster, playing the role NetEm plays in the paper's Docker testbed
// (Sec. III-E): configurable propagation delay, random or bursty packet
// loss, finite bandwidth with a bounded device queue, and runtime
// reconfiguration for time-varying scenarios (Fig. 9).
package netem

import (
	"fmt"
	"math/rand/v2"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/stats"
)

// Counters aggregates what happened to packets offered to a link.
type Counters struct {
	Offered       uint64 // packets handed to Send
	Delivered     uint64 // packets that reached the far end
	LostRandom    uint64 // dropped by the loss model
	LostOverflow  uint64 // dropped because the device queue was full
	Duplicated    uint64 // packets duplicated by the emulator
	BytesOffered  uint64
	BytesDelivery uint64
}

// Config describes one direction of a link. The zero value is a lossless,
// delay-free, infinite-bandwidth wire.
type Config struct {
	// Delay samples per-packet propagation delay in milliseconds.
	// nil means no propagation delay.
	Delay stats.Sampler
	// Loss decides per-packet drops. nil means no loss.
	Loss stats.LossModel
	// Bandwidth in bits per second. 0 means infinite (no serialisation
	// delay and no queue).
	Bandwidth float64
	// QueueLimit bounds the number of packets waiting for serialisation
	// when Bandwidth > 0. 0 means unlimited.
	QueueLimit int
	// AllowReorder lets a packet with a smaller sampled delay overtake an
	// earlier one. Off by default: a single TCP path through one queue
	// delivers in order, and that is what the paper's testbed exercises.
	AllowReorder bool
	// DuplicateProb duplicates a surviving packet with this probability
	// (NetEm's "duplicate" knob). The copy takes its own delay sample.
	DuplicateProb float64
	// DuplicateRand drives duplication draws; required when
	// DuplicateProb > 0.
	DuplicateRand *rand.Rand
	// Obs attaches the per-run observability bundle. nil disables
	// metrics and tracing for this link.
	Obs *obs.Obs
}

// Link is one direction of an emulated network path. It is driven by a
// des.Simulator and is not safe for concurrent use (the simulator is
// single-threaded by design).
type Link struct {
	sim  *des.Simulator
	cfg  Config
	cnt  Counters
	free time.Duration // when the serialiser becomes idle
	last time.Duration // latest delivery time handed out (FIFO enforcement)
	q    int           // packets queued for serialisation

	// Fault overlays (see SetFaultLoss / SetFaultDelay): transient
	// chaos-window conditions stacked on top of the configured models so
	// that clearing a fault restores the base configuration exactly.
	faultLoss  stats.LossModel
	faultDelay stats.Sampler

	cOffered      *obs.Counter
	cDelivered    *obs.Counter
	cBytes        *obs.Counter
	cLostRandom   *obs.Counter
	cLostOverflow *obs.Counter
	trace         *obs.Tracer

	// freeDel recycles per-copy delivery jobs: a packet in flight costs no
	// allocation in steady state. Jobs are recycled when they fire; jobs
	// for dropped copies are never created.
	freeDel []*delivery
}

// delivery is one scheduled packet copy working its way to the far end.
type delivery struct {
	l    *Link
	size int
	fn0  func()                   // Send form: plain closure
	fnA  func(arg any, last bool) // SendFn form: stable callback + arg
	arg  any
	last bool
}

func (l *Link) getDelivery() *delivery {
	if n := len(l.freeDel); n > 0 {
		d := l.freeDel[n-1]
		l.freeDel[n-1] = nil
		l.freeDel = l.freeDel[:n-1]
		return d
	}
	return &delivery{}
}

func (l *Link) putDelivery(d *delivery) {
	*d = delivery{}
	l.freeDel = append(l.freeDel, d)
}

// runDelivery fires when a packet copy reaches the far end. The job is
// recycled before the callback runs (its fields are copied out first), so
// the callback may immediately trigger further sends.
func runDelivery(a any) {
	d := a.(*delivery)
	l := d.l
	fn0, fnA, arg, size, last := d.fn0, d.fnA, d.arg, d.size, d.last
	l.putDelivery(d)
	l.cnt.Delivered++
	l.cnt.BytesDelivery += uint64(size)
	l.cDelivered.Inc()
	l.cBytes.Add(uint64(size))
	if fn0 != nil {
		fn0()
	} else {
		fnA(arg, last)
	}
}

// linkDecQ releases one device-queue slot when serialisation finishes.
func linkDecQ(a any) { a.(*Link).q-- }

// NewLink creates one direction of a path.
func NewLink(sim *des.Simulator, cfg Config) (*Link, error) {
	if sim == nil {
		return nil, fmt.Errorf("netem: nil simulator")
	}
	if cfg.Bandwidth < 0 {
		return nil, fmt.Errorf("netem: negative bandwidth %v", cfg.Bandwidth)
	}
	if cfg.QueueLimit < 0 {
		return nil, fmt.Errorf("netem: negative queue limit %d", cfg.QueueLimit)
	}
	if cfg.DuplicateProb < 0 || cfg.DuplicateProb > 1 {
		return nil, fmt.Errorf("netem: duplicate probability %v outside [0,1]", cfg.DuplicateProb)
	}
	if cfg.DuplicateProb > 0 && cfg.DuplicateRand == nil {
		return nil, fmt.Errorf("netem: duplication requires a random source")
	}
	o := cfg.Obs
	return &Link{
		sim:           sim,
		cfg:           cfg,
		cOffered:      o.Counter(obs.MNetOffered),
		cDelivered:    o.Counter(obs.MNetDelivered),
		cBytes:        o.Counter(obs.MNetBytesDelivered),
		cLostRandom:   o.Counter(obs.MNetLostRandom),
		cLostOverflow: o.Counter(obs.MNetLostOverflow),
		trace:         o.Tracer(),
	}, nil
}

// Counters returns a snapshot of the link statistics.
func (l *Link) Counters() Counters { return l.cnt }

// SetDelay swaps the propagation-delay model at runtime.
func (l *Link) SetDelay(d stats.Sampler) { l.cfg.Delay = d }

// SetLoss swaps the loss model at runtime.
func (l *Link) SetLoss(m stats.LossModel) { l.cfg.Loss = m }

// SetFaultLoss overlays a transient loss model on top of the configured
// one: a packet is dropped when either model says so. nil clears the
// overlay. Chaos fault windows (partitions, loss bursts) use this so the
// base network condition survives the window untouched.
func (l *Link) SetFaultLoss(m stats.LossModel) { l.faultLoss = m }

// SetFaultDelay overlays extra propagation delay added to the configured
// delay model's samples (a delay spike). nil clears the overlay.
func (l *Link) SetFaultDelay(d stats.Sampler) { l.faultDelay = d }

// LossRate reports the effective long-run loss probability: the
// configured model combined with any fault overlay (independent drops).
func (l *Link) LossRate() float64 {
	switch {
	case l.cfg.Loss == nil && l.faultLoss == nil:
		return 0
	case l.faultLoss == nil:
		return l.cfg.Loss.Rate()
	case l.cfg.Loss == nil:
		return l.faultLoss.Rate()
	}
	return 1 - (1-l.cfg.Loss.Rate())*(1-l.faultLoss.Rate())
}

// Probe returns the link's instantaneous state for a timeline sampler.
// It never draws from the configured models' random sources — that
// would perturb the run being observed — so the delay is reported only
// when the sampler is deterministic (stats.Constant; -1 otherwise) and
// the chain state only when the loss model is a Gilbert-Elliot chain
// (-1 otherwise; the Fig. 9 traces resample the chain per segment into
// Bernoulli models, which have no instantaneous state).
func (l *Link) Probe() obs.NetProbe {
	pr := obs.NetProbe{
		GEState:      -1,
		DelayMs:      -1,
		Offered:      l.cnt.Offered,
		Delivered:    l.cnt.Delivered,
		LostRandom:   l.cnt.LostRandom,
		LostOverflow: l.cnt.LostOverflow,
	}
	// Delay is reported when every active sampler is deterministic; a
	// fault-overlay spike adds onto the configured delay.
	pr.DelayMs = 0
	known := true
	add := func(d stats.Sampler) {
		if d == nil {
			return
		}
		if c, ok := d.(stats.Constant); ok {
			pr.DelayMs += c.Value
		} else {
			known = false
		}
	}
	add(l.cfg.Delay)
	add(l.faultDelay)
	if !known {
		pr.DelayMs = -1
	}
	pr.CfgLoss = l.LossRate()
	// Chain state: a fault overlay's burst chain takes precedence over a
	// configured one (at most one is expected to be a GE model at a time).
	for _, m := range []stats.LossModel{l.faultLoss, l.cfg.Loss} {
		if ge, ok := m.(*stats.GilbertElliot); ok {
			pr.GEState = 0
			if ge.Bad() {
				pr.GEState = 1
			}
			break
		}
	}
	return pr
}

// Send offers a packet of size bytes to the link. If the packet survives
// the loss model and the device queue, deliver fires at the far end after
// serialisation and propagation delay. Send never calls deliver
// synchronously.
func (l *Link) Send(size int, deliver func()) {
	if deliver == nil {
		panic("netem: Send with nil deliver callback")
	}
	l.send(size, deliver, nil, nil)
}

// SendFn is the allocation-free form of Send: a stable callback plus an
// opaque arg instead of a per-packet closure. The callback's last
// parameter reports whether this invocation is the packet's final
// delivery — duplication (DuplicateProb) can deliver the same arg twice,
// and resources reachable from arg may only be recycled on the last
// delivery. Copies dropped by loss or queue overflow never fire at all,
// so "last == true never arrived" simply means the garbage collector
// reclaims arg.
func (l *Link) SendFn(size int, fn func(arg any, last bool), arg any) {
	if fn == nil {
		panic("netem: SendFn with nil deliver callback")
	}
	l.send(size, nil, fn, arg)
}

func (l *Link) send(size int, deliver func(), fnA func(any, bool), arg any) {
	if size < 0 {
		panic(fmt.Sprintf("netem: negative packet size %d", size))
	}
	l.cnt.Offered++
	l.cnt.BytesOffered += uint64(size)
	l.cOffered.Inc()

	// Fault overlay first: a partition window drops everything without
	// advancing the base model's chain. Overlay drops land in LostRandom
	// so the timeline's loss accounting stays on the fixed schema.
	if (l.faultLoss != nil && l.faultLoss.Drop()) ||
		(l.cfg.Loss != nil && l.cfg.Loss.Drop()) {
		l.cnt.LostRandom++
		l.cLostRandom.Inc()
		l.trace.Emit(obs.LayerNetem, obs.EvPktLoss, 0, int64(size), 0, "")
		return
	}
	copies := 1
	if l.cfg.DuplicateProb > 0 && l.cfg.DuplicateRand.Float64() < l.cfg.DuplicateProb {
		copies = 2
		l.cnt.Duplicated++
	}
	for c := 0; c < copies; c++ {
		l.deliverOne(size, deliver, fnA, arg, c == copies-1)
	}
}

// deliverOne schedules one copy of a packet through serialisation, delay
// and FIFO ordering.
func (l *Link) deliverOne(size int, deliver func(), fnA func(any, bool), arg any, lastCopy bool) {
	now := l.sim.Now()
	txDone := now
	if l.cfg.Bandwidth > 0 {
		if l.cfg.QueueLimit > 0 && l.q >= l.cfg.QueueLimit {
			l.cnt.LostOverflow++
			l.cLostOverflow.Inc()
			l.trace.Emit(obs.LayerNetem, obs.EvPktOverflow, 0, int64(size), 0, "")
			return
		}
		start := now
		if l.free > start {
			start = l.free
		}
		tx := time.Duration(float64(size*8) / l.cfg.Bandwidth * float64(time.Second))
		txDone = start + tx
		l.free = txDone
		l.q++
		l.sim.ScheduleFunc(txDone, linkDecQ, l)
	}

	var prop time.Duration
	if l.cfg.Delay != nil {
		ms := l.cfg.Delay.Sample()
		if ms > 0 {
			prop = time.Duration(ms * float64(time.Millisecond))
		}
	}
	if l.faultDelay != nil {
		if ms := l.faultDelay.Sample(); ms > 0 {
			prop += time.Duration(ms * float64(time.Millisecond))
		}
	}
	at := txDone + prop
	if !l.cfg.AllowReorder && at < l.last {
		at = l.last
	}
	l.last = at
	d := l.getDelivery()
	d.l = l
	d.size = size
	d.fn0 = deliver
	d.fnA = fnA
	d.arg = arg
	d.last = lastCopy
	l.sim.ScheduleFunc(at, runDelivery, d)
}

// Path is a duplex producer↔cluster connection: a forward (request) and a
// reverse (response) direction.
type Path struct {
	Fwd *Link
	Rev *Link
}

// NewPath builds a duplex path with the same configuration in both
// directions but independent state (queues, loss-model chains).
func NewPath(sim *des.Simulator, fwd, rev Config) (*Path, error) {
	f, err := NewLink(sim, fwd)
	if err != nil {
		return nil, fmt.Errorf("netem: forward link: %w", err)
	}
	r, err := NewLink(sim, rev)
	if err != nil {
		return nil, fmt.Errorf("netem: reverse link: %w", err)
	}
	return &Path{Fwd: f, Rev: r}, nil
}

// SetDelay swaps the delay model on both directions.
func (p *Path) SetDelay(d stats.Sampler) {
	p.Fwd.SetDelay(d)
	p.Rev.SetDelay(d)
}

// SetLoss swaps the loss model on both directions. The two directions
// share the model instance so that a burst (Gilbert-Elliot Bad state)
// affects requests and responses together, as it would on a real duplex
// radio link.
func (p *Path) SetLoss(m stats.LossModel) {
	p.Fwd.SetLoss(m)
	p.Rev.SetLoss(m)
}

// SetFaultLoss overlays a loss model on both directions. As with
// SetLoss, the directions share the model instance so a burst affects
// requests and responses together. nil clears the overlay.
func (p *Path) SetFaultLoss(m stats.LossModel) {
	p.Fwd.SetFaultLoss(m)
	p.Rev.SetFaultLoss(m)
}

// SetFaultDelay overlays extra delay on both directions. nil clears it.
func (p *Path) SetFaultDelay(d stats.Sampler) {
	p.Fwd.SetFaultDelay(d)
	p.Rev.SetFaultDelay(d)
}

// Probe returns the duplex path's state for a timeline sampler: the
// forward (data) direction's configured delay, loss rate and chain
// state, with the packet counters summed over both directions so they
// reconcile against the run's netem metrics, which count both links.
func (p *Path) Probe() obs.NetProbe {
	pr := p.Fwd.Probe()
	rev := p.Rev.Probe()
	pr.Offered += rev.Offered
	pr.Delivered += rev.Delivered
	pr.LostRandom += rev.LostRandom
	pr.LostOverflow += rev.LostOverflow
	return pr
}
