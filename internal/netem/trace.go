package netem

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/stats"
)

// Segment is one piece of a time-varying network condition: from Start
// onward the path uses the given delay sampler and loss model.
type Segment struct {
	Start time.Duration
	Delay stats.Sampler
	Loss  stats.LossModel
}

// Trace is a piecewise-constant network condition schedule, ordered by
// Start time.
type Trace []Segment

// Apply schedules every segment switch on the simulator. Segments whose
// Start is in the simulator's past are applied immediately in order.
func (tr Trace) Apply(sim *des.Simulator, p *Path) error {
	if sim == nil || p == nil {
		return fmt.Errorf("netem: Trace.Apply with nil simulator or path")
	}
	if !sort.SliceIsSorted(tr, func(i, j int) bool { return tr[i].Start < tr[j].Start }) {
		return fmt.Errorf("netem: trace segments not sorted by start time")
	}
	for _, seg := range tr {
		seg := seg
		apply := func() {
			p.SetDelay(seg.Delay)
			p.SetLoss(seg.Loss)
		}
		if seg.Start <= sim.Now() {
			apply()
		} else {
			sim.Schedule(seg.Start, apply)
		}
	}
	return nil
}

// ConditionAt returns the segment in force at time t, or false when t
// precedes the first segment.
func (tr Trace) ConditionAt(t time.Duration) (Segment, bool) {
	var cur Segment
	found := false
	for _, seg := range tr {
		if seg.Start <= t {
			cur = seg
			found = true
		} else {
			break
		}
	}
	return cur, found
}

// TraceSpec parameterises the synthetic network of the paper's dynamic-
// configuration experiment (Fig. 9): mean delay resampled per interval
// from a Pareto distribution and loss rate from a Gilbert-Elliot chain
// sampled at interval granularity.
type TraceSpec struct {
	// Duration of the whole trace and the resampling interval.
	Duration time.Duration
	Interval time.Duration
	// Pareto delay parameters (milliseconds).
	DelayScaleMs float64
	DelayShape   float64
	// Gilbert-Elliot chain parameters for the per-interval loss process.
	GEGoodToBad float64
	GEBadToGood float64
	// Loss rates (probability) experienced while the chain is in the Good
	// and Bad states.
	GoodLoss float64
	BadLoss  float64
}

// DefaultTraceSpec reproduces the character of Fig. 9: a 10-minute trace
// resampled every 10 s; delay mostly tens of milliseconds with Pareto
// spikes past 200 ms; loss mostly near zero with bursts in the 10-25 %
// band where the paper says reconfiguration pays off.
func DefaultTraceSpec() TraceSpec {
	return TraceSpec{
		Duration:     10 * time.Minute,
		Interval:     10 * time.Second,
		DelayScaleMs: 20,
		DelayShape:   1.5,
		GEGoodToBad:  0.18,
		GEBadToGood:  0.35,
		GoodLoss:     0.005,
		BadLoss:      0.16,
	}
}

// Generate builds a concrete Trace from the spec using the given seed.
// Each segment gets a constant delay (the Pareto draw, capped at 500 ms
// like NetEm practice) and a Bernoulli loss model whose rate comes from
// the Gilbert-Elliot state with ±30 % multiplicative jitter.
func (spec TraceSpec) Generate(seed uint64) (Trace, error) {
	if spec.Duration <= 0 || spec.Interval <= 0 {
		return nil, fmt.Errorf("netem: trace spec needs positive duration and interval")
	}
	if spec.Interval > spec.Duration {
		return nil, fmt.Errorf("netem: interval %v exceeds duration %v", spec.Interval, spec.Duration)
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	pareto, err := stats.NewPareto(spec.DelayScaleMs, spec.DelayShape, rng)
	if err != nil {
		return nil, fmt.Errorf("netem: trace delay model: %w", err)
	}
	n := int(spec.Duration / spec.Interval)
	tr := make(Trace, 0, n)
	bad := false
	for i := 0; i < n; i++ {
		if bad {
			if rng.Float64() < spec.GEBadToGood {
				bad = false
			}
		} else {
			if rng.Float64() < spec.GEGoodToBad {
				bad = true
			}
		}
		rate := spec.GoodLoss
		if bad {
			rate = spec.BadLoss
		}
		rate *= 0.7 + 0.6*rng.Float64()
		if rate > 1 {
			rate = 1
		}
		loss, err := stats.NewBernoulli(rate, rng)
		if err != nil {
			return nil, fmt.Errorf("netem: trace loss model: %w", err)
		}
		delayMs := pareto.Sample()
		if delayMs > 500 {
			delayMs = 500
		}
		tr = append(tr, Segment{
			Start: time.Duration(i) * spec.Interval,
			Delay: stats.Constant{Value: delayMs},
			Loss:  loss,
		})
	}
	return tr, nil
}

// Point is one row of the Fig. 9 series: the network condition at the
// start of each interval.
type Point struct {
	At      time.Duration
	DelayMs float64
	Loss    float64
}

// Series renders the trace as (time, delay, loss) points for plotting or
// for the repro CLI's fig9 output.
func (tr Trace) Series() []Point {
	out := make([]Point, 0, len(tr))
	for _, seg := range tr {
		p := Point{At: seg.Start}
		if seg.Delay != nil {
			p.DelayMs = seg.Delay.Sample()
		}
		if seg.Loss != nil {
			p.Loss = seg.Loss.Rate()
		}
		out = append(out, p)
	}
	return out
}
