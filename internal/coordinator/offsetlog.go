package coordinator

import (
	"encoding/binary"
	"fmt"

	"kafkarel/internal/wire"
)

// The offsets log stores one commit per record, keyed for compaction by
// (group, topic, partition) — the analogue of Kafka's __consumer_offsets
// message key. The log itself is an ordinary replicated cluster topic;
// compaction is modeled at materialization time: scanning the log and
// keeping the last record per key yields exactly the compacted view, and
// the coordinator maintains that view incrementally as commits are
// acknowledged.

// commitRecord is the decoded payload of one offsets-log record.
type commitRecord struct {
	Group      string
	Topic      string
	Partition  int32
	Offset     int64
	Generation int32
}

// appendCommitRecord serialises a commit record payload:
//
//	[u16 group len][group][u16 topic len][topic]
//	[u32 partition][u64 offset][u32 generation]
func appendCommitRecord(dst []byte, r commitRecord) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Group)))
	dst = append(dst, r.Group...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Topic)))
	dst = append(dst, r.Topic...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Offset))
	return binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
}

// commitRecordSize returns the encoded payload size.
func commitRecordSize(r commitRecord) int {
	return 2 + len(r.Group) + 2 + len(r.Topic) + 4 + 8 + 4
}

// decodeCommitRecord parses a payload produced by appendCommitRecord.
// The group and topic strings are interned against the expected values
// when they match, so a recovery scan over one group's log allocates no
// strings.
func decodeCommitRecord(b []byte, internGroup, internTopic string) (commitRecord, error) {
	var r commitRecord
	var err error
	if r.Group, b, err = readCommitString(b, internGroup); err != nil {
		return r, fmt.Errorf("commit record group: %w", err)
	}
	if r.Topic, b, err = readCommitString(b, internTopic); err != nil {
		return r, fmt.Errorf("commit record topic: %w", err)
	}
	if len(b) != 16 {
		return r, fmt.Errorf("commit record tail: %w", wire.ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.Offset = int64(binary.BigEndian.Uint64(b[4:]))
	r.Generation = int32(binary.BigEndian.Uint32(b[12:]))
	return r, nil
}

func readCommitString(b []byte, intern string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, wire.ErrShortBuffer
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, wire.ErrShortBuffer
	}
	if len(intern) == n && string(b[:n]) == intern {
		return intern, b[n:], nil
	}
	return string(b[:n]), b[n:], nil
}

// compactionKey hashes (group, topic, partition) with FNV-1a into the
// wire.Record key field — the stand-in for Kafka's record key, which
// log compaction (and our last-write-wins materialization) dedups on.
// Inlined like producer.fnv1a64 so the commit hot path allocates no
// hash state.
func compactionKey(group, topic string, partition int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(group); i++ {
		h = (h ^ uint64(group[i])) * prime64
	}
	h = (h ^ 0) * prime64 // separator
	for i := 0; i < len(topic); i++ {
		h = (h ^ uint64(topic[i])) * prime64
	}
	for shift := 0; shift < 32; shift += 8 {
		h = (h ^ uint64(uint32(partition)>>shift&0xFF)) * prime64
	}
	return h
}
