package coordinator

import (
	"encoding/binary"
	"fmt"

	"kafkarel/internal/wire"
)

// The transaction-state log stores one full transaction snapshot per
// record, keyed for compaction by transactional.id — the analogue of
// Kafka's __transaction_state topic. Every state transition the
// coordinator must survive (identity grants, partition registration,
// the commit/abort decision, completion) is appended before it takes
// externally visible effect, so scanning the log and keeping the last
// record per transactional.id always reproduces the coordinator's
// durable intent: an in-doubt PrepareCommit/PrepareAbort found there is
// re-driven to completion, never rolled back.

// txnRecord is the decoded payload of one transaction-state record.
type txnRecord struct {
	Tid        string
	Pid        uint64
	Epoch      uint32
	State      int8
	Partitions []wire.TxnPartition
	Group      string
	Offsets    []wire.TxnOffset
}

// appendTxnRecord serialises a transaction snapshot:
//
//	[u16 tid len][tid][u64 pid][u32 epoch][u8 state]
//	[u16 n] { [u16 topic len][topic][u32 partition] }*n
//	[u16 group len][group]
//	[u16 m] { [u16 topic len][topic][u32 partition][u64 offset] }*m
func appendTxnStateRecord(dst []byte, r txnRecord) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Tid)))
	dst = append(dst, r.Tid...)
	dst = binary.BigEndian.AppendUint64(dst, r.Pid)
	dst = binary.BigEndian.AppendUint32(dst, r.Epoch)
	dst = append(dst, byte(r.State))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Partitions)))
	for _, p := range r.Partitions {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Topic)))
		dst = append(dst, p.Topic...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(p.Partition))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Group)))
	dst = append(dst, r.Group...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Offsets)))
	for _, o := range r.Offsets {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(o.Topic)))
		dst = append(dst, o.Topic...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(o.Partition))
		dst = binary.BigEndian.AppendUint64(dst, uint64(o.Offset))
	}
	return dst
}

// txnStateRecordSize returns the encoded payload size.
func txnStateRecordSize(r txnRecord) int {
	n := 2 + len(r.Tid) + 8 + 4 + 1 + 2
	for _, p := range r.Partitions {
		n += 2 + len(p.Topic) + 4
	}
	n += 2 + len(r.Group) + 2
	for _, o := range r.Offsets {
		n += 2 + len(o.Topic) + 4 + 8
	}
	return n
}

// decodeTxnStateRecord parses a payload written by appendTxnStateRecord.
func decodeTxnStateRecord(b []byte) (txnRecord, error) {
	var r txnRecord
	var err error
	if r.Tid, b, err = readCommitString(b, ""); err != nil {
		return r, fmt.Errorf("txn record tid: %w", err)
	}
	if len(b) < 8+4+1+2 {
		return r, fmt.Errorf("txn record header: %w", wire.ErrShortBuffer)
	}
	r.Pid = binary.BigEndian.Uint64(b)
	r.Epoch = binary.BigEndian.Uint32(b[8:])
	r.State = int8(b[12])
	n := int(binary.BigEndian.Uint16(b[13:]))
	b = b[15:]
	for i := 0; i < n; i++ {
		var topic string
		if topic, b, err = readCommitString(b, ""); err != nil {
			return r, fmt.Errorf("txn record partition topic: %w", err)
		}
		if len(b) < 4 {
			return r, fmt.Errorf("txn record partition: %w", wire.ErrShortBuffer)
		}
		r.Partitions = append(r.Partitions, wire.TxnPartition{
			Topic: topic, Partition: int32(binary.BigEndian.Uint32(b)),
		})
		b = b[4:]
	}
	if r.Group, b, err = readCommitString(b, ""); err != nil {
		return r, fmt.Errorf("txn record group: %w", err)
	}
	if len(b) < 2 {
		return r, fmt.Errorf("txn record offsets: %w", wire.ErrShortBuffer)
	}
	m := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	for i := 0; i < m; i++ {
		var topic string
		if topic, b, err = readCommitString(b, ""); err != nil {
			return r, fmt.Errorf("txn record offset topic: %w", err)
		}
		if len(b) < 12 {
			return r, fmt.Errorf("txn record offset: %w", wire.ErrShortBuffer)
		}
		r.Offsets = append(r.Offsets, wire.TxnOffset{
			Topic:     topic,
			Partition: int32(binary.BigEndian.Uint32(b)),
			Offset:    int64(binary.BigEndian.Uint64(b[4:])),
		})
		b = b[12:]
	}
	if len(b) != 0 {
		return r, fmt.Errorf("txn record tail: %w", wire.ErrBadFrame)
	}
	return r, nil
}

// txnCompactionKey hashes a transactional.id into the record key, the
// stand-in for Kafka's transaction-state message key.
func txnCompactionKey(tid string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tid); i++ {
		h = (h ^ uint64(tid[i])) * prime64
	}
	return h
}
