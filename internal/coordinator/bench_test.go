package coordinator

import (
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// BenchmarkCommitPath measures one steady-state durable offset commit:
// OffsetCommit into the coordinator, the sequenced offsets-log append
// replicated at acks=all, the materialised-offset update, and the acked
// response — plus the simulator events in between. The allocs/op figure
// is what `make bench-gate` locks in; the commit job is pooled, so the
// floor is the offsets-log record payload and the broker append path.
func BenchmarkCommitPath(b *testing.B) {
	sim := des.New()
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := clst.CreateTopic("stream", 1, 3); err != nil {
		b.Fatal(err)
	}
	// A long session timeout keeps the member's expiry timer from ever
	// firing inside the measured loop.
	co, err := New(sim, clst, Config{SessionTimeout: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	jr := wire.JoinGroupResponse{Err: wire.ErrorCode(0xFFFF)}
	co.HandleJoinGroup(wire.JoinGroupRequest{Group: "g", Topic: "stream"},
		func(r wire.JoinGroupResponse) { jr = r })
	if err := sim.RunUntil(50 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	if jr.Err != wire.ErrNone {
		b.Fatalf("join: %s", jr.Err)
	}
	var sr wire.SyncGroupResponse
	co.HandleSyncGroup(wire.SyncGroupRequest{Group: "g", MemberID: jr.MemberID, Generation: jr.Generation},
		func(r wire.SyncGroupResponse) { sr = r })
	if sr.Err != wire.ErrNone {
		b.Fatalf("sync: %s", sr.Err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := wire.OffsetCommitResponse{Err: wire.ErrorCode(0xFFFF)}
		co.HandleOffsetCommit(wire.OffsetCommitRequest{
			Group: "g", MemberID: jr.MemberID, Generation: jr.Generation,
			Topic: "stream", Partition: 0, Offset: int64(i),
		}, func(r wire.OffsetCommitResponse) { cr = r })
		for cr.Err == wire.ErrorCode(0xFFFF) {
			if err := sim.RunUntil(sim.Now() + time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		if cr.Err != wire.ErrNone {
			b.Fatalf("commit %d: %s", i, cr.Err)
		}
	}
	b.StopTimer()
	if got := co.Stats().Commits; got != uint64(b.N) {
		b.Fatalf("commits = %d, want %d", got, b.N)
	}
}
