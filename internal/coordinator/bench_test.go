package coordinator

import (
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// BenchmarkCommitPath measures one steady-state durable offset commit:
// OffsetCommit into the coordinator, the sequenced offsets-log append
// replicated at acks=all, the materialised-offset update, and the acked
// response — plus the simulator events in between. The allocs/op figure
// is what `make bench-gate` locks in; the commit job is pooled, so the
// floor is the offsets-log record payload and the broker append path.
func BenchmarkCommitPath(b *testing.B) {
	sim := des.New()
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := clst.CreateTopic("stream", 1, 3); err != nil {
		b.Fatal(err)
	}
	// A long session timeout keeps the member's expiry timer from ever
	// firing inside the measured loop.
	co, err := New(sim, clst, Config{SessionTimeout: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	jr := wire.JoinGroupResponse{Err: wire.ErrorCode(0xFFFF)}
	co.HandleJoinGroup(wire.JoinGroupRequest{Group: "g", Topic: "stream"},
		func(r wire.JoinGroupResponse) { jr = r })
	if err := sim.RunUntil(50 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	if jr.Err != wire.ErrNone {
		b.Fatalf("join: %s", jr.Err)
	}
	var sr wire.SyncGroupResponse
	co.HandleSyncGroup(wire.SyncGroupRequest{Group: "g", MemberID: jr.MemberID, Generation: jr.Generation},
		func(r wire.SyncGroupResponse) { sr = r })
	if sr.Err != wire.ErrNone {
		b.Fatalf("sync: %s", sr.Err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := wire.OffsetCommitResponse{Err: wire.ErrorCode(0xFFFF)}
		co.HandleOffsetCommit(wire.OffsetCommitRequest{
			Group: "g", MemberID: jr.MemberID, Generation: jr.Generation,
			Topic: "stream", Partition: 0, Offset: int64(i),
		}, func(r wire.OffsetCommitResponse) { cr = r })
		for cr.Err == wire.ErrorCode(0xFFFF) {
			if err := sim.RunUntil(sim.Now() + time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		if cr.Err != wire.ErrNone {
			b.Fatalf("commit %d: %s", i, cr.Err)
		}
	}
	b.StopTimer()
	if got := co.Stats().Commits; got != uint64(b.N) {
		b.Fatalf("commits = %d, want %d", got, b.N)
	}
}

// BenchmarkRebalance measures one full cooperative rebalance cycle for
// a six-member group on a twelve-partition topic: every member rejoins
// carrying its owned partitions, the join barrier batches and closes,
// the sticky assignor recomputes the (unchanged) assignment, and every
// member syncs back to Stable. This is the coordinator-side cost of a
// generation bump — the control-plane path the cooperative protocol
// takes twice per membership change — so `make bench-gate` watches it
// alongside the commit path.
func BenchmarkRebalance(b *testing.B) {
	sim := des.New()
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := clst.CreateTopic("stream", 12, 3); err != nil {
		b.Fatal(err)
	}
	co, err := New(sim, clst, Config{SessionTimeout: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	const members = 6
	type peer struct {
		id    string
		owned []int32
	}
	peers := make([]*peer, members)
	join := make([]wire.JoinGroupResponse, members)
	for i := range peers {
		peers[i] = &peer{}
		r := &join[i]
		co.HandleJoinGroup(wire.JoinGroupRequest{
			Group: "g", Topic: "stream", Protocol: wire.ProtocolCooperative,
		}, func(resp wire.JoinGroupResponse) { *r = resp })
	}
	cycle := func() {
		if err := sim.RunUntil(sim.Now() + 50*time.Millisecond); err != nil {
			b.Fatal(err)
		}
		for i, p := range peers {
			if join[i].Err != wire.ErrNone {
				b.Fatalf("join %d: %s", i, join[i].Err)
			}
			p.id = join[i].MemberID
			var sr wire.SyncGroupResponse
			co.HandleSyncGroup(wire.SyncGroupRequest{
				Group: "g", MemberID: p.id, Generation: join[i].Generation,
			}, func(resp wire.SyncGroupResponse) { sr = resp })
			if sr.Err != wire.ErrNone {
				b.Fatalf("sync %d: %s", i, sr.Err)
			}
			p.owned = append(p.owned[:0], sr.Assigned...)
		}
	}
	cycle()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range peers {
			r := &join[j]
			co.HandleJoinGroup(wire.JoinGroupRequest{
				Group: "g", MemberID: p.id, Topic: "stream",
				Protocol: wire.ProtocolCooperative, OwnedPartitions: p.owned,
			}, func(resp wire.JoinGroupResponse) { *r = resp })
		}
		cycle()
	}
	b.StopTimer()
	// Sticky assignment over a stable membership: every cycle is one
	// generation bump and zero follow-ups.
	if got := co.Stats().CoopFollowUps; got != 0 {
		b.Fatalf("CoopFollowUps = %d, want 0", got)
	}
	if got := co.Generation("g"); got != int32(b.N+1) {
		b.Fatalf("generation = %d, want %d", got, b.N+1)
	}
}
