package coordinator

import (
	"testing"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// joinInst sends a JoinGroup carrying a static group.instance.id.
func joinInst(co *Coordinator, group, member, instance string) *wire.JoinGroupResponse {
	resp := &wire.JoinGroupResponse{Err: wire.ErrorCode(0xFFFF)}
	co.HandleJoinGroup(wire.JoinGroupRequest{
		Group: group, MemberID: member, GroupInstanceID: instance, Topic: "stream",
	}, func(r wire.JoinGroupResponse) { *resp = r })
	return resp
}

// TestStaticMembershipRestartNoRebalance is the KIP-345 contract: a
// static member restarting inside its session timeout reclaims its
// member id and assignment without a generation bump — a bounded
// restart costs zero rebalances.
func TestStaticMembershipRestartNoRebalance(t *testing.T) {
	sim, _, co := rig(t, Config{SessionTimeout: time.Second})
	r0 := joinInst(co, "g", "", "inst-0")
	r1 := joinInst(co, "g", "", "inst-1")
	sim.RunUntil(50 * time.Millisecond)
	if r0.Err != wire.ErrNone || r1.Err != wire.ErrNone {
		t.Fatalf("joins: %s / %s", r0.Err, r1.Err)
	}
	a1 := sync(t, co, "g", r0.MemberID, r0.Generation)
	a2 := sync(t, co, "g", r1.MemberID, r1.Generation)
	if len(a1)+len(a2) != 4 {
		t.Fatalf("assignments %v + %v do not cover the topic", a1, a2)
	}
	rebalances := co.Stats().Rebalances

	// inst-1's process restarts: fresh (empty) member id, same instance.
	rejoin := joinInst(co, "g", "", "inst-1")
	sim.RunUntil(100 * time.Millisecond)
	if rejoin.Err != wire.ErrNone {
		t.Fatalf("static rejoin: %s", rejoin.Err)
	}
	if rejoin.MemberID != r1.MemberID {
		t.Fatalf("restart got member id %q, want the reclaimed %q", rejoin.MemberID, r1.MemberID)
	}
	if rejoin.Generation != r1.Generation {
		t.Fatalf("restart bumped generation %d -> %d", r1.Generation, rejoin.Generation)
	}
	st := co.Stats()
	if st.Rebalances != rebalances {
		t.Fatalf("rebalances %d -> %d across a static restart, want unchanged", rebalances, st.Rebalances)
	}
	if st.StaticRejoins != 1 {
		t.Fatalf("static rejoins = %d, want 1", st.StaticRejoins)
	}
	// The reclaimed identity is fully live: its commits pass fencing.
	cr := commit(co, "g", rejoin.MemberID, rejoin.Generation, a2[0], 7)
	sim.RunUntil(200 * time.Millisecond)
	if cr.Err != wire.ErrNone {
		t.Fatalf("commit after static rejoin: %s", cr.Err)
	}
}

// TestDynamicRestartRebalances is the contrast case: the same restart
// without an instance id is a brand-new member and forces a rebalance.
func TestDynamicRestartRebalances(t *testing.T) {
	sim, _, co := rig(t, Config{SessionTimeout: time.Second})
	r0 := join(co, "g", "")
	r1 := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	sync(t, co, "g", r0.MemberID, r0.Generation)
	sync(t, co, "g", r1.MemberID, r1.Generation)
	rebalances := co.Stats().Rebalances

	// A dynamic member's restart joins as a stranger; the incumbents must
	// rejoin and the generation bumps.
	restarted := join(co, "g", "")
	rejoin0 := join(co, "g", r0.MemberID)
	rejoin1 := join(co, "g", r1.MemberID)
	sim.RunUntil(200 * time.Millisecond)
	if restarted.Err != wire.ErrNone || rejoin0.Err != wire.ErrNone || rejoin1.Err != wire.ErrNone {
		t.Fatalf("joins: %s / %s / %s", restarted.Err, rejoin0.Err, rejoin1.Err)
	}
	if restarted.Generation != r0.Generation+1 {
		t.Fatalf("generation %d after dynamic restart, want %d", restarted.Generation, r0.Generation+1)
	}
	if got := co.Stats().Rebalances; got != rebalances+1 {
		t.Fatalf("rebalances %d -> %d, want one more", rebalances, got)
	}
}

// TestEvictionRaceCommitFencedWithIllegalGeneration pins the fencing
// order when a session-timeout eviction races an in-flight commit: the
// evicted member's commit, arriving after the eviction's rebalance
// completed, must see ILLEGAL_GENERATION — the drop-the-offset signal —
// and not UNKNOWN_MEMBER_ID, which clients treat as "rejoin and retry
// the commit" and would re-land an offset the member no longer owns.
func TestEvictionRaceCommitFencedWithIllegalGeneration(t *testing.T) {
	sim, _, co := rig(t, Config{SessionTimeout: 100 * time.Millisecond})
	r0 := join(co, "g", "")
	r1 := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	sync(t, co, "g", r0.MemberID, r0.Generation)
	sync(t, co, "g", r1.MemberID, r1.Generation)

	// Member 0 stays alive and rejoins when the eviction of member 1
	// (which stops heartbeating) forces a rebalance.
	var rejoined *wire.JoinGroupResponse
	tick := des.NewTicker(sim, 30*time.Millisecond, func() {
		co.HandleHeartbeat(wire.HeartbeatRequest{Group: "g", MemberID: r0.MemberID, Generation: co.Generation("g")},
			func(resp wire.HeartbeatResponse) {
				if resp.Err == wire.ErrRebalanceInProgress && rejoined == nil {
					rejoined = join(co, "g", r0.MemberID)
				}
			})
	})
	sim.RunUntil(500 * time.Millisecond)
	tick.Stop()
	if co.Stats().SessionExpirations != 1 {
		t.Fatalf("expirations = %d, want 1", co.Stats().SessionExpirations)
	}
	if rejoined == nil || rejoined.Err != wire.ErrNone {
		t.Fatalf("survivor did not rejoin: %+v", rejoined)
	}
	if rejoined.Generation == r1.Generation {
		t.Fatal("rebalance did not bump the generation")
	}

	// The evicted member's in-flight commit finally arrives, carrying the
	// old generation. It is both stale-generation AND unknown-member; the
	// generation check must win.
	cr := commit(co, "g", r1.MemberID, r1.Generation, 0, 99)
	if cr.Err != wire.ErrIllegalGeneration {
		t.Fatalf("evicted member's commit = %s, want ILLEGAL_GENERATION", cr.Err)
	}
	// And the offset must not have landed.
	if f := fetchOffset(co, "g", 0); f.Err != wire.ErrNoCommittedOffset {
		t.Fatalf("fenced commit landed an offset: %+v", f)
	}
}
