package coordinator

import (
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// rig builds a simulator, a default 3-broker cluster with a "stream"
// topic, and a coordinator.
func rig(t *testing.T, cfg Config) (*des.Simulator, *cluster.Cluster, *Coordinator) {
	t.Helper()
	sim := des.New()
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := clst.CreateTopic("stream", 4, 3); err != nil {
		t.Fatal(err)
	}
	co, err := New(sim, clst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, clst, co
}

// join sends a JoinGroup and returns a pointer that fills in when the
// rebalance completes.
func join(co *Coordinator, group, member string) *wire.JoinGroupResponse {
	resp := &wire.JoinGroupResponse{Err: wire.ErrorCode(0xFFFF)}
	co.HandleJoinGroup(wire.JoinGroupRequest{Group: group, MemberID: member, Topic: "stream"},
		func(r wire.JoinGroupResponse) { *resp = r })
	return resp
}

func sync(t *testing.T, co *Coordinator, group, member string, gen int32) []int32 {
	t.Helper()
	var resp wire.SyncGroupResponse
	co.HandleSyncGroup(wire.SyncGroupRequest{Group: group, MemberID: member, Generation: gen},
		func(r wire.SyncGroupResponse) { resp = r })
	if resp.Err != wire.ErrNone {
		t.Fatalf("sync %s: %s", member, resp.Err)
	}
	return resp.Assigned
}

func commit(co *Coordinator, group, member string, gen int32, partition int32, offset int64) *wire.OffsetCommitResponse {
	resp := &wire.OffsetCommitResponse{Err: wire.ErrorCode(0xFFFF)}
	co.HandleOffsetCommit(wire.OffsetCommitRequest{
		Group: group, MemberID: member, Generation: gen,
		Topic: "stream", Partition: partition, Offset: offset,
	}, func(r wire.OffsetCommitResponse) { *resp = r })
	return resp
}

func fetchOffset(co *Coordinator, group string, partition int32) wire.OffsetFetchResponse {
	var resp wire.OffsetFetchResponse
	co.HandleOffsetFetch(wire.OffsetFetchRequest{Group: group, Topic: "stream", Partition: partition},
		func(r wire.OffsetFetchResponse) { resp = r })
	return resp
}

func TestJoinSyncLifecycle(t *testing.T) {
	sim, _, co := rig(t, Config{})
	r0 := join(co, "g", "")
	r1 := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	if r0.Err != wire.ErrNone || r1.Err != wire.ErrNone {
		t.Fatalf("joins: %s / %s", r0.Err, r1.Err)
	}
	if r0.Generation != 1 || r1.Generation != 1 {
		t.Fatalf("generation = %d/%d, want 1 (initial joins must batch)", r0.Generation, r1.Generation)
	}
	if len(r0.Members) != 2 || r0.Leader != r0.Members[0] {
		t.Fatalf("members %v leader %q", r0.Members, r0.Leader)
	}
	a0 := sync(t, co, "g", r0.MemberID, 1)
	a1 := sync(t, co, "g", r1.MemberID, 1)
	if len(a0)+len(a1) != 4 {
		t.Fatalf("assignments %v + %v do not cover 4 partitions", a0, a1)
	}
	if got := co.GroupState("g"); got != "Stable" {
		t.Fatalf("state = %s, want Stable", got)
	}
	// Partitions must be disjoint contiguous ranges, earlier member larger.
	if len(a0) != 2 || len(a1) != 2 || a0[0] != 0 || a0[1] != 1 || a1[0] != 2 || a1[1] != 3 {
		t.Fatalf("range assignment a0=%v a1=%v", a0, a1)
	}
}

func TestCommitFetchDurablePath(t *testing.T) {
	sim, _, co := rig(t, Config{})
	r := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	sync(t, co, "g", r.MemberID, r.Generation)

	// No commit yet: the fetch must say so explicitly, not return zero.
	if f := fetchOffset(co, "g", 0); f.Err != wire.ErrNoCommittedOffset {
		t.Fatalf("uncommitted fetch err = %s, want NO_COMMITTED_OFFSET", f.Err)
	}

	cr := commit(co, "g", r.MemberID, r.Generation, 0, 42)
	if cr.Err != wire.ErrorCode(0xFFFF) {
		t.Fatalf("commit acked synchronously (%s): the offsets log append must take simulated time", cr.Err)
	}
	sim.RunUntil(60 * time.Millisecond)
	if cr.Err != wire.ErrNone {
		t.Fatalf("commit err = %s", cr.Err)
	}
	f := fetchOffset(co, "g", 0)
	if f.Err != wire.ErrNone || f.Offset != 42 || f.Generation != r.Generation {
		t.Fatalf("fetch = %+v", f)
	}
	st := co.Stats()
	if st.Commits != 1 || st.OffsetsAppended != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStaleGenerationAndUnknownMemberFenced(t *testing.T) {
	sim, _, co := rig(t, Config{SessionTimeout: time.Second})
	r0 := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	sync(t, co, "g", r0.MemberID, r0.Generation)

	// Second member triggers a rebalance; the first rejoins.
	r1 := join(co, "g", "")
	rejoin := join(co, "g", r0.MemberID)
	sim.RunUntil(100 * time.Millisecond)
	if r1.Err != wire.ErrNone || rejoin.Err != wire.ErrNone {
		t.Fatalf("rebalance joins: %s / %s", r1.Err, rejoin.Err)
	}
	if rejoin.Generation != r0.Generation+1 {
		t.Fatalf("generation %d after rebalance, want %d", rejoin.Generation, r0.Generation+1)
	}

	// A commit with the old generation must be fenced.
	cr := commit(co, "g", r0.MemberID, r0.Generation, 0, 10)
	if cr.Err != wire.ErrIllegalGeneration {
		t.Fatalf("stale commit err = %s, want ILLEGAL_GENERATION", cr.Err)
	}
	// Unknown member too.
	cr = commit(co, "g", "nobody", rejoin.Generation, 0, 10)
	if cr.Err != wire.ErrUnknownMemberID {
		t.Fatalf("unknown-member commit err = %s, want UNKNOWN_MEMBER_ID", cr.Err)
	}
	// Fenced offset fetch with a stale generation.
	var f wire.OffsetFetchResponse
	co.HandleOffsetFetch(wire.OffsetFetchRequest{
		Group: "g", MemberID: r0.MemberID, Generation: r0.Generation,
		Topic: "stream", Partition: 0,
	}, func(r wire.OffsetFetchResponse) { f = r })
	if f.Err != wire.ErrIllegalGeneration {
		t.Fatalf("stale fetch err = %s, want ILLEGAL_GENERATION", f.Err)
	}
	st := co.Stats()
	if st.FencedCommits != 2 || st.FencedFetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSessionExpiryRebalances(t *testing.T) {
	sim, _, co := rig(t, Config{SessionTimeout: 100 * time.Millisecond})
	r0 := join(co, "g", "")
	r1 := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	sync(t, co, "g", r0.MemberID, r0.Generation)
	sync(t, co, "g", r1.MemberID, r1.Generation)

	// Keep member 0 alive with heartbeats; let member 1's session lapse.
	hb := des.NewTicker(sim, 30*time.Millisecond, func() {})
	var rejoined *wire.JoinGroupResponse
	des.NewTicker(sim, 30*time.Millisecond, func() {
		co.HandleHeartbeat(wire.HeartbeatRequest{Group: "g", MemberID: r0.MemberID, Generation: co.Generation("g")},
			func(resp wire.HeartbeatResponse) {
				if resp.Err == wire.ErrRebalanceInProgress && rejoined == nil {
					rejoined = join(co, "g", r0.MemberID)
				}
			})
	})
	sim.RunUntil(500 * time.Millisecond)
	hb.Stop()
	st := co.Stats()
	if st.SessionExpirations != 1 {
		t.Fatalf("session expirations = %d, want 1 (stats %+v)", st.SessionExpirations, st)
	}
	if rejoined == nil || rejoined.Err != wire.ErrNone {
		t.Fatalf("survivor did not rejoin: %+v", rejoined)
	}
	if len(rejoined.Members) != 1 {
		t.Fatalf("members after expiry = %v", rejoined.Members)
	}
	a := sync(t, co, "g", r0.MemberID, rejoined.Generation)
	if len(a) != 4 {
		t.Fatalf("survivor assignment %v, want all 4 partitions", a)
	}
}

func TestRematerializeDetectsRegression(t *testing.T) {
	sim := des.New()
	ccfg := cluster.DefaultConfig()
	// A long fsync cadence leaves the committed record in the page cache
	// when the unclean crash hits.
	ccfg.Broker.FlushInterval = 10 * time.Second
	clst, err := cluster.New(sim, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clst.CreateTopic("stream", 2, 3); err != nil {
		t.Fatal(err)
	}
	// Offsets log at replication 1 and acks=1: the canonical
	// lose-committed-offsets setup.
	co, err := New(sim, clst, Config{OffsetsReplication: 1, OffsetsAcks: wire.AcksLeader})
	if err != nil {
		t.Fatal(err)
	}
	r := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	sync(t, co, "g", r.MemberID, r.Generation)

	cr := commit(co, "g", r.MemberID, r.Generation, 0, 100)
	sim.RunUntil(60 * time.Millisecond)
	if cr.Err != wire.ErrNone {
		t.Fatalf("commit: %s", cr.Err)
	}

	// Unclean crash of the offsets-log leader (broker 0 leads partition 0
	// of every topic) destroys the unflushed commit record; recovery
	// re-elects it and re-materializes from the truncated log.
	if err := clst.CrashBrokerUnclean(0); err != nil {
		t.Fatal(err)
	}
	if err := clst.RecoverBroker(0); err != nil {
		t.Fatal(err)
	}
	regs := co.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly one", regs)
	}
	if regs[0].Before != 100 || regs[0].After != -1 {
		t.Fatalf("regression = %+v, want before=100 after=-1", regs[0])
	}
	if f := fetchOffset(co, "g", 0); f.Err != wire.ErrNoCommittedOffset {
		t.Fatalf("post-loss fetch = %+v, want NO_COMMITTED_OFFSET", f)
	}
}

func TestCompactedMaterializedView(t *testing.T) {
	sim, _, co := rig(t, Config{SessionTimeout: 10 * time.Second})
	r := join(co, "g", "")
	sim.RunUntil(50 * time.Millisecond)
	sync(t, co, "g", r.MemberID, r.Generation)
	for i := int64(1); i <= 50; i++ {
		commit(co, "g", r.MemberID, r.Generation, 0, i)
		sim.RunUntil(sim.Now() + 5*time.Millisecond)
	}
	st := co.Stats()
	if st.OffsetsAppended != 50 {
		t.Fatalf("appended = %d, want 50", st.OffsetsAppended)
	}
	if co.LiveOffsetKeys() != 1 {
		t.Fatalf("live keys = %d, want 1 (last write wins per key)", co.LiveOffsetKeys())
	}
	if f := fetchOffset(co, "g", 0); f.Offset != 50 {
		t.Fatalf("fetch offset = %d, want 50", f.Offset)
	}
}

func TestOffsetLogRecordRoundTrip(t *testing.T) {
	r := commitRecord{Group: "g1", Topic: "stream", Partition: 3, Offset: 12345, Generation: 7}
	enc := appendCommitRecord(nil, r)
	if len(enc) != commitRecordSize(r) {
		t.Fatalf("size = %d, want %d", len(enc), commitRecordSize(r))
	}
	got, err := decodeCommitRecord(enc, "g1", "stream")
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("got %+v want %+v", got, r)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeCommitRecord(enc[:cut], "", ""); err == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
	if compactionKey("g1", "stream", 3) == compactionKey("g1", "stream", 4) {
		t.Fatal("compaction keys collide across partitions")
	}
	if compactionKey("a", "bc", 0) == compactionKey("ab", "c", 0) {
		t.Fatal("compaction key ignores the group/topic boundary")
	}
}
