// Package coordinator implements a broker-side consumer-group
// coordinator modeled on Kafka's __consumer_offsets design. Offset
// commits are records appended to a compacted, replicated internal
// offsets log (an ordinary cluster topic, so it inherits replication,
// leader election, and unclean-restart truncation); group membership
// runs a JoinGroup/SyncGroup/Heartbeat protocol with monotonically
// increasing generation ids; and commits or fetches from a stale
// generation are fenced with ILLEGAL_GENERATION / UNKNOWN_MEMBER_ID.
//
// Durability follows the offsets log, not the coordinator process:
// membership and generations are soft state (real Kafka rebuilds them
// by forcing a rejoin after coordinator failover), while the committed
// offsets the group would resume from are exactly as durable as the
// offsets topic's replication settings. After any broker failure,
// unclean crash, or recovery the coordinator re-materializes its offset
// cache from the current offsets-log leader; a commit that the log lost
// (unclean restart of an under-replicated offsets partition) rolls the
// group visibly backwards, which the chaos checker classifies or flags
// according to the configured semantics.
package coordinator

import (
	"fmt"
	"sort"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/storage"
	"kafkarel/internal/wire"
)

// DefaultOffsetsTopic is the internal offsets-log topic name.
const DefaultOffsetsTopic = "__consumer_offsets"

// Config tunes the coordinator.
type Config struct {
	// OffsetsTopic names the internal offsets log (default
	// DefaultOffsetsTopic).
	OffsetsTopic string
	// OffsetsReplication is the offsets topic's replication factor
	// (default: min(3, brokers), Kafka's offsets.topic.replication.factor
	// spirit). Running it at 1 under unclean restarts is how committed
	// offsets get lost — deliberately configurable for chaos campaigns.
	OffsetsReplication int
	// OffsetsAcks is the acks mode for offsets-log appends (default
	// acks=all; acks=1 models pre-KIP-101 era durability).
	OffsetsAcks wire.RequiredAcks
	// SessionTimeout is the default member session timeout when a join
	// does not specify one (default 150ms of virtual time).
	SessionTimeout time.Duration
	// RebalanceDelay is the cadence at which a pending rebalance checks
	// whether every member has rejoined (default 5ms). It also bounds
	// how quickly an all-members-ready rebalance completes.
	RebalanceDelay time.Duration
	// RebalanceTimeout caps how long a rebalance waits for stragglers
	// before evicting them and completing (default: SessionTimeout).
	RebalanceTimeout time.Duration
	// Obs receives the rebalance-duration histogram (entering
	// PreparingRebalance to the generation bump). Nil disables it.
	Obs *obs.Obs
}

func (c *Config) applyDefaults(brokers int) {
	if c.OffsetsTopic == "" {
		c.OffsetsTopic = DefaultOffsetsTopic
	}
	if c.OffsetsReplication <= 0 {
		c.OffsetsReplication = 3
		if brokers < 3 {
			c.OffsetsReplication = brokers
		}
	}
	if c.OffsetsAcks == wire.AcksNone {
		c.OffsetsAcks = wire.AcksAll
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 150 * time.Millisecond
	}
	if c.RebalanceDelay <= 0 {
		c.RebalanceDelay = 5 * time.Millisecond
	}
	if c.RebalanceTimeout <= 0 {
		c.RebalanceTimeout = c.SessionTimeout
	}
}

// Stats counts coordinator activity for scorecards and invariants.
type Stats struct {
	Joins              uint64 // join requests admitted
	Leaves             uint64 // clean departures
	Rebalances         uint64 // completed rebalances (generation bumps)
	SessionExpirations uint64 // members evicted by session timeout
	Evictions          uint64 // members dropped for missing a rebalance
	Commits            uint64 // offset commits durably acknowledged
	CommitFailures     uint64 // commits that failed after passing fencing
	FencedCommits      uint64 // commits rejected by generation/member fencing
	FencedFetches      uint64 // fenced offset fetches rejected
	OffsetsAppended    uint64 // records appended to the offsets log
	OffsetRegressions  uint64 // committed offsets that moved backwards on re-materialization
	StaticRejoins      uint64 // static-member rejoins served without a rebalance
	CoopFollowUps      uint64 // cooperative second-phase rebalances distributing freed partitions
}

// GroupStats counts one group's share of the coordinator activity —
// the multi-group fan-out scorecard surface. The fleet-wide Stats sum
// these across groups (plus the offsets-log counters, which are
// coordinator-global).
type GroupStats struct {
	Joins              uint64
	Leaves             uint64
	Rebalances         uint64
	SessionExpirations uint64
	Evictions          uint64
	StaticRejoins      uint64
	CoopFollowUps      uint64
}

// OffsetRegression records one committed offset that re-materialized
// below its previous value after a topology change — the observable
// form of offsets-log data loss. After == -1 means the key vanished
// entirely.
type OffsetRegression struct {
	Group     string
	Topic     string
	Partition int32
	Before    int64
	After     int64
}

type groupState int8

const (
	stateEmpty groupState = iota
	statePreparingRebalance
	stateCompletingRebalance
	stateStable
)

func (s groupState) String() string {
	switch s {
	case stateEmpty:
		return "Empty"
	case statePreparingRebalance:
		return "PreparingRebalance"
	case stateCompletingRebalance:
		return "CompletingRebalance"
	case stateStable:
		return "Stable"
	default:
		return fmt.Sprintf("state(%d)", int8(s))
	}
}

// member is one group member's coordinator-side state.
type member struct {
	id             string
	instanceID     string // static group.instance.id, "" for dynamic members
	sessionTimeout time.Duration
	timer          *des.Timer // session expiry
	assigned       []int32    // current-generation assignment
	protocol       uint8      // rebalance protocol from the last join
	owned          []int32    // partitions the member reported owning at its last join
	joined         bool       // rejoined the pending rebalance
	synced         bool       // fetched the current generation's assignment
	pendingJoin    func(wire.JoinGroupResponse)
	corrJoin       uint32 // correlation id of the parked join
}

// group is one consumer group's state machine.
type group struct {
	co         *Coordinator
	id         string
	topic      string
	partitions int32
	state      groupState
	generation int32
	members    map[string]*member
	// instances maps a static group.instance.id to the member id it
	// currently owns, letting a bounded restart reclaim its identity and
	// assignment without triggering a rebalance (KIP-345).
	instances    map[string]string
	nextMemberID int
	rebalanceTmr *des.Timer
	joinDeadline time.Duration // virtual-time cap for the pending rebalance
	// needsFollowUp marks a cooperative phase-1 assignment that withheld
	// partitions pending revocation; once the group stabilises the
	// coordinator immediately rebalances again to distribute them.
	needsFollowUp bool
	gstats        GroupStats
	// rebalanceAt stamps entry into PreparingRebalance; completeJoin
	// observes now-rebalanceAt as the rebalance-duration span.
	rebalanceAt time.Duration
}

type offsetKey struct {
	group     string
	topic     string
	partition int32
}

type offsetEntry struct {
	offset     int64
	generation int32
}

// Coordinator owns every group's membership state machine and the
// durable offsets log. Not safe for concurrent use; the DES is
// single-threaded.
type Coordinator struct {
	sim    *des.Simulator
	clst   *cluster.Cluster
	cfg    Config
	groups map[string]*group
	// offsets is the materialized (compacted) view of the offsets log:
	// last write per (group, topic, partition) that the log acknowledged.
	offsets     map[offsetKey]offsetEntry
	stats       Stats
	regressions []OffsetRegression
	// seq numbers offsets-log batches so the brokers' per-producer
	// sequence tracking sees the coordinator as a well-behaved client:
	// without it every commit after the first reads as a stuck-sequence
	// duplicate append and poisons the duplicate-accounting invariants.
	seq uint64

	freeCommit []*commitJob // recycled commit pipeline jobs

	hRebalance *obs.Histogram // rebalance duration span (nil-safe)
}

// commitJob carries one offset commit through the offsets-log produce
// pipeline without per-commit closures: the produce callback is built
// once per pooled job and reused.
type commitJob struct {
	co   *Coordinator
	key  offsetKey
	rec  commitRecord
	corr uint32
	done func(wire.OffsetCommitResponse)
	fire func(wire.ProduceResponse) // bound once; reused across reuses
}

func (co *Coordinator) getCommit() *commitJob {
	if n := len(co.freeCommit); n > 0 {
		j := co.freeCommit[n-1]
		co.freeCommit = co.freeCommit[:n-1]
		return j
	}
	j := &commitJob{co: co}
	j.fire = j.produceDone
	return j
}

func (co *Coordinator) putCommit(j *commitJob) {
	j.done = nil
	j.key = offsetKey{}
	j.rec = commitRecord{}
	co.freeCommit = append(co.freeCommit, j)
}

// New builds a coordinator over the cluster, creating the internal
// offsets topic, and registers itself for topology-change
// re-materialization (cluster.AddTopologyHook).
func New(sim *des.Simulator, clst *cluster.Cluster, cfg Config) (*Coordinator, error) {
	if sim == nil {
		return nil, fmt.Errorf("coordinator: nil simulator")
	}
	if clst == nil {
		return nil, fmt.Errorf("coordinator: nil cluster")
	}
	cfg.applyDefaults(clst.Brokers())
	if err := clst.CreateTopic(cfg.OffsetsTopic, 1, cfg.OffsetsReplication); err != nil {
		return nil, fmt.Errorf("coordinator: offsets topic: %w", err)
	}
	co := &Coordinator{
		sim:     sim,
		clst:    clst,
		cfg:     cfg,
		groups:  make(map[string]*group),
		offsets: make(map[offsetKey]offsetEntry),
	}
	if cfg.Obs != nil {
		co.hRebalance = cfg.Obs.Histogram(obs.MRebalanceNs, obs.LatencyBounds)
	}
	clst.AddTopologyHook(co.Rematerialize)
	return co, nil
}

// Config returns the effective (defaulted) configuration.
func (co *Coordinator) Config() Config { return co.cfg }

// Stats returns the activity counters.
func (co *Coordinator) Stats() Stats { return co.stats }

// GroupStats returns one group's activity counters (zero for an
// unknown group).
func (co *Coordinator) GroupStats(groupID string) GroupStats {
	if g, ok := co.groups[groupID]; ok {
		return g.gstats
	}
	return GroupStats{}
}

// GroupIDs returns the known group ids in sorted order.
func (co *Coordinator) GroupIDs() []string {
	ids := make([]string, 0, len(co.groups))
	for id := range co.groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Regressions returns every committed-offset regression observed when
// re-materializing after topology changes, in detection order.
func (co *Coordinator) Regressions() []OffsetRegression {
	out := make([]OffsetRegression, len(co.regressions))
	copy(out, co.regressions)
	return out
}

// LiveOffsetKeys returns the size of the compacted offsets view — the
// number of (group, topic, partition) keys a log compactor would
// retain, vs Stats().OffsetsAppended total appended records.
func (co *Coordinator) LiveOffsetKeys() int { return len(co.offsets) }

// Generation returns the group's current generation id, or -1 for an
// unknown group.
func (co *Coordinator) Generation(groupID string) int32 {
	if g, ok := co.groups[groupID]; ok {
		return g.generation
	}
	return -1
}

// GroupState returns the group's state-machine state name ("Empty",
// "PreparingRebalance", "CompletingRebalance", "Stable"), or "" for an
// unknown group.
func (co *Coordinator) GroupState(groupID string) string {
	if g, ok := co.groups[groupID]; ok {
		return g.state.String()
	}
	return ""
}

// available reports whether the offsets log can serve reads and writes
// — its partition has a live leader.
func (co *Coordinator) available() bool {
	return co.clst.Leader(co.cfg.OffsetsTopic, 0) != nil
}

// HandleJoinGroup admits (or re-admits) a member. done fires when the
// resulting rebalance completes — possibly synchronously, possibly
// after the join window — with the new generation and the full member
// list. An empty request MemberID asks the coordinator to assign one.
func (co *Coordinator) HandleJoinGroup(req wire.JoinGroupRequest, done func(wire.JoinGroupResponse)) {
	fail := func(code wire.ErrorCode) {
		if done != nil {
			done(wire.JoinGroupResponse{CorrelationID: req.CorrelationID, Group: req.Group, Err: code})
		}
	}
	if req.Group == "" {
		fail(wire.ErrUnknownMemberID)
		return
	}
	g, ok := co.groups[req.Group]
	if !ok {
		// A new group binds to the topic of its first join.
		md := co.clst.Metadata(wire.MetadataRequest{Topic: req.Topic})
		if md.Err != wire.ErrNone {
			fail(md.Err)
			return
		}
		g = &group{
			co:         co,
			id:         req.Group,
			topic:      req.Topic,
			partitions: int32(len(md.Partitions)),
			members:    make(map[string]*member),
			instances:  make(map[string]string),
		}
		co.groups[req.Group] = g
	}
	if req.Topic != g.topic {
		fail(wire.ErrUnknownTopicOrPartition)
		return
	}
	id := req.MemberID
	if id == "" && req.GroupInstanceID != "" {
		// A static member restarting with a fresh (empty) member id
		// reclaims the id its instance already owns.
		if prev, ok := g.instances[req.GroupInstanceID]; ok {
			id = prev
		}
	}
	if id == "" {
		id = fmt.Sprintf("%s-%d", g.id, g.nextMemberID)
		g.nextMemberID++
	}
	m, known := g.members[id]
	if !known {
		m = &member{id: id, instanceID: req.GroupInstanceID}
		mm := m
		m.timer = des.NewTimer(co.sim, func() { g.expireSession(mm) })
		g.members[id] = m
		if req.GroupInstanceID != "" {
			g.instances[req.GroupInstanceID] = id
		}
		co.stats.Joins++
		g.gstats.Joins++
	}
	m.sessionTimeout = req.SessionTimeout
	if m.sessionTimeout <= 0 {
		m.sessionTimeout = co.cfg.SessionTimeout
	}
	m.timer.Reset(m.sessionTimeout)
	m.protocol = req.Protocol
	m.owned = append(m.owned[:0], req.OwnedPartitions...)
	// Static-member fast path (KIP-345): a known instance rejoining a
	// Stable group inside its session timeout keeps its member id and
	// assignment, and the group skips the rebalance entirely — the whole
	// point of static membership is that bounded restarts cost zero
	// generation bumps.
	if req.GroupInstanceID != "" && known && g.state == stateStable {
		co.stats.StaticRejoins++
		g.gstats.StaticRejoins++
		if done != nil {
			ids := make([]string, 0, len(g.members))
			for mid := range g.members {
				ids = append(ids, mid)
			}
			sort.Strings(ids)
			done(wire.JoinGroupResponse{
				CorrelationID: req.CorrelationID,
				Group:         g.id,
				Generation:    g.generation,
				MemberID:      m.id,
				Leader:        ids[0],
				Members:       ids,
				Err:           wire.ErrNone,
			})
		}
		return
	}
	// Park the join; it completes when the rebalance barrier opens. A
	// second join from the same member supersedes the first.
	if m.pendingJoin != nil {
		prev := m.pendingJoin
		prev(wire.JoinGroupResponse{
			CorrelationID: req.CorrelationID, Group: g.id, MemberID: id,
			Err: wire.ErrRebalanceInProgress,
		})
	}
	m.pendingJoin = done
	m.joined = true
	m.corrJoin = req.CorrelationID
	g.prepareRebalance()
}

// HandleSyncGroup returns the member's partition assignment for the
// generation established by the preceding join round.
func (co *Coordinator) HandleSyncGroup(req wire.SyncGroupRequest, done func(wire.SyncGroupResponse)) {
	if done == nil {
		return
	}
	resp := wire.SyncGroupResponse{CorrelationID: req.CorrelationID, Group: req.Group}
	g, ok := co.groups[req.Group]
	if !ok {
		resp.Err = wire.ErrUnknownMemberID
		done(resp)
		return
	}
	m, ok := g.members[req.MemberID]
	if !ok {
		resp.Err = wire.ErrUnknownMemberID
		done(resp)
		return
	}
	if req.Generation != g.generation {
		resp.Err = wire.ErrIllegalGeneration
		done(resp)
		return
	}
	if g.state == statePreparingRebalance {
		resp.Err = wire.ErrRebalanceInProgress
		done(resp)
		return
	}
	m.timer.Reset(m.sessionTimeout)
	followUp := false
	if !m.synced {
		m.synced = true
		if g.state == stateCompletingRebalance && g.allSynced() {
			g.state = stateStable
			followUp = g.needsFollowUp
			g.needsFollowUp = false
		}
	}
	resp.Generation = g.generation
	resp.Assigned = append([]int32(nil), m.assigned...)
	done(resp)
	if followUp {
		// Cooperative phase 2: the stabilised generation revoked the
		// moving partitions; rebalance again right away so their new
		// owners pick them up. Members learn via heartbeat.
		co.stats.CoopFollowUps++
		g.gstats.CoopFollowUps++
		g.prepareRebalance()
	}
}

// HandleHeartbeat refreshes a member's session and reports pending
// rebalances: ErrRebalanceInProgress tells the member to rejoin.
func (co *Coordinator) HandleHeartbeat(req wire.HeartbeatRequest, done func(wire.HeartbeatResponse)) {
	if done == nil {
		return
	}
	resp := wire.HeartbeatResponse{CorrelationID: req.CorrelationID}
	g, ok := co.groups[req.Group]
	if !ok {
		resp.Err = wire.ErrUnknownMemberID
		done(resp)
		return
	}
	m, ok := g.members[req.MemberID]
	if !ok {
		resp.Err = wire.ErrUnknownMemberID
		done(resp)
		return
	}
	m.timer.Reset(m.sessionTimeout)
	switch {
	case g.state == statePreparingRebalance:
		resp.Err = wire.ErrRebalanceInProgress
	case req.Generation != g.generation:
		resp.Err = wire.ErrIllegalGeneration
	}
	done(resp)
}

// HandleLeaveGroup removes a member cleanly and rebalances immediately.
func (co *Coordinator) HandleLeaveGroup(req wire.LeaveGroupRequest, done func(wire.LeaveGroupResponse)) {
	resp := wire.LeaveGroupResponse{CorrelationID: req.CorrelationID}
	g, ok := co.groups[req.Group]
	if !ok {
		resp.Err = wire.ErrUnknownMemberID
	} else if m, ok := g.members[req.MemberID]; !ok {
		resp.Err = wire.ErrUnknownMemberID
	} else {
		co.stats.Leaves++
		g.gstats.Leaves++
		g.removeMember(m)
		g.prepareRebalance()
	}
	if done != nil {
		done(resp)
	}
}

// HandleOffsetCommit fences the commit against the group's generation,
// appends it to the replicated offsets log, and calls done when the log
// acknowledges (or the append fails). The materialized offset moves
// only on acknowledgement: a commit the log never made durable is never
// served to a fetch.
func (co *Coordinator) HandleOffsetCommit(req wire.OffsetCommitRequest, done func(wire.OffsetCommitResponse)) {
	fail := func(code wire.ErrorCode) {
		if done != nil {
			done(wire.OffsetCommitResponse{
				CorrelationID: req.CorrelationID, Group: req.Group,
				Topic: req.Topic, Partition: req.Partition, Err: code,
			})
		}
	}
	g, ok := co.groups[req.Group]
	if !ok {
		co.stats.FencedCommits++
		fail(wire.ErrUnknownMemberID)
		return
	}
	// Generation fencing runs before the member-existence check: a member
	// evicted by session timeout whose in-flight commit arrives after the
	// resulting rebalance must see ILLEGAL_GENERATION — the signal that
	// its generation's partition ownership is gone and the offset must not
	// land — not UNKNOWN_MEMBER_ID, which clients treat as "rejoin fresh
	// and retry the commit".
	if req.Generation != g.generation {
		co.stats.FencedCommits++
		fail(wire.ErrIllegalGeneration)
		return
	}
	m, ok := g.members[req.MemberID]
	if !ok {
		co.stats.FencedCommits++
		fail(wire.ErrUnknownMemberID)
		return
	}
	// Commits during PreparingRebalance are allowed for current-generation
	// members (KAFKA-4600): that is the pre-rejoin flush and cooperative
	// revoke-then-commit window. But a commit that raced the join barrier
	// itself — the generation already bumped, the member has joined and
	// not yet learned its assignment — is rejected with
	// REBALANCE_IN_PROGRESS, Kafka's signal that the commit was not
	// materialized and must be retried after the rebalance completes.
	// Never silently dropped: the response always fires.
	if g.state == stateCompletingRebalance && !m.synced {
		fail(wire.ErrRebalanceInProgress)
		return
	}
	if !co.available() {
		fail(wire.ErrCoordinatorNotAvailable)
		return
	}
	m.timer.Reset(m.sessionTimeout)
	j := co.getCommit()
	j.key = offsetKey{group: req.Group, topic: req.Topic, partition: req.Partition}
	j.rec = commitRecord{
		Group: req.Group, Topic: req.Topic, Partition: req.Partition,
		Offset: req.Offset, Generation: req.Generation,
	}
	j.corr = req.CorrelationID
	j.done = done
	payload := appendCommitRecord(make([]byte, 0, commitRecordSize(j.rec)), j.rec)
	co.seq++
	co.clst.HandleProduce(wire.ProduceRequest{
		Topic: co.cfg.OffsetsTopic,
		Acks:  co.cfg.OffsetsAcks,
		Batch: wire.RecordBatch{BaseSequence: co.seq, Records: []wire.Record{{
			Key:       compactionKey(req.Group, req.Topic, req.Partition),
			Timestamp: co.sim.Now(),
			Payload:   payload,
		}}},
	}, j.fire)
}

// produceDone completes a commit once the offsets log answered.
func (j *commitJob) produceDone(resp wire.ProduceResponse) {
	co := j.co
	out := wire.OffsetCommitResponse{
		CorrelationID: j.corr, Group: j.key.group,
		Topic: j.key.topic, Partition: j.key.partition, Err: resp.Err,
	}
	if resp.Err == wire.ErrNone {
		co.stats.Commits++
		co.stats.OffsetsAppended++
		co.offsets[j.key] = offsetEntry{offset: j.rec.Offset, generation: j.rec.Generation}
	} else {
		co.stats.CommitFailures++
	}
	done := j.done
	co.putCommit(j)
	if done != nil {
		done(out)
	}
}

// CommitTxnOffset durably writes a transaction's decided offset commit
// into the offsets log, bypassing the group's generation fencing: for
// transactional commits the fencing authority is the producer epoch,
// which the transaction coordinator has already checked by the time the
// transaction reaches its commit phase (Kafka's TxnOffsetCommit path).
// The materialized offset moves only when the log acknowledges, exactly
// like a consumer commit.
func (co *Coordinator) CommitTxnOffset(group, topic string, partition int32, offset int64, done func(wire.ErrorCode)) {
	if !co.available() {
		if done != nil {
			done(wire.ErrCoordinatorNotAvailable)
		}
		return
	}
	gen := int32(-1)
	if g, ok := co.groups[group]; ok {
		gen = g.generation
	}
	j := co.getCommit()
	j.key = offsetKey{group: group, topic: topic, partition: partition}
	j.rec = commitRecord{Group: group, Topic: topic, Partition: partition, Offset: offset, Generation: gen}
	if done != nil {
		j.done = func(resp wire.OffsetCommitResponse) { done(resp.Err) }
	}
	payload := appendCommitRecord(make([]byte, 0, commitRecordSize(j.rec)), j.rec)
	co.seq++
	co.clst.HandleProduce(wire.ProduceRequest{
		Topic: co.cfg.OffsetsTopic,
		Acks:  co.cfg.OffsetsAcks,
		Batch: wire.RecordBatch{BaseSequence: co.seq, Records: []wire.Record{{
			Key:       compactionKey(group, topic, partition),
			Timestamp: co.sim.Now(),
			Payload:   payload,
		}}},
	}, j.fire)
}

// HandleOffsetFetch serves the committed offset for one partition from
// the materialized offsets view. Fetches carrying a member id are
// generation-fenced like commits; administrative fetches (empty member
// id) are not. A partition with no commit answers ErrNoCommittedOffset.
func (co *Coordinator) HandleOffsetFetch(req wire.OffsetFetchRequest, done func(wire.OffsetFetchResponse)) {
	if done == nil {
		return
	}
	resp := wire.OffsetFetchResponse{
		CorrelationID: req.CorrelationID, Group: req.Group,
		Topic: req.Topic, Partition: req.Partition,
	}
	if req.MemberID != "" {
		g, ok := co.groups[req.Group]
		if !ok {
			co.stats.FencedFetches++
			resp.Err = wire.ErrUnknownMemberID
			done(resp)
			return
		}
		if _, ok := g.members[req.MemberID]; !ok {
			co.stats.FencedFetches++
			resp.Err = wire.ErrUnknownMemberID
			done(resp)
			return
		}
		if req.Generation != g.generation {
			co.stats.FencedFetches++
			resp.Err = wire.ErrIllegalGeneration
			done(resp)
			return
		}
	}
	if !co.available() {
		resp.Err = wire.ErrCoordinatorNotAvailable
		done(resp)
		return
	}
	e, ok := co.offsets[offsetKey{group: req.Group, topic: req.Topic, partition: req.Partition}]
	if !ok {
		resp.Err = wire.ErrNoCommittedOffset
		done(resp)
		return
	}
	resp.Offset = e.offset
	resp.Generation = e.generation
	done(resp)
}

// Rematerialize rebuilds the compacted offsets view from the current
// offsets-log leader, recording any committed offset that moved
// backwards (or vanished) — the observable consequence of offsets-log
// data loss after an unclean restart. The cluster invokes it after
// every broker fail/crash/recover; it is idempotent and cheap when
// nothing changed.
func (co *Coordinator) Rematerialize() {
	leader := co.clst.Leader(co.cfg.OffsetsTopic, 0)
	if leader == nil {
		// Leaderless offsets partition: the coordinator is unavailable
		// (commits and fetches fail fast) but keeps its cache — real
		// coordinators reload only once the log is back.
		return
	}
	log := leader.Log(co.cfg.OffsetsTopic, 0)
	if log == nil {
		return
	}
	fresh := make(map[offsetKey]offsetEntry, len(co.offsets))
	ok := true
	log.Scan(func(e storage.Entry) bool {
		rec, err := decodeCommitRecord(e.Record.Payload, "", "")
		if err != nil {
			ok = false
			return false
		}
		// Last write wins: scanning in log order is compaction.
		fresh[offsetKey{group: rec.Group, topic: rec.Topic, partition: rec.Partition}] =
			offsetEntry{offset: rec.Offset, generation: rec.Generation}
		return true
	})
	if !ok {
		return // corrupt record: keep the old view rather than lose it
	}
	// Diff old vs new, in deterministic key order, recording regressions.
	keys := make([]offsetKey, 0, len(co.offsets))
	for k := range co.offsets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.group != b.group {
			return a.group < b.group
		}
		if a.topic != b.topic {
			return a.topic < b.topic
		}
		return a.partition < b.partition
	})
	for _, k := range keys {
		old := co.offsets[k]
		now, ok := fresh[k]
		if ok && now.offset >= old.offset {
			continue
		}
		after := int64(-1)
		if ok {
			after = now.offset
		}
		co.stats.OffsetRegressions++
		co.regressions = append(co.regressions, OffsetRegression{
			Group: k.group, Topic: k.topic, Partition: k.partition,
			Before: old.offset, After: after,
		})
	}
	co.offsets = fresh
}
