// Transaction-coordinator tests live in an external test package so
// they can drive the coordinator through the transactional producer
// client (producer imports coordinator).
package coordinator_test

import (
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/producer"
	"kafkarel/internal/wire"
)

// txnRig builds a simulator, a 3-broker cluster with a "stream" topic,
// a group coordinator and a transaction coordinator.
func txnRig(t testing.TB, cfg coordinator.TxnConfig) (*des.Simulator, *cluster.Cluster, *coordinator.Coordinator, *coordinator.TxnCoordinator) {
	t.Helper()
	sim := des.New()
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := clst.CreateTopic("stream", 4, 3); err != nil {
		t.Fatal(err)
	}
	co, err := coordinator.New(sim, clst, coordinator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := coordinator.NewTxn(sim, clst, co, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, clst, co, tc
}

// initTxn runs InitProducerId to completion and returns the identity.
func initTxn(t *testing.T, sim *des.Simulator, tc *coordinator.TxnCoordinator, tid string) (uint64, uint32) {
	t.Helper()
	resp := wire.InitProducerIDResponse{Err: wire.ErrorCode(0xFFFF)}
	tc.HandleInitProducerID(wire.InitProducerIDRequest{TransactionalID: tid},
		func(r wire.InitProducerIDResponse) { resp = r })
	if err := sim.RunUntil(sim.Now() + 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrNone {
		t.Fatalf("init %s: %s", tid, resp.Err)
	}
	return resp.ProducerID, resp.ProducerEpoch
}

// addPartition registers stream/part with the transaction.
func addPartition(t *testing.T, sim *des.Simulator, tc *coordinator.TxnCoordinator, tid string, pid uint64, epoch uint32, part int32) {
	t.Helper()
	resp := wire.AddPartitionsToTxnResponse{Err: wire.ErrorCode(0xFFFF)}
	tc.HandleAddPartitionsToTxn(wire.AddPartitionsToTxnRequest{
		TransactionalID: tid, ProducerID: pid, ProducerEpoch: epoch,
		Topic: "stream", Partition: part,
	}, func(r wire.AddPartitionsToTxnResponse) { resp = r })
	if err := sim.RunUntil(sim.Now() + 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrNone {
		t.Fatalf("add partition: %s", resp.Err)
	}
}

// produceTxn appends one transactional batch to stream/part.
func produceTxn(t *testing.T, sim *des.Simulator, clst *cluster.Cluster, pid uint64, epoch uint32, seq uint64, part int32, keys ...uint64) {
	t.Helper()
	recs := make([]wire.Record, len(keys))
	for i, k := range keys {
		recs[i] = wire.Record{Key: k, Payload: []byte("v")}
	}
	resp := wire.ProduceResponse{Err: wire.ErrorCode(0xFFFF)}
	clst.HandleProduce(wire.ProduceRequest{
		Topic: "stream", Partition: part, Acks: wire.AcksAll,
		Batch: wire.RecordBatch{
			ProducerID: pid, ProducerEpoch: epoch, BaseSequence: seq,
			Idempotent: true, Transactional: true, Records: recs,
		},
	}, func(r wire.ProduceResponse) { resp = r })
	if err := sim.RunUntil(sim.Now() + 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrNone {
		t.Fatalf("transactional produce: %s", resp.Err)
	}
}

// endTxn issues EndTxn and returns a pointer that fills when resolution
// completes.
func endTxn(tc *coordinator.TxnCoordinator, tid string, pid uint64, epoch uint32, commit bool) *wire.EndTxnResponse {
	resp := &wire.EndTxnResponse{Err: wire.ErrorCode(0xFFFF)}
	tc.HandleEndTxn(wire.EndTxnRequest{
		TransactionalID: tid, ProducerID: pid, ProducerEpoch: epoch, Commit: commit,
	}, func(r wire.EndTxnResponse) { *resp = r })
	return resp
}

// fetchAt reads stream/part from offset 0 at the given isolation.
func fetchAt(t *testing.T, clst *cluster.Cluster, part int32, iso wire.IsolationLevel) wire.FetchResponse {
	t.Helper()
	var resp wire.FetchResponse
	clst.HandleFetch(wire.FetchRequest{
		Topic: "stream", Partition: part, Offset: 0, MaxRecords: 1000, Isolation: iso,
	}, func(r wire.FetchResponse) { resp = r })
	return resp
}

func TestTxnInitBumpsEpochAndFencesZombie(t *testing.T) {
	sim, _, _, tc := txnRig(t, coordinator.TxnConfig{DefaultTxnTimeout: time.Hour})
	pid0, epoch0 := initTxn(t, sim, tc, "tx")
	pid1, epoch1 := initTxn(t, sim, tc, "tx")
	if pid0 != pid1 {
		t.Fatalf("producer id changed across re-init: %d -> %d", pid0, pid1)
	}
	if epoch1 != epoch0+1 {
		t.Fatalf("epoch %d after re-init, want %d", epoch1, epoch0+1)
	}
	// The old epoch is a zombie everywhere.
	resp := wire.AddPartitionsToTxnResponse{Err: wire.ErrorCode(0xFFFF)}
	tc.HandleAddPartitionsToTxn(wire.AddPartitionsToTxnRequest{
		TransactionalID: "tx", ProducerID: pid0, ProducerEpoch: epoch0,
		Topic: "stream", Partition: 0,
	}, func(r wire.AddPartitionsToTxnResponse) { resp = r })
	if resp.Err != wire.ErrProducerFenced {
		t.Fatalf("stale-epoch add = %s, want PRODUCER_FENCED", resp.Err)
	}
	if got := tc.Stats().FencedRequests; got != 1 {
		t.Fatalf("fenced requests = %d, want 1", got)
	}
}

func TestTxnCommitWritesMarkersAndOffsets(t *testing.T) {
	sim, clst, co, tc := txnRig(t, coordinator.TxnConfig{DefaultTxnTimeout: time.Hour})
	pid, epoch := initTxn(t, sim, tc, "tx")
	addPartition(t, sim, tc, "tx", pid, epoch, 0)
	produceTxn(t, sim, clst, pid, epoch, 1, 0, 10, 11, 12)

	// The open transaction holds read_committed readers at the LSO.
	if f := fetchAt(t, clst, 0, wire.ReadCommitted); len(f.Records) != 0 || f.LastStable != 0 {
		t.Fatalf("open txn visible at read_committed: %d records, LSO %d", len(f.Records), f.LastStable)
	}
	if f := fetchAt(t, clst, 0, wire.ReadUncommitted); len(f.Records) != 3 {
		t.Fatalf("read_uncommitted sees %d records, want 3", len(f.Records))
	}

	var ocResp wire.TxnOffsetCommitResponse
	tc.HandleTxnOffsetCommit(wire.TxnOffsetCommitRequest{
		TransactionalID: "tx", ProducerID: pid, ProducerEpoch: epoch,
		Group: "g", Topic: "stream", Partition: 0, Offset: 3,
	}, func(r wire.TxnOffsetCommitResponse) { ocResp = r })
	sim.RunUntil(sim.Now() + 100*time.Millisecond)
	if ocResp.Err != wire.ErrNone {
		t.Fatalf("txn offset commit: %s", ocResp.Err)
	}
	// Staged, not durable: the group coordinator must not serve it yet.
	var of wire.OffsetFetchResponse
	co.HandleOffsetFetch(wire.OffsetFetchRequest{Group: "g", Topic: "stream", Partition: 0},
		func(r wire.OffsetFetchResponse) { of = r })
	if of.Err != wire.ErrNoCommittedOffset {
		t.Fatalf("staged offset visible before commit: %+v", of)
	}

	er := endTxn(tc, "tx", pid, epoch, true)
	sim.RunUntil(sim.Now() + 200*time.Millisecond)
	if er.Err != wire.ErrNone {
		t.Fatalf("commit: %s", er.Err)
	}
	if f := fetchAt(t, clst, 0, wire.ReadCommitted); len(f.Records) != 3 {
		t.Fatalf("committed records not visible: %d, want 3", len(f.Records))
	}
	co.HandleOffsetFetch(wire.OffsetFetchRequest{Group: "g", Topic: "stream", Partition: 0},
		func(r wire.OffsetFetchResponse) { of = r })
	if of.Err != wire.ErrNone || of.Offset != 3 {
		t.Fatalf("committed offset = %+v, want offset 3", of)
	}
	st := tc.Stats()
	if st.TxnsCommitted != 1 || st.MarkersWritten != 1 || st.OffsetsForwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := tc.State("tx"); got != "Empty" {
		t.Fatalf("state after commit = %s, want Empty", got)
	}
	if ms := tc.MaterializedState(); ms["tx"] != "Empty" {
		t.Fatalf("transaction log materializes %q, want Empty", ms["tx"])
	}
}

func TestTxnAbortDiscardsRecordsAndOffsets(t *testing.T) {
	sim, clst, co, tc := txnRig(t, coordinator.TxnConfig{DefaultTxnTimeout: time.Hour})
	pid, epoch := initTxn(t, sim, tc, "tx")
	addPartition(t, sim, tc, "tx", pid, epoch, 0)
	produceTxn(t, sim, clst, pid, epoch, 1, 0, 20, 21)
	tc.HandleTxnOffsetCommit(wire.TxnOffsetCommitRequest{
		TransactionalID: "tx", ProducerID: pid, ProducerEpoch: epoch,
		Group: "g", Topic: "stream", Partition: 0, Offset: 2,
	}, func(wire.TxnOffsetCommitResponse) {})
	sim.RunUntil(sim.Now() + 100*time.Millisecond)

	er := endTxn(tc, "tx", pid, epoch, false)
	sim.RunUntil(sim.Now() + 200*time.Millisecond)
	if er.Err != wire.ErrNone {
		t.Fatalf("abort: %s", er.Err)
	}
	// Aborted data filtered at read_committed, residue at read_uncommitted.
	if f := fetchAt(t, clst, 0, wire.ReadCommitted); len(f.Records) != 0 {
		t.Fatalf("aborted records visible at read_committed: %d", len(f.Records))
	}
	if f := fetchAt(t, clst, 0, wire.ReadUncommitted); len(f.Records) != 2 {
		t.Fatalf("read_uncommitted sees %d records, want 2", len(f.Records))
	}
	// Staged offsets discarded.
	var of wire.OffsetFetchResponse
	co.HandleOffsetFetch(wire.OffsetFetchRequest{Group: "g", Topic: "stream", Partition: 0},
		func(r wire.OffsetFetchResponse) { of = r })
	if of.Err != wire.ErrNoCommittedOffset {
		t.Fatalf("aborted offset leaked: %+v", of)
	}
	st := tc.Stats()
	if st.TxnsAborted != 1 || st.OffsetsForwarded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTxnTimeoutAbortsAndFencesStalledProducer(t *testing.T) {
	sim, clst, _, tc := txnRig(t, coordinator.TxnConfig{DefaultTxnTimeout: 100 * time.Millisecond})
	pid, epoch := initTxn(t, sim, tc, "tx")
	addPartition(t, sim, tc, "tx", pid, epoch, 0)
	produceTxn(t, sim, clst, pid, epoch, 1, 0, 30)

	// The producer stalls; the coordinator must abort on its own.
	sim.RunUntil(sim.Now() + 300*time.Millisecond)
	st := tc.Stats()
	if st.TimeoutAborts != 1 || st.TxnsAborted != 1 {
		t.Fatalf("stats after stall = %+v", st)
	}
	if got := tc.State("tx"); got != "Empty" {
		t.Fatalf("state after timeout = %s, want Empty", got)
	}
	if f := fetchAt(t, clst, 0, wire.ReadCommitted); len(f.Records) != 0 {
		t.Fatalf("timed-out records visible at read_committed: %d", len(f.Records))
	}
	// The stalled producer wakes up and tries to commit: fenced, fatal.
	er := endTxn(tc, "tx", pid, epoch, true)
	if er.Err != wire.ErrProducerFenced {
		t.Fatalf("stalled commit = %s, want PRODUCER_FENCED", er.Err)
	}
}

func TestTxnEndDuringResolutionIsConcurrent(t *testing.T) {
	sim, clst, _, tc := txnRig(t, coordinator.TxnConfig{DefaultTxnTimeout: time.Hour})
	pid, epoch := initTxn(t, sim, tc, "tx")
	addPartition(t, sim, tc, "tx", pid, epoch, 0)
	produceTxn(t, sim, clst, pid, epoch, 1, 0, 40)

	first := endTxn(tc, "tx", pid, epoch, true)
	// Same-instant retry while phase two is in flight.
	second := endTxn(tc, "tx", pid, epoch, true)
	if second.Err != wire.ErrConcurrentTransactions {
		t.Fatalf("concurrent EndTxn = %s, want CONCURRENT_TRANSACTIONS", second.Err)
	}
	sim.RunUntil(sim.Now() + 200*time.Millisecond)
	if first.Err != wire.ErrNone {
		t.Fatalf("original EndTxn: %s", first.Err)
	}
}

func TestTxnRedriveCompletesCommitAcrossBrokerCrash(t *testing.T) {
	sim, clst, _, tc := txnRig(t, coordinator.TxnConfig{DefaultTxnTimeout: time.Hour})
	pid, epoch := initTxn(t, sim, tc, "tx")
	addPartition(t, sim, tc, "tx", pid, epoch, 0)
	produceTxn(t, sim, clst, pid, epoch, 1, 0, 50, 51)

	// Kill the data partition's leader the instant the commit is issued:
	// the marker's ack vanishes and the coordinator must re-drive onto
	// the new leader (and again after recovery).
	leader := clst.Leader("stream", 0)
	er := endTxn(tc, "tx", pid, epoch, true)
	if err := clst.FailBroker(leader.ID()); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(sim.Now() + 500*time.Millisecond)
	if err := clst.RecoverBroker(leader.ID()); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(sim.Now() + 500*time.Millisecond)
	if er.Err != wire.ErrNone {
		t.Fatalf("commit across leader crash: %s", er.Err)
	}
	if f := fetchAt(t, clst, 0, wire.ReadCommitted); len(f.Records) != 2 {
		t.Fatalf("committed records after crash = %d, want 2", len(f.Records))
	}
	if tc.Stats().TxnsCommitted != 1 {
		t.Fatalf("stats = %+v", tc.Stats())
	}
}

func TestTxnInitAbortsPreviousHoldersOpenTransaction(t *testing.T) {
	sim, clst, _, tc := txnRig(t, coordinator.TxnConfig{DefaultTxnTimeout: time.Hour})
	pid, epoch := initTxn(t, sim, tc, "tx")
	addPartition(t, sim, tc, "tx", pid, epoch, 0)
	produceTxn(t, sim, clst, pid, epoch, 1, 0, 60)

	// A new incarnation inits while the old transaction is Ongoing: the
	// init must abort it before answering.
	pid2, epoch2 := initTxn(t, sim, tc, "tx")
	if pid2 != pid || epoch2 != epoch+1 {
		t.Fatalf("re-init identity = (%d,%d), want (%d,%d)", pid2, epoch2, pid, epoch+1)
	}
	if tc.Stats().TxnsAborted != 1 {
		t.Fatalf("previous transaction not aborted: %+v", tc.Stats())
	}
	if f := fetchAt(t, clst, 0, wire.ReadCommitted); len(f.Records) != 0 {
		t.Fatalf("orphaned records visible at read_committed: %d", len(f.Records))
	}
}

// BenchmarkTxnCommitPath measures one full transactional cycle through
// the client: Begin, AddPartitions + one transactional batch (acks=all),
// a staged offset, and the two-phase EndTxn (durable prepare, control
// marker, offset forward, durable completion) — the steady-state cost of
// an exactly-once pipeline hop.
func BenchmarkTxnCommitPath(b *testing.B) {
	sim, clst, co, tc := txnRig(b, coordinator.TxnConfig{DefaultTxnTimeout: time.Hour})
	p, err := producer.NewTxnProducer(sim, clst, tc, producer.TxnProducerConfig{
		TransactionalID: "bench", TxnTimeout: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	initErr := wire.ErrorCode(0xFFFF)
	p.Init(func(code wire.ErrorCode) { initErr = code })
	if err := sim.RunUntil(sim.Now() + 100*time.Millisecond); err != nil {
		b.Fatal(err)
	}
	if initErr != wire.ErrNone {
		b.Fatalf("init: %s", initErr)
	}
	recs := []wire.Record{{Key: 1, Payload: make([]byte, 64)}}
	_ = co

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Begin(); err != nil {
			b.Fatal(err)
		}
		cycle := wire.ErrorCode(0xFFFF)
		p.Send("stream", 0, recs, func(code wire.ErrorCode) {
			if code != wire.ErrNone {
				cycle = code
				return
			}
			p.SendOffset("g", "stream", 0, int64(i+1), func(code wire.ErrorCode) {
				if code != wire.ErrNone {
					cycle = code
					return
				}
				p.Commit(func(code wire.ErrorCode) { cycle = code })
			})
		})
		for cycle == wire.ErrorCode(0xFFFF) {
			if err := sim.RunUntil(sim.Now() + time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
		if cycle != wire.ErrNone {
			b.Fatalf("cycle %d: %s", i, cycle)
		}
	}
	b.StopTimer()
	if got := tc.Stats().TxnsCommitted; got != uint64(b.N) {
		b.Fatalf("committed = %d, want %d", got, b.N)
	}
}
