package coordinator

import (
	"math/rand"
	"testing"
	"time"

	"kafkarel/internal/wire"
)

// coopJoin sends a cooperative-protocol JoinGroup carrying the owned
// partitions the member retained from its previous assignment.
func coopJoin(co *Coordinator, group, member string, owned []int32) *wire.JoinGroupResponse {
	resp := &wire.JoinGroupResponse{Err: wire.ErrorCode(0xFFFF)}
	co.HandleJoinGroup(wire.JoinGroupRequest{
		Group: group, MemberID: member, Topic: "stream",
		Protocol: wire.ProtocolCooperative, OwnedPartitions: owned,
	}, func(r wire.JoinGroupResponse) { *resp = r })
	return resp
}

func eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCoopStickyCrashMovesOnlyDeadMembersPartitions: a member loss
// under the cooperative-sticky assignor converges in a single round —
// survivors keep exactly what they owned, the dead member's partitions
// fill the gaps, and no follow-up rebalance is scheduled.
func TestCoopStickyCrashMovesOnlyDeadMembersPartitions(t *testing.T) {
	sim, _, co := rig(t, Config{})
	r0 := coopJoin(co, "g", "", nil)
	r1 := coopJoin(co, "g", "", nil)
	r2 := coopJoin(co, "g", "", nil)
	sim.RunUntil(50 * time.Millisecond)
	a0 := sync(t, co, "g", r0.MemberID, r0.Generation)
	a1 := sync(t, co, "g", r1.MemberID, r1.Generation)
	a2 := sync(t, co, "g", r2.MemberID, r2.Generation)
	// Initial shares over 4 partitions: 2/1/1 in sorted member order.
	if !eq(a0, []int32{0, 1}) || !eq(a1, []int32{2}) || !eq(a2, []int32{3}) {
		t.Fatalf("initial sticky fill = %v / %v / %v", a0, a1, a2)
	}

	// r1 disappears; survivors rejoin with their retained owned sets.
	co.HandleLeaveGroup(wire.LeaveGroupRequest{Group: "g", MemberID: r1.MemberID}, nil)
	n0 := coopJoin(co, "g", r0.MemberID, a0)
	n2 := coopJoin(co, "g", r2.MemberID, a2)
	sim.RunUntil(100 * time.Millisecond)
	if n0.Err != wire.ErrNone || n2.Err != wire.ErrNone {
		t.Fatalf("rejoin: %s / %s", n0.Err, n2.Err)
	}
	b0 := sync(t, co, "g", r0.MemberID, n0.Generation)
	b2 := sync(t, co, "g", r2.MemberID, n2.Generation)
	// One round: survivors keep [0,1] and [3]; only the dead member's
	// partition 2 moved, to the member below its balanced share.
	if !eq(b0, []int32{0, 1}) {
		t.Fatalf("survivor lost retained partitions: %v, want [0 1]", b0)
	}
	if !eq(b2, []int32{2, 3}) {
		t.Fatalf("freed partition not absorbed in one round: %v, want [2 3]", b2)
	}
	if got := co.Stats().CoopFollowUps; got != 0 {
		t.Fatalf("crash convergence scheduled %d follow-up rebalances, want 0", got)
	}
	if got := co.GroupState("g"); got != "Stable" {
		t.Fatalf("state = %s, want Stable", got)
	}
}

// TestCoopStickyJoinMovesExactlyNewcomersShare: a fresh joiner
// converges in two rounds. Phase 1 trims the over-share incumbent
// (revocation at sync) while everything it still owns keeps running;
// the automatic follow-up hands exactly the freed share to the
// newcomer. No retained partition moves in either round.
func TestCoopStickyJoinMovesExactlyNewcomersShare(t *testing.T) {
	sim, _, co := rig(t, Config{})
	r0 := coopJoin(co, "g", "", nil)
	r1 := coopJoin(co, "g", "", nil)
	sim.RunUntil(50 * time.Millisecond)
	a0 := sync(t, co, "g", r0.MemberID, r0.Generation)
	a1 := sync(t, co, "g", r1.MemberID, r1.Generation)
	if !eq(a0, []int32{0, 1}) || !eq(a1, []int32{2, 3}) {
		t.Fatalf("initial fill = %v / %v", a0, a1)
	}

	rn := coopJoin(co, "g", "", nil)
	n0 := coopJoin(co, "g", r0.MemberID, a0)
	n1 := coopJoin(co, "g", r1.MemberID, a1)
	sim.RunUntil(100 * time.Millisecond)
	if rn.Err != wire.ErrNone || n0.Err != wire.ErrNone || n1.Err != wire.ErrNone {
		t.Fatalf("phase-1 joins: %s / %s / %s", rn.Err, n0.Err, n1.Err)
	}
	b0 := sync(t, co, "g", r0.MemberID, n0.Generation)
	b1 := sync(t, co, "g", r1.MemberID, n1.Generation)
	bn := sync(t, co, "g", rn.MemberID, rn.Generation)
	// Phase 1: shares are 2/1/1. The incumbent over its share is
	// trimmed (partition 3 revoked at sync); the newcomer gets nothing
	// yet because the freed partition is withheld until revoked.
	if !eq(b0, []int32{0, 1}) || !eq(b1, []int32{2}) || len(bn) != 0 {
		t.Fatalf("phase 1 = %v / %v / %v, want [0 1] / [2] / []", b0, b1, bn)
	}
	if got := co.Stats().CoopFollowUps; got != 1 {
		t.Fatalf("CoopFollowUps = %d after phase-1 stabilisation, want 1", got)
	}

	// Phase 2 opened automatically; members rejoin with phase-1 owned.
	f0 := coopJoin(co, "g", r0.MemberID, b0)
	f1 := coopJoin(co, "g", r1.MemberID, b1)
	fn := coopJoin(co, "g", rn.MemberID, bn)
	sim.RunUntil(200 * time.Millisecond)
	c0 := sync(t, co, "g", r0.MemberID, f0.Generation)
	c1 := sync(t, co, "g", r1.MemberID, f1.Generation)
	cn := sync(t, co, "g", rn.MemberID, fn.Generation)
	if !eq(c0, []int32{0, 1}) || !eq(c1, []int32{2}) || !eq(cn, []int32{3}) {
		t.Fatalf("phase 2 = %v / %v / %v, want [0 1] / [2] / [3]", c0, c1, cn)
	}
	if got := co.Stats().CoopFollowUps; got != 1 {
		t.Fatalf("phase 2 scheduled another follow-up (CoopFollowUps = %d), want 1", got)
	}
	if got := co.GroupState("g"); got != "Stable" {
		t.Fatalf("state = %s, want Stable", got)
	}
}

// TestCommitRacingJoinBarrierRejectedNotDropped pins the commit/join
// race semantics: a current-generation commit during
// PreparingRebalance is the pre-rejoin flush and must land; a commit
// in the new generation from a member that has joined but not yet
// synced must be rejected with REBALANCE_IN_PROGRESS — synchronously,
// exactly once, never silently dropped.
func TestCommitRacingJoinBarrierRejectedNotDropped(t *testing.T) {
	sim, _, co := rig(t, Config{})
	r0 := coopJoin(co, "g", "", nil)
	r1 := coopJoin(co, "g", "", nil)
	sim.RunUntil(50 * time.Millisecond)
	a0 := sync(t, co, "g", r0.MemberID, r0.Generation)
	sync(t, co, "g", r1.MemberID, r1.Generation)

	// Open a rebalance (a third member joins) and immediately commit in
	// the still-current generation: the pre-rejoin flush.
	coopJoin(co, "g", "", nil)
	flush := commit(co, "g", r0.MemberID, r0.Generation, 0, 7)
	if flush.Err != wire.ErrorCode(0xFFFF) {
		t.Fatalf("pre-rejoin flush answered synchronously: %s", flush.Err)
	}
	sim.RunUntil(60 * time.Millisecond)
	if flush.Err != wire.ErrNone {
		t.Fatalf("pre-rejoin flush during PreparingRebalance = %s, want ErrNone", flush.Err)
	}
	if f := fetchOffset(co, "g", 0); f.Err != wire.ErrNone || f.Offset != 7 {
		t.Fatalf("flush not materialized in old generation: err=%s offset=%d", f.Err, f.Offset)
	}

	// Close the barrier: everyone rejoins, generation bumps, nobody has
	// synced yet. A commit in the NEW generation races the barrier.
	n0 := coopJoin(co, "g", r0.MemberID, a0)
	coopJoin(co, "g", r1.MemberID, nil)
	sim.RunUntil(120 * time.Millisecond)
	if n0.Err != wire.ErrNone {
		t.Fatalf("rejoin: %s", n0.Err)
	}
	if got := co.GroupState("g"); got != "CompletingRebalance" {
		t.Fatalf("state = %s, want CompletingRebalance", got)
	}
	raced := commit(co, "g", r0.MemberID, n0.Generation, 0, 9)
	if raced.Err != wire.ErrRebalanceInProgress {
		t.Fatalf("commit racing the join barrier = %s, want REBALANCE_IN_PROGRESS", raced.Err)
	}
	// Old-generation commits at the same point are generation-fenced.
	if stale := commit(co, "g", r0.MemberID, r0.Generation, 0, 9); stale.Err != wire.ErrIllegalGeneration {
		t.Fatalf("stale-generation commit = %s, want ILLEGAL_GENERATION", stale.Err)
	}
	// The rejection is advisory, not destructive: after syncing, the
	// same commit succeeds in the new generation.
	sync(t, co, "g", r0.MemberID, n0.Generation)
	retry := commit(co, "g", r0.MemberID, n0.Generation, 0, 9)
	sim.RunUntil(sim.Now() + 60*time.Millisecond)
	if retry.Err != wire.ErrNone {
		t.Fatalf("post-sync retry = %s, want ErrNone", retry.Err)
	}
	if f := fetchOffset(co, "g", 0); f.Offset != 9 {
		t.Fatalf("materialized offset = %d, want 9", f.Offset)
	}
}

// TestCommitJoinRaceProperty drives randomized join/sync/commit
// interleavings across many seeds and holds the liveness property of
// the commit path: every HandleOffsetCommit callback fires exactly
// once, with either ErrNone (the offset is durably materialized) or a
// clean rejection — never a silent drop, never a double fire. The
// schedule is built to also exercise the commit-racing-the-join-barrier
// window, and the run asserts that the REBALANCE_IN_PROGRESS rejection
// actually occurred somewhere across the seeds.
func TestCommitJoinRaceProperty(t *testing.T) {
	type tracked struct {
		fired int
		err   wire.ErrorCode
	}
	type agent struct {
		id    string
		gen   int32
		owned []int32
		join  *wire.JoinGroupResponse
	}
	var rebalanceRejections, landed int
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sim, _, co := rig(t, Config{})
		agents := make([]*agent, 3)
		for i := range agents {
			agents[i] = &agent{}
		}
		var commits []*tracked
		var offset int64
		doCommit := func(a *agent) {
			if a.id == "" {
				return
			}
			offset++
			c := &tracked{}
			commits = append(commits, c)
			co.HandleOffsetCommit(wire.OffsetCommitRequest{
				Group: "g", MemberID: a.id, Generation: a.gen,
				Topic: "stream", Partition: int32(rng.Intn(4)), Offset: offset,
			}, func(r wire.OffsetCommitResponse) {
				c.fired++
				c.err = r.Err
			})
		}
		for step := 0; step < 120; step++ {
			a := agents[rng.Intn(len(agents))]
			// Harvest a completed join; half the time commit BEFORE
			// syncing — the exact window the join barrier fences.
			if a.join != nil && a.join.Err != wire.ErrorCode(0xFFFF) {
				r := a.join
				a.join = nil
				if r.Err == wire.ErrNone {
					a.id, a.gen = r.MemberID, r.Generation
					if rng.Intn(2) == 0 {
						doCommit(a)
					}
					var sr wire.SyncGroupResponse
					co.HandleSyncGroup(wire.SyncGroupRequest{
						Group: "g", MemberID: a.id, Generation: a.gen,
					}, func(r wire.SyncGroupResponse) { sr = r })
					if sr.Err == wire.ErrNone {
						a.owned = append(a.owned[:0], sr.Assigned...)
					}
				}
			}
			switch rng.Intn(5) {
			case 0: // (re)join, cooperative, carrying owned partitions
				if a.join == nil {
					a.join = coopJoin(co, "g", a.id, a.owned)
				}
			case 1:
				doCommit(a)
			case 2:
				if a.id != "" {
					co.HandleHeartbeat(wire.HeartbeatRequest{
						Group: "g", MemberID: a.id, Generation: a.gen,
					}, func(wire.HeartbeatResponse) {})
				}
			case 3:
				if a.id != "" && rng.Intn(8) == 0 { // occasional clean leave
					co.HandleLeaveGroup(wire.LeaveGroupRequest{Group: "g", MemberID: a.id}, nil)
					a.id, a.owned = "", nil
				}
			case 4:
				sim.RunUntil(sim.Now() + time.Duration(1+rng.Intn(10))*time.Millisecond)
			}
		}
		// Drain everything in flight.
		sim.RunUntil(sim.Now() + 2*time.Second)
		for i, c := range commits {
			switch c.fired {
			case 0:
				t.Fatalf("seed %d: commit %d silently dropped (callback never fired)", seed, i)
			case 1:
			default:
				t.Fatalf("seed %d: commit %d callback fired %d times", seed, i, c.fired)
			}
			switch c.err {
			case wire.ErrNone:
				landed++
			case wire.ErrIllegalGeneration, wire.ErrUnknownMemberID:
			case wire.ErrRebalanceInProgress:
				rebalanceRejections++
			default:
				t.Fatalf("seed %d: commit %d resolved with unexpected error %s", seed, i, c.err)
			}
		}
	}
	if landed == 0 {
		t.Fatal("no commit landed across any seed — schedule never exercised the happy path")
	}
	if rebalanceRejections == 0 {
		t.Fatal("no commit was rejected with REBALANCE_IN_PROGRESS across any seed — the join-barrier race was never exercised")
	}
}
