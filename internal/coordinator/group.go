package coordinator

import (
	"sort"

	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// The group state machine follows Kafka's GroupCoordinator:
//
//	Empty ──join──▶ PreparingRebalance ──barrier──▶ CompletingRebalance
//	                    ▲      │ all synced              │
//	                    │      ▼                         ▼
//	                 join/leave/expiry ◀────────────── Stable
//
// Entering PreparingRebalance opens a join barrier: every live member
// must rejoin (members learn via ErrRebalanceInProgress on heartbeats
// and commits). The barrier closes when all members have rejoined —
// checked every RebalanceDelay — or at RebalanceTimeout, when
// stragglers are evicted. Closing the barrier bumps the generation,
// computes range assignments, and answers the parked joins; members
// then SyncGroup to fetch their assignment, and the group is Stable
// once every member has synced.

// prepareRebalance moves the group into PreparingRebalance (or, if
// already there, re-checks the barrier). Joins parked before the
// transition count as rejoined.
func (g *group) prepareRebalance() {
	if g.state != statePreparingRebalance {
		g.state = statePreparingRebalance
		g.rebalanceAt = g.co.sim.Now()
		g.joinDeadline = g.co.sim.Now() + g.co.cfg.RebalanceTimeout
		for _, m := range g.members {
			m.joined = m.pendingJoin != nil
		}
		if g.rebalanceTmr == nil {
			g.rebalanceTmr = des.NewTimer(g.co.sim, g.rebalanceTick)
		}
		g.rebalanceTmr.Reset(g.co.cfg.RebalanceDelay)
	}
	// The group's very first rebalance holds the barrier open for one
	// full RebalanceDelay window — even as later joins arrive and the
	// barrier is momentarily "all joined" — so simultaneous initial
	// joins batch into a single generation instead of one generation
	// per joiner (Kafka's group.initial.rebalance.delay.ms).
	if g.generation > 0 && g.allJoined() {
		g.completeJoin()
	}
}

// rebalanceTick is the join-barrier poll: complete when every member
// has rejoined, evict stragglers at the deadline, otherwise keep
// waiting.
func (g *group) rebalanceTick() {
	if g.state != statePreparingRebalance {
		return
	}
	if g.allJoined() || g.co.sim.Now() >= g.joinDeadline {
		g.completeJoin()
		return
	}
	g.rebalanceTmr.Reset(g.co.cfg.RebalanceDelay)
}

// completeJoin closes the join barrier: evict members that never
// rejoined, bump the generation, compute range assignments over the
// sorted member ids, and answer every parked join.
func (g *group) completeJoin() {
	co := g.co
	if g.rebalanceTmr != nil {
		g.rebalanceTmr.Stop()
	}
	ids := make([]string, 0, len(g.members))
	for id := range g.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	kept := ids[:0]
	for _, id := range ids {
		m := g.members[id]
		if m.joined {
			kept = append(kept, id)
			continue
		}
		co.stats.Evictions++
		g.gstats.Evictions++
		g.removeMember(m)
	}
	g.generation++
	g.needsFollowUp = false
	if len(kept) == 0 {
		g.state = stateEmpty
		return
	}
	// Cooperative incremental assignment (KIP-429) engages when every
	// kept member joined with the cooperative protocol, and uses the
	// cooperative-sticky assignor — the only assignor the cooperative
	// protocol is legal with in Kafka, because stickiness is what keeps
	// the moved set small: each member keeps what it owns (trimmed to
	// its balanced share, lowest partitions first), unowned partitions
	// fill members below their share, and partitions a member must give
	// up stay withheld (owned until revoked) for a follow-up rebalance —
	// triggered the moment the group stabilises — to hand out. A member
	// crash therefore moves only the dead member's partitions, in one
	// round; a join moves exactly the new member's share, in two. Owned
	// sets come from the members' join requests; conflicting claims
	// resolve to the first claimant in sorted member order. Eager groups
	// (any member at ProtocolEager) use Kafka's range assignor:
	// contiguous partition ranges over members sorted by id, earlier
	// members taking the larger ranges.
	coop := true
	for _, id := range kept {
		if g.members[id].protocol < wire.ProtocolCooperative {
			coop = false
			break
		}
	}
	per := int(g.partitions) / len(kept)
	extra := int(g.partitions) % len(kept)
	share := func(i int) int {
		if i < extra {
			return per + 1
		}
		return per
	}
	if coop {
		owner := make(map[int32]string, g.partitions)
		for _, id := range kept {
			for _, p := range g.members[id].owned {
				if p < 0 || p >= g.partitions {
					continue
				}
				if _, taken := owner[p]; !taken {
					owner[p] = id
				}
			}
		}
		ownedBy := make(map[string][]int32, len(kept))
		for p := int32(0); p < g.partitions; p++ {
			if id, ok := owner[p]; ok {
				ownedBy[id] = append(ownedBy[id], p)
			}
		}
		room := make(map[string]int, len(kept))
		for i, id := range kept {
			m := g.members[id]
			own := ownedBy[id]
			if t := share(i); len(own) > t {
				// Over the balanced share: revoke the highest-numbered
				// excess at sync; it stays owned (withheld) until then.
				g.needsFollowUp = true
				own = own[:t]
			}
			m.assigned = append(m.assigned[:0], own...)
			room[id] = share(i) - len(own)
			m.joined, m.synced = false, false
		}
		ui := 0
		for p := int32(0); p < g.partitions; p++ {
			if _, taken := owner[p]; taken {
				continue
			}
			for ui < len(kept) && room[kept[ui]] <= 0 {
				ui++
			}
			if ui >= len(kept) {
				break
			}
			id := kept[ui]
			m := g.members[id]
			m.assigned = append(m.assigned, p)
			room[id]--
		}
		for _, id := range kept {
			a := g.members[id].assigned
			sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		}
	} else {
		next := int32(0)
		for i, id := range kept {
			m := g.members[id]
			m.assigned = m.assigned[:0]
			for j := 0; j < share(i); j++ {
				m.assigned = append(m.assigned, next)
				next++
			}
			m.joined, m.synced = false, false
		}
	}
	g.state = stateCompletingRebalance
	co.stats.Rebalances++
	g.gstats.Rebalances++
	co.hRebalance.Observe(int64(co.sim.Now() - g.rebalanceAt))
	members := append([]string(nil), kept...)
	leader := members[0]
	// Answer parked joins in sorted member order (deterministic). The
	// callbacks may reenter the coordinator (sync, commit) immediately.
	for _, id := range members {
		m := g.members[id]
		done := m.pendingJoin
		if done == nil {
			continue
		}
		m.pendingJoin = nil
		done(wire.JoinGroupResponse{
			CorrelationID: m.corrJoin,
			Group:         g.id,
			Generation:    g.generation,
			MemberID:      m.id,
			Leader:        leader,
			Members:       members,
			Err:           wire.ErrNone,
		})
	}
}

// allJoined reports whether every current member has rejoined the
// pending rebalance (vacuously true for an empty group).
func (g *group) allJoined() bool {
	for _, m := range g.members {
		if !m.joined {
			return false
		}
	}
	return true
}

// allSynced reports whether every member fetched the current
// generation's assignment.
func (g *group) allSynced() bool {
	for _, m := range g.members {
		if !m.synced {
			return false
		}
	}
	return true
}

// expireSession evicts a member whose session timer fired — the
// coordinator's view of a crashed or stalled consumer — and rebalances
// its partitions to the survivors.
func (g *group) expireSession(m *member) {
	if g.members[m.id] != m {
		return // already removed (stale timer)
	}
	g.co.stats.SessionExpirations++
	g.gstats.SessionExpirations++
	g.removeMember(m)
	g.prepareRebalance()
}

// removeMember drops a member, stopping its session timer and failing
// any parked join.
func (g *group) removeMember(m *member) {
	m.timer.Stop()
	delete(g.members, m.id)
	if m.instanceID != "" && g.instances[m.instanceID] == m.id {
		delete(g.instances, m.instanceID)
	}
	if m.pendingJoin != nil {
		done := m.pendingJoin
		m.pendingJoin = nil
		done(wire.JoinGroupResponse{
			CorrelationID: m.corrJoin,
			Group:         g.id,
			MemberID:      m.id,
			Err:           wire.ErrUnknownMemberID,
		})
	}
}
