package coordinator

import (
	"fmt"
	"sort"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/storage"
	"kafkarel/internal/wire"
)

// TxnCoordinator is the broker-side transaction coordinator, modeled on
// Kafka's: it binds transactional.ids to (producer id, epoch) pairs,
// fences zombies by bumping the epoch, records every state transition
// durably in a replicated __transaction_state log, and drives the
// two-phase outcome — a commit or abort decision made durable first,
// then control markers written into every partition the transaction
// touched (plus the consumed offsets forwarded to the group coordinator
// on commit), then a durable completion record.
//
// The marker and offset writes are re-drivable: every step is
// idempotent at its destination (a replayed marker is a no-op on the
// broker's transaction view, a replayed offset commit is last-write-
// wins on the same key), so after a broker crash or a lost append the
// coordinator simply re-issues whatever has not been acknowledged,
// on a retry cadence and again after every topology change.

// DefaultTxnTopic is the internal transaction-state topic name.
const DefaultTxnTopic = "__transaction_state"

// txnProducerIDBase offsets coordinator-assigned producer ids away from
// the ids hand-configured on plain idempotent producers.
const txnProducerIDBase = 1 << 32

// TxnConfig tunes the transaction coordinator.
type TxnConfig struct {
	// TxnTopic names the internal transaction-state log (default
	// DefaultTxnTopic).
	TxnTopic string
	// TxnReplication is the state topic's replication factor (default
	// min(3, brokers), Kafka's transaction.state.log.replication.factor
	// spirit).
	TxnReplication int
	// TxnAcks is the acks mode for state-log appends (default acks=all).
	TxnAcks wire.RequiredAcks
	// DefaultTxnTimeout bounds how long a transaction may stay open
	// before the coordinator aborts it (default 100ms of virtual time);
	// producers may request a shorter or longer bound per id.
	DefaultTxnTimeout time.Duration
	// RetryBackoff is the re-drive cadence for unacknowledged marker,
	// offset, and state-log writes (default 10ms).
	RetryBackoff time.Duration
}

func (c *TxnConfig) applyDefaults(brokers int) {
	if c.TxnTopic == "" {
		c.TxnTopic = DefaultTxnTopic
	}
	if c.TxnReplication <= 0 {
		c.TxnReplication = 3
		if brokers < 3 {
			c.TxnReplication = brokers
		}
	}
	if c.TxnAcks == wire.AcksNone {
		c.TxnAcks = wire.AcksAll
	}
	if c.DefaultTxnTimeout <= 0 {
		c.DefaultTxnTimeout = 100 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
}

// TxnStats counts transaction-coordinator activity.
type TxnStats struct {
	InitRequests     uint64 // InitProducerId requests served
	EpochBumps       uint64 // epoch increments (every re-init and timeout)
	TxnsCommitted    uint64 // transactions driven to a durable commit
	TxnsAborted      uint64 // transactions driven to a durable abort
	TimeoutAborts    uint64 // aborts initiated by the transaction timeout
	FencedRequests   uint64 // requests rejected with ErrProducerFenced
	MarkersWritten   uint64 // control markers acknowledged by partitions
	OffsetsForwarded uint64 // transactional offsets acknowledged by the group coordinator
	Redrives         uint64 // re-drive passes over in-doubt transactions
	StateAppends     uint64 // transaction-state log records acknowledged
}

// Transaction states, in both memory and the state log.
const (
	txnEmpty         int8 = iota // identity assigned, no open transaction
	txnOngoing                   // data or offsets registered, undecided
	txnPrepareCommit             // commit decided durably; markers in flight
	txnPrepareAbort              // abort decided durably; markers in flight
)

// txn is one transactional.id's coordinator-side state.
type txn struct {
	tc    *TxnCoordinator
	tid   string
	pid   uint64
	epoch uint32
	state int8

	partitions []wire.TxnPartition
	group      string
	offsets    []wire.TxnOffset

	timeout      time.Duration
	timeoutTimer *des.Timer // fires a timeout abort while Ongoing
	retryTimer   *des.Timer // re-drives unacknowledged writes

	// Resolution bookkeeping for the prepare -> markers -> offsets ->
	// complete pipeline. attempt invalidates callbacks from a superseded
	// drive pass; pending counts this pass's outstanding acks.
	prepared   bool
	markerDone []bool
	offsetDone []bool
	attempt    uint64
	pending    int

	pendingEnd  func(wire.EndTxnResponse)
	endCorr     uint32
	pendingInit func(wire.InitProducerIDResponse)
	initCorr    uint32
}

// TxnCoordinator owns every transactional.id's state machine. Not safe
// for concurrent use; the DES is single-threaded.
type TxnCoordinator struct {
	sim     *des.Simulator
	clst    *cluster.Cluster
	groupCo *Coordinator // offsets forwarding target; may be nil
	cfg     TxnConfig
	txns    map[string]*txn
	nextPID uint64
	seq     uint64 // state-log batch sequence
	stats   TxnStats
}

// NewTxn builds a transaction coordinator over the cluster, creating
// the internal transaction-state topic, and registers itself for
// topology-change re-drives. groupCo receives transactional offset
// commits on commit; it may be nil when no consumer group is involved.
func NewTxn(sim *des.Simulator, clst *cluster.Cluster, groupCo *Coordinator, cfg TxnConfig) (*TxnCoordinator, error) {
	if sim == nil {
		return nil, fmt.Errorf("coordinator: nil simulator")
	}
	if clst == nil {
		return nil, fmt.Errorf("coordinator: nil cluster")
	}
	cfg.applyDefaults(clst.Brokers())
	if err := clst.CreateTopic(cfg.TxnTopic, 1, cfg.TxnReplication); err != nil {
		return nil, fmt.Errorf("coordinator: txn topic: %w", err)
	}
	tc := &TxnCoordinator{
		sim:     sim,
		clst:    clst,
		groupCo: groupCo,
		cfg:     cfg,
		txns:    make(map[string]*txn),
		nextPID: txnProducerIDBase,
	}
	clst.AddTopologyHook(tc.Redrive)
	return tc, nil
}

// TxnConfig returns the effective (defaulted) configuration.
func (tc *TxnCoordinator) TxnConfig() TxnConfig { return tc.cfg }

// Stats returns the activity counters.
func (tc *TxnCoordinator) Stats() TxnStats { return tc.stats }

// State returns a transaction's current state name, for tests.
func (tc *TxnCoordinator) State(tid string) string {
	t, ok := tc.txns[tid]
	if !ok {
		return ""
	}
	switch t.state {
	case txnEmpty:
		return "Empty"
	case txnOngoing:
		return "Ongoing"
	case txnPrepareCommit:
		return "PrepareCommit"
	case txnPrepareAbort:
		return "PrepareAbort"
	}
	return fmt.Sprintf("state(%d)", t.state)
}

// fenceCheck validates a request's producer identity against the
// transaction. A stale epoch is a zombie (fatal ErrProducerFenced); a
// wrong or future identity is ErrInvalidTxnState.
func (tc *TxnCoordinator) fenceCheck(t *txn, pid uint64, epoch uint32) wire.ErrorCode {
	if t == nil || pid != t.pid || epoch > t.epoch {
		return wire.ErrInvalidTxnState
	}
	if epoch < t.epoch {
		tc.stats.FencedRequests++
		return wire.ErrProducerFenced
	}
	return wire.ErrNone
}

// HandleInitProducerID grants (or re-grants) a producer identity for a
// transactional.id. The epoch is bumped on every re-init, fencing any
// zombie still holding the previous one; a transaction the previous
// holder left open is aborted before the new identity is answered.
func (tc *TxnCoordinator) HandleInitProducerID(req wire.InitProducerIDRequest, done func(wire.InitProducerIDResponse)) {
	fail := func(code wire.ErrorCode) {
		if done != nil {
			done(wire.InitProducerIDResponse{CorrelationID: req.CorrelationID, Err: code})
		}
	}
	if req.TransactionalID == "" {
		fail(wire.ErrInvalidTxnState)
		return
	}
	tc.stats.InitRequests++
	t, ok := tc.txns[req.TransactionalID]
	if !ok {
		t = &txn{tc: tc, tid: req.TransactionalID, pid: tc.nextPID, state: txnEmpty}
		tc.nextPID++
		tc.txns[req.TransactionalID] = t
	} else {
		t.epoch++
		tc.stats.EpochBumps++
	}
	t.timeout = req.TxnTimeout
	if t.timeout <= 0 {
		t.timeout = tc.cfg.DefaultTxnTimeout
	}
	// A parked init from a previous holder is superseded: it belongs to a
	// producer the new epoch just fenced.
	if t.pendingInit != nil {
		prev, corr := t.pendingInit, t.initCorr
		t.pendingInit = nil
		prev(wire.InitProducerIDResponse{CorrelationID: corr, Err: wire.ErrProducerFenced})
	}
	t.pendingInit = done
	t.initCorr = req.CorrelationID
	switch t.state {
	case txnOngoing:
		// Abort the previous holder's open transaction under the new
		// epoch; the init answer waits for the abort to complete.
		tc.beginResolution(t, false)
	case txnPrepareCommit, txnPrepareAbort:
		// A resolution is already in flight; the init answer joins it.
		tc.drive(t)
	default:
		// No open transaction: persist the new identity and answer.
		tc.appendState(t, func(code wire.ErrorCode) {
			tc.answerInit(t, code)
		})
	}
}

// answerInit completes a parked InitProducerId.
func (tc *TxnCoordinator) answerInit(t *txn, code wire.ErrorCode) {
	if t.pendingInit == nil {
		return
	}
	done, corr := t.pendingInit, t.initCorr
	t.pendingInit = nil
	done(wire.InitProducerIDResponse{
		CorrelationID: corr, ProducerID: t.pid, ProducerEpoch: t.epoch, Err: code,
	})
}

// HandleAddPartitionsToTxn registers a partition with the current
// transaction, opening it if this is the first touch. The registration
// is durable before it is acknowledged — the coordinator must know
// every touched partition to place markers after a crash.
func (tc *TxnCoordinator) HandleAddPartitionsToTxn(req wire.AddPartitionsToTxnRequest, done func(wire.AddPartitionsToTxnResponse)) {
	reply := func(code wire.ErrorCode) {
		if done != nil {
			done(wire.AddPartitionsToTxnResponse{CorrelationID: req.CorrelationID, Err: code})
		}
	}
	t := tc.txns[req.TransactionalID]
	if code := tc.fenceCheck(t, req.ProducerID, req.ProducerEpoch); code != wire.ErrNone {
		reply(code)
		return
	}
	if t.state == txnPrepareCommit || t.state == txnPrepareAbort {
		reply(wire.ErrConcurrentTransactions)
		return
	}
	for _, p := range t.partitions {
		if p.Topic == req.Topic && p.Partition == req.Partition {
			reply(wire.ErrNone) // already registered and durable
			return
		}
	}
	t.partitions = append(t.partitions, wire.TxnPartition{Topic: req.Topic, Partition: req.Partition})
	tc.open(t)
	tc.appendState(t, reply)
}

// HandleAddOffsetsToTxn registers the consumer group whose offsets the
// transaction will commit.
func (tc *TxnCoordinator) HandleAddOffsetsToTxn(req wire.AddOffsetsToTxnRequest, done func(wire.AddOffsetsToTxnResponse)) {
	reply := func(code wire.ErrorCode) {
		if done != nil {
			done(wire.AddOffsetsToTxnResponse{CorrelationID: req.CorrelationID, Err: code})
		}
	}
	t := tc.txns[req.TransactionalID]
	if code := tc.fenceCheck(t, req.ProducerID, req.ProducerEpoch); code != wire.ErrNone {
		reply(code)
		return
	}
	if t.state == txnPrepareCommit || t.state == txnPrepareAbort {
		reply(wire.ErrConcurrentTransactions)
		return
	}
	if t.group == req.Group {
		reply(wire.ErrNone)
		return
	}
	t.group = req.Group
	tc.open(t)
	tc.appendState(t, reply)
}

// HandleTxnOffsetCommit stages one consumed offset inside the
// transaction. Staged offsets reach the group coordinator only when the
// transaction commits; an abort discards them.
func (tc *TxnCoordinator) HandleTxnOffsetCommit(req wire.TxnOffsetCommitRequest, done func(wire.TxnOffsetCommitResponse)) {
	reply := func(code wire.ErrorCode) {
		if done != nil {
			done(wire.TxnOffsetCommitResponse{CorrelationID: req.CorrelationID, Err: code})
		}
	}
	t := tc.txns[req.TransactionalID]
	if code := tc.fenceCheck(t, req.ProducerID, req.ProducerEpoch); code != wire.ErrNone {
		reply(code)
		return
	}
	if t.state == txnPrepareCommit || t.state == txnPrepareAbort {
		reply(wire.ErrConcurrentTransactions)
		return
	}
	if t.group == "" {
		t.group = req.Group
	}
	if req.Group != t.group {
		reply(wire.ErrInvalidTxnState)
		return
	}
	staged := false
	for i := range t.offsets {
		if t.offsets[i].Topic == req.Topic && t.offsets[i].Partition == req.Partition {
			t.offsets[i].Offset = req.Offset
			staged = true
			break
		}
	}
	if !staged {
		t.offsets = append(t.offsets, wire.TxnOffset{Topic: req.Topic, Partition: req.Partition, Offset: req.Offset})
	}
	tc.open(t)
	tc.appendState(t, reply)
}

// HandleEndTxn decides the transaction: the decision is made durable
// first (phase one), then markers and offsets are driven to every
// destination and a completion record is written (phase two); done
// fires only when the whole pipeline has been acknowledged.
func (tc *TxnCoordinator) HandleEndTxn(req wire.EndTxnRequest, done func(wire.EndTxnResponse)) {
	reply := func(code wire.ErrorCode) {
		if done != nil {
			done(wire.EndTxnResponse{CorrelationID: req.CorrelationID, Err: code})
		}
	}
	t := tc.txns[req.TransactionalID]
	if code := tc.fenceCheck(t, req.ProducerID, req.ProducerEpoch); code != wire.ErrNone {
		reply(code)
		return
	}
	switch t.state {
	case txnEmpty:
		reply(wire.ErrInvalidTxnState)
		return
	case txnPrepareCommit, txnPrepareAbort:
		reply(wire.ErrConcurrentTransactions)
		return
	}
	t.pendingEnd = done
	t.endCorr = req.CorrelationID
	tc.beginResolution(t, req.Commit)
}

// open moves an Empty transaction to Ongoing and arms the timeout.
func (tc *TxnCoordinator) open(t *txn) {
	if t.state != txnEmpty {
		return
	}
	t.state = txnOngoing
	if t.timeoutTimer == nil {
		tt := t
		t.timeoutTimer = des.NewTimer(tc.sim, func() { tc.timeoutAbort(tt) })
	}
	t.timeoutTimer.Reset(t.timeout)
}

// timeoutAbort fires when a transaction overstays its timeout: the
// epoch is bumped so the stalled producer is a zombie from here on, and
// the transaction is driven to an abort.
func (tc *TxnCoordinator) timeoutAbort(t *txn) {
	if t.state != txnOngoing {
		return
	}
	t.epoch++
	tc.stats.EpochBumps++
	tc.stats.TimeoutAborts++
	tc.beginResolution(t, false)
}

// beginResolution starts phase one: make the commit/abort decision
// durable, then drive phase two.
func (tc *TxnCoordinator) beginResolution(t *txn, commit bool) {
	if t.timeoutTimer != nil {
		t.timeoutTimer.Stop()
	}
	if commit {
		t.state = txnPrepareCommit
	} else {
		t.state = txnPrepareAbort
	}
	t.prepared = false
	t.markerDone = make([]bool, len(t.partitions))
	t.offsetDone = make([]bool, len(t.offsets))
	t.attempt++
	t.pending = 0
	tc.drive(t)
}

// drive advances an in-doubt transaction by (re)issuing whatever its
// current step still lacks: the durable prepare record, unacknowledged
// markers, unforwarded offsets, then the durable completion record.
// Acks call drive again; so do the retry timer and every topology
// change, with the attempt counter invalidating stale callbacks so a
// forced re-drive never double-counts.
func (tc *TxnCoordinator) drive(t *txn) {
	if t.state != txnPrepareCommit && t.state != txnPrepareAbort {
		return
	}
	if t.pending > 0 {
		return // acks outstanding; the retry timer forces progress if they vanish
	}
	attempt := t.attempt
	commit := t.state == txnPrepareCommit
	if !t.prepared {
		t.pending = 1
		tc.appendState(t, func(code wire.ErrorCode) {
			if t.attempt != attempt {
				return
			}
			t.pending--
			if code == wire.ErrNone {
				t.prepared = true
			}
			tc.drive(t)
		})
		tc.armRetry(t)
		return
	}
	for i := range t.partitions {
		if t.markerDone[i] {
			continue
		}
		t.pending++
		tc.sendMarker(t, i, commit, attempt)
	}
	if t.pending > 0 {
		tc.armRetry(t)
		return
	}
	if commit {
		for i := range t.offsets {
			if t.offsetDone[i] {
				continue
			}
			t.pending++
			tc.forwardOffset(t, i, attempt)
		}
		if t.pending > 0 {
			tc.armRetry(t)
			return
		}
	}
	// Everything acknowledged: complete durably and answer.
	t.pending = 1
	tc.completeState(t, commit, func(code wire.ErrorCode) {
		if t.attempt != attempt {
			return
		}
		t.pending--
		if code != wire.ErrNone {
			tc.drive(t)
			return
		}
		tc.finish(t, commit)
	})
	tc.armRetry(t)
}

// sendMarker writes one partition's control marker under the
// transaction's current epoch. A re-driven marker is harmless: brokers
// treat a marker with no ongoing range as a no-op.
func (tc *TxnCoordinator) sendMarker(t *txn, i int, commit bool, attempt uint64) {
	p := t.partitions[i]
	tc.seq++
	tc.clst.HandleProduce(wire.ProduceRequest{
		Topic:     p.Topic,
		Partition: p.Partition,
		Acks:      wire.AcksAll,
		Batch: wire.RecordBatch{
			ProducerID:    t.pid,
			ProducerEpoch: t.epoch,
			BaseSequence:  tc.seq,
			Control:       true,
			Records:       []wire.Record{wire.ControlRecord(commit, tc.sim.Now())},
		},
	}, func(resp wire.ProduceResponse) {
		if t.attempt != attempt {
			return
		}
		t.pending--
		if resp.Err == wire.ErrNone {
			t.markerDone[i] = true
			tc.stats.MarkersWritten++
		}
		tc.drive(t)
	})
}

// forwardOffset hands one staged offset to the group coordinator.
func (tc *TxnCoordinator) forwardOffset(t *txn, i int, attempt uint64) {
	o := t.offsets[i]
	if tc.groupCo == nil {
		t.pending--
		t.offsetDone[i] = true
		tc.drive(t)
		return
	}
	tc.groupCo.CommitTxnOffset(t.group, o.Topic, o.Partition, o.Offset, func(code wire.ErrorCode) {
		if t.attempt != attempt {
			return
		}
		t.pending--
		if code == wire.ErrNone {
			t.offsetDone[i] = true
			tc.stats.OffsetsForwarded++
		}
		tc.drive(t)
	})
}

// finish closes a resolved transaction and answers the parked
// EndTxn/InitProducerId callers.
func (tc *TxnCoordinator) finish(t *txn, commit bool) {
	if commit {
		tc.stats.TxnsCommitted++
	} else {
		tc.stats.TxnsAborted++
	}
	t.state = txnEmpty
	t.partitions = t.partitions[:0]
	t.offsets = t.offsets[:0]
	t.group = ""
	t.prepared = false
	if t.retryTimer != nil {
		t.retryTimer.Stop()
	}
	if t.pendingEnd != nil {
		done, corr := t.pendingEnd, t.endCorr
		t.pendingEnd = nil
		done(wire.EndTxnResponse{CorrelationID: corr, Err: wire.ErrNone})
	}
	tc.answerInit(t, wire.ErrNone)
}

// armRetry schedules the re-drive backstop for a transaction with
// writes in flight: if their acks vanish (a crashed leader never
// answers), the timer voids the pass and re-issues the remainder.
func (tc *TxnCoordinator) armRetry(t *txn) {
	if t.retryTimer == nil {
		tt := t
		t.retryTimer = des.NewTimer(tc.sim, func() { tc.retryFire(tt) })
	}
	t.retryTimer.Reset(tc.cfg.RetryBackoff)
}

func (tc *TxnCoordinator) retryFire(t *txn) {
	if t.state != txnPrepareCommit && t.state != txnPrepareAbort {
		return
	}
	tc.stats.Redrives++
	t.attempt++
	t.pending = 0
	tc.drive(t)
}

// Redrive re-issues every in-doubt transaction's outstanding writes.
// The cluster invokes it after every broker failure, unclean crash, or
// recovery: markers lost with a crashed partition leader and state
// appends lost with the transaction log's leader are simply sent again.
func (tc *TxnCoordinator) Redrive() {
	ids := make([]string, 0, len(tc.txns))
	for tid := range tc.txns {
		ids = append(ids, tid)
	}
	// Deterministic order: map iteration must not leak into the DES.
	sort.Strings(ids)
	for _, tid := range ids {
		t := tc.txns[tid]
		if t.state == txnPrepareCommit || t.state == txnPrepareAbort {
			tc.stats.Redrives++
			t.attempt++
			t.pending = 0
			tc.drive(t)
		}
	}
}

// appendState writes the transaction's full current state to the
// transaction log and calls cb with the outcome. ErrNone means the
// record is as durable as the log's replication settings make it.
func (tc *TxnCoordinator) appendState(t *txn, cb func(wire.ErrorCode)) {
	tc.appendRecord(txnRecord{
		Tid: t.tid, Pid: t.pid, Epoch: t.epoch, State: t.state,
		Partitions: t.partitions, Group: t.group, Offsets: t.offsets,
	}, cb)
}

// completeState writes the completion record: the transaction is over,
// its partition and offset sets cleared.
func (tc *TxnCoordinator) completeState(t *txn, commit bool, cb func(wire.ErrorCode)) {
	_ = commit
	tc.appendRecord(txnRecord{Tid: t.tid, Pid: t.pid, Epoch: t.epoch, State: txnEmpty}, cb)
}

func (tc *TxnCoordinator) appendRecord(rec txnRecord, cb func(wire.ErrorCode)) {
	payload := appendTxnStateRecord(make([]byte, 0, txnStateRecordSize(rec)), rec)
	tc.seq++
	acked := false
	tc.clst.HandleProduce(wire.ProduceRequest{
		Topic: tc.cfg.TxnTopic,
		Acks:  tc.cfg.TxnAcks,
		Batch: wire.RecordBatch{BaseSequence: tc.seq, Records: []wire.Record{{
			Key:       txnCompactionKey(rec.Tid),
			Timestamp: tc.sim.Now(),
			Payload:   payload,
		}}},
	}, func(resp wire.ProduceResponse) {
		if acked {
			return
		}
		acked = true
		if resp.Err == wire.ErrNone {
			tc.stats.StateAppends++
		}
		if cb != nil {
			cb(resp.Err)
		}
	})
}

// MaterializedState scans the transaction log's current leader and
// returns the last durable state per transactional.id — what a
// restarted coordinator would rebuild. Exposed for tests and the chaos
// verifier to check the log against the live state machine.
func (tc *TxnCoordinator) MaterializedState() map[string]string {
	leader := tc.clst.Leader(tc.cfg.TxnTopic, 0)
	if leader == nil {
		return nil
	}
	log := leader.Log(tc.cfg.TxnTopic, 0)
	if log == nil {
		return nil
	}
	last := make(map[string]int8)
	log.Scan(func(e storage.Entry) bool {
		rec, err := decodeTxnStateRecord(e.Record.Payload)
		if err != nil {
			return false
		}
		last[rec.Tid] = rec.State
		return true
	})
	out := make(map[string]string, len(last))
	for tid, st := range last {
		switch st {
		case txnEmpty:
			out[tid] = "Empty"
		case txnOngoing:
			out[tid] = "Ongoing"
		case txnPrepareCommit:
			out[tid] = "PrepareCommit"
		case txnPrepareAbort:
			out[tid] = "PrepareAbort"
		}
	}
	return out
}
