package storage

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"kafkarel/internal/wire"
)

func recs(keys ...uint64) []wire.Record {
	out := make([]wire.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, wire.Record{Key: k, Payload: []byte{byte(k)}})
	}
	return out
}

func TestAppendAssignsConsecutiveOffsets(t *testing.T) {
	l := NewLog(0)
	if base := l.Append(recs(1, 2, 3)); base != 0 {
		t.Errorf("first base = %d, want 0", base)
	}
	if base := l.Append(recs(4)); base != 3 {
		t.Errorf("second base = %d, want 3", base)
	}
	if l.End() != 4 || l.Len() != 4 {
		t.Errorf("End/Len = %d/%d, want 4/4", l.End(), l.Len())
	}
}

func TestAppendEmptyBatch(t *testing.T) {
	l := NewLog(0)
	l.Append(recs(1))
	if base := l.Append(nil); base != 1 {
		t.Errorf("empty append base = %d, want 1", base)
	}
	if l.End() != 1 {
		t.Errorf("End = %d, want 1", l.End())
	}
}

func TestReadBasic(t *testing.T) {
	l := NewLog(0)
	l.Append(recs(10, 11, 12, 13, 14))
	got, err := l.Read(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d entries, want 3", len(got))
	}
	for i, e := range got {
		wantOffset := int64(1 + i)
		if e.Offset != wantOffset || e.Record.Key != uint64(11+i) {
			t.Errorf("entry %d = {%d, key %d}", i, e.Offset, e.Record.Key)
		}
	}
}

func TestReadAtEndReturnsEmpty(t *testing.T) {
	l := NewLog(0)
	l.Append(recs(1, 2))
	got, err := l.Read(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("read %d entries at log end", len(got))
	}
	// Empty log: offset 0 == end.
	empty := NewLog(0)
	if _, err := empty.Read(0, 5); err != nil {
		t.Errorf("read at end of empty log: %v", err)
	}
}

func TestReadOutOfRange(t *testing.T) {
	l := NewLog(0)
	l.Append(recs(1))
	if _, err := l.Read(-1, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Errorf("negative offset err = %v", err)
	}
	if _, err := l.Read(2, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Errorf("past-end offset err = %v", err)
	}
}

func TestReadZeroMax(t *testing.T) {
	l := NewLog(0)
	l.Append(recs(1, 2))
	got, err := l.Read(0, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("Read(0,0) = %v, %v", got, err)
	}
}

func TestSegmentRolling(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Append(recs(uint64(i)))
	}
	if l.Segments() != 4 { // 3+3+3+1
		t.Errorf("segments = %d, want 4", l.Segments())
	}
	// Cross-segment read.
	got, err := l.Read(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("read %d, want 5", len(got))
	}
	for i, e := range got {
		if e.Record.Key != uint64(2+i) {
			t.Errorf("entry %d key = %d, want %d", i, e.Record.Key, 2+i)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	l := NewLog(0)
	r := wire.Record{Key: 1, Payload: make([]byte, 100)}
	l.Append([]wire.Record{r, r})
	if want := uint64(2 * r.EncodedSize()); l.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", l.Bytes(), want)
	}
}

func TestTruncateTo(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Append(recs(uint64(i)))
	}
	l.TruncateTo(5)
	if l.End() != 5 || l.Len() != 5 {
		t.Errorf("End/Len after truncate = %d/%d, want 5/5", l.End(), l.Len())
	}
	got, err := l.Read(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[4].Record.Key != 4 {
		t.Errorf("post-truncate read = %d entries", len(got))
	}
	// Appending after truncation reuses the truncated offsets.
	if base := l.Append(recs(50)); base != 5 {
		t.Errorf("append after truncate base = %d, want 5", base)
	}
	// Truncate past end is a no-op.
	l.TruncateTo(100)
	if l.End() != 6 {
		t.Errorf("End after no-op truncate = %d", l.End())
	}
	// Truncate to zero empties the log.
	l.TruncateTo(0)
	if l.End() != 0 || l.Len() != 0 || l.Bytes() != 0 {
		t.Errorf("End/Len/Bytes after full truncate = %d/%d/%d", l.End(), l.Len(), l.Bytes())
	}
}

func TestScan(t *testing.T) {
	l := NewLog(2)
	l.Append(recs(0, 1, 2, 3, 4))
	var seen []int64
	l.Scan(func(e Entry) bool {
		seen = append(seen, e.Offset)
		return true
	})
	if len(seen) != 5 {
		t.Fatalf("scanned %d, want 5", len(seen))
	}
	for i, o := range seen {
		if o != int64(i) {
			t.Errorf("scan order broken: %v", seen)
		}
	}
	// Early stop.
	count := 0
	l.Scan(func(Entry) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early-stop scan visited %d, want 2", count)
	}
}

// Property: any sequence of appends and truncations keeps reads
// consistent with a plain-slice model.
func TestPropertyLogMatchesModel(t *testing.T) {
	f := func(seed uint64, ops uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		l := NewLog(rng.IntN(5) + 1)
		var model []uint64
		key := uint64(0)
		for op := 0; op < int(ops%40)+5; op++ {
			if rng.Float64() < 0.8 {
				n := rng.IntN(4) + 1
				batch := make([]wire.Record, 0, n)
				for i := 0; i < n; i++ {
					batch = append(batch, wire.Record{Key: key})
					model = append(model, key)
					key++
				}
				if got := l.Append(batch); got != int64(len(model)-n) {
					return false
				}
			} else if len(model) > 0 {
				cut := int64(rng.IntN(len(model) + 1))
				l.TruncateTo(cut)
				model = model[:cut]
			}
		}
		if l.End() != int64(len(model)) {
			return false
		}
		// Random read window.
		if len(model) > 0 {
			off := int64(rng.IntN(len(model)))
			max := rng.IntN(len(model)) + 1
			got, err := l.Read(off, max)
			if err != nil {
				return false
			}
			wantLen := len(model) - int(off)
			if wantLen > max {
				wantLen = max
			}
			if len(got) != wantLen {
				return false
			}
			for i, e := range got {
				if e.Offset != off+int64(i) || e.Record.Key != model[off+int64(i)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := NewLog(0)
	r := recs(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(r)
	}
}

func BenchmarkReadMiddle(b *testing.B) {
	l := NewLog(1024)
	for i := 0; i < 100_000; i++ {
		l.Append(recs(uint64(i)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Read(50_000, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFlushAndTruncateClamp(t *testing.T) {
	l := NewLog(4)
	l.Append(recs(1, 2, 3, 4, 5))
	if l.Flushed() != 0 {
		t.Fatalf("fresh log flushed = %d, want 0", l.Flushed())
	}
	l.Flush()
	if l.Flushed() != 5 {
		t.Fatalf("flushed = %d, want 5", l.Flushed())
	}
	l.Append(recs(6))
	if l.Flushed() != 5 {
		t.Fatalf("append moved flushed to %d", l.Flushed())
	}
	l.TruncateTo(3)
	if l.Flushed() != 3 {
		t.Fatalf("truncate left flushed at %d, want clamp to 3", l.Flushed())
	}
	if l.End() != 3 {
		t.Fatalf("end = %d, want 3", l.End())
	}
}

// Append copies payloads into the log's own arena, so a caller reusing
// its record buffer after Append cannot corrupt the stored segment.
func TestAppendCopiesPayloads(t *testing.T) {
	l := NewLog(0)
	payload := []byte("immutable-once-stored")
	l.Append([]wire.Record{{Key: 1, Payload: payload}})
	for i := range payload {
		payload[i] = 0xAA
	}
	got, err := l.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Record.Payload) != "immutable-once-stored" {
		t.Errorf("stored payload corrupted: %q", got[0].Record.Payload)
	}
}
