// Package storage implements the broker-side partition log: an
// append-only sequence of records organised into base-offset segments,
// exactly the on-disk structure Kafka brokers use, kept in memory here
// because the testbed is a simulation. Offsets are assigned at append
// time and never reused; reads address records by offset.
package storage

import (
	"errors"
	"fmt"

	"kafkarel/internal/wire"
)

// Log errors.
var (
	// ErrOffsetOutOfRange is returned by Read when the requested offset
	// is negative or past the log end.
	ErrOffsetOutOfRange = errors.New("storage: offset out of range")
)

// Entry is a stored record with its assigned offset.
type Entry struct {
	Offset int64
	Record wire.Record
}

// segment holds a contiguous run of records starting at base. Payload
// bytes live in the log's arena blocks (see Log.arena), so stored
// records never alias caller-owned (possibly reused) buffers.
type segment struct {
	base    int64
	records []wire.Record
}

// Log is a single partition's append-only record log. The zero value is
// not usable; create logs with NewLog.
type Log struct {
	segments   []*segment
	end        int64 // log end offset: next offset to assign
	flushed    int64 // offsets below this survived the last fsync
	maxSegment int
	bytes      uint64
	// arena is the current payload block. Payloads are copied here at
	// append time; when the block fills, a fresh one replaces it rather
	// than growing in place, so existing payload aliases are never
	// invalidated by a copy-on-grow and no block is ever written twice.
	// Retired blocks stay reachable through the records that alias them
	// and are reclaimed when truncation drops those records.
	arena []byte
}

// arenaBlockSize is the allocation unit for payload storage. Oversized
// payloads get a dedicated block.
const arenaBlockSize = 64 << 10

// DefaultSegmentRecords is the roll threshold when NewLog is given a
// non-positive one.
const DefaultSegmentRecords = 4096

// NewLog creates an empty log rolling segments every maxSegmentRecords
// records.
func NewLog(maxSegmentRecords int) *Log {
	if maxSegmentRecords <= 0 {
		maxSegmentRecords = DefaultSegmentRecords
	}
	return &Log{maxSegment: maxSegmentRecords}
}

// Append assigns consecutive offsets to the records and stores them,
// returning the base offset of the batch. Appending zero records returns
// the current log end.
//
// The log copies payload bytes into its own arena blocks, so callers
// may reuse or mutate the source buffers (for example records decoded
// zero-copy from a network buffer) as soon as Append returns.
func (l *Log) Append(records []wire.Record) int64 {
	base := l.end
	for _, r := range records {
		l.appendOne(r)
	}
	return base
}

func (l *Log) appendOne(r wire.Record) {
	n := len(l.segments)
	if n == 0 || len(l.segments[n-1].records) >= l.maxSegment {
		l.segments = append(l.segments, &segment{base: l.end})
		n++
	}
	seg := l.segments[n-1]
	if pn := len(r.Payload); pn > 0 {
		if len(l.arena)+pn > cap(l.arena) {
			size := arenaBlockSize
			if pn > size {
				size = pn
			}
			l.arena = make([]byte, 0, size)
		}
		start := len(l.arena)
		l.arena = append(l.arena, r.Payload...)
		r.Payload = l.arena[start : start+pn : start+pn]
	}
	seg.records = append(seg.records, r)
	l.end++
	l.bytes += uint64(r.EncodedSize())
}

// End returns the log end offset (the offset the next record will get).
func (l *Log) End() int64 { return l.end }

// Flush marks everything currently stored as durable, modelling an fsync
// of the active segment. An unclean restart truncates back to the
// flushed offset; a clean shutdown flushes first.
func (l *Log) Flush() { l.flushed = l.end }

// Flushed returns the durable high-water offset: records at or beyond it
// are lost if the broker crashes before the next Flush.
func (l *Log) Flushed() int64 { return l.flushed }

// Len returns the number of stored records.
func (l *Log) Len() int64 { return l.end - l.start() }

func (l *Log) start() int64 {
	if len(l.segments) == 0 {
		return l.end
	}
	return l.segments[0].base
}

// Bytes returns the total encoded size of stored records.
func (l *Log) Bytes() uint64 { return l.bytes }

// Segments returns the number of segments currently held.
func (l *Log) Segments() int { return len(l.segments) }

// Read returns up to max records starting at offset. Reading exactly at
// the log end returns an empty slice; reading past it is an error.
func (l *Log) Read(offset int64, max int) ([]Entry, error) {
	return l.ReadInto(offset, max, nil)
}

// ReadInto is Read with a caller-provided scratch slice: entries are
// appended to dst[:0], so a steady-state reader allocates nothing once
// its scratch has grown. Returned entries alias the log's stored records
// and stay valid for the life of the log.
func (l *Log) ReadInto(offset int64, max int, dst []Entry) ([]Entry, error) {
	if offset < l.start() || offset > l.end {
		return nil, fmt.Errorf("%w: offset %d, log [%d, %d)", ErrOffsetOutOfRange, offset, l.start(), l.end)
	}
	if max <= 0 || offset == l.end {
		return nil, nil
	}
	// Size by what is actually available, not the caller's ceiling: a
	// fetch asking for 2048 records from a near-empty log should not
	// reserve 2048 entries.
	if avail := int(l.end - offset); max > avail {
		max = avail
	}
	out := dst[:0]
	if cap(out) == 0 {
		out = make([]Entry, 0, max)
	}
	for _, seg := range l.findSegments(offset) {
		for i, r := range seg.records {
			o := seg.base + int64(i)
			if o < offset {
				continue
			}
			out = append(out, Entry{Offset: o, Record: r})
			if len(out) == max {
				return out, nil
			}
		}
	}
	return out, nil
}

// findSegments returns the suffix of segments containing offset onward.
func (l *Log) findSegments(offset int64) []*segment {
	// Binary search over segment bases.
	lo, hi := 0, len(l.segments)
	for lo < hi {
		mid := (lo + hi) / 2
		seg := l.segments[mid]
		if seg.base+int64(len(seg.records)) <= offset {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l.segments[lo:]
}

// TruncateTo discards all records at or beyond offset, used by follower
// replicas reconciling with a new leader.
func (l *Log) TruncateTo(offset int64) {
	if offset >= l.end {
		return
	}
	if l.flushed > offset {
		l.flushed = offset
	}
	if offset <= l.start() {
		l.segments = nil
		l.end = offset
		l.recountBytes()
		return
	}
	keep := make([]*segment, 0, len(l.segments))
	for _, seg := range l.segments {
		segEnd := seg.base + int64(len(seg.records))
		switch {
		case segEnd <= offset:
			keep = append(keep, seg)
		case seg.base < offset:
			seg.records = seg.records[:offset-seg.base]
			keep = append(keep, seg)
		}
	}
	l.segments = keep
	l.end = offset
	l.recountBytes()
}

func (l *Log) recountBytes() {
	l.bytes = 0
	for _, seg := range l.segments {
		for _, r := range seg.records {
			l.bytes += uint64(r.EncodedSize())
		}
	}
}

// Scan calls fn for every stored entry in offset order; fn returning
// false stops the scan.
func (l *Log) Scan(fn func(Entry) bool) {
	for _, seg := range l.segments {
		for i, r := range seg.records {
			if !fn(Entry{Offset: seg.base + int64(i), Record: r}) {
				return
			}
		}
	}
}
