// Package broker implements a single Kafka-model broker node: it owns
// partition logs, services produce and fetch requests with a configurable
// service time, de-duplicates idempotent-producer batches, and can be
// stopped and restarted for failure-injection experiments (the paper's
// future-work scenario).
package broker

import (
	"fmt"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/storage"
	"kafkarel/internal/wire"
)

// Config tunes a broker's service behaviour.
type Config struct {
	// AppendLatency is the fixed cost of persisting a batch.
	AppendLatency time.Duration
	// AppendPerByte is the additional cost per payload byte, modelling
	// log-write bandwidth.
	AppendPerByte time.Duration
	// SegmentRecords is the partition-log segment roll threshold.
	SegmentRecords int
	// FlushInterval is the fsync cadence (Kafka's log.flush.interval.ms):
	// appends become durable at the first append on or after each
	// interval boundary, together with a snapshot of the idempotent
	// producer state (Kafka persists producer-state snapshots alongside
	// segment flushes). An unclean crash loses the unflushed log tail.
	// Zero (the default) makes every append immediately durable, so an
	// unclean crash behaves exactly like a clean stop.
	FlushInterval time.Duration
	// Obs attaches the per-run observability bundle. nil disables
	// metrics and tracing for this broker.
	Obs *obs.Obs
}

// DefaultConfig reflects a warm page-cache append path: tens of
// microseconds fixed cost and ~1 GB/s of sequential write bandwidth.
func DefaultConfig() Config {
	return Config{
		AppendLatency: 50 * time.Microsecond,
		AppendPerByte: time.Nanosecond,
	}
}

// partitionKey identifies a topic partition on this broker.
type partitionKey struct {
	topic     string
	partition int32
}

// producerState supports idempotent de-duplication per producer ID.
// recent is a ring of the last wire.SeqCacheSize appended batches: with
// pipelining (max-in-flight > 1) batches can arrive out of sequence
// order, so a batch is a duplicate only if its base sequence matches a
// remembered batch — a bare high-water comparison would drop (and
// falsely ack) a *new* batch that arrives after a later-sequence one.
// The fields are all values (fixed array), so the struct copies taken
// by flush snapshots stay deep.
type producerState struct {
	epoch        uint32
	lastSequence uint64
	lastOffset   int64
	seen         bool
	recent       [wire.SeqCacheSize]BatchMeta
	nRecent      int
	head         int
}

// lookup returns the base offset of a remembered batch.
func (st *producerState) lookup(seq uint64) (int64, bool) {
	for i := 0; i < st.nRecent; i++ {
		if e := st.recent[(st.head+i)%len(st.recent)]; e.Sequence == seq {
			return e.Offset, true
		}
	}
	return 0, false
}

// remember records an appended batch and advances the high-water.
func (st *producerState) remember(seq uint64, offset int64) {
	if st.nRecent < len(st.recent) {
		st.recent[(st.head+st.nRecent)%len(st.recent)] = BatchMeta{seq, offset}
		st.nRecent++
	} else {
		st.recent[st.head] = BatchMeta{seq, offset}
		st.head = (st.head + 1) % len(st.recent)
	}
	if !st.seen || seq > st.lastSequence {
		st.lastSequence = seq
		st.lastOffset = offset
	}
	st.seen = true
}

// batches exports the remembered ring, oldest first.
func (st *producerState) batches() []BatchMeta {
	out := make([]BatchMeta, 0, st.nRecent)
	for i := 0; i < st.nRecent; i++ {
		out = append(out, st.recent[(st.head+i)%len(st.recent)])
	}
	return out
}

// BatchMeta identifies one appended batch for idempotent de-duplication.
type BatchMeta struct {
	Sequence uint64
	Offset   int64
}

// SeqState is the exported form of the per-producer sequence state, used
// when a recovering replica adopts the leader's state during catch-up
// (Kafka rebuilds producer state from the replicated log).
type SeqState struct {
	// Epoch is the producer epoch the sequence state belongs to; a
	// higher epoch starts a fresh sequence space.
	Epoch        uint32
	LastSequence uint64
	LastOffset   int64
	// Recent is the remembered-batch ring, oldest first; without it a
	// recovered leader would re-append (duplicate) any still-in-flight
	// retry of a batch that survived in the replicated log.
	Recent []BatchMeta
}

// part is one topic partition hosted on this broker: its log plus
// the idempotent producer state, live and as of the last flush.
type part struct {
	log  *storage.Log
	prod map[uint64]*producerState
	// flushedProd is the producer-state snapshot persisted with the last
	// flush. An unclean crash restores it: a stale snapshot must not
	// dedupe-and-ack a retry of a truncated batch, and a fresh one must
	// not re-append a batch that survived the crash.
	flushedProd map[uint64]producerState
	lastFlush   time.Duration // interval boundary of the last flush
	// txn is the live transaction view (ongoing/aborted ranges, control
	// offsets, producer epochs); flushedTxn is its snapshot as of the
	// last flush, restored together with flushedProd on unclean crashes
	// so the transaction view never describes truncated offsets.
	txn        *txnState
	flushedTxn *txnState
}

// Stats counts broker activity.
type Stats struct {
	ProduceRequests   uint64
	FetchRequests     uint64
	RecordsAppended   uint64
	DuplicatesDropped uint64
	// DuplicateAppends counts non-idempotent appends of a batch sequence
	// the broker had already persisted for the same producer/partition —
	// the Case-5 duplicates an idempotent broker would have dropped.
	// Purely observational: the records are appended either way.
	DuplicateAppends uint64
	// DuplicateRecords is the record total inside those duplicate
	// appends, the broker-side mirror of the consumer's extra copies.
	DuplicateRecords uint64
	// RecordsTruncated counts records destroyed by unclean crashes (the
	// unflushed log tail past the flushed offset).
	RecordsTruncated uint64
	// UncleanCrashes counts CrashUnclean invocations.
	UncleanCrashes uint64
}

// Broker is one node. It is driven by the shared simulator and is not
// safe for concurrent use.
type Broker struct {
	id    int32
	sim   *des.Simulator
	cfg   Config
	parts map[partitionKey]*part
	up    bool
	slow  float64 // service-time multiplier; <= 1 means nominal
	stats Stats

	cProduce    *obs.Counter
	cAppends    *obs.Counter
	cDuplicates *obs.Counter
	cDupAppends *obs.Counter
	cTruncated  *obs.Counter
	cUnclean    *obs.Counter
	trace       *obs.Tracer

	freeJobs     []*produceJob   // recycled produce-service jobs
	fetchEntries []storage.Entry // HandleFetch read scratch
	fetchRecords []wire.Record   // HandleFetch response scratch
}

// New creates a running broker with the given node ID.
func New(id int32, sim *des.Simulator, cfg Config) (*Broker, error) {
	if sim == nil {
		return nil, fmt.Errorf("broker: nil simulator")
	}
	if cfg.AppendLatency < 0 || cfg.AppendPerByte < 0 {
		return nil, fmt.Errorf("broker: negative service time")
	}
	if cfg.FlushInterval < 0 {
		return nil, fmt.Errorf("broker: negative flush interval")
	}
	o := cfg.Obs
	return &Broker{
		id:          id,
		sim:         sim,
		cfg:         cfg,
		parts:       make(map[partitionKey]*part),
		up:          true,
		cProduce:    o.Counter(obs.MBrokerProduce),
		cAppends:    o.Counter(obs.MBrokerAppends),
		cDuplicates: o.Counter(obs.MBrokerDuplicates),
		cDupAppends: o.Counter(obs.MBrokerDupAppends),
		cTruncated:  o.Counter(obs.MBrokerTruncated),
		cUnclean:    o.Counter(obs.MBrokerUnclean),
		trace:       o.Tracer(),
	}, nil
}

// ID returns the broker's node ID.
func (b *Broker) ID() int32 { return b.id }

// Up reports whether the broker is serving requests.
func (b *Broker) Up() bool { return b.up }

// Stop shuts the broker down cleanly: pending log tails are flushed (a
// graceful Kafka shutdown fsyncs on close), then the broker silently
// drops all requests, as a dead node does from the network's view.
func (b *Broker) Stop() {
	b.up = false
	if b.cfg.FlushInterval > 0 {
		for _, p := range b.parts {
			b.flushPart(p, b.boundary(b.sim.Now()))
		}
	}
}

// CrashUnclean kills the broker without the shutdown fsync: the log tail
// past each partition's flushed offset is destroyed and the idempotent
// producer state rolls back to the snapshot persisted with that flush.
// With FlushInterval zero everything is always durable and CrashUnclean
// degenerates to Stop — the acks=1 data-loss window only opens when the
// broker is configured with a real flush cadence.
func (b *Broker) CrashUnclean() {
	b.up = false
	b.stats.UncleanCrashes++
	b.cUnclean.Inc()
	if b.cfg.FlushInterval <= 0 {
		return
	}
	var lost uint64
	now := b.sim.Now()
	for _, p := range b.parts {
		// A flush boundary crossed since the last append is still honoured:
		// everything currently stored was appended before it.
		if bd := b.boundary(now); bd > p.lastFlush {
			b.flushPart(p, bd)
		}
		if tail := p.log.End() - p.log.Flushed(); tail > 0 {
			p.log.TruncateTo(p.log.Flushed())
			lost += uint64(tail)
		}
		p.prod = restoreStates(p.flushedProd)
		p.txn = p.flushedTxn.clone()
	}
	b.stats.RecordsTruncated += lost
	b.cTruncated.Add(lost)
	b.trace.Emit(obs.LayerBroker, obs.EvUncleanCrash, lost, 0, int64(b.id), "")
}

// Start brings a stopped broker back. Its logs are retained, as Kafka's
// are across restarts.
func (b *Broker) Start() { b.up = true }

// SetSlowdown scales the broker's append service time by factor — the
// chaos engine's degraded-broker fault. Factors at or below 1 restore
// nominal speed.
func (b *Broker) SetSlowdown(factor float64) { b.slow = factor }

// Stats returns an activity snapshot.
func (b *Broker) Stats() Stats { return b.stats }

// CreatePartition provisions an empty log for the topic partition.
// Creating an existing partition is a no-op.
func (b *Broker) CreatePartition(topic string, partition int32) {
	k := partitionKey{topic, partition}
	if _, ok := b.parts[k]; !ok {
		b.parts[k] = &part{
			log:         storage.NewLog(b.cfg.SegmentRecords),
			prod:        make(map[uint64]*producerState),
			flushedProd: make(map[uint64]producerState),
			txn:         newTxnState(),
			flushedTxn:  newTxnState(),
		}
	}
}

// Log exposes the partition log (nil if absent), used by replication and
// by the consumer-side reconciliation in tests.
func (b *Broker) Log(topic string, partition int32) *storage.Log {
	p := b.parts[partitionKey{topic, partition}]
	if p == nil {
		return nil
	}
	return p.log
}

// ProducerStateSnapshot exports the partition's live producer-sequence
// state (nil if the partition is absent).
func (b *Broker) ProducerStateSnapshot(topic string, partition int32) map[uint64]SeqState {
	p := b.parts[partitionKey{topic, partition}]
	if p == nil {
		return nil
	}
	out := make(map[uint64]SeqState, len(p.prod))
	for id, st := range p.prod {
		if st.seen {
			out[id] = SeqState{
				Epoch:        st.epoch,
				LastSequence: st.lastSequence,
				LastOffset:   st.lastOffset,
				Recent:       st.batches(),
			}
		}
	}
	return out
}

// RestoreProducerState replaces the partition's producer-sequence state,
// marks the log flushed, and snapshots the state as durable — the end of
// a catch-up: the replica's log now mirrors the leader's, so its dedupe
// state and durability checkpoint must too.
func (b *Broker) RestoreProducerState(topic string, partition int32, st map[uint64]SeqState) {
	p := b.parts[partitionKey{topic, partition}]
	if p == nil {
		return
	}
	p.prod = make(map[uint64]*producerState, len(st))
	for id, s := range st {
		ps := &producerState{epoch: s.Epoch, lastSequence: s.LastSequence, lastOffset: s.LastOffset, seen: true}
		for _, bm := range s.Recent {
			ps.remember(bm.Sequence, bm.Offset)
		}
		// remember advanced the high-water as it replayed; restore the
		// leader's explicit values last in case Recent is a partial view.
		ps.lastSequence, ps.lastOffset = s.LastSequence, s.LastOffset
		p.prod[id] = ps
	}
	b.flushPart(p, b.boundary(b.sim.Now()))
}

// boundary returns the latest flush-interval boundary at or before t.
func (b *Broker) boundary(t time.Duration) time.Duration {
	iv := b.cfg.FlushInterval
	if iv <= 0 {
		return t
	}
	return t - t%iv
}

// flushPart persists the partition: fsync the log and snapshot the
// producer state, stamped with the given interval boundary.
func (b *Broker) flushPart(p *part, bd time.Duration) {
	p.log.Flush()
	p.flushedProd = make(map[uint64]producerState, len(p.prod))
	for id, st := range p.prod {
		p.flushedProd[id] = *st
	}
	p.flushedTxn = p.txn.clone()
	p.lastFlush = bd
}

// maybeFlush runs the lazy flush schedule: the first append on or after
// an interval boundary first persists the pre-append state, which is
// equivalent to an fsync timer firing at the boundary itself (everything
// stored now was appended before it) without keeping a perpetual ticker
// in the event queue.
func (b *Broker) maybeFlush(p *part) {
	if b.cfg.FlushInterval <= 0 {
		return
	}
	if bd := b.boundary(b.sim.Now()); bd > p.lastFlush {
		b.flushPart(p, bd)
	}
}

func restoreStates(snap map[uint64]producerState) map[uint64]*producerState {
	out := make(map[uint64]*producerState, len(snap))
	for id, st := range snap {
		cp := st
		out[id] = &cp
	}
	return out
}

// serviceTime returns the simulated cost of persisting a batch.
func (b *Broker) serviceTime(batch wire.RecordBatch) time.Duration {
	bytes := 0
	for _, r := range batch.Records {
		bytes += r.EncodedSize()
	}
	d := b.cfg.AppendLatency + time.Duration(bytes)*b.cfg.AppendPerByte
	if b.slow > 1 {
		d = time.Duration(float64(d) * b.slow)
	}
	return d
}

// Append is the synchronous core of produce handling: idempotency check,
// then log append. It returns the base offset, whether the batch was a
// duplicate, and an error code.
func (b *Broker) Append(topic string, partition int32, batch wire.RecordBatch, idempotent bool) (int64, bool, wire.ErrorCode) {
	p, ok := b.parts[partitionKey{topic, partition}]
	if !ok {
		return 0, false, wire.ErrUnknownTopicOrPartition
	}
	// Flush schedule first: a crossed boundary persists the pre-append
	// state, never the batch being appended now.
	b.maybeFlush(p)
	if batch.Transactional || batch.Control {
		// Zombie fencing: a batch from a superseded producer epoch is
		// rejected outright, before any dedupe or append — the fenced
		// producer must never place another record in the log.
		if p.txn.fence(batch.ProducerID, batch.ProducerEpoch) {
			return 0, false, wire.ErrProducerFenced
		}
	}
	if batch.Control {
		// Transaction marker: append the control record and close the
		// producer's ongoing range. Markers bypass idempotent dedupe —
		// the coordinator may re-drive them, and applyMarker makes the
		// replay a no-op on the transaction view.
		base := p.log.Append(batch.Records)
		commit := len(batch.Records) > 0 && batch.Records[0].Key == wire.ControlKeyCommit
		p.txn.applyMarker(batch.ProducerID, base, commit)
		b.stats.RecordsAppended += uint64(len(batch.Records))
		b.cAppends.Add(uint64(len(batch.Records)))
		b.trace.Emit(obs.LayerBroker, obs.EvAppend, batch.BaseSequence, base, int64(b.id), topic)
		return base, false, wire.ErrNone
	}
	if idempotent {
		st := p.prod[batch.ProducerID]
		if st == nil {
			st = &producerState{}
			p.prod[batch.ProducerID] = st
		}
		if batch.ProducerEpoch > st.epoch {
			// A bumped epoch starts a fresh sequence space (Kafka resets
			// producer sequence tracking on epoch bump): the previous
			// incarnation's ring must not dedupe the new incarnation's
			// batches, whose sequences restart from the beginning.
			*st = producerState{epoch: batch.ProducerEpoch}
		}
		if offset, ok := st.lookup(batch.BaseSequence); ok {
			// Retry of an already-persisted batch: report the original
			// offset and succeed without appending (Kafka's idempotent
			// producer semantics).
			b.stats.DuplicatesDropped++
			b.cDuplicates.Inc()
			b.trace.Emit(obs.LayerBroker, obs.EvDuplicateDrop, batch.BaseSequence, offset, int64(b.id), topic)
			return offset, true, wire.ErrNone
		}
		base := p.log.Append(batch.Records)
		st.remember(batch.BaseSequence, base)
		if batch.Transactional {
			p.txn.extend(batch.ProducerID, base, len(batch.Records))
		}
		b.stats.RecordsAppended += uint64(len(batch.Records))
		b.cAppends.Add(uint64(len(batch.Records)))
		b.trace.Emit(obs.LayerBroker, obs.EvAppend, batch.BaseSequence, base, int64(b.id), topic)
		return base, false, wire.ErrNone
	}
	base := p.log.Append(batch.Records)
	if batch.Transactional {
		p.txn.extend(batch.ProducerID, base, len(batch.Records))
	}
	b.stats.RecordsAppended += uint64(len(batch.Records))
	b.cAppends.Add(uint64(len(batch.Records)))
	// Track the per-producer sequence high-water even without idempotence
	// so duplicate appends (the Case-5 mechanism) are observable: batch
	// sequences are monotone per producer and retries pin their
	// partition, so a sequence at or below the high-water is a retry of a
	// batch this broker already appended.
	st := p.prod[batch.ProducerID]
	if st == nil {
		st = &producerState{}
		p.prod[batch.ProducerID] = st
	}
	if st.seen && batch.BaseSequence <= st.lastSequence {
		b.stats.DuplicateAppends++
		b.stats.DuplicateRecords += uint64(len(batch.Records))
		b.cDupAppends.Inc()
	} else {
		st.seen = true
		st.lastSequence = batch.BaseSequence
		st.lastOffset = base
	}
	b.trace.Emit(obs.LayerBroker, obs.EvAppend, batch.BaseSequence, base, int64(b.id), topic)
	return base, false, wire.ErrNone
}

// produceJob parks one produce request across the append service time.
// Jobs are recycled through Broker.freeJobs, so the steady-state produce
// path schedules no per-request closures or events.
type produceJob struct {
	b          *Broker
	req        wire.ProduceRequest
	idempotent bool
	done       func(arg any, resp wire.ProduceResponse)
	arg        any
}

func (b *Broker) getJob() *produceJob {
	if n := len(b.freeJobs); n > 0 {
		j := b.freeJobs[n-1]
		b.freeJobs = b.freeJobs[:n-1]
		return j
	}
	return &produceJob{b: b}
}

func (b *Broker) putJob(j *produceJob) {
	j.req = wire.ProduceRequest{}
	j.done, j.arg = nil, nil
	b.freeJobs = append(b.freeJobs, j)
}

// Produce services a produce request after the append service time and
// calls done(arg, resp) with the outcome; for acks=0 requests done is
// invoked anyway so callers can observe the outcome, but a network
// server must not transmit it. A broker that is down at call time or at
// service-completion time never calls done.
//
// done and arg replace a per-request closure: callers pass a stable
// function plus a context value, keeping the hot path allocation-free.
// The request (batch records included) is retained until the service
// time elapses, so the records must not alias a buffer the caller reuses
// in the meantime.
func (b *Broker) Produce(req wire.ProduceRequest, idempotent bool, done func(arg any, resp wire.ProduceResponse), arg any) {
	if !b.up {
		return
	}
	b.stats.ProduceRequests++
	b.cProduce.Inc()
	j := b.getJob()
	j.req, j.idempotent, j.done, j.arg = req, idempotent, done, arg
	b.sim.AfterFunc(b.serviceTime(req.Batch), produceFire, j)
}

// produceFire completes a produce job at service time. The job is
// recycled before the callback runs so a callback that produces again
// can reuse it.
func produceFire(a any) {
	j := a.(*produceJob)
	b := j.b
	req, idempotent, done, arg := j.req, j.idempotent, j.done, j.arg
	b.putJob(j)
	if !b.up {
		return
	}
	base, _, code := b.Append(req.Topic, req.Partition, req.Batch, idempotent)
	if done != nil {
		done(arg, wire.ProduceResponse{
			CorrelationID: req.CorrelationID,
			Topic:         req.Topic,
			Partition:     req.Partition,
			BaseOffset:    base,
			Err:           code,
		})
	}
}

// callPlainDone adapts a plain func(ProduceResponse) callback to the
// (arg, resp) form; func values are pointer-shaped, so passing one
// through the any argument does not allocate.
func callPlainDone(arg any, resp wire.ProduceResponse) {
	arg.(func(wire.ProduceResponse))(resp)
}

// HandleProduce is Produce with a plain callback, for callers that do
// not mind a per-request closure.
func (b *Broker) HandleProduce(req wire.ProduceRequest, idempotent bool, done func(wire.ProduceResponse)) {
	if done == nil {
		b.Produce(req, idempotent, nil, nil)
		return
	}
	b.Produce(req, idempotent, callPlainDone, done)
}

// HandleFetch services a fetch request immediately (fetch cost is
// dominated by the network in the experiments).
//
// Isolation semantics: read_committed fetches are bounded by the last
// stable offset and never see records from aborted transactions;
// control markers are hidden at both levels. The returned records are
// always contiguous starting exactly at req.Offset — a fetch positioned
// on a filtered record returns no data and instead advances NextOffset
// past the whole filtered run, so readers keep per-record offsets as
// req.Offset+i and resume from NextOffset.
//
// The response's Records slice is scratch owned by the broker, reused by
// the next HandleFetch: consume or copy it inside done. The record
// payloads alias the partition log and stay valid for the life of the
// log.
func (b *Broker) HandleFetch(req wire.FetchRequest, done func(wire.FetchResponse)) {
	if !b.up || done == nil {
		return
	}
	b.stats.FetchRequests++
	resp := wire.FetchResponse{
		CorrelationID: req.CorrelationID,
		Topic:         req.Topic,
		Partition:     req.Partition,
		NextOffset:    req.Offset,
	}
	p, ok := b.parts[partitionKey{req.Topic, req.Partition}]
	if !ok {
		resp.Err = wire.ErrUnknownTopicOrPartition
		done(resp)
		return
	}
	log := p.log
	ts := p.txn
	resp.HighWatermark = log.End()
	lso := ts.lso(log.End())
	resp.LastStable = lso
	if req.Offset < 0 || req.Offset > log.End() {
		resp.Err = wire.ErrRequestTimedOut // offset out of range maps to a generic retriable error here
		done(resp)
		return
	}
	limit := log.End()
	if req.Isolation == wire.ReadCommitted && lso < limit {
		limit = lso
	}
	pos := req.Offset
	for pos < limit && ts.filtered(pos, req.Isolation) {
		pos++
	}
	if pos > req.Offset {
		// Filtered run at the fetch position: no data, just a new start.
		resp.NextOffset = pos
		done(resp)
		return
	}
	max := int(req.MaxRecords)
	if avail := int(limit - pos); max > avail {
		max = avail
	}
	if max <= 0 {
		done(resp)
		return
	}
	entries, err := log.ReadInto(pos, max, b.fetchEntries[:0])
	if err != nil {
		resp.Err = wire.ErrRequestTimedOut
		done(resp)
		return
	}
	if entries != nil {
		b.fetchEntries = entries
	}
	recs := b.fetchRecords[:0]
	for _, e := range entries {
		if ts.filtered(e.Offset, req.Isolation) {
			break
		}
		recs = append(recs, e.Record)
	}
	b.fetchRecords = recs
	resp.Records = recs
	next := pos + int64(len(recs))
	for next < limit && ts.filtered(next, req.Isolation) {
		next++
	}
	resp.NextOffset = next
	done(resp)
}
