// Package broker implements a single Kafka-model broker node: it owns
// partition logs, services produce and fetch requests with a configurable
// service time, de-duplicates idempotent-producer batches, and can be
// stopped and restarted for failure-injection experiments (the paper's
// future-work scenario).
package broker

import (
	"fmt"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/storage"
	"kafkarel/internal/wire"
)

// Config tunes a broker's service behaviour.
type Config struct {
	// AppendLatency is the fixed cost of persisting a batch.
	AppendLatency time.Duration
	// AppendPerByte is the additional cost per payload byte, modelling
	// log-write bandwidth.
	AppendPerByte time.Duration
	// SegmentRecords is the partition-log segment roll threshold.
	SegmentRecords int
	// Obs attaches the per-run observability bundle. nil disables
	// metrics and tracing for this broker.
	Obs *obs.Obs
}

// DefaultConfig reflects a warm page-cache append path: tens of
// microseconds fixed cost and ~1 GB/s of sequential write bandwidth.
func DefaultConfig() Config {
	return Config{
		AppendLatency: 50 * time.Microsecond,
		AppendPerByte: time.Nanosecond,
	}
}

// partitionKey identifies a topic partition on this broker.
type partitionKey struct {
	topic     string
	partition int32
}

// producerState supports idempotent de-duplication per producer ID.
type producerState struct {
	lastSequence uint64
	lastOffset   int64
	seen         bool
}

// Stats counts broker activity.
type Stats struct {
	ProduceRequests   uint64
	FetchRequests     uint64
	RecordsAppended   uint64
	DuplicatesDropped uint64
	// DuplicateAppends counts non-idempotent appends of a batch sequence
	// the broker had already persisted for the same producer/partition —
	// the Case-5 duplicates an idempotent broker would have dropped.
	// Purely observational: the records are appended either way.
	DuplicateAppends uint64
}

// Broker is one node. It is driven by the shared simulator and is not
// safe for concurrent use.
type Broker struct {
	id    int32
	sim   *des.Simulator
	cfg   Config
	logs  map[partitionKey]*storage.Log
	prod  map[partitionKey]map[uint64]*producerState
	up    bool
	stats Stats

	cProduce    *obs.Counter
	cAppends    *obs.Counter
	cDuplicates *obs.Counter
	cDupAppends *obs.Counter
	trace       *obs.Tracer
}

// New creates a running broker with the given node ID.
func New(id int32, sim *des.Simulator, cfg Config) (*Broker, error) {
	if sim == nil {
		return nil, fmt.Errorf("broker: nil simulator")
	}
	if cfg.AppendLatency < 0 || cfg.AppendPerByte < 0 {
		return nil, fmt.Errorf("broker: negative service time")
	}
	o := cfg.Obs
	return &Broker{
		id:          id,
		sim:         sim,
		cfg:         cfg,
		logs:        make(map[partitionKey]*storage.Log),
		prod:        make(map[partitionKey]map[uint64]*producerState),
		up:          true,
		cProduce:    o.Counter(obs.MBrokerProduce),
		cAppends:    o.Counter(obs.MBrokerAppends),
		cDuplicates: o.Counter(obs.MBrokerDuplicates),
		cDupAppends: o.Counter(obs.MBrokerDupAppends),
		trace:       o.Tracer(),
	}, nil
}

// ID returns the broker's node ID.
func (b *Broker) ID() int32 { return b.id }

// Up reports whether the broker is serving requests.
func (b *Broker) Up() bool { return b.up }

// Stop makes the broker silently drop all requests (a crashed node as
// seen from the network).
func (b *Broker) Stop() { b.up = false }

// Start brings a stopped broker back. Its logs are retained, as Kafka's
// are across restarts.
func (b *Broker) Start() { b.up = true }

// Stats returns an activity snapshot.
func (b *Broker) Stats() Stats { return b.stats }

// CreatePartition provisions an empty log for the topic partition.
// Creating an existing partition is a no-op.
func (b *Broker) CreatePartition(topic string, partition int32) {
	k := partitionKey{topic, partition}
	if _, ok := b.logs[k]; !ok {
		b.logs[k] = storage.NewLog(b.cfg.SegmentRecords)
		b.prod[k] = make(map[uint64]*producerState)
	}
}

// Log exposes the partition log (nil if absent), used by replication and
// by the consumer-side reconciliation in tests.
func (b *Broker) Log(topic string, partition int32) *storage.Log {
	return b.logs[partitionKey{topic, partition}]
}

// serviceTime returns the simulated cost of persisting a batch.
func (b *Broker) serviceTime(batch wire.RecordBatch) time.Duration {
	bytes := 0
	for _, r := range batch.Records {
		bytes += r.EncodedSize()
	}
	return b.cfg.AppendLatency + time.Duration(bytes)*b.cfg.AppendPerByte
}

// Append is the synchronous core of produce handling: idempotency check,
// then log append. It returns the base offset, whether the batch was a
// duplicate, and an error code.
func (b *Broker) Append(topic string, partition int32, batch wire.RecordBatch, idempotent bool) (int64, bool, wire.ErrorCode) {
	k := partitionKey{topic, partition}
	log, ok := b.logs[k]
	if !ok {
		return 0, false, wire.ErrUnknownTopicOrPartition
	}
	if idempotent {
		st := b.prod[k][batch.ProducerID]
		if st == nil {
			st = &producerState{}
			b.prod[k][batch.ProducerID] = st
		}
		if st.seen && batch.BaseSequence <= st.lastSequence {
			// Retry of an already-persisted batch: report the original
			// offset and succeed without appending (Kafka's idempotent
			// producer semantics).
			b.stats.DuplicatesDropped++
			b.cDuplicates.Inc()
			b.trace.Emit(obs.LayerBroker, obs.EvDuplicateDrop, batch.BaseSequence, st.lastOffset, int64(b.id), topic)
			return st.lastOffset, true, wire.ErrNone
		}
		base := log.Append(batch.Records)
		st.seen = true
		st.lastSequence = batch.BaseSequence
		st.lastOffset = base
		b.stats.RecordsAppended += uint64(len(batch.Records))
		b.cAppends.Add(uint64(len(batch.Records)))
		b.trace.Emit(obs.LayerBroker, obs.EvAppend, batch.BaseSequence, base, int64(b.id), topic)
		return base, false, wire.ErrNone
	}
	base := log.Append(batch.Records)
	b.stats.RecordsAppended += uint64(len(batch.Records))
	b.cAppends.Add(uint64(len(batch.Records)))
	// Track the per-producer sequence high-water even without idempotence
	// so duplicate appends (the Case-5 mechanism) are observable: batch
	// sequences are monotone per producer and retries pin their
	// partition, so a sequence at or below the high-water is a retry of a
	// batch this broker already appended.
	st := b.prod[k][batch.ProducerID]
	if st == nil {
		st = &producerState{}
		b.prod[k][batch.ProducerID] = st
	}
	if st.seen && batch.BaseSequence <= st.lastSequence {
		b.stats.DuplicateAppends++
		b.cDupAppends.Inc()
	} else {
		st.seen = true
		st.lastSequence = batch.BaseSequence
		st.lastOffset = base
	}
	b.trace.Emit(obs.LayerBroker, obs.EvAppend, batch.BaseSequence, base, int64(b.id), topic)
	return base, false, wire.ErrNone
}

// HandleProduce services a produce request after the append service time.
// done receives the response; for acks=0 requests done is invoked with
// the response anyway so callers can observe the outcome, but a network
// server must not transmit it. A stopped broker never calls done.
func (b *Broker) HandleProduce(req wire.ProduceRequest, idempotent bool, done func(wire.ProduceResponse)) {
	if !b.up {
		return
	}
	b.stats.ProduceRequests++
	b.cProduce.Inc()
	b.sim.After(b.serviceTime(req.Batch), func() {
		if !b.up {
			return
		}
		base, _, code := b.Append(req.Topic, req.Partition, req.Batch, idempotent)
		if done != nil {
			done(wire.ProduceResponse{
				CorrelationID: req.CorrelationID,
				Topic:         req.Topic,
				Partition:     req.Partition,
				BaseOffset:    base,
				Err:           code,
			})
		}
	})
}

// HandleFetch services a fetch request immediately (fetch cost is
// dominated by the network in the experiments).
func (b *Broker) HandleFetch(req wire.FetchRequest, done func(wire.FetchResponse)) {
	if !b.up || done == nil {
		return
	}
	b.stats.FetchRequests++
	resp := wire.FetchResponse{
		CorrelationID: req.CorrelationID,
		Topic:         req.Topic,
		Partition:     req.Partition,
	}
	log, ok := b.logs[partitionKey{req.Topic, req.Partition}]
	if !ok {
		resp.Err = wire.ErrUnknownTopicOrPartition
		done(resp)
		return
	}
	resp.HighWatermark = log.End()
	entries, err := log.Read(req.Offset, int(req.MaxRecords))
	if err != nil {
		resp.Err = wire.ErrRequestTimedOut // offset out of range maps to a generic retriable error here
		done(resp)
		return
	}
	resp.Records = make([]wire.Record, 0, len(entries))
	for _, e := range entries {
		resp.Records = append(resp.Records, e.Record)
	}
	done(resp)
}
