package broker

import (
	"testing"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

func batch(producerID, seq uint64, keys ...uint64) wire.RecordBatch {
	b := wire.RecordBatch{ProducerID: producerID, BaseSequence: seq}
	for _, k := range keys {
		b.Records = append(b.Records, wire.Record{Key: k, Payload: []byte("xx")})
	}
	return b
}

func newBroker(t *testing.T, sim *des.Simulator) *Broker {
	t.Helper()
	b, err := New(1, sim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.CreatePartition("t", 0)
	return b
}

func TestHandleProduceAppendsAndResponds(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	var resp wire.ProduceResponse
	got := false
	b.HandleProduce(wire.ProduceRequest{
		CorrelationID: 7, Topic: "t", Partition: 0, Acks: wire.AcksLeader,
		Batch: batch(1, 0, 10, 11),
	}, false, func(r wire.ProduceResponse) { resp = r; got = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("no response")
	}
	if resp.CorrelationID != 7 || resp.Err != wire.ErrNone || resp.BaseOffset != 0 {
		t.Errorf("resp = %+v", resp)
	}
	if b.Log("t", 0).End() != 2 {
		t.Errorf("log end = %d, want 2", b.Log("t", 0).End())
	}
	if b.Stats().RecordsAppended != 2 {
		t.Errorf("RecordsAppended = %d", b.Stats().RecordsAppended)
	}
}

func TestServiceTimeDelaysResponse(t *testing.T) {
	sim := des.New()
	cfg := Config{AppendLatency: time.Millisecond, AppendPerByte: 0}
	b, err := New(1, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.CreatePartition("t", 0)
	var at time.Duration
	b.HandleProduce(wire.ProduceRequest{Topic: "t", Batch: batch(1, 0, 1)}, false,
		func(wire.ProduceResponse) { at = sim.Now() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at != time.Millisecond {
		t.Errorf("responded at %v, want 1ms", at)
	}
}

func TestUnknownPartition(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	var resp wire.ProduceResponse
	b.HandleProduce(wire.ProduceRequest{Topic: "nope", Batch: batch(1, 0, 1)}, false,
		func(r wire.ProduceResponse) { resp = r })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrUnknownTopicOrPartition {
		t.Errorf("Err = %v", resp.Err)
	}
}

func TestStoppedBrokerDropsRequests(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	b.Stop()
	called := false
	b.HandleProduce(wire.ProduceRequest{Topic: "t", Batch: batch(1, 0, 1)}, false,
		func(wire.ProduceResponse) { called = true })
	b.HandleFetch(wire.FetchRequest{Topic: "t"}, func(wire.FetchResponse) { called = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("stopped broker responded")
	}
	if !b.Up() {
		b.Start()
	}
	b.Start()
	if !b.Up() {
		t.Error("broker not up after Start")
	}
}

func TestCrashMidServiceDropsAppend(t *testing.T) {
	sim := des.New()
	cfg := Config{AppendLatency: 10 * time.Millisecond}
	b, err := New(1, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.CreatePartition("t", 0)
	called := false
	b.HandleProduce(wire.ProduceRequest{Topic: "t", Batch: batch(1, 0, 1)}, false,
		func(wire.ProduceResponse) { called = true })
	sim.Schedule(5*time.Millisecond, b.Stop)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("crashed broker completed the append")
	}
	if b.Log("t", 0).End() != 0 {
		t.Error("append survived mid-service crash")
	}
}

func TestIdempotentDedup(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	// Original batch.
	base, dup, code := b.Append("t", 0, batch(42, 5, 1, 2), true)
	if base != 0 || dup || code != wire.ErrNone {
		t.Fatalf("first append = %d, %v, %v", base, dup, code)
	}
	// Retry of the same sequence: deduplicated, original offset returned.
	base, dup, code = b.Append("t", 0, batch(42, 5, 1, 2), true)
	if base != 0 || !dup || code != wire.ErrNone {
		t.Fatalf("retry append = %d, %v, %v", base, dup, code)
	}
	if b.Log("t", 0).End() != 2 {
		t.Errorf("log end = %d, want 2 (no duplicate records)", b.Log("t", 0).End())
	}
	if b.Stats().DuplicatesDropped != 1 {
		t.Errorf("DuplicatesDropped = %d", b.Stats().DuplicatesDropped)
	}
	// Next sequence appends normally.
	base, dup, code = b.Append("t", 0, batch(42, 6, 3), true)
	if base != 2 || dup || code != wire.ErrNone {
		t.Fatalf("next append = %d, %v, %v", base, dup, code)
	}
	// Different producer IDs do not collide.
	base, dup, _ = b.Append("t", 0, batch(43, 5, 9), true)
	if base != 3 || dup {
		t.Fatalf("other producer = %d, %v", base, dup)
	}
}

func TestNonIdempotentAppendsDuplicates(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	b.Append("t", 0, batch(1, 5, 1), false)
	b.Append("t", 0, batch(1, 5, 1), false) // same sequence, appended again
	if b.Log("t", 0).End() != 2 {
		t.Errorf("log end = %d, want 2 (duplicate persisted)", b.Log("t", 0).End())
	}
}

func TestHandleFetch(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	b.Append("t", 0, batch(1, 0, 10, 11, 12), false)
	var resp wire.FetchResponse
	b.HandleFetch(wire.FetchRequest{Topic: "t", Partition: 0, Offset: 1, MaxRecords: 10},
		func(r wire.FetchResponse) { resp = r })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrNone || resp.HighWatermark != 3 {
		t.Errorf("resp = %+v", resp)
	}
	if len(resp.Records) != 2 || resp.Records[0].Key != 11 {
		t.Errorf("records = %+v", resp.Records)
	}
	if b.Stats().FetchRequests != 1 {
		t.Errorf("FetchRequests = %d", b.Stats().FetchRequests)
	}
}

func TestFetchErrors(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	var resp wire.FetchResponse
	b.HandleFetch(wire.FetchRequest{Topic: "missing"}, func(r wire.FetchResponse) { resp = r })
	if resp.Err != wire.ErrUnknownTopicOrPartition {
		t.Errorf("missing topic err = %v", resp.Err)
	}
	b.HandleFetch(wire.FetchRequest{Topic: "t", Offset: 99}, func(r wire.FetchResponse) { resp = r })
	if resp.Err == wire.ErrNone {
		t.Error("out-of-range offset accepted")
	}
	_ = sim
}

func TestCreatePartitionIdempotent(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	b.Append("t", 0, batch(1, 0, 1), false)
	b.CreatePartition("t", 0) // must not wipe the log
	if b.Log("t", 0).End() != 1 {
		t.Error("CreatePartition reset an existing log")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, nil, DefaultConfig()); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := New(1, des.New(), Config{AppendLatency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
}
