// Broker-side transaction bookkeeping. Each partition tracks, per
// producer id, the open transactional offset range plus the history of
// aborted ranges and control-marker offsets, exactly the state Kafka
// brokers rebuild from batch headers when they materialise the aborted-
// transaction index. The state is maintained inside Append, so follower
// replicas — which receive the same batches through replication —
// converge on the same view as the leader.
package broker

import (
	"sort"

	"kafkarel/internal/wire"
)

// TxnRange is a half-open offset interval [First, Next) holding one
// producer's transactional records.
type TxnRange struct {
	First, Next int64
}

// txnState is one partition's live transaction view.
type txnState struct {
	// ongoing maps producer id -> the open (undecided) transaction's
	// offset range. Its minimum First is the partition's LSO.
	ongoing map[uint64]TxnRange
	// aborted holds decided-aborted data ranges, sorted by First. Records
	// inside them are invisible at read_committed.
	aborted []TxnRange
	// control holds the offsets of control-marker records, ascending.
	// Markers are filtered at both isolation levels.
	control []int64
	// epoch is the highest producer epoch seen per producer id; batches
	// carrying a lower epoch are zombies and are fenced.
	epoch map[uint64]uint32
}

func newTxnState() *txnState {
	return &txnState{ongoing: make(map[uint64]TxnRange), epoch: make(map[uint64]uint32)}
}

// fence checks a transactional batch's epoch against the highest seen
// for its producer id, recording a new high. It reports whether the
// batch is a fenced zombie.
func (ts *txnState) fence(pid uint64, epoch uint32) bool {
	if prev, ok := ts.epoch[pid]; ok && epoch < prev {
		return true
	}
	ts.epoch[pid] = epoch
	return false
}

// extend opens or extends the producer's ongoing range with a data batch
// appended at [base, base+n).
func (ts *txnState) extend(pid uint64, base int64, n int) {
	if rng, ok := ts.ongoing[pid]; ok {
		rng.Next = base + int64(n)
		ts.ongoing[pid] = rng
		return
	}
	ts.ongoing[pid] = TxnRange{First: base, Next: base + int64(n)}
}

// applyMarker records a control marker appended at offset and closes the
// producer's ongoing range: commit makes it plainly visible, abort moves
// it to the aborted history. A marker with no ongoing range (a
// coordinator re-drive after a partial marker write) only records the
// control offset — re-driving markers is idempotent by construction.
func (ts *txnState) applyMarker(pid uint64, offset int64, commit bool) {
	ts.control = append(ts.control, offset)
	rng, ok := ts.ongoing[pid]
	if !ok {
		return
	}
	delete(ts.ongoing, pid)
	if commit {
		return
	}
	i := sort.Search(len(ts.aborted), func(i int) bool { return ts.aborted[i].First >= rng.First })
	ts.aborted = append(ts.aborted, TxnRange{})
	copy(ts.aborted[i+1:], ts.aborted[i:])
	ts.aborted[i] = rng
}

// lso returns the last stable offset: everything below it is decided.
func (ts *txnState) lso(logEnd int64) int64 {
	lso := logEnd
	for _, rng := range ts.ongoing {
		if rng.First < lso {
			lso = rng.First
		}
	}
	return lso
}

// isControl reports whether offset holds a control marker.
func (ts *txnState) isControl(offset int64) bool {
	i := sort.Search(len(ts.control), func(i int) bool { return ts.control[i] >= offset })
	return i < len(ts.control) && ts.control[i] == offset
}

// isAborted reports whether offset lies inside a decided-aborted range.
func (ts *txnState) isAborted(offset int64) bool {
	i := sort.Search(len(ts.aborted), func(i int) bool { return ts.aborted[i].Next > offset })
	return i < len(ts.aborted) && ts.aborted[i].First <= offset
}

// filtered reports whether the record at offset must be hidden from a
// fetch at the given isolation level. Control markers are protocol
// internals and are hidden from everyone; aborted data is hidden only
// from read_committed readers.
func (ts *txnState) filtered(offset int64, iso wire.IsolationLevel) bool {
	if ts.isControl(offset) {
		return true
	}
	return iso == wire.ReadCommitted && ts.isAborted(offset)
}

// clone deep-copies the state for flush snapshots.
func (ts *txnState) clone() *txnState {
	cp := &txnState{
		ongoing: make(map[uint64]TxnRange, len(ts.ongoing)),
		epoch:   make(map[uint64]uint32, len(ts.epoch)),
	}
	for pid, rng := range ts.ongoing {
		cp.ongoing[pid] = rng
	}
	for pid, e := range ts.epoch {
		cp.epoch[pid] = e
	}
	cp.aborted = append([]TxnRange(nil), ts.aborted...)
	cp.control = append([]int64(nil), ts.control...)
	return cp
}

// TxnSnapshot is the exported transaction state of one partition, used
// when a recovering replica adopts the leader's view during catch-up
// (the raw-record copy loses the batch headers the state derives from).
type TxnSnapshot struct {
	Ongoing map[uint64]TxnRange
	Aborted []TxnRange
	Control []int64
	Epoch   map[uint64]uint32
}

// TxnStateSnapshot exports the partition's live transaction state (zero
// value if the partition is absent).
func (b *Broker) TxnStateSnapshot(topic string, partition int32) TxnSnapshot {
	p := b.parts[partitionKey{topic, partition}]
	if p == nil || p.txn == nil {
		return TxnSnapshot{}
	}
	cp := p.txn.clone()
	return TxnSnapshot{Ongoing: cp.ongoing, Aborted: cp.aborted, Control: cp.control, Epoch: cp.epoch}
}

// RestoreTxnState replaces the partition's transaction state with a
// leader snapshot at the end of a catch-up, clipped to the local log end
// (the snapshot and log copy are taken together, so clipping is a
// safety net, not an expected path).
func (b *Broker) RestoreTxnState(topic string, partition int32, snap TxnSnapshot) {
	p := b.parts[partitionKey{topic, partition}]
	if p == nil {
		return
	}
	ts := newTxnState()
	end := p.log.End()
	for pid, rng := range snap.Ongoing {
		if rng.First < end {
			if rng.Next > end {
				rng.Next = end
			}
			ts.ongoing[pid] = rng
		}
	}
	for _, rng := range snap.Aborted {
		if rng.First < end {
			if rng.Next > end {
				rng.Next = end
			}
			ts.aborted = append(ts.aborted, rng)
		}
	}
	sort.Slice(ts.aborted, func(i, j int) bool { return ts.aborted[i].First < ts.aborted[j].First })
	for _, off := range snap.Control {
		if off < end {
			ts.control = append(ts.control, off)
		}
	}
	sort.Slice(ts.control, func(i, j int) bool { return ts.control[i] < ts.control[j] })
	for pid, e := range snap.Epoch {
		ts.epoch[pid] = e
	}
	p.txn = ts
	p.flushedTxn = ts.clone()
}

// LastStable returns the partition's last stable offset, for tests and
// the cluster's recovery bookkeeping.
func (b *Broker) LastStable(topic string, partition int32) int64 {
	p := b.parts[partitionKey{topic, partition}]
	if p == nil {
		return 0
	}
	if p.txn == nil {
		return p.log.End()
	}
	return p.txn.lso(p.log.End())
}
