package broker

import (
	"testing"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// flushBroker builds a broker with a 100ms flush interval on partition t/0.
func flushBroker(t *testing.T, sim *des.Simulator) *Broker {
	t.Helper()
	cfg := DefaultConfig()
	cfg.FlushInterval = 100 * time.Millisecond
	b, err := New(1, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.CreatePartition("t", 0)
	return b
}

// appendAt appends a batch directly at a virtual time.
func appendAt(t *testing.T, sim *des.Simulator, b *Broker, at time.Duration, bt wire.RecordBatch, idem bool) {
	t.Helper()
	sim.Schedule(at, func() {
		if _, _, code := b.Append("t", 0, bt, idem); code != wire.ErrNone {
			t.Errorf("append at %v: %v", at, code)
		}
	})
}

func TestUncleanCrashLosesUnflushedTail(t *testing.T) {
	sim := des.New()
	b := flushBroker(t, sim)
	appendAt(t, sim, b, 30*time.Millisecond, batch(1, 1, 1), false)
	appendAt(t, sim, b, 60*time.Millisecond, batch(1, 2, 2), false)
	// Crossing the 100ms boundary flushes the pre-append state {1,2},
	// then appends key 3 into the new, unflushed tail.
	appendAt(t, sim, b, 150*time.Millisecond, batch(1, 3, 3), false)
	sim.Schedule(160*time.Millisecond, b.CrashUnclean)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	log := b.Log("t", 0)
	if log.End() != 2 {
		t.Fatalf("log end after unclean crash = %d, want 2 (key 3 truncated)", log.End())
	}
	st := b.Stats()
	if st.RecordsTruncated != 1 || st.UncleanCrashes != 1 {
		t.Errorf("stats = %+v, want 1 truncated / 1 unclean crash", st)
	}
}

func TestUncleanCrashAtBoundaryFlushesEverything(t *testing.T) {
	sim := des.New()
	b := flushBroker(t, sim)
	appendAt(t, sim, b, 30*time.Millisecond, batch(1, 1, 1), false)
	appendAt(t, sim, b, 150*time.Millisecond, batch(1, 2, 2), false)
	// Crash at 210ms: the 200ms boundary passed after the last append, so
	// both records count as flushed — nothing is lost.
	sim.Schedule(210*time.Millisecond, b.CrashUnclean)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if end := b.Log("t", 0).End(); end != 2 {
		t.Fatalf("log end = %d, want 2", end)
	}
	if st := b.Stats(); st.RecordsTruncated != 0 {
		t.Errorf("RecordsTruncated = %d, want 0", st.RecordsTruncated)
	}
}

func TestCleanStopFlushesTail(t *testing.T) {
	sim := des.New()
	b := flushBroker(t, sim)
	appendAt(t, sim, b, 30*time.Millisecond, batch(1, 1, 1), false)
	sim.Schedule(40*time.Millisecond, b.Stop)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Log("t", 0).Flushed(); got != 1 {
		t.Fatalf("flushed offset after clean stop = %d, want 1", got)
	}
}

func TestUncleanCrashRollsBackProducerState(t *testing.T) {
	sim := des.New()
	b := flushBroker(t, sim)
	// Batch seq 1 lands before the boundary; seq 2 after it.
	appendAt(t, sim, b, 30*time.Millisecond, batch(7, 1, 1), true)
	appendAt(t, sim, b, 150*time.Millisecond, batch(7, 2, 2), true)
	sim.Schedule(160*time.Millisecond, b.CrashUnclean)
	sim.Schedule(170*time.Millisecond, b.Start)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Seq 2 was truncated with the tail. A retry of it must append again,
	// not be dedupe-acked off the stale sequence state...
	base, dup, code := b.Append("t", 0, batch(7, 2, 2), true)
	if code != wire.ErrNone || dup || base != 1 {
		t.Fatalf("retry of truncated batch: base=%d dup=%v code=%v, want fresh append at 1", base, dup, code)
	}
	// ...while a retry of the flushed seq-1 batch still dedupes.
	if _, dup, _ := b.Append("t", 0, batch(7, 1, 1), true); !dup {
		t.Error("retry of flushed batch was not deduplicated")
	}
}

func TestZeroFlushIntervalMakesUncleanCrashClean(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim) // default config: FlushInterval 0
	appendAt(t, sim, b, 30*time.Millisecond, batch(1, 1, 1), false)
	sim.Schedule(40*time.Millisecond, b.CrashUnclean)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if end := b.Log("t", 0).End(); end != 1 {
		t.Fatalf("log end = %d, want 1 (no flush interval: all appends durable)", end)
	}
}

func TestRestoreProducerStateAdoptsLeaderState(t *testing.T) {
	sim := des.New()
	b := flushBroker(t, sim)
	b.RestoreProducerState("t", 0, map[uint64]SeqState{7: {
		LastSequence: 5, LastOffset: 4,
		Recent: []BatchMeta{{Sequence: 3, Offset: 2}, {Sequence: 5, Offset: 4}},
	}})
	if off, dup, _ := b.Append("t", 0, batch(7, 5, 9), true); !dup || off != 4 {
		t.Errorf("retry of adopted batch: dup=%v off=%d, want dedupe at 4", dup, off)
	}
	if _, dup, _ := b.Append("t", 0, batch(7, 6, 10), true); dup {
		t.Error("batch past adopted high-water was deduplicated")
	}
	// Sequence 4 is below the high-water but was never appended (a
	// pipelined batch that had not landed when the snapshot was taken):
	// it must append, not be dropped off the high-water.
	if _, dup, _ := b.Append("t", 0, batch(7, 4, 11), true); dup {
		t.Error("unseen out-of-order batch was falsely deduplicated")
	}
}

// TestOutOfOrderPipelinedBatchAppends is the max-in-flight > 1 case the
// chaos checker caught: two pipelined batches arrive out of sequence
// order; the late lower-sequence batch is NEW and must be appended —
// a bare high-water comparison would drop it while acking it, losing
// acknowledged records.
func TestOutOfOrderPipelinedBatchAppends(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	if _, dup, _ := b.Append("t", 0, batch(7, 2, 2), true); dup {
		t.Fatal("first batch deduplicated")
	}
	if base, dup, _ := b.Append("t", 0, batch(7, 1, 1), true); dup || base != 1 {
		t.Fatalf("out-of-order new batch: dup=%v base=%d, want append at 1", dup, base)
	}
	// A true retry of either batch still dedupes to its own offset.
	if off, dup, _ := b.Append("t", 0, batch(7, 2, 2), true); !dup || off != 0 {
		t.Errorf("retry of seq 2: dup=%v off=%d, want dedupe at 0", dup, off)
	}
	if off, dup, _ := b.Append("t", 0, batch(7, 1, 1), true); !dup || off != 1 {
		t.Errorf("retry of seq 1: dup=%v off=%d, want dedupe at 1", dup, off)
	}
}

func TestSetSlowdownScalesServiceTime(t *testing.T) {
	sim := des.New()
	cfg := Config{AppendLatency: time.Millisecond}
	b, err := New(1, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.CreatePartition("t", 0)
	b.SetSlowdown(4)
	var respAt time.Duration
	b.HandleProduce(wire.ProduceRequest{Topic: "t", Acks: wire.AcksLeader, Batch: batch(1, 1, 1)},
		false, func(wire.ProduceResponse) { respAt = sim.Now() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if respAt != 4*time.Millisecond {
		t.Errorf("slowed response at %v, want 4ms", respAt)
	}
	b.SetSlowdown(1)
	var secondAt time.Duration
	start := sim.Now()
	b.HandleProduce(wire.ProduceRequest{Topic: "t", Acks: wire.AcksLeader, Batch: batch(1, 2, 2)},
		false, func(wire.ProduceResponse) { secondAt = sim.Now() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if secondAt-start != time.Millisecond {
		t.Errorf("nominal response took %v, want 1ms", secondAt-start)
	}
}
