package broker

import (
	"testing"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

func txnBatch(pid uint64, epoch uint32, seq uint64, keys ...uint64) wire.RecordBatch {
	b := wire.RecordBatch{
		ProducerID: pid, ProducerEpoch: epoch, BaseSequence: seq,
		Idempotent: true, Transactional: true,
	}
	for _, k := range keys {
		b.Records = append(b.Records, wire.Record{Key: k, Payload: []byte("xx")})
	}
	return b
}

func marker(pid uint64, epoch uint32, commit bool) wire.RecordBatch {
	return wire.RecordBatch{
		ProducerID: pid, ProducerEpoch: epoch, Control: true,
		Records: []wire.Record{wire.ControlRecord(commit, 0)},
	}
}

// fetchIso drains the partition from offset at the given isolation,
// following NextOffset across filtered runs (a single fetch returns
// only one contiguous visible run).
func fetchIso(t *testing.T, b *Broker, offset int64, iso wire.IsolationLevel) wire.FetchResponse {
	t.Helper()
	var all wire.FetchResponse
	for {
		var resp wire.FetchResponse
		got := false
		b.HandleFetch(wire.FetchRequest{
			Topic: "t", Partition: 0, Offset: offset, MaxRecords: 100, Isolation: iso,
		}, func(r wire.FetchResponse) { resp = r; got = true })
		if !got {
			t.Fatal("no fetch response")
		}
		if resp.Err != wire.ErrNone {
			t.Fatalf("fetch at %d: %s", offset, resp.Err)
		}
		all.Records = append(all.Records, resp.Records...)
		all.HighWatermark, all.LastStable = resp.HighWatermark, resp.LastStable
		if resp.NextOffset <= offset {
			return all
		}
		offset = resp.NextOffset
	}
}

func TestTxnStaleEpochFencedBeforeAppend(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	if _, _, code := b.Append("t", 0, txnBatch(9, 2, 1, 1), true); code != wire.ErrNone {
		t.Fatalf("epoch-2 append: %s", code)
	}
	if _, _, code := b.Append("t", 0, txnBatch(9, 1, 2, 2), true); code != wire.ErrProducerFenced {
		t.Fatalf("stale-epoch append = %s, want PRODUCER_FENCED", code)
	}
	// Control markers from the stale epoch are fenced too.
	if _, _, code := b.Append("t", 0, marker(9, 1, true), false); code != wire.ErrProducerFenced {
		t.Fatalf("stale-epoch marker = %s, want PRODUCER_FENCED", code)
	}
	if b.Log("t", 0).End() != 1 {
		t.Fatalf("log end = %d after fenced appends, want 1", b.Log("t", 0).End())
	}
}

func TestTxnEpochBumpResetsSequenceSpace(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	// Old incarnation appends sequence 1, then dies (its txn dangles).
	if _, _, code := b.Append("t", 0, txnBatch(9, 0, 1, 1), true); code != wire.ErrNone {
		t.Fatalf("epoch-0 append: %s", code)
	}
	// The new incarnation restarts its sequences at 1 under epoch 1: the
	// batch must APPEND, not dedupe against the dead epoch's batch.
	off, dup, code := b.Append("t", 0, txnBatch(9, 1, 1, 2), true)
	if code != wire.ErrNone || dup {
		t.Fatalf("epoch-1 seq-1 append = (dup=%v, %s), want a fresh append", dup, code)
	}
	if off != 1 || b.Log("t", 0).End() != 2 {
		t.Fatalf("offset %d, log end %d — new epoch's batch was dropped", off, b.Log("t", 0).End())
	}
	// Within the new epoch, dedupe still works.
	off2, dup2, code2 := b.Append("t", 0, txnBatch(9, 1, 1, 2), true)
	if code2 != wire.ErrNone || !dup2 || off2 != 1 {
		t.Fatalf("same-epoch retry = (off=%d, dup=%v, %s), want dedupe at 1", off2, dup2, code2)
	}
}

func TestTxnLastStableAndIsolationFiltering(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	b.Append("t", 0, txnBatch(9, 0, 1, 1, 2), true)
	if lso := b.LastStable("t", 0); lso != 0 {
		t.Fatalf("LSO with open txn = %d, want 0", lso)
	}
	// read_committed is held at the LSO; read_uncommitted sees the data.
	if f := fetchIso(t, b, 0, wire.ReadCommitted); len(f.Records) != 0 || f.LastStable != 0 {
		t.Fatalf("read_committed before commit: %d records, LSO %d", len(f.Records), f.LastStable)
	}
	if f := fetchIso(t, b, 0, wire.ReadUncommitted); len(f.Records) != 2 {
		t.Fatalf("read_uncommitted = %d records, want 2", len(f.Records))
	}
	// Commit marker closes the range and advances the LSO past it.
	b.Append("t", 0, marker(9, 0, true), false)
	if lso := b.LastStable("t", 0); lso != 3 {
		t.Fatalf("LSO after commit = %d, want 3", lso)
	}
	f := fetchIso(t, b, 0, wire.ReadCommitted)
	if len(f.Records) != 2 || f.Records[0].Key != 1 || f.Records[1].Key != 2 {
		t.Fatalf("read_committed after commit = %+v, want keys 1,2", f.Records)
	}
	// The control record itself is hidden at BOTH isolations.
	if f := fetchIso(t, b, 0, wire.ReadUncommitted); len(f.Records) != 2 {
		t.Fatalf("control record leaked at read_uncommitted: %d records", len(f.Records))
	}
}

func TestTxnAbortedRangeSkippedAtReadCommitted(t *testing.T) {
	sim := des.New()
	b := newBroker(t, sim)
	// txn A aborts, txn B commits, interleaved on the same partition.
	b.Append("t", 0, txnBatch(9, 0, 1, 1, 2), true)
	b.Append("t", 0, txnBatch(7, 0, 1, 3), true)
	b.Append("t", 0, marker(9, 0, false), false) // abort A
	b.Append("t", 0, marker(7, 0, true), false)  // commit B
	f := fetchIso(t, b, 0, wire.ReadCommitted)
	if len(f.Records) != 1 || f.Records[0].Key != 3 {
		t.Fatalf("read_committed = %+v, want only key 3", f.Records)
	}
	// read_uncommitted sees the aborted residue as configured.
	f = fetchIso(t, b, 0, wire.ReadUncommitted)
	if len(f.Records) != 3 {
		t.Fatalf("read_uncommitted = %d records, want 3", len(f.Records))
	}
	// A replayed abort marker is a no-op on the transaction view.
	b.Append("t", 0, marker(9, 0, false), false)
	if got := fetchIso(t, b, 0, wire.ReadCommitted); len(got.Records) != 1 {
		t.Fatalf("marker replay changed the committed view: %d records", len(got.Records))
	}
}

func TestTxnStateSurvivesUncleanCrashViaSnapshot(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	// A long flush interval keeps the open-transaction state out of the
	// durable snapshot unless RestoreTxnState is exercised.
	cfg.FlushInterval = 10 * time.Second
	b, err := New(1, sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.CreatePartition("t", 0)
	b.Append("t", 0, txnBatch(9, 3, 1, 1, 2), true)
	b.Append("t", 0, marker(9, 3, true), false)
	snap := b.TxnStateSnapshot("t", 0)
	seqs := b.ProducerStateSnapshot("t", 0)
	if seqs[9].Epoch != 3 {
		t.Fatalf("snapshot epoch = %d, want 3", seqs[9].Epoch)
	}

	b.CrashUnclean()
	b.Start()
	// Catch-up from the leader restores both views (cluster.RecoverBroker
	// path): fencing and the committed ranges must hold afterwards.
	b.RestoreTxnState("t", 0, snap)
	b.RestoreProducerState("t", 0, seqs)
	if _, _, code := b.Append("t", 0, txnBatch(9, 2, 5, 9), true); code != wire.ErrProducerFenced {
		t.Fatalf("stale epoch after restore = %s, want PRODUCER_FENCED", code)
	}
	if _, dup, code := b.Append("t", 0, txnBatch(9, 3, 1, 1, 2), true); code != wire.ErrNone || !dup {
		t.Fatalf("retry after restore = (dup=%v, %s), want dedupe", dup, code)
	}
}
