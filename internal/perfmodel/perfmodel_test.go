package perfmodel

import (
	"testing"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

func vec(m int, b int, sem int, delta time.Duration) features.Vector {
	return features.Vector{
		MessageSize:    m,
		Timeliness:     5 * time.Second,
		Semantics:      sem,
		BatchSize:      b,
		PollInterval:   delta,
		MessageTimeout: time.Second,
	}
}

func TestNewDefaults(t *testing.T) {
	m, err := New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil model")
	}
	bad := testbed.DefaultCalibration()
	bad.Bandwidth = -1
	if _, err := New(bad); err == nil {
		t.Error("invalid calibration accepted")
	}
}

func TestRangesAndValidation(t *testing.T) {
	m, err := New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict(vec(200, 1, features.SemanticsAtLeastOnce, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Phi < 0 || p.Phi > 1 || p.Mu < 0 || p.Mu > 1 {
		t.Errorf("out of range: %+v", p)
	}
	if p.ServiceRate <= 0 || p.ArrivalRate <= 0 {
		t.Errorf("degenerate rates: %+v", p)
	}
	if _, err := m.Predict(features.Vector{}); err == nil {
		t.Error("invalid vector accepted")
	}
}

func TestServiceRateFallsWithMessageSize(t *testing.T) {
	// Sec. IV-A: "with larger M the service rate μ is lower".
	m, err := New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, size := range []int{1000, 500, 200, 100} {
		p, err := m.Predict(vec(size, 1, features.SemanticsAtLeastOnce, 0))
		if err != nil {
			t.Fatal(err)
		}
		if p.ServiceRate <= prev {
			t.Errorf("service rate %v at M=%d not above previous %v", p.ServiceRate, size, prev)
		}
		prev = p.ServiceRate
	}
}

func TestPollIntervalLowersLoadRaisesMu(t *testing.T) {
	m, err := New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Predict(vec(200, 1, features.SemanticsAtLeastOnce, 0))
	if err != nil {
		t.Fatal(err)
	}
	paced, err := m.Predict(vec(200, 1, features.SemanticsAtLeastOnce, 90*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if paced.ArrivalRate >= full.ArrivalRate {
		t.Errorf("arrival did not fall with δ: %v vs %v", paced.ArrivalRate, full.ArrivalRate)
	}
	if paced.Mu < full.Mu {
		t.Errorf("μ fell with δ: %v vs %v", paced.Mu, full.Mu)
	}
}

func TestBatchingAmortisesAckPacing(t *testing.T) {
	m, err := New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := vec(200, 1, features.SemanticsAtLeastOnce, 0)
	v1.DelayMs = 100
	v5 := v1
	v5.BatchSize = 5
	p1, err := m.Predict(v1)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := m.Predict(v5)
	if err != nil {
		t.Fatal(err)
	}
	if p5.ServiceRate <= p1.ServiceRate {
		t.Errorf("batching did not raise acked service rate: %v vs %v", p5.ServiceRate, p1.ServiceRate)
	}
}

func TestAtMostOnceIgnoresDelayPacing(t *testing.T) {
	m, err := New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	near := vec(200, 1, features.SemanticsAtMostOnce, 0)
	far := near
	far.DelayMs = 200
	pNear, err := m.Predict(near)
	if err != nil {
		t.Fatal(err)
	}
	pFar, err := m.Predict(far)
	if err != nil {
		t.Fatal(err)
	}
	if pNear.ServiceRate != pFar.ServiceRate {
		t.Errorf("fire-and-forget service rate depends on delay: %v vs %v",
			pNear.ServiceRate, pFar.ServiceRate)
	}
}

func TestRequestBytesGrowsWithBatch(t *testing.T) {
	small := RequestBytes(vec(200, 1, features.SemanticsAtLeastOnce, 0))
	big := RequestBytes(vec(200, 5, features.SemanticsAtLeastOnce, 0))
	if big <= small {
		t.Errorf("RequestBytes: B=5 %d <= B=1 %d", big, small)
	}
	if small <= 200 {
		t.Errorf("RequestBytes %d does not include overhead", small)
	}
}
