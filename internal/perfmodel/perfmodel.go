// Package perfmodel predicts the performance half of the paper's
// weighted KPI (Eq. 2): the bandwidth utilisation φ and the normalised
// service rate μ of a producer under good network conditions. It stands
// in for the queueing model of the authors' earlier work (Wu et al.,
// HPCC 2019, ref. [6]), which the paper imports rather than re-derives.
package perfmodel

import (
	"fmt"

	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
	"kafkarel/internal/wire"
)

// Model computes φ and μ from the same host calibration the testbed
// simulates, so predictions and measurements share one parameterisation.
type Model struct {
	cal testbed.Calibration
}

// New builds a model; a zero calibration takes the defaults.
func New(cal testbed.Calibration) (*Model, error) {
	if cal == (testbed.Calibration{}) {
		cal = testbed.DefaultCalibration()
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	return &Model{cal: cal}, nil
}

// perRequestOverheadBytes approximates frame + request + batch header
// bytes shared by all records in one produce request.
const perRequestOverheadBytes = 60

// perRecordOverheadBytes is the wire overhead per record.
const perRecordOverheadBytes = 20

// Prediction is the performance half of the KPI.
type Prediction struct {
	// Phi is the predicted bandwidth utilisation φ ∈ [0, 1].
	Phi float64
	// Mu is the normalised service rate μ ∈ [0, 1]: the producer's send
	// capacity relative to the offered load, capped at 1.
	Mu float64
	// ServiceRate is the unnormalised capacity in messages per second.
	ServiceRate float64
	// ArrivalRate is the offered load λ in messages per second.
	ArrivalRate float64
}

// Predict computes φ and μ for a feature vector under good network
// conditions (Sec. IV: "Both can be predicted for a given system
// deployment and configuration parameters").
func (m *Model) Predict(v features.Vector) (Prediction, error) {
	if err := v.Validate(); err != nil {
		return Prediction{}, fmt.Errorf("perfmodel: %w", err)
	}
	ioMeanSec := 1 / m.cal.FullLoadRate(v.MessageSize)
	arrival := 1 / (ioMeanSec + v.PollInterval.Seconds())

	// Send-path capacity: serialisation per record, request overhead
	// amortised over the batch, plus the ack round trip pinned by the
	// in-flight window (negligible on a good LAN, grows with D).
	serSec := ioMeanSec * m.cal.SerFactor
	rttSec := 2 * v.DelayMs / 1000
	perMsg := serSec + rttSec/float64(testbed.DefaultMaxInFlight*v.BatchSize)
	if v.Semantics == features.SemanticsAtMostOnce {
		perMsg = serSec // fire-and-forget is not paced by acknowledgements
	}
	service := 1 / perMsg

	bytesPerMsg := float64(v.MessageSize + perRecordOverheadBytes)
	bytesPerMsg += perRequestOverheadBytes / float64(v.BatchSize)
	throughput := min(arrival, service)
	phi := throughput * bytesPerMsg * 8 / m.cal.Bandwidth
	if phi > 1 {
		phi = 1
	}
	mu := service / arrival
	if mu > 1 {
		mu = 1
	}
	return Prediction{Phi: phi, Mu: mu, ServiceRate: service, ArrivalRate: arrival}, nil
}

// RequestBytes estimates the wire size of one produce request for the
// vector, used by examples and reports.
func RequestBytes(v features.Vector) int {
	r := wire.ProduceRequest{
		Topic: "stream",
		Batch: wire.RecordBatch{},
	}
	for i := 0; i < v.BatchSize; i++ {
		r.Batch.Records = append(r.Batch.Records, wire.Record{
			Payload: make([]byte, v.MessageSize),
		})
	}
	return wire.FrameSize(r.EncodedSize())
}
