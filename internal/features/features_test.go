package features

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sampleVector() Vector {
	return Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.19,
		Semantics:      SemanticsAtLeastOnce,
		BatchSize:      2,
		PollInterval:   90 * time.Millisecond,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := sampleVector()
	enc := v.Encode()
	if len(enc) != Dim {
		t.Fatalf("encode dim = %d, want %d", len(enc), Dim)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Errorf("round trip: got %+v, want %+v", got, v)
	}
	if _, err := Decode(enc[:3]); err == nil {
		t.Error("short decode accepted")
	}
}

func TestNamesMatchDim(t *testing.T) {
	if len(Names()) != Dim {
		t.Errorf("Names() has %d entries, Dim = %d", len(Names()), Dim)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleVector().Validate(); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	bad := []Vector{
		{},
		func() Vector { v := sampleVector(); v.MessageSize = 0; return v }(),
		func() Vector { v := sampleVector(); v.LossRate = 1.5; return v }(),
		func() Vector { v := sampleVector(); v.Semantics = 9; return v }(),
		func() Vector { v := sampleVector(); v.BatchSize = 0; return v }(),
		func() Vector { v := sampleVector(); v.MessageTimeout = 0; return v }(),
		func() Vector { v := sampleVector(); v.PollInterval = -1; return v }(),
		func() Vector { v := sampleVector(); v.DelayMs = -2; return v }(),
		func() Vector { v := sampleVector(); v.Timeliness = -1; return v }(),
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad vector %d accepted: %+v", i, v)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Dataset{
		{X: sampleVector(), Pl: 0.63, Pd: 0.01},
		{X: func() Vector { v := sampleVector(); v.MessageSize = 1000; return v }(), Pl: 0.004, Pd: 0},
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d samples", len(got))
	}
	for i := range ds {
		if got[i].X != ds[i].X || got[i].Pl != ds[i].Pl || got[i].Pd != ds[i].Pd {
			t.Errorf("sample %d: got %+v, want %+v", i, got[i], ds[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Error("wrong column count accepted")
	}
	var buf bytes.Buffer
	ds := Dataset{{X: sampleVector(), Pl: 0.1, Pd: 0}}
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.Replace(buf.Bytes(), []byte("0.19"), []byte("junk"), 1)
	if _, err := ReadCSV(bytes.NewBuffer(corrupted)); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestMatrices(t *testing.T) {
	ds := Dataset{{X: sampleVector(), Pl: 0.5, Pd: 0.1}}
	x, y := ds.Matrices()
	if len(x) != 1 || len(x[0]) != Dim {
		t.Errorf("x shape %dx%d", len(x), len(x[0]))
	}
	if len(y) != 1 || y[0][0] != 0.5 || y[0][1] != 0.1 {
		t.Errorf("y = %v", y)
	}
}

func TestSplit(t *testing.T) {
	ds := make(Dataset, 100)
	for i := range ds {
		v := sampleVector()
		v.MessageSize = i + 1
		ds[i] = Sample{X: v}
	}
	train, test, err := ds.Split(0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 20 || len(train) != 80 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	// No overlap, full coverage.
	seen := map[int]bool{}
	for _, s := range append(append(Dataset{}, train...), test...) {
		if seen[s.X.MessageSize] {
			t.Fatalf("duplicate sample %d across split", s.X.MessageSize)
		}
		seen[s.X.MessageSize] = true
	}
	if len(seen) != 100 {
		t.Errorf("coverage %d/100", len(seen))
	}
	// Deterministic.
	train2, _, err := ds.Split(0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train {
		if train[i].X != train2[i].X {
			t.Fatal("split not deterministic")
		}
	}
	if _, _, err := ds.Split(1.5, 1); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestNormalizer(t *testing.T) {
	x := [][]float64{
		{0, 10, 5},
		{10, 10, 15},
		{5, 10, 25},
	}
	n, err := FitNormalizer(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Apply([]float64{5, 10, 15})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0, 0.5} // middle column is constant → 0
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("dim %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Clamping.
	got, err = n.Apply([]float64{-100, 0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[2] != 1 {
		t.Errorf("clamped = %v", got)
	}
	if _, err := n.Apply([]float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := FitNormalizer(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := FitNormalizer([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestNormalizerApplyAll(t *testing.T) {
	x := [][]float64{{0}, {10}}
	n, err := FitNormalizer(x)
	if err != nil {
		t.Fatal(err)
	}
	all, err := n.ApplyAll(x)
	if err != nil {
		t.Fatal(err)
	}
	if all[0][0] != 0 || all[1][0] != 1 {
		t.Errorf("ApplyAll = %v", all)
	}
}

// Property: normalized values always lie in [0, 1].
func TestPropertyNormalizerRange(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if len(raw) < 2 {
			return true
		}
		// Real feature values are small; magnitudes where max-min itself
		// overflows float64 are out of scope.
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
		}
		if math.IsNaN(probe) || math.Abs(probe) > 1e100 {
			return true
		}
		x := make([][]float64, 0, len(raw))
		for _, v := range raw {
			x = append(x, []float64{v})
		}
		n, err := FitNormalizer(x)
		if err != nil {
			return false
		}
		got, err := n.Apply([]float64{probe})
		if err != nil {
			return false
		}
		return got[0] >= 0 && got[0] <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
