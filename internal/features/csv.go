package features

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVWriter writes a dataset incrementally: the header row up front,
// then one row per sample as it arrives. Long sweeps stream their
// results through it instead of buffering the whole dataset.
type CSVWriter struct {
	cw  *csv.Writer
	row []string
	n   int
}

// NewCSVWriter writes the header row and returns the row writer.
func NewCSVWriter(w io.Writer) (*CSVWriter, error) {
	cw := csv.NewWriter(w)
	header := append(Names(), "pl", "pd")
	if err := cw.Write(header); err != nil {
		return nil, fmt.Errorf("features: write header: %w", err)
	}
	return &CSVWriter{cw: cw, row: make([]string, 0, Dim+2)}, nil
}

// Write appends one sample row.
func (w *CSVWriter) Write(s Sample) error {
	w.row = w.row[:0]
	for _, v := range s.X.Encode() {
		w.row = append(w.row, strconv.FormatFloat(v, 'g', -1, 64))
	}
	w.row = append(w.row,
		strconv.FormatFloat(s.Pl, 'g', -1, 64),
		strconv.FormatFloat(s.Pd, 'g', -1, 64))
	if err := w.cw.Write(w.row); err != nil {
		return fmt.Errorf("features: write row %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Flush flushes buffered rows to the underlying writer; call it once
// after the last Write (it is cheap to call more often, e.g. to make
// partial output durable during a long sweep).
func (w *CSVWriter) Flush() error {
	w.cw.Flush()
	if err := w.cw.Error(); err != nil {
		return fmt.Errorf("features: flush: %w", err)
	}
	return nil
}

// WriteCSV writes the dataset with a header row: the encoded feature
// columns followed by the measured pl and pd.
func (d Dataset) WriteCSV(w io.Writer) error {
	cw, err := NewCSVWriter(w)
	if err != nil {
		return err
	}
	for _, s := range d {
		if err := cw.Write(s); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("features: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("features: empty csv")
	}
	if len(rows[0]) != Dim+2 {
		return nil, fmt.Errorf("features: header has %d columns, want %d", len(rows[0]), Dim+2)
	}
	out := make(Dataset, 0, len(rows)-1)
	for i, row := range rows[1:] {
		vals := make([]float64, 0, Dim+2)
		for c, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("features: row %d col %d: %w", i+1, c, err)
			}
			vals = append(vals, v)
		}
		vec, err := Decode(vals[:Dim])
		if err != nil {
			return nil, fmt.Errorf("features: row %d: %w", i+1, err)
		}
		out = append(out, Sample{X: vec, Pl: vals[Dim], Pd: vals[Dim+1]})
	}
	return out, nil
}
