package features

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row: the encoded feature
// columns followed by the measured pl and pd.
func (d Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(Names(), "pl", "pd")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("features: write header: %w", err)
	}
	row := make([]string, 0, Dim+2)
	for i, s := range d {
		row = row[:0]
		for _, v := range s.X.Encode() {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row,
			strconv.FormatFloat(s.Pl, 'g', -1, 64),
			strconv.FormatFloat(s.Pd, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("features: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("features: flush: %w", err)
	}
	return nil
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("features: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("features: empty csv")
	}
	if len(rows[0]) != Dim+2 {
		return nil, fmt.Errorf("features: header has %d columns, want %d", len(rows[0]), Dim+2)
	}
	out := make(Dataset, 0, len(rows)-1)
	for i, row := range rows[1:] {
		vals := make([]float64, 0, Dim+2)
		for c, cell := range row {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("features: row %d col %d: %w", i+1, c, err)
			}
			vals = append(vals, v)
		}
		vec, err := Decode(vals[:Dim])
		if err != nil {
			return nil, fmt.Errorf("features: row %d: %w", i+1, err)
		}
		out = append(out, Sample{X: vec, Pl: vals[Dim], Pd: vals[Dim+1]})
	}
	return out, nil
}
