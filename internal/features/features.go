// Package features defines the prediction model's input vector (the
// paper's Eq. 1: {P̂_l, P̂_d} = f(M, S, D, L, Confs)), dataset handling,
// min-max normalisation, and CSV persistence for training data.
package features

import (
	"fmt"
	"time"
)

// Semantics codes, mirroring producer.Semantics numerically so this
// package stays dependency-free for the ANN tooling.
const (
	SemanticsAtMostOnce  = 1
	SemanticsAtLeastOnce = 2
	SemanticsExactlyOnce = 3
)

// Vector is one point in feature space: the stream type (M, S), the
// network condition (D, L) and the configuration parameters (semantics,
// B, δ, T_o) — features (a) through (h) of Sec. III-D.
type Vector struct {
	// MessageSize is M in bytes.
	MessageSize int
	// Timeliness is S.
	Timeliness time.Duration
	// DelayMs is the one-way network delay D in milliseconds.
	DelayMs float64
	// LossRate is the packet loss rate L in [0, 1].
	LossRate float64
	// Semantics is one of the Semantics* codes.
	Semantics int
	// BatchSize is B in records.
	BatchSize int
	// PollInterval is δ.
	PollInterval time.Duration
	// MessageTimeout is T_o.
	MessageTimeout time.Duration
}

// Dim is the numeric dimensionality of an encoded Vector.
const Dim = 8

// Names lists the encoded dimensions in order.
func Names() []string {
	return []string{
		"message_size_bytes", "timeliness_ms", "delay_ms", "loss_rate",
		"semantics", "batch_size", "poll_interval_ms", "message_timeout_ms",
	}
}

// Encode renders the vector as ANN inputs (before normalisation).
func (v Vector) Encode() []float64 {
	return []float64{
		float64(v.MessageSize),
		float64(v.Timeliness) / float64(time.Millisecond),
		v.DelayMs,
		v.LossRate,
		float64(v.Semantics),
		float64(v.BatchSize),
		float64(v.PollInterval) / float64(time.Millisecond),
		float64(v.MessageTimeout) / float64(time.Millisecond),
	}
}

// Decode reconstructs a Vector from its encoding.
func Decode(x []float64) (Vector, error) {
	if len(x) != Dim {
		return Vector{}, fmt.Errorf("features: decode needs %d values, got %d", Dim, len(x))
	}
	return Vector{
		MessageSize:    int(x[0]),
		Timeliness:     time.Duration(x[1] * float64(time.Millisecond)),
		DelayMs:        x[2],
		LossRate:       x[3],
		Semantics:      int(x[4]),
		BatchSize:      int(x[5]),
		PollInterval:   time.Duration(x[6] * float64(time.Millisecond)),
		MessageTimeout: time.Duration(x[7] * float64(time.Millisecond)),
	}, nil
}

// Validate reports the first out-of-domain field.
func (v Vector) Validate() error {
	switch {
	case v.MessageSize <= 0:
		return fmt.Errorf("features: message size %d <= 0", v.MessageSize)
	case v.Timeliness < 0:
		return fmt.Errorf("features: negative timeliness")
	case v.DelayMs < 0:
		return fmt.Errorf("features: negative delay")
	case v.LossRate < 0 || v.LossRate > 1:
		return fmt.Errorf("features: loss rate %v outside [0,1]", v.LossRate)
	case v.Semantics < SemanticsAtMostOnce || v.Semantics > SemanticsExactlyOnce:
		return fmt.Errorf("features: unknown semantics %d", v.Semantics)
	case v.BatchSize <= 0:
		return fmt.Errorf("features: batch size %d <= 0", v.BatchSize)
	case v.PollInterval < 0:
		return fmt.Errorf("features: negative poll interval")
	case v.MessageTimeout <= 0:
		return fmt.Errorf("features: message timeout must be positive")
	default:
		return nil
	}
}

// Sample pairs a feature vector with its measured reliability metrics.
type Sample struct {
	X  Vector
	Pl float64
	Pd float64
}

// Dataset is a collection of training samples.
type Dataset []Sample

// Matrices encodes the dataset as ANN input and target matrices.
func (d Dataset) Matrices() (x [][]float64, y [][]float64) {
	x = make([][]float64, 0, len(d))
	y = make([][]float64, 0, len(d))
	for _, s := range d {
		x = append(x, s.X.Encode())
		y = append(y, []float64{s.Pl, s.Pd})
	}
	return x, y
}

// Split partitions the dataset deterministically into train and test
// parts with the given test fraction, shuffling by a simple LCG so the
// split is stable across runs with the same seed.
func (d Dataset) Split(testFrac float64, seed uint64) (train, test Dataset, err error) {
	if testFrac < 0 || testFrac > 1 {
		return nil, nil, fmt.Errorf("features: test fraction %v outside [0,1]", testFrac)
	}
	idx := make([]int, len(d))
	for i := range idx {
		idx[i] = i
	}
	state := seed*6364136223846793005 + 1442695040888963407
	for i := len(idx) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	nTest := int(float64(len(d)) * testFrac)
	test = make(Dataset, 0, nTest)
	train = make(Dataset, 0, len(d)-nTest)
	for i, id := range idx {
		if i < nTest {
			test = append(test, d[id])
		} else {
			train = append(train, d[id])
		}
	}
	return train, test, nil
}
