package features

import (
	"fmt"
	"math"
)

// Normalizer performs per-dimension min-max scaling to [0, 1], fitted on
// a training matrix. Degenerate dimensions (constant value) map to 0.
type Normalizer struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// FitNormalizer learns the per-dimension ranges of x.
func FitNormalizer(x [][]float64) (*Normalizer, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("features: fit on empty matrix")
	}
	dim := len(x[0])
	n := &Normalizer{
		Min: make([]float64, dim),
		Max: make([]float64, dim),
	}
	for j := 0; j < dim; j++ {
		n.Min[j] = math.Inf(1)
		n.Max[j] = math.Inf(-1)
	}
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("features: row %d has %d dims, want %d", i, len(row), dim)
		}
		for j, v := range row {
			if v < n.Min[j] {
				n.Min[j] = v
			}
			if v > n.Max[j] {
				n.Max[j] = v
			}
		}
	}
	return n, nil
}

// Dim returns the dimensionality the normalizer was fitted on.
func (n *Normalizer) Dim() int { return len(n.Min) }

// Apply scales one vector into [0, 1] per dimension. Out-of-range values
// are clamped, so predictions slightly outside the training grid stay
// well-behaved.
func (n *Normalizer) Apply(x []float64) ([]float64, error) {
	if len(x) != n.Dim() {
		return nil, fmt.Errorf("features: apply on %d dims, fitted %d", len(x), n.Dim())
	}
	out := make([]float64, len(x))
	for j, v := range x {
		span := n.Max[j] - n.Min[j]
		if span == 0 {
			out[j] = 0
			continue
		}
		s := (v - n.Min[j]) / span
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		out[j] = s
	}
	return out, nil
}

// ApplyAll scales a whole matrix.
func (n *Normalizer) ApplyAll(x [][]float64) ([][]float64, error) {
	out := make([][]float64, 0, len(x))
	for i, row := range x {
		s, err := n.Apply(row)
		if err != nil {
			return nil, fmt.Errorf("features: row %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}
