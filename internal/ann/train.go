package ann

import (
	"fmt"
	"math"
	"math/rand/v2"

	"kafkarel/internal/stats"
)

// TrainResult summarises a training run.
type TrainResult struct {
	Epochs    int
	FinalLoss float64 // mean squared error over the training set
	TrainMAE  float64
}

// TrainOption customises training.
type TrainOption func(*trainOpts)

type trainOpts struct {
	onEpoch   func(epoch int, loss float64)
	targetMAE float64
}

// WithEpochCallback invokes fn after every epoch with the epoch index and
// training MSE.
func WithEpochCallback(fn func(epoch int, loss float64)) TrainOption {
	return func(o *trainOpts) { o.onEpoch = fn }
}

// WithTargetMAE stops training early once the training MAE drops below
// the target (checked every 10 epochs).
func WithTargetMAE(mae float64) TrainOption {
	return func(o *trainOpts) { o.targetMAE = mae }
}

// Train fits the network to (x, y) with mini-batch SGD on MSE loss.
func (n *Network) Train(x, y [][]float64, opts ...TrainOption) (TrainResult, error) {
	if len(x) == 0 || len(x) != len(y) {
		return TrainResult{}, fmt.Errorf("ann: train with %d inputs, %d targets", len(x), len(y))
	}
	outDim := n.cfg.OutputDim()
	for i := range x {
		if len(x[i]) != n.cfg.InputDim {
			return TrainResult{}, fmt.Errorf("ann: sample %d has %d dims, want %d", i, len(x[i]), n.cfg.InputDim)
		}
		if len(y[i]) != outDim {
			return TrainResult{}, fmt.Errorf("ann: target %d has %d dims, want %d", i, len(y[i]), outDim)
		}
	}
	var o trainOpts
	for _, opt := range opts {
		opt(&o)
	}

	batch := n.cfg.BatchSize
	if batch <= 0 {
		batch = 1
	}
	if batch > len(x) {
		batch = len(x)
	}
	rng := rand.New(rand.NewPCG(n.cfg.Seed, 0x7a1b))
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}

	// Gradient accumulators, one per layer.
	gw := make([][]float64, len(n.layers))
	gb := make([][]float64, len(n.layers))
	for li, l := range n.layers {
		gw[li] = make([]float64, len(l.w))
		gb[li] = make([]float64, len(l.b))
	}
	gradOut := make([]float64, outDim)

	var res TrainResult
	lr := n.cfg.LearningRate
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lossSum := 0.0
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			for li := range gw {
				clear(gw[li])
				clear(gb[li])
			}
			for _, idx := range order[start:end] {
				pred := n.forwardInPlace(x[idx])
				for j := range gradOut {
					diff := pred[j] - y[idx][j]
					// d(MSE)/d(pred_j) with MSE averaged over outputs.
					gradOut[j] = 2 * diff / float64(outDim)
					lossSum += diff * diff / float64(outDim)
				}
				n.backward(gradOut, gw, gb)
			}
			n.applyGradients(gw, gb, end-start, lr)
		}
		loss := lossSum / float64(len(x))
		res.Epochs = epoch + 1
		res.FinalLoss = loss
		if o.onEpoch != nil {
			o.onEpoch(epoch, loss)
		}
		if n.cfg.LRDecay > 0 {
			lr *= 1 - n.cfg.LRDecay
		}
		if o.targetMAE > 0 && (epoch+1)%10 == 0 {
			mae, _, err := n.Evaluate(x, y)
			if err != nil {
				return res, err
			}
			if mae < o.targetMAE {
				break
			}
		}
	}
	mae, _, err := n.Evaluate(x, y)
	if err != nil {
		return res, err
	}
	res.TrainMAE = mae
	return res, nil
}

// forwardInPlace is Forward without the defensive copy, for training.
func (n *Network) forwardInPlace(x []float64) []float64 {
	cur := x
	for _, l := range n.layers {
		l.forward(cur)
		cur = l.output
	}
	return cur
}

func (n *Network) applyGradients(gw, gb [][]float64, count int, lr float64) {
	if n.cfg.Optimizer == OptimizerAdam {
		n.adamStep++
		n.applyAdam(gw, gb, count, lr)
		return
	}
	scale := lr / float64(count)
	mom := n.cfg.Momentum
	decay := 1 - lr*n.cfg.WeightDecay
	for li, l := range n.layers {
		for i := range l.w {
			l.vw[i] = mom*l.vw[i] - scale*gw[li][i]
			if decay < 1 {
				l.w[i] *= decay
			}
			l.w[i] += l.vw[i]
		}
		for i := range l.b {
			l.vb[i] = mom*l.vb[i] - scale*gb[li][i]
			l.b[i] += l.vb[i]
		}
	}
}

// Adam hyperparameters (Kingma & Ba defaults).
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (n *Network) applyAdam(gw, gb [][]float64, count int, lr float64) {
	inv := 1 / float64(count)
	c1 := 1 - math.Pow(adamBeta1, float64(n.adamStep))
	c2 := 1 - math.Pow(adamBeta2, float64(n.adamStep))
	decay := lr * n.cfg.WeightDecay
	for li, l := range n.layers {
		if l.sw == nil {
			l.sw = make([]float64, len(l.w))
			l.sb = make([]float64, len(l.b))
		}
		for i := range l.w {
			g := gw[li][i] * inv
			l.vw[i] = adamBeta1*l.vw[i] + (1-adamBeta1)*g
			l.sw[i] = adamBeta2*l.sw[i] + (1-adamBeta2)*g*g
			mhat := l.vw[i] / c1
			vhat := l.sw[i] / c2
			if decay > 0 {
				l.w[i] -= decay * l.w[i]
			}
			l.w[i] -= lr * mhat / (math.Sqrt(vhat) + adamEps)
		}
		for i := range l.b {
			g := gb[li][i] * inv
			l.vb[i] = adamBeta1*l.vb[i] + (1-adamBeta1)*g
			l.sb[i] = adamBeta2*l.sb[i] + (1-adamBeta2)*g*g
			l.b[i] -= lr * (l.vb[i] / c1) / (math.Sqrt(l.sb[i]/c2) + adamEps)
		}
	}
}

// Evaluate returns the MAE and RMSE of predictions over all outputs.
func (n *Network) Evaluate(x, y [][]float64) (mae, rmse float64, err error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, 0, fmt.Errorf("ann: evaluate with %d inputs, %d targets", len(x), len(y))
	}
	var pred, truth []float64
	for i := range x {
		p := n.forwardInPlace(x[i])
		pred = append(pred, p...)
		truth = append(truth, y[i]...)
	}
	mae, err = stats.MAE(pred, truth)
	if err != nil {
		return 0, 0, err
	}
	rmse, err = stats.RMSE(pred, truth)
	if err != nil {
		return 0, 0, err
	}
	if math.IsNaN(mae) || math.IsNaN(rmse) {
		return mae, rmse, fmt.Errorf("ann: evaluation produced NaN (diverged training?)")
	}
	return mae, rmse, nil
}
