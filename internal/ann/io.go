package ann

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelFile is the on-disk representation of a trained network.
type modelFile struct {
	Version int         `json:"version"`
	Config  Config      `json:"config"`
	Weights [][]float64 `json:"weights"` // per layer, row-major [out][in]
	Biases  [][]float64 `json:"biases"`
}

const modelVersion = 1

// Save writes the network (architecture + parameters) as JSON.
func (n *Network) Save(w io.Writer) error {
	mf := modelFile{Version: modelVersion, Config: n.cfg}
	for _, l := range n.layers {
		wCopy := make([]float64, len(l.w))
		copy(wCopy, l.w)
		bCopy := make([]float64, len(l.b))
		copy(bCopy, l.b)
		mf.Weights = append(mf.Weights, wCopy)
		mf.Biases = append(mf.Biases, bCopy)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(mf); err != nil {
		return fmt.Errorf("ann: save: %w", err)
	}
	return nil
}

// Load reads a network written by Save.
func Load(r io.Reader) (*Network, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("ann: load: %w", err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("ann: load: unsupported model version %d", mf.Version)
	}
	n, err := New(mf.Config)
	if err != nil {
		return nil, fmt.Errorf("ann: load: %w", err)
	}
	if len(mf.Weights) != len(n.layers) || len(mf.Biases) != len(n.layers) {
		return nil, fmt.Errorf("ann: load: %d weight blocks for %d layers", len(mf.Weights), len(n.layers))
	}
	for li, l := range n.layers {
		if len(mf.Weights[li]) != len(l.w) || len(mf.Biases[li]) != len(l.b) {
			return nil, fmt.Errorf("ann: load: layer %d shape mismatch", li)
		}
		copy(l.w, mf.Weights[li])
		copy(l.b, mf.Biases[li])
	}
	return n, nil
}
