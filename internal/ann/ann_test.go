package ann

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := CompactConfig(4, 2)
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := CompactConfig(4, 2)
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.InputDim = 0 }),
		mut(func(c *Config) { c.Layers = nil }),
		mut(func(c *Config) { c.LearningRate = 0 }),
		mut(func(c *Config) { c.Epochs = 0 }),
		mut(func(c *Config) { c.Momentum = 1 }),
		mut(func(c *Config) { c.Layers[0].Neurons = 0 }),
		mut(func(c *Config) { c.Layers[0].Activation = 99 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPaperConfigShape(t *testing.T) {
	c := PaperConfig(8, 2)
	if len(c.Layers) != 5 {
		t.Fatalf("layers = %d, want 5", len(c.Layers))
	}
	wantNeurons := []int{200, 200, 200, 64, 2}
	for i, l := range c.Layers {
		if l.Neurons != wantNeurons[i] {
			t.Errorf("layer %d neurons = %d, want %d", i, l.Neurons, wantNeurons[i])
		}
	}
	if c.LearningRate != 0.5 || c.Epochs != 1000 {
		t.Errorf("hyperparameters %v/%v, want 0.5/1000", c.LearningRate, c.Epochs)
	}
	if c.OutputDim() != 2 {
		t.Errorf("OutputDim = %d", c.OutputDim())
	}
}

func TestActivations(t *testing.T) {
	if got := Sigmoid.apply(0); got != 0.5 {
		t.Errorf("sigmoid(0) = %v", got)
	}
	if got := ReLU.apply(-3); got != 0 {
		t.Errorf("relu(-3) = %v", got)
	}
	if got := ReLU.apply(3); got != 3 {
		t.Errorf("relu(3) = %v", got)
	}
	if got := Tanh.apply(0); got != 0 {
		t.Errorf("tanh(0) = %v", got)
	}
	if got := Identity.apply(7); got != 7 {
		t.Errorf("identity(7) = %v", got)
	}
	// Derivative identities at characteristic points.
	if got := Sigmoid.derivative(0.5); got != 0.25 {
		t.Errorf("sigmoid'(v=0.5) = %v", got)
	}
	if got := Tanh.derivative(0); got != 1 {
		t.Errorf("tanh'(v=0) = %v", got)
	}
	if got := ReLU.derivative(0); got != 0 {
		t.Errorf("relu'(0) = %v", got)
	}
	for _, a := range []Activation{Sigmoid, Tanh, ReLU, Identity, 99} {
		if a.String() == "" {
			t.Error("empty activation name")
		}
	}
}

func TestForwardDimensions(t *testing.T) {
	n, err := New(CompactConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.Forward([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("output dim = %d", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Errorf("sigmoid output %v outside [0,1]", v)
		}
	}
	if _, err := n.Forward([]float64{1}); err == nil {
		t.Error("wrong input dim accepted")
	}
}

func TestDeterministicInitAndTraining(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {0}}
	train := func() []float64 {
		cfg := CompactConfig(2, 1)
		cfg.Epochs = 50
		cfg.Seed = 42
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(x, y); err != nil {
			t.Fatal(err)
		}
		out, err := n.Forward([]float64{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := train(), train()
	if a[0] != b[0] {
		t.Errorf("same seed diverged: %v vs %v", a[0], b[0])
	}
}

func TestLearnsXOR(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {0}}
	cfg := Config{
		InputDim: 2,
		Layers: []LayerSpec{
			{Neurons: 8, Activation: Tanh},
			{Neurons: 1, Activation: Sigmoid},
		},
		LearningRate: 0.5,
		Epochs:       2000,
		BatchSize:    4,
		Momentum:     0.9,
		Seed:         3,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainMAE > 0.1 {
		t.Fatalf("XOR not learned: MAE = %v (loss %v)", res.TrainMAE, res.FinalLoss)
	}
	for i := range x {
		out, err := n.Forward(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[0]-y[i][0]) > 0.3 {
			t.Errorf("xor(%v) = %v, want %v", x[i], out[0], y[i][0])
		}
	}
}

func TestLearnsSmoothSurface(t *testing.T) {
	// A smooth 2-in 2-out target resembling (Pl, Pd) response surfaces.
	target := func(a, b float64) (float64, float64) {
		return 0.5 * (1 + math.Tanh(3*(a-b))) / 2 * 1.6, 0.2 * a * b
	}
	rng := rand.New(rand.NewPCG(5, 0))
	var x, y [][]float64
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		p, q := target(a, b)
		x = append(x, []float64{a, b})
		y = append(y, []float64{p, q})
	}
	cfg := CompactConfig(2, 2)
	cfg.Seed = 6
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(x, y, WithTargetMAE(0.015))
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainMAE > 0.02 {
		t.Fatalf("train MAE = %v, want < 0.02 (the paper's bar)", res.TrainMAE)
	}
	// Held-out points.
	var tx, ty [][]float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64(), rng.Float64()
		p, q := target(a, b)
		tx = append(tx, []float64{a, b})
		ty = append(ty, []float64{p, q})
	}
	mae, rmse, err := n.Evaluate(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.03 {
		t.Errorf("test MAE = %v (rmse %v)", mae, rmse)
	}
}

func TestEarlyStopTarget(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := [][]float64{{0}, {1}}
	cfg := CompactConfig(1, 1)
	cfg.Epochs = 5000
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(x, y, WithTargetMAE(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 5000 {
		t.Errorf("early stop never triggered (epochs = %d)", res.Epochs)
	}
}

func TestEpochCallback(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := [][]float64{{0}, {1}}
	cfg := CompactConfig(1, 1)
	cfg.Epochs = 7
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var losses []float64
	if _, err := n.Train(x, y, WithEpochCallback(func(e int, loss float64) {
		count++
		losses = append(losses, loss)
	})); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Errorf("callback ran %d times, want 7", count)
	}
	if losses[len(losses)-1] > losses[0] {
		t.Errorf("loss rose: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestTrainValidation(t *testing.T) {
	n, err := New(CompactConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := n.Train([][]float64{{1, 2}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := n.Train([][]float64{{1}}, [][]float64{{1}}); err == nil {
		t.Error("wrong input dim accepted")
	}
	if _, err := n.Train([][]float64{{1, 2}}, [][]float64{{1, 2}}); err == nil {
		t.Error("wrong target dim accepted")
	}
	if _, _, err := n.Evaluate(nil, nil); err == nil {
		t.Error("empty evaluation accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {1}}
	cfg := CompactConfig(2, 1)
	cfg.Epochs = 100
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range x {
		a, err := n.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if a[0] != b[0] {
			t.Errorf("loaded model differs on %v: %v vs %v", in, a[0], b[0])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	// Valid JSON, inconsistent shapes.
	if _, err := Load(bytes.NewBufferString(
		`{"version":1,"config":{"input_dim":2,"layers":[{"neurons":1,"activation":1}],"learning_rate":0.1,"epochs":1},"weights":[],"biases":[]}`)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// Property: gradient of the loss matches a numerical finite-difference
// estimate (the canonical backprop correctness check).
func TestPropertyGradientCheck(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		cfg := Config{
			InputDim: 3,
			Layers: []LayerSpec{
				{Neurons: 4, Activation: Tanh},
				{Neurons: 2, Activation: Sigmoid},
			},
			LearningRate: 0.1,
			Epochs:       1,
			Seed:         seed,
		}
		n, err := New(cfg)
		if err != nil {
			return false
		}
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := []float64{rng.Float64(), rng.Float64()}

		loss := func() float64 {
			out := n.forwardInPlace(x)
			s := 0.0
			for j := range out {
				d := out[j] - y[j]
				s += d * d / float64(len(out))
			}
			return s
		}

		// Analytic gradients.
		gw := make([][]float64, len(n.layers))
		gb := make([][]float64, len(n.layers))
		for li, l := range n.layers {
			gw[li] = make([]float64, len(l.w))
			gb[li] = make([]float64, len(l.b))
		}
		out := n.forwardInPlace(x)
		gradOut := make([]float64, len(out))
		for j := range out {
			gradOut[j] = 2 * (out[j] - y[j]) / float64(len(out))
		}
		n.backward(gradOut, gw, gb)

		// Numerical check on a few random weights.
		const eps = 1e-6
		for trial := 0; trial < 6; trial++ {
			li := rng.IntN(len(n.layers))
			l := n.layers[li]
			wi := rng.IntN(len(l.w))
			orig := l.w[wi]
			l.w[wi] = orig + eps
			up := loss()
			l.w[wi] = orig - eps
			down := loss()
			l.w[wi] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-gw[li][wi]) > 1e-4*(1+math.Abs(numeric)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: sigmoid-output networks always predict inside [0, 1],
// whatever the weights have become — the paper's no-negative-probability
// guarantee.
func TestPropertyOutputsBounded(t *testing.T) {
	f := func(seed uint64, raw []float64) bool {
		cfg := CompactConfig(3, 2)
		cfg.Seed = seed
		n, err := New(cfg)
		if err != nil {
			return false
		}
		x := make([]float64, 3)
		for i := 0; i < 3 && i < len(raw); i++ {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
			x[i] = math.Mod(raw[i], 1000)
		}
		out, err := n.Forward(x)
		if err != nil {
			return false
		}
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForwardPaperNet(b *testing.B) {
	n, err := New(PaperConfig(8, 2))
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochCompact(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	var x, y [][]float64
	for i := 0; i < 100; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		y = append(y, []float64{rng.Float64()})
	}
	cfg := CompactConfig(2, 1)
	cfg.Epochs = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		n, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.Train(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {1}}
	norm := func(n *Network) float64 {
		total := 0.0
		for _, l := range n.layers {
			for _, w := range l.w {
				total += w * w
			}
		}
		return total
	}
	train := func(decay float64) float64 {
		cfg := CompactConfig(2, 1)
		cfg.Epochs = 200
		cfg.Seed = 8
		cfg.WeightDecay = decay
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(x, y); err != nil {
			t.Fatal(err)
		}
		return norm(n)
	}
	plain := train(0)
	reg := train(0.01)
	if reg >= plain {
		t.Errorf("weight decay did not shrink weights: %v vs %v", reg, plain)
	}
}

func TestLRDecayStillLearns(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}}
	y := [][]float64{{0}, {0.5}, {1}}
	cfg := CompactConfig(1, 1)
	cfg.Epochs = 500
	cfg.LRDecay = 0.005
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainMAE > 0.05 {
		t.Errorf("MAE with lr decay = %v", res.TrainMAE)
	}
}

func TestNewHyperparameterValidation(t *testing.T) {
	cfg := CompactConfig(1, 1)
	cfg.WeightDecay = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative weight decay accepted")
	}
	cfg = CompactConfig(1, 1)
	cfg.LRDecay = 1
	if err := cfg.Validate(); err == nil {
		t.Error("lr decay of 1 accepted")
	}
}

func TestAdamLearnsXORFaster(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := [][]float64{{0}, {1}, {1}, {0}}
	mk := func(opt Optimizer, lr float64) float64 {
		cfg := Config{
			InputDim: 2,
			Layers: []LayerSpec{
				{Neurons: 8, Activation: Tanh},
				{Neurons: 1, Activation: Sigmoid},
			},
			LearningRate: lr,
			Epochs:       300,
			BatchSize:    4,
			Optimizer:    opt,
			Seed:         4,
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Train(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainMAE
	}
	adam := mk(OptimizerAdam, 0.02)
	sgd := mk(OptimizerSGD, 0.02)
	if adam > 0.1 {
		t.Errorf("Adam did not learn XOR in 300 epochs: MAE = %v", adam)
	}
	if adam >= sgd {
		t.Errorf("Adam (%v) not faster than plain low-lr SGD (%v) at equal epochs", adam, sgd)
	}
}

func TestOptimizerValidationAndString(t *testing.T) {
	cfg := CompactConfig(1, 1)
	cfg.Optimizer = 99
	if err := cfg.Validate(); err == nil {
		t.Error("unknown optimizer accepted")
	}
	if OptimizerSGD.String() != "sgd" || OptimizerAdam.String() != "adam" {
		t.Error("optimizer names wrong")
	}
	if Optimizer(99).String() == "" {
		t.Error("empty name for unknown optimizer")
	}
}
