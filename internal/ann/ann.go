// Package ann implements the paper's prediction model: a from-scratch
// feed-forward artificial neural network trained with stochastic
// gradient descent on mean-squared error. The paper's architecture
// (Sec. III-G) is four hidden layers of 200/200/200/64 neurons, learning
// rate 0.5, 1000 epochs, with sigmoid outputs that keep the predicted
// probabilities P̂_l, P̂_d inside [0, 1] (avoiding the negative-output
// corner cases the paper mentions).
package ann

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Sigmoid Activation = iota + 1
	Tanh
	ReLU
	Identity
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	case Identity:
		return "identity"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

func (a Activation) apply(z float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-z))
	case Tanh:
		return math.Tanh(z)
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	default:
		return z
	}
}

// derivative in terms of the activation output v.
func (a Activation) derivative(v float64) float64 {
	switch a {
	case Sigmoid:
		return v * (1 - v)
	case Tanh:
		return 1 - v*v
	case ReLU:
		if v > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// LayerSpec describes one layer.
type LayerSpec struct {
	Neurons    int        `json:"neurons"`
	Activation Activation `json:"activation"`
}

// Optimizer selects the parameter-update rule.
type Optimizer int

// Optimizers. SGD (with optional momentum) is the paper's choice
// (Sec. III-G); Adam is provided as a modern alternative that converges
// in far fewer epochs on the same data.
const (
	OptimizerSGD Optimizer = iota // zero value: the paper's optimizer
	OptimizerAdam
)

// String implements fmt.Stringer.
func (o Optimizer) String() string {
	switch o {
	case OptimizerSGD:
		return "sgd"
	case OptimizerAdam:
		return "adam"
	default:
		return fmt.Sprintf("optimizer(%d)", int(o))
	}
}

// Config describes a network and its training hyperparameters.
type Config struct {
	// InputDim is the number of input features.
	InputDim int `json:"input_dim"`
	// Layers lists hidden layers and the output layer (last entry).
	Layers []LayerSpec `json:"layers"`
	// LearningRate is the SGD step size (paper: 0.5).
	LearningRate float64 `json:"learning_rate"`
	// Epochs is the number of passes over the training set (paper: 1000).
	Epochs int `json:"epochs"`
	// BatchSize is the mini-batch size; 1 is plain SGD.
	BatchSize int `json:"batch_size"`
	// Momentum is the classical momentum coefficient (0 disables it).
	Momentum float64 `json:"momentum"`
	// WeightDecay is the L2 regularisation coefficient applied to weights
	// (not biases) at each update; 0 disables it.
	WeightDecay float64 `json:"weight_decay"`
	// LRDecay geometrically decays the learning rate: after each epoch
	// the rate is multiplied by (1 - LRDecay); 0 keeps it constant.
	LRDecay float64 `json:"lr_decay"`
	// Optimizer selects SGD (default, the paper's choice) or Adam.
	Optimizer Optimizer `json:"optimizer"`
	// Seed fixes weight initialisation and shuffling.
	Seed uint64 `json:"seed"`
}

// PaperConfig returns the architecture of Sec. III-G for the given input
// and output dimensionality: hidden layers 200/200/200/64, sigmoid
// throughout, learning rate 0.5, 1000 epochs.
func PaperConfig(inputDim, outputDim int) Config {
	return Config{
		InputDim: inputDim,
		Layers: []LayerSpec{
			{Neurons: 200, Activation: Sigmoid},
			{Neurons: 200, Activation: Sigmoid},
			{Neurons: 200, Activation: Sigmoid},
			{Neurons: 64, Activation: Sigmoid},
			{Neurons: outputDim, Activation: Sigmoid},
		},
		LearningRate: 0.5,
		Epochs:       1000,
		BatchSize:    1,
	}
}

// CompactConfig returns a smaller network that trains fast while keeping
// MAE well under the paper's 0.02 bar on our training grids; used by
// tests and the quickstart example.
func CompactConfig(inputDim, outputDim int) Config {
	return Config{
		InputDim: inputDim,
		Layers: []LayerSpec{
			{Neurons: 32, Activation: Tanh},
			{Neurons: 16, Activation: Tanh},
			{Neurons: outputDim, Activation: Sigmoid},
		},
		LearningRate: 0.1,
		Epochs:       400,
		BatchSize:    4,
		Momentum:     0.9,
	}
}

// Validate reports the first invalid hyperparameter.
func (c Config) Validate() error {
	switch {
	case c.InputDim <= 0:
		return fmt.Errorf("ann: input dimension %d <= 0", c.InputDim)
	case len(c.Layers) == 0:
		return errors.New("ann: no layers")
	case c.LearningRate <= 0:
		return fmt.Errorf("ann: learning rate %v <= 0", c.LearningRate)
	case c.Epochs <= 0:
		return fmt.Errorf("ann: epochs %d <= 0", c.Epochs)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("ann: momentum %v outside [0,1)", c.Momentum)
	case c.WeightDecay < 0:
		return fmt.Errorf("ann: negative weight decay")
	case c.LRDecay < 0 || c.LRDecay >= 1:
		return fmt.Errorf("ann: lr decay %v outside [0,1)", c.LRDecay)
	case c.Optimizer != OptimizerSGD && c.Optimizer != OptimizerAdam:
		return fmt.Errorf("ann: unknown optimizer %d", c.Optimizer)
	}
	for i, l := range c.Layers {
		if l.Neurons <= 0 {
			return fmt.Errorf("ann: layer %d has %d neurons", i, l.Neurons)
		}
		if l.Activation < Sigmoid || l.Activation > Identity {
			return fmt.Errorf("ann: layer %d has unknown activation %d", i, l.Activation)
		}
	}
	return nil
}

// OutputDim returns the network's output dimensionality.
func (c Config) OutputDim() int {
	if len(c.Layers) == 0 {
		return 0
	}
	return c.Layers[len(c.Layers)-1].Neurons
}

// dense is one fully connected layer.
type dense struct {
	in, out int
	act     Activation
	// w is row-major [out][in]; b has one bias per output neuron.
	w, b []float64
	// Momentum buffers (SGD) / first-moment estimates (Adam).
	vw, vb []float64
	// Second-moment estimates (Adam only; allocated lazily).
	sw, sb []float64
	// Forward caches (per-sample training only touches these serially).
	input, output []float64
	// delta is dLoss/dZ for backprop.
	delta []float64
}

// Network is a feed-forward ANN. Not safe for concurrent use.
type Network struct {
	cfg      Config
	layers   []*dense
	adamStep uint64
}

// New builds a network with Xavier-uniform initial weights drawn from the
// configured seed.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5eed))
	n := &Network{cfg: cfg}
	in := cfg.InputDim
	for _, spec := range cfg.Layers {
		l := &dense{
			in:     in,
			out:    spec.Neurons,
			act:    spec.Activation,
			w:      make([]float64, spec.Neurons*in),
			b:      make([]float64, spec.Neurons),
			vw:     make([]float64, spec.Neurons*in),
			vb:     make([]float64, spec.Neurons),
			output: make([]float64, spec.Neurons),
			delta:  make([]float64, spec.Neurons),
		}
		// Xavier-uniform: U(±sqrt(6/(fan_in+fan_out))).
		limit := math.Sqrt(6 / float64(in+spec.Neurons))
		for i := range l.w {
			l.w[i] = (2*rng.Float64() - 1) * limit
		}
		n.layers = append(n.layers, l)
		in = spec.Neurons
	}
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Forward runs inference; the returned slice is owned by the caller.
func (n *Network) Forward(x []float64) ([]float64, error) {
	if len(x) != n.cfg.InputDim {
		return nil, fmt.Errorf("ann: input has %d dims, want %d", len(x), n.cfg.InputDim)
	}
	cur := x
	for _, l := range n.layers {
		l.forward(cur)
		cur = l.output
	}
	out := make([]float64, len(cur))
	copy(out, cur)
	return out, nil
}

func (l *dense) forward(x []float64) {
	l.input = x
	for o := 0; o < l.out; o++ {
		z := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, v := range x {
			z += row[i] * v
		}
		l.output[o] = l.act.apply(z)
	}
}

// backward propagates the output-layer error gradient dLoss/dA and
// accumulates parameter gradients into gw/gb.
func (n *Network) backward(gradOut []float64, gw, gb [][]float64) {
	last := len(n.layers) - 1
	for li := last; li >= 0; li-- {
		l := n.layers[li]
		if li == last {
			for o := 0; o < l.out; o++ {
				l.delta[o] = gradOut[o] * l.act.derivative(l.output[o])
			}
		} else {
			next := n.layers[li+1]
			for o := 0; o < l.out; o++ {
				sum := 0.0
				for k := 0; k < next.out; k++ {
					sum += next.w[k*next.in+o] * next.delta[k]
				}
				l.delta[o] = sum * l.act.derivative(l.output[o])
			}
		}
		for o := 0; o < l.out; o++ {
			d := l.delta[o]
			gb[li][o] += d
			grow := gw[li][o*l.in : (o+1)*l.in]
			for i, v := range l.input {
				grow[i] += d * v
			}
		}
	}
}
