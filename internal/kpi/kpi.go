// Package kpi implements the paper's weighted key performance indicator
// (Eq. 2):
//
//	γ = ω1·φ + ω2·μ + ω3·(1 − P_l) + ω4·(1 − P_d),  Σωᵢ = 1,
//
// combining the performance predictions (bandwidth utilisation φ and
// normalised service rate μ, from internal/perfmodel) with the predicted
// reliability metrics (from internal/core). Maximising γ — or reaching a
// user-defined requirement — is the configuration-selection criterion.
package kpi

import (
	"fmt"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
	"kafkarel/internal/perfmodel"
)

// Weights are ω1..ω4 for φ, μ, (1-P_l) and (1-P_d).
type Weights [4]float64

// DefaultWeights returns the paper's empirical defaults
// (0.3, 0.3, 0.3, 0.1): duplicates weigh least because most applications
// tolerate them via idempotent processing.
func DefaultWeights() Weights { return Weights{0.3, 0.3, 0.3, 0.1} }

// Validate checks non-negativity and unit sum (±0.1% slack).
func (w Weights) Validate() error {
	sum := 0.0
	for i, v := range w {
		if v < 0 {
			return fmt.Errorf("kpi: weight ω%d = %v is negative", i+1, v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("kpi: weights sum to %v, want 1", sum)
	}
	return nil
}

// Gamma computes Eq. 2 for already-known component values.
func Gamma(phi, mu, pl, pd float64, w Weights) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	for name, v := range map[string]float64{"phi": phi, "mu": mu, "pl": pl, "pd": pd} {
		if v < 0 || v > 1 {
			return 0, fmt.Errorf("kpi: %s = %v outside [0,1]", name, v)
		}
	}
	return w[0]*phi + w[1]*mu + w[2]*(1-pl) + w[3]*(1-pd), nil
}

// Breakdown is a scored configuration with its components, for reports
// and for the dynamic-configuration search.
type Breakdown struct {
	Gamma float64
	Phi   float64
	Mu    float64
	Pl    float64
	Pd    float64
}

// Evaluator scores feature vectors by combining the reliability
// predictor with the performance model.
type Evaluator struct {
	predictor *core.Predictor
	perf      *perfmodel.Model
	weights   Weights
}

// NewEvaluator wires the two models with the given weights.
func NewEvaluator(p *core.Predictor, perf *perfmodel.Model, w Weights) (*Evaluator, error) {
	if p == nil || perf == nil {
		return nil, fmt.Errorf("kpi: nil predictor or performance model")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{predictor: p, perf: perf, weights: w}, nil
}

// Weights returns the evaluator's weights.
func (e *Evaluator) Weights() Weights { return e.weights }

// SetWeights swaps the application-specific weights (Table II).
func (e *Evaluator) SetWeights(w Weights) error {
	if err := w.Validate(); err != nil {
		return err
	}
	e.weights = w
	return nil
}

// Score computes γ and its components for a feature vector.
func (e *Evaluator) Score(v features.Vector) (Breakdown, error) {
	rel, err := e.predictor.Predict(v)
	if err != nil {
		return Breakdown{}, err
	}
	perf, err := e.perf.Predict(v)
	if err != nil {
		return Breakdown{}, err
	}
	g, err := Gamma(perf.Phi, perf.Mu, rel.Pl, rel.Pd, e.weights)
	if err != nil {
		return Breakdown{}, err
	}
	return Breakdown{Gamma: g, Phi: perf.Phi, Mu: perf.Mu, Pl: rel.Pl, Pd: rel.Pd}, nil
}
