package kpi

import (
	"math"
	"testing"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
	"kafkarel/internal/perfmodel"
	"kafkarel/internal/testbed"
)

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Errorf("default weights invalid: %v", err)
	}
	if err := (Weights{0.4, 0.3, 0.2, 0.1}).Validate(); err != nil {
		t.Errorf("table-II weights invalid: %v", err)
	}
	if err := (Weights{0.5, 0.5, 0.5, 0.5}).Validate(); err == nil {
		t.Error("non-unit sum accepted")
	}
	if err := (Weights{-0.1, 0.5, 0.5, 0.1}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestGammaKnownValues(t *testing.T) {
	// Perfect system: γ = 1 regardless of weights.
	g, err := Gamma(1, 1, 0, 0, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1) > 1e-12 {
		t.Errorf("γ = %v, want 1", g)
	}
	// Worst system: γ = 0.
	g, err = Gamma(0, 0, 1, 1, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Errorf("γ = %v, want 0", g)
	}
	// Hand-computed mid point.
	g, err = Gamma(0.5, 0.8, 0.1, 0.02, Weights{0.3, 0.3, 0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3*0.5 + 0.3*0.8 + 0.3*0.9 + 0.1*0.98
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("γ = %v, want %v", g, want)
	}
}

func TestGammaValidation(t *testing.T) {
	if _, err := Gamma(2, 0, 0, 0, DefaultWeights()); err == nil {
		t.Error("phi > 1 accepted")
	}
	if _, err := Gamma(0, 0, -0.1, 0, DefaultWeights()); err == nil {
		t.Error("negative pl accepted")
	}
	if _, err := Gamma(0, 0, 0, 0, Weights{1, 1, 1, 1}); err == nil {
		t.Error("bad weights accepted")
	}
}

func TestGammaRewardsReliability(t *testing.T) {
	w := Weights{0.1, 0.1, 0.7, 0.1} // web-logs profile: completeness first
	lossy, err := Gamma(0.9, 0.9, 0.5, 0, w)
	if err != nil {
		t.Fatal(err)
	}
	reliable, err := Gamma(0.3, 0.3, 0.01, 0, w)
	if err != nil {
		t.Fatal(err)
	}
	if reliable <= lossy {
		t.Errorf("completeness weights prefer the lossy config: %v vs %v", reliable, lossy)
	}
}

func trainedEvaluator(t *testing.T, w Weights) *Evaluator {
	t.Helper()
	var ds features.Dataset
	for _, l := range []float64{0, 0.1, 0.2, 0.3} {
		for _, b := range []int{1, 2, 5} {
			v := features.Vector{
				MessageSize:    200,
				Timeliness:     5 * time.Second,
				LossRate:       l,
				Semantics:      features.SemanticsAtLeastOnce,
				BatchSize:      b,
				MessageTimeout: time.Second,
			}
			ds = append(ds, features.Sample{X: v, Pl: l * 2 / float64(b), Pd: 0.01 * l})
		}
	}
	pred, _, err := core.Train(ds, core.TrainConfig{Seed: 2, EpochOverride: 200})
	if err != nil {
		t.Fatal(err)
	}
	perf, err := perfmodel.New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(pred, perf, w)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestEvaluatorScore(t *testing.T) {
	ev := trainedEvaluator(t, DefaultWeights())
	v := features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		LossRate:       0.1,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      2,
		MessageTimeout: time.Second,
	}
	b, err := ev.Score(v)
	if err != nil {
		t.Fatal(err)
	}
	if b.Gamma <= 0 || b.Gamma > 1 {
		t.Errorf("γ = %v", b.Gamma)
	}
	// Reliability-driven ordering: lower loss rate must score higher
	// under completeness-heavy weights.
	if err := ev.SetWeights(Weights{0.05, 0.05, 0.85, 0.05}); err != nil {
		t.Fatal(err)
	}
	clean := v
	clean.LossRate = 0
	bClean, err := ev.Score(clean)
	if err != nil {
		t.Fatal(err)
	}
	dirty := v
	dirty.LossRate = 0.3
	bDirty, err := ev.Score(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if bClean.Gamma <= bDirty.Gamma {
		t.Errorf("γ(clean) = %v <= γ(lossy) = %v", bClean.Gamma, bDirty.Gamma)
	}
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil, nil, DefaultWeights()); err == nil {
		t.Error("nil models accepted")
	}
	ev := trainedEvaluator(t, DefaultWeights())
	if err := ev.SetWeights(Weights{2, 0, 0, 0}); err == nil {
		t.Error("bad weights accepted")
	}
	if got := ev.Weights(); got != DefaultWeights() {
		t.Errorf("weights mutated by failed SetWeights: %v", got)
	}
	if _, err := ev.Score(features.Vector{}); err == nil {
		t.Error("invalid vector accepted")
	}
	// Unknown semantics surfaces the predictor error.
	v := features.Vector{
		MessageSize: 100, Semantics: features.SemanticsExactlyOnce,
		BatchSize: 1, MessageTimeout: time.Second,
	}
	if _, err := ev.Score(v); err == nil {
		t.Error("unmodelled semantics accepted")
	}
}
