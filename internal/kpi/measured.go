package kpi

import (
	"fmt"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/perfmodel"
	"kafkarel/internal/testbed"
)

// Measured computes the KPI components from a run's observability
// snapshot — no model, no reconciliation, just what the counters and
// spans recorded:
//
//   - φ: payload bytes the network delivered over the link capacity for
//     the run duration (same definition the performance model predicts).
//   - μ: delivered over offered records. Over a whole run the rate
//     denominators cancel, so min(1, delivered/offered) is exactly
//     min(1, service/arrival) measured at run granularity.
//   - P_l: records the producer resolved as lost over offered.
//   - P_d: duplicate log appends per replica copy over offered — the
//     broker-side count of records a dedup-free consumer would see
//     twice. Every replica counts its own append of a duplicate batch,
//     so the raw counter is divided by the replication-factor gauge to
//     get per-copy duplicates. (Reconciliation refines this into
//     Table I case 5; the measured KPI deliberately sticks to pure obs
//     counters.)
//
// A run that offered nothing scores μ=1, P_l=P_d=0.
func Measured(m testbed.MetricsSnapshot, duration time.Duration, cal testbed.Calibration, w Weights) (Breakdown, error) {
	if cal == (testbed.Calibration{}) {
		cal = testbed.DefaultCalibration()
	}
	if err := cal.Validate(); err != nil {
		return Breakdown{}, fmt.Errorf("kpi: %w", err)
	}
	phi := 0.0
	if sec := duration.Seconds(); sec > 0 {
		phi = float64(m.NetBytesDelivered) * 8 / (cal.Bandwidth * sec)
		if phi > 1 {
			phi = 1
		}
	}
	mu, pl, pd := 1.0, 0.0, 0.0
	if offered := float64(m.RecordsEnqueued); offered > 0 {
		mu = float64(m.RecordsDelivered) / offered
		if mu > 1 {
			mu = 1
		}
		pl = float64(m.RecordsLost) / offered
		if pl > 1 {
			pl = 1
		}
		rf := float64(m.ReplicationFactor)
		if rf < 1 {
			rf = 1
		}
		pd = float64(m.BrokerDupAppends) / rf / offered
		if pd > 1 {
			pd = 1
		}
	}
	g, err := Gamma(phi, mu, pl, pd, w)
	if err != nil {
		return Breakdown{}, err
	}
	return Breakdown{Gamma: g, Phi: phi, Mu: mu, Pl: pl, Pd: pd}, nil
}

// Predict computes the predicted breakdown from the performance model
// alone, with the untrained-predictor prior P_l = P_d = 0 (a perfect
// network is the model's baseline; a trained core.Predictor via
// Evaluator.Evaluate refines the reliability half). This is the
// predicted side reports use when no trained predictor is at hand.
func Predict(v features.Vector, cal testbed.Calibration, w Weights) (Breakdown, error) {
	perf, err := perfmodel.New(cal)
	if err != nil {
		return Breakdown{}, err
	}
	p, err := perf.Predict(v)
	if err != nil {
		return Breakdown{}, err
	}
	g, err := Gamma(p.Phi, p.Mu, 0, 0, w)
	if err != nil {
		return Breakdown{}, err
	}
	return Breakdown{Gamma: g, Phi: p.Phi, Mu: p.Mu}, nil
}

// CompareRun builds the predicted-vs-measured comparison for one run:
// Predict on the vector, Measured on the snapshot, same weights.
func CompareRun(v features.Vector, m testbed.MetricsSnapshot, duration time.Duration, cal testbed.Calibration, w Weights) (testbed.GammaComparison, error) {
	pred, err := Predict(v, cal, w)
	if err != nil {
		return testbed.GammaComparison{}, err
	}
	meas, err := Measured(m, duration, cal, w)
	if err != nil {
		return testbed.GammaComparison{}, err
	}
	return Compare(pred, meas), nil
}

// Compare pairs a predicted and a measured breakdown as a
// testbed.GammaComparison for reports and scorecards.
func Compare(predicted, measured Breakdown) testbed.GammaComparison {
	return testbed.GammaComparison{
		Predicted: breakdownGamma(predicted),
		Measured:  breakdownGamma(measured),
	}
}

// Evaluate scores the vector with the evaluator (predicted side) and
// the snapshot with Measured (measured side, same weights), returning
// the comparison the run report and fleet scorecard render.
func (e *Evaluator) Evaluate(v features.Vector, m testbed.MetricsSnapshot, duration time.Duration, cal testbed.Calibration) (testbed.GammaComparison, error) {
	pred, err := e.Score(v)
	if err != nil {
		return testbed.GammaComparison{}, err
	}
	meas, err := Measured(m, duration, cal, e.weights)
	if err != nil {
		return testbed.GammaComparison{}, err
	}
	return Compare(pred, meas), nil
}

func breakdownGamma(b Breakdown) testbed.GammaBreakdown {
	return testbed.GammaBreakdown{Gamma: b.Gamma, Phi: b.Phi, Mu: b.Mu, Pl: b.Pl, Pd: b.Pd}
}
