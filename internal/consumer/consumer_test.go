package consumer

import (
	"testing"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

func seededCluster(t *testing.T, keys []uint64) *cluster.Cluster {
	t.Helper()
	sim := des.New()
	c, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 1); err != nil {
		t.Fatal(err)
	}
	recs := make([]wire.Record, 0, len(keys))
	for _, k := range keys {
		recs = append(recs, wire.Record{Key: k})
	}
	c.Leader("t", 0).Log("t", 0).Append(recs)
	return c
}

func TestConsumeAll(t *testing.T) {
	c := seededCluster(t, []uint64{1, 2, 3, 4, 5})
	cons, err := New(c, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cons.ConsumeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Key != 1 || got[4].Key != 5 {
		t.Errorf("got %d records", len(got))
	}
}

func TestConsumeAllPaginates(t *testing.T) {
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	c := seededCluster(t, keys)
	cons, err := New(c, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cons.ConsumeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10_000 {
		t.Fatalf("got %d records, want 10000", len(got))
	}
	for i, r := range got {
		if r.Key != uint64(i+1) {
			t.Fatalf("record %d key = %d", i, r.Key)
		}
	}
}

func TestConsumeEmptyTopic(t *testing.T) {
	c := seededCluster(t, nil)
	cons, err := New(c, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cons.ConsumeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records from empty topic", len(got))
	}
}

func TestConsumeUnknownTopic(t *testing.T) {
	c := seededCluster(t, nil)
	cons, err := New(c, "ghost", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cons.ConsumeAll(); err == nil {
		t.Error("unknown topic accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, "t", 0); err == nil {
		t.Error("nil cluster accepted")
	}
	c := seededCluster(t, nil)
	if _, err := New(c, "", 0); err == nil {
		t.Error("empty topic accepted")
	}
}

func TestReconcileCleanDelivery(t *testing.T) {
	recs := []wire.Record{{Key: 1}, {Key: 2}, {Key: 3}}
	rep := Reconcile(3, recs)
	if rep.NLost != 0 || rep.NDuplicated != 0 || rep.Distinct != 3 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Pl() != 0 || rep.Pd() != 0 {
		t.Errorf("Pl/Pd = %v/%v", rep.Pl(), rep.Pd())
	}
}

func TestReconcileLossAndDuplicates(t *testing.T) {
	// Source 1..10; 3 and 7 lost; 2 delivered three times; 5 twice.
	var recs []wire.Record
	for _, k := range []uint64{1, 2, 2, 2, 4, 5, 5, 6, 8, 9, 10} {
		recs = append(recs, wire.Record{Key: k})
	}
	rep := Reconcile(10, recs)
	if rep.NLost != 2 {
		t.Errorf("NLost = %d, want 2", rep.NLost)
	}
	if rep.NDuplicated != 2 {
		t.Errorf("NDuplicated = %d, want 2", rep.NDuplicated)
	}
	if rep.ExtraCopies != 3 {
		t.Errorf("ExtraCopies = %d, want 3", rep.ExtraCopies)
	}
	if rep.Pl() != 0.2 || rep.Pd() != 0.2 {
		t.Errorf("Pl/Pd = %v/%v", rep.Pl(), rep.Pd())
	}
}

func TestReconcileForeignKeys(t *testing.T) {
	recs := []wire.Record{{Key: 0}, {Key: 11}, {Key: 1}}
	rep := Reconcile(10, recs)
	if rep.Foreign != 2 {
		t.Errorf("Foreign = %d, want 2", rep.Foreign)
	}
	if rep.Distinct != 1 {
		t.Errorf("Distinct = %d, want 1", rep.Distinct)
	}
}

func TestReconcileEmptySource(t *testing.T) {
	rep := Reconcile(0, nil)
	if rep.Pl() != 0 || rep.Pd() != 0 {
		t.Error("zero source produced nonzero rates")
	}
}
