package consumer

import (
	"testing"

	"kafkarel/internal/wire"
)

func keysOf(keys ...uint64) []wire.Record {
	recs := make([]wire.Record, len(keys))
	for i, k := range keys {
		recs[i] = wire.Record{Key: k}
	}
	return recs
}

// TestReconcileRangesMatchesReconcile pins the degenerate case: one
// range based at zero must reproduce plain Reconcile exactly.
func TestReconcileRangesMatchesReconcile(t *testing.T) {
	recs := keysOf(1, 2, 2, 4, 9)
	got := ReconcileRanges([]KeyRange{{Base: 0, Count: 5}}, recs)
	want := Reconcile(5, recs)
	if got != want {
		t.Errorf("ReconcileRanges = %+v, Reconcile = %+v", got, want)
	}
}

// TestReconcileRangesMultiProducer reconciles three producers with
// disjoint (and deliberately non-contiguous) ranges: losses inside a
// range, duplicates, and keys in the gap between ranges.
func TestReconcileRangesMultiProducer(t *testing.T) {
	ranges := []KeyRange{
		{Base: 0, Count: 3},    // keys 1..3
		{Base: 100, Count: 2},  // keys 101..102
		{Base: 1000, Count: 0}, // producer that never acquired anything
	}
	recs := keysOf(
		1, 2, 2, // producer 1: key 3 lost, key 2 duplicated
		101, 102, // producer 2: complete
		50,   // gap between ranges: foreign
		2000, // beyond every range: foreign
		0,    // key 0 is always foreign
	)
	rep := ReconcileRanges(ranges, recs)
	if rep.SourceCount != 5 {
		t.Errorf("SourceCount = %d, want 5", rep.SourceCount)
	}
	if rep.Distinct != 4 {
		t.Errorf("Distinct = %d, want 4", rep.Distinct)
	}
	if rep.NLost != 1 {
		t.Errorf("NLost = %d, want 1 (key 3)", rep.NLost)
	}
	if rep.NDuplicated != 1 || rep.ExtraCopies != 1 {
		t.Errorf("NDuplicated = %d ExtraCopies = %d, want 1/1", rep.NDuplicated, rep.ExtraCopies)
	}
	if rep.Foreign != 3 {
		t.Errorf("Foreign = %d, want 3 (keys 50, 2000, 0)", rep.Foreign)
	}
}

// TestReconcileRangesBoundaries probes the exact edges: Base is outside
// its own range, Base+1 and Base+Count are inside, Base+Count+1 is out.
func TestReconcileRangesBoundaries(t *testing.T) {
	ranges := []KeyRange{{Base: 10, Count: 5}} // keys 11..15
	rep := ReconcileRanges(ranges, keysOf(10, 11, 15, 16))
	if rep.Foreign != 2 {
		t.Errorf("Foreign = %d, want 2 (keys 10 and 16)", rep.Foreign)
	}
	if rep.Distinct != 2 {
		t.Errorf("Distinct = %d, want 2 (keys 11 and 15)", rep.Distinct)
	}
	// Adjacent ranges: 1..3 and 4..6 — key 4 belongs to the second.
	adj := []KeyRange{{Base: 0, Count: 3}, {Base: 3, Count: 3}}
	rep = ReconcileRanges(adj, keysOf(3, 4))
	if rep.Foreign != 0 || rep.Distinct != 2 {
		t.Errorf("adjacent ranges: %+v, want 2 distinct 0 foreign", rep)
	}
}
