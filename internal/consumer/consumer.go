// Package consumer implements the verification side of the paper's
// testbed (Sec. III-E): after the producer finishes and fault injection
// stops, a consumer reads every message in the topic and reconciles the
// set of unique message keys against the source data, yielding the
// ground-truth loss and duplicate counts N_l and N_d from which
// P_l = N_l/N and P_d = N_d/N are computed (Sec. III-F).
package consumer

import (
	"fmt"
	"sort"

	"kafkarel/internal/cluster"
	"kafkarel/internal/wire"
)

// Consumer drains one topic partition from the cluster. The paper
// consumes over a clean network (faults are stopped first), so the
// consumer calls the cluster directly rather than through the emulated
// path.
type Consumer struct {
	cluster   *cluster.Cluster
	topic     string
	partition int32
	fetchMax  int32
	isolation wire.IsolationLevel
}

// SetIsolation selects the fetch isolation level (default
// ReadUncommitted). At ReadCommitted the drain stops at the last stable
// offset and skips records from aborted transactions.
func (c *Consumer) SetIsolation(iso wire.IsolationLevel) { c.isolation = iso }

// New creates a consumer for the topic partition.
func New(c *cluster.Cluster, topic string, partition int32) (*Consumer, error) {
	if c == nil {
		return nil, fmt.Errorf("consumer: nil cluster")
	}
	if topic == "" {
		return nil, fmt.Errorf("consumer: empty topic")
	}
	return &Consumer{cluster: c, topic: topic, partition: partition, fetchMax: 4096}, nil
}

// ConsumeAll fetches every record currently in the partition.
func (c *Consumer) ConsumeAll() ([]wire.Record, error) {
	var out []wire.Record
	offset := int64(0)
	for {
		var resp wire.FetchResponse
		got := false
		c.cluster.HandleFetch(wire.FetchRequest{
			Topic:      c.topic,
			Partition:  c.partition,
			Offset:     offset,
			MaxRecords: c.fetchMax,
			Isolation:  c.isolation,
		}, func(r wire.FetchResponse) { resp = r; got = true })
		if !got {
			return nil, fmt.Errorf("consumer: no response (leaderless partition?)")
		}
		if resp.Err != wire.ErrNone {
			return nil, fmt.Errorf("consumer: fetch at offset %d: %s", offset, resp.Err)
		}
		out = append(out, resp.Records...)
		if len(resp.Records) == 0 && resp.NextOffset <= offset {
			if offset >= resp.HighWatermark ||
				(c.isolation == wire.ReadCommitted && offset >= resp.LastStable) {
				return out, nil
			}
			return nil, fmt.Errorf("consumer: empty fetch below high watermark %d at %d", resp.HighWatermark, offset)
		}
		offset = resp.NextOffset
	}
}

// Report is the reconciliation of consumed records against source keys
// 1..SourceCount.
type Report struct {
	// SourceCount is N, the number of messages the source provided.
	SourceCount uint64
	// Distinct is the number of unique source keys that reached the log.
	Distinct uint64
	// NLost is N_l: source keys never delivered (Case 2 ∪ Case 3).
	NLost uint64
	// NDuplicated is N_d: source keys delivered more than once (Case 5).
	NDuplicated uint64
	// ExtraCopies is the total number of redundant record copies.
	ExtraCopies uint64
	// Foreign counts records with keys outside 1..N (corruption guard;
	// always zero in a healthy run).
	Foreign uint64
}

// Pl returns the ground-truth probability of message loss.
func (r Report) Pl() float64 {
	if r.SourceCount == 0 {
		return 0
	}
	return float64(r.NLost) / float64(r.SourceCount)
}

// Pd returns the ground-truth probability of message duplication.
func (r Report) Pd() float64 {
	if r.SourceCount == 0 {
		return 0
	}
	return float64(r.NDuplicated) / float64(r.SourceCount)
}

// ConsumeAllPartitions drains every partition of a topic and returns all
// records (partition order, offset order within a partition). Key-set
// reconciliation is order-agnostic, so this suffices for multi-partition
// experiments.
func ConsumeAllPartitions(c *cluster.Cluster, topic string, partitions int32) ([]wire.Record, error) {
	var out []wire.Record
	for p := int32(0); p < partitions; p++ {
		cons, err := New(c, topic, p)
		if err != nil {
			return nil, err
		}
		recs, err := cons.ConsumeAll()
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", p, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// KeyRange is one producer's key span within a shared topic: the
// producer emitted keys Base+1 .. Base+Count (see producer.Config's
// KeyBase). Count is how many keys the producer actually acquired, so
// a run cut off mid-stream leaves a gap *between* ranges, never inside
// one.
type KeyRange struct {
	Base  uint64
	Count uint64
}

// ReconcileRanges reconciles records produced by several producers into
// one topic, each owning a disjoint KeyRange. It is Reconcile
// generalised from the single span 1..N to a union of spans: a key
// inside some range counts toward Distinct/NDuplicated, a key outside
// every range is Foreign, and NLost is the total range size minus the
// distinct keys seen. Ranges must be disjoint; order does not matter.
func ReconcileRanges(ranges []KeyRange, records []wire.Record) Report {
	keys := make([][]uint64, 1)
	keys[0] = make([]uint64, len(records))
	for i, rec := range records {
		keys[0][i] = rec.Key
	}
	return ReconcileRangesKeys(ranges, keys)
}

// ReconcileRangesKeys is ReconcileRanges over bare key streams — one
// slice per partition, as produced by Group.ConsumedKeys — so consumer
// groups can be reconciled without materialising wire.Records.
func ReconcileRangesKeys(ranges []KeyRange, keys [][]uint64) Report {
	sorted := make([]KeyRange, 0, len(ranges))
	var rep Report
	for _, r := range ranges {
		rep.SourceCount += r.Count
		if r.Count > 0 {
			sorted = append(sorted, r)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	inRange := func(k uint64) bool {
		// Find the last range with Base < k; k belongs to it iff
		// k <= Base+Count.
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Base >= k })
		if i == 0 {
			return false
		}
		r := sorted[i-1]
		return k <= r.Base+r.Count
	}
	total := 0
	for _, ks := range keys {
		total += len(ks)
	}
	seen := make(map[uint64]uint64, total)
	for _, ks := range keys {
		for _, k := range ks {
			if k == 0 || !inRange(k) {
				rep.Foreign++
				continue
			}
			seen[k]++
		}
	}
	rep.Distinct = uint64(len(seen))
	rep.NLost = rep.SourceCount - rep.Distinct
	for _, n := range seen {
		if n > 1 {
			rep.NDuplicated++
			rep.ExtraCopies += n - 1
		}
	}
	return rep
}

// Reconcile compares consumed records against the contiguous source key
// space 1..sourceCount.
func Reconcile(sourceCount uint64, records []wire.Record) Report {
	rep := Report{SourceCount: sourceCount}
	seen := make(map[uint64]uint64, len(records))
	for _, rec := range records {
		if rec.Key == 0 || rec.Key > sourceCount {
			rep.Foreign++
			continue
		}
		seen[rec.Key]++
	}
	rep.Distinct = uint64(len(seen))
	rep.NLost = sourceCount - rep.Distinct
	for _, n := range seen {
		if n > 1 {
			rep.NDuplicated++
			rep.ExtraCopies += n - 1
		}
	}
	return rep
}
