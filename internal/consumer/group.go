package consumer

import (
	"errors"
	"fmt"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/wire"
)

// ErrNoCommit is returned by Committed for a partition the group has
// never durably committed an offset for. Callers must distinguish it
// from offset 0, which is a real committed position ("consumed
// nothing, durably").
var ErrNoCommit = errors.New("consumer: no committed offset")

// Group is a consumer group running against the broker-side group
// coordinator: members join through JoinGroup/SyncGroup, hold their
// membership with heartbeats, poll their assigned partitions, and
// commit offsets to the coordinator's replicated offsets log. Nothing
// is remembered group-locally across a rebalance except what the
// offsets log serves back — a committed offset the log lost is lost
// here too, which is exactly the behaviour the chaos checker audits.
//
// A group runs in one of two styles sharing the same protocol code:
//
//   - Driven (Config.Auto): members are DES actors with poll and
//     heartbeat timers; they auto-commit after every poll round,
//     rejoin cooperatively when a heartbeat reports a rebalance
//     (committing their progress inside the revoke window first), and
//     leave once a drain predicate holds and their partitions are
//     consumed and committed.
//   - Manual: tests call Poll/Commit/Heartbeat themselves and pump the
//     simulator in between.
//
// Not safe for concurrent use; the DES is single-threaded.
type Group struct {
	sim  *des.Simulator
	co   *coordinator.Coordinator
	clst *cluster.Cluster
	cfg  GroupConfig

	partitions int32
	members    map[string]*Member
	order      []string // member names in Join order
	active     int      // members neither crashed nor left
	started    int

	// consumed holds, per partition, the keys delivered to the
	// application in delivery order (after dedup when Dedup is set) —
	// the group-side half of the end-to-end reconciliation.
	consumed [][]uint64
	// deliveredNext is the per-partition dedup watermark: the next
	// offset the application has not seen yet.
	deliveredNext []int64
	// commitHi is the highest offsets-log-acknowledged commit per
	// partition (0 = none) — durable facts, recorded even when the
	// committing member has since crashed.
	commitHi []int64
	// hwm is the latest high watermark any member observed per
	// partition (-1 = never fetched) — the group-wide drain target.
	hwm []int64
	// owner is the member currently owning each partition ("" = none) —
	// the client-side ownership ledger behind the cooperative-rebalance
	// evidence (ownership spans, redelivery budget).
	owner []string
	// pausedAt stamps when each partition last lost active polling
	// coverage (-1 = covered). The paused-partition span measures the
	// rebalance cost the cooperative protocol exists to remove.
	pausedAt []time.Duration

	ev           Evidence
	drainCheck   func() bool
	lastProgress time.Duration
	gaveUp       bool

	freeCommits []*commitReq

	// Observability handles, resolved once from GroupConfig.Obs (all
	// nil-safe no-ops when unset).
	cDelivered   *obs.Counter
	cRedelivered *obs.Counter
	cCommitAcks  *obs.Counter
	gLag         *obs.Gauge
	hSpanE2E     *obs.Histogram
	hSpanCommit  *obs.Histogram
	hPaused      *obs.Histogram
}

// GroupConfig parameterises a Group.
type GroupConfig struct {
	// ID is the group id (default "group").
	ID string
	// Topic is the subscribed topic (required; must exist).
	Topic string
	// SessionTimeout is passed to the coordinator on every join
	// (default: the coordinator's default).
	SessionTimeout time.Duration
	// HeartbeatInterval defaults to a third of the session timeout.
	HeartbeatInterval time.Duration
	// PollInterval is the driven-mode poll cadence (default 2ms).
	PollInterval time.Duration
	// PollMax caps records per poll round (default 512).
	PollMax int
	// CommitTimeout abandons an unacknowledged commit round (the
	// offsets log can silently swallow acks=all requests while its
	// partition is leaderless); the next poll round retries. Default
	// 100ms.
	CommitTimeout time.Duration
	// RetryBackoff spaces join/offset-fetch retries (default 10ms).
	RetryBackoff time.Duration
	// Isolation is the fetch isolation level. ReadCommitted bounds
	// fetches at the last stable offset and never surfaces records from
	// aborted transactions; the default ReadUncommitted sees everything
	// but control markers.
	Isolation wire.IsolationLevel
	// StaticMembership gives each member a stable group.instance.id
	// (derived from its client-side name), so a bounded restart reclaims
	// its member id and assignment without triggering a rebalance
	// (KIP-345).
	StaticMembership bool
	// Cooperative switches members to the incremental rebalance protocol
	// (KIP-429): they join carrying the partitions they still own, keep
	// consuming everything they retain across the generation bump, and
	// revoke only the partitions leaving them — committing those
	// partitions' progress first. Default (false) is the classic eager
	// protocol: every rebalance pauses every partition for the whole
	// join-barrier window.
	Cooperative bool
	// Auto runs members as DES actors (see Group doc).
	Auto bool
	// Dedup suppresses redelivered offsets (at or below the delivered
	// watermark) from the application stream — the app-side half of
	// exactly-once consumption.
	Dedup bool
	// CaptureEvidence records every delivery and commit ack on the
	// Evidence — the chaos end-to-end checker's input. Off by default
	// (memory-heavy for large runs).
	CaptureEvidence bool
	// IdleGiveUp, when positive, makes driven members abandon the
	// drain (leaving unclean) after this much sim time without any
	// group-wide delivery progress once the drain predicate holds —
	// the escape hatch for permanently unservable partitions.
	IdleGiveUp time.Duration
	// Obs receives delivery/commit-ack counters, the end-to-end and
	// commit latency spans, and the lag gauge. Nil disables them all.
	Obs *obs.Obs
}

func (c *GroupConfig) applyDefaults(co *coordinator.Coordinator) {
	if c.ID == "" {
		c.ID = "group"
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = co.Config().SessionTimeout
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.SessionTimeout / 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	if c.PollMax <= 0 {
		c.PollMax = 512
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 100 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
}

// Delivery is one record handed to the application.
type Delivery struct {
	Partition  int32
	Offset     int64
	Key        uint64
	Member     string
	Generation int32
}

// CommitAck is one durably acknowledged offset commit.
// AfterDeliveries is the length of Evidence.Deliveries at the moment
// the ack arrived, interleaving the two logs for replay.
type CommitAck struct {
	Partition       int32
	Offset          int64
	AfterDeliveries int
}

// OwnershipSpan is one interval during which a member owned (could
// deliver on) a partition. Spans end when the partition is revoked,
// the member crashes, leaves, or discovers its eviction; spans still
// open when Evidence is snapshotted are closed at the snapshot time.
// chaos.VerifyCoop checks that no partition has two members' spans
// overlapping in open sim-time.
type OwnershipSpan struct {
	Partition  int32
	Member     string
	Generation int32
	From       time.Duration
	To         time.Duration
}

// PauseSpan is one closed partition-pause window: sim time during which
// no member's poll loop covered the partition (CaptureEvidence only).
type PauseSpan struct {
	Partition int32
	From      time.Duration
	To        time.Duration
}

// Evidence is the group's end-to-end delivery record: what the
// application saw, what the offsets log acknowledged, and the
// membership churn along the way.
type Evidence struct {
	Group string
	Dedup bool
	// Deliveries, CommitAcks, OwnershipSpans and PauseSpans are only
	// populated under CaptureEvidence; the counters always are.
	Deliveries     []Delivery
	CommitAcks     []CommitAck
	OwnershipSpans []OwnershipSpan
	// PauseSpans records each window a partition spent without polling
	// coverage — the per-incident decomposition of PausedNs.
	PauseSpans []PauseSpan

	Delivered      uint64 // records handed to the application
	Redelivered    uint64 // polled records at already-delivered offsets
	CommitsAcked   uint64 // durably acknowledged offset commits
	Rewinds        uint64 // position rewinds after log truncation
	FencedCommits  uint64 // commits rejected by generation/member fencing
	FencedFetches  uint64 // offset fetches rejected by fencing
	Rebalances     uint64 // assignments applied across all members
	Crashes        uint64
	Restarts       uint64
	CommitTimeouts uint64
	// RedeliveryBudget bounds legitimate at-least-once redelivery: the
	// sum over every ownership end of that partition's uncommitted
	// window (delivered beyond the durable commit) plus every
	// truncation-rewind window. chaos.VerifyCoop checks
	// Redelivered <= RedeliveryBudget.
	RedeliveryBudget uint64
	// PausedNs accumulates partition-pause time: for each partition, the
	// sim-time it spent without active polling coverage (eager members
	// pause everything for each join barrier; cooperative members pause
	// only the partitions actually moving).
	PausedNs uint64
	// Drained reports a clean end: every member left after its
	// partitions were consumed to the high watermark and committed.
	Drained bool
}

type memberState int8

const (
	mDown memberState = iota
	mJoining
	mSyncing
	mStable
)

func (s memberState) String() string {
	switch s {
	case mDown:
		return "down"
	case mJoining:
		return "joining"
	case mSyncing:
		return "syncing"
	case mStable:
		return "stable"
	default:
		return fmt.Sprintf("state(%d)", int8(s))
	}
}

// Member is one group member actor.
type Member struct {
	g     *Group
	name  string // stable client-side name (fault target)
	id    string // coordinator-assigned member id
	gen   int32
	state memberState

	assigned []int32
	position map[int32]int64 // next offset to fetch
	ackedTo  map[int32]int64 // durably acknowledged commit watermarks

	hbT, pollT, commitT, retryT *des.Timer
	hbCB                        func(wire.HeartbeatResponse)

	joinEpoch     uint64 // discards responses to superseded joins
	commitEpoch   uint64 // discards acks of abandoned commit rounds
	inFlight      int
	pendingAssign []int32 // assignment awaiting offset fetches
	crashed       bool
	left          bool
	cleanLeft     bool
	// joinAfterCommit defers a rebalance-triggered rejoin until the
	// in-flight commit round resolves: generation N's progress must be
	// durable (or cleanly failed) before the join barrier can close and
	// hand the partitions to generation N+1 — the commit-before-revoke
	// barrier. commitTimeout is the escape hatch.
	joinAfterCommit bool
	// hbPhase is a fixed per-member heartbeat phase offset. Real group
	// members never heartbeat in lockstep; without the offset every
	// member would detect a rebalance at the same simulated instant and
	// the eager barrier would look free.
	hbPhase time.Duration
	// openSpan maps an owned partition to its open ownership-span index
	// in Evidence.OwnershipSpans (CaptureEvidence only).
	openSpan map[int32]int
}

// commitReq is one in-flight offset commit, pooled so the steady-state
// commit path allocates nothing per commit.
type commitReq struct {
	m      *Member
	epoch  uint64
	part   int32
	offset int64
	sentAt time.Duration
	fire   func(wire.OffsetCommitResponse)
}

func (g *Group) getCommitReq() *commitReq {
	if n := len(g.freeCommits); n > 0 {
		j := g.freeCommits[n-1]
		g.freeCommits = g.freeCommits[:n-1]
		return j
	}
	j := &commitReq{}
	j.fire = j.done
	return j
}

func (g *Group) putCommitReq(j *commitReq) {
	j.m = nil
	g.freeCommits = append(g.freeCommits, j)
}

// NewGroup creates a group over the topic. The topic must exist; its
// partition count is taken from cluster metadata.
func NewGroup(sim *des.Simulator, co *coordinator.Coordinator, clst *cluster.Cluster, cfg GroupConfig) (*Group, error) {
	if sim == nil || co == nil || clst == nil {
		return nil, fmt.Errorf("consumer: nil simulator, coordinator or cluster")
	}
	if cfg.Topic == "" {
		return nil, fmt.Errorf("consumer: empty topic")
	}
	md := clst.Metadata(wire.MetadataRequest{Topic: cfg.Topic})
	if md.Err != wire.ErrNone {
		return nil, fmt.Errorf("consumer: topic %q: %s", cfg.Topic, md.Err)
	}
	cfg.applyDefaults(co)
	n := len(md.Partitions)
	g := &Group{
		sim:           sim,
		co:            co,
		clst:          clst,
		cfg:           cfg,
		partitions:    int32(n),
		members:       make(map[string]*Member),
		consumed:      make([][]uint64, n),
		deliveredNext: make([]int64, n),
		commitHi:      make([]int64, n),
		hwm:           make([]int64, n),
		owner:         make([]string, n),
		pausedAt:      make([]time.Duration, n),
	}
	for p := range g.hwm {
		g.hwm[p] = -1
		// Every partition starts uncovered; the first assignment closes
		// the pause, so the initial join barrier is measured too.
		g.pausedAt[p] = sim.Now()
	}
	g.ev.Group = cfg.ID
	g.ev.Dedup = cfg.Dedup
	if o := cfg.Obs; o != nil {
		g.cDelivered = o.Counter(obs.MConsumerDelivered)
		g.cRedelivered = o.Counter(obs.MConsumerRedelivered)
		g.cCommitAcks = o.Counter(obs.MConsumerCommitAcks)
		// Lag is summed, not maxed, across shards: a drained shard
		// contributes zero to the fleet-wide backlog.
		g.gLag = o.GaugeOf(obs.MConsumerLag, obs.GaugeKindSum)
		g.hSpanE2E = o.Histogram(obs.MSpanDelivery, obs.LatencyBounds)
		g.hSpanCommit = o.Histogram(obs.MSpanCommit, obs.LatencyBounds)
		g.hPaused = o.Histogram(obs.MPausedNs, obs.LatencyBounds)
	}
	return g, nil
}

// SetDrainCheck installs the driven-mode drain predicate: once it
// returns true, members leave as soon as their partitions are consumed
// to the high watermark and committed.
func (g *Group) SetDrainCheck(fn func() bool) { g.drainCheck = fn }

// Partitions returns the topic's partition count.
func (g *Group) Partitions() int32 { return g.partitions }

// Join adds a member under a stable client-side name and starts its
// join. In driven mode the member begins polling once the first
// rebalance completes.
func (g *Group) Join(name string) error {
	if name == "" {
		return fmt.Errorf("consumer: empty member name")
	}
	if _, ok := g.members[name]; ok {
		return fmt.Errorf("consumer: member %q already joined", name)
	}
	m := &Member{
		g:        g,
		name:     name,
		position: make(map[int32]int64),
		ackedTo:  make(map[int32]int64),
		hbPhase:  time.Duration(len(g.order)%8) * g.cfg.HeartbeatInterval / 8,
	}
	m.hbT = des.NewTimer(g.sim, m.heartbeatTick)
	m.pollT = des.NewTimer(g.sim, m.pollTick)
	m.commitT = des.NewTimer(g.sim, m.commitTimeout)
	m.retryT = des.NewTimer(g.sim, m.retryTick)
	m.hbCB = m.onHeartbeat
	g.members[name] = m
	g.order = append(g.order, name)
	g.active++
	g.started++
	if g.lastProgress == 0 {
		g.lastProgress = g.sim.Now()
	}
	m.sendJoin()
	return nil
}

// member resolves a name or errors.
func (g *Group) member(name string) (*Member, error) {
	m, ok := g.members[name]
	if !ok {
		return nil, fmt.Errorf("consumer: unknown member %q", name)
	}
	return m, nil
}

// State returns a member's client-side state name.
func (g *Group) State(name string) string {
	if m, ok := g.members[name]; ok {
		return m.state.String()
	}
	return ""
}

// Assignment returns the partitions currently assigned to a member.
func (g *Group) Assignment(name string) []int32 {
	m, ok := g.members[name]
	if !ok {
		return nil
	}
	return append([]int32(nil), m.assigned...)
}

// Generation returns the member's current generation (-1 when not
// stable).
func (g *Group) Generation(name string) int32 {
	if m, ok := g.members[name]; ok && m.state == mStable {
		return m.gen
	}
	return -1
}

// Done reports whether every member has left or crashed.
func (g *Group) Done() bool { return g.started > 0 && g.active == 0 }

// Evidence returns a copy of the group's delivery evidence. Ownership
// spans still open and partitions still paused are closed at the
// snapshot time in the copy (the live state is untouched).
func (g *Group) Evidence() Evidence {
	now := g.sim.Now()
	ev := g.ev
	ev.Deliveries = append([]Delivery(nil), g.ev.Deliveries...)
	ev.CommitAcks = append([]CommitAck(nil), g.ev.CommitAcks...)
	ev.OwnershipSpans = append([]OwnershipSpan(nil), g.ev.OwnershipSpans...)
	for i := range ev.OwnershipSpans {
		if ev.OwnershipSpans[i].To < 0 {
			ev.OwnershipSpans[i].To = now
		}
	}
	ev.PauseSpans = append([]PauseSpan(nil), g.ev.PauseSpans...)
	for p := range g.pausedAt {
		if g.pausedAt[p] >= 0 {
			ev.PausedNs += uint64(now - g.pausedAt[p])
			if g.cfg.CaptureEvidence {
				ev.PauseSpans = append(ev.PauseSpans, PauseSpan{
					Partition: int32(p), From: g.pausedAt[p], To: now,
				})
			}
		}
	}
	return ev
}

// ConsumedKeys returns, per partition, the keys delivered to the
// application in delivery order.
func (g *Group) ConsumedKeys() [][]uint64 {
	out := make([][]uint64, len(g.consumed))
	for p, ks := range g.consumed {
		out[p] = append([]uint64(nil), ks...)
	}
	return out
}

// CommitHi returns the highest acknowledged commit per partition
// (0 = none acknowledged yet).
func (g *Group) CommitHi() []int64 { return append([]int64(nil), g.commitHi...) }

// ---- ownership & pause accounting ----

// beginOwnership registers the member as the partition's owner, closing
// the partition's pause window and opening an ownership span.
func (m *Member) beginOwnership(p int32) {
	g := m.g
	if g.owner[p] != m.name {
		g.owner[p] = m.name
		if g.cfg.CaptureEvidence {
			if m.openSpan == nil {
				m.openSpan = make(map[int32]int)
			}
			if _, open := m.openSpan[p]; !open {
				m.openSpan[p] = len(g.ev.OwnershipSpans)
				g.ev.OwnershipSpans = append(g.ev.OwnershipSpans, OwnershipSpan{
					Partition: p, Member: m.name, Generation: m.gen,
					From: g.sim.Now(), To: -1,
				})
			}
		}
	}
	g.resumePartition(p)
}

// endOwnership releases the partition, charging its uncommitted window
// to the redelivery budget: whoever acquires it next resumes from a
// durable commit at or above commitHi as of now, so at most
// deliveredNext-commitHi records can legitimately be delivered again.
func (m *Member) endOwnership(p int32) {
	g := m.g
	if g.owner[p] == m.name {
		g.owner[p] = ""
	}
	if w := g.deliveredNext[p] - g.commitHi[p]; w > 0 {
		g.ev.RedeliveryBudget += uint64(w)
	}
	if i, open := m.openSpan[p]; open {
		g.ev.OwnershipSpans[i].To = g.sim.Now()
		delete(m.openSpan, p)
	}
}

// pausePartition marks the partition as having lost polling coverage —
// unless another member has already taken it over (its poll loop is the
// coverage now).
func (m *Member) pausePartition(p int32) {
	g := m.g
	if g.owner[p] != "" && g.owner[p] != m.name {
		return
	}
	if g.pausedAt[p] < 0 {
		g.pausedAt[p] = g.sim.Now()
	}
}

// resumePartition closes an open pause window and accounts it.
func (g *Group) resumePartition(p int32) {
	if at := g.pausedAt[p]; at >= 0 {
		d := g.sim.Now() - at
		g.ev.PausedNs += uint64(d)
		g.hPaused.Observe(int64(d))
		if g.cfg.CaptureEvidence {
			g.ev.PauseSpans = append(g.ev.PauseSpans, PauseSpan{
				Partition: p, From: at, To: g.sim.Now(),
			})
		}
		g.pausedAt[p] = -1
	}
}

// ---- join / sync ----

func (m *Member) sendJoin() {
	g := m.g
	if !g.cfg.Cooperative {
		// Eager stop-the-world: polling stops for the whole barrier, so
		// every owned partition loses coverage until the new assignment
		// applies. Cooperative members keep consuming what they hold.
		for _, p := range m.assigned {
			m.pausePartition(p)
		}
	}
	m.state = mJoining
	m.pendingAssign = nil
	m.joinAfterCommit = false
	m.joinEpoch++
	epoch := m.joinEpoch
	req := wire.JoinGroupRequest{
		Group:          g.cfg.ID,
		MemberID:       m.id,
		Topic:          g.cfg.Topic,
		SessionTimeout: g.cfg.SessionTimeout,
	}
	if g.cfg.StaticMembership {
		req.GroupInstanceID = g.cfg.ID + "/" + m.name
	}
	if g.cfg.Cooperative {
		req.Protocol = wire.ProtocolCooperative
		req.OwnedPartitions = append([]int32(nil), m.assigned...)
	}
	g.co.HandleJoinGroup(req, func(resp wire.JoinGroupResponse) { m.onJoin(epoch, resp) })
}

func (m *Member) onJoin(epoch uint64, resp wire.JoinGroupResponse) {
	if m.crashed || m.left || epoch != m.joinEpoch || m.state != mJoining {
		return
	}
	switch resp.Err {
	case wire.ErrNone:
		m.id = resp.MemberID
		m.gen = resp.Generation
		m.sync()
	case wire.ErrRebalanceInProgress:
		// Our own newer join superseded this one; its callback is still
		// parked. Nothing to do.
	case wire.ErrUnknownMemberID:
		// Evicted while parked (missed the rebalance window). The
		// coordinator delivers this before handing our partitions to the
		// survivors, so ownership must end here and now — a cooperative
		// member that kept its assignment polling would overlap the new
		// owners. Rejoin with a fresh identity after a backoff.
		m.resetLocal()
		m.id = ""
		m.retryT.Reset(m.g.cfg.RetryBackoff)
	default:
		m.retryT.Reset(m.g.cfg.RetryBackoff)
	}
}

func (m *Member) sync() {
	g := m.g
	m.state = mSyncing
	g.co.HandleSyncGroup(wire.SyncGroupRequest{
		Group: g.cfg.ID, MemberID: m.id, Generation: m.gen,
	}, m.onSync)
}

func (m *Member) onSync(resp wire.SyncGroupResponse) {
	if m.crashed || m.left || m.state != mSyncing {
		return
	}
	switch resp.Err {
	case wire.ErrNone:
		m.applyAssignment(resp.Assigned)
	case wire.ErrRebalanceInProgress:
		m.sendJoin()
	default: // ErrIllegalGeneration, ErrUnknownMemberID
		m.sendJoin()
	}
}

// applyAssignment installs a new assignment. Cooperative members keep
// the positions of retained partitions, drop revoked ones
// (commit-before-revoke), and resume newly acquired partitions from the
// durable committed offset. Eager members lost everything at the join
// barrier — their whole subscription state was replaced, as with a real
// eager client — so every partition resumes from the committed offset,
// and whatever the pre-join flush failed to make durable is consumed
// again (the redelivery window the cooperative protocol avoids).
func (m *Member) applyAssignment(assigned []int32) {
	g := m.g
	kept := make(map[int32]bool, len(assigned))
	for _, p := range assigned {
		kept[p] = true
	}
	for p := range m.position {
		if !g.cfg.Cooperative {
			// Eager revoke-all: no position survives the barrier. The
			// dirty positions were flushed before the join (onHeartbeat);
			// a flush that failed there is lost here, not retried — the
			// old generation is gone.
			m.endOwnership(p)
			m.pausePartition(p)
			delete(m.position, p)
			delete(m.ackedTo, p)
			continue
		}
		if !kept[p] {
			// Commit-before-revoke: a cooperative member kept consuming
			// right through the join barrier, so progress since the last
			// commit round must become durable before the partition moves
			// to its next owner (who resumes from the committed offset).
			if pos := m.position[p]; pos > m.ackedTo[p] {
				m.commitOne(p, pos)
			}
			m.endOwnership(p)
			m.pausePartition(p)
			delete(m.position, p)
			delete(m.ackedTo, p)
		}
	}
	for _, p := range assigned {
		if _, ok := m.position[p]; ok {
			continue
		}
		var fr wire.OffsetFetchResponse
		g.co.HandleOffsetFetch(wire.OffsetFetchRequest{
			Group: g.cfg.ID, MemberID: m.id, Generation: m.gen,
			Topic: g.cfg.Topic, Partition: p,
		}, func(r wire.OffsetFetchResponse) { fr = r })
		switch fr.Err {
		case wire.ErrNone:
			m.position[p] = fr.Offset
			m.ackedTo[p] = fr.Offset
		case wire.ErrNoCommittedOffset:
			m.position[p] = 0
			m.ackedTo[p] = 0
		case wire.ErrCoordinatorNotAvailable:
			// Offsets log leaderless: park the assignment and retry.
			m.pendingAssign = append([]int32(nil), assigned...)
			m.retryT.Reset(g.cfg.RetryBackoff)
			return
		default: // fenced: another rebalance raced us
			g.ev.FencedFetches++
			m.sendJoin()
			return
		}
	}
	m.pendingAssign = nil
	m.assigned = append(m.assigned[:0], assigned...)
	for _, p := range assigned {
		m.beginOwnership(p)
	}
	m.state = mStable
	g.ev.Rebalances++
	if g.cfg.Auto {
		m.pollT.Reset(g.cfg.PollInterval)
		m.hbT.Reset(g.cfg.HeartbeatInterval + m.hbPhase)
	}
}

// retryTick resumes whatever the member was waiting to redo.
func (m *Member) retryTick() {
	if m.crashed || m.left {
		return
	}
	switch {
	case m.state == mJoining:
		m.sendJoin()
	case m.state == mSyncing && m.pendingAssign != nil:
		m.applyAssignment(m.pendingAssign)
	}
}

// ---- heartbeats ----

func (m *Member) heartbeatTick() {
	if m.state != mStable || m.crashed || m.left {
		return
	}
	m.g.co.HandleHeartbeat(wire.HeartbeatRequest{
		Group: m.g.cfg.ID, MemberID: m.id, Generation: m.gen,
	}, m.hbCB)
}

func (m *Member) onHeartbeat(resp wire.HeartbeatResponse) {
	if m.state != mStable || m.crashed || m.left {
		return
	}
	switch resp.Err {
	case wire.ErrNone:
		m.hbT.Reset(m.g.cfg.HeartbeatInterval)
	case wire.ErrRebalanceInProgress:
		// A rebalance wants us back at the barrier. Cooperative members
		// rejoin immediately — they keep consuming and committing their
		// current assignment while parked, and commit-before-revoke
		// happens per partition when the new assignment applies. Eager
		// members revoke everything at the join, so generation N's
		// progress must be durable first: flush the dirty positions (the
		// coordinator accepts current-generation commits during
		// PreparingRebalance) and join only once the acks land —
		// commitTimeout is the escape hatch. Joining with the flush still
		// in flight is the redelivery storm this barrier exists to stop:
		// the ack materialises after the new owner's offset fetch, and
		// the whole uncommitted window is consumed twice.
		if m.g.cfg.Cooperative {
			m.sendJoin()
			return
		}
		if m.joinAfterCommit {
			m.hbT.Reset(m.g.cfg.HeartbeatInterval)
			return // already flushing; keep the session alive meanwhile
		}
		m.commitDirty()
		if m.inFlight > 0 {
			m.joinAfterCommit = true
			m.hbT.Reset(m.g.cfg.HeartbeatInterval)
			return
		}
		m.sendJoin()
	case wire.ErrUnknownMemberID:
		// Session expired server-side; our state is stale.
		m.resetLocal()
		m.id = ""
		m.sendJoin()
	default: // ErrIllegalGeneration
		m.sendJoin()
	}
}

// Heartbeat sends one manual heartbeat (manual-mode tests).
func (g *Group) Heartbeat(name string) error {
	m, err := g.member(name)
	if err != nil {
		return err
	}
	if m.state != mStable {
		return fmt.Errorf("consumer: member %q not stable (%s)", name, m.state)
	}
	m.heartbeatTick()
	return nil
}

// ---- polling ----

// pollTick is the driven-mode poll round: fetch, deliver, auto-commit,
// and check the drain condition.
func (m *Member) pollTick() {
	if m.crashed || m.left {
		return
	}
	g := m.g
	if m.state != mStable {
		// Cooperative members keep consuming (and committing) the
		// partitions they still hold while a rebalance is in flight —
		// that retained coverage is the whole point of KIP-429. Eager
		// members stop until the new assignment applies.
		if g.cfg.Cooperative && len(m.assigned) > 0 {
			m.pollOnce(g.cfg.PollMax, nil)
			m.commitDirty()
			m.pollT.Reset(g.cfg.PollInterval)
		}
		return
	}
	if m.joinAfterCommit {
		// Revocation pending behind the commit flush: polling on would
		// dirty the positions again and the flush would never complete.
		// applyAssignment restarts the poll timer.
		return
	}
	m.pollOnce(g.cfg.PollMax, nil)
	if m.state != mStable { // a fenced commit mid-round triggered a rejoin
		return
	}
	m.commitDirty()
	if g.drainCheck != nil && g.drainCheck() {
		if m.drainedAndCommitted() {
			m.leave(true)
			return
		}
		if g.cfg.IdleGiveUp > 0 && g.sim.Now()-g.lastProgress >= g.cfg.IdleGiveUp {
			g.gaveUp = true
			m.leave(false)
			return
		}
	}
	m.pollT.Reset(g.cfg.PollInterval)
}

// pollOnce fetches up to max records across the member's assigned
// partitions and delivers them. When collect is non-nil the delivered
// records are also appended there (manual Poll).
func (m *Member) pollOnce(max int, collect *[]wire.Record) {
	g := m.g
	budget := max
	for _, p := range m.assigned {
		if budget <= 0 {
			break
		}
		pos := m.position[p]
		var fr wire.FetchResponse
		got := false
		g.clst.HandleFetch(wire.FetchRequest{
			Topic: g.cfg.Topic, Partition: p,
			Offset: pos, MaxRecords: int32(budget),
			Isolation: g.cfg.Isolation,
		}, func(r wire.FetchResponse) { fr = r; got = true })
		if !got {
			continue // leaderless: retry next round
		}
		if fr.Err != wire.ErrNone {
			// Only the broker's out-of-range signal carries a
			// trustworthy high watermark: the position outran the log
			// because an unclean restart truncated it. Rewind and
			// re-consume the rewritten suffix (at-least-once
			// redelivery). Leaderless errors report HighWatermark 0 and
			// must not touch positions or the drain watermark.
			if fr.Err == wire.ErrRequestTimedOut && fr.HighWatermark < pos {
				g.hwm[p] = fr.HighWatermark
				m.position[p] = fr.HighWatermark
				if m.ackedTo[p] > fr.HighWatermark {
					m.ackedTo[p] = fr.HighWatermark
				}
				g.ev.Rewinds++
				// The truncated suffix will be refetched: its re-appended
				// records arrive at already-delivered offsets. Charge the
				// window to the redelivery budget.
				if w := g.deliveredNext[p] - fr.HighWatermark; w > 0 {
					g.ev.RedeliveryBudget += uint64(w)
				}
			}
			continue
		}
		g.hwm[p] = fr.HighWatermark
		for i, rec := range fr.Records {
			off := pos + int64(i)
			fresh := off >= g.deliveredNext[p]
			if fresh {
				g.deliveredNext[p] = off + 1
				g.ev.Delivered++
				g.cDelivered.Inc()
				// End-to-end span: exactly one sample per offset the
				// application accepts, timed from producer enqueue.
				g.hSpanE2E.Observe(int64(g.sim.Now() - rec.Timestamp))
			} else {
				g.ev.Redelivered++
				g.cRedelivered.Inc()
				if g.cfg.Dedup {
					continue // exactly-once: suppress the redelivery
				}
			}
			g.consumed[p] = append(g.consumed[p], rec.Key)
			g.lastProgress = g.sim.Now()
			if g.cfg.CaptureEvidence {
				g.ev.Deliveries = append(g.ev.Deliveries, Delivery{
					Partition: p, Offset: off, Key: rec.Key,
					Member: m.name, Generation: m.gen,
				})
			}
			if collect != nil {
				*collect = append(*collect, rec)
			}
		}
		// Resume from the broker's NextOffset, which steps over filtered
		// runs (control markers, aborted transactions) the records slice
		// never contained; the dedup watermark follows, since a filtered
		// offset can never be delivered at this isolation level.
		m.position[p] = fr.NextOffset
		if fr.NextOffset > g.deliveredNext[p] {
			g.deliveredNext[p] = fr.NextOffset
		}
		budget -= len(fr.Records)
	}
}

// drainedAndCommitted reports whether the member may leave cleanly:
// every partition of the GROUP has been delivered to its observed high
// watermark (a member that leaves just because its own partitions are
// empty would strand a crashed peer's backlog), and the member's own
// positions are durably committed with nothing in flight.
func (m *Member) drainedAndCommitted() bool {
	g := m.g
	if m.inFlight > 0 {
		return false
	}
	for p := int32(0); p < g.partitions; p++ {
		if g.hwm[p] < 0 || g.deliveredNext[p] < g.hwm[p] {
			return false
		}
	}
	for _, p := range m.assigned {
		if m.position[p] > 0 && m.ackedTo[p] < m.position[p] {
			return false
		}
	}
	return true
}

// Poll fetches up to max records for a manual-mode member.
func (g *Group) Poll(name string, max int) ([]wire.Record, error) {
	m, err := g.member(name)
	if err != nil {
		return nil, err
	}
	if m.state != mStable {
		return nil, fmt.Errorf("consumer: member %q not stable (%s)", name, m.state)
	}
	if max <= 0 {
		return nil, fmt.Errorf("consumer: poll max %d <= 0", max)
	}
	var out []wire.Record
	m.pollOnce(max, &out)
	return out, nil
}

// ---- commits ----

// commitDirty sends one commit per assigned partition whose position
// advanced past the acknowledged watermark. Acks arrive after the
// offsets log replicates; the round is abandoned (and later retried)
// if no ack lands within CommitTimeout.
func (m *Member) commitDirty() {
	for _, p := range m.assigned {
		pos := m.position[p]
		if pos <= m.ackedTo[p] {
			continue
		}
		m.commitOne(p, pos)
	}
}

// commitOne sends a single offset commit and (re)arms the commit
// timeout from this send.
func (m *Member) commitOne(p int32, pos int64) {
	g := m.g
	j := g.getCommitReq()
	j.m, j.epoch, j.part, j.offset = m, m.commitEpoch, p, pos
	j.sentAt = g.sim.Now()
	m.inFlight++
	g.co.HandleOffsetCommit(wire.OffsetCommitRequest{
		Group: g.cfg.ID, MemberID: m.id, Generation: m.gen,
		Topic: g.cfg.Topic, Partition: p, Offset: pos,
	}, j.fire)
	if m.inFlight > 0 {
		m.commitT.Reset(g.cfg.CommitTimeout)
	}
}

func (j *commitReq) done(resp wire.OffsetCommitResponse) {
	m := j.m
	g := m.g
	epoch, p, off, sentAt := j.epoch, j.part, j.offset, j.sentAt
	g.putCommitReq(j)
	if resp.Err == wire.ErrNone {
		// A durable fact regardless of what happened to the member
		// since: the group's resume point moved.
		if off > g.commitHi[p] {
			g.commitHi[p] = off
		}
		g.ev.CommitsAcked++
		g.cCommitAcks.Inc()
		g.hSpanCommit.Observe(int64(g.sim.Now() - sentAt))
		if g.cfg.CaptureEvidence {
			g.ev.CommitAcks = append(g.ev.CommitAcks, CommitAck{
				Partition: p, Offset: off, AfterDeliveries: len(g.ev.Deliveries),
			})
		}
	}
	if epoch != m.commitEpoch {
		return // abandoned round or crashed member
	}
	m.inFlight--
	if m.inFlight == 0 {
		m.commitT.Stop()
	}
	awaitingJoin := m.joinAfterCommit
	switch resp.Err {
	case wire.ErrNone:
		// Guarded update: a commit for a since-revoked partition must not
		// resurrect its ackedTo entry (the new owner tracks it now).
		if cur, ok := m.ackedTo[p]; ok && off > cur {
			m.ackedTo[p] = off
		}
	case wire.ErrIllegalGeneration, wire.ErrUnknownMemberID:
		g.ev.FencedCommits++
		if resp.Err == wire.ErrUnknownMemberID && !m.crashed && !m.left {
			// Evicted: our assignment is being handed out right now.
			m.resetLocal()
			m.id = ""
		}
		if (m.state == mStable || awaitingJoin) && !m.crashed && !m.left {
			m.sendJoin()
		}
		return
	case wire.ErrRebalanceInProgress:
		// The commit raced the join barrier and was cleanly rejected —
		// not materialized, not dropped. Positions stay dirty; the next
		// poll re-commits them in the new generation.
	default:
		// Retriable (coordinator unavailable, not enough replicas):
		// the next poll round re-commits the same position.
	}
	// Commit-before-revoke barrier release: the deferred rejoin fires
	// once the flush round fully resolves (acked or cleanly failed —
	// a failed flush redelivers, but boundedly, and stalling the whole
	// group's rebalance behind a dead offsets log would be worse).
	if awaitingJoin && m.inFlight == 0 && !m.crashed && !m.left {
		m.sendJoin()
	}
}

func (m *Member) commitTimeout() {
	if m.inFlight == 0 || m.crashed || m.left {
		return
	}
	m.g.ev.CommitTimeouts++
	m.commitEpoch++
	m.inFlight = 0
	if m.joinAfterCommit {
		// Escape hatch for the commit-before-revoke barrier: the offsets
		// log would not answer within CommitTimeout (< RebalanceTimeout,
		// so we rejoin before the coordinator evicts us). Join anyway and
		// accept the bounded redelivery of the unflushed window.
		m.sendJoin()
	}
}

// Commit starts an async commit of the member's current positions.
// Use CommitsInFlight (and pump the simulator) to await the acks.
func (g *Group) Commit(name string) error {
	m, err := g.member(name)
	if err != nil {
		return err
	}
	if m.state != mStable {
		return fmt.Errorf("consumer: member %q not stable (%s)", name, m.state)
	}
	m.commitDirty()
	return nil
}

// CommitsInFlight returns the member's outstanding commit count.
func (g *Group) CommitsInFlight(name string) int {
	if m, ok := g.members[name]; ok {
		return m.inFlight
	}
	return 0
}

// Committed returns the group's durably committed offset for a
// partition, read through the coordinator's offsets log. A partition
// nothing was ever committed for returns ErrNoCommit — never a silent
// zero.
func (g *Group) Committed(partition int32) (int64, error) {
	var fr wire.OffsetFetchResponse
	got := false
	g.co.HandleOffsetFetch(wire.OffsetFetchRequest{
		Group: g.cfg.ID, Topic: g.cfg.Topic, Partition: partition,
	}, func(r wire.OffsetFetchResponse) { fr = r; got = true })
	if !got {
		return 0, fmt.Errorf("consumer: offset fetch unanswered")
	}
	switch fr.Err {
	case wire.ErrNone:
		return fr.Offset, nil
	case wire.ErrNoCommittedOffset:
		return 0, fmt.Errorf("consumer: partition %d: %w", partition, ErrNoCommit)
	default:
		return 0, fmt.Errorf("consumer: partition %d: offset fetch: %s", partition, fr.Err)
	}
}

// anyOwned reports whether any live member currently owns a partition.
// While true, lag probes fence themselves to the owned partitions —
// a partition mid-handoff (revoked, not yet acquired) has no member
// accountable for it, and charging its backlog to the group double
// counts it the moment the new owner's first commit lands. When nothing
// is owned (before the first assignment, or after every member left)
// the probes fall back to the full admin view.
func (g *Group) anyOwned() bool {
	for _, o := range g.owner {
		if o != "" {
			return true
		}
	}
	return false
}

// LagByPartition returns, per partition, the records between the
// durable committed offset and the partition high watermark
// (uncommitted partitions count from offset 0). Both sides are read
// through the coordinator and cluster — the authoritative (not
// group-cached) view. Rows are fenced to the current generation's
// assignment (see anyOwned); unowned partitions report zero.
func (g *Group) LagByPartition() ([]int64, error) {
	lags := make([]int64, g.partitions)
	fence := g.anyOwned()
	for p := int32(0); p < g.partitions; p++ {
		if fence && g.owner[p] == "" {
			continue
		}
		committed, err := g.Committed(p)
		if err != nil && !errors.Is(err, ErrNoCommit) {
			return nil, err
		}
		var fr wire.FetchResponse
		got := false
		g.clst.HandleFetch(wire.FetchRequest{
			Topic: g.cfg.Topic, Partition: p, Offset: committed,
		}, func(r wire.FetchResponse) { fr = r; got = true })
		if !got {
			return nil, fmt.Errorf("consumer: partition %d leaderless", p)
		}
		lags[p] = fr.HighWatermark - committed
	}
	return lags, nil
}

// Lag returns the total records between the durable committed offsets
// and the partition high watermarks — the sum of LagByPartition.
func (g *Group) Lag() (int64, error) {
	lags, err := g.LagByPartition()
	if err != nil {
		return 0, err
	}
	var lag int64
	for _, l := range lags {
		lag += l
	}
	return lag, nil
}

// Probe snapshots the group for a timeline sample: per-partition and
// total lag plus the delivery/commit counters. It is a pure observer
// built from the group's own durable facts (observed high watermarks
// vs acknowledged commits), so it is safe to call mid-chaos — a
// leaderless partition reports its last known backlog instead of an
// error. It also refreshes the consumer lag gauge.
func (g *Group) Probe() obs.GroupProbe {
	pr := obs.GroupProbe{
		LagByPartition: make([]int64, g.partitions),
		Delivered:      g.ev.Delivered,
		Redelivered:    g.ev.Redelivered,
		CommitAcks:     g.ev.CommitsAcked,
		Rebalances:     g.ev.Rebalances,
	}
	fence := g.anyOwned()
	for p := int32(0); p < g.partitions; p++ {
		if fence && g.owner[p] == "" {
			continue // fenced: no live owner in the current generation
		}
		if g.hwm[p] < 0 {
			continue // never fetched: backlog unknown, count as zero
		}
		if l := g.hwm[p] - g.commitHi[p]; l > 0 {
			pr.LagByPartition[p] = l
			pr.Lag += l
		}
	}
	g.gLag.Set(pr.Lag)
	return pr
}

// ---- leave / crash / restart ----

func (m *Member) stopTimers() {
	m.hbT.Stop()
	m.pollT.Stop()
	m.commitT.Stop()
	m.retryT.Stop()
}

func (m *Member) leave(clean bool) {
	g := m.g
	m.stopTimers()
	for _, p := range m.assigned {
		m.endOwnership(p)
		m.pausePartition(p)
	}
	for p := range m.openSpan {
		m.endOwnership(p)
	}
	wasStable := m.state == mStable
	m.state = mDown
	m.left = true
	m.cleanLeft = clean
	m.commitEpoch++
	m.inFlight = 0
	g.active--
	if wasStable && m.id != "" {
		g.co.HandleLeaveGroup(wire.LeaveGroupRequest{
			Group: g.cfg.ID, MemberID: m.id,
		}, nil)
	}
	if g.active == 0 {
		g.finish()
	}
}

// finish settles the group-level verdict once the last actor stopped.
func (g *Group) finish() {
	// Stop the paused-partition clocks: with no members left there is
	// nothing to resume, and post-run idle time is not rebalance cost.
	for p := range g.pausedAt {
		if g.pausedAt[p] >= 0 {
			d := g.sim.Now() - g.pausedAt[p]
			g.ev.PausedNs += uint64(d)
			g.hPaused.Observe(int64(d))
			g.pausedAt[p] = -1
		}
	}
	drained := !g.gaveUp
	for _, name := range g.order {
		m := g.members[name]
		if m.left && !m.cleanLeft {
			drained = false
		}
	}
	if g.started > 0 {
		// At least one member must have left cleanly: crashed-only
		// groups drained nothing.
		clean := false
		for _, name := range g.order {
			if g.members[name].cleanLeft {
				clean = true
			}
		}
		drained = drained && clean
	}
	g.ev.Drained = drained
}

// Leave removes a manual-mode member cleanly.
func (g *Group) Leave(name string) error {
	m, err := g.member(name)
	if err != nil {
		return err
	}
	if m.left || m.crashed {
		return fmt.Errorf("consumer: member %q already gone", name)
	}
	m.leave(true)
	return nil
}

// resetLocal wipes a member's in-memory consumption state (crash, or
// server-side eviction discovered via heartbeat).
func (m *Member) resetLocal() {
	for _, p := range m.assigned {
		m.endOwnership(p)
		m.pausePartition(p)
	}
	for p := range m.openSpan {
		m.endOwnership(p)
	}
	m.assigned = m.assigned[:0]
	for p := range m.position {
		delete(m.position, p)
	}
	for p := range m.ackedTo {
		delete(m.ackedTo, p)
	}
	m.pendingAssign = nil
	m.commitEpoch++
	m.inFlight = 0
	m.joinAfterCommit = false
}

// CrashMember kills the member at Join-order index i: timers stop,
// in-memory positions are lost, and no LeaveGroup is sent — the
// coordinator only notices when the session expires.
func (g *Group) CrashMember(i int) error {
	if i < 0 || i >= len(g.order) {
		return fmt.Errorf("consumer: member index %d outside [0,%d)", i, len(g.order))
	}
	return g.Crash(g.order[i])
}

// RestartMember revives the member at Join-order index i with a fresh
// identity; it rejoins and resumes from the durable committed offsets.
func (g *Group) RestartMember(i int) error {
	if i < 0 || i >= len(g.order) {
		return fmt.Errorf("consumer: member index %d outside [0,%d)", i, len(g.order))
	}
	return g.Restart(g.order[i])
}

// Crash is CrashMember by name.
func (g *Group) Crash(name string) error {
	m, err := g.member(name)
	if err != nil {
		return err
	}
	if m.crashed || m.left {
		return fmt.Errorf("consumer: member %q already down", name)
	}
	m.stopTimers()
	m.crashed = true
	m.state = mDown
	m.resetLocal()
	g.active--
	g.ev.Crashes++
	if g.active == 0 {
		g.finish()
	}
	return nil
}

// Restart is RestartMember by name.
func (g *Group) Restart(name string) error {
	m, err := g.member(name)
	if err != nil {
		return err
	}
	if !m.crashed {
		return fmt.Errorf("consumer: member %q is not crashed", name)
	}
	m.crashed = false
	m.id = "" // a restarted process rejoins as a new member
	g.active++
	g.ev.Restarts++
	g.ev.Drained = false
	m.sendJoin()
	return nil
}
