package consumer

import (
	"fmt"
	"sort"

	"kafkarel/internal/cluster"
	"kafkarel/internal/wire"
)

// Group is an in-process consumer group over a cluster topic: members
// share the topic's partitions under Kafka's range assignment, poll
// records from their assigned partitions, and commit offsets to a
// group-scoped offset store, giving at-least-once consumption semantics
// (uncommitted records are redelivered after a rebalance or restart).
// It completes the substrate for downstream users; the paper's
// experiments only need the single drain consumer above.
type Group struct {
	cluster    *cluster.Cluster
	topic      string
	partitions int32
	members    []string
	// assignment maps member → partitions.
	assignment map[string][]int32
	// committed and position are per-partition offsets: committed is the
	// durable group offset; position is the in-memory read cursor since
	// the last poll.
	committed map[int32]int64
	position  map[int32]int64
}

// NewGroup creates an empty group for the topic.
func NewGroup(c *cluster.Cluster, topic string, partitions int32) (*Group, error) {
	if c == nil {
		return nil, fmt.Errorf("consumer: nil cluster")
	}
	if topic == "" {
		return nil, fmt.Errorf("consumer: empty topic")
	}
	if partitions <= 0 {
		return nil, fmt.Errorf("consumer: partition count %d <= 0", partitions)
	}
	return &Group{
		cluster:    c,
		topic:      topic,
		partitions: partitions,
		assignment: make(map[string][]int32),
		committed:  make(map[int32]int64),
		position:   make(map[int32]int64),
	}, nil
}

// Members returns the current member IDs in join order.
func (g *Group) Members() []string {
	out := make([]string, len(g.members))
	copy(out, g.members)
	return out
}

// Assignment returns the partitions assigned to a member.
func (g *Group) Assignment(member string) []int32 {
	out := make([]int32, len(g.assignment[member]))
	copy(out, g.assignment[member])
	return out
}

// Join adds a member and rebalances. Re-joining an existing member is an
// error.
func (g *Group) Join(member string) error {
	if member == "" {
		return fmt.Errorf("consumer: empty member id")
	}
	for _, m := range g.members {
		if m == member {
			return fmt.Errorf("consumer: member %q already joined", member)
		}
	}
	g.members = append(g.members, member)
	g.rebalance()
	return nil
}

// Leave removes a member and rebalances; its uncommitted progress is
// discarded, so the records re-deliver to the new owners (at-least-once).
func (g *Group) Leave(member string) error {
	idx := -1
	for i, m := range g.members {
		if m == member {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("consumer: member %q not in group", member)
	}
	g.members = append(g.members[:idx], g.members[idx+1:]...)
	g.rebalance()
	return nil
}

// rebalance applies Kafka's range assignor: partitions are split into
// contiguous ranges, members sorted by ID, earlier members taking the
// larger ranges when the division is uneven. Read cursors reset to the
// committed offsets: in-flight uncommitted reads are forgotten.
func (g *Group) rebalance() {
	g.assignment = make(map[string][]int32, len(g.members))
	for p := range g.position {
		g.position[p] = g.committed[p]
	}
	if len(g.members) == 0 {
		return
	}
	sorted := make([]string, len(g.members))
	copy(sorted, g.members)
	sort.Strings(sorted)
	per := int(g.partitions) / len(sorted)
	extra := int(g.partitions) % len(sorted)
	next := int32(0)
	for i, m := range sorted {
		n := per
		if i < extra {
			n++
		}
		for j := 0; j < n; j++ {
			g.assignment[m] = append(g.assignment[m], next)
			next++
		}
	}
}

// Poll fetches up to max records for the member across its assigned
// partitions, advancing the member's read cursors (but not the committed
// offsets — call Commit when processing succeeded).
func (g *Group) Poll(member string, max int) ([]wire.Record, error) {
	parts, ok := g.assignment[member]
	if !ok {
		return nil, fmt.Errorf("consumer: member %q has no assignment (not joined?)", member)
	}
	if max <= 0 {
		return nil, fmt.Errorf("consumer: poll max %d <= 0", max)
	}
	var out []wire.Record
	for _, p := range parts {
		if len(out) >= max {
			break
		}
		var resp wire.FetchResponse
		got := false
		g.cluster.HandleFetch(wire.FetchRequest{
			Topic:      g.topic,
			Partition:  p,
			Offset:     g.position[p],
			MaxRecords: int32(max - len(out)),
		}, func(r wire.FetchResponse) { resp = r; got = true })
		if !got {
			return nil, fmt.Errorf("consumer: partition %d leaderless", p)
		}
		if resp.Err != wire.ErrNone {
			return nil, fmt.Errorf("consumer: partition %d: %s", p, resp.Err)
		}
		out = append(out, resp.Records...)
		g.position[p] += int64(len(resp.Records))
	}
	return out, nil
}

// Commit durably records the member's current read cursors as the group
// offsets for its assigned partitions.
func (g *Group) Commit(member string) error {
	parts, ok := g.assignment[member]
	if !ok {
		return fmt.Errorf("consumer: member %q has no assignment", member)
	}
	for _, p := range parts {
		g.committed[p] = g.position[p]
	}
	return nil
}

// Committed returns the group's committed offset for a partition.
func (g *Group) Committed(partition int32) int64 { return g.committed[partition] }

// Lag returns the total unconsumed records across all partitions
// relative to the committed offsets.
func (g *Group) Lag() (int64, error) {
	var lag int64
	for p := int32(0); p < g.partitions; p++ {
		var resp wire.FetchResponse
		got := false
		g.cluster.HandleFetch(wire.FetchRequest{
			Topic:     g.topic,
			Partition: p,
			Offset:    g.committed[p],
		}, func(r wire.FetchResponse) { resp = r; got = true })
		if !got {
			return 0, fmt.Errorf("consumer: partition %d leaderless", p)
		}
		if resp.Err != wire.ErrNone {
			return 0, fmt.Errorf("consumer: partition %d: %s", p, resp.Err)
		}
		lag += resp.HighWatermark - g.committed[p]
	}
	return lag, nil
}
