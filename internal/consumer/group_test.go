package consumer

import (
	"errors"
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// groupRig is a cluster with a seeded topic and a coordinator.
type groupRig struct {
	sim  *des.Simulator
	clst *cluster.Cluster
	co   *coordinator.Coordinator
}

// newGroupRig seeds topic "t" with `partitions` partitions and
// `perPart` records each (keys unique across the topic, 1-based,
// partition-major: partition p owns keys p*perPart+1..(p+1)*perPart).
func newGroupRig(t *testing.T, partitions int32, perPart int) *groupRig {
	t.Helper()
	sim := des.New()
	c, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", int(partitions), 1); err != nil {
		t.Fatal(err)
	}
	key := uint64(1)
	for p := int32(0); p < partitions; p++ {
		recs := make([]wire.Record, 0, perPart)
		for i := 0; i < perPart; i++ {
			recs = append(recs, wire.Record{Key: key})
			key++
		}
		c.Leader("t", p).Log("t", p).Append(recs)
	}
	co, err := coordinator.New(sim, c, coordinator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &groupRig{sim: sim, clst: c, co: co}
}

func (r *groupRig) pump(t *testing.T, d time.Duration) {
	t.Helper()
	if err := r.sim.RunUntil(r.sim.Now() + d); err != nil {
		t.Fatal(err)
	}
}

func sourceRanges(partitions int32, perPart int) []KeyRange {
	ranges := make([]KeyRange, partitions)
	for p := range ranges {
		ranges[p] = KeyRange{Base: uint64(p * perPart), Count: uint64(perPart)}
	}
	return ranges
}

func TestGroupRangeAssignment(t *testing.T) {
	r := newGroupRig(t, 7, 1)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"c0", "c1", "c2"} {
		if err := g.Join(name); err != nil {
			t.Fatal(err)
		}
	}
	r.pump(t, 50*time.Millisecond)
	seen := make(map[int32]string)
	sizes := make([]int, 0, 3)
	for _, name := range []string{"c0", "c1", "c2"} {
		if got := g.State(name); got != "stable" {
			t.Fatalf("member %s state = %s, want stable", name, got)
		}
		parts := g.Assignment(name)
		sizes = append(sizes, len(parts))
		for _, p := range parts {
			if prev, dup := seen[p]; dup {
				t.Fatalf("partition %d assigned to both %s and %s", p, prev, name)
			}
			seen[p] = name
		}
	}
	if len(seen) != 7 {
		t.Fatalf("assigned %d partitions, want 7", len(seen))
	}
	// Range assignor over 7/3: earlier members take the larger ranges.
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 2 {
		t.Fatalf("assignment sizes = %v, want [3 2 2]", sizes)
	}
	if g.Generation("c0") != g.Generation("c1") {
		t.Fatalf("members disagree on generation: %d vs %d",
			g.Generation("c0"), g.Generation("c1"))
	}
}

func TestGroupPollAndCommit(t *testing.T) {
	r := newGroupRig(t, 2, 10)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join("c0"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 20*time.Millisecond)

	// Before anything is committed, Committed is an explicit error —
	// never a silent zero.
	if _, err := g.Committed(0); !errors.Is(err, ErrNoCommit) {
		t.Fatalf("Committed on fresh group: err = %v, want ErrNoCommit", err)
	}
	lag, err := g.Lag()
	if err != nil {
		t.Fatal(err)
	}
	if lag != 20 {
		t.Fatalf("initial lag = %d, want 20", lag)
	}

	recs, err := g.Poll("c0", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("polled %d records, want 20", len(recs))
	}
	// Polled but uncommitted: the durable path still has nothing.
	if _, err := g.Committed(0); !errors.Is(err, ErrNoCommit) {
		t.Fatalf("Committed after poll, before commit: err = %v, want ErrNoCommit", err)
	}
	if err := g.Commit("c0"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 50*time.Millisecond)
	if n := g.CommitsInFlight("c0"); n != 0 {
		t.Fatalf("commits still in flight after pump: %d", n)
	}
	for p := int32(0); p < 2; p++ {
		off, err := g.Committed(p)
		if err != nil {
			t.Fatalf("Committed(%d): %v", p, err)
		}
		if off != 10 {
			t.Fatalf("Committed(%d) = %d, want 10", p, off)
		}
	}
	lag, err = g.Lag()
	if err != nil {
		t.Fatal(err)
	}
	if lag != 0 {
		t.Fatalf("lag after commit = %d, want 0", lag)
	}
	if err := g.Leave("c0"); err != nil {
		t.Fatal(err)
	}
	if !g.Done() {
		t.Fatal("group not done after last leave")
	}
}

// TestGroupCommittedSurvivesRejoin: offsets live in the coordinator's
// log, not in the group object — a fresh member resumes exactly at the
// committed watermark.
func TestGroupCommittedSurvivesRejoin(t *testing.T) {
	r := newGroupRig(t, 1, 10)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join("c0"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 20*time.Millisecond)
	if _, err := g.Poll("c0", 4); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit("c0"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 50*time.Millisecond)
	if err := g.Leave("c0"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 20*time.Millisecond)

	// A second group instance (same group id) resumes at offset 4.
	g2, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Join("c1"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 20*time.Millisecond)
	recs, err := g2.Poll("c1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("resumed poll got %d records, want 6", len(recs))
	}
	if recs[0].Key != 5 {
		t.Fatalf("resumed at key %d, want 5", recs[0].Key)
	}
}

// TestGroupSessionTimeoutMidPoll: a member that stops heartbeating
// mid-consumption is expired by the coordinator; the survivor takes
// over its partitions from the committed offsets and drains the topic
// with nothing lost and (under dedup) nothing double-delivered.
func TestGroupSessionTimeoutMidPoll(t *testing.T) {
	const partitions, perPart = 4, 200
	r := newGroupRig(t, partitions, perPart)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{
		Topic: "t", Auto: true, Dedup: true, PollMax: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SetDrainCheck(func() bool { return true })
	if err := g.Join("c0"); err != nil {
		t.Fatal(err)
	}
	if err := g.Join("c1"); err != nil {
		t.Fatal(err)
	}
	r.sim.Schedule(30*time.Millisecond, func() {
		if err := g.CrashMember(0); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	r.pump(t, 2*time.Second)
	if !g.Done() {
		t.Fatalf("group not done; states: c0=%s c1=%s", g.State("c0"), g.State("c1"))
	}
	ev := g.Evidence()
	if !ev.Drained {
		t.Fatal("group did not drain cleanly")
	}
	if ev.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", ev.Crashes)
	}
	if got := r.co.Stats().SessionExpirations; got < 1 {
		t.Fatalf("session expirations = %d, want >= 1", got)
	}
	rep := ReconcileRangesKeys(sourceRanges(partitions, perPart), g.ConsumedKeys())
	if rep.NLost != 0 || rep.NDuplicated != 0 || rep.Foreign != 0 {
		t.Fatalf("reconcile after takeover: lost=%d dup=%d foreign=%d",
			rep.NLost, rep.NDuplicated, rep.Foreign)
	}
}

// TestGroupStaleCommitFenced: a member evicted by a rebalance it never
// rejoined gets its late commit rejected by member/generation fencing —
// the durable watermark must not move.
func TestGroupStaleCommitFenced(t *testing.T) {
	r := newGroupRig(t, 2, 10)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join("c0"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 20*time.Millisecond)
	if _, err := g.Poll("c0", 100); err != nil {
		t.Fatal(err)
	}

	// A second member joins; c0 (manual, not heartbeating) never learns
	// about the rebalance and is evicted at the rebalance timeout.
	if err := g.Join("c1"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, r.co.Config().RebalanceTimeout+50*time.Millisecond)
	if got := g.State("c1"); got != "stable" {
		t.Fatalf("c1 state = %s, want stable", got)
	}
	// c0 is removed either by the rebalance-timeout eviction or by its
	// session expiring first — both end in the same fenced state.
	if st := r.co.Stats(); st.Evictions+st.SessionExpirations < 1 {
		t.Fatalf("evictions=%d expirations=%d, want >= 1 removal",
			st.Evictions, st.SessionExpirations)
	}

	// c0's stale commit is fenced and must not create a committed
	// offset.
	if err := g.Commit("c0"); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 50*time.Millisecond)
	ev := g.Evidence()
	if ev.FencedCommits < 1 {
		t.Fatalf("fenced commits = %d, want >= 1", ev.FencedCommits)
	}
	if _, err := g.Committed(0); !errors.Is(err, ErrNoCommit) {
		t.Fatalf("fenced commit became durable: Committed err = %v, want ErrNoCommit", err)
	}
	if hi := g.CommitHi(); hi[0] != 0 || hi[1] != 0 {
		t.Fatalf("fenced commit moved CommitHi: %v", hi)
	}
	if got := r.co.Stats().FencedCommits; got < 1 {
		t.Fatalf("coordinator fenced commits = %d, want >= 1", got)
	}
}

// TestGroupCooperativeReassignment: a member joining mid-consumption
// triggers a cooperative rebalance — the incumbent commits inside the
// revoke window, keeps its retained partitions' positions, and the
// recorded delivery offsets stay strictly increasing per partition
// (no gap, no replay) under dedup.
func TestGroupCooperativeReassignment(t *testing.T) {
	const partitions, perPart = 4, 150
	r := newGroupRig(t, partitions, perPart)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{
		Topic: "t", Auto: true, Dedup: true, PollMax: 16, CaptureEvidence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SetDrainCheck(func() bool { return true })
	if err := g.Join("c0"); err != nil {
		t.Fatal(err)
	}
	r.sim.Schedule(25*time.Millisecond, func() {
		if err := g.Join("c1"); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	r.pump(t, 2*time.Second)
	if !g.Done() {
		t.Fatalf("group not done; states: c0=%s c1=%s", g.State("c0"), g.State("c1"))
	}
	ev := g.Evidence()
	if !ev.Drained {
		t.Fatal("group did not drain cleanly")
	}
	// One assignment for c0 alone, then one each after the rebalance.
	if ev.Rebalances < 3 {
		t.Fatalf("assignments applied = %d, want >= 3", ev.Rebalances)
	}
	// Per-partition delivery offsets strictly increasing: cooperative
	// handoff resumed exactly where the committed watermark stood.
	last := make([]int64, partitions)
	for p := range last {
		last[p] = -1
	}
	owners := make([]map[string]bool, partitions)
	for i := range owners {
		owners[i] = map[string]bool{}
	}
	for _, d := range ev.Deliveries {
		if d.Offset != last[d.Partition]+1 {
			t.Fatalf("partition %d: delivery offset %d after %d (want contiguous)",
				d.Partition, d.Offset, last[d.Partition])
		}
		last[d.Partition] = d.Offset
		owners[d.Partition][d.Member] = true
	}
	for p := range last {
		if last[p] != perPart-1 {
			t.Fatalf("partition %d drained to offset %d, want %d", p, last[p], perPart-1)
		}
	}
	// The rebalance actually moved partitions: some partition was
	// served by both members over its lifetime.
	shared := false
	for _, o := range owners {
		if len(o) > 1 {
			shared = true
		}
	}
	if !shared {
		t.Fatal("no partition changed hands across the rebalance")
	}
	rep := ReconcileRangesKeys(sourceRanges(partitions, perPart), g.ConsumedKeys())
	if rep.NLost != 0 || rep.NDuplicated != 0 {
		t.Fatalf("reconcile: lost=%d dup=%d", rep.NLost, rep.NDuplicated)
	}
}

func TestGroupValidation(t *testing.T) {
	r := newGroupRig(t, 2, 1)
	if _, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "missing"}); err == nil {
		t.Fatal("NewGroup on missing topic succeeded")
	}
	if _, err := NewGroup(nil, r.co, r.clst, GroupConfig{Topic: "t"}); err == nil {
		t.Fatal("NewGroup with nil sim succeeded")
	}
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join("c0"); err != nil {
		t.Fatal(err)
	}
	if err := g.Join("c0"); err == nil {
		t.Fatal("duplicate join succeeded")
	}
	if _, err := g.Poll("ghost", 1); err == nil {
		t.Fatal("poll for unknown member succeeded")
	}
	if _, err := g.Poll("c0", 1); err == nil {
		t.Fatal("poll before rebalance completed succeeded")
	}
	r.pump(t, 20*time.Millisecond)
	if _, err := g.Poll("c0", 0); err == nil {
		t.Fatal("poll with max 0 succeeded")
	}
	if err := g.Restart("c0"); err == nil {
		t.Fatal("restart of live member succeeded")
	}
	if err := g.Leave("c0"); err != nil {
		t.Fatal(err)
	}
	if err := g.Leave("c0"); err == nil {
		t.Fatal("double leave succeeded")
	}
}
