package consumer

import (
	"testing"
	"testing/quick"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// groupCluster seeds a topic with `partitions` partitions, `perPart`
// records in each (keys unique across the topic).
func groupCluster(t *testing.T, partitions int32, perPart int) *cluster.Cluster {
	t.Helper()
	sim := des.New()
	c, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", int(partitions), 1); err != nil {
		t.Fatal(err)
	}
	key := uint64(1)
	for p := int32(0); p < partitions; p++ {
		recs := make([]wire.Record, 0, perPart)
		for i := 0; i < perPart; i++ {
			recs = append(recs, wire.Record{Key: key})
			key++
		}
		c.Leader("t", p).Log("t", p).Append(recs)
	}
	return c
}

func TestGroupRangeAssignment(t *testing.T) {
	c := groupCluster(t, 7, 1)
	g, err := NewGroup(c, "t", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"a", "b", "c"} {
		if err := g.Join(m); err != nil {
			t.Fatal(err)
		}
	}
	// Range assignor over 7 partitions and 3 members: 3/2/2.
	sizes := map[string]int{}
	seen := map[int32]bool{}
	for _, m := range g.Members() {
		parts := g.Assignment(m)
		sizes[m] = len(parts)
		for _, p := range parts {
			if seen[p] {
				t.Fatalf("partition %d assigned twice", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != 7 {
		t.Fatalf("assigned %d partitions, want 7", len(seen))
	}
	if sizes["a"] != 3 || sizes["b"] != 2 || sizes["c"] != 2 {
		t.Errorf("range sizes = %v, want a:3 b:2 c:2", sizes)
	}
}

func TestGroupJoinLeaveValidation(t *testing.T) {
	c := groupCluster(t, 2, 1)
	g, err := NewGroup(c, "t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join(""); err == nil {
		t.Error("empty member accepted")
	}
	if err := g.Join("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Join("a"); err == nil {
		t.Error("double join accepted")
	}
	if err := g.Leave("ghost"); err == nil {
		t.Error("leaving unknown member accepted")
	}
	if _, err := NewGroup(nil, "t", 1); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := NewGroup(c, "", 1); err == nil {
		t.Error("empty topic accepted")
	}
	if _, err := NewGroup(c, "t", 0); err == nil {
		t.Error("zero partitions accepted")
	}
}

func TestGroupPollAndCommit(t *testing.T) {
	c := groupCluster(t, 2, 10)
	g, err := NewGroup(c, "t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join("a"); err != nil {
		t.Fatal(err)
	}
	first, err := g.Poll("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 20 {
		t.Fatalf("polled %d records, want 20", len(first))
	}
	// Without a commit, a rebalance rewinds to the committed offsets.
	if err := g.Join("b"); err != nil {
		t.Fatal(err)
	}
	againA, err := g.Poll("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	againB, err := g.Poll("b", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(againA)+len(againB) != 20 {
		t.Errorf("redelivery after rebalance = %d records, want 20 (at-least-once)", len(againA)+len(againB))
	}
	// Commit, then nothing further to read.
	if err := g.Commit("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit("b"); err != nil {
		t.Fatal(err)
	}
	empty, err := g.Poll("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("post-commit poll returned %d records", len(empty))
	}
	lag, err := g.Lag()
	if err != nil {
		t.Fatal(err)
	}
	if lag != 0 {
		t.Errorf("lag = %d after full commit", lag)
	}
}

func TestGroupCommittedOffsetsSurviveLeave(t *testing.T) {
	c := groupCluster(t, 1, 10)
	g, err := NewGroup(c, "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join("a"); err != nil {
		t.Fatal(err)
	}
	recs, err := g.Poll("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("polled %d", len(recs))
	}
	if err := g.Commit("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Join("b"); err != nil {
		t.Fatal(err)
	}
	rest, err := g.Poll("b", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 6 {
		t.Errorf("successor polled %d records, want the 6 uncommitted", len(rest))
	}
	if rest[0].Key != 5 {
		t.Errorf("successor resumed at key %d, want 5", rest[0].Key)
	}
	if g.Committed(0) != 4 {
		t.Errorf("committed offset = %d, want 4", g.Committed(0))
	}
}

func TestGroupPollValidation(t *testing.T) {
	c := groupCluster(t, 1, 1)
	g, err := NewGroup(c, "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Poll("nobody", 10); err == nil {
		t.Error("poll by non-member accepted")
	}
	if err := g.Join("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Poll("a", 0); err == nil {
		t.Error("zero max accepted")
	}
	if err := g.Commit("nobody"); err == nil {
		t.Error("commit by non-member accepted")
	}
}

// Property: for any member count and partition count, the range assignor
// covers every partition exactly once and sizes differ by at most one.
func TestPropertyRangeAssignmentBalanced(t *testing.T) {
	f := func(nPartsRaw, nMembersRaw uint8) bool {
		nParts := int32(nPartsRaw%16) + 1
		nMembers := int(nMembersRaw%8) + 1
		c := groupCluster(t, nParts, 0)
		g, err := NewGroup(c, "t", nParts)
		if err != nil {
			return false
		}
		for i := 0; i < nMembers; i++ {
			if err := g.Join(string(rune('a' + i))); err != nil {
				return false
			}
		}
		seen := map[int32]int{}
		min, max := int(nParts)+1, -1
		for _, m := range g.Members() {
			parts := g.Assignment(m)
			if len(parts) < min {
				min = len(parts)
			}
			if len(parts) > max {
				max = len(parts)
			}
			for _, p := range parts {
				seen[p]++
			}
		}
		if len(seen) != int(nParts) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
