package consumer

import (
	"testing"
	"time"
)

// TestGroupEagerRejoinFlushPinsRedelivery pins the commit-on-revocation
// bugfix: when an eager member heads back to the join barrier it must
// flush its dirty positions FIRST, so generation N's progress is
// durable before generation N+1 resumes from the committed watermarks.
// With a healthy cluster the flush always lands, so a mid-stream
// rebalance must produce zero redelivery. If the pre-rejoin flush is
// ever dropped, the new generation resumes from stale watermarks and
// this count goes positive.
func TestGroupEagerRejoinFlushPinsRedelivery(t *testing.T) {
	const partitions, perPart = 4, 150
	r := newGroupRig(t, partitions, perPart)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{
		Topic: "t", Auto: true, Dedup: true, PollMax: 16, CaptureEvidence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SetDrainCheck(func() bool { return true })
	if err := g.Join("c0"); err != nil {
		t.Fatal(err)
	}
	r.sim.Schedule(25*time.Millisecond, func() {
		if err := g.Join("c1"); err != nil {
			t.Errorf("join: %v", err)
		}
	})
	r.pump(t, 2*time.Second)
	if !g.Done() {
		t.Fatalf("group not done; states: c0=%s c1=%s", g.State("c0"), g.State("c1"))
	}
	ev := g.Evidence()
	if !ev.Drained {
		t.Fatal("group did not drain cleanly")
	}
	if ev.Rebalances < 3 {
		t.Fatalf("assignments applied = %d, want >= 3 (the rebalance never happened)", ev.Rebalances)
	}
	if ev.Redelivered != 0 {
		t.Fatalf("eager rebalance with healthy commits redelivered %d records, want 0 — generation N progress was not durable before generation N+1 resumed", ev.Redelivered)
	}
	rep := ReconcileRangesKeys(sourceRanges(partitions, perPart), g.ConsumedKeys())
	if rep.NLost != 0 || rep.NDuplicated != 0 {
		t.Fatalf("reconcile: lost=%d dup=%d", rep.NLost, rep.NDuplicated)
	}
}

// TestGroupLagProbeFencedToLiveOwnership pins the probe-fencing bugfix:
// Lag, LagByPartition and Probe must charge backlog only to partitions
// owned in the current generation. A partition mid-handoff (its owner
// crashed, the rebalance not yet complete) has no member accountable
// for it; charging its backlog to the group double counts it the moment
// the new owner's first commit lands. Once the rebalance completes the
// partitions are owned again and their backlog reappears.
func TestGroupLagProbeFencedToLiveOwnership(t *testing.T) {
	const partitions, perPart = 4, 8
	r := newGroupRig(t, partitions, perPart)
	g, err := NewGroup(r.sim, r.co, r.clst, GroupConfig{Topic: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"c0", "c1"} {
		if err := g.Join(name); err != nil {
			t.Fatal(err)
		}
	}
	r.pump(t, 50*time.Millisecond)
	// Drain and commit c0's half so its true lag is zero; c1's half
	// keeps its full backlog uncommitted.
	for drained := 0; drained < 2*perPart; {
		recs, err := g.Poll("c0", 64)
		if err != nil {
			t.Fatal(err)
		}
		drained += len(recs)
		if err := g.Commit("c0"); err != nil {
			t.Fatal(err)
		}
		r.pump(t, 20*time.Millisecond)
	}
	if lag, err := g.Lag(); err != nil || lag != 2*perPart {
		t.Fatalf("stable lag = %d (err=%v), want %d", lag, err, 2*perPart)
	}

	// c1 crashes. Its partitions are ownerless until the session expiry
	// rebalance hands them to c0: the probes must fence them out.
	if err := g.Crash("c1"); err != nil {
		t.Fatal(err)
	}
	lags, err := g.LagByPartition()
	if err != nil {
		t.Fatal(err)
	}
	for p, l := range lags {
		if l != 0 {
			t.Fatalf("mid-handoff LagByPartition[%d] = %d, want 0 (fenced: c0 partitions drained, c1 partitions ownerless)", p, l)
		}
	}
	if pr := g.Probe(); pr.Lag != 0 {
		t.Fatalf("mid-handoff Probe().Lag = %d, want 0", pr.Lag)
	}

	// Session expiry hands c1's partitions to c0; the backlog is again
	// a live member's responsibility and must reappear in full. Manual
	// mode: drive c0's heartbeats so it notices the rebalance and
	// rejoins (the Heartbeat error while it is mid-rejoin is expected).
	for i := 0; i < 16 && len(g.Assignment("c0")) != partitions; i++ {
		_ = g.Heartbeat("c0")
		r.pump(t, 50*time.Millisecond)
	}
	if got := len(g.Assignment("c0")); got != partitions {
		t.Fatalf("c0 owns %d partitions after expiry rebalance, want %d", got, partitions)
	}
	if lag, err := g.Lag(); err != nil || lag != 2*perPart {
		t.Fatalf("post-rebalance lag = %d (err=%v), want %d — the inherited backlog vanished", lag, err, 2*perPart)
	}
}
