package consumer

import (
	"fmt"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/transport"
	"kafkarel/internal/wire"
)

// Client is a network consumer: it speaks the wire protocol over a
// transport connection, like the paper's consumer container joining the
// testbed's bridge network. The in-process Consumer above is the fast
// path used for reconciliation after fault injection stops; Client
// exists for end-to-end runs where the consumer's own network matters.
type Client struct {
	sim       *des.Simulator
	conn      *transport.Conn
	topic     string
	partition int32
	fetchMax  int32
	timeout   time.Duration

	splitter wire.Splitter
	dec      wire.Decoder
	bodyBuf  []byte // request-encoding scratch
	frameBuf []byte // frame-encoding scratch; Endpoint.Send copies
	corr     uint32
	offset   int64
	records  []wire.Record
	timer    *des.Timer
	done     bool
	onDone   func([]wire.Record, error)
	meta     func(wire.MetadataResponse)
}

// ClientOption customises a Client.
type ClientOption func(*Client)

// WithFetchMax sets the per-fetch record cap (default 2048).
func WithFetchMax(n int32) ClientOption {
	return func(c *Client) { c.fetchMax = n }
}

// WithRequestTimeout sets the per-fetch retry timeout (default 2 s).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient wires a consumer to the client side of a connection whose
// server side is a cluster.Server.
func NewClient(sim *des.Simulator, conn *transport.Conn, topic string, partition int32, opts ...ClientOption) (*Client, error) {
	if sim == nil || conn == nil {
		return nil, fmt.Errorf("consumer: nil simulator or connection")
	}
	if topic == "" {
		return nil, fmt.Errorf("consumer: empty topic")
	}
	c := &Client{
		sim:       sim,
		conn:      conn,
		topic:     topic,
		partition: partition,
		fetchMax:  2048,
		timeout:   2 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	c.dec.Topic = topic
	conn.Client.OnReceive(c.onBytes)
	conn.OnReset(func() { c.splitter = wire.Splitter{} })
	c.timer = des.NewTimer(sim, c.onTimeout)
	return c, nil
}

// ConsumeAll starts draining the partition from offset zero; onDone
// fires once with every record (or an error). Drive the simulator to
// completion after calling it.
func (c *Client) ConsumeAll(onDone func([]wire.Record, error)) error {
	if onDone == nil {
		return fmt.Errorf("consumer: nil completion callback")
	}
	if c.onDone != nil {
		return fmt.Errorf("consumer: ConsumeAll already started")
	}
	c.onDone = onDone
	c.sendFetch()
	return nil
}

// FetchMetadata asks the cluster for the topic's partition leadership.
func (c *Client) FetchMetadata(onResp func(wire.MetadataResponse)) error {
	if onResp == nil {
		return fmt.Errorf("consumer: nil metadata callback")
	}
	c.meta = onResp
	c.corr++
	req := wire.MetadataRequest{CorrelationID: c.corr, Topic: c.topic}
	return c.send(wire.APIMetadata, req.Encode(c.bodyBuf[:0]))
}

// send frames an encoded request body through the client's reused
// buffers; Endpoint.Send copies, so both are free for the next request.
func (c *Client) send(api uint16, body []byte) error {
	c.bodyBuf = body
	c.frameBuf = wire.AppendFrame(c.frameBuf[:0], api, body)
	return c.conn.Client.Send(c.frameBuf)
}

func (c *Client) sendFetch() {
	if c.done {
		return
	}
	c.corr++
	req := wire.FetchRequest{
		CorrelationID: c.corr,
		Topic:         c.topic,
		Partition:     c.partition,
		Offset:        c.offset,
		MaxRecords:    c.fetchMax,
	}
	if err := c.send(wire.APIFetch, req.Encode(c.bodyBuf[:0])); err != nil {
		// Broken connection: retry after the timeout; the transport layer
		// resets underneath us via the producer-style reconnect, or the
		// timer keeps trying.
		c.timer.Reset(c.timeout)
		return
	}
	c.timer.Reset(c.timeout)
}

func (c *Client) onTimeout() {
	if c.done {
		return
	}
	if c.conn.Client.Broken() {
		c.conn.Reset()
	}
	c.sendFetch()
}

func (c *Client) onBytes(chunk []byte) {
	frames, err := c.splitter.Push(chunk)
	if err != nil {
		c.splitter = wire.Splitter{}
		return
	}
	for _, f := range frames {
		switch f.API {
		case wire.APIFetch:
			resp, err := c.dec.FetchResponse(f.Body)
			if err != nil {
				continue
			}
			c.onFetchResponse(resp)
		case wire.APIMetadata:
			resp, err := wire.DecodeMetadataResponse(f.Body)
			if err != nil || c.meta == nil {
				continue
			}
			cb := c.meta
			c.meta = nil
			cb(resp)
		}
	}
}

func (c *Client) onFetchResponse(resp wire.FetchResponse) {
	if c.done || resp.CorrelationID != c.corr {
		return // stale response from a retried fetch
	}
	c.timer.Stop()
	if resp.Err != wire.ErrNone {
		c.finish(fmt.Errorf("consumer: fetch at offset %d: %s", c.offset, resp.Err))
		return
	}
	// The response's records alias the splitter buffer and the decoder's
	// record scratch, both reused by the next network delivery; clone them
	// before retaining across simulated time.
	c.records = append(c.records, wire.CloneRecords(resp.Records)...)
	c.offset += int64(len(resp.Records))
	if len(resp.Records) == 0 && c.offset >= resp.HighWatermark {
		c.finish(nil)
		return
	}
	c.sendFetch()
}

func (c *Client) finish(err error) {
	c.done = true
	c.timer.Stop()
	if err != nil {
		c.onDone(nil, err)
		return
	}
	c.onDone(c.records, nil)
}
