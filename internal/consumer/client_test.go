package consumer

import (
	"math/rand/v2"
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/netem"
	"kafkarel/internal/stats"
	"kafkarel/internal/transport"
	"kafkarel/internal/wire"
)

// clientRig builds a seeded cluster reachable over an emulated network.
func clientRig(t *testing.T, keys int, delayMs, loss float64, seed uint64) (*des.Simulator, *Client) {
	t.Helper()
	sim := des.New()
	mk := func(s uint64) netem.Config {
		c := netem.Config{Bandwidth: 100e6}
		if delayMs > 0 {
			c.Delay = stats.Constant{Value: delayMs}
		}
		if loss > 0 {
			l, err := stats.NewBernoulli(loss, rand.New(rand.NewPCG(s, 5)))
			if err != nil {
				t.Fatal(err)
			}
			c.Loss = l
		}
		return c
	}
	path, err := netem.NewPath(sim, mk(seed), mk(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.NewConn(sim, path, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 3); err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(c, conn.Server)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnReset(srv.ResetParser)
	recs := make([]wire.Record, 0, keys)
	for i := 1; i <= keys; i++ {
		recs = append(recs, wire.Record{Key: uint64(i), Payload: []byte("xx")})
	}
	c.Leader("t", 0).Log("t", 0).Append(recs)
	client, err := NewClient(sim, conn, "t", 0, WithFetchMax(64))
	if err != nil {
		t.Fatal(err)
	}
	return sim, client
}

func TestClientConsumeAllCleanNetwork(t *testing.T) {
	sim, client := clientRig(t, 500, 5, 0, 1)
	var got []wire.Record
	var gotErr error
	if err := client.ConsumeAll(func(r []wire.Record, err error) { got, gotErr = r, err }); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunLimit(10_000_000); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got) != 500 {
		t.Fatalf("got %d records, want 500", len(got))
	}
	for i, r := range got {
		if r.Key != uint64(i+1) {
			t.Fatalf("record %d key = %d", i, r.Key)
		}
	}
	rep := Reconcile(500, got)
	if rep.NLost != 0 || rep.NDuplicated != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestClientConsumeAllLossyNetwork(t *testing.T) {
	sim, client := clientRig(t, 300, 10, 0.15, 2)
	var got []wire.Record
	var gotErr error
	if err := client.ConsumeAll(func(r []wire.Record, err error) { got, gotErr = r, err }); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunLimit(50_000_000); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got) != 300 {
		t.Fatalf("got %d records under loss, want 300 (transport must mask loss)", len(got))
	}
}

func TestClientEmptyTopic(t *testing.T) {
	sim, client := clientRig(t, 0, 1, 0, 3)
	var got []wire.Record
	called := false
	if err := client.ConsumeAll(func(r []wire.Record, err error) {
		got, called = r, true
		if err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunLimit(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !called || len(got) != 0 {
		t.Errorf("called=%v records=%d", called, len(got))
	}
}

func TestClientFetchMetadata(t *testing.T) {
	sim, client := clientRig(t, 1, 1, 0, 4)
	var md wire.MetadataResponse
	if err := client.FetchMetadata(func(r wire.MetadataResponse) { md = r }); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunLimit(1_000_000); err != nil {
		t.Fatal(err)
	}
	if md.Topic != "t" || len(md.Partitions) != 1 || md.Partitions[0].Leader != 0 {
		t.Errorf("metadata = %+v", md)
	}
	if err := client.FetchMetadata(nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(nil, nil, "t", 0); err == nil {
		t.Error("nil deps accepted")
	}
	sim, client := clientRig(t, 1, 1, 0, 5)
	_ = sim
	if err := client.ConsumeAll(nil); err == nil {
		t.Error("nil callback accepted")
	}
	if err := client.ConsumeAll(func([]wire.Record, error) {}); err != nil {
		t.Fatal(err)
	}
	if err := client.ConsumeAll(func([]wire.Record, error) {}); err == nil {
		t.Error("double start accepted")
	}
}

func TestClientRetriesThroughOutage(t *testing.T) {
	// 100% loss for the first 3 seconds breaks the fetch; the client's
	// timeout resets the connection and finishes once the network heals.
	sim := des.New()
	path, err := netem.NewPath(sim, netem.Config{}, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	total, err := stats.NewBernoulli(1, rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		t.Fatal(err)
	}
	path.SetLoss(total)
	conn, err := transport.NewConn(sim, path, transport.Config{MaxRetries: 2, InitialRTO: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 1); err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(c, conn.Server)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnReset(srv.ResetParser)
	c.Leader("t", 0).Log("t", 0).Append([]wire.Record{{Key: 1}, {Key: 2}})
	client, err := NewClient(sim, conn, "t", 0, WithRequestTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sim.Schedule(3*time.Second, func() { path.SetLoss(stats.NoLoss{}) })
	var got []wire.Record
	var gotErr error
	if err := client.ConsumeAll(func(r []wire.Record, err error) { got, gotErr = r, err }); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunLimit(10_000_000); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records after outage, want 2", len(got))
	}
}
