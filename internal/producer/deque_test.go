package producer

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rec(key uint64) *record { return &record{key: key} }

func TestDequeFIFO(t *testing.T) {
	var d deque
	for i := uint64(1); i <= 5; i++ {
		d.pushBack(rec(i))
	}
	if d.len() != 5 {
		t.Fatalf("len = %d", d.len())
	}
	for i := uint64(1); i <= 5; i++ {
		if got := d.popFront(); got.key != i {
			t.Fatalf("pop %d = %d", i, got.key)
		}
	}
	if d.popFront() != nil {
		t.Error("pop from empty returned a record")
	}
}

func TestDequePushFront(t *testing.T) {
	var d deque
	d.pushBack(rec(2))
	d.pushFront(rec(1))
	d.pushBack(rec(3))
	want := []uint64{1, 2, 3}
	for _, w := range want {
		if got := d.popFront(); got.key != w {
			t.Fatalf("got %d, want %d", got.key, w)
		}
	}
}

func TestDequePeek(t *testing.T) {
	var d deque
	if d.peekFront() != nil {
		t.Error("peek on empty")
	}
	d.pushBack(rec(7))
	if d.peekFront().key != 7 {
		t.Error("peek wrong")
	}
	if d.len() != 1 {
		t.Error("peek consumed the record")
	}
}

func TestDequeGrowthAcrossWrap(t *testing.T) {
	var d deque
	// Force head to wrap before growth.
	for i := uint64(0); i < 12; i++ {
		d.pushBack(rec(i))
	}
	for i := uint64(0); i < 10; i++ {
		d.popFront()
	}
	for i := uint64(100); i < 140; i++ { // grows twice with a wrapped head
		d.pushBack(rec(i))
	}
	if got := d.popFront(); got.key != 10 {
		t.Fatalf("head after wrap+growth = %d, want 10", got.key)
	}
	if got := d.popFront(); got.key != 11 {
		t.Fatalf("second = %d, want 11", got.key)
	}
	for i := uint64(100); i < 140; i++ {
		if got := d.popFront(); got.key != i {
			t.Fatalf("got %d, want %d", got.key, i)
		}
	}
}

// Property: any interleaving of pushes and pops matches a slice model.
func TestPropertyDequeMatchesModel(t *testing.T) {
	f := func(seed uint64, ops uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		var d deque
		var model []uint64
		next := uint64(0)
		for op := 0; op < int(ops)+10; op++ {
			switch rng.IntN(4) {
			case 0, 1: // pushBack
				d.pushBack(rec(next))
				model = append(model, next)
				next++
			case 2: // pushFront
				d.pushFront(rec(next))
				model = append([]uint64{next}, model...)
				next++
			case 3: // popFront
				got := d.popFront()
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				if got == nil || got.key != model[0] {
					return false
				}
				model = model[1:]
			}
			if d.len() != len(model) {
				return false
			}
			if len(model) > 0 && d.peekFront().key != model[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
