// Package producer implements the Kafka producer model at the heart of
// the paper: a record accumulator with batching (B), a polling intake
// (δ), a per-message delivery budget (T_o) with retries (τ_r), and the
// at-most-once / at-least-once / exactly-once delivery semantics, all
// driving the Fig. 2 message state machine whose Case 1-5 outcomes define
// the reliability metrics P_l and P_d.
package producer

import (
	"fmt"
	"math/rand/v2"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/stats"
	"kafkarel/internal/transport"
	"kafkarel/internal/wire"
)

// Source supplies the upstream application's messages. Next returns the
// next payload, or ok=false when the stream is exhausted.
type Source interface {
	Next() ([]byte, bool)
}

// batch groups records that travel in one produce request. Retries
// resend the batch unchanged with its original sequence number, which is
// what lets an idempotent broker de-duplicate (Kafka retries whole
// batches the same way).
type batch struct {
	records  []*record
	seq      uint64
	attempts int
	// lastBackoff is the batch's previous retry sleep, the anchor of the
	// decorrelated-jitter walk when RetryBackoffMax is set.
	lastBackoff time.Duration
}

// minDeadline returns the earliest delivery deadline in the batch.
func (b *batch) minDeadline() time.Duration {
	min := b.records[0].deadline
	for _, r := range b.records[1:] {
		if r.deadline < min {
			min = r.deadline
		}
	}
	return min
}

// request tracks one in-flight produce request. Requests are pooled on
// the producer: the timeout timer is created once per pooled request and
// re-armed on reuse, with its callback reading the current correlation
// ID from the request rather than capturing it.
type request struct {
	p     *Producer
	batch *batch
	corr  uint32
	timer *des.Timer
}

// batchJob parks a batch across an asynchronous gap — its serialisation
// delay or its retry backoff. Jobs are pooled on the producer so neither
// path allocates a closure per batch. A job rather than a field on the
// producer is required for serialisation: draining the source can
// re-enter kickSender from inside collectRecords, leaving two
// serialisations pending at once.
type batchJob struct {
	p *Producer
	b *batch
}

// Producer drives messages from a Source into the cluster over a
// transport connection. Create with New; run by starting the simulator.
type Producer struct {
	sim    *des.Simulator
	cfg    Config
	costs  CostModel
	conn   *transport.Conn
	source Source

	nextKey   uint64
	queue     deque
	inFlight  map[uint32]*request
	corr      uint32
	splitter  wire.Splitter
	batchSeq  uint64
	retries   uint64 // batch (re)sends beyond the first attempt, for Probe
	outcomes  []Outcome
	counts    Counts
	latency   stats.Summary
	staleOver time.Duration // timeliness S; deliveries slower than this are stale
	stale     uint64

	senderBusy     bool
	lingerArmed    bool
	sendRetryArmed bool
	unsent         []*batch // serialised batches blocked on the socket
	retryPending   int      // records waiting out a retry backoff
	retryBatches   int      // batches waiting out a retry backoff
	retryRand      *rand.Rand
	reconnecting   bool
	intakeDone     bool
	intakePaused   bool
	finished       bool
	onComplete     func()

	// Observability (nil-safe handles; see internal/obs).
	cEnqueued    *obs.Counter
	cBatchesSent *obs.Counter
	cBatchRetry  *obs.Counter
	cReqTimeouts *obs.Counter
	cDelivered   *obs.Counter
	cLost        *obs.Counter
	cRespErrors  [wire.NumErrorCodes]*obs.Counter
	hQueueDepth  *obs.Histogram
	hSpanSend    *obs.Histogram
	hSpanAck     *obs.Histogram
	trace        *obs.Tracer

	// Hot-path scratch and free lists. The producer is single-threaded
	// (one simulator drives it), so plain slices suffice; event callbacks
	// are package-level functions scheduled with des.AfterFunc, and the
	// fields below park their state between arming and firing.
	intakePayload []byte        // payload between source.Next and the intake event
	bodyBuf       []byte        // reused produce-request body encoding
	frameBuf      []byte        // reused frame encoding (Conn.Send copies it)
	encRecords    []wire.Record // reused wire-record scratch for buildRequest
	decoder       wire.Decoder  // reused response decoding (topic interning)
	freeReq       []*request
	freeBatch     []*batch
	freeRec       []*record
	freeJob       []*batchJob
}

// Event callbacks, scheduled via des.AfterFunc with the producer (or a
// pooled job) as argument so that arming one allocates nothing.

func intakeArrive(a any) { a.(*Producer).intakeArrived() }

func serialDone(a any) {
	j := a.(*batchJob)
	p, b := j.p, j.b
	p.putJob(j)
	p.senderBusy = false
	p.trySend(b)
}

func lingerFire(a any) {
	p := a.(*Producer)
	p.lingerArmed = false
	p.kickSender()
}

func sendRetryFire(a any) {
	p := a.(*Producer)
	p.sendRetryArmed = false
	p.flushUnsent()
	p.kickSender()
}

func retryFire(a any) {
	j := a.(*batchJob)
	p, b := j.p, j.b
	p.putJob(j)
	p.retryPending -= len(b.records)
	p.retryBatches--
	p.trySend(b)
}

// --- free lists ----------------------------------------------------------
//
// Every pooled object has exactly one terminal sink (records: resolution;
// batches: the resolve loops and the empty-after-expiry path; requests:
// response, timeout, or broken socket), so a double put would require a
// double resolution, which the message state machine already forbids.

func (p *Producer) getRecord() *record {
	if n := len(p.freeRec); n > 0 {
		r := p.freeRec[n-1]
		p.freeRec = p.freeRec[:n-1]
		*r = record{}
		return r
	}
	return new(record)
}

func (p *Producer) getBatch() *batch {
	if n := len(p.freeBatch); n > 0 {
		b := p.freeBatch[n-1]
		p.freeBatch = p.freeBatch[:n-1]
		return b
	}
	return new(batch)
}

func (p *Producer) putBatch(b *batch) {
	for i := range b.records {
		b.records[i] = nil
	}
	b.records = b.records[:0]
	b.seq, b.attempts, b.lastBackoff = 0, 0, 0
	p.freeBatch = append(p.freeBatch, b)
}

func (p *Producer) getRequest() *request {
	if n := len(p.freeReq); n > 0 {
		rq := p.freeReq[n-1]
		p.freeReq = p.freeReq[:n-1]
		return rq
	}
	rq := &request{p: p}
	rq.timer = des.NewTimer(p.sim, func() { rq.p.onRequestTimeout(rq.corr) })
	return rq
}

func (p *Producer) putRequest(rq *request) {
	rq.timer.Stop()
	rq.batch = nil
	p.freeReq = append(p.freeReq, rq)
}

func (p *Producer) getJob(b *batch) *batchJob {
	if n := len(p.freeJob); n > 0 {
		j := p.freeJob[n-1]
		p.freeJob = p.freeJob[:n-1]
		j.b = b
		return j
	}
	return &batchJob{p: p, b: b}
}

func (p *Producer) putJob(j *batchJob) {
	j.b = nil
	p.freeJob = append(p.freeJob, j)
}

// Option customises a Producer.
type Option func(*Producer)

// WithCompletion registers fn to run once when every source message has
// reached a terminal state.
func WithCompletion(fn func()) Option {
	return func(p *Producer) { p.onComplete = fn }
}

// WithTimeliness sets the message validity S (feature (b)); deliveries
// with latency above it are counted stale.
func WithTimeliness(s time.Duration) Option {
	return func(p *Producer) { p.staleOver = s }
}

// WithOutcomeLog enables per-record outcome recording (memory-heavy for
// large experiments; aggregates are always kept).
func WithOutcomeLog() Option {
	return func(p *Producer) { p.outcomes = make([]Outcome, 0, 1024) }
}

// WithObs attaches the per-run observability bundle. Handles are
// resolved once here; a nil bundle leaves them nil, which disables the
// instrumentation at the cost of a nil check per site.
func WithObs(o *obs.Obs) Option {
	return func(p *Producer) {
		p.cEnqueued = o.Counter(obs.MRecordsEnqueued)
		p.cBatchesSent = o.Counter(obs.MBatchesSent)
		p.cBatchRetry = o.Counter(obs.MBatchRetries)
		p.cReqTimeouts = o.Counter(obs.MRequestTimeouts)
		for code := 1; code < wire.NumErrorCodes; code++ {
			p.cRespErrors[code] = o.Counter(obs.ProduceErrorMetric(wire.ErrorCode(code).String()))
		}
		p.hQueueDepth = o.Histogram(obs.MQueueDepth, obs.QueueDepthBounds)
		p.cDelivered = o.Counter(obs.MRecordsDelivered)
		p.cLost = o.Counter(obs.MRecordsLost)
		p.hSpanSend = o.Histogram(obs.MSpanSend, obs.LatencyBounds)
		p.hSpanAck = o.Histogram(obs.MSpanAck, obs.LatencyBounds)
		p.trace = o.Tracer()
	}
}

// WithRetryRand installs the RNG that draws retry-backoff jitter when
// Config.RetryBackoffMax is set. Callers derive it from the run's seed
// so that parallel and sequential executions stay byte-identical.
func WithRetryRand(rng *rand.Rand) Option {
	return func(p *Producer) { p.retryRand = rng }
}

// New wires a producer to a source and a connection. The producer owns
// the client endpoint's receive path.
func New(sim *des.Simulator, cfg Config, costs CostModel, conn *transport.Conn, source Source, opts ...Option) (*Producer, error) {
	if sim == nil || costs == nil || conn == nil || source == nil {
		return nil, fmt.Errorf("producer: nil dependency")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Producer{
		sim:      sim,
		cfg:      cfg,
		costs:    costs,
		conn:     conn,
		source:   source,
		inFlight: make(map[uint32]*request),
	}
	for _, opt := range opts {
		opt(p)
	}
	p.decoder.Topic = cfg.Topic
	conn.Client.OnReceive(p.onBytes)
	conn.Client.OnBroken(p.onBroken)
	conn.OnReset(func() { p.splitter = wire.Splitter{} })
	return p, nil
}

// Start begins the intake loop. Call once before running the simulator.
func (p *Producer) Start() {
	p.scheduleIntake()
}

// Done reports whether every source message reached a terminal state.
func (p *Producer) Done() bool { return p.finished }

// Config returns the producer's current configuration.
func (p *Producer) Config() Config { return p.cfg }

// Reconfigure swaps the tunable parameters (semantics, batch size, poll
// interval, message timeout, retries, request timeout) at runtime — the
// paper's dynamic-configuration mechanism (Sec. V). Structural fields
// (topic, partition, producer ID) cannot change. Records already in
// flight or queued keep the deadlines they were admitted with.
func (p *Producer) Reconfigure(cfg Config) error {
	cfg.Topic = p.cfg.Topic
	cfg.Partition = p.cfg.Partition
	cfg.Partitions = p.cfg.Partitions
	cfg.Partitioner = p.cfg.Partitioner
	cfg.KeyBase = p.cfg.KeyBase
	cfg.ProducerID = p.cfg.ProducerID
	if err := cfg.Validate(); err != nil {
		return err
	}
	p.cfg = cfg
	p.resumeIntake()
	p.kickSender()
	return nil
}

// Counts returns the producer-view terminal-state aggregates.
func (p *Producer) Counts() Counts { return p.counts }

// Outcomes returns per-record outcomes when WithOutcomeLog was set.
func (p *Producer) Outcomes() []Outcome { return p.outcomes }

// Latency returns the delivery-latency summary in milliseconds (T_p of
// delivered messages).
func (p *Producer) Latency() stats.Summary { return p.latency }

// Stale returns how many delivered messages exceeded the timeliness S.
func (p *Producer) Stale() uint64 { return p.stale }

// QueueLen returns the number of records waiting in the accumulator.
func (p *Producer) QueueLen() int { return p.queue.len() }

// Acquired returns how many source messages the producer has taken in so
// far; it is the ground-truth denominator when an experiment is cut off
// before the source drains.
func (p *Producer) Acquired() uint64 { return p.nextKey }

// Probe returns the producer state a timeline sampler reads: the
// instantaneous accumulator depth and in-flight batch count plus
// cumulative record outcomes. It works independently of the obs
// registry, so a timeline stays usable on a metrics-disabled run.
func (p *Producer) Probe() obs.ProducerProbe {
	return obs.ProducerProbe{
		QueueDepth:      p.queue.len(),
		InFlightBatches: len(p.inFlight),
		Enqueued:        p.nextKey,
		Acked:           p.counts.Delivered,
		Lost:            p.counts.Lost,
		BatchRetries:    p.retries,
	}
}

// --- intake -------------------------------------------------------------

func (p *Producer) scheduleIntake() {
	if p.intakeDone || p.intakePaused {
		return
	}
	if p.backpressured() {
		p.intakePaused = true
		return
	}
	payload, ok := p.source.Next()
	if !ok {
		p.intakeDone = true
		p.kickSender() // flush a partial batch below BatchSize
		p.maybeComplete()
		return
	}
	cost := p.costs.IOTime(len(payload)) + p.cfg.PollInterval
	// At most one intake event is pending at a time (the loop reschedules
	// itself from the callback), so the payload can park on the producer.
	p.intakePayload = payload
	p.sim.AfterFunc(cost, intakeArrive, p)
}

// intakeArrived admits the parked payload as a queued record.
func (p *Producer) intakeArrived() {
	payload := p.intakePayload
	p.intakePayload = nil
	p.nextKey++
	now := p.sim.Now()
	r := p.getRecord()
	r.key = p.cfg.KeyBase + p.nextKey
	r.payload = payload
	r.arrived = now
	r.deadline = now + p.cfg.MessageTimeout
	r.state = StateReady
	p.queue.pushBack(r)
	p.cEnqueued.Inc()
	p.hQueueDepth.Observe(int64(p.queue.len()))
	p.trace.Emit(obs.LayerProducer, obs.EvRecordEnqueue, r.key, int64(p.queue.len()), 0, "")
	p.kickSender()
	p.scheduleIntake()
}

// backpressured reports whether intake must pause. Only acknowledged
// semantics have the feedback channel that lets the client block the
// caller (Kafka's bounded buffer); fire-and-forget intake never pauses.
func (p *Producer) backpressured() bool {
	if p.cfg.Semantics == AtMostOnce {
		return false
	}
	return p.queue.len() >= p.cfg.QueueLimit
}

func (p *Producer) resumeIntake() {
	if p.intakePaused && !p.backpressured() {
		p.intakePaused = false
		p.scheduleIntake()
	}
}

// --- sender -------------------------------------------------------------

func (p *Producer) kickSender() {
	if p.senderBusy || p.finished || len(p.unsent) > 0 || p.reconnecting {
		return
	}
	// Batches waiting out a retry backoff hold their in-flight slot:
	// Kafka mutes a partition while one of its batches awaits a resend,
	// which is what makes max.in.flight=1 an ordering guarantee even
	// across retries.
	if p.cfg.Semantics != AtMostOnce && len(p.inFlight)+p.retryBatches >= p.cfg.MaxInFlight {
		return
	}
	b := p.getBatch()
	b.records = p.collectRecords(b.records)
	if len(b.records) == 0 {
		p.putBatch(b)
		p.maybeComplete()
		return
	}
	p.batchSeq++
	b.seq = p.batchSeq
	// Serialisation occupies the send path for the per-record CPU cost.
	var serial time.Duration
	for _, r := range b.records {
		serial += p.costs.SerTime(len(r.payload))
	}
	p.senderBusy = true
	p.sim.AfterFunc(serial, serialDone, p.getJob(b))
}

// collectRecords pops expired records (resolving them lost) and then up
// to BatchSize ready records into dst, honouring the linger rule: a
// partial batch is only taken once its oldest record has lingered, or
// when no more input is coming. dst comes from a pooled batch so the
// steady state allocates nothing.
func (p *Producer) collectRecords(dst []*record) []*record {
	p.dropExpired()
	n := p.queue.len()
	if n == 0 {
		return dst
	}
	if n < p.cfg.BatchSize && !p.intakeDone {
		oldest := p.queue.peekFront()
		if p.sim.Now()-oldest.arrived < p.cfg.LingerTime {
			p.armLinger(oldest)
			return dst
		}
	}
	take := p.cfg.BatchSize
	if take > p.queue.len() {
		take = p.queue.len()
	}
	for i := 0; i < take; i++ {
		dst = append(dst, p.queue.popFront())
	}
	p.resumeIntake()
	return dst
}

func (p *Producer) armLinger(oldest *record) {
	if p.lingerArmed {
		return
	}
	p.lingerArmed = true
	wait := p.cfg.LingerTime - (p.sim.Now() - oldest.arrived)
	if wait < 0 {
		wait = 0
	}
	p.sim.AfterFunc(wait, lingerFire, p)
}

// dropExpired resolves queue-head records whose delivery budget elapsed
// while they waited — the paper's Figs. 5-6 loss mechanism.
func (p *Producer) dropExpired() {
	now := p.sim.Now()
	for {
		head := p.queue.peekFront()
		if head == nil || head.deadline > now {
			break
		}
		p.queue.popFront()
		p.resolveLost(head)
	}
	p.resumeIntake()
}

// trySend pushes a serialised batch towards the socket, queueing it when
// the socket has no room.
func (p *Producer) trySend(b *batch) {
	if p.sendNow(b) {
		p.flushUnsent()
		p.kickSender()
		return
	}
	p.unsent = append(p.unsent, b)
	if !p.reconnecting {
		p.armSendRetry()
	}
}

// sendNow attempts one socket write. It returns true when the batch is
// fully handled (written, or entirely expired) and false when the socket
// blocked it.
func (p *Producer) sendNow(b *batch) bool {
	now := p.sim.Now()
	if b.attempts == 0 {
		// First attempt: records that expired while serialised or queued
		// behind a stalled socket are dropped individually; sending them
		// would waste degraded bandwidth on dead messages. The batch has
		// not been exposed to the broker yet, so shrinking it is safe.
		live := b.records[:0]
		for _, r := range b.records {
			if r.deadline <= now {
				p.resolveLost(r)
				continue
			}
			live = append(live, r)
		}
		b.records = live
	} else if b.minDeadline() <= now {
		// A retry whose budget ran out while blocked: the whole batch
		// fails together (Kafka expires batches, not records).
		for _, r := range b.records {
			p.resolveLost(r)
		}
		b.records = b.records[:0]
	}
	if len(b.records) == 0 {
		p.putBatch(b)
		p.maybeComplete()
		return true
	}

	req := p.buildRequest(b)
	p.bodyBuf = req.Encode(p.bodyBuf[:0])
	p.frameBuf = wire.AppendFrame(p.frameBuf[:0], wire.APIProduce, p.bodyBuf)
	if err := p.conn.Client.Send(p.frameBuf); err != nil {
		// ErrBufferFull: socket backpressure — the records' deadlines
		// keep running, which is how a stalled TCP connection translates
		// into message loss. ErrBroken: onBroken's reconnect flow will
		// flush the queue.
		return false
	}
	p.afterSend(req.CorrelationID, b)
	return true
}

func (p *Producer) armSendRetry() {
	if p.sendRetryArmed {
		return
	}
	p.sendRetryArmed = true
	p.sim.AfterFunc(2*time.Millisecond, sendRetryFire, p)
}

// flushUnsent re-attempts blocked batches in order.
func (p *Producer) flushUnsent() {
	for len(p.unsent) > 0 {
		if !p.sendNow(p.unsent[0]) {
			if !p.reconnecting {
				p.armSendRetry()
			}
			return
		}
		p.unsent[0] = nil
		p.unsent = p.unsent[1:]
	}
}

// fnv1a64 hashes a record key for keyed partitioning (FNV-1a over the
// key's 8 little-endian bytes) — fixed here, not hash/maphash, so the
// partition a key maps to is stable across runs and Go versions.
func fnv1a64(key uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= key & 0xff
		h *= prime64
		key >>= 8
	}
	return h
}

func (p *Producer) buildRequest(b *batch) wire.ProduceRequest {
	p.corr++
	// The producer id is stamped on every batch, not just idempotent
	// ones: brokers only dedup when the Idempotent flag is set, but the
	// id keeps per-producer sequence streams apart so the duplicate-
	// append observation stays sound when several producers share a
	// partition.
	wb := wire.RecordBatch{
		BaseSequence: b.seq,
		ProducerID:   p.cfg.ProducerID,
		Idempotent:   p.cfg.Semantics == ExactlyOnce,
	}
	// The wire records only live until the request is encoded, so they
	// are built in a reused scratch slice.
	recs := p.encRecords[:0]
	for _, r := range b.records {
		recs = append(recs, wire.Record{
			Key:       r.key,
			Timestamp: r.arrived,
			Payload:   r.payload,
		})
	}
	p.encRecords = recs
	wb.Records = recs
	acks := wire.AcksLeader
	switch p.cfg.Semantics {
	case AtMostOnce:
		acks = wire.AcksNone
	case ExactlyOnce:
		acks = wire.AcksAll
	}
	partition := p.cfg.Partition
	if p.cfg.Partitions > 1 {
		// Pinned per batch so retries land on the same partition
		// (idempotent sequences are tracked per partition by the broker):
		// round-robin keys off the batch sequence, keyed routing hashes
		// the first record key, both stable across resends.
		switch p.cfg.Partitioner {
		case PartitionKeyed:
			partition += int32(fnv1a64(b.records[0].key) % uint64(p.cfg.Partitions))
		default:
			partition += int32(b.seq % uint64(p.cfg.Partitions))
		}
	}
	return wire.ProduceRequest{
		CorrelationID: p.corr,
		Topic:         p.cfg.Topic,
		Partition:     partition,
		Acks:          acks,
		Batch:         wb,
	}
}

func (p *Producer) afterSend(corr uint32, b *batch) {
	b.attempts++
	now := p.sim.Now()
	for _, r := range b.records {
		r.attempts++
		if r.attempts == 1 {
			// One span sample per record reaching the wire; retries of the
			// same record keep the first-send latency.
			p.hSpanSend.Observe(int64(now - r.arrived))
		}
	}
	p.cBatchesSent.Inc()
	if b.attempts > 1 {
		p.retries++
		p.cBatchRetry.Inc()
	}
	p.trace.Emit(obs.LayerProducer, obs.EvBatchSend, b.seq, int64(len(b.records)), int64(b.attempts), "")
	if p.cfg.Semantics == AtMostOnce {
		// Fire-and-forget: handing bytes to the transport is success from
		// the producer's point of view (transition I of Fig. 2). Ground
		// truth is established by the consumer.
		for _, r := range b.records {
			p.resolveDelivered(r)
		}
		p.putBatch(b)
		p.maybeComplete()
		return
	}
	rq := p.getRequest()
	rq.batch, rq.corr = b, corr
	rq.timer.Reset(p.cfg.RequestTimeout)
	p.inFlight[corr] = rq
}

// --- responses and retries ----------------------------------------------

func (p *Producer) onBytes(chunk []byte) {
	frames, err := p.splitter.Push(chunk)
	if err != nil {
		p.splitter = wire.Splitter{}
		return
	}
	for _, f := range frames {
		if f.API != wire.APIProduce {
			continue
		}
		resp, err := p.decoder.ProduceResponse(f.Body)
		if err != nil {
			continue
		}
		p.onResponse(resp)
	}
}

func (p *Producer) onResponse(resp wire.ProduceResponse) {
	rq, ok := p.inFlight[resp.CorrelationID]
	if !ok {
		// Late response to a request already timed out: the records were
		// retried or failed; if they were also persisted by this earlier
		// attempt the consumer will observe the duplicate (Case 5).
		return
	}
	delete(p.inFlight, resp.CorrelationID)
	b := rq.batch
	p.putRequest(rq) // stops the timer; rq is detached before any reuse point
	if resp.Err == wire.ErrNone {
		p.trace.Emit(obs.LayerProducer, obs.EvBatchAck, b.seq, int64(len(b.records)), int64(resp.CorrelationID), "")
		for _, r := range b.records {
			p.resolveDelivered(r)
		}
		p.putBatch(b)
		p.maybeComplete()
		p.kickSender()
		return
	}
	if int(resp.Err) < len(p.cRespErrors) {
		p.cRespErrors[resp.Err].Inc()
	}
	if resp.Err.Retriable() {
		p.retryOrFail(b)
		return
	}
	p.trace.Emit(obs.LayerProducer, obs.EvBatchError, b.seq, 0, int64(resp.Err), resp.Err.String())
	for _, r := range b.records {
		p.resolveLost(r)
	}
	p.putBatch(b)
	p.maybeComplete()
	p.kickSender()
}

func (p *Producer) onRequestTimeout(corr uint32) {
	rq, ok := p.inFlight[corr]
	if !ok {
		return
	}
	delete(p.inFlight, corr)
	p.cReqTimeouts.Inc()
	p.trace.Emit(obs.LayerProducer, obs.EvRequestTimeout, rq.batch.seq, int64(corr), 0, "")
	b := rq.batch
	p.putRequest(rq)
	p.retryOrFail(b)
}

// nextBackoff returns the sleep before the batch's next retry. The
// default is the fixed RetryBackoff; with RetryBackoffMax set and a
// jitter RNG installed it performs a decorrelated-jitter walk —
// uniform in [base, 3·previous], capped — so synchronized retry storms
// spread out while short outages still retry quickly.
func (p *Producer) nextBackoff(b *batch) time.Duration {
	base := p.cfg.RetryBackoff
	if p.cfg.RetryBackoffMax <= 0 || p.retryRand == nil {
		return base
	}
	prev := b.lastBackoff
	if prev < base {
		prev = base
	}
	hi := 3 * prev
	if hi > p.cfg.RetryBackoffMax {
		hi = p.cfg.RetryBackoffMax
	}
	d := base
	if hi > base {
		d = base + time.Duration(p.retryRand.Int64N(int64(hi-base)+1))
	}
	b.lastBackoff = d
	return d
}

// retryOrFail resends the batch after the backoff if its retry budget
// and delivery deadline allow, and resolves it lost (Case 3) otherwise.
func (p *Producer) retryOrFail(b *batch) {
	now := p.sim.Now()
	retriesUsed := b.attempts - 1
	backoff := p.nextBackoff(b)
	if retriesUsed < p.cfg.effectiveRetries() && now+backoff < b.minDeadline() {
		p.trace.Emit(obs.LayerProducer, obs.EvBatchRetry, b.seq, int64(backoff), int64(b.attempts+1), "")
		p.retryPending += len(b.records)
		p.retryBatches++
		// The batch is muted while it waits (it sits in no other
		// structure), so its record count is stable until retryFire.
		p.sim.AfterFunc(backoff, retryFire, p.getJob(b))
		return
	}
	p.trace.Emit(obs.LayerProducer, obs.EvBatchFail, b.seq, int64(len(b.records)), int64(b.attempts), "")
	for _, r := range b.records {
		p.resolveLost(r)
	}
	p.putBatch(b)
	p.maybeComplete()
	p.kickSender()
}

func (p *Producer) onBroken(error) {
	if p.reconnecting {
		return
	}
	p.reconnecting = true
	// All in-flight requests are dead with the socket.
	pending := make([]*request, 0, len(p.inFlight))
	for _, rq := range p.inFlight {
		rq.timer.Stop()
		pending = append(pending, rq)
	}
	clear(p.inFlight)
	for _, rq := range pending {
		b := rq.batch
		p.putRequest(rq)
		p.retryOrFail(b)
	}
	p.sim.After(p.cfg.ReconnectDelay, func() {
		p.reconnecting = false
		p.conn.Reset()
		p.flushUnsent()
		p.kickSender()
	})
}

// --- resolution ---------------------------------------------------------

func (p *Producer) resolveDelivered(r *record) {
	if r.state == StateDelivered || r.state == StateLost {
		return
	}
	r.state = StateDelivered
	if r.attempts > 1 {
		r.caseNum = Case4
	} else {
		r.caseNum = Case1
	}
	r.resolved = p.sim.Now()
	lat := r.resolved - r.arrived
	p.latency.Add(float64(lat) / float64(time.Millisecond))
	if p.staleOver > 0 && lat > p.staleOver {
		p.stale++
	}
	p.counts.Delivered++
	p.cDelivered.Inc()
	p.hSpanAck.Observe(int64(lat))
	p.trace.Emit(obs.LayerProducer, obs.EvRecordDelivered, r.key, int64(r.attempts), int64(r.caseNum), "")
	p.record(r)
}

func (p *Producer) resolveLost(r *record) {
	if r.state == StateDelivered || r.state == StateLost {
		return
	}
	r.state = StateLost
	if r.attempts == 0 {
		r.caseNum = Case2
	} else {
		r.caseNum = Case3
	}
	r.resolved = p.sim.Now()
	p.counts.Lost++
	p.cLost.Inc()
	p.trace.Emit(obs.LayerProducer, obs.EvRecordLost, r.key, int64(r.attempts), int64(r.caseNum), "")
	p.record(r)
}

func (p *Producer) record(r *record) {
	p.counts.Total++
	p.counts.ByCase[r.caseNum]++
	if p.outcomes != nil {
		p.outcomes = append(p.outcomes, Outcome{
			Key:      r.key,
			State:    r.state,
			Case:     r.caseNum,
			Attempts: r.attempts,
			Latency:  r.resolved - r.arrived,
		})
	}
	// Resolution is a record's unique terminal sink: every owner (queue,
	// batch) relinquishes the record on the path that resolves it, so it
	// can be recycled here. It is zeroed again on reuse.
	p.freeRec = append(p.freeRec, r)
}

func (p *Producer) maybeComplete() {
	if p.finished || !p.intakeDone {
		return
	}
	if p.queue.len() > 0 || len(p.inFlight) > 0 || p.senderBusy ||
		len(p.unsent) > 0 || p.retryPending > 0 {
		return
	}
	p.finished = true
	if p.onComplete != nil {
		p.onComplete()
	}
}
