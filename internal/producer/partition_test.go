package producer_test

import (
	"testing"

	"kafkarel/internal/consumer"
	"kafkarel/internal/producer"
)

// consumePartition drains one partition of the rig's topic.
func consumePartition(t *testing.T, r *rig, p int32) []uint64 {
	t.Helper()
	cons, err := consumer.New(r.clst, r.prod.Config().Topic, p)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := cons.ConsumeAll()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, len(recs))
	for i, rec := range recs {
		keys[i] = rec.Key
	}
	return keys
}

// TestKeyedPartitionerRoutesByKey checks keyed routing: with B=1 every
// batch is one record, so each key must land on the FNV-determined
// partition, the spread must cover several partitions, and re-running
// the experiment must route identically (the hash is fixed, not
// seeded).
func TestKeyedPartitionerRoutesByKey(t *testing.T) {
	const parts = 4
	run := func() [parts][]uint64 {
		cfg := baseConfig()
		cfg.Partitions = parts
		cfg.Partitioner = producer.PartitionKeyed
		r := buildRig(t, cfg, 200, rigOpts{delayMs: 1, partitions: parts})
		rep := r.runMulti(t, parts)
		if rep.NLost != 0 || rep.NDuplicated != 0 {
			t.Fatalf("report = %+v", rep)
		}
		var got [parts][]uint64
		for p := int32(0); p < parts; p++ {
			got[p] = consumePartition(t, r, p)
		}
		return got
	}
	got := run()
	nonEmpty := 0
	for p := 0; p < parts; p++ {
		if len(got[p]) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("keyed routing used %d of %d partitions; hash is not spreading", nonEmpty, parts)
	}
	again := run()
	for p := 0; p < parts; p++ {
		if len(got[p]) != len(again[p]) {
			t.Fatalf("partition %d: %d vs %d records across identical runs", p, len(got[p]), len(again[p]))
		}
		for i := range got[p] {
			if got[p][i] != again[p][i] {
				t.Fatalf("partition %d record %d: key %d vs %d", p, i, got[p][i], again[p][i])
			}
		}
	}
}

// TestKeyBaseOffsetsKeys checks that a producer with KeyBase k emits
// keys k+1..k+N and that ReconcileRanges accepts them while plain
// Reconcile (expecting 1..N) flags them foreign.
func TestKeyBaseOffsetsKeys(t *testing.T) {
	cfg := baseConfig()
	cfg.KeyBase = 1000
	r := buildRig(t, cfg, 50, rigOpts{delayMs: 1})
	r.prod.Start()
	if err := r.sim.RunLimit(50_000_000); err != nil {
		t.Fatal(err)
	}
	keys := consumePartition(t, r, 0)
	if len(keys) != 50 {
		t.Fatalf("consumed %d records, want 50", len(keys))
	}
	for i, k := range keys {
		if k != 1000+uint64(i)+1 {
			t.Fatalf("key[%d] = %d, want %d", i, k, 1000+i+1)
		}
	}
	if got := r.prod.Acquired(); got != 50 {
		t.Errorf("Acquired = %d, want the un-offset count 50", got)
	}
}

// runMulti is rig.run generalised to multi-partition topics.
func (r *rig) runMulti(t testing.TB, partitions int32) consumer.Report {
	t.Helper()
	r.prod.Start()
	if err := r.sim.RunLimit(50_000_000); err != nil {
		t.Fatalf("simulation did not quiesce: %v", err)
	}
	if !r.prod.Done() {
		t.Fatalf("producer not done: counts=%+v", r.prod.Counts())
	}
	recs, err := consumer.ConsumeAllPartitions(r.clst, r.prod.Config().Topic, partitions)
	if err != nil {
		t.Fatal(err)
	}
	return consumer.Reconcile(uint64(r.count), recs)
}
