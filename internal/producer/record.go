package producer

import (
	"fmt"
	"time"
)

// State is a message's position in the Fig. 2 state diagram.
type State int

// Message states.
const (
	StateReady State = iota + 1
	StateDelivered
	StateLost
	StateDuplicated
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateDelivered:
		return "delivered"
	case StateLost:
		return "lost"
	case StateDuplicated:
		return "duplicated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Case is the Table I transition sequence a message followed, as
// observable from the producer. Case 5 (duplicate) is generally only
// distinguishable from Case 4 at the consumer; the testbed reconciles.
type Case int

// Table I cases. CaseUnresolved marks in-progress messages.
const (
	CaseUnresolved Case = iota
	Case1               // delivered on the initial send
	Case2               // lost on the initial send, no retry succeeded before it was ever sent
	Case3               // lost after retries were exhausted or timed out
	Case4               // delivered by a retry
	Case5               // delivered more than once (retry duplicated it)
)

// String implements fmt.Stringer.
func (c Case) String() string {
	if c == CaseUnresolved {
		return "unresolved"
	}
	return fmt.Sprintf("case%d", int(c))
}

// record tracks one message through the producer.
type record struct {
	key      uint64
	payload  []byte
	arrived  time.Duration // when the message arrived at the producer
	deadline time.Duration // arrived + MessageTimeout
	attempts int
	state    State
	caseNum  Case
	resolved time.Duration // when the record reached a terminal state
}

// Outcome is the terminal result of one message, exported for
// reconciliation and analysis.
type Outcome struct {
	Key      uint64
	State    State
	Case     Case
	Attempts int
	// Latency is T_p: arrival at the producer to resolution. For lost
	// messages it is the time until the producer gave up.
	Latency time.Duration
}

// Counts aggregates terminal states, the producer's own view of the
// Table I distribution. ByCase is indexed by Case (0 = CaseUnresolved,
// which stays zero for completed runs); a fixed array keeps Counts
// comparable and its iteration order deterministic, unlike a map.
type Counts struct {
	Total     uint64
	Delivered uint64
	Lost      uint64
	ByCase    [Case5 + 1]uint64
}

// LossRate returns the producer-observed P_l.
func (c Counts) LossRate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Lost) / float64(c.Total)
}

// CaseCount is one row of the Table I distribution.
type CaseCount struct {
	Case  Case
	Count uint64
	Share float64 // fraction of Total (0 when Total is 0)
}

// Cases returns the producer-observable Table I rows (Case 1-4) in
// order, with each case's share of the total. This is the single tally
// used by the figures package and the CLIs; Case 5 needs consumer-side
// reconciliation and is reported separately by the testbed.
func (c Counts) Cases() []CaseCount {
	rows := make([]CaseCount, 0, 4)
	for cs := Case1; cs <= Case4; cs++ {
		row := CaseCount{Case: cs, Count: c.ByCase[cs]}
		if c.Total > 0 {
			row.Share = float64(row.Count) / float64(c.Total)
		}
		rows = append(rows, row)
	}
	return rows
}
