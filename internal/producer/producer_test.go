package producer_test

import (
	"math/rand/v2"
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/consumer"
	"kafkarel/internal/des"
	"kafkarel/internal/netem"
	"kafkarel/internal/producer"
	"kafkarel/internal/stats"
	"kafkarel/internal/transport"
	"kafkarel/internal/workload"
)

// rig is a complete miniature testbed: producer → transport → netem →
// cluster, plus a consumer for ground truth.
type rig struct {
	sim   *des.Simulator
	clst  *cluster.Cluster
	srv   *cluster.Server
	conn  *transport.Conn
	prod  *producer.Producer
	path  *netem.Path
	count int
}

type rigOpts struct {
	delayMs    float64
	loss       float64
	seed       uint64
	msgSize    int
	partitions int
	costs      producer.CostModel
	transport  transport.Config
}

func buildRig(t testing.TB, cfg producer.Config, n int, o rigOpts, popts ...producer.Option) *rig {
	t.Helper()
	sim := des.New()
	mkLink := func(s uint64) netem.Config {
		c := netem.Config{Bandwidth: 100e6}
		if o.delayMs > 0 {
			c.Delay = stats.Constant{Value: o.delayMs}
		}
		if o.loss > 0 {
			l, err := stats.NewBernoulli(o.loss, rand.New(rand.NewPCG(s, 9)))
			if err != nil {
				t.Fatal(err)
			}
			c.Loss = l
		}
		return c
	}
	path, err := netem.NewPath(sim, mkLink(o.seed), mkLink(o.seed+1))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.NewConn(sim, path, o.transport)
	if err != nil {
		t.Fatal(err)
	}
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	parts := o.partitions
	if parts == 0 {
		parts = 1
	}
	if err := clst.CreateTopic(cfg.Topic, parts, 3); err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewServer(clst, conn.Server)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnReset(srv.ResetParser)
	size := o.msgSize
	if size == 0 {
		size = 200
	}
	src, err := workload.NewFixedSource(size, n)
	if err != nil {
		t.Fatal(err)
	}
	costs := o.costs
	if costs == nil {
		costs = producer.FixedCosts{IO: 100 * time.Microsecond, Ser: 100 * time.Microsecond}
	}
	prod, err := producer.New(sim, cfg, costs, conn, src, popts...)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{sim: sim, clst: clst, srv: srv, conn: conn, prod: prod, path: path, count: n}
}

func (r *rig) run(t testing.TB) consumer.Report {
	t.Helper()
	r.prod.Start()
	if err := r.sim.RunLimit(50_000_000); err != nil {
		t.Fatalf("simulation did not quiesce: %v", err)
	}
	if !r.prod.Done() {
		t.Fatalf("producer not done: counts=%+v pending=%d", r.prod.Counts(), r.sim.Pending())
	}
	cons, err := consumer.New(r.clst, r.prod.Config().Topic, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := cons.ConsumeAll()
	if err != nil {
		t.Fatal(err)
	}
	return consumer.Reconcile(uint64(r.count), recs)
}

func baseConfig() producer.Config {
	cfg := producer.DefaultConfig()
	cfg.Topic = "t"
	return cfg
}

func TestAtLeastOnceHappyPath(t *testing.T) {
	cfg := baseConfig()
	r := buildRig(t, cfg, 100, rigOpts{delayMs: 1})
	rep := r.run(t)
	if rep.NLost != 0 || rep.NDuplicated != 0 {
		t.Errorf("report = %+v", rep)
	}
	counts := r.prod.Counts()
	if counts.Total != 100 || counts.Delivered != 100 {
		t.Errorf("counts = %+v", counts)
	}
	if counts.ByCase[producer.Case1] != 100 {
		t.Errorf("Case1 = %d, want 100", counts.ByCase[producer.Case1])
	}
}

func TestAtMostOnceHappyPath(t *testing.T) {
	cfg := baseConfig()
	cfg.Semantics = producer.AtMostOnce
	r := buildRig(t, cfg, 100, rigOpts{delayMs: 1})
	rep := r.run(t)
	if rep.NLost != 0 || rep.NDuplicated != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestExactlyOnceHappyPath(t *testing.T) {
	cfg := baseConfig()
	cfg.Semantics = producer.ExactlyOnce
	cfg.ProducerID = 77
	r := buildRig(t, cfg, 50, rigOpts{delayMs: 1})
	rep := r.run(t)
	if rep.NLost != 0 || rep.NDuplicated != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestBatchingReducesRequests(t *testing.T) {
	requests := func(batchSize int) uint64 {
		cfg := baseConfig()
		cfg.BatchSize = batchSize
		cfg.LingerTime = 50 * time.Millisecond
		r := buildRig(t, cfg, 40, rigOpts{delayMs: 1})
		rep := r.run(t)
		if rep.NLost != 0 {
			t.Fatalf("B=%d lost %d", batchSize, rep.NLost)
		}
		var total uint64
		for id := int32(0); id < 3; id++ {
			total += r.clst.Broker(id).Stats().ProduceRequests
		}
		return total
	}
	r1 := requests(1)
	r5 := requests(5)
	if r5 >= r1 {
		t.Errorf("B=5 used %d requests, B=1 used %d; batching did not amortise", r5, r1)
	}
}

func TestLingerFlushesPartialBatch(t *testing.T) {
	cfg := baseConfig()
	cfg.BatchSize = 100 // never fills from 10 messages
	cfg.LingerTime = 20 * time.Millisecond
	r := buildRig(t, cfg, 10, rigOpts{delayMs: 1})
	rep := r.run(t)
	if rep.NLost != 0 {
		t.Errorf("lost %d with linger flush", rep.NLost)
	}
}

func TestQueueExpiryLosses(t *testing.T) {
	// Service far slower than intake: at-most-once has no feedback, so
	// the queue grows and records blow their delivery budget.
	cfg := baseConfig()
	cfg.Semantics = producer.AtMostOnce
	cfg.MessageTimeout = 50 * time.Millisecond
	costs := producer.FixedCosts{IO: time.Millisecond, Ser: 10 * time.Millisecond}
	r := buildRig(t, cfg, 200, rigOpts{delayMs: 1, costs: costs})
	rep := r.run(t)
	if rep.NLost == 0 {
		t.Fatal("no losses despite 10x overload and 50ms budget")
	}
	counts := r.prod.Counts()
	if counts.ByCase[producer.Case2] == 0 {
		t.Error("expired-before-send records not classified Case2")
	}
	if counts.Lost != rep.NLost {
		t.Errorf("producer lost %d, consumer says %d", counts.Lost, rep.NLost)
	}
}

func TestBackpressureBoundsAtLeastOnceLoss(t *testing.T) {
	// Same overload as above but with acknowledged semantics: intake
	// pauses at the queue limit, so almost nothing expires (Fig. 5's
	// at-least-once curve).
	cfg := baseConfig()
	cfg.MessageTimeout = 500 * time.Millisecond
	cfg.QueueLimit = 10
	costs := producer.FixedCosts{IO: time.Millisecond, Ser: 10 * time.Millisecond}
	r := buildRig(t, cfg, 200, rigOpts{delayMs: 1, costs: costs})
	rep := r.run(t)
	if rep.NLost != 0 {
		t.Errorf("at-least-once with backpressure lost %d", rep.NLost)
	}
}

func TestRetryRecoversFromOutage(t *testing.T) {
	cfg := baseConfig()
	cfg.MessageTimeout = 5 * time.Second
	cfg.MaxRetries = 10
	cfg.RequestTimeout = 100 * time.Millisecond
	cfg.RetryBackoff = 50 * time.Millisecond
	r := buildRig(t, cfg, 20, rigOpts{delayMs: 1})
	// All brokers down for the first 300 ms: initial attempts vanish.
	for id := int32(0); id < 3; id++ {
		if err := r.clst.FailBroker(id); err != nil {
			t.Fatal(err)
		}
	}
	r.sim.Schedule(300*time.Millisecond, func() {
		for id := int32(0); id < 3; id++ {
			if err := r.clst.RecoverBroker(id); err != nil {
				t.Error(err)
			}
		}
	})
	rep := r.run(t)
	if rep.NLost != 0 {
		t.Fatalf("lost %d despite recovery within budget", rep.NLost)
	}
	counts := r.prod.Counts()
	if counts.ByCase[producer.Case4] == 0 {
		t.Error("no Case4 (delivered by retry) records")
	}
}

func TestRetriesExhaustedIsCase3(t *testing.T) {
	cfg := baseConfig()
	cfg.MessageTimeout = 10 * time.Second
	cfg.MaxRetries = 2
	cfg.RequestTimeout = 50 * time.Millisecond
	cfg.RetryBackoff = 10 * time.Millisecond
	r := buildRig(t, cfg, 10, rigOpts{delayMs: 1})
	for id := int32(0); id < 3; id++ {
		if err := r.clst.FailBroker(id); err != nil {
			t.Fatal(err)
		}
	}
	// Bring the cluster back long after every retry budget is spent, so
	// the consumer can still fetch (an empty log).
	r.sim.Schedule(30*time.Second, func() {
		for id := int32(0); id < 3; id++ {
			if err := r.clst.RecoverBroker(id); err != nil {
				t.Error(err)
			}
		}
	})
	rep := r.run(t)
	if rep.NLost != 10 {
		t.Fatalf("lost %d, want all 10", rep.NLost)
	}
	counts := r.prod.Counts()
	if counts.ByCase[producer.Case3] != 10 {
		t.Errorf("Case3 = %d, want 10", counts.ByCase[producer.Case3])
	}
	// τ_r retries = attempts-1 must not exceed MaxRetries.
	for _, o := range r.prod.Outcomes() {
		if o.Attempts-1 > cfg.MaxRetries {
			t.Errorf("record %d used %d retries, max %d", o.Key, o.Attempts-1, cfg.MaxRetries)
		}
	}
}

func TestSpuriousTimeoutDuplicates(t *testing.T) {
	// Round trip (160 ms) exceeds the request timeout (100 ms): every
	// first attempt is spuriously retried while the original still
	// lands — the paper's Case 5.
	cfg := baseConfig()
	cfg.RequestTimeout = 100 * time.Millisecond
	cfg.MessageTimeout = 5 * time.Second
	cfg.RetryBackoff = 5 * time.Millisecond
	cfg.MaxRetries = 3
	r := buildRig(t, cfg, 30, rigOpts{delayMs: 80})
	rep := r.run(t)
	if rep.NLost != 0 {
		t.Errorf("lost %d", rep.NLost)
	}
	if rep.NDuplicated == 0 {
		t.Error("no duplicates despite spurious retries")
	}
	if rep.Pd() <= 0 {
		t.Error("Pd = 0")
	}
}

func TestExactlyOnceSuppressesDuplicates(t *testing.T) {
	cfg := baseConfig()
	cfg.Semantics = producer.ExactlyOnce
	cfg.ProducerID = 5
	cfg.RequestTimeout = 100 * time.Millisecond
	cfg.MessageTimeout = 5 * time.Second
	cfg.RetryBackoff = 5 * time.Millisecond
	cfg.MaxRetries = 3
	r := buildRig(t, cfg, 30, rigOpts{delayMs: 80})
	rep := r.run(t)
	if rep.NDuplicated != 0 {
		t.Errorf("idempotent producer duplicated %d messages", rep.NDuplicated)
	}
	if rep.NLost != 0 {
		t.Errorf("lost %d", rep.NLost)
	}
}

func TestOutcomeLogAndLatency(t *testing.T) {
	cfg := baseConfig()
	r := buildRig(t, cfg, 25, rigOpts{delayMs: 10}, producer.WithOutcomeLog(),
		producer.WithTimeliness(time.Millisecond))
	rep := r.run(t)
	if rep.NLost != 0 {
		t.Fatalf("lost %d", rep.NLost)
	}
	outs := r.prod.Outcomes()
	if len(outs) != 25 {
		t.Fatalf("outcomes = %d, want 25", len(outs))
	}
	for _, o := range outs {
		if o.State != producer.StateDelivered || o.Latency <= 0 {
			t.Errorf("outcome %+v", o)
		}
	}
	lat := r.prod.Latency()
	if lat.N() != 25 {
		t.Errorf("latency samples = %d", lat.N())
	}
	// Every delivery takes >= 20ms round trip >> 1ms timeliness.
	if r.prod.Stale() != 25 {
		t.Errorf("stale = %d, want 25", r.prod.Stale())
	}
}

func TestCompletionCallback(t *testing.T) {
	cfg := baseConfig()
	done := false
	r := buildRig(t, cfg, 5, rigOpts{delayMs: 1}, producer.WithCompletion(func() { done = true }))
	r.run(t)
	if !done {
		t.Error("completion callback not invoked")
	}
}

func TestReconfigure(t *testing.T) {
	cfg := baseConfig()
	r := buildRig(t, cfg, 10, rigOpts{delayMs: 1})
	next := r.prod.Config()
	next.BatchSize = 4
	next.Topic = "hijack" // must be ignored
	if err := r.prod.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	if got := r.prod.Config(); got.BatchSize != 4 || got.Topic != "t" {
		t.Errorf("config after reconfigure = %+v", got)
	}
	bad := r.prod.Config()
	bad.BatchSize = -1
	if err := r.prod.Reconfigure(bad); err == nil {
		t.Error("invalid reconfigure accepted")
	}
	rep := r.run(t)
	if rep.NLost != 0 {
		t.Errorf("lost %d after reconfigure", rep.NLost)
	}
}

func TestBrokenConnectionRecovery(t *testing.T) {
	// 100% loss for the first 400 ms breaks the connection; after the
	// network heals the producer reconnects and delivers.
	cfg := baseConfig()
	cfg.MessageTimeout = 30 * time.Second
	cfg.MaxRetries = 50
	cfg.RequestTimeout = 200 * time.Millisecond
	tc := transport.Config{MaxRetries: 2, InitialRTO: 100 * time.Millisecond}
	r := buildRig(t, cfg, 10, rigOpts{delayMs: 1, transport: tc})
	loss, err := stats.NewBernoulli(1, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	r.path.SetLoss(loss)
	r.sim.Schedule(400*time.Millisecond, func() { r.path.SetLoss(stats.NoLoss{}) })
	rep := r.run(t)
	if rep.NLost != 0 {
		t.Errorf("lost %d after network healed within budget", rep.NLost)
	}
}

func TestLossyNetworkEndToEnd(t *testing.T) {
	// Intake paced well below the degraded network capacity, a request
	// timeout above TCP's recovery stalls, and a bounded queue: mild loss
	// must be almost fully absorbed by retransmission and retries.
	cfg := baseConfig()
	cfg.MessageTimeout = 5 * time.Second
	cfg.MaxRetries = 8
	cfg.RequestTimeout = 1500 * time.Millisecond
	cfg.QueueLimit = 50
	cfg.PollInterval = 50 * time.Millisecond
	r := buildRig(t, cfg, 300, rigOpts{delayMs: 5, loss: 0.05, seed: 3})
	rep := r.run(t)
	// 5% loss with an intake rate well below the degraded TCP capacity:
	// retransmission and retries absorb nearly everything (the paper's
	// "TCP performs well below L≈8%" regime, Sec. IV-D).
	if rep.Pl() > 0.05 {
		t.Errorf("Pl = %v under mild loss with retries", rep.Pl())
	}
}

func TestHeavyLossCollapses(t *testing.T) {
	// Same setup at 20% loss with a fast intake: TCP recovery is
	// RTO-bound (small flows lack dup-ack cover), degraded capacity
	// falls below the intake rate, and the accumulator's delivery
	// budgets expire en masse — the paper's Fig. 7 collapse regime.
	cfg := baseConfig()
	cfg.MessageTimeout = 2 * time.Second
	cfg.MaxRetries = 8
	cfg.RequestTimeout = 1500 * time.Millisecond
	cfg.QueueLimit = 50
	cfg.PollInterval = 10 * time.Millisecond
	r := buildRig(t, cfg, 300, rigOpts{delayMs: 5, loss: 0.20, seed: 5})
	rep := r.run(t)
	if rep.Pl() < 0.20 {
		t.Errorf("Pl = %v at 20%% loss under full load; expected collapse", rep.Pl())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (consumer.Report, producer.Counts) {
		cfg := baseConfig()
		cfg.MessageTimeout = time.Second
		r := buildRig(t, cfg, 200, rigOpts{delayMs: 10, loss: 0.15, seed: 42})
		rep := r.run(t)
		return rep, r.prod.Counts()
	}
	repA, cntA := run()
	repB, cntB := run()
	if repA != repB {
		t.Errorf("reports differ: %+v vs %+v", repA, repB)
	}
	if cntA.Total != cntB.Total || cntA.Delivered != cntB.Delivered || cntA.Lost != cntB.Lost {
		t.Errorf("counts differ: %+v vs %+v", cntA, cntB)
	}
}

func TestAccountingInvariants(t *testing.T) {
	// Across a grid of adverse conditions, the books must balance:
	// every source message terminal, producer counts consistent, and the
	// consumer view compatible with the producer view.
	for _, tc := range []struct {
		name string
		loss float64
		sem  producer.Semantics
	}{
		{"amo-clean", 0, producer.AtMostOnce},
		{"alo-clean", 0, producer.AtLeastOnce},
		{"amo-lossy", 0.2, producer.AtMostOnce},
		{"alo-lossy", 0.2, producer.AtLeastOnce},
		{"eo-lossy", 0.2, producer.ExactlyOnce},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			cfg.Semantics = tc.sem
			if tc.sem == producer.ExactlyOnce {
				cfg.ProducerID = 9
			}
			cfg.MessageTimeout = time.Second
			const n = 150
			r := buildRig(t, cfg, n, rigOpts{delayMs: 5, loss: tc.loss, seed: 7})
			rep := r.run(t)
			counts := r.prod.Counts()
			if counts.Total != n {
				t.Errorf("total = %d, want %d", counts.Total, n)
			}
			if counts.Delivered+counts.Lost != counts.Total {
				t.Errorf("delivered %d + lost %d != total %d", counts.Delivered, counts.Lost, counts.Total)
			}
			var byCase uint64
			for _, v := range counts.ByCase {
				byCase += v
			}
			if byCase != counts.Total {
				t.Errorf("case sum %d != total %d", byCase, counts.Total)
			}
			if rep.Distinct+rep.NLost != n {
				t.Errorf("distinct %d + lost %d != %d", rep.Distinct, rep.NLost, n)
			}
			if rep.Foreign != 0 {
				t.Errorf("foreign keys: %d", rep.Foreign)
			}
			// The consumer can only hold keys the producer attempted.
			if rep.Distinct > counts.Total {
				t.Errorf("consumer has more keys than source")
			}
		})
	}
}
