package producer

import (
	"fmt"
	"time"

	"kafkarel/internal/wire"
)

// Semantics selects the delivery guarantee, the paper's feature (e).
type Semantics int

// Delivery semantics. AtMostOnce is fire-and-forget (acks=0, no
// retries); AtLeastOnce acknowledges and retries (acks=1); ExactlyOnce is
// the idempotent-producer extension (acks=all + broker-side batch
// de-duplication), which the paper lists as requiring "additional
// computing resources" (Sec. II).
const (
	AtMostOnce Semantics = iota + 1
	AtLeastOnce
	ExactlyOnce
)

// String implements fmt.Stringer.
func (s Semantics) String() string {
	switch s {
	case AtMostOnce:
		return "at-most-once"
	case AtLeastOnce:
		return "at-least-once"
	case ExactlyOnce:
		return "exactly-once"
	default:
		return fmt.Sprintf("semantics(%d)", int(s))
	}
}

// Partitioner selects how a multi-partition producer routes batches.
type Partitioner int

// Partitioner modes. PartitionRoundRobin (the zero value, the
// historical behaviour) spreads batches round-robin by batch sequence —
// Kafka's default partitioner for keyless records. PartitionKeyed
// hashes the batch's first record key (FNV-1a), Kafka's keyed routing:
// a key always lands on the same partition, and because the hash input
// is stable the batch stays pinned to one partition across retries
// (idempotent sequences are tracked per partition by the broker).
const (
	PartitionRoundRobin Partitioner = iota
	PartitionKeyed
)

// String implements fmt.Stringer.
func (p Partitioner) String() string {
	switch p {
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionKeyed:
		return "keyed"
	default:
		return fmt.Sprintf("partitioner(%d)", int(p))
	}
}

// Config carries every producer parameter the paper's prediction model
// treats as a feature, plus the fixed plumbing parameters.
type Config struct {
	Topic     string
	Partition int32
	// Partitions, when above 1, spreads batches over the partitions
	// [Partition, Partition+Partitions) using the Partitioner mode. The
	// testbed's reliability metrics are partition-agnostic (the consumer
	// reconciles the whole topic).
	Partitions int32
	// Partitioner is the routing mode for Partitions > 1 (default
	// round-robin, the historical behaviour).
	Partitioner Partitioner
	// KeyBase offsets this producer's record keys: records carry keys
	// Base+1, Base+2, ... so several producers can share one topic with
	// disjoint key ranges and the consumer can still reconcile exactly
	// (see consumer.ReconcileRanges). Zero — keys 1..N — is the
	// single-producer default.
	KeyBase uint64

	// Semantics is feature (e).
	Semantics Semantics
	// BatchSize B, feature (f): records accumulated per produce request.
	BatchSize int
	// PollInterval δ, feature (g): the wait between source acquisitions.
	// Zero means full load — the producer acquires as fast as its I/O
	// path allows (Sec. IV-C).
	PollInterval time.Duration
	// MessageTimeout T_o, feature (h): the total budget from a record's
	// arrival at the producer until delivery, retries included.
	MessageTimeout time.Duration
	// MaxRetries τ_r bounds retry attempts under at-least-once.
	MaxRetries int
	// RetryBackoff is the pause before a retry attempt. With
	// RetryBackoffMax zero (the default) every retry waits exactly this
	// long, the historical fixed-backoff behaviour.
	RetryBackoff time.Duration
	// RetryBackoffMax, when positive, enables exponential backoff with
	// decorrelated jitter: each retry of a batch sleeps a uniformly-drawn
	// duration between RetryBackoff and three times the batch's previous
	// sleep, capped here (Kafka's retry.backoff.max.ms with jitter). The
	// draws come from the RNG installed via WithRetryRand, so runs remain
	// deterministic and reproducible from their seed.
	RetryBackoffMax time.Duration
	// RequestTimeout is the per-attempt acknowledgement wait. A response
	// arriving after this deadline triggers a retry even though the
	// original may still be delivered — the paper's Case 5 duplicate
	// mechanism.
	RequestTimeout time.Duration
	// MaxInFlight bounds concurrently outstanding produce requests.
	MaxInFlight int
	// QueueLimit bounds the accumulator (records). Under acknowledged
	// semantics the intake pauses at the limit (Kafka's bounded
	// buffer.memory blocking send()); under at-most-once there is no
	// feedback and the bound is ignored — the record queue grows and
	// MessageTimeout expiry is the only relief, which is exactly the
	// Figs. 5-6 loss mechanism.
	QueueLimit int
	// LingerTime caps how long a partial batch waits for more records
	// before being sent anyway.
	LingerTime time.Duration
	// ProducerID, when nonzero with ExactlyOnce, identifies this producer
	// for broker-side de-duplication.
	ProducerID uint64
	// ReconnectDelay is the pause before reopening a broken connection.
	ReconnectDelay time.Duration
}

// DefaultConfig mirrors the paper's experimental defaults: streaming
// (B=1), at-least-once, 1.5 s message timeout.
func DefaultConfig() Config {
	return Config{
		Topic:          "stream",
		Partition:      0,
		Semantics:      AtLeastOnce,
		BatchSize:      1,
		MessageTimeout: 1500 * time.Millisecond,
		MaxRetries:     5,
		RetryBackoff:   20 * time.Millisecond,
		RequestTimeout: 500 * time.Millisecond,
		MaxInFlight:    5,
		QueueLimit:     500,
		LingerTime:     5 * time.Millisecond,
		ReconnectDelay: 50 * time.Millisecond,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Topic == "":
		return fmt.Errorf("producer: empty topic")
	case c.Semantics < AtMostOnce || c.Semantics > ExactlyOnce:
		return fmt.Errorf("producer: unknown semantics %d", c.Semantics)
	case c.BatchSize <= 0:
		return fmt.Errorf("producer: batch size %d <= 0", c.BatchSize)
	case c.PollInterval < 0:
		return fmt.Errorf("producer: negative poll interval")
	case c.MessageTimeout <= 0:
		return fmt.Errorf("producer: message timeout must be positive")
	case c.MaxRetries < 0:
		return fmt.Errorf("producer: negative max retries")
	case c.RetryBackoffMax > 0 && c.RetryBackoffMax < c.RetryBackoff:
		return fmt.Errorf("producer: retry backoff max %v below base %v", c.RetryBackoffMax, c.RetryBackoff)
	case c.RequestTimeout <= 0:
		return fmt.Errorf("producer: request timeout must be positive")
	case c.MaxInFlight <= 0:
		return fmt.Errorf("producer: max in flight %d <= 0", c.MaxInFlight)
	case c.QueueLimit <= 0:
		return fmt.Errorf("producer: queue limit %d <= 0", c.QueueLimit)
	case c.Partitions < 0:
		return fmt.Errorf("producer: negative partition count")
	case c.Partitioner < PartitionRoundRobin || c.Partitioner > PartitionKeyed:
		return fmt.Errorf("producer: unknown partitioner %d", c.Partitioner)
	case c.Semantics == ExactlyOnce && c.ProducerID == 0:
		return fmt.Errorf("producer: exactly-once requires a nonzero producer ID")
	case c.Semantics == ExactlyOnce && c.MaxInFlight > wire.SeqCacheSize:
		// Brokers remember the last wire.SeqCacheSize batches per
		// producer; beyond that a late retry can no longer be deduped
		// (Kafka caps idempotent pipelining at 5 for the same reason).
		return fmt.Errorf("producer: exactly-once max in flight %d exceeds the broker sequence cache (%d)",
			c.MaxInFlight, wire.SeqCacheSize)
	default:
		return nil
	}
}

// acksFor maps semantics to the wire-level acknowledgement mode.
func (c Config) effectiveRetries() int {
	if c.Semantics == AtMostOnce {
		return 0
	}
	return c.MaxRetries
}

// CostModel supplies the producer's per-record processing costs; the
// testbed provides a calibrated implementation. IOTime is the source
// acquisition cost per record (the "highest speed that I/O devices can
// handle" under full load); SerTime is the serialisation cost incurred by
// the send path. Implementations may jitter their samples; both are
// functions of the message size M.
type CostModel interface {
	IOTime(payloadBytes int) time.Duration
	SerTime(payloadBytes int) time.Duration
}

// FixedCosts is a deterministic CostModel for tests.
type FixedCosts struct {
	IO  time.Duration
	Ser time.Duration
}

// IOTime implements CostModel.
func (f FixedCosts) IOTime(int) time.Duration { return f.IO }

// SerTime implements CostModel.
func (f FixedCosts) SerTime(int) time.Duration { return f.Ser }
