// Transactional producer client: the consume-process-produce side of
// Kafka's exactly-once pipelines. A TxnProducer binds to a
// transactional.id, obtains a fenced (producer id, epoch) identity from
// the transaction coordinator, and then runs Begin / Send / SendOffset /
// Commit-or-Abort cycles. Every batch it produces carries the identity
// and the transactional flag, so brokers fence zombie writes; every
// coordinator answer of ErrProducerFenced is fatal by contract — a
// fenced producer stops, it never retries into a newer instance's
// transaction.
package producer

import (
	"fmt"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/wire"
)

// TxnProducerConfig tunes a transactional producer.
type TxnProducerConfig struct {
	// TransactionalID is the durable identity (required).
	TransactionalID string
	// TxnTimeout is requested from the coordinator at init (zero picks
	// the coordinator default).
	TxnTimeout time.Duration
	// RequestTimeout re-issues an operation whose answer vanished, e.g.
	// a produce to a leader that died mid-request (default 20ms).
	RequestTimeout time.Duration
	// RetryBackoff delays re-issue after a retriable error (default 2ms).
	RetryBackoff time.Duration
	// MaxAttempts bounds retries per operation (default 64); exhaustion
	// surfaces ErrRequestTimedOut.
	MaxAttempts int
}

func (c *TxnProducerConfig) applyDefaults() error {
	if c.TransactionalID == "" {
		return fmt.Errorf("producer: transactional id required")
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 20 * time.Millisecond
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 64
	}
	return nil
}

// TxnProducer is a transactional producer instance. Not safe for
// concurrent use; the DES is single-threaded.
type TxnProducer struct {
	sim  *des.Simulator
	clst *cluster.Cluster
	tc   *coordinator.TxnCoordinator
	cfg  TxnProducerConfig

	pid    uint64
	epoch  uint32
	seq    uint64
	inited bool
	inTxn  bool
	fenced bool
	killed bool
}

// NewTxnProducer builds a transactional producer over direct handles to
// the cluster (data path) and the transaction coordinator (control
// path). Call Init before the first transaction.
func NewTxnProducer(sim *des.Simulator, clst *cluster.Cluster, tc *coordinator.TxnCoordinator, cfg TxnProducerConfig) (*TxnProducer, error) {
	if sim == nil || clst == nil || tc == nil {
		return nil, fmt.Errorf("producer: txn producer needs sim, cluster, coordinator")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &TxnProducer{sim: sim, clst: clst, tc: tc, cfg: cfg}, nil
}

// ProducerID returns the coordinator-assigned producer id (valid after
// Init).
func (p *TxnProducer) ProducerID() uint64 { return p.pid }

// Epoch returns the current producer epoch (valid after Init).
func (p *TxnProducer) Epoch() uint32 { return p.epoch }

// Fenced reports whether the producer has hit the fatal
// ErrProducerFenced: a newer instance of its transactional.id exists
// and this one must stop.
func (p *TxnProducer) Fenced() bool { return p.fenced }

// InTxn reports whether a transaction is open.
func (p *TxnProducer) InTxn() bool { return p.inTxn }

// Kill models the producer's process dying: pending operations stop
// retrying and their callbacks never fire. Whatever transaction was open
// dangles until the coordinator times it out or a successor's
// InitProducerId aborts it.
func (p *TxnProducer) Kill() { p.killed = true }

// txnOp drives one logical operation through issue / retry / timeout.
// Operations are idempotent at their destination (sequenced batches,
// deduplicated registrations), so a re-issue after a vanished answer is
// safe.
type txnOp struct {
	p        *TxnProducer
	issue    func(cb func(wire.ErrorCode))
	done     func(wire.ErrorCode)
	timer    *des.Timer
	attempts int
	finished bool
}

func (p *TxnProducer) runOp(issue func(cb func(wire.ErrorCode)), done func(wire.ErrorCode)) {
	op := &txnOp{p: p, issue: issue, done: done}
	op.timer = des.NewTimer(p.sim, op.timeoutFire)
	op.start()
}

func (op *txnOp) start() {
	if op.p.killed {
		op.abandon()
		return
	}
	op.attempts++
	op.timer.Reset(op.p.cfg.RequestTimeout)
	op.issue(op.complete)
}

// abandon drops the operation without a callback: the process is dead
// and nobody is listening.
func (op *txnOp) abandon() {
	op.finished = true
	op.timer.Stop()
}

func (op *txnOp) complete(code wire.ErrorCode) {
	if op.finished {
		return
	}
	if op.p.killed {
		op.abandon()
		return
	}
	switch {
	case code == wire.ErrNone:
		op.finish(code)
	case code == wire.ErrProducerFenced:
		op.p.fenced = true
		op.finish(code)
	case code.Retriable() && op.attempts < op.p.cfg.MaxAttempts:
		op.timer.Stop()
		sleep := des.NewTimer(op.p.sim, func() {
			if !op.finished {
				op.start()
			}
		})
		sleep.Reset(op.p.cfg.RetryBackoff)
	default:
		op.finish(code)
	}
}

func (op *txnOp) timeoutFire() {
	if op.finished {
		return
	}
	if op.p.killed {
		op.abandon()
		return
	}
	if op.attempts >= op.p.cfg.MaxAttempts {
		op.finish(wire.ErrRequestTimedOut)
		return
	}
	op.start()
}

func (op *txnOp) finish(code wire.ErrorCode) {
	op.finished = true
	op.timer.Stop()
	if op.done != nil {
		op.done(code)
	}
}

// Init obtains (or refreshes) the producer identity. Any transaction a
// previous holder of the transactional.id left open is aborted by the
// coordinator before done fires.
func (p *TxnProducer) Init(done func(wire.ErrorCode)) {
	p.runOp(func(cb func(wire.ErrorCode)) {
		p.tc.HandleInitProducerID(wire.InitProducerIDRequest{
			TransactionalID: p.cfg.TransactionalID,
			TxnTimeout:      p.cfg.TxnTimeout,
		}, func(resp wire.InitProducerIDResponse) {
			if resp.Err == wire.ErrNone {
				p.pid, p.epoch, p.inited = resp.ProducerID, resp.ProducerEpoch, true
			}
			cb(resp.Err)
		})
	}, done)
}

// Begin opens a transaction. Purely client-side, as in Kafka: the
// coordinator learns of the transaction at the first AddPartitions or
// offset commit.
func (p *TxnProducer) Begin() error {
	if p.fenced {
		return fmt.Errorf("producer: %s fenced", p.cfg.TransactionalID)
	}
	if !p.inited {
		return fmt.Errorf("producer: %s not initialised", p.cfg.TransactionalID)
	}
	if p.inTxn {
		return fmt.Errorf("producer: %s transaction already open", p.cfg.TransactionalID)
	}
	p.inTxn = true
	return nil
}

// failFast short-circuits operations on a fenced or idle producer.
func (p *TxnProducer) failFast(done func(wire.ErrorCode)) bool {
	if p.fenced {
		if done != nil {
			done(wire.ErrProducerFenced)
		}
		return true
	}
	if !p.inTxn {
		if done != nil {
			done(wire.ErrInvalidTxnState)
		}
		return true
	}
	return false
}

// Send registers the partition with the transaction and produces one
// transactional batch to it (acks=all, idempotent, epoch-stamped). done
// fires when the batch is fully replicated or the operation fails.
func (p *TxnProducer) Send(topic string, partition int32, recs []wire.Record, done func(wire.ErrorCode)) {
	if p.failFast(done) {
		return
	}
	epoch := p.epoch
	p.runOp(func(cb func(wire.ErrorCode)) {
		p.tc.HandleAddPartitionsToTxn(wire.AddPartitionsToTxnRequest{
			TransactionalID: p.cfg.TransactionalID,
			ProducerID:      p.pid, ProducerEpoch: epoch,
			Topic: topic, Partition: partition,
		}, func(resp wire.AddPartitionsToTxnResponse) { cb(resp.Err) })
	}, func(code wire.ErrorCode) {
		if code != wire.ErrNone {
			if done != nil {
				done(code)
			}
			return
		}
		p.seq++
		seq := p.seq
		p.runOp(func(cb func(wire.ErrorCode)) {
			p.clst.HandleProduce(wire.ProduceRequest{
				Topic:     topic,
				Partition: partition,
				Acks:      wire.AcksAll,
				Batch: wire.RecordBatch{
					ProducerID:    p.pid,
					ProducerEpoch: epoch,
					BaseSequence:  seq,
					Idempotent:    true,
					Transactional: true,
					Records:       recs,
				},
			}, func(resp wire.ProduceResponse) { cb(resp.Err) })
		}, done)
	})
}

// SendOffset stages one consumed offset inside the transaction: the
// group's committed position moves to exactly this value when (and only
// when) the transaction commits.
func (p *TxnProducer) SendOffset(group, topic string, partition int32, offset int64, done func(wire.ErrorCode)) {
	if p.failFast(done) {
		return
	}
	epoch := p.epoch
	p.runOp(func(cb func(wire.ErrorCode)) {
		p.tc.HandleAddOffsetsToTxn(wire.AddOffsetsToTxnRequest{
			TransactionalID: p.cfg.TransactionalID,
			ProducerID:      p.pid, ProducerEpoch: epoch,
			Group: group,
		}, func(resp wire.AddOffsetsToTxnResponse) { cb(resp.Err) })
	}, func(code wire.ErrorCode) {
		if code != wire.ErrNone {
			if done != nil {
				done(code)
			}
			return
		}
		p.runOp(func(cb func(wire.ErrorCode)) {
			p.tc.HandleTxnOffsetCommit(wire.TxnOffsetCommitRequest{
				TransactionalID: p.cfg.TransactionalID,
				ProducerID:      p.pid, ProducerEpoch: epoch,
				Group: group, Topic: topic, Partition: partition, Offset: offset,
			}, func(resp wire.TxnOffsetCommitResponse) { cb(resp.Err) })
		}, done)
	})
}

// Commit ends the transaction with a commit decision; done fires once
// the coordinator has driven markers and offsets to every destination.
func (p *TxnProducer) Commit(done func(wire.ErrorCode)) { p.endTxn(true, done) }

// Abort ends the transaction with an abort decision: its records become
// permanently invisible to read_committed readers and its staged
// offsets are discarded.
func (p *TxnProducer) Abort(done func(wire.ErrorCode)) { p.endTxn(false, done) }

func (p *TxnProducer) endTxn(commit bool, done func(wire.ErrorCode)) {
	if p.failFast(done) {
		return
	}
	p.inTxn = false
	epoch := p.epoch
	p.runOp(func(cb func(wire.ErrorCode)) {
		p.tc.HandleEndTxn(wire.EndTxnRequest{
			TransactionalID: p.cfg.TransactionalID,
			ProducerID:      p.pid, ProducerEpoch: epoch,
			Commit: commit,
		}, func(resp wire.EndTxnResponse) { cb(resp.Err) })
	}, done)
}
