package producer

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestNextBackoffFixedWithoutMax(t *testing.T) {
	p := &Producer{cfg: Config{RetryBackoff: 20 * time.Millisecond}}
	b := &batch{}
	for i := 0; i < 3; i++ {
		if d := p.nextBackoff(b); d != 20*time.Millisecond {
			t.Fatalf("attempt %d: backoff = %v, want fixed 20ms", i, d)
		}
	}
}

func TestNextBackoffDecorrelatedJitterBounds(t *testing.T) {
	base := 20 * time.Millisecond
	cap := 300 * time.Millisecond
	p := &Producer{
		cfg:       Config{RetryBackoff: base, RetryBackoffMax: cap},
		retryRand: rand.New(rand.NewPCG(7, 0)),
	}
	b := &batch{}
	prev := base
	var capped int
	for i := 0; i < 200; i++ {
		d := p.nextBackoff(b)
		hi := 3 * prev
		if hi > cap {
			hi = cap
		}
		if d < base || d > hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", i, d, base, hi)
		}
		if d > cap/2 {
			capped++
		}
		prev = d
	}
	if capped == 0 {
		t.Error("no draw ever exceeded half the cap in 200 draws; jitter range suspect")
	}
	// Deterministic for a fixed seed.
	q := &Producer{
		cfg:       Config{RetryBackoff: base, RetryBackoffMax: cap},
		retryRand: rand.New(rand.NewPCG(7, 0)),
	}
	pb, qb := &batch{}, &batch{}
	p2 := &Producer{
		cfg:       Config{RetryBackoff: base, RetryBackoffMax: cap},
		retryRand: rand.New(rand.NewPCG(7, 0)),
	}
	for i := 0; i < 50; i++ {
		if a, b2 := p2.nextBackoff(pb), q.nextBackoff(qb); a != b2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, a, b2)
		}
	}
}

func TestConfigRejectsBackoffMaxBelowBase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryBackoffMax = cfg.RetryBackoff / 2
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted RetryBackoffMax below RetryBackoff")
	}
	cfg.RetryBackoffMax = cfg.RetryBackoff
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected RetryBackoffMax == RetryBackoff: %v", err)
	}
}
