package producer

// deque is a ring-buffer double-ended queue of records. Retried records
// re-enter at the front so they keep their place ahead of younger
// messages, as Kafka's accumulator reinserts retried batches.
type deque struct {
	buf   []*record
	head  int
	count int
}

func (d *deque) len() int { return d.count }

func (d *deque) grow() {
	n := len(d.buf) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]*record, n)
	for i := 0; i < d.count; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

func (d *deque) pushBack(r *record) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.count)%len(d.buf)] = r
	d.count++
}

func (d *deque) pushFront(r *record) {
	if d.count == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = r
	d.count++
}

func (d *deque) popFront() *record {
	if d.count == 0 {
		return nil
	}
	r := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.count--
	return r
}

// peekFront returns the oldest record without removing it.
func (d *deque) peekFront() *record {
	if d.count == 0 {
		return nil
	}
	return d.buf[d.head]
}
