package exprun

import "context"

// scratchKey carries the per-worker Scratch through task contexts.
type scratchKey struct{}

// Scratch is a per-worker slot for reusable trial state. Each worker of
// a Map/MapOrdered call owns exactly one Scratch for the call's
// lifetime, and every task the worker runs sees the same slot through
// its context — so expensive warm state (a reset simulator, grown
// buffers) survives from one trial to the next without ever being
// shared between concurrent tasks.
//
// Determinism contract: state kept in a Scratch must be reset to an
// observably pristine condition at the start of each task; results must
// stay byte-identical whether a task got a fresh value or a recycled
// one (see des.Simulator.Reset for the canonical example).
type Scratch struct{ v any }

// Get returns the value left by a previous task on this worker, or nil.
func (s *Scratch) Get() any {
	if s == nil {
		return nil
	}
	return s.v
}

// Set stores a value for later tasks on this worker.
func (s *Scratch) Set(v any) {
	if s != nil {
		s.v = v
	}
}

// ContextScratch returns the calling task's per-worker Scratch, or nil
// when ctx did not come from a Map/MapOrdered worker.
func ContextScratch(ctx context.Context) *Scratch {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scratchKey{}).(*Scratch)
	return s
}
