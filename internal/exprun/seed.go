package exprun

import "time"

// Seed derivation. A parallel run is only reproducible if each task's
// randomness is a function of the task's *index*, never of scheduling
// order; these helpers centralise the derivation schemes used when
// constructing task lists.

// LinearSeeds derives per-task seeds as base + stride*i. This is the
// repo's historical scheme (each experiment family uses its own prime
// stride so their seed streams never collide), preserved so published
// figure values stay byte-identical across the parallel refactor.
func LinearSeeds(base, stride uint64) func(i int) uint64 {
	return func(i int) uint64 { return base + uint64(i)*stride }
}

// SplitMix64 is the finaliser of the SplitMix64 generator (Steele et
// al., "Fast splittable pseudorandom number generators"): a bijective
// avalanche mix whose outputs are statistically independent even for
// adjacent inputs.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MixedSeeds derives per-task seeds as SplitMix64(base + i): unlike
// LinearSeeds the resulting streams are decorrelated, so new experiment
// families should prefer it.
func MixedSeeds(base uint64) func(i int) uint64 {
	return func(i int) uint64 { return SplitMix64(base + uint64(i)) }
}

// DefInt returns v when positive, otherwise the default d. Shared by
// experiment construction across testbed, figures and sweep (an int
// option left at its zero value means "use the documented default").
func DefInt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

// DefDur is DefInt for durations.
func DefDur(v, d time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return d
}
