package exprun

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMapOrderedResultsAllWorkerCounts(t *testing.T) {
	tasks := ints(37)
	square := func(_ context.Context, i int, v int) (int, error) { return v * v, nil }
	var want []int
	for _, v := range tasks {
		want = append(want, v*v)
	}
	for _, workers := range []int{0, 1, 2, 4, 8, 64} {
		got, err := Map(context.Background(), tasks, square, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), nil,
		func(context.Context, int, int) (int, error) { return 0, nil }, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), ints(40), func(_ context.Context, i, v int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return v, nil
	}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestMapFailFastReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("task 5 failed")
	errB := errors.New("task 11 failed")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), ints(20), func(_ context.Context, i, v int) (int, error) {
			switch i {
			case 5:
				return 0, errA
			case 11:
				return 0, errB
			}
			return v, nil
		}, Options{Workers: workers})
		if workers == 1 {
			// Sequential execution hits task 5 first and must report it.
			if !errors.Is(err, errA) {
				t.Errorf("workers=1: err = %v, want %v", err, errA)
			}
			continue
		}
		// Parallel fail-fast guarantees a task error, and the lowest-index
		// one among the tasks that ran — cancellation may legitimately
		// prevent task 5 from running at all.
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Errorf("workers=%d: err = %v, want a task error", workers, err)
		}
	}
}

func TestMapFailFastCancelsRemaining(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), ints(500), func(ctx context.Context, i, v int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return v, nil
	}, Options{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 500 {
		t.Error("fail-fast ran every task")
	}
}

func TestMapCollectErrorsJoinsInOrder(t *testing.T) {
	got, err := Map(context.Background(), ints(10), func(_ context.Context, i, v int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("task %d", i)
		}
		return v * 2, nil
	}, Options{Workers: 4, CollectErrors: true})
	if err == nil {
		t.Fatal("no joined error")
	}
	msg := err.Error()
	order := []string{"task 0", "task 3", "task 6", "task 9"}
	pos := -1
	for _, want := range order {
		p := strings.Index(msg, want)
		if p < 0 {
			t.Fatalf("error %q missing %q", msg, want)
		}
		if p < pos {
			t.Fatalf("error %q not in task order", msg)
		}
		pos = p
	}
	// Successful results survive alongside the error.
	if got[1] != 2 || got[4] != 8 {
		t.Errorf("partial results lost: %v", got)
	}
	if got[3] != 0 {
		t.Errorf("failed index carries non-zero result: %v", got[3])
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, ints(1000), func(ctx context.Context, i, v int) (int, error) {
		if ran.Add(1) == 3 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return v, nil
	}, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation ran every task")
	}
}

func TestMapHooksAndProgress(t *testing.T) {
	var started, done []int
	var timings []Timing
	var progress []int
	errIdx := 7
	boom := errors.New("boom")
	var gotErr error
	_, err := Map(context.Background(), ints(12), func(_ context.Context, i, v int) (int, error) {
		if i == errIdx {
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return v, nil
	}, Options{
		Workers:       3,
		CollectErrors: true,
		Hooks: Hooks{
			OnStart: func(i int) { started = append(started, i) },
			OnDone:  func(i int, tm Timing) { done = append(done, i); timings = append(timings, tm) },
			OnError: func(i int, err error) { gotErr = err },
		},
		Progress: func(d, total int) {
			if total != 12 {
				t.Errorf("total = %d", total)
			}
			progress = append(progress, d)
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(started) != 12 || len(done) != 11 {
		t.Errorf("started %d, done %d", len(started), len(done))
	}
	if !errors.Is(gotErr, boom) {
		t.Errorf("OnError got %v", gotErr)
	}
	for i, tm := range timings {
		if tm.Run <= 0 || tm.Wait < 0 {
			t.Errorf("timing %d = %+v", i, tm)
		}
	}
	if len(progress) != 12 || progress[len(progress)-1] != 12 {
		t.Errorf("progress = %v", progress)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] != progress[i-1]+1 {
			t.Errorf("progress not monotone: %v", progress)
		}
	}
}

func TestMapOrderedStreamsInOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		var emitted []int
		err := MapOrdered(context.Background(), ints(50), func(_ context.Context, i, v int) (int, error) {
			// Make later tasks finish first to force reordering.
			time.Sleep(time.Duration(50-i) * 10 * time.Microsecond)
			return v * 3, nil
		}, func(i, r int) error {
			if r != i*3 {
				t.Errorf("emit(%d) = %d", i, r)
			}
			emitted = append(emitted, i)
			return nil
		}, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(emitted) != 50 {
			t.Fatalf("workers=%d: emitted %d", workers, len(emitted))
		}
		for i, e := range emitted {
			if e != i {
				t.Fatalf("workers=%d: emission order %v", workers, emitted)
			}
		}
	}
}

func TestMapOrderedEmitErrorStops(t *testing.T) {
	stop := errors.New("writer full")
	var emitted int
	err := MapOrdered(context.Background(), ints(100), func(_ context.Context, i, v int) (int, error) {
		return v, nil
	}, func(i, r int) error {
		if i == 5 {
			return stop
		}
		emitted++
		return nil
	}, Options{Workers: 4})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v", err)
	}
	if emitted != 5 {
		t.Errorf("emitted %d rows before the failure, want 5", emitted)
	}
}

func TestLinearSeeds(t *testing.T) {
	seed := LinearSeeds(10, 7919)
	if seed(0) != 10 || seed(3) != 10+3*7919 {
		t.Errorf("linear seeds wrong: %d, %d", seed(0), seed(3))
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of the SplitMix64 finaliser for seed 0 and 1
	// (Steele et al.; cross-checked against the canonical C version).
	if got := SplitMix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) = %#x", got)
	}
	if got := SplitMix64(1); got != 0x910a2dec89025cc1 {
		t.Errorf("SplitMix64(1) = %#x", got)
	}
	seed := MixedSeeds(42)
	if seed(1) != SplitMix64(43) {
		t.Error("MixedSeeds does not mix base+index")
	}
	if seed(1) == seed(2) {
		t.Error("adjacent mixed seeds collide")
	}
}

func TestDefaults(t *testing.T) {
	if DefInt(0, 5) != 5 || DefInt(3, 5) != 3 || DefInt(-1, 5) != 5 {
		t.Error("DefInt wrong")
	}
	if DefDur(0, time.Second) != time.Second || DefDur(time.Minute, time.Second) != time.Minute {
		t.Error("DefDur wrong")
	}
}

func TestReporterThrottles(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	r := NewReporter(&buf, "sweep", 10)
	r.minGap = 0
	for i := 1; i <= 100; i++ {
		mu.Lock()
		r.Progress(i, 100)
		mu.Unlock()
	}
	lines := strings.Count(buf.String(), "\n")
	if lines == 0 || lines > 11 {
		t.Errorf("reporter wrote %d lines:\n%s", lines, buf.String())
	}
	if !strings.Contains(buf.String(), "sweep: 100/100") {
		t.Errorf("final line missing:\n%s", buf.String())
	}
}
