package exprun

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter renders periodic progress lines for a long experiment batch.
// It throttles by completed-task count and by wall time, so a sweep of
// thousands of cheap runs does not flood the terminal while a handful of
// slow ones still shows life. The zero value is unusable; use
// NewReporter. Safe for the serialised callback discipline of Options
// (exprun already serialises Progress calls).
type Reporter struct {
	w     io.Writer
	label string
	every int
	// minGap suppresses lines closer together than this, except the
	// final one.
	minGap time.Duration

	mu      sync.Mutex
	started time.Time
	last    time.Time
	lastN   int
}

// NewReporter writes a progress line to w at most once per `every`
// completed tasks (every <= 0 disables count-based lines; the final
// line is always written).
func NewReporter(w io.Writer, label string, every int) *Reporter {
	return &Reporter{w: w, label: label, every: every, minGap: 100 * time.Millisecond}
}

// Progress is an Options.Progress callback.
func (r *Reporter) Progress(done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if r.started.IsZero() {
		r.started = now
	}
	final := done >= total
	if !final {
		if r.every <= 0 || done-r.lastN < r.every {
			return
		}
		if now.Sub(r.last) < r.minGap {
			return
		}
	}
	r.last, r.lastN = now, done
	elapsed := now.Sub(r.started).Round(10 * time.Millisecond)
	rate := ""
	if s := now.Sub(r.started).Seconds(); s > 0 {
		rate = fmt.Sprintf(", %.1f/s", float64(done)/s)
	}
	fmt.Fprintf(r.w, "%s: %d/%d experiments (%v%s)\n", r.label, done, total, elapsed, rate)
}
