// Package exprun is the experiment-execution layer: it fans independent,
// seed-deterministic testbed runs out over a bounded worker pool while
// guaranteeing that the observable results are byte-identical to a
// sequential execution, regardless of worker count.
//
// Every result in the paper's evaluation (Figs. 4–8, Tables I/II, the
// Fig. 3 training sweep) is built from hundreds of independent runs, so
// the whole reproduction parallelises embarrassingly well — provided each
// task's randomness is derived from its *index*, never from execution
// order. The contract is therefore:
//
//   - callers precompute per-task inputs (including seeds, see seed.go)
//     before fan-out, so fn(i, task) is a pure function of its arguments;
//   - Map returns results in input order;
//   - MapOrdered additionally streams each result to a callback in input
//     order as soon as its prefix has completed, without buffering the
//     whole result set;
//   - on failure, collect mode joins every error in index order, which is
//     fully deterministic; fail-fast returns the lowest-index error among
//     the tasks that actually ran (cancellation may keep later-queued
//     tasks from running at all, and which ones depends on scheduling).
package exprun

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Timing records where one task spent its wall time.
type Timing struct {
	// Wait is the time between submission (the Map call) and the moment a
	// worker picked the task up.
	Wait time.Duration
	// Run is the time the task function itself took.
	Run time.Duration
}

// Hooks observes a run. All callbacks are serialised by an internal
// mutex, so hook implementations need no locking of their own; they must
// not block for long. Any hook may be nil.
type Hooks struct {
	// OnStart fires when a worker picks task i up.
	OnStart func(task int)
	// OnDone fires when task i returns without error.
	OnDone func(task int, t Timing)
	// OnError fires when task i returns an error.
	OnError func(task int, err error)
}

// Options tunes one Map/MapOrdered call.
type Options struct {
	// Workers bounds the pool (<= 0: GOMAXPROCS). A single worker
	// degenerates to a plain sequential loop over the tasks.
	Workers int
	// CollectErrors keeps running after a task fails and returns every
	// error joined in task order. The default is fail-fast: the first
	// failure cancels the tasks still queued, and the lowest-index error
	// among the tasks that did run is returned.
	CollectErrors bool
	// Hooks observes task lifecycle events.
	Hooks Hooks
	// Progress, when non-nil, is invoked after each task completes
	// (successfully or not) with the completed count and the total. Calls
	// are serialised; done is monotone from 1 to total unless the run is
	// cut short.
	Progress func(done, total int)
}

func (o Options) workers(tasks int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn over every task on a bounded worker pool and returns the
// results in input order. fn must be a pure function of (index, task):
// it is called at most once per task, from arbitrary goroutines, and
// must not depend on execution order. On error the slice returned is
// nil in fail-fast mode; in CollectErrors mode it holds the successful
// results (zero values at failed indices) alongside the joined error.
func Map[T, R any](ctx context.Context, tasks []T, fn func(ctx context.Context, index int, task T) (R, error), opts Options) ([]R, error) {
	results := make([]R, len(tasks))
	err := run(ctx, len(tasks), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, tasks[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}, opts)
	if err != nil && !opts.CollectErrors {
		return nil, err
	}
	return results, err
}

// MapOrdered runs fn over every task like Map, but instead of returning
// the result set it streams each result to emit in strict input order as
// soon as all lower-index tasks have completed. Only the out-of-order
// completions awaiting their prefix are buffered, so a long sweep can
// write its output incrementally. emit is always called from a single
// goroutine; an emit error cancels the run.
func MapOrdered[T, R any](ctx context.Context, tasks []T, fn func(ctx context.Context, index int, task T) (R, error), emit func(index int, r R) error, opts Options) error {
	var (
		mu      sync.Mutex
		pending = make(map[int]R)
		next    int
		emitErr error
	)
	err := run(ctx, len(tasks), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, tasks[i])
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if emitErr != nil {
			return emitErr
		}
		pending[i] = r
		for {
			v, ok := pending[next]
			if !ok {
				return nil
			}
			delete(pending, next)
			if err := emit(next, v); err != nil {
				emitErr = fmt.Errorf("exprun: emit %d: %w", next, err)
				return emitErr
			}
			next++
		}
	}, opts)
	return err
}

// run is the shared pool: it executes task indices 0..n-1 with bounded
// workers, cancellation, deterministic error selection and serialised
// observability callbacks.
func run(ctx context.Context, n int, fn func(ctx context.Context, i int) error, opts Options) error {
	if n == 0 {
		return ctx.Err()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex // serialises hooks, progress and error state
		done     int
		taskErrs map[int]error
	)
	start := time.Now()
	finish := func(i int, t Timing, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if taskErrs == nil {
				taskErrs = make(map[int]error)
			}
			taskErrs[i] = err
			if opts.Hooks.OnError != nil {
				opts.Hooks.OnError(i, err)
			}
			if !opts.CollectErrors {
				cancel()
			}
		} else if opts.Hooks.OnDone != nil {
			opts.Hooks.OnDone(i, t)
		}
		done++
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}

	workers := opts.workers(n)
	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker owns one scratch slot for warm per-trial state;
			// see Scratch for the determinism contract.
			wctx := context.WithValue(ctx, scratchKey{}, new(Scratch))
			for i := range indices {
				picked := time.Now()
				if ctx.Err() != nil {
					// Cancelled while queued: the task never ran, so no
					// completion is recorded for it.
					continue
				}
				if opts.Hooks.OnStart != nil {
					mu.Lock()
					opts.Hooks.OnStart(i)
					mu.Unlock()
				}
				err := fn(wctx, i)
				finish(i, Timing{Wait: picked.Sub(start), Run: time.Since(picked)}, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	if len(taskErrs) > 0 {
		if opts.CollectErrors {
			errs := make([]error, 0, len(taskErrs))
			for i := 0; i < n; i++ {
				if err, ok := taskErrs[i]; ok {
					errs = append(errs, err)
				}
			}
			return errors.Join(errs...)
		}
		// Fail-fast: report the lowest-index error recorded. With one
		// worker this is exactly the first failure a sequential loop would
		// hit; with more, cancellation may have kept an even lower-index
		// queued task from running, so "lowest recorded" is the strongest
		// claim available.
		for i := 0; i < n; i++ {
			if err, ok := taskErrs[i]; ok {
				return err
			}
		}
	}
	return ctx.Err()
}
