// Package core implements the paper's primary contribution: the
// reliability prediction framework of Eq. 1,
//
//	{P̂_l, P̂_d} = f(M, S, D, L, Confs),
//
// an ANN-based model that maps a feature vector (message size,
// timeliness, network delay, loss rate, and the producer configuration)
// to the predicted probabilities of message loss and duplication.
//
// Following Sec. III-G, the framework trains one network per delivery
// semantics: the at-most-once model has a single output neuron (P̂_l
// only, since fire-and-forget cannot duplicate) and a reduced input
// layer, while the acknowledged-semantics models predict both metrics.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"kafkarel/internal/ann"
	"kafkarel/internal/features"
)

// Prediction is the model output for one feature vector.
type Prediction struct {
	Pl float64
	Pd float64
}

// inputDim is the per-semantics model input: the encoded feature vector
// without the semantics dimension (each model owns one semantics).
const inputDim = features.Dim - 1

// encodeInput drops the semantics dimension from the encoded vector.
func encodeInput(v features.Vector) []float64 {
	full := v.Encode()
	out := make([]float64, 0, inputDim)
	out = append(out, full[:4]...) // M, S, D, L
	out = append(out, full[5:]...) // B, δ, T_o
	return out
}

// semModel is one semantics' trained network.
type semModel struct {
	net  *ann.Network
	norm *features.Normalizer
	// outputs is 1 for at-most-once (P̂_l) and 2 otherwise (P̂_l, P̂_d).
	outputs int
}

func outputsFor(semantics int) int {
	if semantics == features.SemanticsAtMostOnce {
		return 1
	}
	return 2
}

// Predictor routes feature vectors to per-semantics ANN models.
type Predictor struct {
	models map[int]*semModel
}

// Semantics lists the semantics codes the predictor has models for.
func (p *Predictor) Semantics() []int {
	out := make([]int, 0, len(p.models))
	for s := range p.models {
		out = append(out, s)
	}
	return out
}

// Predict returns P̂_l and P̂_d for the vector. Predictions are clamped
// to [0, 1] by the sigmoid output layer; at-most-once P̂_d is identically
// zero.
func (p *Predictor) Predict(v features.Vector) (Prediction, error) {
	if err := v.Validate(); err != nil {
		return Prediction{}, fmt.Errorf("core: %w", err)
	}
	m, ok := p.models[v.Semantics]
	if !ok {
		return Prediction{}, fmt.Errorf("core: no model trained for semantics %d", v.Semantics)
	}
	in, err := m.norm.Apply(encodeInput(v))
	if err != nil {
		return Prediction{}, fmt.Errorf("core: %w", err)
	}
	out, err := m.net.Forward(in)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: %w", err)
	}
	pred := Prediction{Pl: out[0]}
	if m.outputs == 2 {
		pred.Pd = out[1]
	}
	return pred, nil
}

// --- persistence ----------------------------------------------------------

type predictorFile struct {
	Version int                          `json:"version"`
	Models  map[int]json.RawMessage      `json:"models"`
	Norms   map[int]*features.Normalizer `json:"normalizers"`
	Outputs map[int]int                  `json:"outputs"`
}

const predictorVersion = 1

// Save serialises all per-semantics models as one JSON document.
func (p *Predictor) Save(w io.Writer) error {
	pf := predictorFile{
		Version: predictorVersion,
		Models:  make(map[int]json.RawMessage, len(p.models)),
		Norms:   make(map[int]*features.Normalizer, len(p.models)),
		Outputs: make(map[int]int, len(p.models)),
	}
	for sem, m := range p.models {
		var buf bytes.Buffer
		if err := m.net.Save(&buf); err != nil {
			return fmt.Errorf("core: save semantics %d: %w", sem, err)
		}
		pf.Models[sem] = json.RawMessage(buf.Bytes())
		pf.Norms[sem] = m.norm
		pf.Outputs[sem] = m.outputs
	}
	if err := json.NewEncoder(w).Encode(pf); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// Load reads a predictor written by Save.
func Load(r io.Reader) (*Predictor, error) {
	var pf predictorFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if pf.Version != predictorVersion {
		return nil, fmt.Errorf("core: load: unsupported version %d", pf.Version)
	}
	p := &Predictor{models: make(map[int]*semModel, len(pf.Models))}
	for sem, raw := range pf.Models {
		net, err := ann.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("core: load semantics %d: %w", sem, err)
		}
		norm, ok := pf.Norms[sem]
		if !ok || norm == nil {
			return nil, fmt.Errorf("core: load: missing normalizer for semantics %d", sem)
		}
		p.models[sem] = &semModel{net: net, norm: norm, outputs: pf.Outputs[sem]}
	}
	if len(p.models) == 0 {
		return nil, fmt.Errorf("core: load: empty predictor")
	}
	return p, nil
}
