package core

import (
	"fmt"
	"math"
	"sort"

	"kafkarel/internal/ann"
	"kafkarel/internal/features"
)

// Architecture selects the network size used per semantics model.
type Architecture int

// Architectures. Paper is Sec. III-G's 200/200/200/64 network; Compact is
// a small network that reaches the same MAE bar on our training grids in
// a fraction of the time.
const (
	ArchitecturePaper Architecture = iota + 1
	ArchitectureCompact
)

// TrainConfig controls predictor training.
type TrainConfig struct {
	// Architecture picks the per-semantics network (default Compact).
	Architecture Architecture
	// TestFraction is held out for evaluation (default 0.2).
	TestFraction float64
	// Seed fixes splits, initialisation and shuffling.
	Seed uint64
	// TargetMAE stops training early once reached (0 disables; the paper
	// reports MAE < 0.02).
	TargetMAE float64
	// EpochOverride caps epochs when nonzero (useful for quick runs).
	EpochOverride int
}

// Metrics reports per-semantics and overall evaluation results.
type Metrics struct {
	// MAE and RMSE are over the held-out test split, all outputs pooled.
	MAE  float64
	RMSE float64
	// PerSemantics breaks the evaluation down by delivery semantics.
	PerSemantics map[int]SemanticsMetrics
}

// SemanticsMetrics is one model's evaluation.
type SemanticsMetrics struct {
	TrainSamples int
	TestSamples  int
	MAE          float64
	RMSE         float64
	Epochs       int
}

// Train fits one ANN per delivery semantics present in the dataset and
// returns the routing predictor with held-out evaluation metrics.
func Train(ds features.Dataset, cfg TrainConfig) (*Predictor, Metrics, error) {
	if len(ds) == 0 {
		return nil, Metrics{}, fmt.Errorf("core: empty dataset")
	}
	if cfg.Architecture == 0 {
		cfg.Architecture = ArchitectureCompact
	}
	if cfg.TestFraction == 0 {
		cfg.TestFraction = 0.2
	}
	if cfg.TestFraction < 0 || cfg.TestFraction >= 1 {
		return nil, Metrics{}, fmt.Errorf("core: test fraction %v outside [0,1)", cfg.TestFraction)
	}

	bySem := make(map[int]features.Dataset)
	for _, s := range ds {
		if err := s.X.Validate(); err != nil {
			return nil, Metrics{}, fmt.Errorf("core: %w", err)
		}
		bySem[s.X.Semantics] = append(bySem[s.X.Semantics], s)
	}

	p := &Predictor{models: make(map[int]*semModel, len(bySem))}
	metrics := Metrics{PerSemantics: make(map[int]SemanticsMetrics, len(bySem))}
	var pooledAE, pooledSE float64
	var pooledN int

	// Deterministic iteration order.
	sems := make([]int, 0, len(bySem))
	for s := range bySem {
		sems = append(sems, s)
	}
	sort.Ints(sems)

	for _, sem := range sems {
		sub := bySem[sem]
		model, sm, err := trainOne(sem, sub, cfg)
		if err != nil {
			return nil, Metrics{}, fmt.Errorf("core: semantics %d: %w", sem, err)
		}
		p.models[sem] = model
		metrics.PerSemantics[sem] = sm
		n := sm.TestSamples * model.outputs
		pooledAE += sm.MAE * float64(n)
		pooledSE += sm.RMSE * sm.RMSE * float64(n)
		pooledN += n
	}
	if pooledN > 0 {
		metrics.MAE = pooledAE / float64(pooledN)
		metrics.RMSE = math.Sqrt(pooledSE / float64(pooledN))
	}
	return p, metrics, nil
}

func trainOne(sem int, sub features.Dataset, cfg TrainConfig) (*semModel, SemanticsMetrics, error) {
	if len(sub) < 5 {
		return nil, SemanticsMetrics{}, fmt.Errorf("only %d samples", len(sub))
	}
	train, test, err := sub.Split(cfg.TestFraction, cfg.Seed)
	if err != nil {
		return nil, SemanticsMetrics{}, err
	}
	if len(test) == 0 {
		// Too few samples for a held-out split: evaluate on train.
		test = train
	}
	outs := outputsFor(sem)
	toXY := func(d features.Dataset) (x, y [][]float64) {
		for _, s := range d {
			x = append(x, encodeInput(s.X))
			target := []float64{s.Pl}
			if outs == 2 {
				target = append(target, s.Pd)
			}
			y = append(y, target)
		}
		return x, y
	}
	trainX, trainY := toXY(train)
	testX, testY := toXY(test)

	norm, err := features.FitNormalizer(trainX)
	if err != nil {
		return nil, SemanticsMetrics{}, err
	}
	normTrainX, err := norm.ApplyAll(trainX)
	if err != nil {
		return nil, SemanticsMetrics{}, err
	}
	normTestX, err := norm.ApplyAll(testX)
	if err != nil {
		return nil, SemanticsMetrics{}, err
	}

	var netCfg ann.Config
	if cfg.Architecture == ArchitecturePaper {
		netCfg = ann.PaperConfig(inputDim, outs)
	} else {
		netCfg = ann.CompactConfig(inputDim, outs)
	}
	if cfg.EpochOverride > 0 {
		netCfg.Epochs = cfg.EpochOverride
	}
	netCfg.Seed = cfg.Seed ^ uint64(sem)<<32

	net, err := ann.New(netCfg)
	if err != nil {
		return nil, SemanticsMetrics{}, err
	}
	var topts []ann.TrainOption
	if cfg.TargetMAE > 0 {
		topts = append(topts, ann.WithTargetMAE(cfg.TargetMAE))
	}
	res, err := net.Train(normTrainX, trainY, topts...)
	if err != nil {
		return nil, SemanticsMetrics{}, err
	}
	mae, rmse, err := net.Evaluate(normTestX, testY)
	if err != nil {
		return nil, SemanticsMetrics{}, err
	}
	return &semModel{net: net, norm: norm, outputs: outs}, SemanticsMetrics{
		TrainSamples: len(train),
		TestSamples:  len(test),
		MAE:          mae,
		RMSE:         rmse,
		Epochs:       res.Epochs,
	}, nil
}
