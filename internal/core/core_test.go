package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"kafkarel/internal/features"
)

// syntheticDataset builds a dataset whose Pl/Pd are smooth functions of
// the features, mimicking the simulator's response surfaces.
func syntheticDataset(semantics []int) features.Dataset {
	var ds features.Dataset
	truth := func(v features.Vector) (float64, float64) {
		m := float64(v.MessageSize)
		pl := v.LossRate * (1 - m/1200) * 2
		if v.Semantics == features.SemanticsAtLeastOnce {
			pl *= 0.7
		}
		pl += 0.1 * math.Exp(-float64(v.MessageTimeout)/float64(time.Second))
		if pl > 1 {
			pl = 1
		}
		if pl < 0 {
			pl = 0
		}
		pd := 0.0
		if v.Semantics != features.SemanticsAtMostOnce {
			pd = 0.05 * v.LossRate / float64(v.BatchSize)
		}
		return pl, pd
	}
	for _, sem := range semantics {
		for _, m := range []int{100, 200, 400, 800} {
			for _, l := range []float64{0, 0.1, 0.2, 0.3} {
				for _, b := range []int{1, 2, 5} {
					for _, to := range []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond} {
						v := features.Vector{
							MessageSize:    m,
							Timeliness:     5 * time.Second,
							DelayMs:        50,
							LossRate:       l,
							Semantics:      sem,
							BatchSize:      b,
							PollInterval:   0,
							MessageTimeout: to,
						}
						pl, pd := truth(v)
						ds = append(ds, features.Sample{X: v, Pl: pl, Pd: pd})
					}
				}
			}
		}
	}
	return ds
}

func TestTrainReachesPaperMAE(t *testing.T) {
	ds := syntheticDataset([]int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce})
	p, m, err := Train(ds, TrainConfig{Seed: 3, TargetMAE: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE >= 0.02 {
		t.Fatalf("MAE = %v, want < 0.02 (the paper's bar); per-semantics: %+v", m.MAE, m.PerSemantics)
	}
	if len(p.Semantics()) != 2 {
		t.Errorf("semantics models = %v", p.Semantics())
	}
	for sem, sm := range m.PerSemantics {
		if sm.TrainSamples == 0 || sm.TestSamples == 0 {
			t.Errorf("semantics %d: empty split %+v", sem, sm)
		}
	}
}

func TestPredictMatchesGroundTruth(t *testing.T) {
	ds := syntheticDataset([]int{features.SemanticsAtLeastOnce})
	p, _, err := Train(ds, TrainConfig{Seed: 5, TargetMAE: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Interior point not necessarily on the training grid.
	v := features.Vector{
		MessageSize:    300,
		Timeliness:     5 * time.Second,
		DelayMs:        50,
		LossRate:       0.15,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      2,
		MessageTimeout: time.Second,
	}
	pred, err := p.Predict(v)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Pl < 0 || pred.Pl > 1 || pred.Pd < 0 || pred.Pd > 1 {
		t.Errorf("prediction outside [0,1]: %+v", pred)
	}
	// Monotonicity learned from data: higher loss rate → higher Pl.
	lo, hi := v, v
	lo.LossRate = 0.02
	hi.LossRate = 0.3
	pLo, err := p.Predict(lo)
	if err != nil {
		t.Fatal(err)
	}
	pHi, err := p.Predict(hi)
	if err != nil {
		t.Fatal(err)
	}
	if pHi.Pl <= pLo.Pl {
		t.Errorf("Pl not increasing in L: %v at L=0.02, %v at L=0.3", pLo.Pl, pHi.Pl)
	}
}

func TestAtMostOncePredictsZeroPd(t *testing.T) {
	ds := syntheticDataset([]int{features.SemanticsAtMostOnce})
	p, _, err := Train(ds, TrainConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	v := ds[0].X
	pred, err := p.Predict(v)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Pd != 0 {
		t.Errorf("at-most-once Pd = %v, want exactly 0", pred.Pd)
	}
}

func TestPredictUnknownSemantics(t *testing.T) {
	ds := syntheticDataset([]int{features.SemanticsAtMostOnce})
	p, _, err := Train(ds, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := ds[0].X
	v.Semantics = features.SemanticsExactlyOnce
	if _, err := p.Predict(v); err == nil {
		t.Error("unknown semantics accepted")
	}
	v.Semantics = 99
	if _, err := p.Predict(v); err == nil {
		t.Error("invalid vector accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := syntheticDataset([]int{features.SemanticsAtMostOnce})
	if _, _, err := Train(ds, TrainConfig{TestFraction: 1.5}); err == nil {
		t.Error("bad test fraction accepted")
	}
	tiny := ds[:3]
	if _, _, err := Train(tiny, TrainConfig{}); err == nil {
		t.Error("undersized per-semantics dataset accepted")
	}
	bad := features.Dataset{{X: features.Vector{}, Pl: 0}}
	if _, _, err := Train(bad, TrainConfig{}); err == nil {
		t.Error("invalid vector accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := syntheticDataset([]int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce})
	p, _, err := Train(ds, TrainConfig{Seed: 9, EpochOverride: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds[:20] {
		a, err := p.Predict(s.X)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Predict(s.X)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("loaded predictor differs: %+v vs %+v", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":2}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1,"models":{}}`)); err == nil {
		t.Error("empty predictor accepted")
	}
}

func TestEncodeInputDropsSemantics(t *testing.T) {
	v := features.Vector{
		MessageSize:    100,
		Timeliness:     time.Second,
		DelayMs:        10,
		LossRate:       0.5,
		Semantics:      features.SemanticsExactlyOnce,
		BatchSize:      3,
		PollInterval:   20 * time.Millisecond,
		MessageTimeout: time.Second,
	}
	in := encodeInput(v)
	if len(in) != inputDim {
		t.Fatalf("input dim = %d, want %d", len(in), inputDim)
	}
	// Changing semantics must not change the encoding.
	v2 := v
	v2.Semantics = features.SemanticsAtMostOnce
	in2 := encodeInput(v2)
	for i := range in {
		if in[i] != in2[i] {
			t.Errorf("encoding depends on semantics at dim %d", i)
		}
	}
}
