package des

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	sim := New()
	var got []int
	sim.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	sim.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	sim.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if sim.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", sim.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	sim := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		sim.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	sim := New()
	fired := false
	sim.After(-time.Second, func() { fired = true })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Error("negative-delay event did not fire")
	}
	if sim.Now() != 0 {
		t.Errorf("Now = %v, want 0", sim.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	sim := New()
	sim.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		sim.Schedule(500*time.Millisecond, func() {})
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestScheduleNilCallbackPanics(t *testing.T) {
	sim := New()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	sim.Schedule(0, nil)
}

func TestCancelPreventsExecution(t *testing.T) {
	sim := New()
	fired := false
	e := sim.Schedule(time.Second, func() { fired = true })
	sim.Cancel(e)
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	sim := New()
	e := sim.Schedule(time.Second, func() {})
	sim.Cancel(e)
	sim.Cancel(e) // must not panic or corrupt the heap
	sim.Cancel(nil)
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancelMiddleOfHeapKeepsOrder(t *testing.T) {
	sim := New()
	var got []int
	events := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		events = append(events, sim.Schedule(time.Duration(i)*time.Millisecond, func() {
			got = append(got, i)
		}))
	}
	sim.Cancel(events[4])
	sim.Cancel(events[7])
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	sim := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		sim.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := sim.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if sim.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", sim.Now())
	}
	if sim.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", sim.Pending())
	}
	// Resume to the end.
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events after resume, want 3", len(fired))
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	sim := New()
	if err := sim.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if sim.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", sim.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	sim := New()
	count := 0
	for i := 1; i <= 10; i++ {
		sim.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				sim.Stop()
			}
		})
	}
	if err := sim.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("executed %d events, want 3", count)
	}
}

func TestRunLimitGuards(t *testing.T) {
	sim := New()
	var rearm func()
	n := 0
	rearm = func() {
		n++
		sim.After(time.Millisecond, rearm)
	}
	sim.After(time.Millisecond, rearm)
	if err := sim.RunLimit(100); !errors.Is(err, ErrStopped) {
		t.Fatalf("RunLimit = %v, want ErrStopped", err)
	}
	if n != 100 {
		t.Errorf("executed %d events, want 100", n)
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	sim := New()
	var got []string
	sim.Schedule(time.Second, func() {
		got = append(got, "first")
		sim.After(time.Second, func() { got = append(got, "second") })
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
	if sim.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", sim.Now())
	}
}

func TestFiredCounts(t *testing.T) {
	sim := New()
	for i := 0; i < 7; i++ {
		sim.Schedule(time.Duration(i), func() {})
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sim.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", sim.Fired())
	}
}

// Property: for any multiset of delays, events fire in non-decreasing time
// order and the clock ends at the maximum delay.
func TestPropertyTimeOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		sim := New()
		var fired []time.Duration
		var maxAt time.Duration
		for _, r := range raw {
			at := time.Duration(r % 1e6)
			if at > maxAt {
				maxAt = at
			}
			sim.Schedule(at, func() { fired = append(fired, sim.Now()) })
		}
		if err := sim.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return sim.Now() == maxAt && len(fired) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleaved schedule/cancel sequences never corrupt the heap;
// exactly the non-canceled events fire.
func TestPropertyCancelConsistency(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		sim := New()
		fired := map[int]bool{}
		events := map[int]*Event{}
		canceled := map[int]bool{}
		total := int(n%64) + 1
		for i := 0; i < total; i++ {
			i := i
			events[i] = sim.Schedule(time.Duration(rng.IntN(1000))*time.Millisecond,
				func() { fired[i] = true })
		}
		for i := 0; i < total; i++ {
			if rng.Float64() < 0.4 {
				sim.Cancel(events[i])
				canceled[i] = true
			}
		}
		if err := sim.Run(); err != nil {
			return false
		}
		for i := 0; i < total; i++ {
			if canceled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimerResetAndStop(t *testing.T) {
	sim := New()
	count := 0
	timer := NewTimer(sim, func() { count++ })
	timer.Reset(time.Second)
	if !timer.Armed() {
		t.Error("timer not armed after Reset")
	}
	// Re-arming before expiry must supersede the first schedule.
	timer.Reset(2 * time.Second)
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 1 {
		t.Errorf("timer fired %d times, want 1", count)
	}
	if sim.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s (reset superseded)", sim.Now())
	}
	timer.Reset(time.Second)
	timer.Stop()
	if timer.Armed() {
		t.Error("timer armed after Stop")
	}
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 1 {
		t.Errorf("stopped timer fired; count = %d", count)
	}
}

func TestTickerPeriodicFiring(t *testing.T) {
	sim := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(sim, time.Second, func() {
		count++
		if count == 5 {
			tk.Stop()
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Errorf("ticker fired %d times, want 5", count)
	}
	if sim.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", sim.Now())
	}
}

func TestTickerStopOutsideCallback(t *testing.T) {
	sim := New()
	count := 0
	tk := NewTicker(sim, time.Second, func() { count++ })
	sim.Schedule(3500*time.Millisecond, func() { tk.Stop() })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Errorf("ticker fired %d times, want 3", count)
	}
}

func TestTickerNonPositivePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive period did not panic")
		}
	}()
	NewTicker(New(), 0, func() {})
}

// Regression (issue 5): Cancel on an already-fired event must report
// false and must not mark the event canceled — it really executed, so
// Canceled() would misreport history.
func TestCancelReportsRemoval(t *testing.T) {
	sim := New()
	fired := false
	e := sim.Schedule(time.Second, func() { fired = true })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	if sim.Cancel(e) {
		t.Error("Cancel returned true for an already-fired event")
	}
	if e.Canceled() {
		t.Error("already-fired event was marked canceled")
	}

	pending := sim.Schedule(2*time.Second, func() {})
	if !sim.Cancel(pending) {
		t.Error("Cancel returned false for a pending event")
	}
	if !pending.Canceled() {
		t.Error("removed event not marked canceled")
	}
	if sim.Cancel(pending) {
		t.Error("second Cancel returned true")
	}
	if sim.Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
}

// ScheduleFunc/AfterFunc events share the sequence counter with Schedule,
// so pooled and unpooled events interleave deterministically at equal
// timestamps.
func TestScheduleFuncInterleavesWithSchedule(t *testing.T) {
	sim := New()
	var got []int
	appendVal := func(a any) { got = append(got, *(a.(*int))) }
	vals := []int{0, 1, 2, 3}
	sim.Schedule(time.Second, func() { got = append(got, vals[0]) })
	sim.ScheduleFunc(time.Second, appendVal, &vals[1])
	sim.AfterFunc(time.Second, appendVal, &vals[2])
	sim.Schedule(time.Second, func() { got = append(got, vals[3]) })
	if err := sim.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v, want ascending", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("fired %d events, want 4", len(got))
	}
}

func TestScheduleFuncNilCallbackPanics(t *testing.T) {
	sim := New()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	sim.ScheduleFunc(0, nil, nil)
}

// Reset must restore the zero-state observable behavior (clock, sequence
// tie-break order, counters) so a reused simulator produces byte-identical
// trials.
func TestResetRestoresInitialState(t *testing.T) {
	sim := New()
	run := func() []int {
		var got []int
		for i := 0; i < 5; i++ {
			i := i
			sim.Schedule(time.Second, func() { got = append(got, i) })
		}
		sim.AfterFunc(time.Second, func(a any) {}, nil)
		if err := sim.RunUntil(time.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		// Leave one event pending to exercise queue draining in Reset.
		sim.Schedule(time.Hour, func() {})
		timer := NewTimer(sim, func() {})
		timer.Reset(time.Hour)
		return got
	}
	first := run()
	if sim.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 before Reset", sim.Pending())
	}
	sim.Reset()
	if sim.Now() != 0 || sim.Fired() != 0 || sim.Pending() != 0 {
		t.Fatalf("after Reset: now=%v fired=%d pending=%d, want zeros",
			sim.Now(), sim.Fired(), sim.Pending())
	}
	second := run()
	if len(first) != len(second) {
		t.Fatalf("runs differ in length: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("runs diverge after Reset: %v vs %v", first, second)
		}
	}
}

// Allocation budget (issue 5): once the free list is warm, scheduling and
// firing pooled events allocates nothing.
func TestAllocsPerEventSteadyState(t *testing.T) {
	sim := New()
	count := 0
	inc := func(a any) { *(a.(*int))++ }
	cycle := func() {
		for j := 0; j < 256; j++ {
			sim.AfterFunc(time.Duration(j%13)*time.Millisecond, inc, &count)
		}
		if err := sim.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	cycle() // warm the free list and heap backing array
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Errorf("pooled schedule/fire allocated %.1f per 256-event cycle, want 0", allocs)
	}
}

// Timers ride the pooled path: steady-state Reset/fire cycles are
// allocation-free too.
func TestTimerAllocsSteadyState(t *testing.T) {
	sim := New()
	fired := 0
	timer := NewTimer(sim, func() { fired++ })
	cycle := func() {
		for j := 0; j < 64; j++ {
			timer.Reset(time.Millisecond)
			if err := sim.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Errorf("timer reset/fire allocated %.1f per 64-cycle run, want 0", allocs)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := New()
		for j := 0; j < 1000; j++ {
			sim.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		if err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
