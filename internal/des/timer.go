package des

import "time"

// Timer is a resettable one-shot timer bound to a Simulator, analogous to
// time.Timer but in virtual time. The zero value is not usable; create
// timers with NewTimer.
//
// Timers schedule through the simulator's pooled event path: arming and
// firing a timer allocates nothing in steady state.
type Timer struct {
	sim *Simulator
	fn  func()
	ev  *Event
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func NewTimer(sim *Simulator, fn func()) *Timer {
	if sim == nil {
		panic("des: NewTimer with nil simulator")
	}
	if fn == nil {
		panic("des: NewTimer with nil callback")
	}
	return &Timer{sim: sim, fn: fn}
}

// timerFire clears the timer's event pointer before invoking the callback
// so the pooled event can be recycled safely: by the time run() returns
// it to the free list, the timer no longer references it (and fn may have
// re-armed the timer with a fresh event).
func timerFire(a any) {
	t := a.(*Timer)
	t.ev = nil
	t.fn()
}

// Reset (re)arms the timer to fire d from now, canceling any pending
// expiry first. Negative d is clamped to zero.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	if d < 0 {
		d = 0
	}
	t.ev = t.sim.schedulePooled(t.sim.now+d, timerFire, t)
}

// Stop cancels a pending expiry. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil }

// Ticker repeatedly invokes a callback at a fixed virtual-time period
// until stopped.
type Ticker struct {
	sim    *Simulator
	period time.Duration
	fn     func()
	ev     *Event
}

// NewTicker returns a started ticker firing every period. A non-positive
// period panics: it would busy-loop the simulator at a single timestamp.
func NewTicker(sim *Simulator, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("des: NewTicker with non-positive period")
	}
	if fn == nil {
		panic("des: NewTicker with nil callback")
	}
	t := &Ticker{sim: sim, period: period, fn: fn}
	t.schedule()
	return t
}

func tickerFire(a any) {
	t := a.(*Ticker)
	t.ev = nil
	t.fn()
	if t.ev == nil { // fn may have called Stop; only rearm if it did not
		t.schedule()
	}
}

func (t *Ticker) schedule() {
	t.ev = t.sim.schedulePooled(t.sim.now+t.period, tickerFire, t)
}

// Stop cancels future ticks. It may be called from inside the tick
// callback.
func (t *Ticker) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
	}
	// Leave a sentinel so the in-callback rearm check sees a non-nil event
	// and does not reschedule.
	t.ev = &Event{canceled: true, index: -1}
}
