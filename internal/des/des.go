// Package des implements a deterministic discrete-event simulation kernel.
//
// All simulated subsystems in this repository (network links, transport
// connections, brokers, producers) are driven by a single Simulator: they
// schedule callbacks at virtual times instead of sleeping on the wall
// clock. Events that share a timestamp fire in scheduling order, so a run
// with a fixed random seed is exactly reproducible.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"kafkarel/internal/obs"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	fnA      func(any) // hot-path form: fnA(arg) avoids a closure allocation
	arg      any
	index    int // position in the heap, -1 once removed
	canceled bool
	pooled   bool // recycled through the Simulator free list after firing
}

// At reports the virtual time the event is (or was) scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Canceled reports whether Cancel removed the event before it fired.
// Events that already fired are never marked canceled.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is ready to use.
type Simulator struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64

	// free is a free list of pooled events. Only events scheduled through
	// the internal pooled paths (ScheduleFunc/AfterFunc and the Timer /
	// Ticker machinery) are recycled: their handles are never exposed, so
	// a stale pointer can never Cancel a reused event. Events returned by
	// Schedule/After are ordinary garbage-collected allocations.
	free []*Event

	cFired    *obs.Counter
	gQueueMax *obs.Gauge
}

// New returns an empty simulator whose clock starts at zero.
func New() *Simulator { return &Simulator{} }

// Instrument attaches observability handles. The handles are nil-safe,
// so passing a nil *obs.Obs (or never calling Instrument) keeps the run
// loop free of metric updates beyond a nil check.
func (s *Simulator) Instrument(o *obs.Obs) {
	s.cFired = o.Counter(obs.MSimEvents)
	s.gQueueMax = o.Gauge(obs.MSimQueueMax)
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// Reset returns the simulator to its initial state — clock at zero, empty
// queue, sequence counter rewound — while keeping allocated capacity (the
// event heap's backing array and the event free list). A worker can
// therefore reuse one Simulator across many trials without re-paying the
// warm-up allocations. Instrument handles are detached; call Instrument
// again for the next run.
func (s *Simulator) Reset() {
	for i, e := range s.queue {
		e.index = -1
		if e.pooled {
			s.put(e)
		}
		s.queue[i] = nil
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.stopped = false
	s.cFired = nil
	s.gQueueMax = nil
}

func (s *Simulator) get() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &Event{pooled: true}
}

func (s *Simulator) put(e *Event) {
	e.fn = nil
	e.fnA = nil
	e.arg = nil
	e.canceled = false
	s.free = append(s.free, e)
}

// Schedule runs fn at the absolute virtual time at. Scheduling in the past
// (before Now) is a programming error and panics: it would silently
// reorder causality.
func (s *Simulator) Schedule(at time.Duration, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After runs fn d after the current virtual time. Negative d is clamped to
// zero so that jittered delays can never schedule into the past.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// ScheduleFunc runs fn(arg) at the absolute virtual time at. The event is
// drawn from the simulator's free list and recycled after it fires, so a
// steady-state caller allocates nothing; in exchange there is no handle to
// Cancel. Passing a pointer-shaped arg (a pointer or a func value) avoids
// boxing. Use Schedule when the event may need to be canceled.
func (s *Simulator) ScheduleFunc(at time.Duration, fn func(any), arg any) {
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	s.schedulePooled(at, fn, arg)
}

// AfterFunc runs fn(arg) d after the current virtual time, with the same
// pooled, non-cancelable semantics as ScheduleFunc. Negative d is clamped
// to zero.
func (s *Simulator) AfterFunc(d time.Duration, fn func(any), arg any) {
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	if d < 0 {
		d = 0
	}
	s.schedulePooled(s.now+d, fn, arg)
}

// schedulePooled is the pooled scheduling core. The returned event is
// owned by the timer machinery that requested it: the owner must drop its
// pointer no later than when the event fires or is canceled, because the
// event is recycled at that point.
func (s *Simulator) schedulePooled(at time.Duration, fn func(any), arg any) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	e := s.get()
	e.at = at
	e.seq = s.seq
	e.fnA = fn
	e.arg = arg
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a pending event and reports whether it did. Canceling an
// event that already fired (or was already canceled) returns false and
// leaves the event unmarked, so Canceled() faithfully reports only events
// that were removed before firing.
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
	e.canceled = true
	if e.pooled {
		s.put(e)
	}
	return true
}

// Stop halts a Run in progress after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop
// is called. It returns ErrStopped in the latter case.
func (s *Simulator) Run() error {
	return s.run(-1, 0)
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Simulator) RunUntil(deadline time.Duration) error {
	return s.run(deadline, 0)
}

// RunLimit executes at most n events; it exists as a runaway guard for
// tests. It returns ErrStopped if the limit was hit.
func (s *Simulator) RunLimit(n uint64) error {
	return s.run(-1, n)
}

func (s *Simulator) run(deadline time.Duration, limit uint64) error {
	s.stopped = false
	executed := uint64(0)
	// Track the queue high-water mark in a local and publish it once at
	// the end: Gauge.SetMax is a CAS loop and does not belong in the
	// per-event inner loop.
	qmax := len(s.queue)
	var err error
	for len(s.queue) > 0 {
		if n := len(s.queue); n > qmax {
			qmax = n
		}
		if s.stopped {
			err = ErrStopped
			break
		}
		if limit > 0 && executed >= limit {
			err = ErrStopped
			break
		}
		next := s.queue[0]
		if deadline >= 0 && next.at > deadline {
			s.now = deadline
			break
		}
		heap.Pop(&s.queue)
		next.index = -1
		s.now = next.at
		s.fired++
		executed++
		s.cFired.Inc()
		if next.fnA != nil {
			next.fnA(next.arg)
		} else {
			next.fn()
		}
		if next.pooled {
			s.put(next)
		}
	}
	if err == nil && deadline >= 0 && deadline > s.now {
		s.now = deadline
	}
	s.gQueueMax.SetMax(int64(qmax))
	return err
}

// eventQueue is a min-heap ordered by (time, sequence number).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
