// Package des implements a deterministic discrete-event simulation kernel.
//
// All simulated subsystems in this repository (network links, transport
// connections, brokers, producers) are driven by a single Simulator: they
// schedule callbacks at virtual times instead of sleeping on the wall
// clock. Events that share a timestamp fire in scheduling order, so a run
// with a fixed random seed is exactly reproducible.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"kafkarel/internal/obs"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained.
var ErrStopped = errors.New("des: simulation stopped")

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 once removed
	canceled bool
}

// At reports the virtual time the event is (or was) scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is ready to use.
type Simulator struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64

	cFired    *obs.Counter
	gQueueMax *obs.Gauge
}

// New returns an empty simulator whose clock starts at zero.
func New() *Simulator { return &Simulator{} }

// Instrument attaches observability handles. The handles are nil-safe,
// so passing a nil *obs.Obs (or never calling Instrument) keeps the run
// loop free of metric updates beyond a nil check.
func (s *Simulator) Instrument(o *obs.Obs) {
	s.cFired = o.Counter(obs.MSimEvents)
	s.gQueueMax = o.Gauge(obs.MSimQueueMax)
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule runs fn at the absolute virtual time at. Scheduling in the past
// (before Now) is a programming error and panics: it would silently
// reorder causality.
func (s *Simulator) Schedule(at time.Duration, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After runs fn d after the current virtual time. Negative d is clamped to
// zero so that jittered delays can never schedule into the past.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// Cancel removes a pending event. Canceling an event that already fired or
// was already canceled is a no-op, which keeps timer bookkeeping simple
// for callers.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.queue, e.index)
}

// Stop halts a Run in progress after the current event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty or Stop
// is called. It returns ErrStopped in the latter case.
func (s *Simulator) Run() error {
	return s.run(-1, 0)
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Simulator) RunUntil(deadline time.Duration) error {
	return s.run(deadline, 0)
}

// RunLimit executes at most n events; it exists as a runaway guard for
// tests. It returns ErrStopped if the limit was hit.
func (s *Simulator) RunLimit(n uint64) error {
	return s.run(-1, n)
}

func (s *Simulator) run(deadline time.Duration, limit uint64) error {
	s.stopped = false
	executed := uint64(0)
	for len(s.queue) > 0 {
		s.gQueueMax.SetMax(int64(len(s.queue)))
		if s.stopped {
			return ErrStopped
		}
		if limit > 0 && executed >= limit {
			return ErrStopped
		}
		next := s.queue[0]
		if deadline >= 0 && next.at > deadline {
			s.now = deadline
			return nil
		}
		heap.Pop(&s.queue)
		next.index = -1
		s.now = next.at
		s.fired++
		executed++
		s.cFired.Inc()
		next.fn()
	}
	if deadline >= 0 && deadline > s.now {
		s.now = deadline
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, sequence number).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
