package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", QueueDepthBounds)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Counts() != nil {
		t.Error("nil handles recorded values")
	}
	if got := r.Snapshot(); len(got.Counters)+len(got.Gauges)+len(got.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", got)
	}
	var o *Obs
	o.Counter("x").Inc()
	o.Gauge("y").Set(1)
	o.Histogram("z", QueueDepthBounds).Observe(1)
	o.Tracer().Emit(LayerDES, "whatever", 0, 0, 0, "")
}

func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MSegmentsSent)
	g := r.Gauge(MRTOMaxNs)
	h := r.Histogram(MQueueDepth, QueueDepthBounds)
	var nilC *Counter
	for name, fn := range map[string]func(){
		"counter-inc":  func() { c.Inc() },
		"gauge-setmax": func() { g.SetMax(5) },
		"hist-observe": func() { h.Observe(7) },
		"nil-counter":  func() { nilC.Inc() },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per op, want 0", name, allocs)
		}
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Error("counter handle not cached by name")
	}

	g := r.Gauge("g")
	g.SetMax(10)
	g.SetMax(3)
	if g.Value() != 10 {
		t.Errorf("gauge max = %d, want 10", g.Value())
	}
	g.Set(-2)
	if g.Value() != -2 {
		t.Errorf("gauge = %d, want -2", g.Value())
	}

	h := r.Histogram("h", []int64{0, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []uint64{1, 2, 2, 2} // <=0, <=2, <=4, overflow
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSnapshotDeterministicEncoding(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Register in one order…
		r.Counter("b").Add(2)
		r.Counter("a").Inc()
		r.Gauge("z").Set(7)
		r.Histogram("q", []int64{1, 2}).Observe(2)
		return r.Snapshot()
	}
	build2 := func() Snapshot {
		r := NewRegistry()
		// …and the reverse order; the snapshot must not care.
		r.Histogram("q", []int64{1, 2}).Observe(2)
		r.Gauge("z").Set(7)
		r.Counter("a").Inc()
		r.Counter("b").Add(2)
		return r.Snapshot()
	}
	if !bytes.Equal(build().Encode(), build2().Encode()) {
		t.Errorf("snapshot encoding depends on registration order:\n%s\nvs\n%s",
			build().Encode(), build2().Encode())
	}
	s := build()
	if s.Counter("a") != 1 || s.Counter("b") != 2 || s.Gauge("z") != 7 {
		t.Errorf("snapshot accessors wrong: %+v", s)
	}
	if _, ok := s.Histogram("q"); !ok {
		t.Error("histogram q missing from snapshot")
	}
	if s.Counter("missing") != 0 {
		t.Error("missing counter not 0")
	}
}

type fakeClock struct{ now time.Duration }

func (f *fakeClock) Now() time.Duration { return f.now }

func TestTracerRingAndSink(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(3)
	tr.BindClock(clk)
	var sink bytes.Buffer
	tr.SetSink(&sink)
	for i := 0; i < 5; i++ {
		clk.now = time.Duration(i) * time.Millisecond
		tr.Emit(LayerTransport, EvSegmentSend, uint64(i), 100, 0, "client")
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	// Oldest two evicted.
	if evs[0].Key != 2 || evs[2].Key != 4 {
		t.Errorf("ring contents %+v", evs)
	}
	if evs[2].At != 4*time.Millisecond {
		t.Errorf("event not stamped with virtual time: %v", evs[2].At)
	}
	if tr.Total() != 5 {
		t.Errorf("total = %d, want 5", tr.Total())
	}
	// The sink saw all five, eviction notwithstanding.
	parsed, err := ReadJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 5 {
		t.Fatalf("sink holds %d events, want 5", len(parsed))
	}
	if parsed[0] != (Event{Layer: LayerTransport, Type: EvSegmentSend, Key: 0, Value: 100, Detail: "client"}) {
		t.Errorf("round-tripped event %+v", parsed[0])
	}
	var dump bytes.Buffer
	if err := tr.WriteJSONL(&dump); err != nil {
		t.Fatal(err)
	}
	redump, err := ReadJSONL(&dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(redump) != 3 {
		t.Errorf("dump holds %d events, want 3", len(redump))
	}
}

func TestDuplicateChains(t *testing.T) {
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	events := []Event{
		// Batch 1: clean delivery — no chain.
		{At: at(0), Layer: LayerProducer, Type: EvBatchSend, Key: 1, Value: 2, Aux: 1},
		{At: at(1), Layer: LayerBroker, Type: EvAppend, Key: 1, Value: 0, Aux: 0},
		{At: at(2), Layer: LayerProducer, Type: EvBatchAck, Key: 1},
		// Batch 1 replicated to followers: same seq, different brokers —
		// must NOT count as a duplicate.
		{At: at(3), Layer: LayerBroker, Type: EvAppend, Key: 1, Value: 0, Aux: 1},
		{At: at(3), Layer: LayerBroker, Type: EvAppend, Key: 1, Value: 0, Aux: 2},
		// Batch 2: the Fig. 8 chain — send, append, spurious timeout,
		// retry, duplicate append on the same broker.
		{At: at(10), Layer: LayerProducer, Type: EvBatchSend, Key: 2, Value: 2, Aux: 1},
		{At: at(11), Layer: LayerBroker, Type: EvAppend, Key: 2, Value: 2, Aux: 0},
		{At: at(12), Layer: LayerProducer, Type: EvRequestTimeout, Key: 2, Value: 9},
		{At: at(13), Layer: LayerProducer, Type: EvBatchRetry, Key: 2, Aux: 2},
		{At: at(14), Layer: LayerProducer, Type: EvBatchSend, Key: 2, Value: 2, Aux: 2},
		{At: at(15), Layer: LayerBroker, Type: EvAppend, Key: 2, Value: 4, Aux: 0},
		{At: at(16), Layer: LayerProducer, Type: EvBatchAck, Key: 2},
	}
	chains := DuplicateChains(events)
	if len(chains) != 1 {
		t.Fatalf("%d chains, want 1 (replication must not count)", len(chains))
	}
	chain := chains[0]
	if chain[0].Key != 2 {
		t.Errorf("chain key = %d, want 2", chain[0].Key)
	}
	if !IsCompleteDuplicateChain(chain) {
		t.Errorf("chain not complete: %+v", chain)
	}
	if IsCompleteDuplicateChain(chains[0][:2]) {
		t.Error("truncated chain reported complete")
	}

	// Idempotent mode: duplicate_drop marks the chain complete.
	idem := []Event{
		{At: at(0), Type: EvBatchSend, Key: 7, Aux: 1},
		{At: at(1), Type: EvAppend, Key: 7, Aux: 0},
		{At: at(2), Type: EvRequestTimeout, Key: 7},
		{At: at(3), Type: EvBatchRetry, Key: 7, Aux: 2},
		{At: at(4), Type: EvBatchSend, Key: 7, Aux: 2},
		{At: at(5), Type: EvDuplicateDrop, Key: 7, Aux: 0},
	}
	chains = DuplicateChains(idem)
	if len(chains) != 1 || !IsCompleteDuplicateChain(chains[0]) {
		t.Errorf("idempotent duplicate chain not detected: %+v", chains)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(LayerDES, "x", 0, 0, 0, "")
	tr.BindClock(&fakeClock{})
	tr.SetSink(&bytes.Buffer{})
	if tr.Events() != nil || tr.Total() != 0 || tr.Err() != nil {
		t.Error("nil tracer not inert")
	}
}
