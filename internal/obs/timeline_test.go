package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tlClock is a settable test clock.
type tlClock struct{ now time.Duration }

func (c *tlClock) Now() time.Duration { return c.now }

func TestNilTimelineIsNoOp(t *testing.T) {
	var tl *Timeline
	tl.BindClock(&tlClock{})
	tl.SetProbes(nil, nil, nil, nil)
	tl.Annotate(AnnConfigSwitch, "x")
	tl.Sample()
	if tl.Interval() != 0 {
		t.Errorf("nil timeline interval = %v, want 0", tl.Interval())
	}
	if rows := tl.Rows(); rows != nil {
		t.Errorf("nil timeline rows = %v, want nil", rows)
	}
	if anns := tl.Annotations(); anns != nil {
		t.Errorf("nil timeline annotations = %v, want nil", anns)
	}
	if err := tl.WriteCSV(&bytes.Buffer{}); err != nil {
		t.Errorf("nil timeline WriteCSV: %v", err)
	}
}

func TestNewTimelineDefaultInterval(t *testing.T) {
	if got := NewTimeline(0).Interval(); got != DefaultTimelineInterval {
		t.Errorf("interval = %v, want %v", got, DefaultTimelineInterval)
	}
	if got := NewTimeline(3 * time.Second).Interval(); got != 3*time.Second {
		t.Errorf("interval = %v, want 3s", got)
	}
}

// TestTimelineIntervalDeltas drives synthetic cumulative probes and
// checks rows hold per-interval deltas whose column sums reproduce the
// final cumulative values — the invariant the run report verifies.
func TestTimelineIntervalDeltas(t *testing.T) {
	clk := &tlClock{}
	tl := NewTimeline(time.Second)
	tl.BindClock(clk)
	var net NetProbe
	var pr ProducerProbe
	var br BrokerProbe
	tl.SetProbes(
		func() NetProbe { return net },
		nil,
		func() ProducerProbe { return pr },
		func() BrokerProbe { return br },
	)

	steps := []struct {
		offered, lost, enq, acked, dup uint64
	}{
		{100, 5, 50, 48, 0},
		{250, 30, 90, 80, 2},
		{250, 30, 120, 118, 2}, // idle network interval
	}
	var cum struct{ offered, lost, enq, acked, dup uint64 }
	tl.Sample() // t=0 anchor row
	for i, s := range steps {
		clk.now = time.Duration(i+1) * time.Second
		net.Offered, net.LostRandom = s.offered, s.lost
		pr.Enqueued, pr.Acked = s.enq, s.acked
		br.DupAppends = s.dup
		tl.Sample()
	}
	rows := tl.Rows()
	if len(rows) != len(steps)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(steps)+1)
	}
	if rows[0].At != 0 || rows[0].PktsOffered != 0 {
		t.Errorf("anchor row = %+v, want zero counts at t=0", rows[0])
	}
	// Second interval: offered 250-100, lost 30-5, loss rate 25/150.
	r := rows[2]
	if r.PktsOffered != 150 || r.PktsLost != 25 {
		t.Errorf("interval 2 pkts = %d/%d, want 25/150", r.PktsLost, r.PktsOffered)
	}
	if want := 25.0 / 150.0; r.LossRate != want {
		t.Errorf("interval 2 loss rate = %v, want %v", r.LossRate, want)
	}
	// Idle interval: zero packets must give loss rate 0, not NaN.
	if rows[3].PktsOffered != 0 || rows[3].LossRate != 0 {
		t.Errorf("idle interval = %+v, want zero packets and rate", rows[3])
	}
	for _, row := range rows {
		cum.offered += row.PktsOffered
		cum.lost += row.PktsLost
		cum.enq += row.Enqueued
		cum.acked += row.Acked
		cum.dup += row.DupAppends
	}
	last := steps[len(steps)-1]
	if cum.offered != last.offered || cum.lost != last.lost ||
		cum.enq != last.enq || cum.acked != last.acked || cum.dup != last.dup {
		t.Errorf("column sums %+v != final cumulative %+v", cum, last)
	}
	// No net probe state: GEState/DelayMs default to -1.
	tl2 := NewTimeline(time.Second)
	tl2.Sample()
	if r := tl2.Rows()[0]; r.GEState != -1 || r.DelayMs != -1 {
		t.Errorf("probe-less row = GEState %d DelayMs %v, want -1/-1", r.GEState, r.DelayMs)
	}
}

// TestTimelineCSV checks the fixed header, the annotation interleaving
// (annotations sort before rows at equal timestamps), and that repeated
// renders are byte-identical.
func TestTimelineCSV(t *testing.T) {
	clk := &tlClock{}
	tl := NewTimeline(time.Second)
	tl.BindClock(clk)
	tl.Sample()
	clk.now = time.Second
	tl.Annotate(AnnConfigSwitch, "B=5")
	tl.Sample()
	clk.now = 90 * time.Second
	tl.Annotate(AnnBrokerEvent, "fail broker 1")

	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+2+2 {
		t.Fatalf("lines = %d, want header + 2 samples + 2 annotations:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "at_ns,kind,entity,ge_state,") {
		t.Errorf("header = %q", lines[0])
	}
	// t=1s: annotation first, then the sample at the same instant.
	if !strings.Contains(lines[2], AnnConfigSwitch) || !strings.Contains(lines[2], "B=5") {
		t.Errorf("line 2 = %q, want the config_switch annotation", lines[2])
	}
	if !strings.Contains(lines[3], ",sample,") {
		t.Errorf("line 3 = %q, want the t=1s sample", lines[3])
	}
	if !strings.Contains(lines[4], AnnBrokerEvent) {
		t.Errorf("line 4 = %q, want the trailing broker_event", lines[4])
	}
	var buf2 bytes.Buffer
	if err := tl.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated WriteCSV renders differ")
	}
}
