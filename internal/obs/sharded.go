package obs

import "sort"

// Sharded is a fleet run's registry family: one independent *Registry
// per shard, merged into a single deterministic Snapshot at the end of
// the run. Each shard of a fleet (one topic's simulation) writes only
// its own registry, so parallel shards never contend on shared atomics —
// the scaling bottleneck a single global registry would reintroduce.
//
// A nil *Sharded is the disabled implementation: Shard returns the nil
// (no-op) registry and Merged returns the empty snapshot, matching the
// rest of the package's nil-safety contract.
type Sharded struct {
	shards []*Registry
}

// NewSharded returns n independent enabled registries. n <= 0 yields a
// zero-shard family whose Merged snapshot is empty.
func NewSharded(n int) *Sharded {
	if n < 0 {
		n = 0
	}
	s := &Sharded{shards: make([]*Registry, n)}
	for i := range s.shards {
		s.shards[i] = NewRegistry()
	}
	return s
}

// Len returns the shard count (0 when disabled).
func (s *Sharded) Len() int {
	if s == nil {
		return 0
	}
	return len(s.shards)
}

// Shard returns shard i's registry. Out-of-range indices and a nil
// receiver return the nil (disabled) registry.
func (s *Sharded) Shard(i int) *Registry {
	if s == nil || i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i]
}

// Merged folds every shard's snapshot into one, in shard order:
// counters and histogram buckets sum, gauges merge by their registered
// kind (max for high-water marks, sum for levels like lag). The result
// is sorted by metric name like any registry snapshot, so it is
// byte-comparable across worker counts.
func (s *Sharded) Merged() Snapshot {
	var out Snapshot
	if s == nil {
		return out
	}
	for _, r := range s.shards {
		out = MergeSnapshots(out, r.Snapshot())
	}
	return out
}

// MergeSnapshots combines two snapshots: counters sum, gauges merge by
// kind — GaugeKindMax takes the maximum, GaugeKindSum adds (a lag
// gauge must fold to 0 once every shard drains, which max-merging
// would forbid forever after any shard peaked) — and histograms with
// identical bounds sum bucket-wise taking the max of maxes (mismatched
// bounds keep a's buckets — bounds are fixed per metric name across the
// repo, so a mismatch means the inputs came from different schemas).
// Both inputs are sorted by name (the Snapshot contract) and the merge
// preserves that, so MergeSnapshots is associative and deterministic.
func MergeSnapshots(a, b Snapshot) Snapshot {
	var out Snapshot
	i, j := 0, 0
	for i < len(a.Counters) || j < len(b.Counters) {
		switch {
		case j == len(b.Counters) || (i < len(a.Counters) && a.Counters[i].Name < b.Counters[j].Name):
			out.Counters = append(out.Counters, a.Counters[i])
			i++
		case i == len(a.Counters) || b.Counters[j].Name < a.Counters[i].Name:
			out.Counters = append(out.Counters, b.Counters[j])
			j++
		default:
			out.Counters = append(out.Counters, CounterValue{
				Name:  a.Counters[i].Name,
				Value: a.Counters[i].Value + b.Counters[j].Value,
			})
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(a.Gauges) || j < len(b.Gauges) {
		switch {
		case j == len(b.Gauges) || (i < len(a.Gauges) && a.Gauges[i].Name < b.Gauges[j].Name):
			out.Gauges = append(out.Gauges, a.Gauges[i])
			i++
		case i == len(a.Gauges) || b.Gauges[j].Name < a.Gauges[i].Name:
			out.Gauges = append(out.Gauges, b.Gauges[j])
			j++
		default:
			g := a.Gauges[i]
			switch g.Kind {
			case GaugeKindSum:
				g.Value += b.Gauges[j].Value
			default:
				if b.Gauges[j].Value > g.Value {
					g.Value = b.Gauges[j].Value
				}
			}
			out.Gauges = append(out.Gauges, g)
			i++
			j++
		}
	}
	i, j = 0, 0
	for i < len(a.Histograms) || j < len(b.Histograms) {
		switch {
		case j == len(b.Histograms) || (i < len(a.Histograms) && a.Histograms[i].Name < b.Histograms[j].Name):
			out.Histograms = append(out.Histograms, a.Histograms[i])
			i++
		case i == len(a.Histograms) || b.Histograms[j].Name < a.Histograms[i].Name:
			out.Histograms = append(out.Histograms, b.Histograms[j])
			j++
		default:
			out.Histograms = append(out.Histograms, mergeHist(a.Histograms[i], b.Histograms[j]))
			i++
			j++
		}
	}
	// The inputs honour the sorted-snapshot contract; re-sorting costs
	// little and keeps the output canonical even if a caller hand-built
	// an unsorted snapshot.
	sort.Slice(out.Counters, func(x, y int) bool { return out.Counters[x].Name < out.Counters[y].Name })
	sort.Slice(out.Gauges, func(x, y int) bool { return out.Gauges[x].Name < out.Gauges[y].Name })
	sort.Slice(out.Histograms, func(x, y int) bool { return out.Histograms[x].Name < out.Histograms[y].Name })
	return out
}

func mergeHist(a, b HistogramValue) HistogramValue {
	if len(a.Bounds) != len(b.Bounds) {
		return a
	}
	for k := range a.Bounds {
		if a.Bounds[k] != b.Bounds[k] {
			return a
		}
	}
	out := HistogramValue{
		Name:   a.Name,
		Bounds: append([]int64(nil), a.Bounds...),
		Counts: append([]uint64(nil), a.Counts...),
		Max:    a.Max,
	}
	for k := range b.Counts {
		if k < len(out.Counts) {
			out.Counts[k] += b.Counts[k]
		}
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}
