package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Timeline is the sim-time sampler of one run: at a fixed virtual
// interval it polls the registered probes and records one fixed-schema
// row, turning end-of-run counters into per-interval series — *when*
// the run lost, duplicated and reconfigured, not just how much
// (the paper's Figs. 9-10 are exactly such timelines). Discrete
// moments — a scheduled config switch, an online-controller decision, a
// broker failure — are recorded as annotations interleaved with the
// rows.
//
// Like the rest of the obs package, a nil *Timeline is the disabled
// implementation: every method is a no-op, so instrumented code calls
// unconditionally. Probes must be pure observers: they read state but
// never draw from a model's random source (a probe that consumed
// randomness would perturb the simulation it is watching). Rows store
// interval deltas for the cumulative inputs, so summing a column over
// all rows reproduces the end-of-run counter exactly — the invariant
// the run-report cross-check leans on.
//
// A timeline observes exactly one simulation (one virtual clock). A
// fleet or scaled run therefore carries one timeline per observed
// entity — a producer ("t003/p0007") or a topic's broker side ("t003")
// — each tagged via SetEntity, and WriteMergedCSV interleaves the
// per-entity series into one deterministic CSV. Only the event Tracer
// still requires a single-producer run.
type Timeline struct {
	mu       sync.Mutex
	interval time.Duration
	entity   string
	clock    Clock
	netFn    func() NetProbe
	transFn  func() TransportProbe
	prodFn   func() ProducerProbe
	brokFn   func() BrokerProbe
	groupFn  func() GroupProbe
	rows     []TimelineRow
	anns     []TimelineAnnotation
	prevNet  NetProbe
	prevTr   TransportProbe
	prevPr   ProducerProbe
	prevBr   BrokerProbe
	prevGr   GroupProbe
}

// DefaultTimelineInterval is the sampling interval when NewTimeline gets
// a non-positive one — the Fig. 9 trace granularity.
const DefaultTimelineInterval = 10 * time.Second

// NewTimeline returns a timeline sampling every interval (<= 0 takes
// DefaultTimelineInterval).
func NewTimeline(interval time.Duration) *Timeline {
	if interval <= 0 {
		interval = DefaultTimelineInterval
	}
	return &Timeline{interval: interval}
}

// Interval returns the sampling interval (0 when disabled).
func (t *Timeline) Interval() time.Duration {
	if t == nil {
		return 0
	}
	return t.interval
}

// SetEntity tags the timeline with the entity it observes — e.g. a
// fleet topic ("t003") or one of its producers ("t003/p0007"). The tag
// lands in the CSV's entity column; an untagged timeline writes an
// empty column, which keeps single-run CSVs stable.
func (t *Timeline) SetEntity(entity string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entity = entity
}

// Entity returns the entity tag ("" when untagged or disabled).
func (t *Timeline) Entity() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.entity
}

// BindClock attaches the virtual clock rows and annotations are stamped
// with. Samples taken with no clock bound carry At = 0.
func (t *Timeline) BindClock(c Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = c
}

// NetProbe is the instantaneous network-emulation state a probe
// returns: the loss chain's current state and configured rates
// (read without consuming randomness) plus cumulative packet counters.
type NetProbe struct {
	// GEState is the Gilbert-Elliot chain state: 0 good, 1 bad, -1 when
	// the loss model is not a chain (e.g. per-segment Bernoulli traces).
	GEState int
	// DelayMs is the configured propagation delay; -1 when the delay
	// model is not deterministic (probing it would consume randomness).
	DelayMs float64
	// CfgLoss is the configured model's long-run loss probability.
	CfgLoss float64
	// Cumulative packet counters (both directions of the path).
	Offered      uint64
	Delivered    uint64
	LostRandom   uint64
	LostOverflow uint64
}

// TransportProbe is the instantaneous sender state plus cumulative
// transport counters.
type TransportProbe struct {
	Cwnd         float64
	SRTT         time.Duration
	RTO          time.Duration
	InFlight     int
	SegmentsSent uint64
	Retransmits  uint64
	RTOTimeouts  uint64
}

// ProducerProbe is the instantaneous accumulator state plus cumulative
// record outcomes.
type ProducerProbe struct {
	QueueDepth      int
	InFlightBatches int
	Enqueued        uint64
	Acked           uint64
	Lost            uint64
	BatchRetries    uint64
}

// BrokerProbe is the cluster-wide broker state: summed leader log end
// offsets plus cumulative append counters over every broker (followers
// included, so replication-factor many copies of each append count).
type BrokerProbe struct {
	LogEnd     int64
	Appends    uint64
	DupAppends uint64
}

// GroupProbe is the instantaneous consumer-group state plus cumulative
// delivery counters. Lag is the summed committed-to-high-watermark gap
// over the partitions; LagByPartition breaks it down in partition
// order (nil when the group has no partition view yet).
type GroupProbe struct {
	Lag            int64
	LagByPartition []int64
	Delivered      uint64
	Redelivered    uint64
	CommitAcks     uint64
	Rebalances     uint64
}

// SetProbes registers the four subsystem probes. Any probe may be nil;
// its columns then stay zero (GEState/DelayMs -1).
func (t *Timeline) SetProbes(net func() NetProbe, trans func() TransportProbe, prod func() ProducerProbe, brok func() BrokerProbe) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.netFn, t.transFn, t.prodFn, t.brokFn = net, trans, prod, brok
}

// SetGroupProbe registers the consumer-group probe (separate from
// SetProbes so existing four-probe callers stay untouched). A nil
// probe keeps the group columns at zero.
func (t *Timeline) SetGroupProbe(group func() GroupProbe) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.groupFn = group
}

// TimelineRow is one fixed-schema sample. Gauges (GE state, delay,
// cwnd, SRTT, queue depth, log end) are instantaneous; every count is
// the delta over the interval since the previous row, so column sums
// equal the end-of-run cumulative counters.
type TimelineRow struct {
	At time.Duration

	// Network emulation.
	GEState     int
	DelayMs     float64
	CfgLoss     float64
	PktsOffered uint64
	PktsLost    uint64  // random + overflow drops this interval
	LossRate    float64 // empirical: PktsLost / PktsOffered (0 when idle)

	// Transport.
	Cwnd         float64
	SRTT         time.Duration
	RTO          time.Duration
	InFlightSegs int
	SegmentsSent uint64
	Retransmits  uint64
	RTOTimeouts  uint64

	// Producer.
	QueueDepth      int
	InFlightBatches int
	Enqueued        uint64
	Acked           uint64
	Lost            uint64
	BatchRetries    uint64

	// Broker / cluster.
	LogEnd     int64
	Appends    uint64
	DupAppends uint64

	// Consumer group. Lag and LagParts are instantaneous (LagParts in
	// partition order, nil without a group probe); the counts are
	// interval deltas like every other count column.
	Lag              int64
	LagParts         []int64
	GroupDelivered   uint64
	GroupRedelivered uint64
	CommitAcks       uint64
	Rebalances       uint64
}

// Annotation kinds.
const (
	// AnnConfigSwitch marks a scheduled (offline) configuration change.
	AnnConfigSwitch = "config_switch"
	// AnnOnlineDecision marks an OnlineController reconfiguration.
	AnnOnlineDecision = "online_decision"
	// AnnBrokerEvent marks an injected broker failure or recovery.
	AnnBrokerEvent = "broker_event"
	// AnnFault marks a chaos fault-plan action (partition window, delay
	// spike, loss burst, connection reset, broker slowdown, ...).
	AnnFault = "fault"
)

// TimelineAnnotation is a discrete moment worth a marker on the
// timeline: what happened (Kind) and its parameters (Detail).
type TimelineAnnotation struct {
	At     time.Duration
	Kind   string
	Detail string
}

// Annotate records a discrete event at the current virtual time.
func (t *Timeline) Annotate(kind, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ann := TimelineAnnotation{Kind: kind, Detail: detail}
	if t.clock != nil {
		ann.At = t.clock.Now()
	}
	t.anns = append(t.anns, ann)
}

// Sample polls every registered probe and appends one row. The testbed
// drives it from a virtual-time ticker and takes one final sample after
// the simulation drains, so late events (a spurious retry's first copy
// landing after the producer finished) are still covered by a row.
func (t *Timeline) Sample() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	row := TimelineRow{GEState: -1, DelayMs: -1}
	if t.clock != nil {
		row.At = t.clock.Now()
	}
	if t.netFn != nil {
		cur := t.netFn()
		row.GEState = cur.GEState
		row.DelayMs = cur.DelayMs
		row.CfgLoss = cur.CfgLoss
		row.PktsOffered = cur.Offered - t.prevNet.Offered
		row.PktsLost = (cur.LostRandom - t.prevNet.LostRandom) +
			(cur.LostOverflow - t.prevNet.LostOverflow)
		if row.PktsOffered > 0 {
			row.LossRate = float64(row.PktsLost) / float64(row.PktsOffered)
		}
		t.prevNet = cur
	}
	if t.transFn != nil {
		cur := t.transFn()
		row.Cwnd = cur.Cwnd
		row.SRTT = cur.SRTT
		row.RTO = cur.RTO
		row.InFlightSegs = cur.InFlight
		row.SegmentsSent = cur.SegmentsSent - t.prevTr.SegmentsSent
		row.Retransmits = cur.Retransmits - t.prevTr.Retransmits
		row.RTOTimeouts = cur.RTOTimeouts - t.prevTr.RTOTimeouts
		t.prevTr = cur
	}
	if t.prodFn != nil {
		cur := t.prodFn()
		row.QueueDepth = cur.QueueDepth
		row.InFlightBatches = cur.InFlightBatches
		row.Enqueued = cur.Enqueued - t.prevPr.Enqueued
		row.Acked = cur.Acked - t.prevPr.Acked
		row.Lost = cur.Lost - t.prevPr.Lost
		row.BatchRetries = cur.BatchRetries - t.prevPr.BatchRetries
		t.prevPr = cur
	}
	if t.brokFn != nil {
		cur := t.brokFn()
		row.LogEnd = cur.LogEnd
		row.Appends = cur.Appends - t.prevBr.Appends
		row.DupAppends = cur.DupAppends - t.prevBr.DupAppends
		t.prevBr = cur
	}
	if t.groupFn != nil {
		cur := t.groupFn()
		row.Lag = cur.Lag
		row.LagParts = append([]int64(nil), cur.LagByPartition...)
		row.GroupDelivered = cur.Delivered - t.prevGr.Delivered
		row.GroupRedelivered = cur.Redelivered - t.prevGr.Redelivered
		row.CommitAcks = cur.CommitAcks - t.prevGr.CommitAcks
		row.Rebalances = cur.Rebalances - t.prevGr.Rebalances
		t.prevGr = cur
	}
	t.rows = append(t.rows, row)
}

// Rows returns a copy of the samples in time order.
func (t *Timeline) Rows() []TimelineRow {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TimelineRow(nil), t.rows...)
}

// Annotations returns a copy of the annotations in emission order.
func (t *Timeline) Annotations() []TimelineAnnotation {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TimelineAnnotation(nil), t.anns...)
}

// timelineHeader is the fixed CSV schema. Renaming or reordering a
// column is a breaking change for timeline consumers. The entity column
// carries the SetEntity tag (empty on single-entity runs).
var timelineHeader = []string{
	"at_ns", "kind", "entity",
	"ge_state", "delay_ms", "cfg_loss", "pkts_offered", "pkts_lost", "loss_rate",
	"cwnd", "srtt_ns", "rto_ns", "inflight_segs", "segs_sent", "retransmits", "rto_timeouts",
	"queue_depth", "inflight_batches", "enqueued", "acked", "lost", "batch_retries",
	"log_end", "appends", "dup_appends",
	"lag", "group_delivered", "group_redelivered", "commit_acks", "rebalances",
	"detail",
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func utoa(v uint64) string  { return strconv.FormatUint(v, 10) }
func itoa(v int64) string   { return strconv.FormatInt(v, 10) }

// WriteCSV renders the timeline as CSV: the fixed header, then samples
// (kind "sample") and annotations merged in time order, annotations
// first at equal timestamps (an annotation explains the rows that
// follow it). Number formatting is canonical, so for a fixed seed the
// bytes are identical regardless of worker count — the same contract
// the metrics snapshot honours.
func (t *Timeline) WriteCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(timelineHeader); err != nil {
		return fmt.Errorf("obs: write timeline: %w", err)
	}
	if err := t.writeEntries(cw); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("obs: write timeline: %w", err)
	}
	return nil
}

// writeEntries emits the timeline's interleaved samples and annotations
// (annotations first at equal timestamps) without header or flush.
func (t *Timeline) writeEntries(cw *csv.Writer) error {
	rows := t.Rows()
	anns := t.Annotations()
	entity := t.Entity()
	i, j := 0, 0
	for i < len(rows) || j < len(anns) {
		var err error
		switch {
		case i == len(rows):
			err = writeAnnRecord(cw, entity, anns[j])
			j++
		case j == len(anns):
			err = writeSampleRecord(cw, entity, rows[i])
			i++
		case anns[j].At <= rows[i].At:
			err = writeAnnRecord(cw, entity, anns[j])
			j++
		default:
			err = writeSampleRecord(cw, entity, rows[i])
			i++
		}
		if err != nil {
			return fmt.Errorf("obs: write timeline: %w", err)
		}
	}
	return nil
}

func writeSampleRecord(cw *csv.Writer, entity string, r TimelineRow) error {
	return cw.Write([]string{
		itoa(int64(r.At)), "sample", entity,
		strconv.Itoa(r.GEState), ftoa(r.DelayMs), ftoa(r.CfgLoss),
		utoa(r.PktsOffered), utoa(r.PktsLost), ftoa(r.LossRate),
		ftoa(r.Cwnd), itoa(int64(r.SRTT)), itoa(int64(r.RTO)),
		strconv.Itoa(r.InFlightSegs), utoa(r.SegmentsSent), utoa(r.Retransmits), utoa(r.RTOTimeouts),
		strconv.Itoa(r.QueueDepth), strconv.Itoa(r.InFlightBatches),
		utoa(r.Enqueued), utoa(r.Acked), utoa(r.Lost), utoa(r.BatchRetries),
		itoa(r.LogEnd), utoa(r.Appends), utoa(r.DupAppends),
		itoa(r.Lag), utoa(r.GroupDelivered), utoa(r.GroupRedelivered), utoa(r.CommitAcks), utoa(r.Rebalances),
		"",
	})
}

func writeAnnRecord(cw *csv.Writer, entity string, a TimelineAnnotation) error {
	rec := make([]string, len(timelineHeader))
	rec[0] = itoa(int64(a.At))
	rec[1] = a.Kind
	rec[2] = entity
	rec[len(rec)-1] = a.Detail
	return cw.Write(rec)
}

// WriteMergedCSV renders several timelines — a fleet run's per-entity
// series — as one CSV in the same fixed schema, interleaved by
// timestamp. Ties are broken by the timelines' input order and, within
// one timeline, by its own WriteCSV order (annotations before samples
// at equal times). Callers pass the timelines in a deterministic order
// (the fleet emits them in shard-then-producer order), so the merged
// bytes are identical at any worker count.
func WriteMergedCSV(w io.Writer, timelines []*Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(timelineHeader); err != nil {
		return fmt.Errorf("obs: write merged timeline: %w", err)
	}
	type entry struct {
		at     time.Duration
		tl     int
		seq    int
		isAnn  bool
		row    TimelineRow
		ann    TimelineAnnotation
		entity string
	}
	var entries []entry
	for ti, t := range timelines {
		if t == nil {
			continue
		}
		rows := t.Rows()
		anns := t.Annotations()
		entity := t.Entity()
		seq := 0
		i, j := 0, 0
		for i < len(rows) || j < len(anns) {
			takeAnn := j < len(anns) && (i == len(rows) || anns[j].At <= rows[i].At)
			if takeAnn {
				entries = append(entries, entry{at: anns[j].At, tl: ti, seq: seq, isAnn: true, ann: anns[j], entity: entity})
				j++
			} else {
				entries = append(entries, entry{at: rows[i].At, tl: ti, seq: seq, row: rows[i], entity: entity})
				i++
			}
			seq++
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].at != entries[b].at {
			return entries[a].at < entries[b].at
		}
		if entries[a].tl != entries[b].tl {
			return entries[a].tl < entries[b].tl
		}
		return entries[a].seq < entries[b].seq
	})
	for _, e := range entries {
		var err error
		if e.isAnn {
			err = writeAnnRecord(cw, e.entity, e.ann)
		} else {
			err = writeSampleRecord(cw, e.entity, e.row)
		}
		if err != nil {
			return fmt.Errorf("obs: write merged timeline: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("obs: write merged timeline: %w", err)
	}
	return nil
}

// lagHeader is the fixed schema of the per-partition lag projection.
var lagHeader = []string{"at_ns", "entity", "partition", "lag"}

// WriteLagCSV renders the consumer-lag projection of several timelines
// as one CSV: for every sample of a timeline carrying a group probe,
// one row per partition (partition index, instantaneous lag) plus an
// aggregate row with partition -1. Rows interleave by timestamp with
// ties broken by timeline input order, so like the merged timeline the
// bytes are identical at any worker count.
func WriteLagCSV(w io.Writer, timelines []*Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(lagHeader); err != nil {
		return fmt.Errorf("obs: write lag timeline: %w", err)
	}
	type entry struct {
		at     time.Duration
		tl     int
		seq    int
		entity string
		row    TimelineRow
	}
	var entries []entry
	for ti, t := range timelines {
		if t == nil {
			continue
		}
		entity := t.Entity()
		for seq, row := range t.Rows() {
			if row.LagParts == nil {
				continue
			}
			entries = append(entries, entry{at: row.At, tl: ti, seq: seq, entity: entity, row: row})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].at != entries[b].at {
			return entries[a].at < entries[b].at
		}
		if entries[a].tl != entries[b].tl {
			return entries[a].tl < entries[b].tl
		}
		return entries[a].seq < entries[b].seq
	})
	for _, e := range entries {
		if err := cw.Write([]string{itoa(int64(e.at)), e.entity, "-1", itoa(e.row.Lag)}); err != nil {
			return fmt.Errorf("obs: write lag timeline: %w", err)
		}
		for p, lag := range e.row.LagParts {
			if err := cw.Write([]string{itoa(int64(e.at)), e.entity, strconv.Itoa(p), itoa(lag)}); err != nil {
				return fmt.Errorf("obs: write lag timeline: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("obs: write lag timeline: %w", err)
	}
	return nil
}
