package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestShardedMerge checks the merge semantics: counters sum, gauges
// take the maximum, histogram buckets sum, and the merged snapshot is
// byte-identical regardless of which shard saw which update.
func TestShardedMerge(t *testing.T) {
	s := NewSharded(3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i := 0; i < 3; i++ {
		s.Shard(i).Counter(MBrokerAppends).Add(uint64(10 * (i + 1)))
		s.Shard(i).Gauge(MSimQueueMax).SetMax(int64(100 * (i + 1)))
		s.Shard(i).Histogram(MQueueDepth, QueueDepthBounds).Observe(int64(i))
	}
	// A metric only one shard touched must still appear.
	s.Shard(1).Counter(MRetransmits).Add(7)

	m := s.Merged()
	if got := m.Counter(MBrokerAppends); got != 60 {
		t.Errorf("appends = %d, want 60", got)
	}
	if got := m.Counter(MRetransmits); got != 7 {
		t.Errorf("retransmits = %d, want 7", got)
	}
	if got := m.Gauge(MSimQueueMax); got != 300 {
		t.Errorf("queue max = %d, want 300 (max across shards)", got)
	}
	h, ok := m.Histogram(MQueueDepth)
	if !ok {
		t.Fatal("queue-depth histogram missing from merged snapshot")
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("histogram observations = %d, want 3", total)
	}

	// Mirror the updates into one flat registry: the merged snapshot of
	// the shards must encode identically (counters and histograms; the
	// gauge is a running max in both layouts).
	flat := NewRegistry()
	flat.Counter(MBrokerAppends).Add(60)
	flat.Counter(MRetransmits).Add(7)
	flat.Gauge(MSimQueueMax).SetMax(300)
	for i := 0; i < 3; i++ {
		flat.Histogram(MQueueDepth, QueueDepthBounds).Observe(int64(i))
	}
	if !bytes.Equal(m.Encode(), flat.Snapshot().Encode()) {
		t.Errorf("sharded merge != flat registry:\n%s\nvs\n%s", m.Encode(), flat.Snapshot().Encode())
	}
}

// TestShardedNil pins the disabled-implementation contract.
func TestShardedNil(t *testing.T) {
	var s *Sharded
	if s.Len() != 0 {
		t.Error("nil Sharded has shards")
	}
	if s.Shard(0) != nil {
		t.Error("nil Sharded returned a live registry")
	}
	s.Shard(0).Counter("x").Inc() // must not panic
	if enc := s.Merged().Encode(); len(enc) != 0 {
		t.Errorf("nil merge encodes %q", enc)
	}
	live := NewSharded(2)
	if live.Shard(-1) != nil || live.Shard(2) != nil {
		t.Error("out-of-range shard index returned a live registry")
	}
}

// TestMergeSnapshotsAssociative checks the fold order cannot matter —
// the property the fleet's shard-order merge relies on.
func TestMergeSnapshotsAssociative(t *testing.T) {
	mk := func(n string, v uint64) Snapshot {
		r := NewRegistry()
		r.Counter(n).Add(v)
		r.Counter("shared").Add(v)
		return r.Snapshot()
	}
	a, b, c := mk("a", 1), mk("b", 2), mk("c", 3)
	left := MergeSnapshots(MergeSnapshots(a, b), c)
	right := MergeSnapshots(a, MergeSnapshots(b, c))
	if !bytes.Equal(left.Encode(), right.Encode()) {
		t.Errorf("merge not associative:\n%s\nvs\n%s", left.Encode(), right.Encode())
	}
	if got := left.Counter("shared"); got != 6 {
		t.Errorf("shared counter = %d, want 6", got)
	}
}

// TestWriteMergedCSV checks the entity column and the deterministic
// interleaving of several tagged timelines.
func TestWriteMergedCSV(t *testing.T) {
	clk := &tlClock{}
	mkTL := func(entity string, times ...time.Duration) *Timeline {
		tl := NewTimeline(time.Second)
		tl.SetEntity(entity)
		tl.BindClock(clk)
		for _, at := range times {
			clk.now = at
			tl.Sample()
		}
		return tl
	}
	a := mkTL("t000/p0000", 0, time.Second, 2*time.Second)
	b := mkTL("t000", 0, 2*time.Second)
	clk.now = time.Second
	b.Annotate(AnnBrokerEvent, "fail broker 0")

	var buf bytes.Buffer
	if err := WriteMergedCSV(&buf, []*Timeline{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+3+2+1 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "at_ns,kind,entity,") {
		t.Fatalf("header = %q", lines[0])
	}
	wantOrder := []string{
		"0,sample,t000/p0000",
		"0,sample,t000",
		"1000000000,sample,t000/p0000",
		"1000000000,broker_event,t000",
		"2000000000,sample,t000/p0000",
		"2000000000,sample,t000",
	}
	for i, want := range wantOrder {
		if !strings.HasPrefix(lines[i+1], want) {
			t.Errorf("line %d = %q, want prefix %q", i+1, lines[i+1], want)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteMergedCSV(&buf2, []*Timeline{a, b}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated merged renders differ")
	}
}
