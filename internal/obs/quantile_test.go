package obs

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"
)

// quantileOracle is the brute-force reference: the q-quantile of the
// sorted samples, reported at the resolution the histogram can recover —
// the upper bound of the bucket holding the ⌈q·n⌉-th smallest sample,
// clamped to the exact tracked maximum (overflow bucket → max).
func quantileOracle(sorted []int64, bounds []int64, q float64) int64 {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	v := sorted[rank-1]
	max := sorted[n-1]
	for _, b := range bounds {
		if v <= b {
			if b < max {
				return b
			}
			return max
		}
	}
	return max
}

// TestHistogramQuantileExact checks Quantile against a brute-force sort
// over seeded log-uniform samples spanning every bucket including the
// overflow, for a sweep of quantiles and sample counts.
func TestHistogramQuantileExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	qs := []float64{0, 0.25, 0.50, 0.90, 0.95, 0.99, 1}
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.IntN(2000)
		h := NewRegistry().Histogram("h", LatencyBounds)
		samples := make([]int64, n)
		for i := range samples {
			// Log-uniform over [1, 120s in ns]: covers the full bucket
			// range and spills into the overflow bucket.
			v := int64(math.Exp(rng.Float64() * math.Log(1.2e11)))
			samples[i] = v
			h.Observe(v)
		}
		slices.Sort(samples)
		if got, want := h.Max(), samples[n-1]; got != want {
			t.Fatalf("trial %d: Max = %d, want exact max %d", trial, got, want)
		}
		for _, q := range qs {
			want := quantileOracle(samples, LatencyBounds, q)
			if got := h.Quantile(q); got != want {
				t.Errorf("trial %d n=%d: Quantile(%v) = %d, want %d", trial, n, q, got, want)
			}
		}
	}
}

// TestHistogramQuantileMerged checks that quantiles of a histogram
// merged across shards match the brute-force oracle over the union of
// all shards' samples — bucket counts add and the max merges, so the
// merged view must answer exactly like a single histogram that saw
// every sample.
func TestHistogramQuantileMerged(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	s := NewSharded(3)
	var all []int64
	for i := 0; i < 3; i++ {
		h := s.Shard(i).Histogram("h", LatencyBounds)
		for j := 0; j < 400+100*i; j++ {
			v := int64(math.Exp(rng.Float64() * math.Log(1.2e11)))
			all = append(all, v)
			h.Observe(v)
		}
	}
	slices.Sort(all)
	hv, ok := s.Merged().Histogram("h")
	if !ok {
		t.Fatal("merged snapshot lacks histogram")
	}
	if got, want := hv.Max, all[len(all)-1]; got != want {
		t.Fatalf("merged Max = %d, want %d", got, want)
	}
	for _, q := range []float64{0.50, 0.95, 0.99, 1} {
		want := quantileOracle(all, LatencyBounds, q)
		if got := hv.Quantile(q); got != want {
			t.Errorf("merged Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

// TestGaugeKindMergeAssociative checks that merging snapshots with both
// gauge kinds is associative and kind-faithful: max-kind gauges take
// the maximum, sum-kind gauges add.
func TestGaugeKindMergeAssociative(t *testing.T) {
	mk := func(maxV, sumV int64) Snapshot {
		r := NewRegistry()
		r.Gauge("depth.max").SetMax(maxV)
		r.GaugeOf("lag.sum", GaugeKindSum).Set(sumV)
		return r.Snapshot()
	}
	a, b, c := mk(5, 10), mk(9, 20), mk(2, 30)
	left := MergeSnapshots(MergeSnapshots(a, b), c)
	right := MergeSnapshots(a, MergeSnapshots(b, c))
	if string(left.Encode()) != string(right.Encode()) {
		t.Errorf("gauge merge not associative:\n%s\nvs\n%s", left.Encode(), right.Encode())
	}
	if got := left.Gauge("depth.max"); got != 9 {
		t.Errorf("max-kind gauge = %d, want 9", got)
	}
	if got := left.Gauge("lag.sum"); got != 60 {
		t.Errorf("sum-kind gauge = %d, want 60", got)
	}
}
