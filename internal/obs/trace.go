package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Layer names used in the Event schema.
const (
	LayerDES       = "des"
	LayerNetem     = "netem"
	LayerTransport = "transport"
	LayerProducer  = "producer"
	LayerBroker    = "broker"
	LayerCluster   = "cluster"
)

// Event types. The schema is stable: renaming or renumbering a type is
// a breaking change for trace consumers.
//
// Record lifecycle (the Fig. 2 / Table I case transitions):
//
//	record_enqueue   key=record key       value=queue depth after enqueue
//	record_delivered key=record key       value=attempts  aux=case (1 or 4)
//	record_lost      key=record key       value=attempts  aux=case (2 or 3)
//	batch_send       key=batch sequence   value=records   aux=attempt (1-based)
//	batch_ack        key=batch sequence   value=records   aux=correlation id
//	request_timeout  key=batch sequence   value=correlation id
//	batch_retry      key=batch sequence   value=backoff ns aux=next attempt
//	batch_fail       key=batch sequence   value=records   aux=attempts used
//	batch_error      key=batch sequence   detail=error code
//
// Transport (detail carries the endpoint name, "client" or "server"):
//
//	segment_send       key=segment seq  value=payload bytes  aux=retries so far
//	segment_retransmit key=segment seq  value=payload bytes  aux=retry number
//	rto_backoff        value=new RTO ns  aux=consecutive backoffs
//	fast_retransmit    key=segment seq
//	cwnd_change        value=cwnd segments  aux=ssthresh segments
//	conn_broken        detail=error
//
// Broker and cluster:
//
//	append         key=batch base sequence  value=base offset  aux=broker id
//	duplicate_drop key=batch base sequence  value=original offset  aux=broker id
//	replicate      key=batch base sequence  value=partition  aux=follower id
//
// Network emulation:
//
//	pkt_loss     value=packet bytes (dropped by the loss model)
//	pkt_overflow value=packet bytes (dropped by the full device queue)
const (
	EvRecordEnqueue   = "record_enqueue"
	EvRecordDelivered = "record_delivered"
	EvRecordLost      = "record_lost"
	EvBatchSend       = "batch_send"
	EvBatchAck        = "batch_ack"
	EvRequestTimeout  = "request_timeout"
	EvBatchRetry      = "batch_retry"
	EvBatchFail       = "batch_fail"
	EvBatchError      = "batch_error"

	EvSegmentSend       = "segment_send"
	EvSegmentRetransmit = "segment_retransmit"
	EvRTOBackoff        = "rto_backoff"
	EvFastRetransmit    = "fast_retransmit"
	EvCwndChange        = "cwnd_change"
	EvConnBroken        = "conn_broken"

	EvAppend        = "append"
	EvDuplicateDrop = "duplicate_drop"
	EvReplicate     = "replicate"
	EvUncleanCrash  = "unclean_crash"

	EvPktLoss     = "pkt_loss"
	EvPktOverflow = "pkt_overflow"
)

// Event is one structured trace record. At is virtual time; Key, Value
// and Aux carry the per-type payload documented above.
type Event struct {
	At     time.Duration `json:"at_ns"`
	Layer  string        `json:"layer"`
	Type   string        `json:"type"`
	Key    uint64        `json:"key,omitempty"`
	Value  int64         `json:"value,omitempty"`
	Aux    int64         `json:"aux,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Tracer records events into a bounded ring buffer and, when a sink is
// set, streams each event as one JSON line. The zero value is not
// usable; create with NewTracer. A nil *Tracer is the disabled tracer:
// Emit is a no-op.
//
// A tracer observes exactly one simulation: BindClock attaches the
// virtual clock when the run is assembled. Methods are mutex-guarded so
// a sink can be drained while a run is in flight, but one tracer must
// not be shared between concurrently running simulations (their virtual
// clocks would interleave meaninglessly).
type Tracer struct {
	mu      sync.Mutex
	clock   Clock
	ring    []Event
	start   int // oldest event
	count   int
	total   uint64
	enc     *json.Encoder
	sinkErr error
}

// DefaultTraceCapacity is the ring size when NewTracer gets cap <= 0.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer with a ring buffer of the given capacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// BindClock attaches the virtual clock events are stamped with. Events
// emitted with no clock bound carry At = 0.
func (t *Tracer) BindClock(c Clock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = c
}

// SetSink streams every subsequent event to w as JSONL in addition to
// the ring. A write error disables the sink and is reported by Err.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w == nil {
		t.enc = nil
		return
	}
	t.enc = json.NewEncoder(w)
}

// Emit records one event.
func (t *Tracer) Emit(layer, typ string, key uint64, value, aux int64, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := Event{Layer: layer, Type: typ, Key: key, Value: value, Aux: aux, Detail: detail}
	if t.clock != nil {
		ev.At = t.clock.Now()
	}
	i := t.start + t.count
	if t.count == len(t.ring) {
		// Ring full: evict the oldest.
		i = t.start
		t.start = (t.start + 1) % len(t.ring)
	} else {
		t.count++
	}
	t.ring[i%len(t.ring)] = ev
	t.total++
	if t.enc != nil {
		if err := t.enc.Encode(ev); err != nil {
			t.sinkErr = err
			t.enc = nil
		}
	}
}

// Events returns the buffered events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
	}
	return out
}

// Total returns how many events were emitted over the tracer's
// lifetime, including any evicted from the ring.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Err reports the first sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// WriteJSONL dumps the buffered events to w, one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a JSONL trace written by a sink or WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: read trace: %w", err)
		}
		out = append(out, ev)
	}
}

// chainTypes are the event types that form a batch's delivery chain.
var chainTypes = map[string]bool{
	EvBatchSend:      true,
	EvBatchAck:       true,
	EvRequestTimeout: true,
	EvBatchRetry:     true,
	EvBatchFail:      true,
	EvBatchError:     true,
	EvAppend:         true,
	EvDuplicateDrop:  true,
}

// DuplicateChains extracts, per batch sequence, the event chains of
// batches that were appended more than once by the same broker — the
// Fig. 8 Case-5 mechanism (send → RTO-inflated response → retry →
// duplicate append). Follower appends from replication do not count:
// a duplicate requires the same broker to append the same batch
// sequence at least twice. Chains are returned in order of their first
// event; events within a chain keep emission order.
func DuplicateChains(events []Event) [][]Event {
	type brokerKey struct {
		seq    uint64
		broker int64
	}
	appends := make(map[brokerKey]int)
	dup := make(map[uint64]bool)
	for _, ev := range events {
		if ev.Type != EvAppend && ev.Type != EvDuplicateDrop {
			continue
		}
		k := brokerKey{seq: ev.Key, broker: ev.Aux}
		appends[k]++
		// duplicate_drop means the broker recognised a retry of a
		// persisted batch (idempotent mode): that is a duplicate chain
		// too, just a suppressed one.
		if appends[k] >= 2 || ev.Type == EvDuplicateDrop {
			dup[ev.Key] = true
		}
	}
	if len(dup) == 0 {
		return nil
	}
	chains := make(map[uint64][]Event)
	for _, ev := range events {
		if dup[ev.Key] && chainTypes[ev.Type] {
			chains[ev.Key] = append(chains[ev.Key], ev)
		}
	}
	keys := make([]uint64, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := chains[keys[i]][0], chains[keys[j]][0]
		if a.At != b.At {
			return a.At < b.At
		}
		return keys[i] < keys[j]
	})
	out := make([][]Event, 0, len(keys))
	for _, k := range keys {
		out = append(out, chains[k])
	}
	return out
}

// IsCompleteDuplicateChain reports whether a chain contains the full
// Fig. 8 causal sequence: an initial send, a spurious request timeout,
// a retry, and a second append (or an idempotent duplicate_drop).
func IsCompleteDuplicateChain(chain []Event) bool {
	var send, timeout, retry bool
	appendsByBroker := make(map[int64]int)
	dupDrop := false
	for _, ev := range chain {
		switch ev.Type {
		case EvBatchSend:
			send = true
		case EvRequestTimeout:
			timeout = true
		case EvBatchRetry:
			retry = true
		case EvAppend:
			appendsByBroker[ev.Aux]++
		case EvDuplicateDrop:
			dupDrop = true
		}
	}
	dupAppend := dupDrop
	for _, n := range appendsByBroker {
		if n >= 2 {
			dupAppend = true
		}
	}
	return send && timeout && retry && dupAppend
}
