// Package obs is the simulation-time observability subsystem: a
// registry of named counters, gauges and fixed-bucket histograms plus a
// structured event tracer (trace.go), both reading the des virtual
// clock instead of the wall clock.
//
// Design constraints, in order:
//
//   - Cheap enough to stay on by default. Handles are resolved once at
//     construction time; the hot path is a nil check plus one atomic
//     word-sized operation, with no allocation and no map lookup.
//   - A no-op implementation when disabled. Every handle method has a
//     nil receiver fast path, so instrumented code calls
//     counter.Inc() unconditionally and a nil *Registry (or nil *Obs)
//     turns the whole subsystem into dead branches.
//   - Deterministic output. Snapshots list metrics in sorted name
//     order and encode to a canonical byte form, so two runs with the
//     same seed produce byte-identical snapshots regardless of worker
//     count or scheduling (the repo-wide determinism contract).
//
// The package is zero-dependency (stdlib only) and imported by the DES
// kernel and every protocol layer; it must never import them back.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts the virtual clock; *des.Simulator satisfies it.
type Clock interface {
	Now() time.Duration
}

// Canonical metric names. Instrumented subsystems register under these
// so that snapshots and the testbed's MetricsSnapshot agree on one
// stable schema.
const (
	// DES kernel.
	MSimEvents   = "des.events_fired"
	MSimQueueMax = "des.queue_max"

	// Network emulation.
	MNetOffered      = "netem.offered"
	MNetDelivered    = "netem.delivered"
	MNetLostRandom   = "netem.lost_random"
	MNetLostOverflow = "netem.lost_overflow"

	// Transport.
	MSegmentsSent    = "transport.segments_sent"
	MRetransmits     = "transport.retransmits"
	MFastRetransmits = "transport.fast_retransmits"
	MRTOTimeouts     = "transport.rto_timeouts"
	MRTOMaxNs        = "transport.rto_max_ns"
	MAcksSent        = "transport.acks_sent"
	MConnBreaks      = "transport.conn_breaks"

	// Producer.
	MRecordsEnqueued = "producer.records_enqueued"
	MBatchesSent     = "producer.batches_sent"
	MBatchRetries    = "producer.batch_retries"
	MRequestTimeouts = "producer.request_timeouts"
	MQueueDepth      = "producer.queue_depth"

	// Broker / cluster.
	MBrokerProduce    = "broker.produce_requests"
	MBrokerAppends    = "broker.appends"
	MBrokerDuplicates = "broker.duplicates_dropped"
	MBrokerDupAppends = "broker.duplicate_appends"
	MBrokerTruncated  = "broker.records_truncated"
	MBrokerUnclean    = "broker.unclean_restarts"
	MReplications     = "cluster.replications"
	// MReplicationFactor is a config-valued gauge (kind max): the
	// replication factor of the run's data topics. Observability-only
	// consumers (the measured KPI) use it to normalize per-replica
	// counters such as duplicate appends down to per-copy values.
	MReplicationFactor = "cluster.replication_factor"

	// Record-latency spans. Each is a sim-time histogram (LatencyBounds,
	// nanoseconds) of the cumulative latency from produce-enqueue to the
	// named stage; the epoch rides on wire.Record.Timestamp, so no span
	// objects exist and the hot path stays allocation-free.
	MSpanSend       = "span.enqueue_to_send"
	MSpanAppend     = "span.enqueue_to_append"
	MSpanReplicated = "span.enqueue_to_replicated"
	MSpanAck        = "span.enqueue_to_ack"
	MSpanDelivery   = "span.enqueue_to_delivery"
	MSpanCommit     = "span.commit"

	// Producer delivery outcomes (denominators of the span histograms).
	MRecordsDelivered = "producer.records_delivered"
	MRecordsLost      = "producer.records_lost"

	// Network payload volume (the measured-φ numerator).
	MNetBytesDelivered = "netem.bytes_delivered"

	// Consumer group.
	MConsumerDelivered   = "consumer.delivered"
	MConsumerRedelivered = "consumer.redelivered"
	MConsumerCommitAcks  = "consumer.commit_acks"
	MConsumerLag         = "consumer.lag"
	// MPausedNs histograms per-partition pause windows: sim-time a
	// partition spent without active polling coverage (each sample is
	// one pause interval). Eager rebalances pause every partition for
	// the join barrier; cooperative ones pause only moving partitions.
	MPausedNs = "consumer.paused_ns"

	// Coordinator.
	MRebalanceNs = "coordinator.rebalance_ns"
)

// ProduceErrorMetric names the per-error-code produce failure counter
// for a wire error code's string form (e.g. "NOT_LEADER" →
// "producer.produce_error.NOT_LEADER").
func ProduceErrorMetric(code string) string {
	return "producer.produce_error." + code
}

// QueueDepthBounds are the fixed bucket upper bounds of the producer
// accumulator-depth histogram (records). The last bucket is the
// overflow bucket, so the histogram has QueueDepthBuckets counts.
var QueueDepthBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64}

// QueueDepthBuckets is len(QueueDepthBounds)+1, as a constant so fixed
// snapshot structs can size arrays with it.
const QueueDepthBuckets = 9

func init() {
	if len(QueueDepthBounds)+1 != QueueDepthBuckets {
		panic("obs: QueueDepthBuckets out of sync with QueueDepthBounds")
	}
	if len(LatencyBounds)+1 != LatencyBuckets {
		panic("obs: LatencyBuckets out of sync with LatencyBounds")
	}
}

// LatencyBounds are the fixed bucket upper bounds of every span
// histogram, in nanoseconds of virtual time: a log-spaced ladder from
// 100 µs to 60 s. The last bucket is the overflow bucket; its exact
// maximum is tracked separately so tail quantiles stay exact.
var LatencyBounds = []int64{
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2500 * time.Millisecond),
	int64(5 * time.Second),
	int64(10 * time.Second),
	int64(30 * time.Second),
	int64(60 * time.Second),
}

// LatencyBuckets is len(LatencyBounds)+1, as a constant so fixed
// snapshot structs can size arrays with it.
const LatencyBuckets = 19

// Counter is a monotone uint64 metric. All methods are nil-safe: a nil
// *Counter is the disabled no-op implementation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 when disabled).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// GaugeKind selects how a gauge folds when snapshots merge
// (MergeSnapshots). The kind is a property of the metric, fixed at
// registration: a high-water mark (the largest RTO reached) merges as
// the max over shards, while an instantaneous level (consumer lag)
// merges as the sum — a drained fleet's lag must fold to 0, which a
// max-merge would never let it do once any shard peaked above it.
type GaugeKind uint8

const (
	// GaugeKindMax merges as the maximum across snapshots (default —
	// the historical behaviour, right for high-water marks).
	GaugeKindMax GaugeKind = iota
	// GaugeKindSum merges as the sum across snapshots (right for
	// instantaneous levels that partition over shards, like lag).
	GaugeKindSum
)

// Gauge is an instantaneous int64 metric. All methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax stores v only if it exceeds the current value — a running
// maximum (e.g. the largest RTO reached during a run).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 when disabled).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets: counts[i] holds
// observations v <= bounds[i], and the final count is the overflow
// bucket. The exact maximum is tracked alongside the buckets so the
// top quantiles and Max stay exact even past the last bound. Bounds
// are fixed at registration so snapshots from different runs are
// directly comparable. All methods are nil-safe.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64
	max    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Counts returns a copy of the bucket counts (nil when disabled).
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Max returns the largest observed value (0 when disabled or empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the exact q-quantile recoverable from the buckets:
// the upper bound of the bucket containing the ⌈q·n⌉-th smallest
// observation, or the exact tracked maximum when that rank falls in
// the overflow bucket (or when the bucket bound exceeds the maximum).
// Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return HistogramValue{Bounds: h.bounds, Counts: h.Counts(), Max: h.Max()}.Quantile(q)
}

// Registry owns the named metrics of one simulation run. The zero
// value is not usable; create with NewRegistry. A nil *Registry is the
// disabled registry: every lookup returns a nil (no-op) handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeKinds map[string]GaugeKind
	hists      map[string]*Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeKinds: make(map[string]GaugeKind),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (the no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it with the default
// max-merge kind on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.GaugeOf(name, GaugeKindMax)
}

// GaugeOf returns the named gauge, creating it with the given merge
// kind on first use. The kind is fixed at first registration; a later
// registration under a different kind panics — a metric cannot merge
// two different ways.
func (r *Registry) GaugeOf(name string, kind GaugeKind) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.gaugeKinds[name] = kind
	} else if r.gaugeKinds[name] != kind {
		panic(fmt.Sprintf("obs: gauge %q re-registered with kind %d (was %d)", name, kind, r.gaugeKinds[name]))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Bounds must be ascending; later
// registrations of the same name reuse the original bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
			}
		}
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one named gauge reading. Kind records how the gauge
// merges across snapshots (it does not appear in the encoded form —
// the name implies it).
type GaugeValue struct {
	Name  string
	Value int64
	Kind  GaugeKind
}

// HistogramValue is one named histogram reading. Max is the exact
// largest observation (0 when empty).
type HistogramValue struct {
	Name   string
	Bounds []int64
	Counts []uint64
	Max    int64
}

// Total returns the observation count (the sum over all buckets).
func (h HistogramValue) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the exact q-quantile recoverable from the bucket
// counts: the upper bound of the bucket holding the ⌈q·n⌉-th smallest
// observation, clamped to the exact maximum (the overflow bucket has
// no upper bound, so a rank landing there returns Max). q is clamped
// to [0,1]; an empty histogram returns 0.
func (h HistogramValue) Quantile(q float64) int64 {
	n := h.Total()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++ // ceil
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) && h.Bounds[i] < h.Max {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name
// so it is deterministic and directly comparable across runs.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot copies the registry. On a nil registry it returns the empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value(), Kind: r.gaugeKinds[name]})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: h.Counts(),
			Max:    h.Max(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram reading and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Encode renders the snapshot in a canonical text form — one metric per
// line, sorted by kind then name — suitable for byte-equality
// comparison in determinism tests and for golden files.
func (s Snapshot) Encode() []byte {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "hist %s bounds=%v counts=%v max=%d\n", h.Name, h.Bounds, h.Counts, h.Max)
	}
	return []byte(b.String())
}

// Obs bundles the per-run registry and tracer handed to instrumented
// subsystems. A nil *Obs — or a nil field — disables the corresponding
// side with no further configuration.
type Obs struct {
	Registry *Registry
	Trace    *Tracer
}

// Counter resolves a counter handle (nil-safe at every level).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Registry.Counter(name)
}

// Gauge resolves a gauge handle.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Registry.Gauge(name)
}

// GaugeOf resolves a gauge handle with an explicit merge kind.
func (o *Obs) GaugeOf(name string, kind GaugeKind) *Gauge {
	if o == nil {
		return nil
	}
	return o.Registry.GaugeOf(name, kind)
}

// Histogram resolves a histogram handle.
func (o *Obs) Histogram(name string, bounds []int64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Registry.Histogram(name, bounds)
}

// Tracer returns the bundled tracer (nil when disabled).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}
