package chaos

import (
	"kafkarel/internal/consumer"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/producer"
)

// E2EInput is the consumer-group half of a trial's evidence: what the
// group delivered to the application, what the coordinator's offsets
// log durably acknowledged, and what survived of it. VerifyE2E
// cross-checks it against the end-to-end guarantee the trial's
// semantics promise: producer → replicated log → consumer group.
type E2EInput struct {
	// Semantics the trial ran with.
	Semantics producer.Semantics
	// OffsetsReplication is the coordinator offsets topic's replication
	// factor — it decides whether a lost committed offset is an
	// expected acks=1-era anomaly or an invariant violation.
	OffsetsReplication int
	// Plan is the trial's fault plan.
	Plan Plan
	// Evidence is the group's delivery record. The commit/delivery
	// replay (invariants 1–2) needs CaptureEvidence; the remaining
	// checks run on counters alone.
	Evidence consumer.Evidence
	// ConsumedKeys is the group's per-partition application stream.
	ConsumedKeys [][]uint64
	// FinalCommitted is the durable committed offset per partition at
	// the end of the run (-1 = nothing committed).
	FinalCommitted []int64
	// Regressions are committed watermarks the offsets log lost across
	// unclean restarts (coordinator rematerialization evidence).
	Regressions []coordinator.OffsetRegression
	// AckedKeys, when non-nil, is the set of keys the producer counts
	// acknowledged — the coverage obligation a drained group must meet.
	AckedKeys map[uint64]bool
}

// VerifyE2E checks the consumer-group invariants of one trial. The
// verdict merges with Verify's via Merge. The invariants:
//
//  1. Commit honesty: replaying deliveries and commit acks in arrival
//     order, no partition's acknowledged commit may exceed the delivered
//     prefix — committing offsets the application never consumed loses
//     data by construction, under every semantics.
//  2. No delivery below the committed watermark under dedup: once
//     offset k is durably committed, an exactly-once group must never
//     hand the application an offset below k again; per-partition
//     delivered offsets must be strictly increasing.
//  3. Final committed offsets are covered by deliveries: the durable
//     resume point never points past what the application saw.
//  4. Committed-offset regressions: a committed watermark the offsets
//     log lost is expected (classified) only when the offsets topic ran
//     under-replicated with broker faults in the plan; under
//     exactly-once or a replicated offsets topic it is a violation.
//  5. Coverage: a group that drained cleanly must have delivered every
//     producer-acked key — missing keys are the acks=1 loss cases when
//     brokers crashed under at-least-once, violations otherwise.
func VerifyE2E(in E2EInput) Verdict {
	var v Verdict
	ev := in.Evidence
	eo := in.Semantics == producer.ExactlyOnce

	// 1 + 2: interleaved replay of deliveries and commit acks.
	if len(ev.Deliveries) > 0 || len(ev.CommitAcks) > 0 {
		parts := len(in.ConsumedKeys)
		maxDelivered := make([]int64, parts) // +1 encoding: 0 = none
		committed := make([]int64, parts)
		lastOff := make([]int64, parts)
		for p := range lastOff {
			lastOff[p] = -1
		}
		ai := 0
		applyAcks := func(upto int) {
			for ai < len(ev.CommitAcks) && ev.CommitAcks[ai].AfterDeliveries <= upto {
				a := ev.CommitAcks[ai]
				ai++
				if int(a.Partition) >= parts {
					v.fail("e2e: commit ack for partition %d outside topic", a.Partition)
					continue
				}
				if a.Offset > maxDelivered[a.Partition] {
					v.fail("e2e: partition %d: committed offset %d beyond delivered prefix %d",
						a.Partition, a.Offset, maxDelivered[a.Partition])
				}
				if a.Offset > committed[a.Partition] {
					committed[a.Partition] = a.Offset
				}
			}
		}
		for i, d := range ev.Deliveries {
			applyAcks(i)
			p := int(d.Partition)
			if p >= parts {
				v.fail("e2e: delivery for partition %d outside topic", d.Partition)
				continue
			}
			if ev.Dedup {
				if d.Offset < committed[p] {
					v.fail("e2e: partition %d: offset %d delivered again past committed watermark %d under dedup",
						d.Partition, d.Offset, committed[p])
				}
				if d.Offset <= lastOff[p] {
					v.fail("e2e: partition %d: delivered offsets not strictly increasing (%d after %d) under dedup",
						d.Partition, d.Offset, lastOff[p])
				}
			}
			lastOff[p] = d.Offset
			if d.Offset+1 > maxDelivered[p] {
				maxDelivered[p] = d.Offset + 1
			}
		}
		applyAcks(len(ev.Deliveries))
	}

	// 3. Durable resume points covered by the application stream. The
	// delivered prefix of partition p holds at least FinalCommitted[p]
	// records (commits trail delivery), so the key stream must too.
	for p, fc := range in.FinalCommitted {
		if fc <= 0 {
			continue
		}
		if p < len(in.ConsumedKeys) && fc > int64(len(in.ConsumedKeys[p])) {
			v.fail("e2e: partition %d: committed offset %d but only %d records ever delivered",
				p, fc, len(in.ConsumedKeys[p]))
		}
	}

	// 4. Lost committed watermarks.
	if n := len(in.Regressions); n > 0 {
		r := in.Regressions[0]
		switch {
		case eo:
			v.fail("e2e: %d committed offsets regressed under exactly-once (first: %s/%s[%d] %d -> %d)",
				n, r.Group, r.Topic, r.Partition, r.Before, r.After)
		case in.OffsetsReplication >= 3:
			v.fail("e2e: %d committed offsets regressed despite offsets replication %d",
				n, in.OffsetsReplication)
		case in.Plan.HasBrokerFaults():
			v.note("e2e: %d committed offsets regressed (offsets topic rf=%d under broker faults — expected redelivery window)",
				n, in.OffsetsReplication)
		default:
			v.fail("e2e: %d committed offsets regressed with no broker fault", n)
		}
	}

	// 5. Acked-key coverage.
	if in.AckedKeys != nil {
		if !ev.Drained {
			v.note("e2e: group did not drain cleanly; coverage not checkable")
		} else {
			delivered := make(map[uint64]bool)
			for _, keys := range in.ConsumedKeys {
				for _, k := range keys {
					delivered[k] = true
				}
			}
			missing := 0
			for k := range in.AckedKeys {
				if !delivered[k] {
					missing++
				}
			}
			if missing > 0 {
				switch {
				case eo:
					v.fail("e2e: %d producer-acked keys never delivered to the group under exactly-once", missing)
				case in.Plan.HasBrokerFaults():
					v.note("e2e: %d producer-acked keys never reached the group (acks=1 broker-outage loss)", missing)
				default:
					v.fail("e2e: %d producer-acked keys never delivered with no broker fault", missing)
				}
			}
		}
	}

	return v
}

// Merge folds another verdict's findings into v.
func (v *Verdict) Merge(o Verdict) {
	v.Violations = append(v.Violations, o.Violations...)
	v.Classified = append(v.Classified, o.Classified...)
}
