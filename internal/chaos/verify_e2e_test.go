package chaos

import (
	"strings"
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/consumer"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/producer"
	"kafkarel/internal/wire"
)

func TestValidateConsumerCrash(t *testing.T) {
	bad := []struct {
		name string
		plan Plan
	}{
		{"negative member", Plan{Faults: []Fault{{Kind: ConsumerCrash, Member: -1}}}},
		{"crash while down", Plan{Faults: []Fault{
			{Kind: ConsumerCrash, At: 0, Member: 1},
			{Kind: ConsumerCrash, At: time.Millisecond, Member: 1, Duration: time.Millisecond},
		}}},
	}
	for _, tc := range bad {
		if err := tc.plan.Validate(3); err == nil {
			t.Errorf("%s: Validate accepted the plan", tc.name)
		}
	}
	good := Plan{Faults: []Fault{
		{Kind: ConsumerCrash, At: 0, Member: 0, Duration: 50 * time.Millisecond},
		{Kind: ConsumerCrash, At: 60 * time.Millisecond, Member: 0, Duration: 50 * time.Millisecond},
		{Kind: ConsumerCrash, At: 10 * time.Millisecond, Member: 1},
	}}
	if err := good.Validate(3); err != nil {
		t.Fatalf("Validate rejected sequential consumer crashes: %v", err)
	}
	if !good.HasConsumerFaults() {
		t.Fatal("HasConsumerFaults false with consumer crashes present")
	}
}

func TestGeneratePlanConsumerFaults(t *testing.T) {
	cfg := GenConfig{Brokers: 3, ConsumerMembers: 2}
	seen := 0
	for seed := uint64(0); seed < 200; seed++ {
		plan := GeneratePlan(seed, cfg)
		if err := plan.Validate(3); err != nil {
			t.Fatalf("seed %d: invalid plan: %v", seed, err)
		}
		for _, f := range plan.Faults {
			if f.Kind == ConsumerCrash {
				seen++
				if f.Member < 0 || f.Member >= 2 {
					t.Fatalf("seed %d: member %d outside [0,2)", seed, f.Member)
				}
				if f.Duration <= 0 {
					t.Fatalf("seed %d: generated consumer crash without restart", seed)
				}
			}
		}
	}
	if seen == 0 {
		t.Fatal("200 seeds never produced a consumer crash")
	}
}

// TestScheduleConsumerCrash: the fault actually kills and restarts a
// live group member, and the group still drains the topic.
func TestScheduleConsumerCrash(t *testing.T) {
	sim := des.New()
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := clst.CreateTopic("t", 2, 3); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 2; p++ {
		recs := make([]wire.Record, 100)
		for i := range recs {
			recs[i] = wire.Record{Key: uint64(int(p)*100 + i + 1)}
		}
		clst.Leader("t", p).Log("t", p).Append(recs)
	}
	co, err := coordinator.New(sim, clst, coordinator.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := consumer.NewGroup(sim, co, clst, consumer.GroupConfig{
		Topic: "t", Auto: true, Dedup: true, PollMax: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.SetDrainCheck(func() bool { return true })
	for _, name := range []string{"c0", "c1"} {
		if err := g.Join(name); err != nil {
			t.Fatal(err)
		}
	}
	plan := Plan{Faults: []Fault{
		{Kind: ConsumerCrash, At: 10 * time.Millisecond, Duration: 200 * time.Millisecond, Member: 0},
	}}
	err = Schedule(plan, Targets{
		Sim: sim, Cluster: clst, Group: g,
		OnError: func(err error) { t.Errorf("injection: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ev := g.Evidence()
	if ev.Crashes != 1 || ev.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", ev.Crashes, ev.Restarts)
	}
	if !g.Done() || !ev.Drained {
		t.Fatalf("group done=%v drained=%v after crash/restart", g.Done(), ev.Drained)
	}
	rep := consumer.ReconcileRangesKeys(
		[]consumer.KeyRange{{Base: 0, Count: 100}, {Base: 100, Count: 100}},
		g.ConsumedKeys())
	if rep.NLost != 0 || rep.NDuplicated != 0 {
		t.Fatalf("lost=%d dup=%d after crash/restart", rep.NLost, rep.NDuplicated)
	}
}

func TestScheduleConsumerCrashNeedsGroupTarget(t *testing.T) {
	sim, tg := testRig(t)
	_ = sim
	plan := Plan{Faults: []Fault{{Kind: ConsumerCrash, At: time.Millisecond, Member: 0}}}
	if err := Schedule(plan, tg); err == nil ||
		!strings.Contains(err.Error(), "no consumer-group target") {
		t.Fatalf("Schedule without group target: err = %v", err)
	}
}

func e2eBase() E2EInput {
	return E2EInput{
		Semantics:          producer.ExactlyOnce,
		OffsetsReplication: 3,
		Evidence: consumer.Evidence{
			Dedup:   true,
			Drained: true,
			Deliveries: []consumer.Delivery{
				{Partition: 0, Offset: 0, Key: 1},
				{Partition: 0, Offset: 1, Key: 2},
				{Partition: 0, Offset: 2, Key: 3},
			},
			CommitAcks: []consumer.CommitAck{
				{Partition: 0, Offset: 2, AfterDeliveries: 2},
				{Partition: 0, Offset: 3, AfterDeliveries: 3},
			},
		},
		ConsumedKeys:   [][]uint64{{1, 2, 3}},
		FinalCommitted: []int64{3},
		AckedKeys:      map[uint64]bool{1: true, 2: true, 3: true},
	}
}

func TestVerifyE2ECleanTrial(t *testing.T) {
	v := VerifyE2E(e2eBase())
	if !v.OK() || len(v.Classified) != 0 {
		t.Fatalf("clean trial flagged: violations=%v classified=%v", v.Violations, v.Classified)
	}
}

func TestVerifyE2ECommitBeyondDelivered(t *testing.T) {
	in := e2eBase()
	// An ack for offset 3 arrives when only 2 deliveries had happened.
	in.Evidence.CommitAcks = []consumer.CommitAck{{Partition: 0, Offset: 3, AfterDeliveries: 2}}
	v := VerifyE2E(in)
	if v.OK() {
		t.Fatal("commit beyond delivered prefix not flagged")
	}
}

func TestVerifyE2EDoubleDeliveryPastCommit(t *testing.T) {
	in := e2eBase()
	in.Evidence.Deliveries = append(in.Evidence.Deliveries,
		consumer.Delivery{Partition: 0, Offset: 1, Key: 2})
	in.Evidence.CommitAcks = []consumer.CommitAck{{Partition: 0, Offset: 2, AfterDeliveries: 2}}
	v := VerifyE2E(in)
	if v.OK() {
		t.Fatal("dedup redelivery past committed watermark not flagged")
	}
}

func TestVerifyE2EFinalCommitUncovered(t *testing.T) {
	in := e2eBase()
	in.Evidence.Deliveries = nil
	in.Evidence.CommitAcks = nil
	in.FinalCommitted = []int64{7} // only 3 records ever delivered
	v := VerifyE2E(in)
	if v.OK() {
		t.Fatal("final committed offset past delivered stream not flagged")
	}
}

func TestVerifyE2ERegressionClassification(t *testing.T) {
	reg := []coordinator.OffsetRegression{{Group: "g", Topic: "t", Partition: 0, Before: 5, After: 2}}
	brokerFaults := Plan{Faults: []Fault{{Kind: UncleanRestart, At: 0, Broker: 0, Duration: time.Millisecond}}}

	// Exactly-once: always a violation.
	in := e2eBase()
	in.Regressions = reg
	in.Plan = brokerFaults
	if v := VerifyE2E(in); v.OK() {
		t.Fatal("regression under exactly-once not a violation")
	}

	// At-least-once, under-replicated offsets topic, broker faults ran:
	// expected anomaly, classified.
	in = e2eBase()
	in.Semantics = producer.AtLeastOnce
	in.Evidence.Dedup = false
	in.OffsetsReplication = 1
	in.Regressions = reg
	in.Plan = brokerFaults
	v := VerifyE2E(in)
	if !v.OK() {
		t.Fatalf("classified regression reported as violation: %v", v.Violations)
	}
	if len(v.Classified) == 0 {
		t.Fatal("expected regression not classified")
	}

	// At-least-once but nothing crashed: a regression is unexplained.
	in.Plan = Plan{}
	if v := VerifyE2E(in); v.OK() {
		t.Fatal("regression with no broker fault not a violation")
	}

	// Replicated offsets topic must not lose commits even under faults.
	in.Plan = brokerFaults
	in.OffsetsReplication = 3
	if v := VerifyE2E(in); v.OK() {
		t.Fatal("regression despite rf=3 offsets topic not a violation")
	}
}

func TestVerifyE2ECoverage(t *testing.T) {
	// Drained group missing an acked key: violation under exactly-once.
	in := e2eBase()
	in.AckedKeys[9] = true
	if v := VerifyE2E(in); v.OK() {
		t.Fatal("missing acked key under exactly-once not a violation")
	}

	// Same gap under at-least-once with a broker outage: classified.
	in = e2eBase()
	in.Semantics = producer.AtLeastOnce
	in.Evidence.Dedup = false
	in.AckedKeys[9] = true
	in.Plan = Plan{Faults: []Fault{{Kind: BrokerCrash, At: 0, Broker: 0, Duration: time.Millisecond}}}
	v := VerifyE2E(in)
	if !v.OK() {
		t.Fatalf("acks=1 loss reported as violation: %v", v.Violations)
	}
	if len(v.Classified) == 0 {
		t.Fatal("acks=1 loss not classified")
	}

	// Undrained group: coverage unknowable, noted not failed.
	in = e2eBase()
	in.Evidence.Drained = false
	in.AckedKeys[9] = true
	v = VerifyE2E(in)
	if !v.OK() {
		t.Fatalf("undrained group reported violations: %v", v.Violations)
	}
	if len(v.Classified) == 0 {
		t.Fatal("undrained group produced no classification note")
	}
}

func TestVerdictMerge(t *testing.T) {
	a := Verdict{Violations: []string{"x"}}
	b := Verdict{Classified: []string{"y"}}
	a.Merge(b)
	if len(a.Violations) != 1 || len(a.Classified) != 1 {
		t.Fatalf("merge lost findings: %+v", a)
	}
}
