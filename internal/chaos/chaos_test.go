package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/des"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
	"kafkarel/internal/producer"
	"kafkarel/internal/transport"
)

func TestValidateRejectsMalformedPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"negative start", Plan{Faults: []Fault{{Kind: ConnReset, At: -time.Millisecond}}}},
		{"bad broker id", Plan{Faults: []Fault{{Kind: BrokerCrash, Broker: 7, Duration: time.Millisecond}}}},
		{"windowless partition", Plan{Faults: []Fault{{Kind: Partition}}}},
		{"loss rate out of range", Plan{Faults: []Fault{{Kind: LossBurst, Duration: time.Millisecond, LossRate: 1.5}}}},
		{"slowdown below 1", Plan{Faults: []Fault{{Kind: BrokerSlow, Duration: time.Millisecond, Slowdown: 0.5}}}},
		{"overlapping loss windows", Plan{Faults: []Fault{
			{Kind: Partition, At: 0, Duration: 10 * time.Millisecond},
			{Kind: LossBurst, At: 5 * time.Millisecond, Duration: 10 * time.Millisecond, LossRate: 0.1},
		}}},
		{"crash while down", Plan{Faults: []Fault{
			{Kind: BrokerCrash, At: 0, Broker: 1},
			{Kind: UncleanRestart, At: time.Millisecond, Broker: 1, Duration: time.Millisecond},
		}}},
		{"recover while up", Plan{Faults: []Fault{{Kind: BrokerRecover, At: 0, Broker: 0}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(3); err == nil {
			t.Errorf("%s: Validate accepted the plan", tc.name)
		}
	}
}

func TestValidateAcceptsDisjointWindows(t *testing.T) {
	plan := Plan{Faults: []Fault{
		{Kind: Partition, At: 0, Duration: 10 * time.Millisecond, Direction: DirForward},
		// Same window, other direction: no conflict.
		{Kind: LossBurst, At: 0, Duration: 10 * time.Millisecond, Direction: DirReverse, LossRate: 0.2},
		{Kind: DelaySpike, At: 0, Duration: 10 * time.Millisecond, DelayMs: 50},
		{Kind: BrokerCrash, At: 5 * time.Millisecond, Duration: 10 * time.Millisecond, Broker: 0},
		{Kind: BrokerCrash, At: 20 * time.Millisecond, Duration: 5 * time.Millisecond, Broker: 0},
		{Kind: ConnReset, At: 7 * time.Millisecond},
		{Kind: BrokerSlow, At: 1 * time.Millisecond, Duration: 2 * time.Millisecond, Broker: 2, Slowdown: 4},
	}}
	if err := plan.Validate(3); err != nil {
		t.Fatalf("Validate rejected a well-formed plan: %v", err)
	}
	if got, want := plan.End(), 25*time.Millisecond; got != want {
		t.Errorf("End() = %v, want %v", got, want)
	}
}

func TestGeneratePlanDeterministicAndValid(t *testing.T) {
	for _, sem := range []producer.Semantics{producer.AtLeastOnce, producer.ExactlyOnce} {
		cfg := GenConfig{Brokers: 3, Semantics: sem, Horizon: 2 * time.Second, Unclean: sem != producer.ExactlyOnce}
		for seed := uint64(0); seed < 200; seed++ {
			a := GeneratePlan(seed, cfg)
			b := GeneratePlan(seed, cfg)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: generation not deterministic", seed)
			}
			if err := a.Validate(3); err != nil {
				t.Fatalf("seed %d: generated invalid plan: %v\n%s", seed, err, a.Summary())
			}
			if end := a.End(); end >= cfg.Horizon {
				t.Fatalf("seed %d: plan extends to %v past horizon %v", seed, end, cfg.Horizon)
			}
			if len(a.Faults) == 0 && seed < 10 {
				continue // occasionally every sampled fault failed to fit; fine
			}
		}
	}
}

func TestGeneratePlanCoversAllKinds(t *testing.T) {
	cfg := GenConfig{Brokers: 3, Unclean: true}
	got := map[Kind]int{}
	for seed := uint64(0); seed < 300; seed++ {
		for _, f := range GeneratePlan(seed, cfg).Faults {
			got[f.Kind]++
		}
	}
	for _, k := range []Kind{BrokerCrash, UncleanRestart, Partition, LossBurst, DelaySpike, ConnReset, BrokerSlow} {
		if got[k] == 0 {
			t.Errorf("300 seeds never produced a %v fault", k)
		}
	}
}

// testRig builds a minimal simulation with every fault target.
func testRig(t *testing.T) (*des.Simulator, Targets) {
	t.Helper()
	sim := des.New()
	path, err := netem.NewPath(sim, netem.Config{Bandwidth: 100e6}, netem.Config{Bandwidth: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.NewConn(sim, path, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	clst, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := clst.CreateTopic("t", 1, 3); err != nil {
		t.Fatal(err)
	}
	return sim, Targets{
		Sim:      sim,
		Cluster:  clst,
		Path:     path,
		Conn:     conn,
		Timeline: obs.NewTimeline(time.Second),
		OnError:  func(err error) { t.Errorf("injection error: %v", err) },
	}
}

func TestScheduleBrokerCrashWindow(t *testing.T) {
	sim, tg := testRig(t)
	tg.Timeline.BindClock(sim)
	plan := Plan{Faults: []Fault{
		{Kind: BrokerCrash, At: 10 * time.Millisecond, Duration: 20 * time.Millisecond, Broker: 0},
	}}
	if err := Schedule(plan, tg); err != nil {
		t.Fatal(err)
	}
	var duringUp, afterUp bool
	sim.Schedule(15*time.Millisecond, func() { duringUp = tg.Cluster.Broker(0).Up() })
	sim.Schedule(40*time.Millisecond, func() { afterUp = tg.Cluster.Broker(0).Up() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if duringUp {
		t.Error("broker up inside its crash window")
	}
	if !afterUp {
		t.Error("broker not recovered after its crash window")
	}
	anns := tg.Timeline.Annotations()
	if len(anns) != 2 || anns[0].Detail != "fail broker 0" || anns[1].Detail != "recover broker 0" {
		t.Errorf("annotations = %+v, want fail + recover broker 0", anns)
	}
	for _, a := range anns {
		if a.Kind != obs.AnnBrokerEvent {
			t.Errorf("annotation kind = %q, want %q", a.Kind, obs.AnnBrokerEvent)
		}
	}
}

func TestScheduleUncleanRestartAnnotation(t *testing.T) {
	sim, tg := testRig(t)
	plan := Plan{Faults: []Fault{
		{Kind: UncleanRestart, At: time.Millisecond, Duration: time.Millisecond, Broker: 1},
	}}
	if err := Schedule(plan, tg); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if n := tg.Cluster.Broker(1).Stats().UncleanCrashes; n != 1 {
		t.Errorf("UncleanCrashes = %d, want 1", n)
	}
	anns := tg.Timeline.Annotations()
	if len(anns) != 2 || !strings.Contains(anns[0].Detail, "unclean") {
		t.Errorf("annotations = %+v, want unclean crash + recover", anns)
	}
}

func TestSchedulePartitionWindowDropsPackets(t *testing.T) {
	sim, tg := testRig(t)
	plan := Plan{Faults: []Fault{
		{Kind: Partition, At: 10 * time.Millisecond, Duration: 20 * time.Millisecond, Direction: DirForward},
	}}
	if err := Schedule(plan, tg); err != nil {
		t.Fatal(err)
	}
	var inWindow, afterWindow bool
	sim.Schedule(15*time.Millisecond, func() {
		tg.Path.Fwd.Send(100, func() { inWindow = true })
	})
	sim.Schedule(40*time.Millisecond, func() {
		tg.Path.Fwd.Send(100, func() { afterWindow = true })
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if inWindow {
		t.Error("packet delivered through a severed link")
	}
	if !afterWindow {
		t.Error("packet dropped after the partition healed")
	}
}

func TestScheduleConnReset(t *testing.T) {
	sim, tg := testRig(t)
	plan := Plan{Faults: []Fault{{Kind: ConnReset, At: 5 * time.Millisecond}}}
	if err := Schedule(plan, tg); err != nil {
		t.Fatal(err)
	}
	broken := false
	tg.Conn.Client.OnBroken(func(error) { broken = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !broken {
		t.Error("connection not broken by ConnReset fault")
	}
}

func TestScheduleRejectsMissingTargets(t *testing.T) {
	sim := des.New()
	plan := Plan{Faults: []Fault{{Kind: ConnReset, At: 0}}}
	if err := Schedule(plan, Targets{Sim: sim}); err == nil {
		t.Error("Schedule accepted a conn fault with no connection target")
	}
	plan = Plan{Faults: []Fault{{Kind: Partition, At: 0, Duration: time.Millisecond}}}
	if err := Schedule(plan, Targets{Sim: sim}); err == nil {
		t.Error("Schedule accepted a net fault with no path target")
	}
}

func TestGenerateTxnPlanDeterministicAndValid(t *testing.T) {
	cfg := TxnGenConfig{Brokers: 3, Processors: 2, Horizon: 2 * time.Second, Unclean: true}
	for seed := uint64(0); seed < 200; seed++ {
		a := GenerateTxnPlan(seed, cfg)
		b := GenerateTxnPlan(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		if err := a.Validate(3); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v\n%s", seed, err, a.Summary())
		}
		if end := a.End(); end >= cfg.Horizon {
			t.Fatalf("seed %d: plan extends to %v past horizon %v", seed, end, cfg.Horizon)
		}
		for _, f := range a.Faults {
			switch f.Kind {
			case BrokerCrash, BrokerSlow, UncleanRestart, ProcessorCrash, ProcessorZombie:
			default:
				t.Fatalf("seed %d: txn plan sampled excluded kind %v", seed, f.Kind)
			}
			if f.Kind == ProcessorCrash || f.Kind == ProcessorZombie {
				if f.Member < 0 || int(f.Member) >= cfg.Processors {
					t.Fatalf("seed %d: processor fault targets %d outside fleet of %d", seed, f.Member, cfg.Processors)
				}
			}
		}
	}
}

func TestGenerateTxnPlanCoversAllKinds(t *testing.T) {
	cfg := TxnGenConfig{Unclean: true}
	got := map[Kind]int{}
	for seed := uint64(0); seed < 300; seed++ {
		for _, f := range GenerateTxnPlan(seed, cfg).Faults {
			got[f.Kind]++
		}
	}
	for _, k := range []Kind{BrokerCrash, BrokerSlow, UncleanRestart, ProcessorCrash, ProcessorZombie} {
		if got[k] == 0 {
			t.Errorf("300 seeds never produced a %v fault", k)
		}
	}
}
