// Package chaos is the fault-injection engine: a declarative, sim-time
// fault-plan DSL generalising the testbed's ad-hoc broker-failure list
// into composable timed faults across every layer (broker crashes and
// unclean restarts, network partitions, delay spikes, burst-loss windows,
// connection resets, degraded brokers), a seeded campaign generator that
// samples random plans, and a delivery-invariant checker that verifies
// each trial's end-to-end evidence against the guarantees the paper's
// semantics promise (Sec. II; the future-work "more failure scenarios").
//
// Everything is deterministic: a plan is pure data, scheduling draws no
// randomness except loss-model chains seeded from the plan seed, so a
// violating trial reproduces from its (plan seed, workload seed) pair
// alone.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"kafkarel/internal/cluster"
	"kafkarel/internal/consumer"
	"kafkarel/internal/des"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
	"kafkarel/internal/stats"
	"kafkarel/internal/transport"
)

// Kind is a fault's type.
type Kind int

// Fault kinds. Window kinds (Partition, LossBurst, DelaySpike,
// BrokerSlow) are active for Duration; BrokerCrash and UncleanRestart
// recover automatically after Duration when it is positive, otherwise
// they persist until a matching BrokerRecover; ConnReset and
// BrokerRecover are instantaneous.
const (
	// BrokerCrash stops a broker cleanly (shutdown fsync included).
	BrokerCrash Kind = iota + 1
	// BrokerRecover restarts a broker and catches its log up.
	BrokerRecover
	// UncleanRestart kills a broker without the shutdown fsync: the
	// unflushed log tail is destroyed — the real acks=1 data-loss window.
	UncleanRestart
	// Partition severs the producer-broker network (loss = 1.0) for the
	// window.
	Partition
	// LossBurst overlays a Gilbert-Elliot burst-loss process on the
	// network for the window.
	LossBurst
	// DelaySpike adds constant extra propagation delay for the window.
	DelaySpike
	// ConnReset forcibly breaks the producer's transport connection.
	ConnReset
	// BrokerSlow scales a broker's append service time for the window.
	BrokerSlow
	// ConsumerCrash kills a consumer-group member (by join-order index):
	// its in-memory positions vanish and the coordinator only notices
	// when the session expires. A positive Duration restarts it — with a
	// fresh member identity — at the window's end; zero leaves it down.
	ConsumerCrash
	// ProcessorCrash kills a transactional processor (by index)
	// mid-transaction: its in-flight operations stop, its open
	// transaction is left dangling for the coordinator to abort. A
	// positive Duration restarts it — a fresh incarnation that
	// re-initialises its transactional.id, fencing the dead one — at the
	// window's end; zero leaves it down.
	ProcessorCrash
	// ProcessorZombie starts a duplicate incarnation of a transactional
	// processor while the old one keeps running — the
	// duplicate-transactional.id race. The new incarnation's
	// InitProducerId bumps the epoch; every later write or commit by the
	// zombie must be fenced.
	ProcessorZombie
)

var kindNames = map[Kind]string{
	BrokerCrash:     "broker-crash",
	BrokerRecover:   "broker-recover",
	UncleanRestart:  "unclean-restart",
	Partition:       "partition",
	LossBurst:       "loss-burst",
	DelaySpike:      "delay-spike",
	ConnReset:       "conn-reset",
	BrokerSlow:      "broker-slow",
	ConsumerCrash:   "consumer-crash",
	ProcessorCrash:  "processor-crash",
	ProcessorZombie: "processor-zombie",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Direction selects which side of the emulated path a network fault
// afflicts.
type Direction int

// Directions. DirBoth is the zero value: faults hit requests and
// responses alike unless narrowed.
const (
	DirBoth Direction = iota
	DirForward
	DirReverse
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirBoth:
		return "both"
	case DirForward:
		return "fwd"
	case DirReverse:
		return "rev"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// Fault is one timed fault. Which fields matter depends on Kind; the
// rest are ignored.
type Fault struct {
	Kind Kind
	// At is the virtual start time.
	At time.Duration
	// Duration is the fault window. For BrokerCrash/UncleanRestart a
	// positive duration schedules the recovery automatically; zero leaves
	// the broker down until an explicit BrokerRecover.
	Duration time.Duration
	// Broker targets broker faults.
	Broker int32
	// Direction narrows network faults to one side of the path.
	Direction Direction
	// LossRate is LossBurst's long-run loss probability, in (0, 1).
	LossRate float64
	// DelayMs is DelaySpike's added propagation delay.
	DelayMs float64
	// Slowdown is BrokerSlow's service-time multiplier, > 1.
	Slowdown float64
	// Member targets ConsumerCrash at a group member by join-order index,
	// and ProcessorCrash/ProcessorZombie at a transactional processor by
	// partition index.
	Member int32
	// Group targets ConsumerCrash at one consumer group by index into
	// Targets.Groups (multi-group fan-out); 0 also matches the single
	// Targets.Group fallback.
	Group int32
}

// windowed reports whether the fault occupies a time window whose end
// must be scheduled.
func (f Fault) windowed() bool {
	switch f.Kind {
	case Partition, LossBurst, DelaySpike, BrokerSlow:
		return true
	case BrokerCrash, UncleanRestart, ConsumerCrash, ProcessorCrash:
		return f.Duration > 0
	default:
		return false
	}
}

// end returns the fault's end time (At for instantaneous faults).
func (f Fault) end() time.Duration {
	if f.windowed() {
		return f.At + f.Duration
	}
	return f.At
}

// String renders the fault compactly for scorecards and annotations.
func (f Fault) String() string {
	switch f.Kind {
	case BrokerCrash, UncleanRestart:
		if f.Duration > 0 {
			return fmt.Sprintf("%s b%d @%v+%v", f.Kind, f.Broker, f.At, f.Duration)
		}
		return fmt.Sprintf("%s b%d @%v", f.Kind, f.Broker, f.At)
	case BrokerRecover:
		return fmt.Sprintf("%s b%d @%v", f.Kind, f.Broker, f.At)
	case BrokerSlow:
		return fmt.Sprintf("%s b%d x%.3g @%v+%v", f.Kind, f.Broker, f.Slowdown, f.At, f.Duration)
	case Partition:
		return fmt.Sprintf("%s %s @%v+%v", f.Kind, f.Direction, f.At, f.Duration)
	case LossBurst:
		return fmt.Sprintf("%s %s p=%.3g @%v+%v", f.Kind, f.Direction, f.LossRate, f.At, f.Duration)
	case DelaySpike:
		return fmt.Sprintf("%s %s +%.3gms @%v+%v", f.Kind, f.Direction, f.DelayMs, f.At, f.Duration)
	case ConnReset:
		return fmt.Sprintf("%s @%v", f.Kind, f.At)
	case ConsumerCrash:
		tgt := fmt.Sprintf("c%d", f.Member)
		if f.Group > 0 {
			tgt = fmt.Sprintf("g%d/c%d", f.Group, f.Member)
		}
		if f.Duration > 0 {
			return fmt.Sprintf("%s %s @%v+%v", f.Kind, tgt, f.At, f.Duration)
		}
		return fmt.Sprintf("%s %s @%v", f.Kind, tgt, f.At)
	case ProcessorCrash:
		if f.Duration > 0 {
			return fmt.Sprintf("%s t%d @%v+%v", f.Kind, f.Member, f.At, f.Duration)
		}
		return fmt.Sprintf("%s t%d @%v", f.Kind, f.Member, f.At)
	case ProcessorZombie:
		return fmt.Sprintf("%s t%d @%v", f.Kind, f.Member, f.At)
	default:
		return fmt.Sprintf("%s @%v", f.Kind, f.At)
	}
}

// Plan is a fault schedule: pure data, independent of any simulation.
type Plan struct {
	Faults []Fault
}

// End returns the virtual time the last fault is over.
func (p Plan) End() time.Duration {
	var end time.Duration
	for _, f := range p.Faults {
		if e := f.end(); e > end {
			end = e
		}
	}
	return end
}

// Count returns how many faults of the given kind the plan holds.
func (p Plan) Count(k Kind) int {
	n := 0
	for _, f := range p.Faults {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// HasBrokerFaults reports whether the plan downs any broker — the
// classifier's gate for expected acked-data loss.
func (p Plan) HasBrokerFaults() bool {
	return p.Count(BrokerCrash) > 0 || p.Count(UncleanRestart) > 0
}

// HasConsumerFaults reports whether the plan kills any consumer-group
// member.
func (p Plan) HasConsumerFaults() bool {
	return p.Count(ConsumerCrash) > 0
}

// HasProcessorFaults reports whether the plan crashes or duplicates any
// transactional processor.
func (p Plan) HasProcessorFaults() bool {
	return p.Count(ProcessorCrash) > 0 || p.Count(ProcessorZombie) > 0
}

// Summary renders the plan as a compact one-line fault list.
func (p Plan) Summary() string {
	if len(p.Faults) == 0 {
		return "no faults"
	}
	s := ""
	for i, f := range p.Faults {
		if i > 0 {
			s += "; "
		}
		s += f.String()
	}
	return s
}

// affects reports whether the fault touches the given path side.
func affects(d Direction, side Direction) bool {
	return d == DirBoth || d == side
}

// Validate checks plan well-formedness against a broker count:
// parameter ranges, broker IDs, no overlapping loss-overlay or
// delay-overlay windows per link direction (clearing an overlay restores
// the base configuration, so stacked windows would end early), no
// overlapping slowdown windows per broker, and crash/recover sequencing
// (no crash of a down broker, no recovery of an up one).
func (p Plan) Validate(brokers int) error {
	type win struct{ start, end time.Duration }
	lossW := map[Direction][]win{}
	delayW := map[Direction][]win{}
	slowW := map[int32][]win{}

	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative start time", i, f.Kind)
		}
		switch f.Kind {
		case BrokerCrash, BrokerRecover, UncleanRestart, BrokerSlow:
			if f.Broker < 0 || int(f.Broker) >= brokers {
				return fmt.Errorf("chaos: fault %d (%s): broker %d outside [0, %d)", i, f.Kind, f.Broker, brokers)
			}
		}
		switch f.Kind {
		case Partition, LossBurst, DelaySpike, BrokerSlow:
			if f.Duration <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): window faults need a positive duration", i, f.Kind)
			}
		case BrokerCrash, UncleanRestart, BrokerRecover, ConnReset, ConsumerCrash, ProcessorCrash, ProcessorZombie:
			if f.Duration < 0 {
				return fmt.Errorf("chaos: fault %d (%s): negative duration", i, f.Kind)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %d", i, int(f.Kind))
		}
		switch f.Kind {
		case ConsumerCrash:
			if f.Member < 0 {
				return fmt.Errorf("chaos: fault %d: negative consumer member %d", i, f.Member)
			}
			if f.Group < 0 {
				return fmt.Errorf("chaos: fault %d: negative consumer group %d", i, f.Group)
			}
		case ProcessorCrash, ProcessorZombie:
			if f.Member < 0 {
				return fmt.Errorf("chaos: fault %d: negative processor index %d", i, f.Member)
			}
		case LossBurst:
			if f.LossRate <= 0 || f.LossRate >= 1 {
				return fmt.Errorf("chaos: fault %d: loss rate %v outside (0,1)", i, f.LossRate)
			}
		case DelaySpike:
			if f.DelayMs <= 0 {
				return fmt.Errorf("chaos: fault %d: delay spike needs a positive delay", i)
			}
		case BrokerSlow:
			if f.Slowdown <= 1 {
				return fmt.Errorf("chaos: fault %d: slowdown %v must exceed 1", i, f.Slowdown)
			}
		}
		w := win{f.At, f.end()}
		switch f.Kind {
		case Partition, LossBurst:
			for _, side := range []Direction{DirForward, DirReverse} {
				if affects(f.Direction, side) {
					lossW[side] = append(lossW[side], w)
				}
			}
		case DelaySpike:
			for _, side := range []Direction{DirForward, DirReverse} {
				if affects(f.Direction, side) {
					delayW[side] = append(delayW[side], w)
				}
			}
		case BrokerSlow:
			slowW[f.Broker] = append(slowW[f.Broker], w)
		}
	}

	checkOverlap := func(wins []win, what string) error {
		sort.Slice(wins, func(a, b int) bool { return wins[a].start < wins[b].start })
		for i := 1; i < len(wins); i++ {
			if wins[i].start < wins[i-1].end {
				return fmt.Errorf("chaos: overlapping %s windows ([%v,%v) and [%v,%v))",
					what, wins[i-1].start, wins[i-1].end, wins[i].start, wins[i].end)
			}
		}
		return nil
	}
	for side, wins := range lossW {
		if err := checkOverlap(wins, "loss-overlay "+side.String()); err != nil {
			return err
		}
	}
	for side, wins := range delayW {
		if err := checkOverlap(wins, "delay-overlay "+side.String()); err != nil {
			return err
		}
	}
	for id, wins := range slowW {
		if err := checkOverlap(wins, fmt.Sprintf("slowdown broker-%d", id)); err != nil {
			return err
		}
	}

	// Crash/recover sequencing per broker: replay events in time order.
	type ev struct {
		at    time.Duration
		crash bool
		idx   int
	}
	seq := map[int32][]ev{}
	cseq := map[[2]int32][]ev{} // keyed (group, member): groups churn independently
	pseq := map[int32][]ev{}
	for i, f := range p.Faults {
		switch f.Kind {
		case BrokerCrash, UncleanRestart:
			seq[f.Broker] = append(seq[f.Broker], ev{f.At, true, i})
			if f.Duration > 0 {
				seq[f.Broker] = append(seq[f.Broker], ev{f.end(), false, i})
			}
		case BrokerRecover:
			seq[f.Broker] = append(seq[f.Broker], ev{f.At, false, i})
		case ConsumerCrash:
			k := [2]int32{f.Group, f.Member}
			cseq[k] = append(cseq[k], ev{f.At, true, i})
			if f.Duration > 0 {
				cseq[k] = append(cseq[k], ev{f.end(), false, i})
			}
		case ProcessorCrash:
			pseq[f.Member] = append(pseq[f.Member], ev{f.At, true, i})
			if f.Duration > 0 {
				pseq[f.Member] = append(pseq[f.Member], ev{f.end(), false, i})
			}
		}
	}
	replay := func(evs []ev, what string, id int32) error {
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].at < evs[b].at })
		down := false
		for _, e := range evs {
			if e.crash == down {
				verb := "crash of already-down"
				if !e.crash {
					verb = "recovery of already-up"
				}
				return fmt.Errorf("chaos: fault %d: %s %s %d at %v", e.idx, verb, what, id, e.at)
			}
			down = e.crash
		}
		return nil
	}
	for id, evs := range seq {
		if err := replay(evs, "broker", id); err != nil {
			return err
		}
	}
	for k, evs := range cseq {
		if err := replay(evs, fmt.Sprintf("group-%d consumer", k[0]), k[1]); err != nil {
			return err
		}
	}
	for id, evs := range pseq {
		if err := replay(evs, "processor", id); err != nil {
			return err
		}
	}
	return nil
}

// ProcessorSet is the chaos-facing control surface of a transactional
// processor fleet (the testbed's consume-process-produce pipeline):
// crash an incarnation abruptly, restart a crashed one, or start a
// duplicate incarnation while the old one keeps running.
type ProcessorSet interface {
	// Processors returns the fleet size.
	Processors() int
	// CrashProcessor kills processor i's current incarnation: its
	// in-flight operations stop and its open transaction dangles.
	CrashProcessor(i int) error
	// RestartProcessor starts a fresh incarnation of a crashed processor;
	// its InitProducerId fences the dead one's epoch.
	RestartProcessor(i int) error
	// ZombieProcessor starts a fresh incarnation while the old one keeps
	// running — the duplicate-transactional.id race.
	ZombieProcessor(i int) error
}

// Targets wires a plan into a running simulation: the subsystems each
// fault kind manipulates. Cluster is required for broker faults, Path
// for network faults, Conn for connection resets; a nil target with a
// matching fault is a Schedule error. Timeline (optional) receives fault
// annotations; Seed parameterises loss-burst chains; OnError (optional)
// receives runtime injection failures (e.g. recovering a broker whose
// catch-up read fails).
type Targets struct {
	Sim     *des.Simulator
	Cluster *cluster.Cluster
	Path    *netem.Path
	Conn    *transport.Conn
	Group   *consumer.Group
	// Groups is the multi-group fan-out target: Fault.Group indexes into
	// it. When unset, faults with Group 0 fall back to the single Group.
	Groups   []*consumer.Group
	Procs    ProcessorSet
	Timeline *obs.Timeline
	Seed     uint64
	OnError  func(error)
}

// consumerGroup resolves a fault's group index against the targets.
func (t Targets) consumerGroup(i int32) *consumer.Group {
	if int(i) < len(t.Groups) {
		return t.Groups[i]
	}
	if i == 0 {
		return t.Group
	}
	return nil
}

func (t Targets) fail(err error) {
	if t.OnError != nil && err != nil {
		t.OnError(err)
	}
}

// burstModel builds the LossBurst Gilbert-Elliot chain: the simplified
// Gilbert model (K=1, H=0) with R fixed at 0.25 — mean burst length 4
// packets — and P solved so the stationary loss rate P/(P+R) hits the
// fault's target. The chain's randomness comes from the plan seed and
// the fault's index, so replays are exact.
func burstModel(rate float64, seed uint64, idx int) (stats.LossModel, error) {
	const r = 0.25
	p := rate * r / (1 - rate)
	if p > 1 {
		p = 1
	}
	return stats.NewGilbertElliot(p, r, 1, 0, rand.New(rand.NewPCG(seed, uint64(idx)+0xC4A05)))
}

// Schedule validates the plan against the targets and registers every
// fault with the simulator. Broker failures and recoveries annotate the
// timeline as broker events (the schema the run report already renders);
// network, connection, and slowdown faults annotate as chaos faults.
func Schedule(plan Plan, t Targets) error {
	if t.Sim == nil {
		return fmt.Errorf("chaos: nil simulator")
	}
	brokers := 0
	if t.Cluster != nil {
		brokers = t.Cluster.Brokers()
	}
	if err := plan.Validate(brokers); err != nil {
		return err
	}
	for i, f := range plan.Faults {
		f := f
		switch f.Kind {
		case BrokerCrash, UncleanRestart, BrokerRecover:
			if t.Cluster == nil {
				return fmt.Errorf("chaos: fault %d (%s): no cluster target", i, f.Kind)
			}
		case Partition, LossBurst, DelaySpike:
			if t.Path == nil {
				return fmt.Errorf("chaos: fault %d (%s): no path target", i, f.Kind)
			}
		case ConnReset:
			if t.Conn == nil {
				return fmt.Errorf("chaos: fault %d (%s): no connection target", i, f.Kind)
			}
		case BrokerSlow:
			if t.Cluster == nil {
				return fmt.Errorf("chaos: fault %d (%s): no cluster target", i, f.Kind)
			}
		case ConsumerCrash:
			if t.consumerGroup(f.Group) == nil {
				return fmt.Errorf("chaos: fault %d (%s): no consumer-group target for group %d", i, f.Kind, f.Group)
			}
		case ProcessorCrash, ProcessorZombie:
			if t.Procs == nil {
				return fmt.Errorf("chaos: fault %d (%s): no processor target", i, f.Kind)
			}
		}
		switch f.Kind {
		case BrokerCrash:
			t.Sim.Schedule(f.At, func() {
				if err := t.Cluster.FailBroker(f.Broker); err != nil {
					t.fail(err)
					return
				}
				t.Timeline.Annotate(obs.AnnBrokerEvent, fmt.Sprintf("fail broker %d", f.Broker))
			})
			if f.Duration > 0 {
				scheduleRecover(t, f.end(), f.Broker)
			}
		case UncleanRestart:
			t.Sim.Schedule(f.At, func() {
				if err := t.Cluster.CrashBrokerUnclean(f.Broker); err != nil {
					t.fail(err)
					return
				}
				t.Timeline.Annotate(obs.AnnBrokerEvent, fmt.Sprintf("crash broker %d unclean", f.Broker))
			})
			if f.Duration > 0 {
				scheduleRecover(t, f.end(), f.Broker)
			}
		case BrokerRecover:
			scheduleRecover(t, f.At, f.Broker)
		case Partition:
			scheduleLossWindow(t, f, stats.AlwaysLoss{})
		case LossBurst:
			m, err := burstModel(f.LossRate, t.Seed, i)
			if err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
			scheduleLossWindow(t, f, m)
		case DelaySpike:
			d := stats.Constant{Value: f.DelayMs}
			onLinks(t, f, func(l *netem.Link) { l.SetFaultDelay(d) },
				func(l *netem.Link) { l.SetFaultDelay(nil) })
		case ConnReset:
			t.Sim.Schedule(f.At, func() {
				t.Conn.Client.InjectFailure("chaos fault")
				t.Timeline.Annotate(obs.AnnFault, f.String())
			})
		case BrokerSlow:
			t.Sim.Schedule(f.At, func() {
				t.Cluster.Broker(f.Broker).SetSlowdown(f.Slowdown)
				t.Timeline.Annotate(obs.AnnFault, f.String())
			})
			t.Sim.Schedule(f.end(), func() {
				t.Cluster.Broker(f.Broker).SetSlowdown(1)
				t.Timeline.Annotate(obs.AnnFault, fmt.Sprintf("%s b%d over", f.Kind, f.Broker))
			})
		case ConsumerCrash:
			grp := t.consumerGroup(f.Group)
			t.Sim.Schedule(f.At, func() {
				if err := grp.CrashMember(int(f.Member)); err != nil {
					t.fail(err)
					return
				}
				t.Timeline.Annotate(obs.AnnFault, f.String())
			})
			if f.Duration > 0 {
				t.Sim.Schedule(f.end(), func() {
					if err := grp.RestartMember(int(f.Member)); err != nil {
						t.fail(err)
						return
					}
					t.Timeline.Annotate(obs.AnnFault, fmt.Sprintf("%s c%d restart", f.Kind, f.Member))
				})
			}
		case ProcessorCrash:
			t.Sim.Schedule(f.At, func() {
				if err := t.Procs.CrashProcessor(int(f.Member)); err != nil {
					t.fail(err)
					return
				}
				t.Timeline.Annotate(obs.AnnFault, f.String())
			})
			if f.Duration > 0 {
				t.Sim.Schedule(f.end(), func() {
					if err := t.Procs.RestartProcessor(int(f.Member)); err != nil {
						t.fail(err)
						return
					}
					t.Timeline.Annotate(obs.AnnFault, fmt.Sprintf("%s t%d restart", f.Kind, f.Member))
				})
			}
		case ProcessorZombie:
			t.Sim.Schedule(f.At, func() {
				if err := t.Procs.ZombieProcessor(int(f.Member)); err != nil {
					t.fail(err)
					return
				}
				t.Timeline.Annotate(obs.AnnFault, f.String())
			})
		}
	}
	return nil
}

func scheduleRecover(t Targets, at time.Duration, id int32) {
	t.Sim.Schedule(at, func() {
		if err := t.Cluster.RecoverBroker(id); err != nil {
			t.fail(err)
			return
		}
		t.Timeline.Annotate(obs.AnnBrokerEvent, fmt.Sprintf("recover broker %d", id))
	})
}

// scheduleLossWindow installs a loss overlay at the fault's start and
// clears it at the end. A single model instance shared by both
// directions yields correlated bursts, as a path-level outage would.
func scheduleLossWindow(t Targets, f Fault, m stats.LossModel) {
	onLinks(t, f, func(l *netem.Link) { l.SetFaultLoss(m) },
		func(l *netem.Link) { l.SetFaultLoss(nil) })
}

// onLinks schedules apply at f.At and clear at f.end() on every link the
// fault's direction covers, with timeline annotations bracketing the
// window.
func onLinks(t Targets, f Fault, apply, clear func(*netem.Link)) {
	var links []*netem.Link
	if affects(f.Direction, DirForward) {
		links = append(links, t.Path.Fwd)
	}
	if affects(f.Direction, DirReverse) {
		links = append(links, t.Path.Rev)
	}
	t.Sim.Schedule(f.At, func() {
		for _, l := range links {
			apply(l)
		}
		t.Timeline.Annotate(obs.AnnFault, f.String())
	})
	t.Sim.Schedule(f.end(), func() {
		for _, l := range links {
			clear(l)
		}
		t.Timeline.Annotate(obs.AnnFault, fmt.Sprintf("%s %s over", f.Kind, f.Direction))
	})
}
