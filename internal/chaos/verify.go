package chaos

import (
	"fmt"

	"kafkarel/internal/broker"
	"kafkarel/internal/consumer"
	"kafkarel/internal/obs"
	"kafkarel/internal/producer"
)

// TrialInput is the end-to-end evidence of one run, gathered from every
// layer: the producer's per-record outcome log, the consumer's
// reconciliation, the per-partition log contents, broker counters, and
// the run's timeline. Verify cross-checks them against the delivery
// guarantees the trial's semantics promise under its fault plan.
type TrialInput struct {
	// Semantics the producer ran with (assumed fixed for the trial).
	Semantics producer.Semantics
	// MaxInFlight gates the ordering invariant (it only holds at 1).
	MaxInFlight int
	// Replication is the topic's replication factor.
	Replication int
	// Plan is the fault plan the trial ran under; it decides whether
	// acked-data loss is an expected Case (acks=1 + broker outage) or an
	// invariant violation.
	Plan Plan
	// Completed reports whether the producer drained its source.
	Completed bool
	// Acquired is how many records entered the producer.
	Acquired uint64
	// Counts is the producer's aggregate view.
	Counts producer.Counts
	// Outcomes is the producer's per-record log (WithOutcomeLog).
	Outcomes []producer.Outcome
	// Consumed holds, per partition, the record keys in offset order.
	Consumed [][]uint64
	// Report is the consumer reconciliation over all partitions.
	Report consumer.Report
	// Brokers holds every broker's counters.
	Brokers []broker.Stats
	// Timeline, when non-nil, is cross-checked: interval deltas must sum
	// to the end-of-run counters.
	Timeline *obs.Timeline
	// PktsLost and Retransmits are the end-of-run network and transport
	// counters the timeline columns must sum to (ignored without a
	// timeline).
	PktsLost    uint64
	Retransmits uint64
}

// Verdict is Verify's result: hard invariant violations, plus expected
// anomalies the fault plan explains (classified, not violations) — e.g.
// acked-but-lost records after an unclean restart under acks=1, the
// exact loss mode the paper's semantics taxonomy predicts.
type Verdict struct {
	Violations []string
	Classified []string
}

// OK reports whether the trial upheld every invariant.
func (v Verdict) OK() bool { return len(v.Violations) == 0 }

func (v *Verdict) fail(format string, args ...any) {
	v.Violations = append(v.Violations, fmt.Sprintf(format, args...))
}

func (v *Verdict) note(format string, args ...any) {
	v.Classified = append(v.Classified, fmt.Sprintf(format, args...))
}

// Verify checks one trial's evidence. The invariants:
//
//  1. Conservation: every acquired record resolves to exactly one
//     terminal state (completed runs), and the outcome log, the
//     aggregate counts, and the acquisition counter agree.
//  2. No foreign keys: the log never contains records the source never
//     produced.
//  3. Acked ⇒ appended: a record the producer counts delivered is in
//     the log — always under exactly-once, and under any semantics when
//     no broker fault ran (network faults alone cannot lose acked
//     data). Under acks=1 with broker outages the loss is classified.
//  4. Duplicates: exactly-once and at-most-once admit none (consumer
//     side and broker side); at-least-once duplicates are classified,
//     and with max-in-flight 1 and no broker faults the broker's
//     duplicate-append record count must equal replication-factor times
//     the consumer's extra copies.
//  5. Ordering: at max-in-flight 1 each partition's first-appearance
//     key order is strictly increasing.
//  6. Timeline: every counter column's interval deltas sum to the
//     end-of-run counter — no event escaped sampling.
func Verify(in TrialInput) Verdict {
	var v Verdict

	// 1. Conservation and outcome-log consistency.
	var nDelivered, nLost, nOther uint64
	acked := make(map[uint64]bool, len(in.Outcomes))
	lost := make(map[uint64]bool)
	for _, o := range in.Outcomes {
		switch o.State {
		case producer.StateDelivered, producer.StateDuplicated:
			nDelivered++
			acked[o.Key] = true
		case producer.StateLost:
			nLost++
			lost[o.Key] = true
		default:
			nOther++
		}
	}
	if nOther > 0 {
		v.fail("outcome log holds %d non-terminal states", nOther)
	}
	if nDelivered != in.Counts.Delivered || nLost != in.Counts.Lost {
		v.fail("outcome log (%d delivered, %d lost) disagrees with counts (%d, %d)",
			nDelivered, nLost, in.Counts.Delivered, in.Counts.Lost)
	}
	if in.Counts.Delivered+in.Counts.Lost != in.Counts.Total {
		v.fail("counts leak: delivered %d + lost %d != total %d",
			in.Counts.Delivered, in.Counts.Lost, in.Counts.Total)
	}
	if in.Completed {
		if in.Counts.Total != in.Acquired {
			v.fail("completed run resolved %d of %d acquired records", in.Counts.Total, in.Acquired)
		}
	} else if in.Counts.Total > in.Acquired {
		v.fail("resolved %d records but acquired only %d", in.Counts.Total, in.Acquired)
	}

	// 2. Foreign keys.
	if in.Report.Foreign > 0 {
		v.fail("%d foreign keys in the log", in.Report.Foreign)
	}

	// Consumed key set and per-partition ordering.
	seen := make(map[uint64]bool)
	for p, keys := range in.Consumed {
		var lastNew uint64
		inPart := make(map[uint64]bool, len(keys))
		for _, k := range keys {
			seen[k] = true
			if inPart[k] {
				continue // replayed copy; first appearance already ordered
			}
			inPart[k] = true
			// 5. Ordering at max-in-flight 1: with the retrying batch
			// holding its in-flight slot (Kafka's partition muting), a new
			// key can never appear before an earlier one. Records the
			// producer resolved lost are exempt: a timed-out batch
			// releases its slot, so its zombie copy (Case 3: the attempt
			// landed after the give-up) may appear anywhere in the log.
			if lost[k] {
				continue
			}
			if in.MaxInFlight == 1 && k <= lastNew {
				v.fail("partition %d: key %d first appears after key %d (ordering broken at max-in-flight 1)",
					p, k, lastNew)
			}
			if k > lastNew {
				lastNew = k
			}
		}
	}

	// 3. Acked ⇒ appended.
	var ackedLost uint64
	for k := range acked {
		if !seen[k] {
			ackedLost++
		}
	}
	if ackedLost > 0 {
		switch {
		case in.Semantics == producer.ExactlyOnce:
			v.fail("%d acked records missing from the log under exactly-once", ackedLost)
		case !in.Plan.HasBrokerFaults():
			v.fail("%d acked records missing from the log with no broker fault", ackedLost)
		default:
			v.note("%d acked records lost to broker outage under %v (expected acks=1 loss)",
				ackedLost, in.Semantics)
		}
	}

	// Producer-lost records that still appear: the paper's Case 3/5
	// ambiguity (a timed-out attempt's copy landed anyway). Expected
	// under retries; never a violation.
	var lostButAppeared uint64
	for k := range lost {
		if seen[k] {
			lostButAppeared++
		}
	}
	if lostButAppeared > 0 {
		v.note("%d producer-lost records appear in the log (timed-out attempt landed)", lostButAppeared)
	}

	// 4. Duplicates.
	var dupAppends, dupRecords uint64
	for _, st := range in.Brokers {
		dupAppends += st.DuplicateAppends
		dupRecords += st.DuplicateRecords
	}
	switch in.Semantics {
	case producer.ExactlyOnce:
		if in.Report.NDuplicated > 0 {
			v.fail("%d duplicated keys under exactly-once", in.Report.NDuplicated)
		}
		if dupAppends > 0 {
			v.fail("%d broker duplicate appends under exactly-once", dupAppends)
		}
	case producer.AtMostOnce:
		if in.Report.NDuplicated > 0 {
			v.fail("%d duplicated keys under at-most-once (no retries ran)", in.Report.NDuplicated)
		}
	default:
		if in.Report.NDuplicated > 0 {
			v.note("%d duplicated keys under at-least-once (Case 5)", in.Report.NDuplicated)
		}
		if in.MaxInFlight == 1 && !in.Plan.HasBrokerFaults() && in.Replication > 0 {
			want := uint64(in.Replication) * in.Report.ExtraCopies
			if dupRecords != want {
				v.fail("broker duplicate records %d != replication %d x extra copies %d",
					dupRecords, in.Replication, in.Report.ExtraCopies)
			}
		}
	}

	// 6. Timeline column sums.
	if in.Timeline != nil {
		var sumAcked, sumLost, sumDup, sumPkts, sumRetrans uint64
		for _, row := range in.Timeline.Rows() {
			sumAcked += row.Acked
			sumLost += row.Lost
			sumDup += row.DupAppends
			sumPkts += row.PktsLost
			sumRetrans += row.Retransmits
		}
		check := func(col string, got, want uint64) {
			if got != want {
				v.fail("timeline %s column sums to %d, counter says %d", col, got, want)
			}
		}
		check("acked", sumAcked, in.Counts.Delivered)
		check("lost", sumLost, in.Counts.Lost)
		check("dup_appends", sumDup, dupAppends)
		check("pkts_lost", sumPkts, in.PktsLost)
		check("retransmits", sumRetrans, in.Retransmits)
	}

	return v
}
