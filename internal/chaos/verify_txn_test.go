package chaos

import (
	"strings"
	"testing"

	"kafkarel/internal/wire"
)

// cleanTxn is a two-attempt, one-partition run with nothing wrong:
// attempt 0 committed [0,3), attempt 1 committed [3,5).
func cleanTxn() TxnInput {
	return TxnInput{
		Isolation: wire.ReadCommitted,
		Attempts: []TxnAttempt{
			{Processor: "txn-0", Partition: 0, InputStart: 0, InputEnd: 3,
				OutputKeys: []uint64{1, 2, 3}, Outcome: TxnCommitted, CommitIssued: true},
			{Processor: "txn-0", Partition: 0, InputStart: 3, InputEnd: 5,
				OutputKeys: []uint64{4, 5}, Outcome: TxnCommitted, CommitIssued: true},
		},
		InputKeys:         [][]uint64{{1, 2, 3, 4, 5}},
		CommittedOffsets:  []int64{5},
		OutputCommitted:   [][]uint64{{1, 2, 3, 4, 5}},
		OutputUncommitted: [][]uint64{{1, 2, 3, 4, 5}},
		Completed:         true,
	}
}

func wantViolation(t *testing.T, v Verdict, substr string) {
	t.Helper()
	for _, s := range v.Violations {
		if strings.Contains(s, substr) {
			return
		}
	}
	t.Fatalf("no violation containing %q in %q", substr, v.Violations)
}

func wantNote(t *testing.T, v Verdict, substr string) {
	t.Helper()
	for _, s := range v.Classified {
		if strings.Contains(s, substr) {
			return
		}
	}
	t.Fatalf("no classified note containing %q in %q", substr, v.Classified)
}

func TestVerifyTxnCleanRunPasses(t *testing.T) {
	v := VerifyTxn(cleanTxn())
	if !v.OK() || len(v.Classified) != 0 {
		t.Fatalf("clean run: violations %q, notes %q", v.Violations, v.Classified)
	}
}

func TestVerifyTxnPhantomCommit(t *testing.T) {
	in := cleanTxn()
	// Key 9 is committed-visible but no attempt ever issued a commit for it.
	in.OutputCommitted[0] = append(in.OutputCommitted[0], 9)
	in.OutputUncommitted[0] = append(in.OutputUncommitted[0], 9)
	wantViolation(t, VerifyTxn(in), "never issued a commit")
}

func TestVerifyTxnZombieCommitNotFenced(t *testing.T) {
	in := cleanTxn()
	// Attempt 1's commit raced a newer incarnation's InitProducerId and
	// still reported Committed: fencing failed.
	in.Attempts[1].SupersededAtCommit = true
	wantViolation(t, VerifyTxn(in), "zombie commit not fenced")
}

func TestVerifyTxnConfirmedCommitWithoutDurableOffset(t *testing.T) {
	in := cleanTxn()
	// The group offset lags a client-confirmed commit: offsets and output
	// were supposed to move atomically.
	in.CommittedOffsets[0] = 3
	// Keep the committed view consistent with the (broken) offset so only
	// the atomicity check fires... except keys 4,5 are now early too.
	v := VerifyTxn(in)
	wantViolation(t, v, "durable offset is 3")
}

func TestVerifyTxnOffsetMatchesNoAttemptBoundary(t *testing.T) {
	in := cleanTxn()
	// A durable offset that is not any attempt's InputEnd means the
	// offset moved without a matching transaction.
	in.CommittedOffsets[0] = 4
	wantViolation(t, VerifyTxn(in), "matches no commit-issued attempt boundary")
}

func TestVerifyTxnOverlappingConfirmedCommits(t *testing.T) {
	in := cleanTxn()
	// Both attempts claim to have committed overlapping input ranges:
	// the same input was processed twice.
	in.Attempts[1].InputStart = 2
	// Overlap duplicates key 3's output in the committed view.
	in.Attempts[1].OutputKeys = []uint64{3, 4, 5}
	in.OutputCommitted[0] = []uint64{1, 2, 3, 3, 4, 5}
	in.OutputUncommitted[0] = in.OutputCommitted[0]
	v := VerifyTxn(in)
	wantViolation(t, v, "confirmed commits overlap")
	wantViolation(t, v, "committed more than once")
}

func TestVerifyTxnCommittedOutputLost(t *testing.T) {
	in := cleanTxn()
	// Key 2 sits below the durable offset but is missing at
	// read_committed: committed output was lost.
	in.OutputCommitted[0] = []uint64{1, 3, 4, 5}
	wantViolation(t, VerifyTxn(in), "committed output lost")
}

func TestVerifyTxnEarlyVisibility(t *testing.T) {
	in := cleanTxn()
	// Attempt 1 never confirmed and the offset stayed at 3, yet its keys
	// are committed-visible. Completed run: violation.
	in.Attempts[1].Outcome = TxnInFlight
	in.CommittedOffsets[0] = 3
	v := VerifyTxn(in)
	wantViolation(t, v, "beyond the durable offset")

	// The same evidence on a run cut off at the horizon is an in-flight
	// resolution, classified rather than flagged.
	in.Completed = false
	in.Plan = Plan{Faults: []Fault{{Kind: BrokerCrash}}}
	v = VerifyTxn(in)
	if !v.OK() {
		t.Fatalf("cut-off run flagged: %q", v.Violations)
	}
	wantNote(t, v, "resolution in flight")
}

func TestVerifyTxnResidueClassifiedOnlyAtReadUncommitted(t *testing.T) {
	in := cleanTxn()
	// An aborted attempt's keys linger in the uncommitted view.
	in.Attempts = append(in.Attempts, TxnAttempt{
		Processor: "txn-0", Partition: 0, InputStart: 5, InputEnd: 5,
		OutputKeys: []uint64{6}, Outcome: TxnAborted, Deliberate: true,
	})
	in.OutputUncommitted[0] = append(in.OutputUncommitted[0], 6)

	// At read_committed the consumer can never see the residue, so there
	// is nothing to classify.
	v := VerifyTxn(in)
	if !v.OK() || len(v.Classified) != 0 {
		t.Fatalf("read_committed residue run: violations %q, notes %q", v.Violations, v.Classified)
	}

	// At read_uncommitted the residue is configuration-expected.
	in.Isolation = wire.ReadUncommitted
	v = VerifyTxn(in)
	if !v.OK() {
		t.Fatalf("read_uncommitted residue flagged: %q", v.Violations)
	}
	wantNote(t, v, "configuration-expected")
}

func TestVerifyTxnIncompleteRun(t *testing.T) {
	in := cleanTxn()
	in.Completed = false

	// No faults in the plan: an unfinished pipeline is a violation.
	wantViolation(t, VerifyTxn(in), "no faults in plan")

	// With processor faults it is expected, and only noted.
	in.Plan = Plan{Faults: []Fault{{Kind: ProcessorCrash}}}
	v := VerifyTxn(in)
	if !v.OK() {
		t.Fatalf("faulted incomplete run flagged: %q", v.Violations)
	}
	wantNote(t, v, "did not finish")
}

func TestVerifyTxnAttemptOutsideTopic(t *testing.T) {
	in := cleanTxn()
	in.Attempts[1].Partition = 7
	wantViolation(t, VerifyTxn(in), "outside topic")
}
