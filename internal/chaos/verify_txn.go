package chaos

import (
	"fmt"
	"sort"

	"kafkarel/internal/wire"
)

// TxnOutcome is how one transactional attempt ended at its client.
type TxnOutcome int

// Attempt outcomes. TxnInFlight covers both attempts cut off by a crash
// and attempts whose EndTxn answer was lost — the client cannot tell
// whether such a transaction committed, so the verifier treats its
// output as possible but not obligatory.
const (
	TxnInFlight TxnOutcome = iota
	TxnCommitted
	TxnAborted
	TxnFenced
)

// String implements fmt.Stringer.
func (o TxnOutcome) String() string {
	switch o {
	case TxnInFlight:
		return "in-flight"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	case TxnFenced:
		return "fenced"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// TxnAttempt is the evidence one consume-process-produce cycle leaves
// behind: which processor incarnation ran it, what input range it
// consumed, what output keys it produced, and how it ended. The testbed
// pipeline records one per Begin, updating it as the attempt resolves.
type TxnAttempt struct {
	// Processor is the transactional.id.
	Processor string
	// Instance is the incarnation ordinal under that id (0 = first).
	Instance int
	// Epoch is the producer epoch the attempt ran at.
	Epoch uint32
	// Partition is the input (and output) partition processed.
	Partition int32
	// InputStart and InputEnd bound the consumed input offsets
	// [InputStart, InputEnd); on commit the group offset moves to
	// InputEnd.
	InputStart, InputEnd int64
	// OutputKeys are the record keys the attempt produced.
	OutputKeys []uint64
	// Outcome is the client-side resolution.
	Outcome TxnOutcome
	// Deliberate marks an abort the application chose (vs an error path).
	Deliberate bool
	// CommitIssued reports whether EndTxn(commit) was ever sent — the
	// only attempts whose output may legally become committed-visible.
	CommitIssued bool
	// SupersededAtCommit reports that a newer incarnation of the
	// transactional.id had already completed InitProducerId when this
	// attempt issued its commit: the commit MUST be fenced.
	SupersededAtCommit bool
}

// TxnInput is the end-of-trial evidence of one transactional pipeline
// run. Keys are unique per input partition, and each output partition
// is scanned twice: once at read_committed (the isolation the
// guarantees are stated at) and once at read_uncommitted (the residue
// view).
type TxnInput struct {
	// Isolation is the trial's configured consumer isolation — it decides
	// whether aborted residue in the consumer view is a configuration
	// expectation or impossible.
	Isolation wire.IsolationLevel
	// Plan is the trial's fault plan.
	Plan Plan
	// Attempts is every transactional attempt, in start order.
	Attempts []TxnAttempt
	// InputKeys holds, per partition, the input record keys in offset
	// order (input offset i carries InputKeys[p][i]).
	InputKeys [][]uint64
	// CommittedOffsets is the durable group offset per input partition at
	// the end of the run (-1 = nothing committed).
	CommittedOffsets []int64
	// OutputCommitted holds, per output partition, the keys visible at
	// read_committed.
	OutputCommitted [][]uint64
	// OutputUncommitted holds the same scan at read_uncommitted.
	OutputUncommitted [][]uint64
	// Completed reports whether every partition's input was fully
	// processed and committed.
	Completed bool
}

// VerifyTxn checks the transactional invariants of one trial. The
// invariants, per partition:
//
//  1. No phantom commits: every key visible at read_committed belongs
//     to some attempt that issued EndTxn(commit) — records from aborted
//     or never-ended transactions must be filtered.
//  2. Zombie fencing: an attempt whose commit was issued after a newer
//     incarnation completed InitProducerId must not end Committed.
//  3. Commit atomicity: the durable group offset equals the InputEnd of
//     some commit-issued attempt (output and offsets move together or
//     not at all), is never below a client-confirmed commit, and
//     client-confirmed committed input ranges never overlap.
//  4. Exactly-once delivery: every input key below the committed offset
//     appears exactly once at read_committed; a key at-or-above it
//     appearing committed-visible is a violation when the run completed
//     (and an in-flight resolution note when it was cut off).
//  5. Isolation residue: keys visible at read_uncommitted beyond their
//     committed count are aborted/in-flight residue — expected
//     configuration behaviour in a read_uncommitted trial (classified),
//     unreachable by a read_committed consumer.
//  6. Completion: an unfinished pipeline is expected under broker or
//     processor faults, a violation without any.
func VerifyTxn(in TxnInput) Verdict {
	var v Verdict
	parts := len(in.InputKeys)

	byPart := make([][]*TxnAttempt, parts)
	for i := range in.Attempts {
		a := &in.Attempts[i]
		if int(a.Partition) >= parts || a.Partition < 0 {
			v.fail("txn: attempt by %s/%d on partition %d outside topic", a.Processor, a.Instance, a.Partition)
			continue
		}
		byPart[a.Partition] = append(byPart[a.Partition], a)

		// 2. Zombie fencing.
		if a.SupersededAtCommit && a.Outcome == TxnCommitted {
			v.fail("txn: %s/%d committed [%d,%d) after a newer incarnation was initialised (zombie commit not fenced)",
				a.Processor, a.Instance, a.InputStart, a.InputEnd)
		}
	}

	counts := func(keys []uint64) map[uint64]int {
		m := make(map[uint64]int, len(keys))
		for _, k := range keys {
			m[k]++
		}
		return m
	}

	for p := 0; p < parts; p++ {
		var committed, uncommitted map[uint64]int
		if p < len(in.OutputCommitted) {
			committed = counts(in.OutputCommitted[p])
		}
		if p < len(in.OutputUncommitted) {
			uncommitted = counts(in.OutputUncommitted[p])
		}
		commitIssued := make(map[uint64]bool)
		var confirmed []*TxnAttempt
		var cp int64 = -1
		if p < len(in.CommittedOffsets) {
			cp = in.CommittedOffsets[p]
		}
		for _, a := range byPart[p] {
			if a.CommitIssued {
				for _, k := range a.OutputKeys {
					commitIssued[k] = true
				}
			}
			if a.Outcome == TxnCommitted {
				confirmed = append(confirmed, a)
				// 3. A confirmed commit's offset must be durable.
				if cp < a.InputEnd {
					v.fail("txn: partition %d: %s/%d commit confirmed through input %d but durable offset is %d",
						p, a.Processor, a.Instance, a.InputEnd, cp)
				}
			}
		}

		// 1. No phantom commits.
		phantom := 0
		for k, n := range committed {
			if n > 0 && !commitIssued[k] {
				phantom++
			}
		}
		if phantom > 0 {
			v.fail("txn: partition %d: %d keys visible at read_committed from transactions that never issued a commit", p, phantom)
		}

		// 3. Durable offset explained by some commit-issued attempt, and
		// confirmed-committed ranges disjoint.
		if cp > 0 {
			explained := false
			for _, a := range byPart[p] {
				if a.CommitIssued && a.InputEnd == cp {
					explained = true
					break
				}
			}
			if !explained {
				v.fail("txn: partition %d: durable offset %d matches no commit-issued attempt boundary", p, cp)
			}
		}
		sort.Slice(confirmed, func(i, j int) bool { return confirmed[i].InputStart < confirmed[j].InputStart })
		for i := 1; i < len(confirmed); i++ {
			if confirmed[i].InputStart < confirmed[i-1].InputEnd {
				v.fail("txn: partition %d: confirmed commits overlap ([%d,%d) and [%d,%d)) — input range processed twice",
					p, confirmed[i-1].InputStart, confirmed[i-1].InputEnd, confirmed[i].InputStart, confirmed[i].InputEnd)
			}
		}

		// 4. Exactly-once against the committed watermark.
		lost, dup, early := 0, 0, 0
		for i, k := range in.InputKeys[p] {
			n := committed[k]
			switch {
			case int64(i) < cp && n == 0:
				lost++
			case n > 1:
				dup++
			case int64(i) >= cp && n == 1:
				early++
			}
		}
		if lost > 0 {
			v.fail("txn: partition %d: %d committed input keys missing at read_committed (committed output lost)", p, lost)
		}
		if dup > 0 {
			v.fail("txn: partition %d: %d input keys committed more than once (exactly-once broken)", p, dup)
		}
		if early > 0 {
			if in.Completed {
				v.fail("txn: partition %d: %d keys committed-visible beyond the durable offset %d", p, early, cp)
			} else {
				v.note("txn: partition %d: %d keys committed-visible beyond durable offset %d (resolution in flight at horizon)", p, early, cp)
			}
		}

		// 5. Residue at read_uncommitted.
		residue := 0
		for k, n := range uncommitted {
			if extra := n - committed[k]; extra > 0 {
				residue += extra
			}
		}
		if residue > 0 && in.Isolation == wire.ReadUncommitted {
			v.note("txn: partition %d: %d aborted/in-flight records visible at read_uncommitted (configuration-expected)", p, residue)
		}
	}

	// 6. Completion.
	if !in.Completed {
		if in.Plan.HasBrokerFaults() || in.Plan.HasProcessorFaults() {
			v.note("txn: pipeline did not finish within the horizon (faults in plan)")
		} else {
			v.fail("txn: pipeline did not finish with no faults in plan")
		}
	}
	return v
}
