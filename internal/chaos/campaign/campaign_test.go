package campaign

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// small returns a quick campaign config for determinism checks.
func small(mode string, workers int) Config {
	return Config{Mode: mode, Trials: 12, Seed: 7, Messages: 120, Workers: workers}
}

func TestConfigRejectsUnknownMode(t *testing.T) {
	if _, err := Run(context.Background(), Config{Mode: "bogus", Trials: 1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestCampaignDeterministicAcrossWorkers is the replay guarantee: the
// rendered scorecard must be byte-identical at 1, 4 and 8 workers, for
// both modes.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	for _, mode := range []string{ModeExactlyOnce, ModeAtLeastOnce} {
		var ref []byte
		for _, workers := range []int{1, 4, 8} {
			sc, err := Run(context.Background(), small(mode, workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mode, workers, err)
			}
			var buf bytes.Buffer
			if err := sc.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf.Bytes()
			} else if !bytes.Equal(ref, buf.Bytes()) {
				t.Errorf("%s: scorecard at workers=%d differs from workers=1", mode, workers)
			}
		}
	}
}

// TestRunTrialReplaysScorecardRow re-runs one flagged trial from its
// recorded seeds alone and requires the identical row back.
func TestRunTrialReplaysScorecardRow(t *testing.T) {
	cfg := small(ModeAtLeastOnce, 4)
	sc, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := sc.Rows[len(sc.Rows)/2]
	for _, r := range sc.Rows {
		if len(r.Classified) > 0 {
			row = r // prefer an eventful trial
			break
		}
	}
	replayed, err := RunTrial(cfg, row.PlanSeed, row.WorkloadSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, replayed) {
		t.Errorf("replayed row differs:\ncampaign: %+v\nreplay:   %+v", row, replayed)
	}
}

// TestExactlyOnceCampaignHoldsInvariants is the headline acceptance
// run: 200 generated fault plans mixing every fault kind against the
// idempotent acks=all producer on a replication-factor-3 topic, with
// zero invariant violations allowed.
func TestExactlyOnceCampaignHoldsInvariants(t *testing.T) {
	sc, err := Run(context.Background(), Config{Mode: ModeExactlyOnce, Trials: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Rows {
		if !r.Pass {
			t.Errorf("trial (plan %d, workload %d) violated: %v (faults %v)",
				r.PlanSeed, r.WorkloadSeed, r.Violations, r.Faults)
		}
	}
	if sc.Failed != 0 {
		t.Fatalf("%d of %d exactly-once trials violated invariants", sc.Failed, sc.Trials)
	}
	assertAllKindsCovered(t, sc)
}

// TestAtLeastOnceCampaignClassifiesAckedLoss runs acks=1 on an
// unreplicated topic with unclean restarts: injected acked-data loss
// must be classified as expected Kafka behaviour, never reported as an
// invariant violation.
func TestAtLeastOnceCampaignClassifiesAckedLoss(t *testing.T) {
	sc, err := Run(context.Background(), Config{Mode: ModeAtLeastOnce, Trials: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Failed != 0 {
		for _, r := range sc.Rows {
			if !r.Pass {
				t.Errorf("trial (plan %d, workload %d): %v", r.PlanSeed, r.WorkloadSeed, r.Violations)
			}
		}
		t.Fatalf("%d of %d at-least-once trials misreported expected loss as violations", sc.Failed, sc.Trials)
	}
	if sc.AckedLost == 0 {
		t.Error("no trial lost acknowledged records; campaign never exercised the unclean-restart loss window")
	}
	var truncated uint64
	for _, r := range sc.Rows {
		truncated += r.Truncated
	}
	if truncated == 0 {
		t.Error("no unclean restart truncated any records across 200 trials")
	}
	assertAllKindsCovered(t, sc)
}

// TestExactlyOncePipelinedCampaign re-runs the exactly-once campaign at
// max-in-flight 5 (Kafka's default pipelining). This is the regression
// gate for a bug the checker caught: the broker's original high-water
// sequence dedup dropped — while acking — new batches that arrived out
// of order behind a retry, losing acknowledged records. The
// remembered-batch cache (wire.SeqCacheSize) fixed it; acked ⇒ appended
// must now hold at depth 5 under every fault mix.
func TestExactlyOncePipelinedCampaign(t *testing.T) {
	sc, err := Run(context.Background(), Config{
		Mode: ModeExactlyOnce, Trials: 60, Seed: 1337, MaxInFlight: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Rows {
		if !r.Pass {
			t.Errorf("trial (plan %d, workload %d) violated at max-in-flight 5: %v (faults %v)",
				r.PlanSeed, r.WorkloadSeed, r.Violations, r.Faults)
		}
	}
}

// TestExactlyOnceE2ECampaign is the end-to-end acceptance run: 60
// trials mixing broker faults (including unclean restarts) with
// consumer-member crash/restart rebalances, a two-member group
// committing through the rf=3 offsets log, and zero tolerance — no
// producer, broker, or end-to-end delivery invariant may fire under
// exactly-once.
func TestExactlyOnceE2ECampaign(t *testing.T) {
	sc, err := Run(context.Background(), Config{
		Mode: ModeExactlyOnce, Trials: 60, Seed: 20260806, E2E: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sc.Rows {
		if !r.Pass {
			t.Errorf("trial (plan %d, workload %d) violated: %v (faults %v)",
				r.PlanSeed, r.WorkloadSeed, r.Violations, r.Faults)
		}
	}
	if sc.Failed != 0 {
		t.Fatalf("%d of %d exactly-once e2e trials violated invariants", sc.Failed, sc.Trials)
	}
	if sc.OffsetRegressed != 0 {
		t.Fatalf("%d trials lost committed offsets despite the rf=3 offsets topic", sc.OffsetRegressed)
	}
	var crashes, rebalances, expirations uint64
	consumerFaults := 0
	for _, r := range sc.Rows {
		if !r.Drained {
			t.Errorf("trial (plan %d): group did not drain", r.PlanSeed)
		}
		rebalances += r.Rebalances
		expirations += r.Expirations
		for _, f := range r.Faults {
			if strings.HasPrefix(f, "consumer-crash ") {
				consumerFaults++
			}
		}
		_ = crashes
	}
	if consumerFaults == 0 {
		t.Error("no generated plan crashed a consumer member across 60 trials")
	}
	if rebalances == 0 || expirations == 0 {
		t.Errorf("rebalances=%d expirations=%d; campaign never exercised membership churn", rebalances, expirations)
	}
}

// TestAtLeastOnceE2EClassifiesOffsetRegression runs the group against
// an rf=1 offsets topic under unclean restarts: committed watermarks
// that the offsets log loses must be classified as the expected acks=1
// redelivery window, never reported as violations — and at least one
// trial must actually hit the window.
func TestAtLeastOnceE2EClassifiesOffsetRegression(t *testing.T) {
	sc, err := Run(context.Background(), Config{
		Mode: ModeAtLeastOnce, Trials: 60, Seed: 20260806, E2E: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Failed != 0 {
		for _, r := range sc.Rows {
			if !r.Pass {
				t.Errorf("trial (plan %d, workload %d): %v", r.PlanSeed, r.WorkloadSeed, r.Violations)
			}
		}
		t.Fatalf("%d of %d at-least-once e2e trials misreported expected anomalies", sc.Failed, sc.Trials)
	}
	if sc.OffsetRegressed == 0 {
		t.Error("no trial regressed a committed offset; the rf=1 offsets-loss window never opened")
	}
	found := false
	for _, r := range sc.Rows {
		for _, c := range r.Classified {
			if strings.Contains(c, "committed offsets regressed") {
				found = true
			}
		}
	}
	if !found {
		t.Error("offset regression never classified in any row")
	}
}

// assertAllKindsCovered requires the campaign's generated plans to have
// exercised every schedulable fault kind at least once.
func assertAllKindsCovered(t *testing.T, sc Scorecard) {
	t.Helper()
	kinds := []string{"broker-crash", "unclean-restart", "partition",
		"loss-burst", "delay-spike", "conn-reset", "broker-slow"}
	seen := make(map[string]bool)
	for _, r := range sc.Rows {
		for _, f := range r.Faults {
			for _, k := range kinds {
				if strings.HasPrefix(f, k+" ") {
					seen[k] = true
				}
			}
		}
	}
	for _, k := range kinds {
		if !seen[k] {
			t.Errorf("fault kind %q never generated across %d trials", k, sc.Trials)
		}
	}
}

// TestTxnCampaignHoldsExactlyOnceInvariants pins the chaos-smoke txn
// row: 60 trials of the transactional consume-process-produce pipeline
// under broker crashes, unclean restarts, processor crashes and zombie
// races must complete with zero VerifyTxn violations and nothing
// flagged at read_committed — and the faults must actually bite
// (fenced zombie commits and incarnation churn observed).
func TestTxnCampaignHoldsExactlyOnceInvariants(t *testing.T) {
	sc, err := Run(context.Background(), Config{
		Mode: ModeTxn, Trials: 60, Seed: 20260806,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Failed != 0 || sc.Flagged != 0 {
		for _, r := range sc.Rows {
			if !r.Pass || len(r.Classified) > 0 {
				t.Errorf("trial (plan %d, workload %d): violations %v, classified %v (faults %v)",
					r.PlanSeed, r.WorkloadSeed, r.Violations, r.Classified, r.Faults)
			}
		}
		t.Fatalf("txn campaign: %d violated, %d flagged of %d trials", sc.Failed, sc.Flagged, sc.Trials)
	}
	fenced, committed, zombies := 0, uint64(0), 0
	for _, r := range sc.Rows {
		if !r.Completed {
			t.Errorf("trial (plan %d): pipeline did not complete", r.PlanSeed)
		}
		if r.Isolation != "read_committed" {
			t.Errorf("trial (plan %d): isolation %q, want read_committed", r.PlanSeed, r.Isolation)
		}
		fenced += r.FencedAttempts
		committed += r.TxnsCommitted
		for _, f := range r.Faults {
			if strings.HasPrefix(f, "processor-zombie ") {
				zombies++
			}
		}
	}
	if zombies == 0 {
		t.Error("no generated plan raced a zombie incarnation across 60 trials")
	}
	if fenced == 0 {
		t.Error("no attempt was ever fenced; zombie fencing never exercised")
	}
	if committed == 0 {
		t.Error("no transaction committed across the campaign")
	}
}

// TestTxnCampaignDeterministicAcrossWorkers extends the byte-identity
// guarantee to the transactional mode.
func TestTxnCampaignDeterministicAcrossWorkers(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4, 8} {
		sc, err := Run(context.Background(), small(ModeTxn, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := sc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Errorf("txn scorecard at workers=%d differs from workers=1", workers)
		}
	}
}

// TestTxnCampaignReadUncommittedClassifiesResidue flips the consumer
// isolation: aborted transactions' records become visible, and every
// sighting must be classified as configuration-expected — never a
// violation.
func TestTxnCampaignReadUncommittedClassifiesResidue(t *testing.T) {
	sc, err := Run(context.Background(), Config{
		Mode: ModeTxn, Trials: 12, Seed: 20260806, Isolation: "read_uncommitted",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Failed != 0 {
		t.Fatalf("%d of %d read_uncommitted trials violated invariants", sc.Failed, sc.Trials)
	}
	residue := 0
	for _, r := range sc.Rows {
		if r.Isolation != "read_uncommitted" {
			t.Errorf("trial (plan %d): isolation %q", r.PlanSeed, r.Isolation)
		}
		for _, note := range r.Classified {
			if strings.Contains(note, "configuration-expected") {
				residue++
			}
		}
	}
	if residue == 0 {
		t.Error("no trial classified aborted residue; the deliberate-abort knob never produced any")
	}
}

// TestCoopCampaignDeterministicAcrossWorkers extends the replay
// guarantee to the cooperative-rebalance mode: the rendered scorecard —
// including the per-group rebalance/expiration rows and the paired
// eager-control columns — must be byte-identical at 1, 4 and 8 workers.
func TestCoopCampaignDeterministicAcrossWorkers(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4, 8} {
		sc, err := Run(context.Background(), Config{
			Mode: ModeCoop, Trials: 3, Seed: 11, Messages: 120, Workers: workers,
		})
		if err != nil {
			t.Fatalf("coop workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := sc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Errorf("coop: scorecard at workers=%d differs from workers=1", workers)
		}
	}
}

// TestCoopCampaignHoldsInvariantsAndBeatsEager runs a short cooperative
// churn campaign and holds the PR's two claims at once: zero
// coordinator/delivery invariant violations under generated
// redelivery-storm plans, and the cooperative protocol never worse —
// in aggregate strictly better — than its paired eager control on both
// redelivered records and paused-partition time.
func TestCoopCampaignHoldsInvariantsAndBeatsEager(t *testing.T) {
	sc, err := Run(context.Background(), Config{Mode: ModeCoop, Trials: 8, Seed: 20260806})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Failed != 0 || sc.Flagged != 0 {
		for _, r := range sc.Rows {
			for _, v := range r.Violations {
				t.Errorf("plan %d: %s", r.PlanSeed, v)
			}
			for _, c := range r.Classified {
				t.Errorf("plan %d (classified): %s", r.PlanSeed, c)
			}
		}
		t.Fatalf("failed=%d flagged=%d, want 0/0", sc.Failed, sc.Flagged)
	}
	if sc.CoopRedelivered > sc.EagerRedelivered {
		t.Errorf("coop redelivered %d > eager %d", sc.CoopRedelivered, sc.EagerRedelivered)
	}
	if sc.CoopPausedNs >= sc.EagerPausedNs {
		t.Errorf("coop paused %d ns >= eager %d ns", sc.CoopPausedNs, sc.EagerPausedNs)
	}
	for _, r := range sc.Rows {
		if r.Redelivered > r.EagerRedelivered {
			t.Errorf("plan %d: coop redelivered %d > eager %d", r.PlanSeed, r.Redelivered, r.EagerRedelivered)
		}
		if len(r.GroupRebalances) != r.Groups || len(r.GroupExpirations) != r.Groups {
			t.Errorf("plan %d: group-tagged rows %d/%d, want %d per-group entries",
				r.PlanSeed, len(r.GroupRebalances), len(r.GroupExpirations), r.Groups)
		}
	}
}
