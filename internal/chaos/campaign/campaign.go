// Package campaign runs randomised chaos campaigns: N trials, each a
// full testbed experiment under a generated fault plan, executed in
// parallel on the exprun pool and fed through the chaos invariant
// checker. The output is a scorecard — one row per trial with the
// seeds, fault list, reliability metrics, classified anomalies and
// invariant violations — reproducible byte-for-byte from (seed, config)
// at any worker count, and any single row from its recorded
// (plan seed, workload seed) pair alone.
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"kafkarel/internal/chaos"
	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/obs"
	"kafkarel/internal/producer"
	"kafkarel/internal/testbed"
	"kafkarel/internal/wire"
)

// Modes. ModeExactlyOnce runs the idempotent producer with acks=all on
// a replication-factor-3 topic: every anomaly is an invariant violation.
// ModeAtLeastOnce runs acks=1 on a replication-factor-1 topic with
// unclean restarts: acked-data loss is the *expected* Kafka behaviour
// there, and the checker classifies it rather than flagging it.
// ModeTxn runs the transactional consume-process-produce pipeline
// (replication factor 3) under processor crashes, zombie incarnations
// and broker outages, verified by the transactional invariant checker
// (chaos.VerifyTxn): zombie fencing, commit atomicity, exactly-once
// delivery at read_committed.
// ModeCoop runs a multi-group consumer fan-out (replication factor 3,
// offsets at 3) under a generated churn plan of member crashes and
// broker outages — twice per trial, once cooperative (KIP-429) and
// once eager on the same (plan, workload) — and verifies the
// cooperative run with chaos.VerifyCoop + chaos.VerifyE2E per group.
// The eager run is the control: its redelivery and paused-partition
// totals sit next to the cooperative run's in the row.
const (
	ModeExactlyOnce = "exactly-once"
	ModeAtLeastOnce = "at-least-once"
	ModeTxn         = "txn"
	ModeCoop        = "coop"
)

// Config parameterises one campaign.
type Config struct {
	// Mode is ModeExactlyOnce (default) or ModeAtLeastOnce.
	Mode string
	// Trials is the number of generated fault plans (default 50).
	Trials int
	// Seed derives every trial's (plan seed, workload seed) pair.
	Seed uint64
	// Messages per trial (default 300).
	Messages int
	// MaxFaults per generated plan (default 5).
	MaxFaults int
	// Horizon is the fault-injection window (default 2 s).
	Horizon time.Duration
	// FlushInterval is the brokers' fsync cadence (default 50 ms): the
	// unclean-restart loss window.
	FlushInterval time.Duration
	// MaxInFlight is the producer pipelining depth (default 1). The
	// ordering and duplicate-accounting invariants only apply at 1; the
	// ack/loss/conservation invariants hold at any depth.
	MaxInFlight int
	// E2E extends each trial with a consumer group run through the
	// broker-side coordinator: ConsumerMembers members poll and commit
	// while the faults fire, generated plans add consumer crash/restart
	// faults, and the end-to-end checker (chaos.VerifyE2E) verifies the
	// producer → log → group → committed-offset chain on top of the
	// producer/broker invariants. The coordinator's offsets topic runs
	// at the mode's replication factor, so at-least-once campaigns
	// exercise the lost-committed-offset window and exactly-once
	// campaigns must never see it.
	E2E bool
	// ConsumerMembers is the group size under E2E (default 2) and per
	// group under ModeCoop (default 6 — cooperative rebalancing's pause
	// advantage scales with the members-per-moved-share ratio, so the
	// campaign measures it at a group size where the protocol is meant
	// to live).
	ConsumerMembers int
	// Groups is the ModeCoop consumer-group fan-out (default 2).
	Groups int
	// Isolation selects the ModeTxn consumer isolation: "" or
	// "read_committed" (default, every residue is checked), or
	// "read_uncommitted" (aborted residue in the consumer view is
	// classified as configuration-expected, not flagged).
	Isolation string
	// Workers bounds the parallel trial pool (<= 0: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives (done, total) after each trial.
	Progress func(done, total int)
}

func (c Config) withDefaults() (Config, error) {
	if c.Mode == "" {
		c.Mode = ModeExactlyOnce
	}
	if c.Mode != ModeExactlyOnce && c.Mode != ModeAtLeastOnce && c.Mode != ModeTxn && c.Mode != ModeCoop {
		return c, fmt.Errorf("campaign: unknown mode %q", c.Mode)
	}
	switch c.Isolation {
	case "", "read_committed", "read_uncommitted":
	default:
		return c, fmt.Errorf("campaign: unknown isolation %q", c.Isolation)
	}
	if c.Trials <= 0 {
		c.Trials = 50
	}
	if c.Messages <= 0 {
		c.Messages = 300
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 5
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1
	}
	if c.E2E && c.ConsumerMembers <= 0 {
		c.ConsumerMembers = 2
	}
	if c.Mode == ModeCoop {
		if c.ConsumerMembers <= 0 {
			c.ConsumerMembers = 6
		}
		if c.Groups <= 0 {
			c.Groups = 2
		}
	}
	return c, nil
}

// Row is one trial's scorecard entry. It carries everything needed to
// reproduce the trial (mode, seeds, knobs are implied by mode) and the
// verdict; it deliberately excludes the trial index and any wall-clock
// time, so a replayed row is byte-identical to the campaign's.
type Row struct {
	Mode         string   `json:"mode"`
	PlanSeed     uint64   `json:"plan_seed"`
	WorkloadSeed uint64   `json:"workload_seed"`
	Faults       []string `json:"faults"`
	Completed    bool     `json:"completed"`
	Acquired     uint64   `json:"acquired"`
	Delivered    uint64   `json:"delivered"`
	Lost         uint64   `json:"lost"`
	Duplicated   uint64   `json:"duplicated"`
	Pl           float64  `json:"pl"`
	Pd           float64  `json:"pd"`
	Truncated    uint64   `json:"records_truncated"`
	Unclean      uint64   `json:"unclean_restarts"`
	// E2E-mode fields: what the consumer group saw during the trial.
	Consumed          int64  `json:"consumed,omitempty"`
	Redelivered       uint64 `json:"redelivered,omitempty"`
	Rebalances        uint64 `json:"rebalances,omitempty"`
	Expirations       uint64 `json:"expirations,omitempty"`
	OffsetRegressions int    `json:"offset_regressions,omitempty"`
	Drained           bool   `json:"drained,omitempty"`
	// Coop-mode fields: the cooperative run's totals live in the E2E
	// fields above; these carry its paused/fan-out accounting and the
	// eager control run of the same (plan, workload) for comparison.
	Groups           int      `json:"groups,omitempty"`
	PausedNs         uint64   `json:"paused_ns,omitempty"`
	CoopFollowUps    uint64   `json:"coop_followups,omitempty"`
	GroupRebalances  []uint64 `json:"group_rebalances,omitempty"`
	GroupExpirations []uint64 `json:"group_expirations,omitempty"`
	EagerRedelivered uint64   `json:"eager_redelivered,omitempty"`
	EagerPausedNs    uint64   `json:"eager_paused_ns,omitempty"`
	EagerRebalances  uint64   `json:"eager_rebalances,omitempty"`
	// Txn-mode fields: transactional attempt and coordinator activity.
	Isolation      string   `json:"isolation,omitempty"`
	TxnAttempts    int      `json:"txn_attempts,omitempty"`
	TxnsCommitted  uint64   `json:"txns_committed,omitempty"`
	TxnsAborted    uint64   `json:"txns_aborted,omitempty"`
	TimeoutAborts  uint64   `json:"timeout_aborts,omitempty"`
	FencedAttempts int      `json:"fenced_attempts,omitempty"`
	Incarnations   []int    `json:"incarnations,omitempty"`
	Classified     []string `json:"classified,omitempty"`
	Violations     []string `json:"violations,omitempty"`
	Pass           bool     `json:"pass"`
}

// Scorecard is a campaign's full result.
type Scorecard struct {
	Mode      string `json:"mode"`
	Trials    int    `json:"trials"`
	Seed      uint64 `json:"seed"`
	Failed    int    `json:"failed"`     // trials with invariant violations
	Flagged   int    `json:"flagged"`    // trials with classified anomalies
	AckedLost int    `json:"acked_lost"` // trials that lost acknowledged records (classified)
	// OffsetRegressed counts trials whose offsets log lost a committed
	// watermark across an unclean restart (E2E mode only).
	OffsetRegressed int `json:"offset_regressed,omitempty"`
	// Coop-mode totals: the cooperative runs' redelivery and
	// paused-partition sums next to their eager controls'.
	CoopRedelivered  uint64 `json:"coop_redelivered,omitempty"`
	EagerRedelivered uint64 `json:"eager_redelivered,omitempty"`
	CoopPausedNs     uint64 `json:"coop_paused_ns,omitempty"`
	EagerPausedNs    uint64 `json:"eager_paused_ns,omitempty"`
	Rows             []Row  `json:"rows"`
}

// OK reports whether every trial upheld its invariants.
func (s Scorecard) OK() bool { return s.Failed == 0 }

// WriteJSON renders the scorecard as indented JSON.
func (s Scorecard) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Run executes the campaign: Trials generated plans, run in parallel,
// each verified. Trial i's plan seed and workload seed are mixed from
// Config.Seed and the index, never from scheduling order, so the
// scorecard is identical for every worker count.
func Run(ctx context.Context, cfg Config) (Scorecard, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Scorecard{}, err
	}
	seeds := exprun.MixedSeeds(cfg.Seed)
	idx := make([]int, cfg.Trials)
	for i := range idx {
		idx[i] = i
	}
	rows, err := exprun.Map(ctx, idx, func(ctx context.Context, i int, _ int) (Row, error) {
		return runTrial(ctx, cfg, seeds(2*i), seeds(2*i+1))
	}, exprun.Options{Workers: cfg.Workers, Progress: cfg.Progress})
	if err != nil {
		return Scorecard{}, err
	}
	sc := Scorecard{Mode: cfg.Mode, Trials: cfg.Trials, Seed: cfg.Seed, Rows: rows}
	for _, r := range rows {
		if !r.Pass {
			sc.Failed++
		}
		if len(r.Classified) > 0 {
			sc.Flagged++
		}
		for _, c := range r.Classified {
			if strings.Contains(c, "acked records lost") {
				sc.AckedLost++
				break
			}
		}
		if r.OffsetRegressions > 0 {
			sc.OffsetRegressed++
		}
		if cfg.Mode == ModeCoop {
			sc.CoopRedelivered += r.Redelivered
			sc.EagerRedelivered += r.EagerRedelivered
			sc.CoopPausedNs += r.PausedNs
			sc.EagerPausedNs += r.EagerPausedNs
		}
	}
	return sc, nil
}

// RunTrial runs a single campaign trial from its recorded seeds — the
// reproduction path for a scorecard row. The returned row is
// byte-identical to the campaign's row for the same (config, seeds).
func RunTrial(cfg Config, planSeed, workloadSeed uint64) (Row, error) {
	return runTrial(context.Background(), cfg, planSeed, workloadSeed)
}

// runTrial is RunTrial with a task context, so campaign workers reuse
// their simulator across trials (see testbed.RunCtx).
func runTrial(ctx context.Context, cfg Config, planSeed, workloadSeed uint64) (Row, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Row{}, err
	}
	if cfg.Mode == ModeTxn {
		return runTxnTrial(ctx, cfg, planSeed, workloadSeed)
	}
	if cfg.Mode == ModeCoop {
		return runCoopTrial(ctx, cfg, planSeed, workloadSeed)
	}
	sem := producer.ExactlyOnce
	semCode := features.SemanticsExactlyOnce
	rf := 3
	if cfg.Mode == ModeAtLeastOnce {
		sem = producer.AtLeastOnce
		semCode = features.SemanticsAtLeastOnce
		rf = 1
	}
	gen := chaos.GenConfig{
		Brokers:   3,
		Semantics: sem,
		Horizon:   cfg.Horizon,
		MaxFaults: cfg.MaxFaults,
		Unclean:   true,
	}
	if cfg.E2E {
		gen.ConsumerMembers = cfg.ConsumerMembers
	}
	plan := chaos.GeneratePlan(planSeed, gen)
	e := testbed.Experiment{
		Features: features.Vector{
			MessageSize:    100,
			DelayMs:        2,
			Semantics:      semCode,
			BatchSize:      2,
			PollInterval:   5 * time.Millisecond,
			MessageTimeout: 2 * time.Second,
		},
		Messages:            cfg.Messages,
		Seed:                workloadSeed,
		Partitions:          2,
		MaxSimTime:          cfg.Horizon + 10*time.Second,
		FaultPlan:           plan,
		ReplicationFactor:   rf,
		BrokerFlushInterval: cfg.FlushInterval,
		CaptureEvidence:     true,
		Timeline:            obs.NewTimeline(100 * time.Millisecond),
		MaxInFlight:         cfg.MaxInFlight,
		MaxRetries:          8,
		RequestTimeout:      250 * time.Millisecond,
		RetryBackoff:        20 * time.Millisecond,
		RetryBackoffMax:     200 * time.Millisecond,
		QueueLimit:          64,
	}
	if cfg.E2E {
		e.Consumers = cfg.ConsumerMembers
		e.OffsetsReplication = rf
	}
	res, err := testbed.RunCtx(ctx, e)
	if err != nil {
		return Row{}, fmt.Errorf("campaign: trial (plan %d, workload %d): %w", planSeed, workloadSeed, err)
	}
	verdict := chaos.Verify(chaos.TrialInput{
		Semantics:   sem,
		MaxInFlight: cfg.MaxInFlight,
		Replication: rf,
		Plan:        plan,
		Completed:   res.Completed,
		Acquired:    res.Acquired,
		Counts:      res.Producer,
		Outcomes:    res.Outcomes,
		Consumed:    res.ConsumedKeys,
		Report:      res.Report,
		Brokers:     res.BrokerStats,
		Timeline:    res.Timeline,
		PktsLost:    res.Metrics.PacketsLostRandom + res.Metrics.PacketsLostOverflow,
		Retransmits: res.Metrics.Retransmits,
	})
	if cfg.E2E {
		acked := make(map[uint64]bool, len(res.Outcomes))
		for _, o := range res.Outcomes {
			if o.State == producer.StateDelivered || o.State == producer.StateDuplicated {
				acked[o.Key] = true
			}
		}
		verdict.Merge(chaos.VerifyE2E(chaos.E2EInput{
			Semantics:          sem,
			OffsetsReplication: rf,
			Plan:               plan,
			Evidence:           *res.GroupEvidence,
			ConsumedKeys:       res.GroupConsumedKeys,
			FinalCommitted:     res.GroupCommitted,
			Regressions:        res.OffsetRegressions,
			AckedKeys:          acked,
		}))
	}
	row := Row{
		Mode:         cfg.Mode,
		PlanSeed:     planSeed,
		WorkloadSeed: workloadSeed,
		Completed:    res.Completed,
		Acquired:     res.Acquired,
		Delivered:    res.Producer.Delivered,
		Lost:         res.Producer.Lost,
		Duplicated:   res.Report.NDuplicated,
		Pl:           res.Pl,
		Pd:           res.Pd,
		Classified:   verdict.Classified,
		Violations:   verdict.Violations,
		Pass:         verdict.OK(),
	}
	for _, f := range plan.Faults {
		row.Faults = append(row.Faults, f.String())
	}
	for _, st := range res.BrokerStats {
		row.Truncated += st.RecordsTruncated
		row.Unclean += st.UncleanCrashes
	}
	if cfg.E2E {
		for _, keys := range res.GroupConsumedKeys {
			row.Consumed += int64(len(keys))
		}
		row.Redelivered = res.GroupEvidence.Redelivered
		row.Rebalances = res.GroupEvidence.Rebalances
		row.Expirations = res.Coordinator.SessionExpirations
		row.OffsetRegressions = len(res.OffsetRegressions)
		row.Drained = res.GroupEvidence.Drained
	}
	return row, nil
}

// runCoopTrial is one ModeCoop trial: the same generated churn plan and
// workload run twice — cooperative, then eager — over a Groups-wide
// consumer fan-out on a replication-factor-3 cluster with offsets at 3.
// The cooperative run carries the verdict (chaos.VerifyCoop and
// chaos.VerifyE2E per group); the eager run is the measured control.
func runCoopTrial(ctx context.Context, cfg Config, planSeed, workloadSeed uint64) (Row, error) {
	plan := chaos.GenerateCoopPlan(planSeed, chaos.CoopGenConfig{
		Brokers:         3,
		Groups:          cfg.Groups,
		MembersPerGroup: cfg.ConsumerMembers,
		Horizon:         cfg.Horizon,
		MaxFaults:       cfg.MaxFaults,
	})
	run := func(coop bool) (testbed.Result, error) {
		e := testbed.Experiment{
			Features: features.Vector{
				MessageSize:    100,
				DelayMs:        2,
				Semantics:      features.SemanticsAtLeastOnce,
				BatchSize:      2,
				PollInterval:   5 * time.Millisecond,
				MessageTimeout: 2 * time.Second,
			},
			Messages:            cfg.Messages,
			Seed:                workloadSeed,
			Partitions:          12,
			MaxSimTime:          cfg.Horizon + 10*time.Second,
			FaultPlan:           plan,
			ReplicationFactor:   3,
			OffsetsReplication:  3,
			MinISR:              2,
			BrokerFlushInterval: cfg.FlushInterval,
			CaptureEvidence:     true,
			Consumers:           cfg.ConsumerMembers,
			Groups:              cfg.Groups,
			Cooperative:         coop,
			MaxInFlight:         cfg.MaxInFlight,
			MaxRetries:          8,
			RequestTimeout:      250 * time.Millisecond,
			RetryBackoff:        20 * time.Millisecond,
			RetryBackoffMax:     200 * time.Millisecond,
			QueueLimit:          64,
		}
		return testbed.RunCtx(ctx, e)
	}
	coopRes, err := run(true)
	if err != nil {
		return Row{}, fmt.Errorf("campaign: coop trial (plan %d, workload %d): %w", planSeed, workloadSeed, err)
	}
	eagerRes, err := run(false)
	if err != nil {
		return Row{}, fmt.Errorf("campaign: coop trial eager control (plan %d, workload %d): %w", planSeed, workloadSeed, err)
	}

	var verdict chaos.Verdict
	for _, gr := range coopRes.GroupRuns {
		verdict.Merge(chaos.VerifyE2E(chaos.E2EInput{
			Semantics:          producer.AtLeastOnce,
			OffsetsReplication: 3,
			Plan:               plan,
			Evidence:           gr.Evidence,
			ConsumedKeys:       gr.ConsumedKeys,
			FinalCommitted:     gr.Committed,
			Regressions:        coopRes.OffsetRegressions,
		}))
		verdict.Merge(chaos.VerifyCoop(chaos.CoopInput{
			OffsetsReplication: 3,
			Plan:               plan,
			Evidence:           gr.Evidence,
			Regressions:        coopRes.OffsetRegressions,
		}))
	}
	// The eager control still has to deliver end-to-end — a control that
	// breaks delivery invariants is not a usable baseline.
	for _, gr := range eagerRes.GroupRuns {
		v := chaos.VerifyE2E(chaos.E2EInput{
			Semantics:          producer.AtLeastOnce,
			OffsetsReplication: 3,
			Plan:               plan,
			Evidence:           gr.Evidence,
			ConsumedKeys:       gr.ConsumedKeys,
			FinalCommitted:     gr.Committed,
			Regressions:        eagerRes.OffsetRegressions,
		})
		for _, s := range v.Violations {
			verdict.Violations = append(verdict.Violations, "eager control: "+s)
		}
		for _, s := range v.Classified {
			verdict.Classified = append(verdict.Classified, "eager control: "+s)
		}
	}

	row := Row{
		Mode:         cfg.Mode,
		PlanSeed:     planSeed,
		WorkloadSeed: workloadSeed,
		Completed:    coopRes.Completed,
		Acquired:     coopRes.Acquired,
		Delivered:    coopRes.Producer.Delivered,
		Lost:         coopRes.Producer.Lost,
		Duplicated:   coopRes.Report.NDuplicated,
		Pl:           coopRes.Pl,
		Pd:           coopRes.Pd,
		Groups:       cfg.Groups,
		Drained:      true,
		Classified:   verdict.Classified,
		Violations:   verdict.Violations,
		Pass:         verdict.OK(),
	}
	for _, f := range plan.Faults {
		row.Faults = append(row.Faults, f.String())
	}
	for _, st := range coopRes.BrokerStats {
		row.Truncated += st.RecordsTruncated
		row.Unclean += st.UncleanCrashes
	}
	row.OffsetRegressions = len(coopRes.OffsetRegressions)
	for _, gr := range coopRes.GroupRuns {
		for _, keys := range gr.ConsumedKeys {
			row.Consumed += int64(len(keys))
		}
		row.Redelivered += gr.Evidence.Redelivered
		row.Rebalances += gr.Evidence.Rebalances
		row.Expirations += gr.Stats.SessionExpirations
		row.PausedNs += gr.Evidence.PausedNs
		row.CoopFollowUps += gr.Stats.CoopFollowUps
		row.GroupRebalances = append(row.GroupRebalances, gr.Evidence.Rebalances)
		row.GroupExpirations = append(row.GroupExpirations, gr.Stats.SessionExpirations)
		row.Drained = row.Drained && gr.Evidence.Drained
	}
	for _, gr := range eagerRes.GroupRuns {
		row.EagerRedelivered += gr.Evidence.Redelivered
		row.EagerPausedNs += gr.Evidence.PausedNs
		row.EagerRebalances += gr.Evidence.Rebalances
	}
	return row, nil
}

// runTxnTrial is one ModeTxn trial: a transactional pipeline under a
// generated plan of broker outages, slowdowns, processor crashes and
// zombie incarnations, checked by chaos.VerifyTxn.
func runTxnTrial(ctx context.Context, cfg Config, planSeed, workloadSeed uint64) (Row, error) {
	iso := wire.ReadCommitted
	if cfg.Isolation == "read_uncommitted" {
		iso = wire.ReadUncommitted
	}
	plan := chaos.GenerateTxnPlan(planSeed, chaos.TxnGenConfig{
		Brokers:    3,
		Processors: 2,
		Horizon:    cfg.Horizon,
		MaxFaults:  cfg.MaxFaults,
		Unclean:    true,
	})
	e := testbed.TxnExperiment{
		Seed:                workloadSeed,
		Messages:            cfg.Messages,
		Partitions:          2,
		BatchSize:           5,
		AbortEvery:          4,
		ReplicationFactor:   3,
		BrokerFlushInterval: cfg.FlushInterval,
		Isolation:           iso,
		TxnTimeout:          250 * time.Millisecond,
		MaxSimTime:          cfg.Horizon + 10*time.Second,
		FaultPlan:           plan,
	}
	res, err := testbed.RunTxnCtx(ctx, e)
	if err != nil {
		return Row{}, fmt.Errorf("campaign: txn trial (plan %d, workload %d): %w", planSeed, workloadSeed, err)
	}
	verdict := chaos.VerifyTxn(chaos.TxnInput{
		Isolation:         iso,
		Plan:              plan,
		Attempts:          res.Attempts,
		InputKeys:         res.InputKeys,
		CommittedOffsets:  res.CommittedOffsets,
		OutputCommitted:   res.OutputCommitted,
		OutputUncommitted: res.OutputUncommitted,
		Completed:         res.Completed,
	})
	row := Row{
		Mode:          cfg.Mode,
		PlanSeed:      planSeed,
		WorkloadSeed:  workloadSeed,
		Completed:     res.Completed,
		Acquired:      uint64(cfg.Messages),
		Isolation:     cfg.Isolation,
		TxnAttempts:   len(res.Attempts),
		TxnsCommitted: res.TxnStats.TxnsCommitted,
		TxnsAborted:   res.TxnStats.TxnsAborted,
		TimeoutAborts: res.TxnStats.TimeoutAborts,
		Incarnations:  res.Incarnations,
		Classified:    verdict.Classified,
		Violations:    verdict.Violations,
		Pass:          verdict.OK(),
	}
	if row.Isolation == "" {
		row.Isolation = "read_committed"
	}
	for _, a := range res.Attempts {
		if a.Outcome == chaos.TxnFenced {
			row.FencedAttempts++
		}
	}
	for p := range res.OutputCommitted {
		row.Delivered += uint64(len(res.OutputCommitted[p]))
		row.Consumed += int64(len(res.OutputCommitted[p]))
	}
	for _, f := range plan.Faults {
		row.Faults = append(row.Faults, f.String())
	}
	for _, st := range res.BrokerStats {
		row.Truncated += st.RecordsTruncated
		row.Unclean += st.UncleanCrashes
	}
	return row, nil
}
