package chaos

import (
	"strings"
	"testing"
	"time"

	"kafkarel/internal/consumer"
	"kafkarel/internal/coordinator"
)

func span(p int32, member string, gen int32, from, to time.Duration) consumer.OwnershipSpan {
	return consumer.OwnershipSpan{Partition: p, Member: member, Generation: gen, From: from, To: to}
}

func TestVerifyCoopCleanHandoffPasses(t *testing.T) {
	ms := time.Millisecond
	v := VerifyCoop(CoopInput{
		OffsetsReplication: 3,
		Evidence: consumer.Evidence{
			Group: "g",
			OwnershipSpans: []consumer.OwnershipSpan{
				// Half-open spans: revocation and the next owner's
				// acquisition at the same instant is a clean handoff.
				span(0, "a", 1, 0, 40*ms),
				span(0, "b", 2, 40*ms, 100*ms),
				span(1, "b", 1, 0, 100*ms),
			},
			Deliveries: []consumer.Delivery{
				{Partition: 0, Offset: 0, Member: "a"},
				{Partition: 0, Offset: 1, Member: "b"},
				{Partition: 1, Offset: 0, Member: "b"},
			},
			Redelivered:      1,
			RedeliveryBudget: 2,
		},
	})
	if !v.OK() {
		t.Fatalf("clean handoff flagged: %v", v.Violations)
	}
	if len(v.Classified) != 0 {
		t.Fatalf("clean handoff classified anomalies: %v", v.Classified)
	}
}

func TestVerifyCoopOverlappingOwnershipFails(t *testing.T) {
	ms := time.Millisecond
	v := VerifyCoop(CoopInput{
		Evidence: consumer.Evidence{
			Group: "g",
			OwnershipSpans: []consumer.OwnershipSpan{
				span(0, "a", 1, 0, 50*ms),
				span(0, "b", 2, 49*ms, 100*ms), // strict overlap with a's span
			},
		},
	})
	if v.OK() {
		t.Fatal("overlapping ownership passed")
	}
	if !strings.Contains(v.Violations[0], "overlapping sim-time") {
		t.Fatalf("unexpected violation: %q", v.Violations[0])
	}
}

func TestVerifyCoopInvertedSpanFails(t *testing.T) {
	ms := time.Millisecond
	v := VerifyCoop(CoopInput{
		Evidence: consumer.Evidence{
			Group:          "g",
			OwnershipSpans: []consumer.OwnershipSpan{span(3, "a", 1, 50*ms, 10*ms)},
		},
	})
	if v.OK() {
		t.Fatal("inverted ownership span passed")
	}
}

func TestVerifyCoopDeliveryGapFails(t *testing.T) {
	v := VerifyCoop(CoopInput{
		Evidence: consumer.Evidence{
			Group: "g",
			Deliveries: []consumer.Delivery{
				{Partition: 2, Offset: 0},
				{Partition: 2, Offset: 2}, // offset 1 skipped
			},
		},
	})
	if v.OK() {
		t.Fatal("delivery gap passed")
	}
	if !strings.Contains(v.Violations[0], "delivery gap") {
		t.Fatalf("unexpected violation: %q", v.Violations[0])
	}
	// A redelivery (offset below the frontier) is NOT a gap.
	v = VerifyCoop(CoopInput{
		Evidence: consumer.Evidence{
			Group: "g",
			Deliveries: []consumer.Delivery{
				{Partition: 2, Offset: 0},
				{Partition: 2, Offset: 1},
				{Partition: 2, Offset: 0}, // redelivered, bounded by invariant 3
				{Partition: 2, Offset: 2},
			},
			Redelivered: 2, RedeliveryBudget: 2,
		},
	})
	if !v.OK() {
		t.Fatalf("redelivery misread as a gap: %v", v.Violations)
	}
}

func TestVerifyCoopRedeliveryBudgetClassification(t *testing.T) {
	over := consumer.Evidence{Group: "g", Redelivered: 10, RedeliveryBudget: 3}

	// No lost watermarks, offsets log fully replicated: a hard failure.
	v := VerifyCoop(CoopInput{OffsetsReplication: 3, Evidence: over})
	if v.OK() {
		t.Fatal("unexplained redelivery storm passed")
	}
	if !strings.Contains(v.Violations[0], "redelivery storm") {
		t.Fatalf("unexpected violation: %q", v.Violations[0])
	}

	// Committed-offset regressions explain the breach: classified.
	v = VerifyCoop(CoopInput{
		OffsetsReplication: 3,
		Evidence:           over,
		Regressions:        []coordinator.OffsetRegression{{}},
	})
	if !v.OK() {
		t.Fatalf("regression-explained breach failed: %v", v.Violations)
	}
	if len(v.Classified) != 1 {
		t.Fatalf("regression-explained breach not classified: %v", v.Classified)
	}

	// Under-replicated offsets log under broker faults: classified.
	v = VerifyCoop(CoopInput{
		OffsetsReplication: 1,
		Evidence:           over,
		Plan: Plan{Faults: []Fault{{
			Kind: BrokerCrash, At: time.Millisecond, Duration: time.Millisecond, Broker: 0,
		}}},
	})
	if !v.OK() {
		t.Fatalf("under-replication-explained breach failed: %v", v.Violations)
	}
	if len(v.Classified) != 1 {
		t.Fatalf("under-replication breach not classified: %v", v.Classified)
	}
}
