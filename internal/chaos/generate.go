package chaos

import (
	"fmt"
	"math/rand/v2"
	"time"

	"kafkarel/internal/producer"
)

// GenConfig bounds the campaign generator's plan sampling.
type GenConfig struct {
	// Brokers is the cluster size faults may target.
	Brokers int
	// Semantics gates the safety rules: exactly-once plans keep broker
	// outages strictly sequential (at most one broker down at any time)
	// so acknowledged data always survives on a live replica — losses
	// there are invariant violations, not expected noise.
	Semantics producer.Semantics
	// Horizon is the window faults are placed in; every fault, recoveries
	// included, completes before it. Zero takes a 2 s default.
	Horizon time.Duration
	// MaxFaults caps the faults per plan (default 5, minimum 1).
	MaxFaults int
	// Unclean permits unclean restarts (needs a broker flush interval to
	// bite; without one they degenerate to clean crashes).
	Unclean bool
	// ConsumerMembers, when positive, adds consumer-member crashes
	// targeting join-order indices [0, ConsumerMembers) to the sampled
	// kinds — the rebalance-under-fire ingredient of end-to-end trials.
	ConsumerMembers int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 5
	}
	return c
}

// GeneratePlan samples a random fault plan from the seed. The same
// (seed, config) pair always yields the same plan — the reproducibility
// contract violating trials are replayed through.
//
// Faults of each resource class (broker outages, loss overlays, delay
// overlays, slowdowns) are laid out sequentially with gaps, so generated
// plans always pass Validate; crashes carry explicit recovery durations,
// leaving every broker up again before the horizon.
func GeneratePlan(seed uint64, cfg GenConfig) Plan {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))

	kinds := []Kind{BrokerCrash, Partition, LossBurst, DelaySpike, ConnReset, BrokerSlow}
	if cfg.Unclean {
		kinds = append(kinds, UncleanRestart)
	}
	if cfg.ConsumerMembers > 0 {
		kinds = append(kinds, ConsumerCrash)
	}

	// Independent time cursors per resource class keep windows of the
	// same class from overlapping; classes interleave freely.
	dur := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int64N(int64(hi-lo)+1))
	}
	cursors := map[string]time.Duration{}
	place := func(class string, want time.Duration) (time.Duration, bool) {
		// Random gap after the class's previous window, bounded so the
		// window still fits before the horizon.
		start := cursors[class] + dur(10*time.Millisecond, 150*time.Millisecond)
		if start+want >= cfg.Horizon {
			return 0, false
		}
		cursors[class] = start + want
		return start, true
	}

	n := 1 + rng.IntN(cfg.MaxFaults)
	var plan Plan
	for i := 0; i < n; i++ {
		k := kinds[rng.IntN(len(kinds))]
		var f Fault
		switch k {
		case BrokerCrash, UncleanRestart:
			d := dur(100*time.Millisecond, 500*time.Millisecond)
			at, ok := place("broker", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Broker: int32(rng.IntN(cfg.Brokers))}
		case Partition:
			d := dur(50*time.Millisecond, 300*time.Millisecond)
			at, ok := place("loss", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Direction: Direction(rng.IntN(3))}
		case LossBurst:
			d := dur(50*time.Millisecond, 400*time.Millisecond)
			at, ok := place("loss", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Direction: Direction(rng.IntN(3)),
				LossRate: 0.05 + 0.45*rng.Float64()}
		case DelaySpike:
			d := dur(50*time.Millisecond, 400*time.Millisecond)
			at, ok := place("delay", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Direction: Direction(rng.IntN(3)),
				DelayMs: 20 + 180*rng.Float64()}
		case ConnReset:
			at, ok := place("conn", 0)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at}
		case BrokerSlow:
			d := dur(50*time.Millisecond, 400*time.Millisecond)
			at, ok := place("slow", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Broker: int32(rng.IntN(cfg.Brokers)),
				Slowdown: 2 + 8*rng.Float64()}
		case ConsumerCrash:
			d := dur(100*time.Millisecond, 400*time.Millisecond)
			at, ok := place("consumer", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Member: int32(rng.IntN(cfg.ConsumerMembers))}
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}

// CoopGenConfig bounds the cooperative-rebalance churn generator. Plans
// are membership-churn heavy — consumer crashes with restart windows
// across every group, each group churning independently — mixed with
// broker outages and slowdowns so rebalances race replication stalls and
// commit-round failures, the scenario where the eager protocol's
// redelivery storms live.
type CoopGenConfig struct {
	// Brokers is the cluster size faults may target (default 3).
	Brokers int
	// Groups is the consumer-group fan-out faults spread over (default 1).
	Groups int
	// MembersPerGroup is each group's member count (default 3; crashes
	// target join-order indices [0, MembersPerGroup)).
	MembersPerGroup int
	// Horizon is the window faults complete within (default 2 s).
	Horizon time.Duration
	// MaxFaults caps the faults per plan (default 6, minimum 1).
	MaxFaults int
	// Unclean permits unclean broker restarts.
	Unclean bool
}

func (c CoopGenConfig) withDefaults() CoopGenConfig {
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.MembersPerGroup <= 0 {
		c.MembersPerGroup = 3
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 6
	}
	return c
}

// GenerateCoopPlan samples a churn-campaign fault plan: pure in
// (seed, config), always valid (each group's crash windows lie on its
// own sequential cursor, so a down member is never crashed again; every
// member and broker recovers before the horizon). Consumer crashes are
// drawn twice as often as any broker kind — the point of the campaign
// is rebalance pressure, the broker faults are there to make commit
// rounds fail underneath it. Half the broker outages take down a second
// broker inside the first one's window: with min.insync.replicas = 2 on
// a three-broker cluster that leaves the offsets log readable but
// unwritable, the window where an eager rebalance must discard
// positions it cannot flush — the redelivery-storm ingredient.
func GenerateCoopPlan(seed uint64, cfg CoopGenConfig) Plan {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(seed, 0x5851F42D4C957F2D))

	kinds := []Kind{ConsumerCrash, ConsumerCrash, BrokerCrash, BrokerSlow}
	if cfg.Unclean {
		kinds = append(kinds, UncleanRestart)
	}

	dur := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int64N(int64(hi-lo)+1))
	}
	cursors := map[string]time.Duration{}
	place := func(class string, want time.Duration) (time.Duration, bool) {
		start := cursors[class] + dur(10*time.Millisecond, 150*time.Millisecond)
		if start+want >= cfg.Horizon {
			return 0, false
		}
		cursors[class] = start + want
		return start, true
	}

	var plan Plan

	// storm schedules one redelivery-storm cycle anchored at a broker
	// outage window [at, at+d): a second broker dies inside it — with
	// min.insync.replicas = 2 on three brokers the offsets log stays
	// readable but unwritable for the middle half of the window — and a
	// consumer sharing the first broker's host dies with it, restarting
	// halfway through, so its rejoin rebalance always lands while commit
	// rounds are failing. The correlated crash rides its group's own
	// crash cursor only when the slot is free, keeping churn sequencing
	// valid; the nested outage targets a different broker, so per-broker
	// crash sequencing validates too.
	storm := func(at, d time.Duration, b int32) {
		if cfg.Brokers < 2 {
			return
		}
		b2 := (b + 1 + int32(rng.IntN(cfg.Brokers-1))) % int32(cfg.Brokers)
		plan.Faults = append(plan.Faults, Fault{
			Kind: BrokerCrash, At: at + d/4, Duration: d / 2, Broker: b2,
		})
		cg := rng.IntN(cfg.Groups)
		cm := rng.IntN(cfg.MembersPerGroup)
		class := fmt.Sprintf("consumer-g%d", cg)
		if cursors[class] <= at {
			cursors[class] = at + d/2
			plan.Faults = append(plan.Faults, Fault{
				Kind: ConsumerCrash, At: at, Duration: d / 2,
				Group: int32(cg), Member: int32(cm),
			})
		}
	}

	// Every plan opens with one full storm cycle: the campaign exists to
	// measure rebalance behaviour while commits fail underneath, so that
	// scenario is a fixture, not a coin flip. The outer window is kept
	// wide enough (>= 350 ms) that the restarted member's whole rejoin —
	// heartbeat detection included — lands inside the unwritable half.
	d0 := dur(350*time.Millisecond, 500*time.Millisecond)
	if at, ok := place("broker", d0); ok {
		b := int32(rng.IntN(cfg.Brokers))
		plan.Faults = append(plan.Faults, Fault{Kind: BrokerCrash, At: at, Duration: d0, Broker: b})
		storm(at, d0, b)
	}

	n := 1 + rng.IntN(cfg.MaxFaults)
	for i := 0; i < n; i++ {
		k := kinds[rng.IntN(len(kinds))]
		var f Fault
		switch k {
		case ConsumerCrash:
			g := rng.IntN(cfg.Groups)
			d := dur(100*time.Millisecond, 400*time.Millisecond)
			at, ok := place(fmt.Sprintf("consumer-g%d", g), d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d,
				Group: int32(g), Member: int32(rng.IntN(cfg.MembersPerGroup))}
		case BrokerCrash, UncleanRestart:
			d := dur(100*time.Millisecond, 500*time.Millisecond)
			at, ok := place("broker", d)
			if !ok {
				continue
			}
			b := int32(rng.IntN(cfg.Brokers))
			f = Fault{Kind: k, At: at, Duration: d, Broker: b}
			if rng.IntN(2) == 0 {
				storm(at, d, b)
			}
		case BrokerSlow:
			d := dur(50*time.Millisecond, 400*time.Millisecond)
			at, ok := place("slow", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Broker: int32(rng.IntN(cfg.Brokers)),
				Slowdown: 2 + 8*rng.Float64()}
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}

// TxnGenConfig bounds the transactional campaign generator. Plans mix
// broker outages (clean and unclean), broker slowdowns, processor
// crashes mid-transaction, and duplicate-incarnation zombie races —
// the fault surface of the exactly-once pipeline. Network kinds are
// excluded: the transactional testbed drives the cluster directly.
type TxnGenConfig struct {
	// Brokers is the cluster size faults may target (default 3).
	Brokers int
	// Processors is the transactional-processor fleet size (default 2).
	Processors int
	// Horizon is the window faults complete within (default 2 s).
	Horizon time.Duration
	// MaxFaults caps the faults per plan (default 5, minimum 1).
	MaxFaults int
	// Unclean permits unclean broker restarts.
	Unclean bool
}

func (c TxnGenConfig) withDefaults() TxnGenConfig {
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.Processors <= 0 {
		c.Processors = 2
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 5
	}
	return c
}

// GenerateTxnPlan samples a fault plan for a transactional trial. Like
// GeneratePlan it is pure in (seed, config), lays each resource class
// out sequentially so plans always validate, keeps broker outages
// strictly sequential (acknowledged transactional data must survive on
// a live replica), and recovers every broker and processor before the
// horizon.
func GenerateTxnPlan(seed uint64, cfg TxnGenConfig) Plan {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(seed, 0x7F4A7C159E3779B9))

	kinds := []Kind{BrokerCrash, BrokerSlow, ProcessorCrash, ProcessorZombie}
	if cfg.Unclean {
		kinds = append(kinds, UncleanRestart)
	}

	dur := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int64N(int64(hi-lo)+1))
	}
	cursors := map[string]time.Duration{}
	place := func(class string, want time.Duration) (time.Duration, bool) {
		start := cursors[class] + dur(10*time.Millisecond, 150*time.Millisecond)
		if start+want >= cfg.Horizon {
			return 0, false
		}
		cursors[class] = start + want
		return start, true
	}

	n := 1 + rng.IntN(cfg.MaxFaults)
	var plan Plan
	for i := 0; i < n; i++ {
		k := kinds[rng.IntN(len(kinds))]
		var f Fault
		switch k {
		case BrokerCrash, UncleanRestart:
			d := dur(100*time.Millisecond, 500*time.Millisecond)
			at, ok := place("broker", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Broker: int32(rng.IntN(cfg.Brokers))}
		case BrokerSlow:
			d := dur(50*time.Millisecond, 400*time.Millisecond)
			at, ok := place("slow", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Broker: int32(rng.IntN(cfg.Brokers)),
				Slowdown: 2 + 8*rng.Float64()}
		case ProcessorCrash:
			d := dur(50*time.Millisecond, 300*time.Millisecond)
			at, ok := place("proc", d)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Duration: d, Member: int32(rng.IntN(cfg.Processors))}
		case ProcessorZombie:
			at, ok := place("proc", 0)
			if !ok {
				continue
			}
			f = Fault{Kind: k, At: at, Member: int32(rng.IntN(cfg.Processors))}
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}
