package chaos

import (
	"strings"
	"testing"
	"time"

	"kafkarel/internal/broker"
	"kafkarel/internal/consumer"
	"kafkarel/internal/producer"
)

// cleanTrial builds a passing trial: 3 records acquired, delivered, and
// appended in order with replication factor 3 and no faults.
func cleanTrial() TrialInput {
	return TrialInput{
		Semantics:   producer.AtLeastOnce,
		MaxInFlight: 1,
		Replication: 3,
		Completed:   true,
		Acquired:    3,
		Counts: producer.Counts{
			Total: 3, Delivered: 3,
			ByCase: [producer.Case5 + 1]uint64{producer.Case1: 3},
		},
		Outcomes: []producer.Outcome{
			{Key: 1, State: producer.StateDelivered, Case: producer.Case1},
			{Key: 2, State: producer.StateDelivered, Case: producer.Case1},
			{Key: 3, State: producer.StateDelivered, Case: producer.Case1},
		},
		Consumed: [][]uint64{{1, 2, 3}},
		Report:   consumer.Report{SourceCount: 3, Distinct: 3},
		Brokers:  make([]broker.Stats, 3),
	}
}

func TestVerifyCleanTrial(t *testing.T) {
	v := Verify(cleanTrial())
	if !v.OK() {
		t.Fatalf("clean trial flagged: %v", v.Violations)
	}
	if len(v.Classified) != 0 {
		t.Errorf("clean trial classified anomalies: %v", v.Classified)
	}
}

func TestVerifyConservation(t *testing.T) {
	in := cleanTrial()
	in.Counts.Total = 2
	in.Counts.Delivered = 2
	in.Outcomes = in.Outcomes[:2]
	if v := Verify(in); v.OK() {
		t.Error("completed run with an unresolved record passed")
	}

	in = cleanTrial()
	in.Counts.Delivered = 2 // leak: delivered + lost != total
	if v := Verify(in); v.OK() {
		t.Error("count leak passed")
	}
}

func TestVerifyAckedLossClassification(t *testing.T) {
	lossy := func(in TrialInput) TrialInput {
		// Key 3 was acked but is missing from the log.
		in.Consumed = [][]uint64{{1, 2}}
		in.Report = consumer.Report{SourceCount: 3, Distinct: 2, NLost: 1}
		return in
	}
	brokerFaults := Plan{Faults: []Fault{
		{Kind: UncleanRestart, At: time.Millisecond, Duration: time.Millisecond, Broker: 0},
	}}

	in := lossy(cleanTrial())
	if v := Verify(in); v.OK() {
		t.Error("acked loss with no broker fault passed")
	}

	in = lossy(cleanTrial())
	in.Plan = brokerFaults
	v := Verify(in)
	if !v.OK() {
		t.Errorf("acks=1 loss under a broker fault should classify, got violations: %v", v.Violations)
	}
	if len(v.Classified) == 0 || !strings.Contains(v.Classified[0], "acked records lost") {
		t.Errorf("expected a classified acked-loss entry, got %v", v.Classified)
	}

	in = lossy(cleanTrial())
	in.Plan = brokerFaults
	in.Semantics = producer.ExactlyOnce
	if v := Verify(in); v.OK() {
		t.Error("exactly-once acked loss passed despite broker faults")
	}
}

func TestVerifyLostButAppearedIsClassified(t *testing.T) {
	in := cleanTrial()
	in.Counts = producer.Counts{Total: 3, Delivered: 2, Lost: 1,
		ByCase: [producer.Case5 + 1]uint64{producer.Case1: 2, producer.Case3: 1}}
	in.Outcomes[2] = producer.Outcome{Key: 3, State: producer.StateLost, Case: producer.Case3}
	// Key 3 still landed (the timed-out attempt's copy).
	v := Verify(in)
	if !v.OK() {
		t.Fatalf("lost-but-appeared flagged as violation: %v", v.Violations)
	}
	if len(v.Classified) != 1 || !strings.Contains(v.Classified[0], "producer-lost") {
		t.Errorf("classified = %v, want one lost-but-appeared entry", v.Classified)
	}
}

func TestVerifyDuplicateInvariants(t *testing.T) {
	in := cleanTrial()
	in.Semantics = producer.ExactlyOnce
	in.Report.NDuplicated = 1
	in.Report.ExtraCopies = 1
	if v := Verify(in); v.OK() {
		t.Error("exactly-once consumer duplicate passed")
	}

	in = cleanTrial()
	in.Semantics = producer.ExactlyOnce
	in.Brokers[0].DuplicateAppends = 1
	if v := Verify(in); v.OK() {
		t.Error("exactly-once broker duplicate append passed")
	}

	in = cleanTrial()
	in.Semantics = producer.AtMostOnce
	in.Report.NDuplicated = 1
	if v := Verify(in); v.OK() {
		t.Error("at-most-once duplicate passed")
	}
}

func TestVerifyDuplicateAccounting(t *testing.T) {
	// One duplicated key, one extra copy, replication 3: the cluster-wide
	// duplicate-record count must be 3 (leader + both followers).
	in := cleanTrial()
	in.Consumed = [][]uint64{{1, 2, 3, 3}}
	in.Report = consumer.Report{SourceCount: 3, Distinct: 3, NDuplicated: 1, ExtraCopies: 1}
	for i := range in.Brokers {
		in.Brokers[i].DuplicateAppends = 1
		in.Brokers[i].DuplicateRecords = 1
	}
	v := Verify(in)
	if !v.OK() {
		t.Fatalf("consistent duplicate accounting flagged: %v", v.Violations)
	}

	in.Brokers[2].DuplicateRecords = 0 // follower missed the duplicate
	if v := Verify(in); v.OK() {
		t.Error("inconsistent broker duplicate accounting passed")
	}
}

func TestVerifyOrderingAtMaxInFlightOne(t *testing.T) {
	in := cleanTrial()
	in.Consumed = [][]uint64{{1, 3, 2}}
	if v := Verify(in); v.OK() {
		t.Error("out-of-order first appearances passed at max-in-flight 1")
	}

	// Replayed copies of an earlier key are fine; only first appearances
	// must be ordered.
	in = cleanTrial()
	in.Consumed = [][]uint64{{1, 2, 3, 2, 3}}
	in.Report = consumer.Report{SourceCount: 3, Distinct: 3, NDuplicated: 2, ExtraCopies: 2}
	for i := range in.Brokers {
		in.Brokers[i].DuplicateRecords = 2
	}
	if v := Verify(in); !v.OK() {
		t.Errorf("batch replay flagged as ordering violation: %v", v.Violations)
	}

	// At max-in-flight > 1 reordering is legal.
	in = cleanTrial()
	in.MaxInFlight = 5
	in.Consumed = [][]uint64{{1, 3, 2}}
	if v := Verify(in); !v.OK() {
		t.Errorf("reordering at max-in-flight 5 flagged: %v", v.Violations)
	}
}

func TestVerifyForeignKeys(t *testing.T) {
	in := cleanTrial()
	in.Report.Foreign = 2
	if v := Verify(in); v.OK() {
		t.Error("foreign keys passed")
	}
}
