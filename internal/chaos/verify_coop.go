package chaos

import (
	"sort"

	"kafkarel/internal/consumer"
	"kafkarel/internal/coordinator"
)

// CoopInput is one consumer group's evidence from a cooperative-churn
// trial. VerifyCoop checks the incremental-rebalance invariants on it;
// a multi-group trial verifies each group independently.
type CoopInput struct {
	// Group names the group in findings (defaults to Evidence.Group).
	Group string
	// OffsetsReplication is the offsets topic's replication factor — it
	// decides whether a broken redelivery bound is a violation or the
	// expected echo of a lost committed watermark.
	OffsetsReplication int
	// Plan is the trial's fault plan.
	Plan Plan
	// Evidence is the group's delivery record. Ownership spans and the
	// delivery log (invariants 1–2) need CaptureEvidence; the redelivery
	// bound (invariant 3) runs on counters alone.
	Evidence consumer.Evidence
	// Regressions are committed watermarks the offsets log lost across
	// unclean restarts; they legitimately break the redelivery bound.
	Regressions []coordinator.OffsetRegression
}

// VerifyCoop checks the cooperative-rebalance invariants of one group's
// trial evidence. The verdict merges with Verify's and VerifyE2E's via
// Merge. The invariants:
//
//  1. Single ownership: no partition is owned by two live members in
//     strictly overlapping sim-time. Spans are half-open — a revocation
//     and the next owner's acquisition at the same instant is a clean
//     handoff, not an overlap.
//  2. No delivery gap: per partition, first-time delivered offsets are
//     contiguous from 0 — a retained partition must keep delivering
//     across the generation bump, and a moved one must resume at or
//     below where it left off, never beyond it.
//  3. Bounded redelivery: Redelivered never exceeds RedeliveryBudget,
//     the sum of every ownership handoff's uncommitted window and every
//     truncation rewind. A group that redelivers more re-consumed data
//     no handoff explains. Lost committed watermarks (offsets topic
//     under-replicated, broker faults in the plan) widen the real
//     resume windows beyond what the group could observe, so the breach
//     is classified rather than failed when regressions are present.
func VerifyCoop(in CoopInput) Verdict {
	var v Verdict
	ev := in.Evidence
	name := in.Group
	if name == "" {
		name = ev.Group
	}

	// 1. Single ownership per partition, half-open span semantics.
	byPart := map[int32][]consumer.OwnershipSpan{}
	for _, s := range ev.OwnershipSpans {
		if s.To >= 0 && s.To < s.From {
			v.fail("coop %s: partition %d: inverted ownership span [%v,%v) by %s",
				name, s.Partition, s.From, s.To, s.Member)
			continue
		}
		byPart[s.Partition] = append(byPart[s.Partition], s)
	}
	parts := make([]int32, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, p := range parts {
		spans := byPart[p]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].From < spans[j].From })
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			if cur.From < prev.To {
				v.fail("coop %s: partition %d owned by %s (gen %d, [%v,%v)) and %s (gen %d, [%v,%v)) in overlapping sim-time",
					name, p, prev.Member, prev.Generation, prev.From, prev.To,
					cur.Member, cur.Generation, cur.From, cur.To)
			}
		}
	}

	// 2. Delivery contiguity: fresh deliveries advance 0,1,2,... per
	// partition; an offset beyond next is a gap the group skipped.
	next := map[int32]int64{}
	for _, d := range ev.Deliveries {
		n := next[d.Partition]
		switch {
		case d.Offset == n:
			next[d.Partition] = n + 1
		case d.Offset > n:
			v.fail("coop %s: partition %d: delivery gap — offset %d delivered before %d",
				name, d.Partition, d.Offset, n)
			next[d.Partition] = d.Offset + 1
		}
		// d.Offset < n is a redelivery; invariant 3 bounds those.
	}

	// 3. Bounded redelivery.
	if ev.Redelivered > ev.RedeliveryBudget {
		switch {
		case len(in.Regressions) > 0:
			v.note("coop %s: redelivered %d exceeds handoff budget %d (%d committed-offset regressions, offsets rf=%d — resume points moved beneath the group)",
				name, ev.Redelivered, ev.RedeliveryBudget, len(in.Regressions), in.OffsetsReplication)
		case in.OffsetsReplication < 3 && in.Plan.HasBrokerFaults():
			v.note("coop %s: redelivered %d exceeds handoff budget %d (offsets rf=%d under broker faults)",
				name, ev.Redelivered, ev.RedeliveryBudget, in.OffsetsReplication)
		default:
			v.fail("coop %s: redelivered %d exceeds the handoff budget %d — a redelivery storm no revocation explains",
				name, ev.Redelivered, ev.RedeliveryBudget)
		}
	}

	return v
}
