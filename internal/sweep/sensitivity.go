package sweep

import (
	"context"
	"fmt"
	"time"

	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// SensitivityResult records one parameter's ±50 % perturbation effect
// (Sec. III-D: "A change in the quantitative parameter's default value
// of 50% should have observable impact on reliability metrics, otherwise
// the parameter is neglected").
type SensitivityResult struct {
	Parameter string
	// BasePl/BasePd are the metrics at the unperturbed default.
	BasePl, BasePd float64
	// LowPl/LowPd and HighPl/HighPd are the metrics at -50 % and +50 %.
	LowPl, LowPd   float64
	HighPl, HighPd float64
	// Impact is the largest absolute metric change across perturbations.
	Impact float64
	// Selected reports whether Impact clears the threshold.
	Selected bool
}

// SensitivityOptions tunes the analysis.
type SensitivityOptions struct {
	Messages   int
	Seed       uint64
	MaxSimTime time.Duration
	// Threshold on Impact for feature selection (default 0.01).
	Threshold float64
	// Workers bounds the experiment worker pool (<= 0: GOMAXPROCS).
	Workers int
}

// perturbation describes how to scale one parameter of a base vector.
type perturbation struct {
	name  string
	apply func(features.Vector, float64) features.Vector
}

func perturbations() []perturbation {
	return []perturbation{
		{"message_size", func(v features.Vector, f float64) features.Vector {
			v.MessageSize = int(float64(v.MessageSize) * f)
			if v.MessageSize < 1 {
				v.MessageSize = 1
			}
			return v
		}},
		{"batch_size", func(v features.Vector, f float64) features.Vector {
			v.BatchSize = int(float64(v.BatchSize)*f + 0.5)
			if v.BatchSize < 1 {
				v.BatchSize = 1
			}
			return v
		}},
		{"poll_interval", func(v features.Vector, f float64) features.Vector {
			if v.PollInterval == 0 {
				// δ = 0 cannot be scaled; perturb around a small absolute
				// step instead.
				v.PollInterval = time.Duration(float64(20*time.Millisecond) * (f - 0.5) * 2)
				if v.PollInterval < 0 {
					v.PollInterval = 0
				}
				return v
			}
			v.PollInterval = time.Duration(float64(v.PollInterval) * f)
			return v
		}},
		{"message_timeout", func(v features.Vector, f float64) features.Vector {
			v.MessageTimeout = time.Duration(float64(v.MessageTimeout) * f)
			return v
		}},
		{"network_delay", func(v features.Vector, f float64) features.Vector {
			v.DelayMs *= f
			return v
		}},
		{"loss_rate", func(v features.Vector, f float64) features.Vector {
			v.LossRate *= f
			if v.LossRate > 1 {
				v.LossRate = 1
			}
			return v
		}},
	}
}

// Sensitivity perturbs each quantitative parameter of base by ±50 % and
// measures the reliability impact, reproducing the paper's feature
// selection procedure.
func Sensitivity(base features.Vector, opts SensitivityOptions) ([]SensitivityResult, error) {
	return SensitivityContext(context.Background(), base, opts)
}

// SensitivityContext is Sensitivity with cancellation. The base run and
// every ±50 % perturbed run are independent experiments, so all of them
// execute on one exprun pool.
func SensitivityContext(ctx context.Context, base features.Vector, opts SensitivityOptions) ([]SensitivityResult, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if opts.Messages <= 0 {
		return nil, fmt.Errorf("sweep: message count %d <= 0", opts.Messages)
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = 0.01
	}
	perts := perturbations()
	// Task 0 is the unperturbed base; tasks 1+2k and 2+2k are parameter
	// k's -50 % and +50 % runs. Every run uses the same seed: the
	// comparison must isolate the parameter effect from the fault
	// realisation, especially near the TCP-collapse boundary where runs
	// are bistable.
	type task struct {
		v    features.Vector
		name string // error label: "base", "<param> low", "<param> high"
	}
	tasks := []task{{v: base, name: "base run"}}
	for _, p := range perts {
		tasks = append(tasks,
			task{v: p.apply(base, 0.5), name: p.name + " low"},
			task{v: p.apply(base, 1.5), name: p.name + " high"})
	}
	type metrics struct{ pl, pd float64 }
	runs, err := exprun.Map(ctx, tasks,
		func(ctx context.Context, _ int, t task) (metrics, error) {
			res, err := testbed.RunCtx(ctx, testbed.Experiment{
				Features:   t.v,
				Messages:   opts.Messages,
				Seed:       opts.Seed,
				MaxSimTime: opts.MaxSimTime,
			})
			if err != nil {
				return metrics{}, fmt.Errorf("sweep: %s: %w", t.name, err)
			}
			return metrics{res.Pl, res.Pd}, nil
		},
		exprun.Options{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	basePl, basePd := runs[0].pl, runs[0].pd
	var out []SensitivityResult
	for k, p := range perts {
		low, high := runs[1+2*k], runs[2+2*k]
		r := SensitivityResult{
			Parameter: p.name,
			BasePl:    basePl, BasePd: basePd,
			LowPl: low.pl, LowPd: low.pd,
			HighPl: high.pl, HighPd: high.pd,
		}
		for _, d := range []float64{
			abs(r.LowPl - basePl), abs(r.HighPl - basePl),
			abs(r.LowPd - basePd), abs(r.HighPd - basePd),
		} {
			if d > r.Impact {
				r.Impact = d
			}
		}
		r.Selected = r.Impact >= threshold
		out = append(out, r)
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
