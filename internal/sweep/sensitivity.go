package sweep

import (
	"fmt"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// SensitivityResult records one parameter's ±50 % perturbation effect
// (Sec. III-D: "A change in the quantitative parameter's default value
// of 50% should have observable impact on reliability metrics, otherwise
// the parameter is neglected").
type SensitivityResult struct {
	Parameter string
	// BasePl/BasePd are the metrics at the unperturbed default.
	BasePl, BasePd float64
	// LowPl/LowPd and HighPl/HighPd are the metrics at -50 % and +50 %.
	LowPl, LowPd   float64
	HighPl, HighPd float64
	// Impact is the largest absolute metric change across perturbations.
	Impact float64
	// Selected reports whether Impact clears the threshold.
	Selected bool
}

// SensitivityOptions tunes the analysis.
type SensitivityOptions struct {
	Messages   int
	Seed       uint64
	MaxSimTime time.Duration
	// Threshold on Impact for feature selection (default 0.01).
	Threshold float64
}

// perturbation describes how to scale one parameter of a base vector.
type perturbation struct {
	name  string
	apply func(features.Vector, float64) features.Vector
}

func perturbations() []perturbation {
	return []perturbation{
		{"message_size", func(v features.Vector, f float64) features.Vector {
			v.MessageSize = int(float64(v.MessageSize) * f)
			if v.MessageSize < 1 {
				v.MessageSize = 1
			}
			return v
		}},
		{"batch_size", func(v features.Vector, f float64) features.Vector {
			v.BatchSize = int(float64(v.BatchSize)*f + 0.5)
			if v.BatchSize < 1 {
				v.BatchSize = 1
			}
			return v
		}},
		{"poll_interval", func(v features.Vector, f float64) features.Vector {
			if v.PollInterval == 0 {
				// δ = 0 cannot be scaled; perturb around a small absolute
				// step instead.
				v.PollInterval = time.Duration(float64(20*time.Millisecond) * (f - 0.5) * 2)
				if v.PollInterval < 0 {
					v.PollInterval = 0
				}
				return v
			}
			v.PollInterval = time.Duration(float64(v.PollInterval) * f)
			return v
		}},
		{"message_timeout", func(v features.Vector, f float64) features.Vector {
			v.MessageTimeout = time.Duration(float64(v.MessageTimeout) * f)
			return v
		}},
		{"network_delay", func(v features.Vector, f float64) features.Vector {
			v.DelayMs *= f
			return v
		}},
		{"loss_rate", func(v features.Vector, f float64) features.Vector {
			v.LossRate *= f
			if v.LossRate > 1 {
				v.LossRate = 1
			}
			return v
		}},
	}
}

// Sensitivity perturbs each quantitative parameter of base by ±50 % and
// measures the reliability impact, reproducing the paper's feature
// selection procedure.
func Sensitivity(base features.Vector, opts SensitivityOptions) ([]SensitivityResult, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if opts.Messages <= 0 {
		return nil, fmt.Errorf("sweep: message count %d <= 0", opts.Messages)
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = 0.01
	}
	run := func(v features.Vector, seed uint64) (float64, float64, error) {
		res, err := testbed.Run(testbed.Experiment{
			Features:   v,
			Messages:   opts.Messages,
			Seed:       seed,
			MaxSimTime: opts.MaxSimTime,
		})
		if err != nil {
			return 0, 0, err
		}
		return res.Pl, res.Pd, nil
	}
	basePl, basePd, err := run(base, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("sweep: base run: %w", err)
	}
	var out []SensitivityResult
	for _, p := range perturbations() {
		low := p.apply(base, 0.5)
		high := p.apply(base, 1.5)
		r := SensitivityResult{Parameter: p.name, BasePl: basePl, BasePd: basePd}
		// One seed for the base and every perturbed run: the comparison
		// must isolate the parameter effect from the fault realisation,
		// especially near the TCP-collapse boundary where runs are
		// bistable.
		seed := opts.Seed
		if r.LowPl, r.LowPd, err = run(low, seed); err != nil {
			return nil, fmt.Errorf("sweep: %s low: %w", p.name, err)
		}
		if r.HighPl, r.HighPd, err = run(high, seed); err != nil {
			return nil, fmt.Errorf("sweep: %s high: %w", p.name, err)
		}
		for _, d := range []float64{
			abs(r.LowPl - basePl), abs(r.HighPl - basePl),
			abs(r.LowPd - basePd), abs(r.HighPd - basePd),
		} {
			if d > r.Impact {
				r.Impact = d
			}
		}
		r.Selected = r.Impact >= threshold
		out = append(out, r)
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
