// Package sweep implements the paper's training-data collection design
// (Fig. 3): the feature space is split into normal cases (no injected
// network fault: D < 200 ms, L = 0) and abnormal cases (faults injected),
// and only the features found effective in each regime are swept — which
// is what keeps the experiment count tractable. It also implements the
// ±50 % sensitivity analysis of Sec. III-D used to select those features.
//
// Grid points are independent, seed-deterministic experiments, so they
// are executed on the exprun worker pool; per-point seeds are derived
// from the grid index alone, which keeps the collected dataset
// byte-identical across worker counts.
package sweep

import (
	"context"
	"fmt"
	"time"

	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// NormalGrid enumerates the normal-case feature space of Fig. 3's left
// oval: no faults injected; the effective features are the message
// timeout T_o, the polling interval δ, the delivery semantics and the
// message size.
func NormalGrid() []features.Vector {
	var grid []features.Vector
	for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
		for _, m := range []int{100, 200, 400} {
			for _, to := range []time.Duration{
				250 * time.Millisecond, 500 * time.Millisecond, 1000 * time.Millisecond,
				1500 * time.Millisecond, 2500 * time.Millisecond,
			} {
				for _, delta := range []time.Duration{
					0, 10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond,
				} {
					grid = append(grid, features.Vector{
						MessageSize:    m,
						Timeliness:     5 * time.Second,
						DelayMs:        10,
						LossRate:       0,
						Semantics:      sem,
						BatchSize:      1,
						PollInterval:   delta,
						MessageTimeout: to,
					})
				}
			}
		}
	}
	return grid
}

// AbnormalGrid enumerates the abnormal-case feature space of Fig. 3's
// right oval: network faults are injected and the effective features are
// the message size, the network condition (D, L), the batch size and the
// semantics; T_o and δ are pinned to values chosen from the normal-case
// study.
func AbnormalGrid() []features.Vector {
	var grid []features.Vector
	for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
		for _, m := range []int{100, 200, 500} {
			for _, d := range []float64{50, 100, 200} {
				for _, l := range []float64{0.05, 0.10, 0.15, 0.20, 0.30} {
					for _, b := range []int{1, 2, 5, 10} {
						grid = append(grid, features.Vector{
							MessageSize:    m,
							Timeliness:     5 * time.Second,
							DelayMs:        d,
							LossRate:       l,
							Semantics:      sem,
							BatchSize:      b,
							PollInterval:   0,
							MessageTimeout: 1500 * time.Millisecond,
						})
					}
				}
			}
		}
	}
	return grid
}

// seedStride separates per-grid-point seed streams (the historical
// derivation, kept so collected datasets stay byte-identical).
const seedStride = 7919

// Options tunes a collection run.
type Options struct {
	// Messages per experiment (the paper uses 10^6; probabilities
	// converge far earlier — see EXPERIMENTS.md).
	Messages int
	// Seed derives each experiment's seed deterministically from the grid
	// index, independent of execution order.
	Seed uint64
	// MaxSimTime bounds each experiment's virtual duration (0 = none).
	MaxSimTime time.Duration
	// Workers bounds the experiment worker pool (<= 0: GOMAXPROCS).
	// Results are identical for every worker count.
	Workers int
	// Progress, when non-nil, is invoked after each experiment.
	Progress func(done, total int)
}

// Collect runs one testbed experiment per grid point and returns the
// labelled dataset.
func Collect(grid []features.Vector, opts Options) (features.Dataset, error) {
	return CollectContext(context.Background(), grid, opts)
}

// CollectContext is Collect with cancellation.
func CollectContext(ctx context.Context, grid []features.Vector, opts Options) (features.Dataset, error) {
	ds := make(features.Dataset, 0, len(grid))
	err := CollectStream(ctx, grid, opts, func(s features.Sample) error {
		ds = append(ds, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// CollectStream runs the sweep and yields each labelled sample in grid
// order as soon as its prefix of the grid has completed, so callers can
// persist long sweeps incrementally instead of buffering the dataset.
func CollectStream(ctx context.Context, grid []features.Vector, opts Options, yield func(features.Sample) error) error {
	if len(grid) == 0 {
		return fmt.Errorf("sweep: empty grid")
	}
	if opts.Messages <= 0 {
		return fmt.Errorf("sweep: message count %d <= 0", opts.Messages)
	}
	seedAt := exprun.LinearSeeds(opts.Seed, seedStride)
	return exprun.MapOrdered(ctx, grid,
		func(ctx context.Context, i int, v features.Vector) (features.Sample, error) {
			res, err := testbed.RunCtx(ctx, testbed.Experiment{
				Features:   v,
				Messages:   opts.Messages,
				Seed:       seedAt(i),
				MaxSimTime: opts.MaxSimTime,
			})
			if err != nil {
				return features.Sample{}, fmt.Errorf("sweep: grid point %d (%+v): %w", i, v, err)
			}
			return features.Sample{X: v, Pl: res.Pl, Pd: res.Pd}, nil
		},
		func(_ int, s features.Sample) error { return yield(s) },
		exprun.Options{Workers: opts.Workers, Progress: opts.Progress})
}
