// Package sweep implements the paper's training-data collection design
// (Fig. 3): the feature space is split into normal cases (no injected
// network fault: D < 200 ms, L = 0) and abnormal cases (faults injected),
// and only the features found effective in each regime are swept — which
// is what keeps the experiment count tractable. It also implements the
// ±50 % sensitivity analysis of Sec. III-D used to select those features.
package sweep

import (
	"fmt"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// NormalGrid enumerates the normal-case feature space of Fig. 3's left
// oval: no faults injected; the effective features are the message
// timeout T_o, the polling interval δ, the delivery semantics and the
// message size.
func NormalGrid() []features.Vector {
	var grid []features.Vector
	for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
		for _, m := range []int{100, 200, 400} {
			for _, to := range []time.Duration{
				250 * time.Millisecond, 500 * time.Millisecond, 1000 * time.Millisecond,
				1500 * time.Millisecond, 2500 * time.Millisecond,
			} {
				for _, delta := range []time.Duration{
					0, 10 * time.Millisecond, 30 * time.Millisecond, 90 * time.Millisecond,
				} {
					grid = append(grid, features.Vector{
						MessageSize:    m,
						Timeliness:     5 * time.Second,
						DelayMs:        10,
						LossRate:       0,
						Semantics:      sem,
						BatchSize:      1,
						PollInterval:   delta,
						MessageTimeout: to,
					})
				}
			}
		}
	}
	return grid
}

// AbnormalGrid enumerates the abnormal-case feature space of Fig. 3's
// right oval: network faults are injected and the effective features are
// the message size, the network condition (D, L), the batch size and the
// semantics; T_o and δ are pinned to values chosen from the normal-case
// study.
func AbnormalGrid() []features.Vector {
	var grid []features.Vector
	for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
		for _, m := range []int{100, 200, 500} {
			for _, d := range []float64{50, 100, 200} {
				for _, l := range []float64{0.05, 0.10, 0.15, 0.20, 0.30} {
					for _, b := range []int{1, 2, 5, 10} {
						grid = append(grid, features.Vector{
							MessageSize:    m,
							Timeliness:     5 * time.Second,
							DelayMs:        d,
							LossRate:       l,
							Semantics:      sem,
							BatchSize:      b,
							PollInterval:   0,
							MessageTimeout: 1500 * time.Millisecond,
						})
					}
				}
			}
		}
	}
	return grid
}

// Options tunes a collection run.
type Options struct {
	// Messages per experiment (the paper uses 10^6; probabilities
	// converge far earlier — see EXPERIMENTS.md).
	Messages int
	// Seed derives each experiment's seed deterministically.
	Seed uint64
	// MaxSimTime bounds each experiment's virtual duration (0 = none).
	MaxSimTime time.Duration
	// Progress, when non-nil, is invoked after each experiment.
	Progress func(done, total int)
}

// Collect runs one testbed experiment per grid point and returns the
// labelled dataset.
func Collect(grid []features.Vector, opts Options) (features.Dataset, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}
	if opts.Messages <= 0 {
		return nil, fmt.Errorf("sweep: message count %d <= 0", opts.Messages)
	}
	ds := make(features.Dataset, 0, len(grid))
	for i, v := range grid {
		res, err := testbed.Run(testbed.Experiment{
			Features:   v,
			Messages:   opts.Messages,
			Seed:       opts.Seed + uint64(i)*7919,
			MaxSimTime: opts.MaxSimTime,
		})
		if err != nil {
			return nil, fmt.Errorf("sweep: grid point %d (%+v): %w", i, v, err)
		}
		ds = append(ds, features.Sample{X: v, Pl: res.Pl, Pd: res.Pd})
		if opts.Progress != nil {
			opts.Progress(i+1, len(grid))
		}
	}
	return ds, nil
}
