package sweep

import (
	"context"
	"testing"

	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// The execution-layer contract for the Fig. 3 sweep: a collected
// dataset is identical for every worker count and identical to the
// pre-refactor sequential loop, which ran testbed.Run per grid point
// with seed opts.Seed + i*7919.

func TestCollectDeterministicAcrossWorkers(t *testing.T) {
	grid := append(NormalGrid()[:4], AbnormalGrid()[:4]...)
	opts := Options{Messages: 200, Seed: 21}

	// Pre-refactor sequential reference.
	var want features.Dataset
	for i, v := range grid {
		res, err := testbed.Run(testbed.Experiment{
			Features:   v,
			Messages:   opts.Messages,
			Seed:       opts.Seed + uint64(i)*7919,
			MaxSimTime: opts.MaxSimTime,
		})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, features.Sample{X: v, Pl: res.Pl, Pd: res.Pd})
	}

	for _, workers := range []int{1, 4, 8} {
		o := opts
		o.Workers = workers
		got, err := Collect(grid, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("workers=%d: sample %d = %+v, sequential reference %+v",
					workers, j, got[j], want[j])
			}
		}
	}
}

func TestCollectStreamMatchesCollect(t *testing.T) {
	grid := AbnormalGrid()[:6]
	opts := Options{Messages: 150, Seed: 5, Workers: 4}
	want, err := Collect(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got features.Dataset
	err = CollectStream(context.Background(), grid, opts, func(s features.Sample) error {
		got = append(got, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("streamed sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSensitivityDeterministicAcrossWorkers(t *testing.T) {
	base := features.Vector{
		MessageSize: 200, Timeliness: 5_000_000_000, DelayMs: 50, LossRate: 0.18,
		Semantics: features.SemanticsAtMostOnce, BatchSize: 2,
		MessageTimeout: 700_000_000,
	}
	var ref []SensitivityResult
	for _, workers := range []int{1, 4, 8} {
		got, err := Sensitivity(base, SensitivityOptions{Messages: 250, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d: result %d = %+v, want %+v", workers, i, got[i], ref[i])
			}
		}
	}
}
