package sweep

import (
	"testing"
	"time"

	"kafkarel/internal/features"
)

func TestGridsWellFormed(t *testing.T) {
	normal := NormalGrid()
	abnormal := AbnormalGrid()
	if len(normal) == 0 || len(abnormal) == 0 {
		t.Fatal("empty grids")
	}
	for i, v := range normal {
		if err := v.Validate(); err != nil {
			t.Fatalf("normal[%d]: %v", i, err)
		}
		if v.LossRate != 0 || v.DelayMs >= 200 {
			t.Fatalf("normal[%d] has injected faults: %+v", i, v)
		}
	}
	seenLoss := false
	for i, v := range abnormal {
		if err := v.Validate(); err != nil {
			t.Fatalf("abnormal[%d]: %v", i, err)
		}
		if v.LossRate > 0 {
			seenLoss = true
		}
	}
	if !seenLoss {
		t.Error("abnormal grid injects no loss")
	}
	// The split keeps the total experiment count tractable relative to
	// the full cross product (the point of Fig. 3).
	full := 2 * 3 * 5 * 4 * 3 * 5 * 4 // semantics×M×To×δ×D×L×B
	if len(normal)+len(abnormal) >= full/4 {
		t.Errorf("split saves too little: %d+%d vs full %d", len(normal), len(abnormal), full)
	}
}

func TestCollectSmallGrid(t *testing.T) {
	grid := []features.Vector{
		{
			MessageSize: 200, Timeliness: 5 * time.Second,
			Semantics: features.SemanticsAtLeastOnce, BatchSize: 1,
			PollInterval: 50 * time.Millisecond, MessageTimeout: 2 * time.Second,
		},
		{
			MessageSize: 200, Timeliness: 5 * time.Second, LossRate: 0.25,
			Semantics: features.SemanticsAtMostOnce, BatchSize: 1,
			MessageTimeout: 500 * time.Millisecond,
		},
	}
	ds, err := Collect(grid, Options{Messages: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("dataset = %d samples", len(ds))
	}
	// Clean paced run: near-lossless. Faulted full-load run: lossy.
	if ds[0].Pl > 0.05 {
		t.Errorf("clean sample Pl = %v", ds[0].Pl)
	}
	if ds[1].Pl < 0.1 {
		t.Errorf("faulted sample Pl = %v", ds[1].Pl)
	}
}

func TestCollectProgressAndDeterminism(t *testing.T) {
	grid := NormalGrid()[:2]
	var calls []int
	a, err := Collect(grid, Options{Messages: 150, Seed: 8, Progress: func(done, total int) {
		calls = append(calls, done)
		if total != 2 {
			t.Errorf("total = %d", total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[1] != 2 {
		t.Errorf("progress calls = %v", calls)
	}
	b, err := Collect(grid, Options{Messages: 150, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("collection not deterministic at %d", i)
		}
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(nil, Options{Messages: 10}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Collect(NormalGrid()[:1], Options{}); err == nil {
		t.Error("zero messages accepted")
	}
	bad := []features.Vector{{}}
	if _, err := Collect(bad, Options{Messages: 10}); err == nil {
		t.Error("invalid vector accepted")
	}
}

func TestSensitivitySelectsKeyParameters(t *testing.T) {
	base := features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        50,
		LossRate:       0.18,
		Semantics:      features.SemanticsAtMostOnce,
		BatchSize:      2,
		PollInterval:   0,
		MessageTimeout: 700 * time.Millisecond,
	}
	results, err := Sensitivity(base, SensitivityOptions{Messages: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SensitivityResult{}
	for _, r := range results {
		byName[r.Parameter] = r
		if r.Impact < 0 {
			t.Errorf("%s: negative impact", r.Parameter)
		}
	}
	// The paper's selected features must show up as sensitive at this
	// operating point: loss rate and message size dominate Fig. 4.
	for _, key := range []string{"loss_rate", "message_size"} {
		if !byName[key].Selected {
			t.Errorf("%s not selected: %+v", key, byName[key])
		}
	}
	if len(byName) != 6 {
		t.Errorf("parameters analysed = %d, want 6", len(byName))
	}
}

func TestSensitivityValidation(t *testing.T) {
	if _, err := Sensitivity(features.Vector{}, SensitivityOptions{Messages: 10}); err == nil {
		t.Error("invalid base accepted")
	}
	good := NormalGrid()[0]
	if _, err := Sensitivity(good, SensitivityOptions{}); err == nil {
		t.Error("zero messages accepted")
	}
}
