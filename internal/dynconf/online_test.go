package dynconf

import (
	"testing"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/kpi"
	"kafkarel/internal/netem"
	"kafkarel/internal/testbed"
)

func TestOnlineControllerValidation(t *testing.T) {
	ev := evaluator(t, kpi.DefaultWeights())
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnlineController(nil, startVector(), 0.8); err == nil {
		t.Error("nil searcher accepted")
	}
	if _, err := NewOnlineController(s, features.Vector{}, 0.8); err == nil {
		t.Error("invalid start accepted")
	}
}

func TestOnlineControllerReactsToLossEstimates(t *testing.T) {
	ev := evaluator(t, kpi.Weights{0.1, 0.1, 0.7, 0.1})
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	start := startVector()
	start.LossRate = 0 // the controller must discover loss from probes
	ctrl, err := NewOnlineController(s, start, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.MinHold = 0

	// Calm probe: little to fix.
	_, _ = ctrl.Control(testbed.NetworkProbe{At: time.Second, EstDelayMs: 10, EstLoss: 0})
	calmCfg := ctrl.Current()

	// A run of lossy probes drives the EWMA up; the controller must move
	// towards a protective configuration.
	changed := false
	for i := 0; i < 6; i++ {
		_, ok := ctrl.Control(testbed.NetworkProbe{
			At:         time.Duration(i+2) * time.Second,
			EstDelayMs: 120,
			EstLoss:    0.2,
		})
		changed = changed || ok
	}
	if !changed {
		t.Fatal("controller never reconfigured under sustained loss probes")
	}
	lossyCfg := ctrl.Current()
	if sameConfig(calmCfg, lossyCfg) {
		t.Error("configuration identical under calm and lossy estimates")
	}
	if ctrl.Changes() == 0 {
		t.Error("Changes() = 0 after reconfiguration")
	}
}

func TestOnlineControllerMinHold(t *testing.T) {
	ev := evaluator(t, kpi.Weights{0.1, 0.1, 0.7, 0.1})
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewOnlineController(s, startVector(), 2.0) // insatiable target
	if err != nil {
		t.Fatal(err)
	}
	ctrl.MinHold = 10 * time.Second
	probe := func(at time.Duration) bool {
		_, ok := ctrl.Control(testbed.NetworkProbe{At: at, EstDelayMs: 100, EstLoss: 0.2})
		return ok
	}
	probe(time.Second) // may change (first change is free)
	n := ctrl.Changes()
	if probe(2*time.Second) || ctrl.Changes() != n {
		t.Error("reconfigured within the hold window")
	}
	probe(13 * time.Second)
	if ctrl.Changes() < n {
		t.Error("hold window never released")
	}
}

// TestOnlineEndToEnd runs the full online loop on the testbed: the
// network degrades mid-run with no forecast available, and the
// controller must still cut the loss versus the static default.
func TestOnlineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("online pipeline; skipped in -short")
	}
	spec := netem.TraceSpec{
		Duration:     3 * time.Minute,
		Interval:     10 * time.Second,
		DelayScaleMs: 20,
		DelayShape:   1.5,
		GEGoodToBad:  0.3,
		GEBadToGood:  0.3,
		GoodLoss:     0.005,
		BadLoss:      0.18,
	}
	trace, err := spec.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	base := startVector()
	base.MessageSize = 200
	base.LossRate = 0
	base.DelayMs = 0
	e := testbed.Experiment{
		Features:   base,
		Messages:   6000,
		Seed:       9,
		Trace:      trace,
		MaxSimTime: spec.Duration,
	}
	static, err := testbed.Run(e)
	if err != nil {
		t.Fatal(err)
	}

	ev := evaluator(t, kpi.Weights{0.1, 0.1, 0.7, 0.1})
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewOnlineController(s, base, 0.93)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.MinHold = 20 * time.Second
	online, err := testbed.RunOnline(e, 10*time.Second, ctrl.Control)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static Pl=%.3f; online Pl=%.3f Pd=%.4f with %d changes",
		static.Pl, online.Pl, online.Pd, ctrl.Changes())
	if static.Pl < 0.03 {
		t.Skipf("trace too mild to differentiate (static Pl=%.3f)", static.Pl)
	}
	if ctrl.Changes() == 0 {
		t.Fatal("online controller never reconfigured")
	}
	if online.Pl >= static.Pl {
		t.Errorf("online Pl %.3f did not beat static %.3f", online.Pl, static.Pl)
	}
}
