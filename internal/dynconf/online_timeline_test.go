package dynconf

import (
	"strings"
	"testing"
	"time"

	"kafkarel/internal/kpi"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
	"kafkarel/internal/testbed"
)

// TestOnlineControllerTimelineAnnotations runs the online loop with a
// timeline attached and pins the observability contract: every
// controller reconfiguration leaves exactly one online_decision
// annotation, consecutive decisions respect MinHold, and each
// annotation carries the estimates the decision was made from.
func TestOnlineControllerTimelineAnnotations(t *testing.T) {
	if testing.Short() {
		t.Skip("online pipeline; skipped in -short")
	}
	spec := netem.TraceSpec{
		Duration:     3 * time.Minute,
		Interval:     10 * time.Second,
		DelayScaleMs: 20,
		DelayShape:   1.5,
		GEGoodToBad:  0.3,
		GEBadToGood:  0.3,
		GoodLoss:     0.005,
		BadLoss:      0.18,
	}
	trace, err := spec.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	base := startVector()
	base.MessageSize = 200
	base.LossRate = 0
	base.DelayMs = 0

	ev := evaluator(t, kpi.Weights{0.1, 0.1, 0.7, 0.1})
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewOnlineController(s, base, 0.93)
	if err != nil {
		t.Fatal(err)
	}
	const minHold = 20 * time.Second
	ctrl.MinHold = minHold
	tl := obs.NewTimeline(10 * time.Second)
	res, err := testbed.RunOnline(testbed.Experiment{
		Features:   base,
		Messages:   6000,
		Seed:       9,
		Trace:      trace,
		MaxSimTime: spec.Duration,
		Timeline:   tl,
	}, 10*time.Second, ctrl.Control)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Changes() == 0 {
		t.Fatal("online controller never reconfigured")
	}
	if res.Timeline == nil {
		t.Fatal("Result.Timeline is nil")
	}

	var decisions []obs.TimelineAnnotation
	for _, ann := range res.Timeline.Annotations() {
		if ann.Kind == obs.AnnOnlineDecision {
			decisions = append(decisions, ann)
		}
	}
	if len(decisions) != ctrl.Changes() {
		t.Errorf("online_decision annotations = %d, want Changes() = %d", len(decisions), ctrl.Changes())
	}
	for i, d := range decisions {
		if !strings.Contains(d.Detail, "est_loss=") || !strings.Contains(d.Detail, "est_delay_ms=") {
			t.Errorf("decision %d detail %q lacks the probe estimates", i, d.Detail)
		}
		if i > 0 {
			if gap := d.At - decisions[i-1].At; gap < minHold {
				t.Errorf("decisions %d→%d only %v apart, MinHold is %v", i-1, i, gap, minHold)
			}
		}
	}
	// Reaction latency: the first decision can come no earlier than the
	// first probe tick.
	if decisions[0].At < 10*time.Second {
		t.Errorf("first decision at %v, before the first probe interval", decisions[0].At)
	}
	// Timeline rows cover the run: the last sample is at or after the
	// last decision.
	rows := res.Timeline.Rows()
	if len(rows) == 0 {
		t.Fatal("timeline captured no rows")
	}
	if last := rows[len(rows)-1].At; last < decisions[len(decisions)-1].At {
		t.Errorf("last sample %v precedes last decision %v", last, decisions[len(decisions)-1].At)
	}
}
