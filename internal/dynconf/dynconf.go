// Package dynconf implements the paper's dynamic configuration scheme
// (Sec. V): given a known (forecast) network trace and a stream profile,
// it searches configuration space with the prediction model until the
// weighted KPI γ meets the user's requirement, emits an offline
// configuration schedule (the paper's "configuration file"), and
// evaluates the schedule against the static default configuration on the
// testbed, reporting the overall loss and duplicate rates R_l and R_d of
// Eq. 3.
package dynconf

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/kpi"
	"kafkarel/internal/netem"
	"kafkarel/internal/testbed"
)

// Searcher performs the paper's stepwise parameter walk: "For each
// parameter, we move its current value stepwise forward or backward and
// substitute the value into our prediction model... We repeat this until
// the predicted γ meets the requirement." The goal is satisficing, not
// maximising (Sec. V).
type Searcher struct {
	eval *kpi.Evaluator
	// MaxSteps bounds the walk (default 32).
	MaxSteps int
}

// NewSearcher wires a KPI evaluator.
func NewSearcher(eval *kpi.Evaluator) (*Searcher, error) {
	if eval == nil {
		return nil, fmt.Errorf("dynconf: nil evaluator")
	}
	return &Searcher{eval: eval, MaxSteps: 32}, nil
}

// neighbours enumerates single-step moves of each tunable parameter.
func neighbours(v features.Vector, modelled func(int) bool) []features.Vector {
	var out []features.Vector
	// Delivery semantics toggle.
	for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce, features.SemanticsExactlyOnce} {
		if sem != v.Semantics && modelled(sem) {
			n := v
			n.Semantics = sem
			out = append(out, n)
		}
	}
	// Batch size ±1 within [1, 10] (the Fig. 7 range).
	if v.BatchSize > 1 {
		n := v
		n.BatchSize--
		out = append(out, n)
	}
	if v.BatchSize < 10 {
		n := v
		n.BatchSize++
		out = append(out, n)
	}
	// Polling interval ±15 ms within [0, 120 ms] (the Fig. 6 range).
	const deltaStep = 15 * time.Millisecond
	if v.PollInterval >= deltaStep {
		n := v
		n.PollInterval -= deltaStep
		out = append(out, n)
	}
	if v.PollInterval <= 120*time.Millisecond-deltaStep {
		n := v
		n.PollInterval += deltaStep
		out = append(out, n)
	}
	// Message timeout ×/÷ 1.5 within [250 ms, 5 s] (the Fig. 5 range).
	if lo := time.Duration(float64(v.MessageTimeout) / 1.5); lo >= 250*time.Millisecond {
		n := v
		n.MessageTimeout = lo
		out = append(out, n)
	}
	if hi := time.Duration(float64(v.MessageTimeout) * 1.5); hi <= 5*time.Second {
		n := v
		n.MessageTimeout = hi
		out = append(out, n)
	}
	return out
}

// Improve walks from start until γ meets target or no single-parameter
// move helps, returning the best configuration found and its score.
func (s *Searcher) Improve(start features.Vector, target float64) (features.Vector, kpi.Breakdown, error) {
	if err := start.Validate(); err != nil {
		return features.Vector{}, kpi.Breakdown{}, fmt.Errorf("dynconf: %w", err)
	}
	modelled := make(map[int]bool)
	cur := start
	best, err := s.eval.Score(cur)
	if err != nil {
		return features.Vector{}, kpi.Breakdown{}, fmt.Errorf("dynconf: %w", err)
	}
	maxSteps := s.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 32
	}
	isModelled := func(sem int) bool {
		if v, ok := modelled[sem]; ok {
			return v
		}
		probe := cur
		probe.Semantics = sem
		_, err := s.eval.Score(probe)
		modelled[sem] = err == nil
		return modelled[sem]
	}
	for step := 0; step < maxSteps && best.Gamma < target; step++ {
		improved := false
		bestNext := cur
		bestScore := best
		for _, n := range neighbours(cur, isModelled) {
			sc, err := s.eval.Score(n)
			if err != nil {
				continue // unmodelled region: skip the move
			}
			if sc.Gamma > bestScore.Gamma {
				bestNext, bestScore = n, sc
				improved = true
			}
		}
		if !improved {
			break
		}
		cur, best = bestNext, bestScore
	}
	return cur, best, nil
}

// ScheduleEntry is one line of the offline configuration file: from At
// onward the producer runs with Config.
type ScheduleEntry struct {
	At     time.Duration `json:"at_ns"`
	Config features.Vector
	Score  kpi.Breakdown
}

// GenerateSchedule walks the network trace at the reconfiguration
// interval (the paper checks γ "every other time interval (i.e. every 60
// seconds)"), and at each checkpoint searches from the current
// configuration until γ meets the target under the forecast network
// condition. Consecutive identical configurations are merged, since every
// configuration change costs coordination overhead (Sec. V).
func GenerateSchedule(s *Searcher, trace netem.Trace, stream features.Vector, target float64, interval time.Duration) ([]ScheduleEntry, error) {
	if s == nil {
		return nil, fmt.Errorf("dynconf: nil searcher")
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("dynconf: empty trace")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("dynconf: non-positive interval %v", interval)
	}
	end := trace[len(trace)-1].Start + interval
	cur := stream
	var out []ScheduleEntry
	for at := time.Duration(0); at < end; at += interval {
		seg, ok := trace.ConditionAt(at)
		if !ok {
			continue
		}
		forecast := cur
		if seg.Delay != nil {
			forecast.DelayMs = seg.Delay.Sample()
		}
		if seg.Loss != nil {
			forecast.LossRate = seg.Loss.Rate()
		}
		next, score, err := s.Improve(forecast, target)
		if err != nil {
			return nil, fmt.Errorf("dynconf: at %v: %w", at, err)
		}
		// Only the configuration features travel into the schedule.
		cur.Semantics = next.Semantics
		cur.BatchSize = next.BatchSize
		cur.PollInterval = next.PollInterval
		cur.MessageTimeout = next.MessageTimeout
		if len(out) > 0 && sameConfig(out[len(out)-1].Config, cur) {
			continue
		}
		out = append(out, ScheduleEntry{At: at, Config: cur, Score: score})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dynconf: schedule came out empty")
	}
	return out, nil
}

func sameConfig(a, b features.Vector) bool {
	return a.Semantics == b.Semantics && a.BatchSize == b.BatchSize &&
		a.PollInterval == b.PollInterval && a.MessageTimeout == b.MessageTimeout
}

// WriteSchedule persists a schedule as JSON (the paper's dynamic
// configuration file).
func WriteSchedule(w io.Writer, entries []ScheduleEntry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return fmt.Errorf("dynconf: write schedule: %w", err)
	}
	return nil
}

// ReadSchedule parses a schedule written by WriteSchedule.
func ReadSchedule(r io.Reader) ([]ScheduleEntry, error) {
	var out []ScheduleEntry
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("dynconf: read schedule: %w", err)
	}
	for i, e := range out {
		if err := e.Config.Validate(); err != nil {
			return nil, fmt.Errorf("dynconf: schedule entry %d: %w", i, err)
		}
	}
	return out, nil
}

// ToConfigChanges converts schedule entries into testbed reconfiguration
// events.
func ToConfigChanges(entries []ScheduleEntry) []testbed.ConfigChange {
	out := make([]testbed.ConfigChange, 0, len(entries))
	for _, e := range entries {
		out = append(out, testbed.ConfigChange{At: e.At, Features: e.Config})
	}
	return out
}
