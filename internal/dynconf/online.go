package dynconf

import (
	"fmt"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// OnlineController implements the paper's declared future work: dynamic
// configuration WITHOUT a known network forecast. At every probe
// interval it estimates the current network condition from the
// producer's own transport statistics (smoothed RTT → delay,
// retransmission rate → loss), substitutes the estimate into the
// prediction model, and walks the configuration towards the γ target —
// the same stepwise search the offline scheme uses, fed by measurements
// instead of an oracle.
type OnlineController struct {
	searcher *Searcher
	target   float64
	// Smoothing is the EWMA coefficient applied to the probe estimates
	// (default 0.5): raw per-interval retransmission rates are bursty.
	Smoothing float64
	// MinHold is the minimum time between configuration changes
	// (default one interval) — every change costs coordination overhead
	// (Sec. V).
	MinHold time.Duration

	cur        features.Vector
	estLoss    float64
	estDelayMs float64
	lastChange time.Duration
	changes    int
}

// NewOnlineController builds a controller that starts from the given
// configuration and pursues the γ target.
func NewOnlineController(s *Searcher, start features.Vector, target float64) (*OnlineController, error) {
	if s == nil {
		return nil, fmt.Errorf("dynconf: nil searcher")
	}
	if err := start.Validate(); err != nil {
		return nil, fmt.Errorf("dynconf: %w", err)
	}
	return &OnlineController{
		searcher:  s,
		target:    target,
		Smoothing: 0.5,
		cur:       start,
	}, nil
}

// Changes reports how many reconfigurations the controller issued.
func (c *OnlineController) Changes() int { return c.changes }

// Current returns the configuration the controller believes is active.
func (c *OnlineController) Current() features.Vector { return c.cur }

// Control is the testbed.Controller hook.
func (c *OnlineController) Control(probe testbed.NetworkProbe) (features.Vector, bool) {
	a := c.Smoothing
	c.estLoss = a*probe.EstLoss + (1-a)*c.estLoss
	c.estDelayMs = a*probe.EstDelayMs + (1-a)*c.estDelayMs

	if c.MinHold > 0 && c.changes > 0 && probe.At-c.lastChange < c.MinHold {
		return features.Vector{}, false
	}

	estimate := c.cur
	estimate.DelayMs = c.estDelayMs
	estimate.LossRate = c.estLoss
	next, _, err := c.searcher.Improve(estimate, c.target)
	if err != nil {
		return features.Vector{}, false
	}
	if sameConfig(next, c.cur) {
		return features.Vector{}, false
	}
	// Only the configuration features are applied; M and S stay the
	// stream's own.
	c.cur.Semantics = next.Semantics
	c.cur.BatchSize = next.BatchSize
	c.cur.PollInterval = next.PollInterval
	c.cur.MessageTimeout = next.MessageTimeout
	c.lastChange = probe.At
	c.changes++
	return c.cur, true
}
