package dynconf

import (
	"context"
	"fmt"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/kpi"
	"kafkarel/internal/netem"
	"kafkarel/internal/perfmodel"
	"kafkarel/internal/sweep"
	"kafkarel/internal/testbed"
	"kafkarel/internal/workload"
)

// DefaultVector returns the static default configuration the paper
// compares against in Table II: streaming (B = 1), fire-and-forget
// full-load intake, 1.5 s delivery budget.
func DefaultVector(profile workload.Profile) features.Vector {
	return features.Vector{
		MessageSize:    profile.MeanSize,
		Timeliness:     profile.Timeliness,
		Semantics:      features.SemanticsAtMostOnce,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

// StreamOutcome is one Table II column pair: the overall message loss
// and duplicate rates (Eq. 3) under the static default and under the
// dynamic configuration schedule.
type StreamOutcome struct {
	Profile   workload.Profile
	DefaultRl float64
	DefaultRd float64
	DynamicRl float64
	DynamicRd float64
	// Reconfigurations is the number of distinct schedule entries.
	Reconfigurations int
	// Target is the γ requirement the schedule was generated for.
	Target float64
}

// Options configures the Table II pipeline.
type Options struct {
	// Messages per evaluation run (per stream).
	Messages int
	// Seed drives trace generation, training and evaluation.
	Seed uint64
	// TraceSpec parameterises the Fig. 9 network (zero value: default).
	TraceSpec netem.TraceSpec
	// Target is the γ requirement; 0 selects a per-profile default
	// (the paper: "If γ is less than the user-defined requirement, the
	// parameters should be adjusted"). Completeness-heavy weight profiles
	// need a higher bar, since γ ≈ ω3·(1−P_l) tolerates more loss at a
	// fixed target when ω3 dominates.
	Target float64
	// Interval is the reconfiguration check period (default 60 s).
	Interval time.Duration
	// Predictor, when non-nil, skips training (otherwise TrainMessages
	// experiments are run per training-grid point).
	Predictor *core.Predictor
	// TrainMessages is the per-experiment message count when training
	// (default 2000).
	TrainMessages int
	// Workers bounds the experiment worker pool used for the training
	// sweep and the default-vs-dynamic evaluation pair (<= 0: GOMAXPROCS).
	// Outcomes are identical for every worker count.
	Workers int
	// Progress, when non-nil, receives coarse pipeline status lines.
	Progress func(string)
}

func (o *Options) defaults() {
	if o.TraceSpec == (netem.TraceSpec{}) {
		o.TraceSpec = netem.DefaultTraceSpec()
	}
	if o.Interval == 0 {
		o.Interval = 60 * time.Second
	}
	if o.TrainMessages == 0 {
		o.TrainMessages = 2000
	}
}

// TrainingGrid enumerates the feature region the dynamic-configuration
// search explores: both semantics, batch sizes, poll intervals and
// timeouts across the trace's delay/loss envelope, at the given message
// size.
func TrainingGrid(messageSize int, timeliness time.Duration) []features.Vector {
	var grid []features.Vector
	for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
		for _, b := range []int{1, 2, 5} {
			for _, delta := range []time.Duration{0, 30 * time.Millisecond, 90 * time.Millisecond} {
				for _, to := range []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond, 3 * time.Second} {
					for _, cond := range [][2]float64{{20, 0}, {60, 0.005}, {120, 0.08}, {200, 0.16}, {400, 0.25}} {
						grid = append(grid, features.Vector{
							MessageSize:    messageSize,
							Timeliness:     timeliness,
							DelayMs:        cond[0],
							LossRate:       cond[1],
							Semantics:      sem,
							BatchSize:      b,
							PollInterval:   delta,
							MessageTimeout: to,
						})
					}
				}
			}
		}
	}
	return grid
}

// profileTarget returns the default γ requirement for a stream profile:
// the bar is set so the implied loss tolerance ω3·P_l is comparable
// across weight profiles.
func profileTarget(p workload.Profile) float64 {
	switch p.Name {
	case workload.WebLogs.Name:
		return 0.90 // completeness-first: tolerate at most a few % loss
	case workload.GameTraffic.Name:
		return 0.80
	default:
		return 0.75
	}
}

// TableII runs the full dynamic-configuration evaluation for the three
// paper stream profiles (or any provided ones) and returns one outcome
// per stream.
func TableII(profiles []workload.Profile, opts Options) ([]StreamOutcome, error) {
	return TableIIContext(context.Background(), profiles, opts)
}

// TableIIContext is TableII with cancellation. Profiles run in sequence
// (each trains its own predictor and logs coarse progress); within a
// profile the training sweep fans out over the exprun pool, as do the
// static-default and dynamic-schedule evaluation runs. The offline
// schedule search itself stays sequential: each checkpoint's stepwise
// walk starts from the configuration the previous checkpoint chose.
func TableIIContext(ctx context.Context, profiles []workload.Profile, opts Options) ([]StreamOutcome, error) {
	if len(profiles) == 0 {
		profiles = workload.Profiles()
	}
	if opts.Messages <= 0 {
		return nil, fmt.Errorf("dynconf: message count %d <= 0", opts.Messages)
	}
	opts.defaults()
	say := opts.Progress
	if say == nil {
		say = func(string) {}
	}

	trace, err := opts.TraceSpec.Generate(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("dynconf: %w", err)
	}
	perf, err := perfmodel.New(testbed.Calibration{})
	if err != nil {
		return nil, fmt.Errorf("dynconf: %w", err)
	}

	var out []StreamOutcome
	for pi, profile := range profiles {
		pred := opts.Predictor
		if pred == nil {
			say(fmt.Sprintf("training predictor for %s (grid sweep)...", profile.Name))
			grid := TrainingGrid(profile.MeanSize, profile.Timeliness)
			ds, err := sweep.CollectContext(ctx, grid, sweep.Options{
				Messages:   opts.TrainMessages,
				Seed:       opts.Seed + uint64(pi)*31,
				MaxSimTime: 10 * time.Minute,
				Workers:    opts.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("dynconf: %s: %w", profile.Name, err)
			}
			pred, _, err = core.Train(ds, core.TrainConfig{Seed: opts.Seed, TargetMAE: 0.01})
			if err != nil {
				return nil, fmt.Errorf("dynconf: %s: %w", profile.Name, err)
			}
		}
		eval, err := kpi.NewEvaluator(pred, perf, kpi.Weights(profile.Weights))
		if err != nil {
			return nil, fmt.Errorf("dynconf: %s: %w", profile.Name, err)
		}
		searcher, err := NewSearcher(eval)
		if err != nil {
			return nil, fmt.Errorf("dynconf: %s: %w", profile.Name, err)
		}

		target := opts.Target
		if target == 0 {
			target = profileTarget(profile)
		}
		base := DefaultVector(profile)
		say(fmt.Sprintf("generating schedule for %s...", profile.Name))
		schedule, err := GenerateSchedule(searcher, trace, base, target, opts.Interval)
		if err != nil {
			return nil, fmt.Errorf("dynconf: %s: %w", profile.Name, err)
		}

		// The stream must span the whole trace: offer full-load input for
		// the trace duration, bounded by the caller's message budget.
		needed := int(testbed.DefaultCalibration().FullLoadRate(profile.MeanSize) *
			opts.TraceSpec.Duration.Seconds() * 1.1)
		messages := opts.Messages
		if needed < messages {
			messages = needed
		}
		// The static-default and dynamic-schedule evaluations share the
		// seed (the comparison must isolate the configuration effect) and
		// are independent, so they run as one two-task batch.
		type evalTask struct {
			name    string
			changes []testbed.ConfigChange
		}
		say(fmt.Sprintf("evaluating %s: static default vs dynamic schedule...", profile.Name))
		evals, err := exprun.Map(ctx, []evalTask{
			{name: "default"},
			{name: "dynamic", changes: ToConfigChanges(schedule)},
		}, func(ctx context.Context, _ int, t evalTask) (testbed.Result, error) {
			res, err := testbed.RunCtx(ctx, testbed.Experiment{
				Features:   base,
				Messages:   messages,
				Seed:       opts.Seed + 1000 + uint64(pi),
				Trace:      trace,
				MaxSimTime: opts.TraceSpec.Duration,
				Schedule:   t.changes,
			})
			if err != nil {
				return testbed.Result{}, fmt.Errorf("dynconf: %s %s: %w", profile.Name, t.name, err)
			}
			return res, nil
		}, exprun.Options{Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		defRes, dynRes := evals[0], evals[1]

		out = append(out, StreamOutcome{
			Profile:          profile,
			DefaultRl:        defRes.Pl,
			DefaultRd:        defRes.Pd,
			DynamicRl:        dynRes.Pl,
			DynamicRd:        dynRes.Pd,
			Reconfigurations: len(schedule),
			Target:           target,
		})
	}
	return out, nil
}
