package dynconf

import (
	"fmt"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/netem"
)

// ThresholdSchedule builds an offline configuration schedule from a
// forecast trace with a single rule instead of the model-driven search:
// whenever the forecast segment's loss rate is at or above lossBar the
// protective configuration is scheduled, otherwise the stream's own
// (cheap) configuration stays. It needs no trained prediction model, so
// it is the scheduler of choice for demos and for exercising the
// dynamic-run machinery (config switches, timelines, run reports) where
// the interesting part is *that* the configuration changes with the
// network, not *which* change the ANN would have picked.
//
// Only the configuration features (semantics, batch size, poll
// interval, message timeout) of protective are applied; stream keeps
// supplying the workload features. Consecutive identical entries are
// merged, mirroring GenerateSchedule.
func ThresholdSchedule(trace netem.Trace, stream, protective features.Vector, interval time.Duration, lossBar float64) ([]ScheduleEntry, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("dynconf: empty trace")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("dynconf: non-positive interval %v", interval)
	}
	if lossBar <= 0 || lossBar >= 1 {
		return nil, fmt.Errorf("dynconf: loss bar %v outside (0, 1)", lossBar)
	}
	if err := stream.Validate(); err != nil {
		return nil, fmt.Errorf("dynconf: stream: %w", err)
	}
	if err := protective.Validate(); err != nil {
		return nil, fmt.Errorf("dynconf: protective: %w", err)
	}
	end := trace[len(trace)-1].Start + interval
	var out []ScheduleEntry
	for at := time.Duration(0); at < end; at += interval {
		seg, ok := trace.ConditionAt(at)
		if !ok {
			continue
		}
		rate := 0.0
		if seg.Loss != nil {
			rate = seg.Loss.Rate()
		}
		cur := stream
		if rate >= lossBar {
			cur.Semantics = protective.Semantics
			cur.BatchSize = protective.BatchSize
			cur.PollInterval = protective.PollInterval
			cur.MessageTimeout = protective.MessageTimeout
		}
		if len(out) > 0 && sameConfig(out[len(out)-1].Config, cur) {
			continue
		}
		out = append(out, ScheduleEntry{At: at, Config: cur})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dynconf: schedule came out empty")
	}
	return out, nil
}
