package dynconf

import (
	"math/rand/v2"
	"testing"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/netem"
	"kafkarel/internal/stats"
	"kafkarel/internal/workload"
)

// thresholdTrace builds a trace whose segments carry the given loss
// rates, one per 30 s segment.
func thresholdTrace(t *testing.T, rates []float64) netem.Trace {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 1))
	trace := make(netem.Trace, len(rates))
	for i, r := range rates {
		loss, err := stats.NewBernoulli(r, rng)
		if err != nil {
			t.Fatal(err)
		}
		trace[i] = netem.Segment{
			Start: time.Duration(i) * 30 * time.Second,
			Delay: stats.Constant{Value: 20},
			Loss:  loss,
		}
	}
	return trace
}

func TestThresholdScheduleValidation(t *testing.T) {
	stream := DefaultVector(workload.SocialMedia)
	protective := stream
	protective.BatchSize = 5
	trace := thresholdTrace(t, []float64{0.01})
	if _, err := ThresholdSchedule(nil, stream, protective, 30*time.Second, 0.05); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ThresholdSchedule(trace, stream, protective, 0, 0.05); err == nil {
		t.Error("non-positive interval accepted")
	}
	for _, bar := range []float64{0, 1, -0.1, 1.5} {
		if _, err := ThresholdSchedule(trace, stream, protective, 30*time.Second, bar); err == nil {
			t.Errorf("loss bar %v accepted", bar)
		}
	}
	if _, err := ThresholdSchedule(trace, features.Vector{}, protective, 30*time.Second, 0.05); err == nil {
		t.Error("invalid stream vector accepted")
	}
}

func TestThresholdScheduleSwitches(t *testing.T) {
	stream := DefaultVector(workload.SocialMedia)
	protective := stream
	protective.Semantics = features.SemanticsAtLeastOnce
	protective.BatchSize = 5
	protective.MessageTimeout = 3 * time.Second

	// good, good, bad, bad, good — with merging that is three entries:
	// stream @0, protective @60s, stream @120s... the two bad segments
	// merge, as do the leading good ones.
	trace := thresholdTrace(t, []float64{0.005, 0.006, 0.16, 0.2, 0.004})
	entries, err := ThresholdSchedule(trace, stream, protective, 30*time.Second, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d (%+v), want 3 after merging", len(entries), entries)
	}
	if entries[0].At != 0 || !sameConfig(entries[0].Config, stream) {
		t.Errorf("entry 0 = %+v, want the stream config at 0", entries[0])
	}
	if entries[1].At != 60*time.Second || !sameConfig(entries[1].Config, protective) {
		t.Errorf("entry 1 = %+v, want the protective config at 60s", entries[1])
	}
	if entries[2].At != 120*time.Second || !sameConfig(entries[2].Config, stream) {
		t.Errorf("entry 2 = %+v, want the stream config back at 120s", entries[2])
	}
	// Workload features always come from the stream, even under the
	// protective configuration.
	if entries[1].Config.MessageSize != stream.MessageSize {
		t.Errorf("protective entry message size = %d, want the stream's %d",
			entries[1].Config.MessageSize, stream.MessageSize)
	}
	// A finer checkpoint interval sub-samples segments without changing
	// the switch points.
	fine, err := ThresholdSchedule(trace, stream, protective, 10*time.Second, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) != len(entries) {
		t.Errorf("fine-interval entries = %d, want %d", len(fine), len(entries))
	}
}
