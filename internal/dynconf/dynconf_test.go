package dynconf

import (
	"bytes"
	"testing"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
	"kafkarel/internal/kpi"
	"kafkarel/internal/netem"
	"kafkarel/internal/perfmodel"
	"kafkarel/internal/stats"
	"kafkarel/internal/testbed"
	"kafkarel/internal/workload"
)

// trainedPredictor fits a quick model on a synthetic response surface
// where loss falls with batch size and poll interval, and rises with the
// network loss rate — the qualitative structure the simulator produces.
func trainedPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	var ds features.Dataset
	for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
		for _, l := range []float64{0, 0.08, 0.16, 0.25} {
			for _, d := range []float64{20, 100, 300} {
				for _, b := range []int{1, 2, 5, 10} {
					for _, delta := range []time.Duration{0, 30 * time.Millisecond, 90 * time.Millisecond} {
						v := features.Vector{
							MessageSize:    200,
							Timeliness:     5 * time.Second,
							DelayMs:        d,
							LossRate:       l,
							Semantics:      sem,
							BatchSize:      b,
							PollInterval:   delta,
							MessageTimeout: 1500 * time.Millisecond,
						}
						pl := 3 * l / float64(b)
						if sem == features.SemanticsAtLeastOnce {
							pl *= 0.6
						}
						pl += 0.15 * (1 - float64(delta)/float64(100*time.Millisecond))
						if pl > 1 {
							pl = 1
						}
						if pl < 0 {
							pl = 0
						}
						pd := 0.0
						if sem == features.SemanticsAtLeastOnce {
							pd = 0.02 * l
						}
						ds = append(ds, features.Sample{X: v, Pl: pl, Pd: pd})
					}
				}
			}
		}
	}
	p, _, err := core.Train(ds, core.TrainConfig{Seed: 11, TargetMAE: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func evaluator(t *testing.T, w kpi.Weights) *kpi.Evaluator {
	t.Helper()
	perf, err := perfmodel.New(testbed.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := kpi.NewEvaluator(trainedPredictor(t), perf, w)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func startVector() features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.16,
		Semantics:      features.SemanticsAtMostOnce,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

func TestImproveRaisesGamma(t *testing.T) {
	ev := evaluator(t, kpi.Weights{0.1, 0.1, 0.7, 0.1})
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	start := startVector()
	before, err := ev.Score(start)
	if err != nil {
		t.Fatal(err)
	}
	improved, after, err := s.Improve(start, 2.0) // unreachable target → walk to a local optimum
	if err != nil {
		t.Fatal(err)
	}
	if after.Gamma <= before.Gamma {
		t.Fatalf("no improvement: %v -> %v", before.Gamma, after.Gamma)
	}
	if sameConfig(improved, start) {
		t.Error("configuration unchanged despite improvement")
	}
	// The surface rewards batching/pacing under loss; the search must
	// have moved at least one of those dials.
	if improved.BatchSize == 1 && improved.PollInterval == 0 &&
		improved.Semantics == start.Semantics {
		t.Errorf("implausible walk result: %+v", improved)
	}
}

func TestImproveStopsAtTarget(t *testing.T) {
	ev := evaluator(t, kpi.DefaultWeights())
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	start := startVector()
	base, err := ev.Score(start)
	if err != nil {
		t.Fatal(err)
	}
	// Target below the current score: no move at all.
	got, score, err := s.Improve(start, base.Gamma-0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameConfig(got, start) || score.Gamma != base.Gamma {
		t.Error("search moved despite target already met")
	}
}

func TestImproveValidation(t *testing.T) {
	if _, err := NewSearcher(nil); err == nil {
		t.Error("nil evaluator accepted")
	}
	ev := evaluator(t, kpi.DefaultWeights())
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Improve(features.Vector{}, 0.5); err == nil {
		t.Error("invalid start accepted")
	}
}

func TestImproveSkipsUnmodelledSemantics(t *testing.T) {
	// The predictor has no exactly-once model; the search must not
	// propose it or fail when probing it.
	ev := evaluator(t, kpi.DefaultWeights())
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Improve(startVector(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Semantics == features.SemanticsExactlyOnce {
		t.Error("search selected an unmodelled semantics")
	}
}

func testTrace(t *testing.T) netem.Trace {
	t.Helper()
	mkLoss := func(p float64) stats.LossModel {
		if p == 0 {
			return stats.NoLoss{}
		}
		l, err := stats.NewBernoulli(p, nil)
		if err == nil {
			return l
		}
		// Bernoulli with p>0 needs an RNG only for Drop; Rate is static.
		l2 := &stats.Bernoulli{P: p}
		return l2
	}
	return netem.Trace{
		{Start: 0, Delay: stats.Constant{Value: 20}, Loss: mkLoss(0)},
		{Start: 2 * time.Minute, Delay: stats.Constant{Value: 150}, Loss: mkLoss(0.16)},
		{Start: 4 * time.Minute, Delay: stats.Constant{Value: 30}, Loss: mkLoss(0)},
	}
}

func TestGenerateSchedule(t *testing.T) {
	ev := evaluator(t, kpi.Weights{0.1, 0.1, 0.7, 0.1})
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	trace := testTrace(t)
	entries, err := GenerateSchedule(s, trace, startVector(), 0.9, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty schedule")
	}
	// Entries are time-ordered and deduplicated.
	for i := 1; i < len(entries); i++ {
		if entries[i].At <= entries[i-1].At {
			t.Errorf("entries out of order at %d", i)
		}
		if sameConfig(entries[i].Config, entries[i-1].Config) {
			t.Errorf("consecutive duplicate configs at %d", i)
		}
	}
	// The lossy middle segment must provoke a different configuration
	// from the clean opening segment.
	var openCfg, midCfg *features.Vector
	for i := range entries {
		e := entries[i]
		if e.At < 2*time.Minute {
			openCfg = &e.Config
		}
		if e.At >= 2*time.Minute && e.At < 4*time.Minute && midCfg == nil {
			midCfg = &e.Config
		}
	}
	if openCfg == nil {
		t.Fatal("no opening config")
	}
	if midCfg == nil {
		t.Fatal("schedule never reacted to the lossy segment")
	}
	if sameConfig(*openCfg, *midCfg) {
		t.Error("lossy segment got the same configuration as the clean one")
	}
}

func TestGenerateScheduleValidation(t *testing.T) {
	ev := evaluator(t, kpi.DefaultWeights())
	s, err := NewSearcher(ev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateSchedule(nil, testTrace(t), startVector(), 0.5, time.Minute); err == nil {
		t.Error("nil searcher accepted")
	}
	if _, err := GenerateSchedule(s, nil, startVector(), 0.5, time.Minute); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := GenerateSchedule(s, testTrace(t), startVector(), 0.5, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	entries := []ScheduleEntry{
		{At: 0, Config: startVector()},
		{At: time.Minute, Config: func() features.Vector {
			v := startVector()
			v.BatchSize = 5
			return v
		}()},
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Config.BatchSize != 5 || got[1].At != time.Minute {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadSchedule(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSchedule(bytes.NewBufferString(`[{"at_ns":0}]`)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestToConfigChanges(t *testing.T) {
	entries := []ScheduleEntry{{At: time.Second, Config: startVector()}}
	changes := ToConfigChanges(entries)
	if len(changes) != 1 || changes[0].At != time.Second {
		t.Errorf("changes = %+v", changes)
	}
}

func TestDefaultVector(t *testing.T) {
	v := DefaultVector(workload.WebLogs)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Semantics != features.SemanticsAtMostOnce || v.BatchSize != 1 || v.PollInterval != 0 {
		t.Errorf("default vector = %+v", v)
	}
}

// TestTableIIEndToEnd runs the full pipeline with a pre-trained
// predictor and a short trace: the dynamic schedule must cut the loss
// rate substantially versus the static default (the paper's headline
// Table II result).
func TestTableIIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short")
	}
	spec := netem.TraceSpec{
		Duration:     4 * time.Minute,
		Interval:     10 * time.Second,
		DelayScaleMs: 20,
		DelayShape:   1.5,
		GEGoodToBad:  0.25,
		GEBadToGood:  0.3,
		GoodLoss:     0.005,
		BadLoss:      0.17,
	}
	outcomes, err := TableII([]workload.Profile{workload.WebLogs}, Options{
		Messages:  6000,
		Seed:      5,
		TraceSpec: spec,
		Interval:  30 * time.Second,
		Predictor: trainedPredictor(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	o := outcomes[0]
	t.Logf("web-logs: default Rl=%.3f Rd=%.4f; dynamic Rl=%.3f Rd=%.4f (%d reconfigs)",
		o.DefaultRl, o.DefaultRd, o.DynamicRl, o.DynamicRd, o.Reconfigurations)
	if o.DefaultRl < 0.05 {
		t.Errorf("default config suspiciously reliable (Rl=%v); trace too mild", o.DefaultRl)
	}
	if o.DynamicRl >= o.DefaultRl {
		t.Errorf("dynamic Rl %v did not beat default %v", o.DynamicRl, o.DefaultRl)
	}
	if o.Reconfigurations == 0 {
		t.Error("no reconfigurations happened")
	}
}

func TestTableIIValidation(t *testing.T) {
	if _, err := TableII(nil, Options{}); err == nil {
		t.Error("zero messages accepted")
	}
}
