package testbed

import (
	"context"
	"fmt"
	"time"

	"kafkarel/internal/exprun"
	"kafkarel/internal/obs"
)

// scalingSeedStride separates the per-producer seed streams of a scaled
// run (historical derivation, kept so scaled results stay byte-identical
// to the sequential original).
const scalingSeedStride = 15485863

// RunScaled evaluates the paper's producer-scaling strategy (Sec. IV-C):
// to keep the aggregate message arrival rate while relieving each
// producer, the number of producers grows from N_p to N_p' as the poll
// interval grows, following N_p/δ = N_p'/(δ + Δδ). Here the experiment
// is split across `producers` independent producers, each carrying an
// equal share of the source and polling slowly enough that the aggregate
// offered rate matches the single-producer experiment.
func RunScaled(e Experiment, producers int) (Result, error) {
	return RunScaledContext(context.Background(), e, producers, 0)
}

// RunScaledContext is RunScaled with cancellation and an explicit worker
// bound for the per-producer simulations (<= 0: GOMAXPROCS). Each
// producer is an independent simulation with an index-derived seed and
// the partial results — scorecard numbers and entity-tagged timelines
// alike — are merged in producer order, so the aggregate is identical
// for every worker count.
func RunScaledContext(ctx context.Context, e Experiment, producers, workers int) (Result, error) {
	if producers <= 0 {
		return Result{}, fmt.Errorf("testbed: producer count %d <= 0", producers)
	}
	if producers == 1 {
		return Run(e)
	}
	if e.Tracer != nil {
		// A tracer binds a single virtual clock; interleaving the
		// independent clocks of parallel sub-simulations would produce a
		// meaningless total event order. Tracing stays single-producer.
		return Result{}, fmt.Errorf("testbed: event tracing requires a single producer, got %d", producers)
	}
	if e.Messages < producers {
		return Result{}, fmt.Errorf("testbed: %d messages across %d producers", e.Messages, producers)
	}
	cal := e.Calibration
	if cal == (Calibration{}) {
		cal = DefaultCalibration()
	}
	// Per-producer arrival period is io + δ; scaling multiplies it by the
	// producer count so the aggregate rate is unchanged.
	ioMean := time.Duration(float64(time.Second) / cal.FullLoadRate(e.Features.MessageSize))
	period := ioMean + e.Features.PollInterval
	scaledPoll := time.Duration(producers)*period - ioMean
	if scaledPoll < 0 {
		scaledPoll = 0
	}

	seedAt := exprun.LinearSeeds(e.Seed, scalingSeedStride)
	share := e.Messages / producers
	subs := make([]Experiment, producers)
	for i := range subs {
		sub := e
		sub.Features.PollInterval = scaledPoll
		sub.Messages = share
		if i == producers-1 {
			sub.Messages = e.Messages - share*(producers-1)
		}
		sub.Seed = seedAt(i)
		if e.Timeline != nil {
			// The experiment's timeline is a template: each sub-simulation
			// samples its own entity-tagged copy on its own virtual clock,
			// and the merged Result carries all of them in producer order
			// for obs.WriteMergedCSV.
			tl := obs.NewTimeline(e.Timeline.Interval())
			tl.SetEntity(fmt.Sprintf("p%04d", i))
			sub.Timeline = tl
		}
		subs[i] = sub
	}
	results, err := exprun.Map(ctx, subs,
		func(ctx context.Context, i int, sub Experiment) (Result, error) {
			res, err := RunCtx(ctx, sub)
			if err != nil {
				return Result{}, fmt.Errorf("testbed: producer %d: %w", i, err)
			}
			return res, nil
		},
		exprun.Options{Workers: workers})
	if err != nil {
		return Result{}, err
	}
	var agg Result
	for _, res := range results {
		agg = merge(agg, res)
	}
	if agg.Acquired > 0 {
		agg.Pl = float64(agg.Report.NLost) / float64(agg.Acquired)
		agg.Pd = float64(agg.Report.NDuplicated) / float64(agg.Acquired)
	}
	return agg, nil
}

func merge(a, b Result) Result {
	a.Report.SourceCount += b.Report.SourceCount
	a.Report.Distinct += b.Report.Distinct
	a.Report.NLost += b.Report.NLost
	a.Report.NDuplicated += b.Report.NDuplicated
	a.Report.ExtraCopies += b.Report.ExtraCopies
	a.Report.Foreign += b.Report.Foreign
	a.Acquired += b.Acquired
	a.Producer.Total += b.Producer.Total
	a.Producer.Delivered += b.Producer.Delivered
	a.Producer.Lost += b.Producer.Lost
	for c, n := range b.Producer.ByCase {
		a.Producer.ByCase[c] += n
	}
	a.Metrics.Merge(b.Metrics)
	a.Latency.Merge(b.Latency)
	a.Timelines = append(a.Timelines, b.Timelines...)
	a.Throughput += b.Throughput
	if b.Duration > a.Duration {
		a.Duration = b.Duration
	}
	a.Completed = a.Completed || b.Completed
	return a
}
