// Transactional consume-process-produce pipeline: the testbed for the
// exactly-once guarantees of the transaction coordinator. An idempotent
// source fills an input topic; one transactional processor per
// partition consumes a batch, transforms it, produces the result to an
// output topic and commits the consumed offset inside the same
// transaction. Chaos faults crash processors mid-transaction, start
// duplicate incarnations (zombies), and down brokers; every attempt
// leaves evidence (chaos.TxnAttempt) for the transactional invariant
// checker (chaos.VerifyTxn).
package testbed

import (
	"context"
	"fmt"
	"time"

	"kafkarel/internal/broker"
	"kafkarel/internal/chaos"
	"kafkarel/internal/cluster"
	"kafkarel/internal/consumer"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/exprun"
	"kafkarel/internal/producer"
	"kafkarel/internal/wire"
)

// Topic and group names of the transactional pipeline.
const (
	TxnInTopic  = "txn-in"
	TxnOutTopic = "txn-out"
	TxnGroup    = "txn-pipeline"
)

// Pipeline cadences: how often an idle processor re-polls, how long it
// backs off after a failed operation, and how quickly supervision
// restarts a fenced incarnation.
const (
	txnPollDelay    = 3 * time.Millisecond
	txnRetryDelay   = 10 * time.Millisecond
	txnRespawnDelay = 15 * time.Millisecond
	txnFillBatch    = 32
)

// TxnExperiment describes one transactional pipeline run.
type TxnExperiment struct {
	// Seed parameterises the run (fault-plan chains).
	Seed uint64
	// Messages is the total input record count, split across partitions.
	Messages int
	// Partitions is the input/output partition count — and the processor
	// fleet size, one transactional.id per partition (default 2).
	Partitions int
	// BatchSize is the records consumed per transaction (default 5).
	BatchSize int
	// AbortEvery makes each processor deliberately abort every Nth
	// transaction and reprocess the batch (0 = never) — the abort-path
	// workload.
	AbortEvery int
	// ReplicationFactor covers both topics, the offsets log and the
	// transaction log (default 3).
	ReplicationFactor int
	// MinISR is the cluster's minimum in-sync replica count (default 1).
	MinISR int
	// BrokerFlushInterval opens the unclean-restart loss window (zero:
	// every append durable).
	BrokerFlushInterval time.Duration
	// Isolation is the trial's configured consumer isolation; it selects
	// which scan the scorecard's consumed view uses and how residue is
	// classified. Both scans are always taken.
	Isolation wire.IsolationLevel
	// TxnTimeout is the coordinator's abort deadline for idle
	// transactions (default 250ms).
	TxnTimeout time.Duration
	// MaxSimTime is the virtual horizon (default 5s).
	MaxSimTime time.Duration
	// FaultPlan schedules chaos faults; ProcessorCrash/ProcessorZombie
	// target the pipeline's processors by partition index.
	FaultPlan chaos.Plan
}

// TxnResult is everything one transactional run measures.
type TxnResult struct {
	// Attempts is every transactional attempt's evidence, in start order.
	Attempts []chaos.TxnAttempt
	// InputKeys holds, per partition, the input keys in offset order.
	InputKeys [][]uint64
	// CommittedOffsets is the durable group offset per input partition
	// (-1 = none).
	CommittedOffsets []int64
	// OutputCommitted / OutputUncommitted are the per-partition output
	// keys visible at read_committed and read_uncommitted.
	OutputCommitted   [][]uint64
	OutputUncommitted [][]uint64
	// OutputEnd and OutputLastStable are the output partitions' high
	// watermark and last stable offset at the end of the run.
	OutputEnd        []int64
	OutputLastStable []int64
	// Incarnations counts the processor incarnations per partition.
	Incarnations []int
	// TxnStats is the transaction coordinator's activity counters.
	TxnStats coordinator.TxnStats
	// BrokerStats is every broker's counter snapshot.
	BrokerStats []broker.Stats
	// Completed reports whether every partition's input was fully
	// processed and committed.
	Completed bool
	// Duration is the simulated run time.
	Duration time.Duration
}

// RunTxn executes one transactional pipeline experiment.
func RunTxn(e TxnExperiment) (TxnResult, error) {
	return runTxnOn(des.New(), e)
}

// RunTxnCtx is RunTxn reusing an exprun worker's warm simulator, like
// RunCtx.
func RunTxnCtx(ctx context.Context, e TxnExperiment) (TxnResult, error) {
	return runTxnOn(simFor(ctx), e)
}

func runTxnOn(sim *des.Simulator, e TxnExperiment) (TxnResult, error) {
	if e.Messages <= 0 {
		return TxnResult{}, fmt.Errorf("testbed: txn message count %d <= 0", e.Messages)
	}
	parts := exprun.DefInt(e.Partitions, 2)
	rf := exprun.DefInt(e.ReplicationFactor, 3)
	maxSim := exprun.DefDur(e.MaxSimTime, 5*time.Second)

	clstCfg := cluster.DefaultConfig()
	clstCfg.Broker.FlushInterval = e.BrokerFlushInterval
	clstCfg.MinISR = e.MinISR
	clst, err := cluster.New(sim, clstCfg)
	if err != nil {
		return TxnResult{}, fmt.Errorf("testbed: %w", err)
	}
	if err := clst.CreateTopic(TxnInTopic, parts, rf); err != nil {
		return TxnResult{}, fmt.Errorf("testbed: %w", err)
	}
	if err := clst.CreateTopic(TxnOutTopic, parts, rf); err != nil {
		return TxnResult{}, fmt.Errorf("testbed: %w", err)
	}
	co, err := coordinator.New(sim, clst, coordinator.Config{OffsetsReplication: rf})
	if err != nil {
		return TxnResult{}, fmt.Errorf("testbed: %w", err)
	}
	tc, err := coordinator.NewTxn(sim, clst, co, coordinator.TxnConfig{
		TxnReplication:    rf,
		DefaultTxnTimeout: exprun.DefDur(e.TxnTimeout, 250*time.Millisecond),
	})
	if err != nil {
		return TxnResult{}, fmt.Errorf("testbed: %w", err)
	}

	r := &txnRig{
		sim: sim, clst: clst, co: co, tc: tc, e: e,
		batch:   exprun.DefInt(e.BatchSize, 5),
		payload: make([]byte, 64),
	}
	// Keys 1..Messages assigned contiguously per partition, so input
	// offset i of partition p carries keys[p][i].
	per, extra := e.Messages/parts, e.Messages%parts
	next := uint64(1)
	for p := 0; p < parts; p++ {
		cnt := per
		if p < extra {
			cnt++
		}
		keys := make([]uint64, cnt)
		for i := range keys {
			keys[i] = next
			next++
		}
		r.keys = append(r.keys, keys)
		r.fillers = append(r.fillers, &txnFiller{rig: r, part: int32(p), keys: keys, pid: uint64(p) + 1})
		r.procs = append(r.procs, &txnProcessor{
			rig: r, part: int32(p),
			tid:    fmt.Sprintf("txn-p%d", p),
			target: int64(cnt),
		})
	}
	sim.Schedule(0, func() {
		for _, f := range r.fillers {
			f.start()
		}
		for _, tp := range r.procs {
			tp.spawn()
		}
	})
	if len(e.FaultPlan.Faults) > 0 {
		plan := chaos.Plan{Faults: append([]chaos.Fault(nil), e.FaultPlan.Faults...)}
		err := chaos.Schedule(plan, chaos.Targets{
			Sim: sim, Cluster: clst, Procs: r, Seed: e.Seed,
			OnError: func(err error) {
				if r.cfgErr == nil {
					r.cfgErr = err
				}
			},
		})
		if err != nil {
			return TxnResult{}, fmt.Errorf("testbed: fault plan: %w", err)
		}
	}
	if err := sim.RunUntil(maxSim); err != nil {
		return TxnResult{}, fmt.Errorf("testbed: txn run: %w", err)
	}
	return r.collect(parts)
}

// txnRig is the assembled transactional pipeline. It implements
// chaos.ProcessorSet.
type txnRig struct {
	sim      *des.Simulator
	clst     *cluster.Cluster
	co       *coordinator.Coordinator
	tc       *coordinator.TxnCoordinator
	e        TxnExperiment
	batch    int
	payload  []byte
	keys     [][]uint64
	fillers  []*txnFiller
	procs    []*txnProcessor
	attempts []chaos.TxnAttempt
	cfgErr   error
}

// Processors implements chaos.ProcessorSet.
func (r *txnRig) Processors() int { return len(r.procs) }

// CrashProcessor implements chaos.ProcessorSet: the current incarnation
// dies abruptly — pending operations stop, the open transaction
// dangles. A no-op if supervision already lost the incarnation.
func (r *txnRig) CrashProcessor(i int) error {
	if i < 0 || i >= len(r.procs) {
		return fmt.Errorf("testbed: processor %d outside fleet [0, %d)", i, len(r.procs))
	}
	tp := r.procs[i]
	tp.chaosDown = true
	if cur := tp.cur; cur != nil && !cur.dead {
		cur.kill()
	}
	return nil
}

// RestartProcessor implements chaos.ProcessorSet: a fresh incarnation
// whose InitProducerId fences the dead one. A no-op if supervision
// already restarted the processor.
func (r *txnRig) RestartProcessor(i int) error {
	if i < 0 || i >= len(r.procs) {
		return fmt.Errorf("testbed: processor %d outside fleet [0, %d)", i, len(r.procs))
	}
	tp := r.procs[i]
	tp.chaosDown = false
	if cur := tp.cur; cur != nil && !cur.dead {
		return nil
	}
	tp.spawn()
	return nil
}

// ZombieProcessor implements chaos.ProcessorSet: a duplicate
// incarnation starts while the old one keeps running.
func (r *txnRig) ZombieProcessor(i int) error {
	if i < 0 || i >= len(r.procs) {
		return fmt.Errorf("testbed: processor %d outside fleet [0, %d)", i, len(r.procs))
	}
	r.procs[i].chaosDown = false
	r.procs[i].spawn()
	return nil
}

func (r *txnRig) collect(parts int) (TxnResult, error) {
	if r.cfgErr != nil {
		return TxnResult{}, fmt.Errorf("testbed: txn fault plan: %w", r.cfgErr)
	}
	res := TxnResult{
		Attempts:  r.attempts,
		InputKeys: r.keys,
		Duration:  r.sim.Now(),
		Completed: true,
	}
	for p := 0; p < parts; p++ {
		off := int64(-1)
		r.co.HandleOffsetFetch(wire.OffsetFetchRequest{
			Group: TxnGroup, Topic: TxnInTopic, Partition: int32(p),
		}, func(resp wire.OffsetFetchResponse) {
			if resp.Err == wire.ErrNone {
				off = resp.Offset
			}
		})
		res.CommittedOffsets = append(res.CommittedOffsets, off)
		if off != int64(len(r.keys[p])) {
			res.Completed = false
		}

		scan := func(iso wire.IsolationLevel) ([]uint64, error) {
			cons, err := consumer.New(r.clst, TxnOutTopic, int32(p))
			if err != nil {
				return nil, err
			}
			cons.SetIsolation(iso)
			recs, err := cons.ConsumeAll()
			if err != nil {
				return nil, fmt.Errorf("output partition %d at %d: %w", p, iso, err)
			}
			keys := make([]uint64, len(recs))
			for i, rec := range recs {
				keys[i] = rec.Key
			}
			return keys, nil
		}
		committed, err := scan(wire.ReadCommitted)
		if err != nil {
			return TxnResult{}, fmt.Errorf("testbed: %w", err)
		}
		uncommitted, err := scan(wire.ReadUncommitted)
		if err != nil {
			return TxnResult{}, fmt.Errorf("testbed: %w", err)
		}
		res.OutputCommitted = append(res.OutputCommitted, committed)
		res.OutputUncommitted = append(res.OutputUncommitted, uncommitted)

		hwm, lso := int64(-1), int64(-1)
		r.clst.HandleFetch(wire.FetchRequest{
			Topic: TxnOutTopic, Partition: int32(p), Offset: 0, MaxRecords: 1,
		}, func(fr wire.FetchResponse) {
			if fr.Err == wire.ErrNone {
				hwm, lso = fr.HighWatermark, fr.LastStable
			}
		})
		res.OutputEnd = append(res.OutputEnd, hwm)
		res.OutputLastStable = append(res.OutputLastStable, lso)
	}
	for _, tp := range r.procs {
		res.Incarnations = append(res.Incarnations, len(tp.instances))
	}
	res.TxnStats = r.tc.Stats()
	res.BrokerStats = r.clst.StatsAll()
	return res, nil
}

// txnFiller is the idempotent source for one input partition: batches
// carry a fixed (producer id, sequence) per input range, so re-issues
// after vanished acks or broker failovers never duplicate input records.
type txnFiller struct {
	rig   *txnRig
	part  int32
	keys  []uint64
	pid   uint64
	next  int
	timer *des.Timer
	done  bool
}

func (f *txnFiller) start() {
	f.timer = des.NewTimer(f.rig.sim, f.fire)
	f.send()
}

func (f *txnFiller) fire() {
	if !f.done {
		f.send()
	}
}

func (f *txnFiller) send() {
	if f.next >= len(f.keys) {
		f.done = true
		f.timer.Stop()
		return
	}
	n := len(f.keys) - f.next
	if n > txnFillBatch {
		n = txnFillBatch
	}
	now := f.rig.sim.Now()
	recs := make([]wire.Record, n)
	for i := range recs {
		recs[i] = wire.Record{Key: f.keys[f.next+i], Timestamp: now, Payload: f.rig.payload}
	}
	start := f.next
	f.timer.Reset(25 * time.Millisecond)
	f.rig.clst.HandleProduce(wire.ProduceRequest{
		Topic: TxnInTopic, Partition: f.part, Acks: wire.AcksAll,
		Batch: wire.RecordBatch{
			ProducerID: f.pid,
			// Sequence fixed per range: a re-issue of the same range
			// dedupes at the broker instead of appending twice.
			BaseSequence: uint64(start/txnFillBatch) + 1,
			Idempotent:   true,
			Records:      recs,
		},
	}, func(resp wire.ProduceResponse) {
		if f.done || f.next != start {
			return // stale ack of an already-advanced range
		}
		if resp.Err != wire.ErrNone {
			return // the armed timer re-issues
		}
		f.next += n
		f.send()
	})
}

// txnProcessor is one partition's consume-process-produce worker: a
// transactional.id with a history of incarnations.
type txnProcessor struct {
	rig       *txnRig
	part      int32
	tid       string
	target    int64
	instances []*procInstance
	cur       *procInstance
	chaosDown bool // chaos crashed it; only chaos restarts it
}

func (tp *txnProcessor) spawn() *procInstance {
	in := &procInstance{proc: tp, ord: len(tp.instances), attIdx: -1}
	p, err := producer.NewTxnProducer(tp.rig.sim, tp.rig.clst, tp.rig.tc, producer.TxnProducerConfig{
		TransactionalID: tp.tid,
		TxnTimeout:      tp.rig.e.TxnTimeout,
	})
	if err != nil {
		panic(err) // nil deps / empty tid: impossible by construction
	}
	in.p = p
	in.timer = des.NewTimer(tp.rig.sim, in.wake)
	tp.instances = append(tp.instances, in)
	in.init()
	return in
}

// procInstance is one incarnation: it owns a transactional producer and
// runs the fetch → transform → produce → commit loop until it drains
// its partition, is fenced, or dies.
type procInstance struct {
	proc       *txnProcessor
	ord        int
	p          *producer.TxnProducer
	pos        int64
	dead       bool
	superseded bool // another incarnation completed InitProducerId
	doneFlag   bool
	txnsDone   int
	attIdx     int // open attempt's index in rig.attempts (-1: none)
	timer      *des.Timer
	nextFn     func()
}

func (in *procInstance) wake() {
	if in.dead {
		return
	}
	if fn := in.nextFn; fn != nil {
		in.nextFn = nil
		fn()
	}
}

func (in *procInstance) after(d time.Duration, fn func()) {
	in.nextFn = fn
	in.timer.Reset(d)
}

// kill models the incarnation's process dying abruptly.
func (in *procInstance) kill() {
	in.dead = true
	in.timer.Stop()
	in.p.Kill()
}

// att returns the open attempt, nil when none.
func (in *procInstance) att() *chaos.TxnAttempt {
	if in.attIdx < 0 {
		return nil
	}
	return &in.proc.rig.attempts[in.attIdx]
}

func (in *procInstance) init() {
	if in.dead {
		return
	}
	in.p.Init(func(code wire.ErrorCode) {
		if in.dead {
			return
		}
		switch {
		case code == wire.ErrNone:
			// This incarnation now holds the newest epoch: every other
			// incarnation of the transactional.id is superseded — any
			// commit they issue from here on must be fenced.
			for _, other := range in.proc.instances {
				if other != in {
					other.superseded = true
				}
			}
			in.superseded = false
			in.proc.cur = in
			in.fetchCommitted()
		case code == wire.ErrProducerFenced:
			in.stop()
		default:
			in.after(txnRetryDelay, in.init)
		}
	})
}

// fetchCommitted resumes from the durable group offset — the atomic
// commit point shared with the output records.
func (in *procInstance) fetchCommitted() {
	if in.dead {
		return
	}
	in.proc.rig.co.HandleOffsetFetch(wire.OffsetFetchRequest{
		Group: TxnGroup, Topic: TxnInTopic, Partition: in.proc.part,
	}, func(resp wire.OffsetFetchResponse) {
		switch resp.Err {
		case wire.ErrNone:
			in.pos = resp.Offset
		case wire.ErrNoCommittedOffset:
			in.pos = 0
		default:
			in.after(txnPollDelay, in.fetchCommitted)
			return
		}
		in.loop()
	})
}

func (in *procInstance) loop() {
	if in.dead {
		return
	}
	if in.pos >= in.proc.target {
		in.doneFlag = true
		return
	}
	var fr wire.FetchResponse
	got := false
	in.proc.rig.clst.HandleFetch(wire.FetchRequest{
		Topic: TxnInTopic, Partition: in.proc.part,
		Offset: in.pos, MaxRecords: int32(in.proc.rig.batch),
	}, func(r wire.FetchResponse) { fr = r; got = true })
	if !got || fr.Err != wire.ErrNone || len(fr.Records) == 0 {
		in.after(txnPollDelay, in.loop)
		return
	}
	in.attempt(append([]wire.Record(nil), fr.Records...))
}

func (in *procInstance) attempt(recs []wire.Record) {
	if err := in.p.Begin(); err != nil {
		if in.p.Fenced() {
			in.onFenced()
		} else {
			in.after(txnRetryDelay, in.init)
		}
		return
	}
	rig := in.proc.rig
	now := rig.sim.Now()
	keys := make([]uint64, len(recs))
	out := make([]wire.Record, len(recs))
	for i, rec := range recs {
		keys[i] = rec.Key
		out[i] = wire.Record{Key: rec.Key, Timestamp: now, Payload: rec.Payload}
	}
	end := in.pos + int64(len(recs))
	in.attIdx = len(rig.attempts)
	rig.attempts = append(rig.attempts, chaos.TxnAttempt{
		Processor: in.proc.tid, Instance: in.ord, Epoch: in.p.Epoch(),
		Partition: in.proc.part, InputStart: in.pos, InputEnd: end,
		OutputKeys: keys, Outcome: chaos.TxnInFlight,
	})
	in.p.Send(TxnOutTopic, in.proc.part, out, func(code wire.ErrorCode) {
		if in.dead {
			return
		}
		if code != wire.ErrNone {
			in.fail(code)
			return
		}
		in.p.SendOffset(TxnGroup, TxnInTopic, in.proc.part, end, func(code wire.ErrorCode) {
			if in.dead {
				return
			}
			if code != wire.ErrNone {
				in.fail(code)
				return
			}
			in.decide(end)
		})
	})
}

// decide ends the transaction: a deliberate abort every AbortEvery-th
// cycle (the batch is reprocessed), otherwise a commit.
func (in *procInstance) decide(end int64) {
	if e := in.proc.rig.e; e.AbortEvery > 0 && (in.txnsDone+1)%e.AbortEvery == 0 {
		if att := in.att(); att != nil {
			att.Deliberate = true
		}
		in.p.Abort(func(code wire.ErrorCode) {
			if in.dead {
				return
			}
			if code != wire.ErrNone && code != wire.ErrProducerFenced {
				in.fail(code)
				return
			}
			if att := in.att(); att != nil {
				att.Outcome = chaos.TxnAborted
				if code == wire.ErrProducerFenced {
					att.Outcome = chaos.TxnFenced
				}
				in.attIdx = -1
			}
			if code == wire.ErrProducerFenced {
				in.onFenced()
				return
			}
			in.txnsDone++
			in.loop() // same position: reprocess the batch
		})
		return
	}
	att := in.att()
	att.CommitIssued = true
	att.SupersededAtCommit = in.superseded
	in.p.Commit(func(code wire.ErrorCode) {
		if in.dead {
			return
		}
		att := in.att()
		switch code {
		case wire.ErrNone:
			if att != nil {
				att.Outcome = chaos.TxnCommitted
				in.attIdx = -1
			}
			in.pos = end
			in.txnsDone++
			in.loop()
		case wire.ErrProducerFenced:
			if att != nil {
				att.Outcome = chaos.TxnFenced
				in.attIdx = -1
			}
			in.onFenced()
		default:
			// Commit outcome unknown (answer lost): the attempt stays
			// in-flight and the incarnation re-initialises — the durable
			// group offset tells it where to resume.
			in.attIdx = -1
			in.after(txnRetryDelay, in.init)
		}
	})
}

// fail handles an error on the transaction's data path: fence is
// terminal, anything else aborts the wounded transaction and
// re-initialises for a clean epoch. The attempt can never commit — no
// EndTxn(commit) was issued — so Aborted is its truthful outcome even
// when the abort answer is lost (the successor's InitProducerId or the
// coordinator timeout finishes the job).
func (in *procInstance) fail(code wire.ErrorCode) {
	if code == wire.ErrProducerFenced || in.p.Fenced() {
		if att := in.att(); att != nil {
			att.Outcome = chaos.TxnFenced
			in.attIdx = -1
		}
		in.onFenced()
		return
	}
	if att := in.att(); att != nil {
		att.Outcome = chaos.TxnAborted
		in.attIdx = -1
	}
	if in.p.InTxn() {
		in.p.Abort(func(wire.ErrorCode) {
			if in.dead {
				return
			}
			in.after(txnRetryDelay, in.init)
		})
		return
	}
	in.after(txnRetryDelay, in.init)
}

// onFenced retires a fenced incarnation. When the fenced incarnation
// was the current one — a coordinator timeout-abort bumped its epoch,
// not a successor — supervision restarts the processor.
func (in *procInstance) onFenced() {
	wasCurrent := in.proc.cur == in && !in.dead
	in.kill()
	if wasCurrent && !in.proc.chaosDown {
		tp := in.proc
		tp.rig.sim.Schedule(tp.rig.sim.Now()+txnRespawnDelay, func() {
			if tp.chaosDown {
				return
			}
			if cur := tp.cur; cur != nil && !cur.dead {
				return
			}
			tp.spawn()
		})
	}
}

// stop retires an incarnation whose init was fenced: a newer
// incarnation already took over.
func (in *procInstance) stop() {
	in.kill()
}
