package testbed

import (
	"fmt"
	"math"
	"strings"
)

// GammaBreakdown is one γ score with its Eq. 2 components. It mirrors
// kpi.Breakdown but lives here so the testbed (which kpi depends on,
// via perfmodel) can carry predicted-vs-measured comparisons without
// an import cycle; the kpi package fills it in.
type GammaBreakdown struct {
	Gamma float64
	Phi   float64
	Mu    float64
	Pl    float64
	Pd    float64
}

// GammaComparison puts the model's predicted γ next to the γ measured
// from a run's observability snapshot, so reports and scorecards show
// both and the delta is never hidden.
type GammaComparison struct {
	Predicted GammaBreakdown
	Measured  GammaBreakdown
}

// Delta is measured γ minus predicted γ.
func (c GammaComparison) Delta() float64 { return c.Measured.Gamma - c.Predicted.Gamma }

// Render returns the canonical three-line text block used by both the
// run report and the fleet scorecard:
//
//	gamma predicted=... phi=... mu=... pl=... pd=...
//	gamma measured=...  phi=... mu=... pl=... pd=...
//	gamma delta=...
func (c GammaComparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gamma predicted=%s phi=%s mu=%s pl=%s pd=%s\n",
		fleetG(c.Predicted.Gamma), fleetG(c.Predicted.Phi), fleetG(c.Predicted.Mu),
		fleetG(c.Predicted.Pl), fleetG(c.Predicted.Pd))
	fmt.Fprintf(&b, "gamma measured=%s phi=%s mu=%s pl=%s pd=%s\n",
		fleetG(c.Measured.Gamma), fleetG(c.Measured.Phi), fleetG(c.Measured.Mu),
		fleetG(c.Measured.Pl), fleetG(c.Measured.Pd))
	fmt.Fprintf(&b, "gamma delta=%s abs=%s\n", fleetG(c.Delta()), fleetG(math.Abs(c.Delta())))
	return b.String()
}
