package testbed

import (
	"fmt"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/features"
	"kafkarel/internal/obs"
	"kafkarel/internal/transport"
)

// NetworkProbe is a live estimate of the network condition, sampled from
// the producer's own transport statistics — what an online controller
// can actually observe, as opposed to the oracle trace the offline
// scheme assumes (Sec. V: "we assume the network status to be known...
// Running an online algorithm for dynamic configuration is beyond the
// scope of this paper"). This repo implements that online algorithm as
// an extension.
type NetworkProbe struct {
	// At is the virtual sample time.
	At time.Duration
	// SRTTMs is the transport's smoothed round-trip estimate.
	SRTTMs float64
	// EstDelayMs is the one-way delay estimate (SRTT/2).
	EstDelayMs float64
	// RetransRate is retransmissions per data segment over the last
	// interval — a proxy for the packet-loss rate.
	RetransRate float64
	// EstLoss is the controller-facing loss estimate derived from
	// RetransRate, clamped to [0, 0.9].
	EstLoss float64
	// QueueLen is the producer accumulator depth.
	QueueLen int
	// Timeouts counts RTO events in the last interval (burst indicator).
	Timeouts uint64
}

// Controller decides, from a live probe, the next configuration. ok =
// false keeps the current configuration.
type Controller func(probe NetworkProbe) (next features.Vector, ok bool)

// RunOnline executes the experiment while sampling the transport every
// interval and letting the controller reconfigure the producer — the
// online counterpart of the offline Schedule mechanism.
func RunOnline(e Experiment, interval time.Duration, ctrl Controller) (Result, error) {
	if ctrl == nil {
		return Result{}, fmt.Errorf("testbed: nil controller")
	}
	if interval <= 0 {
		return Result{}, fmt.Errorf("testbed: non-positive probe interval %v", interval)
	}
	if err := e.Features.Validate(); err != nil {
		return Result{}, fmt.Errorf("testbed: %w", err)
	}
	if e.Messages <= 0 {
		return Result{}, fmt.Errorf("testbed: message count %d <= 0", e.Messages)
	}
	cal := e.Calibration
	if cal == (Calibration{}) {
		cal = DefaultCalibration()
	}
	if err := cal.Validate(); err != nil {
		return Result{}, err
	}

	sim := des.New()
	rig, err := buildRig(sim, e, cal)
	if err != nil {
		return Result{}, err
	}
	rig.prod.Start()

	var prev transport.Stats
	var ticker *des.Ticker
	ticker = des.NewTicker(sim, interval, func() {
		if rig.prod.Done() {
			ticker.Stop()
			return
		}
		cur := rig.conn.Client.Stats()
		probe := NetworkProbe{
			At:       sim.Now(),
			SRTTMs:   float64(cur.SRTT) / float64(time.Millisecond),
			QueueLen: rig.prod.QueueLen(),
			Timeouts: cur.Timeouts - prev.Timeouts,
		}
		probe.EstDelayMs = probe.SRTTMs / 2
		sent := cur.SegmentsSent - prev.SegmentsSent
		retrans := cur.Retransmissions - prev.Retransmissions
		if sent > 0 {
			probe.RetransRate = float64(retrans) / float64(sent)
		}
		probe.EstLoss = probe.RetransRate
		if probe.EstLoss > 0.9 {
			probe.EstLoss = 0.9
		}
		prev = cur
		next, ok := ctrl(probe)
		if !ok {
			return
		}
		sub := e
		sub.Features = next
		ncfg, err := producerConfig(sub, rig.prod.Config().Topic)
		if err != nil {
			if rig.cfgErr == nil {
				rig.cfgErr = err
			}
			return
		}
		if err := rig.prod.Reconfigure(ncfg); err != nil {
			if rig.cfgErr == nil {
				rig.cfgErr = err
			}
			return
		}
		e.Timeline.Annotate(obs.AnnOnlineDecision, fmt.Sprintf(
			"est_delay_ms=%.1f est_loss=%.3f %s",
			probe.EstDelayMs, probe.EstLoss, describeConfig(next)))
	})

	// The ticker stops itself at the first tick after the producer
	// completes, so the event queue drains naturally.
	const eventCap = 2_000_000_000
	if e.MaxSimTime > 0 {
		if err := sim.RunUntil(e.MaxSimTime); err != nil {
			return Result{}, fmt.Errorf("testbed: run: %w", err)
		}
		ticker.Stop()
	} else if err := sim.RunLimit(eventCap); err != nil {
		return Result{}, fmt.Errorf("testbed: event cap exceeded: %w", err)
	}
	return rig.collect(sim, e)
}
