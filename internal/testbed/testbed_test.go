package testbed

import (
	"flag"

	"kafkarel/internal/des"
	"testing"
	"testing/quick"
	"time"

	"kafkarel/internal/features"
)

var exploreFlag = flag.Bool("explore", false, "run the manual calibration exploration")

func cleanVector() features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      1,
		PollInterval:   50 * time.Millisecond,
		MessageTimeout: 2 * time.Second,
	}
}

func TestRunCleanNetwork(t *testing.T) {
	res, err := Run(Experiment{Features: cleanVector(), Messages: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("experiment did not complete")
	}
	if res.Pl > 0.01 || res.Pd > 0.01 {
		t.Errorf("clean network Pl=%v Pd=%v", res.Pl, res.Pd)
	}
	if res.Acquired != 500 {
		t.Errorf("acquired = %d", res.Acquired)
	}
	if res.Throughput <= 0 || res.Duration <= 0 {
		t.Errorf("throughput=%v duration=%v", res.Throughput, res.Duration)
	}
	if res.BandwidthUtilization <= 0 || res.BandwidthUtilization > 1 {
		t.Errorf("phi = %v", res.BandwidthUtilization)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Experiment{Messages: 10}); err == nil {
		t.Error("zero-value features accepted")
	}
	if _, err := Run(Experiment{Features: cleanVector()}); err == nil {
		t.Error("zero messages accepted")
	}
	bad := Experiment{Features: cleanVector(), Messages: 10}
	bad.Calibration = DefaultCalibration()
	bad.Calibration.Jitter = 2
	if _, err := Run(bad); err == nil {
		t.Error("bad calibration accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	e := Experiment{Features: cleanVector(), Messages: 400, Seed: 9}
	e.Features.LossRate = 0.15
	e.Features.DelayMs = 20
	e.Features.MessageTimeout = time.Second
	a, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pl != b.Pl || a.Pd != b.Pd || a.Duration != b.Duration {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(Experiment{Features: e.Features, Messages: 400, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Duration == a.Duration && c.Pl == a.Pl && c.Report.Distinct == a.Report.Distinct {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestRunWithConsumers runs a two-member group through the coordinator
// alongside the producer: the group must drain the topic, commit every
// partition durably, and report its evidence on the Result.
func TestRunWithConsumers(t *testing.T) {
	e := Experiment{
		Features:        cleanVector(),
		Messages:        300,
		Seed:            3,
		Partitions:      4,
		Consumers:       2,
		CaptureEvidence: true,
		MaxSimTime:      5 * time.Minute,
	}
	if _, err := Run(Experiment{Features: cleanVector(), Messages: 10, Consumers: 1}); err == nil {
		t.Error("Consumers without MaxSimTime accepted")
	}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.GroupEvidence == nil || res.Coordinator == nil {
		t.Fatal("group evidence or coordinator stats missing from Result")
	}
	if !res.GroupEvidence.Drained {
		t.Errorf("group did not drain cleanly: %+v", *res.GroupEvidence)
	}
	var consumed int64
	for _, keys := range res.GroupConsumedKeys {
		consumed += int64(len(keys))
	}
	if consumed != int64(res.Acquired) {
		t.Errorf("group consumed %d of %d acquired records", consumed, res.Acquired)
	}
	var committed int64
	for p, off := range res.GroupCommitted {
		if off < 0 {
			t.Errorf("partition %d: nothing committed", p)
			continue
		}
		committed += off
	}
	if committed != consumed {
		t.Errorf("committed offsets sum to %d, want %d (everything consumed)", committed, consumed)
	}
	if res.Coordinator.Commits == 0 {
		t.Error("coordinator saw no commits")
	}
	if len(res.OffsetRegressions) != 0 {
		t.Errorf("offset regressions on a clean run: %v", res.OffsetRegressions)
	}
}

func TestMaxSimTimeCutsRun(t *testing.T) {
	e := Experiment{Features: cleanVector(), Messages: 1_000_000, Seed: 2,
		MaxSimTime: 2 * time.Second}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("million-message run completed in 2 simulated seconds?")
	}
	if res.Acquired == 0 || res.Acquired >= 1_000_000 {
		t.Errorf("acquired = %d", res.Acquired)
	}
	if res.Duration != 2*time.Second {
		t.Errorf("duration = %v", res.Duration)
	}
}

func TestCalibrationValidate(t *testing.T) {
	if err := DefaultCalibration().Validate(); err != nil {
		t.Errorf("default calibration invalid: %v", err)
	}
	mut := func(f func(*Calibration)) Calibration {
		c := DefaultCalibration()
		f(&c)
		return c
	}
	bad := []Calibration{
		mut(func(c *Calibration) { c.IOCoeffMicros = 0 }),
		mut(func(c *Calibration) { c.SerFactor = 0 }),
		mut(func(c *Calibration) { c.Jitter = 1 }),
		mut(func(c *Calibration) { c.StallProb = -1 }),
		mut(func(c *Calibration) { c.StallMaxMs = c.StallMinMs - 1 }),
		mut(func(c *Calibration) { c.SocketBuffer = 0 }),
		mut(func(c *Calibration) { c.Bandwidth = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad calibration %d accepted", i)
		}
	}
}

func TestFullLoadRateDecreasesWithSize(t *testing.T) {
	cal := DefaultCalibration()
	prev := cal.FullLoadRate(50)
	for _, m := range []int{100, 200, 500, 1000} {
		r := cal.FullLoadRate(m)
		if r >= prev {
			t.Errorf("FullLoadRate(%d) = %v did not decrease", m, r)
		}
		prev = r
	}
}

func TestMultiPartitionRun(t *testing.T) {
	v := cleanVector()
	e := Experiment{Features: v, Messages: 600, Seed: 6, Partitions: 3}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Pl != 0 || res.Pd != 0 {
		t.Fatalf("multi-partition run: %+v", res)
	}
	if res.Report.Distinct != 600 {
		t.Errorf("distinct = %d", res.Report.Distinct)
	}
}

func TestMultiPartitionSpreadsLoad(t *testing.T) {
	// With round-robin batching, records land on every partition; verify
	// by checking the three leaders' logs through a direct run of the
	// rig (reconciliation already proves completeness above).
	v := cleanVector()
	v.BatchSize = 2
	sim := des.New()
	r, err := buildRig(sim, Experiment{Features: v, Messages: 300, Seed: 7, Partitions: 3}, DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	r.prod.Start()
	if err := sim.RunLimit(10_000_000); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 3; p++ {
		leader := r.clst.Leader("stream", p)
		if leader == nil {
			t.Fatalf("partition %d leaderless", p)
		}
		if leader.Log("stream", p).End() == 0 {
			t.Errorf("partition %d received no records", p)
		}
	}
}

// Property: across random feature vectors, the accounting invariants
// hold and identical seeds give identical results.
func TestPropertyExperimentInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("property experiments; skipped in -short")
	}
	f := func(seed uint64, mRaw, lRaw, bRaw, semRaw, toRaw uint8) bool {
		v := features.Vector{
			MessageSize:    50 + int(mRaw)*4, // 50..1070 B
			Timeliness:     5 * time.Second,
			DelayMs:        float64(lRaw % 120),    // 0..119 ms
			LossRate:       float64(lRaw%26) / 100, // 0..25 %
			Semantics:      int(semRaw%2) + 1,      // amo / alo
			BatchSize:      int(bRaw%10) + 1,       // 1..10
			PollInterval:   time.Duration(bRaw%4) * 25 * time.Millisecond,
			MessageTimeout: time.Duration(500+int(toRaw)*8) * time.Millisecond,
		}
		e := Experiment{Features: v, Messages: 150, Seed: seed,
			MaxSimTime: 10 * time.Minute}
		a, err := Run(e)
		if err != nil {
			t.Logf("run error: %v (%+v)", err, v)
			return false
		}
		// Accounting: producer terminals and consumer view balance.
		if a.Producer.Delivered+a.Producer.Lost != a.Producer.Total {
			return false
		}
		if a.Report.Distinct+a.Report.NLost != a.Acquired {
			return false
		}
		if a.Report.Foreign != 0 {
			return false
		}
		if a.Pl < 0 || a.Pl > 1 || a.Pd < 0 || a.Pd > 1 {
			return false
		}
		// Determinism.
		b, err := Run(e)
		if err != nil {
			return false
		}
		return a.Pl == b.Pl && a.Pd == b.Pd && a.Duration == b.Duration
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
