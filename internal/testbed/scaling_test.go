package testbed

import (
	"context"
	"testing"
	"time"

	"kafkarel/internal/features"
)

// A scaled run fans its independent per-producer simulations out over
// the worker pool; the merged aggregate must be identical for every
// worker count.
func TestRunScaledDeterministicAcrossWorkers(t *testing.T) {
	e := Experiment{
		Features: features.Vector{
			MessageSize: 200, Timeliness: 5 * time.Second, DelayMs: 10,
			LossRate: 0.1, Semantics: features.SemanticsAtMostOnce,
			BatchSize: 1, MessageTimeout: 500 * time.Millisecond,
		},
		Messages: 600,
		Seed:     7,
	}
	var ref Result
	for i, workers := range []int{1, 4, 8} {
		got, err := RunScaledContext(context.Background(), e, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = got
			continue
		}
		if got.Pl != ref.Pl || got.Pd != ref.Pd || got.Acquired != ref.Acquired ||
			got.Report != ref.Report || got.Duration != ref.Duration ||
			got.Throughput != ref.Throughput {
			t.Errorf("workers=%d: aggregate %+v differs from workers=1 %+v", workers, got, ref)
		}
	}
	if ref.Acquired != 600 {
		t.Errorf("acquired %d of 600", ref.Acquired)
	}
}
