package testbed

import (
	"bytes"
	"context"
	"testing"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/obs"
)

// A scaled run fans its independent per-producer simulations out over
// the worker pool; the merged aggregate must be identical for every
// worker count.
func TestRunScaledDeterministicAcrossWorkers(t *testing.T) {
	e := Experiment{
		Features: features.Vector{
			MessageSize: 200, Timeliness: 5 * time.Second, DelayMs: 10,
			LossRate: 0.1, Semantics: features.SemanticsAtMostOnce,
			BatchSize: 1, MessageTimeout: 500 * time.Millisecond,
		},
		Messages: 600,
		Seed:     7,
	}
	var ref Result
	for i, workers := range []int{1, 4, 8} {
		got, err := RunScaledContext(context.Background(), e, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = got
			continue
		}
		if got.Pl != ref.Pl || got.Pd != ref.Pd || got.Acquired != ref.Acquired ||
			got.Report != ref.Report || got.Duration != ref.Duration ||
			got.Throughput != ref.Throughput {
			t.Errorf("workers=%d: aggregate %+v differs from workers=1 %+v", workers, got, ref)
		}
		if got.Metrics != ref.Metrics {
			t.Errorf("workers=%d: metrics differ from workers=1:\n%s\nvs\n%s",
				workers, got.Metrics.Encode(), ref.Metrics.Encode())
		}
		if !bytes.Equal(got.Metrics.Encode(), ref.Metrics.Encode()) {
			t.Errorf("workers=%d: metrics encoding not byte-identical", workers)
		}
	}
	if ref.Acquired != 600 {
		t.Errorf("acquired %d of 600", ref.Acquired)
	}
	if ref.Metrics.SegmentsSent == 0 || ref.Metrics.RecordsEnqueued != 600 {
		t.Errorf("aggregate metrics look empty: %s", ref.Metrics.Encode())
	}
}

// A single (unscaled) run's MetricsSnapshot must be byte-identical run
// to run for a fixed seed — the determinism contract extended to the
// observability layer, with a faulted at-least-once configuration that
// exercises retries, retransmits and RTO backoff.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	e := Experiment{
		Features: features.Vector{
			MessageSize: 200, Timeliness: 5 * time.Second, DelayMs: 40,
			LossRate: 0.12, Semantics: features.SemanticsAtLeastOnce,
			BatchSize: 2, MessageTimeout: 1500 * time.Millisecond,
		},
		Messages: 400,
		Seed:     11,
	}
	ref, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Metrics.Retransmits == 0 || ref.Metrics.RTOMax == 0 {
		t.Errorf("faulted run shows no transport recovery activity: %s", ref.Metrics.Encode())
	}
	for i := 0; i < 2; i++ {
		got, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Metrics.Encode(), ref.Metrics.Encode()) {
			t.Fatalf("rerun %d: metrics not byte-identical:\n%s\nvs\n%s",
				i, got.Metrics.Encode(), ref.Metrics.Encode())
		}
	}
}

// DisableMetrics must leave Result.Metrics zero while the reliability
// results stay identical to an instrumented run.
func TestDisableMetrics(t *testing.T) {
	e := Experiment{
		Features: features.Vector{
			MessageSize: 200, Timeliness: 5 * time.Second, DelayMs: 10,
			LossRate: 0.05, Semantics: features.SemanticsAtLeastOnce,
			BatchSize: 1, MessageTimeout: 1 * time.Second,
		},
		Messages: 200,
		Seed:     3,
	}
	on, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	e.DisableMetrics = true
	off, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if off.Metrics != (MetricsSnapshot{}) {
		t.Errorf("disabled run returned metrics: %s", off.Metrics.Encode())
	}
	if on.Pl != off.Pl || on.Pd != off.Pd || on.Report != off.Report || on.Duration != off.Duration {
		t.Errorf("metrics toggle changed results: on={Pl %v Pd %v} off={Pl %v Pd %v}",
			on.Pl, on.Pd, off.Pl, off.Pd)
	}
}

// A traced run must reject scaling, and a single-producer traced run
// must produce the same results as an untraced one while capturing the
// event stream.
func TestTracerScalingGuardAndNeutrality(t *testing.T) {
	e := Experiment{
		Features: features.Vector{
			MessageSize: 200, Timeliness: 5 * time.Second, DelayMs: 10,
			LossRate: 0.05, Semantics: features.SemanticsAtLeastOnce,
			BatchSize: 1, MessageTimeout: 1 * time.Second,
		},
		Messages: 200,
		Seed:     3,
	}
	plain, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	e.Tracer = obs.NewTracer(1 << 16)
	if _, err := RunScaled(e, 2); err == nil {
		t.Error("scaled traced run did not error")
	}
	traced, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Pl != plain.Pl || traced.Pd != plain.Pd || traced.Metrics != plain.Metrics {
		t.Error("attaching a tracer changed run results")
	}
	if e.Tracer.Total() == 0 {
		t.Error("tracer captured no events")
	}
	evs := e.Tracer.Events()
	sawEnqueue, sawSend := false, false
	for _, ev := range evs {
		switch ev.Type {
		case obs.EvRecordEnqueue:
			sawEnqueue = true
		case obs.EvSegmentSend:
			sawSend = true
		}
		if ev.At < 0 {
			t.Fatalf("event with negative timestamp: %+v", ev)
		}
	}
	if !sawEnqueue || !sawSend {
		t.Errorf("trace missing lifecycle events (enqueue=%v send=%v)", sawEnqueue, sawSend)
	}
}
