package testbed

import (
	"reflect"
	"testing"
	"time"

	"kafkarel/internal/chaos"
	"kafkarel/internal/wire"
)

func verifyTxnRun(t *testing.T, e TxnExperiment, r TxnResult) chaos.Verdict {
	t.Helper()
	v := chaos.VerifyTxn(chaos.TxnInput{
		Isolation:         e.Isolation,
		Plan:              e.FaultPlan,
		Attempts:          r.Attempts,
		InputKeys:         r.InputKeys,
		CommittedOffsets:  r.CommittedOffsets,
		OutputCommitted:   r.OutputCommitted,
		OutputUncommitted: r.OutputUncommitted,
		Completed:         r.Completed,
	})
	for _, viol := range v.Violations {
		t.Errorf("violation: %s", viol)
	}
	return v
}

func TestTxnPipelineHappyPath(t *testing.T) {
	e := TxnExperiment{Seed: 1, Messages: 40}
	r, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("pipeline did not complete: committed offsets %v", r.CommittedOffsets)
	}
	verifyTxnRun(t, e, r)
	for p, keys := range r.InputKeys {
		if !reflect.DeepEqual(r.OutputCommitted[p], keys) {
			t.Errorf("partition %d: committed output %v != input %v", p, r.OutputCommitted[p], keys)
		}
		if r.CommittedOffsets[p] != int64(len(keys)) {
			t.Errorf("partition %d: committed offset %d, want %d", p, r.CommittedOffsets[p], len(keys))
		}
		// Nothing aborted: both isolation views agree.
		if !reflect.DeepEqual(r.OutputUncommitted[p], keys) {
			t.Errorf("partition %d: uncommitted view %v != input %v", p, r.OutputUncommitted[p], keys)
		}
	}
	if r.TxnStats.TxnsCommitted == 0 {
		t.Error("coordinator reports zero committed transactions")
	}
	if r.TxnStats.TxnsAborted != 0 {
		t.Errorf("coordinator reports %d aborted transactions on the happy path", r.TxnStats.TxnsAborted)
	}
}

func TestTxnPipelineDeliberateAborts(t *testing.T) {
	e := TxnExperiment{Seed: 2, Messages: 40, AbortEvery: 3}
	r, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("pipeline did not complete: committed offsets %v", r.CommittedOffsets)
	}
	verifyTxnRun(t, e, r)
	aborted := 0
	for _, a := range r.Attempts {
		if a.Deliberate && a.Outcome == chaos.TxnAborted {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("no deliberate aborts recorded")
	}
	for p, keys := range r.InputKeys {
		// read_committed filters the aborted batches...
		if !reflect.DeepEqual(r.OutputCommitted[p], keys) {
			t.Errorf("partition %d: committed output %v != input %v", p, r.OutputCommitted[p], keys)
		}
	}
	// ...while read_uncommitted sees their residue somewhere.
	residue := 0
	for p := range r.InputKeys {
		residue += len(r.OutputUncommitted[p]) - len(r.OutputCommitted[p])
	}
	if residue == 0 {
		t.Error("aborted batches left no residue in the read_uncommitted view")
	}
	if r.TxnStats.TxnsAborted == 0 {
		t.Error("coordinator reports zero aborted transactions")
	}
}

func TestTxnPipelineProcessorCrashRecovers(t *testing.T) {
	e := TxnExperiment{
		Seed: 3, Messages: 200, TxnTimeout: 100 * time.Millisecond,
		MaxSimTime: 20 * time.Second,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.ProcessorCrash, At: 20 * time.Millisecond, Duration: 100 * time.Millisecond, Member: 0},
			{Kind: chaos.ProcessorCrash, At: 50 * time.Millisecond, Duration: 150 * time.Millisecond, Member: 1},
		}},
	}
	r, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("pipeline did not recover: committed offsets %v", r.CommittedOffsets)
	}
	verifyTxnRun(t, e, r)
	if r.Incarnations[0] < 2 || r.Incarnations[1] < 2 {
		t.Errorf("crashed processors did not reincarnate: %v", r.Incarnations)
	}
	for p, keys := range r.InputKeys {
		if !reflect.DeepEqual(r.OutputCommitted[p], keys) {
			t.Errorf("partition %d: committed output != input after crash recovery", p)
		}
	}
}

func TestTxnPipelineZombieFenced(t *testing.T) {
	e := TxnExperiment{
		Seed: 4, Messages: 200, TxnTimeout: 100 * time.Millisecond,
		MaxSimTime: 20 * time.Second,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.ProcessorZombie, At: 15 * time.Millisecond, Member: 0},
			{Kind: chaos.ProcessorZombie, At: 40 * time.Millisecond, Member: 1},
		}},
	}
	r, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("pipeline did not survive zombies: committed offsets %v", r.CommittedOffsets)
	}
	verifyTxnRun(t, e, r)
	if r.Incarnations[0] < 2 || r.Incarnations[1] < 2 {
		t.Errorf("zombie incarnations missing: %v", r.Incarnations)
	}
	fenced := 0
	for _, a := range r.Attempts {
		if a.Outcome == chaos.TxnFenced {
			fenced++
		}
	}
	// The zombie race usually fences somebody; the invariant that matters
	// (no superseded commit lands) is checked by verifyTxnRun above.
	t.Logf("attempts=%d fenced=%d incarnations=%v", len(r.Attempts), fenced, r.Incarnations)
}

func TestTxnPipelineBrokerCrash(t *testing.T) {
	e := TxnExperiment{
		Seed: 5, Messages: 120, TxnTimeout: 150 * time.Millisecond,
		MaxSimTime: 20 * time.Second,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.BrokerCrash, At: 30 * time.Millisecond, Duration: 200 * time.Millisecond, Broker: 0},
			{Kind: chaos.BrokerCrash, At: 300 * time.Millisecond, Duration: 200 * time.Millisecond, Broker: 1},
		}},
	}
	r, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("pipeline did not ride out broker crashes: committed offsets %v", r.CommittedOffsets)
	}
	verifyTxnRun(t, e, r)
}

func TestTxnPipelineDeterministic(t *testing.T) {
	e := TxnExperiment{
		Seed: 6, Messages: 100, AbortEvery: 4, TxnTimeout: 100 * time.Millisecond,
		MaxSimTime: 20 * time.Second,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.ProcessorCrash, At: 25 * time.Millisecond, Duration: 80 * time.Millisecond, Member: 1},
			{Kind: chaos.ProcessorZombie, At: 60 * time.Millisecond, Member: 0},
		}},
	}
	a, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same experiment diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestTxnPipelineReadUncommittedResidueClassified(t *testing.T) {
	e := TxnExperiment{
		Seed: 7, Messages: 40, AbortEvery: 2,
		Isolation: wire.ReadUncommitted,
	}
	r, err := RunTxn(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("pipeline did not complete: committed offsets %v", r.CommittedOffsets)
	}
	v := verifyTxnRun(t, e, r)
	found := false
	for _, c := range v.Classified {
		if found = true; found {
			t.Logf("classified: %s", c)
			break
		}
	}
	if !found {
		t.Error("read_uncommitted residue was not classified as configuration-expected")
	}
}
