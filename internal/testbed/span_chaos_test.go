package testbed

import (
	"bytes"
	"context"
	"testing"

	"kafkarel/internal/features"
)

// TestSpanLifecycleUnderChaos pins the delivery-span accounting while
// group members crash and restart mid-stream: under exactly-once
// semantics every application-accepted key produces exactly one
// end-to-end latency sample — no samples vanish across rebalances and
// redeliveries never double-observe — cross-checked against the
// drained-key reconciliation and the chaos e2e verifier, and the whole
// surface stays byte-identical at 1, 4, and 8 workers.
func TestSpanLifecycleUnderChaos(t *testing.T) {
	f := smallFleet()
	f.Features.Semantics = features.SemanticsExactlyOnce
	f.Features.LossRate = 0.02
	f.TimelineInterval = 0
	f.ConsumerFaults = true
	run := func(workers int) FleetResult {
		t.Helper()
		res, err := RunFleetContext(context.Background(), f, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(1)
	if !res.Completed {
		t.Fatal("fleet did not complete")
	}
	m := res.Metrics

	// Exactly one delivery-span sample per fresh offset the application
	// accepted, and — with idempotent dedup keeping each key at one log
	// offset — exactly one per drained key.
	if m.SpanDelivery.Total() != m.ConsumerDelivered {
		t.Errorf("delivery-span samples %d != fresh deliveries %d",
			m.SpanDelivery.Total(), m.ConsumerDelivered)
	}
	var drained int64
	var rebalances uint64
	for _, tr := range res.Topics {
		drained += tr.Drained
		rebalances += tr.Rebalances
		if tr.E2EViolations != 0 {
			t.Errorf("topic %s: %d e2e violations", tr.Topic, tr.E2EViolations)
		}
		if !tr.GroupDrained {
			t.Errorf("topic %s: group not drained", tr.Topic)
		}
	}
	if uint64(drained) != m.ConsumerDelivered {
		t.Errorf("drained keys %d != delivery-span samples %d (want one sample per key)",
			drained, m.SpanDelivery.Total())
	}
	// The chaos actually engaged: crash-driven rebalances beyond the
	// initial join happened in every shard (initial joins alone would
	// be one per member change).
	if rebalances == 0 {
		t.Fatal("no rebalances; consumer chaos did not engage")
	}
	// Commit spans fire only for acked commits, one sample each.
	if m.SpanCommit.Total() != m.ConsumerCommitAcks {
		t.Errorf("commit-span samples %d != commit acks %d",
			m.SpanCommit.Total(), m.ConsumerCommitAcks)
	}

	// Worker-count independence of the full byte surface.
	card := res.Scorecard()
	for _, workers := range []int{4, 8} {
		if got := run(workers).Scorecard(); !bytes.Equal(got, card) {
			t.Errorf("scorecard differs at %d workers", workers)
		}
	}
}
