package testbed

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"kafkarel/internal/chaos"
	"kafkarel/internal/features"
	"kafkarel/internal/obs"
)

func fleetVector() features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        5,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      2,
		PollInterval:   2 * time.Millisecond,
		MessageTimeout: 2 * time.Second,
	}
}

func smallFleet() Fleet {
	return Fleet{
		Features:          fleetVector(),
		Producers:         9,
		Topics:            3,
		Partitions:        4,
		Messages:          600,
		Seed:              11,
		ConsumersPerTopic: 2,
		TimelineInterval:  time.Second,
	}
}

// TestFleetCleanRun pins the happy path: a clean network delivers every
// message exactly once across all topics, the consumer groups drain
// everything, and every per-producer key range reconciles without
// foreign keys.
func TestFleetCleanRun(t *testing.T) {
	res, err := RunFleet(smallFleet())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("fleet did not complete")
	}
	if res.Acquired != 600 {
		t.Errorf("Acquired = %d, want 600", res.Acquired)
	}
	if res.Pl != 0 || res.Pd != 0 {
		t.Errorf("Pl = %v Pd = %v on a clean network", res.Pl, res.Pd)
	}
	if res.Report.Foreign != 0 {
		t.Errorf("Foreign = %d; key ranges overlap or leak across topics", res.Report.Foreign)
	}
	if res.Report.Distinct != 600 {
		t.Errorf("Distinct = %d, want 600", res.Report.Distinct)
	}
	if len(res.Topics) != 3 {
		t.Fatalf("topics = %d, want 3", len(res.Topics))
	}
	var drained int64
	for _, tr := range res.Topics {
		if tr.Producers != 3 {
			t.Errorf("topic %s has %d producers, want 3", tr.Topic, tr.Producers)
		}
		if !tr.GroupDrained {
			t.Errorf("topic %s: group did not drain cleanly", tr.Topic)
		}
		if tr.E2EViolations != 0 {
			t.Errorf("topic %s: %d e2e violations on a clean run", tr.Topic, tr.E2EViolations)
		}
		drained += tr.Drained
	}
	if drained != 600 {
		t.Errorf("groups drained %d records, want 600", drained)
	}
	// One producer timeline per producer plus one topic timeline per topic.
	if want := 9 + 3; len(res.Timelines) != want {
		t.Fatalf("timelines = %d, want %d", len(res.Timelines), want)
	}
}

// TestFleetScorecardByteIdenticalAcrossWorkers is the fleet determinism
// contract: scorecard and merged timeline CSV bytes must not depend on
// the worker count.
func TestFleetScorecardByteIdenticalAcrossWorkers(t *testing.T) {
	f := smallFleet()
	// A lossy network plus a broker outage makes the shards actually
	// diverge in timing, so identical bytes are meaningful.
	f.Features.LossRate = 0.05
	f.FaultPlan = chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.BrokerCrash, At: 500 * time.Millisecond, Broker: 1},
		{Kind: chaos.BrokerRecover, At: time.Second, Broker: 1},
	}}
	render := func(workers int) ([]byte, []byte) {
		t.Helper()
		res, err := RunFleetContext(context.Background(), f, workers)
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := obs.WriteMergedCSV(&csv, res.Timelines); err != nil {
			t.Fatal(err)
		}
		return res.Scorecard(), csv.Bytes()
	}
	card1, csv1 := render(1)
	for _, workers := range []int{4, 8} {
		cardN, csvN := render(workers)
		if !bytes.Equal(card1, cardN) {
			t.Errorf("scorecard differs between workers=1 and workers=%d:\n%s\nvs\n%s", workers, card1, cardN)
		}
		if !bytes.Equal(csv1, csvN) {
			t.Errorf("merged timeline CSV differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestFleetTimelineSumsMatchMetrics extends the timeline invariant to
// entities: per-producer interval columns sum to the fleet's producer
// counters, and per-topic broker columns sum to the merged broker
// counters.
func TestFleetTimelineSumsMatchMetrics(t *testing.T) {
	f := smallFleet()
	f.Features.LossRate = 0.02
	res, err := RunFleet(f)
	if err != nil {
		t.Fatal(err)
	}
	var acked, lost, segs, retrans, appends uint64
	for _, tl := range res.Timelines {
		producerEntity := strings.Contains(tl.Entity(), "/")
		for _, r := range tl.Rows() {
			if producerEntity {
				acked += r.Acked
				lost += r.Lost
				segs += r.SegmentsSent
				retrans += r.Retransmits
			} else {
				appends += r.Appends
			}
		}
	}
	if acked != res.Producer.Delivered {
		t.Errorf("Σ acked over producer entities = %d, want %d", acked, res.Producer.Delivered)
	}
	if lost != res.Producer.Lost {
		t.Errorf("Σ lost = %d, want %d", lost, res.Producer.Lost)
	}
	if segs != res.Metrics.SegmentsSent {
		t.Errorf("Σ segments = %d, want merged %d", segs, res.Metrics.SegmentsSent)
	}
	if retrans != res.Metrics.Retransmits {
		t.Errorf("Σ retransmits = %d, want merged %d", retrans, res.Metrics.Retransmits)
	}
	if appends != res.Metrics.BrokerAppends {
		t.Errorf("Σ appends over topic entities = %d, want merged %d", appends, res.Metrics.BrokerAppends)
	}
}

// TestFleetValidation covers the rejected shapes.
func TestFleetValidation(t *testing.T) {
	base := smallFleet()
	cases := map[string]func(*Fleet){
		"no producers":       func(f *Fleet) { f.Producers = 0 },
		"no topics":          func(f *Fleet) { f.Topics = 0 },
		"topics > producers": func(f *Fleet) { f.Topics = f.Producers + 1 },
		"no partitions":      func(f *Fleet) { f.Partitions = 0 },
		"messages < fleet":   func(f *Fleet) { f.Messages = f.Producers - 1 },
		"negative users/sec": func(f *Fleet) { f.UsersPerSec = -1 },
		"negative consumers": func(f *Fleet) { f.ConsumersPerTopic = -1 },
		"consumer faults need 2 members": func(f *Fleet) {
			f.ConsumerFaults = true
			f.ConsumersPerTopic = 1
		},
		"consumer fault member out of range": func(f *Fleet) {
			f.FaultPlan = chaos.Plan{Faults: []chaos.Fault{
				{Kind: chaos.ConsumerCrash, At: time.Millisecond, Member: 5, Duration: time.Second},
			}}
		},
		"non-broker fault": func(f *Fleet) {
			f.FaultPlan = chaos.Plan{Faults: []chaos.Fault{{Kind: chaos.LossBurst, At: time.Second, Duration: time.Second}}}
		},
		"invalid fault broker": func(f *Fleet) {
			f.FaultPlan = chaos.Plan{Faults: []chaos.Fault{{Kind: chaos.BrokerCrash, At: 0, Broker: 99}}}
		},
	}
	for name, mutate := range cases {
		f := base
		mutate(&f)
		if _, err := RunFleet(f); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFleetConsumerFaultsDeterministic crashes and restarts group
// members mid-stream in every shard under exactly-once semantics: the
// survivors rebalance and take over, the deduped application stream
// still reconciles with zero loss and zero duplicates, the e2e checker
// stays silent, and the scorecard bytes are worker-count independent.
func TestFleetConsumerFaultsDeterministic(t *testing.T) {
	f := smallFleet()
	f.Features.Semantics = features.SemanticsExactlyOnce
	f.TimelineInterval = 0
	f.ConsumerFaults = true
	render := func(workers int) FleetResult {
		t.Helper()
		res, err := RunFleetContext(context.Background(), f, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := render(1)
	if !res.Completed {
		t.Fatal("fleet did not complete")
	}
	if res.Report.NLost != 0 || res.Report.NDuplicated != 0 {
		t.Errorf("lost=%d dup=%d under consumer crashes with dedup", res.Report.NLost, res.Report.NDuplicated)
	}
	var crashesSeen bool
	for _, tr := range res.Topics {
		if !tr.GroupDrained {
			t.Errorf("topic %s: group did not recover and drain after member crashes", tr.Topic)
		}
		if tr.E2EViolations != 0 {
			t.Errorf("topic %s: %d e2e violations", tr.Topic, tr.E2EViolations)
		}
		if tr.Rebalances > 1 {
			crashesSeen = true
		}
	}
	if !crashesSeen {
		t.Error("no shard rebalanced more than once; consumer faults not injected?")
	}
	card1 := res.Scorecard()
	for _, workers := range []int{4, 8} {
		if cardN := render(workers).Scorecard(); !bytes.Equal(card1, cardN) {
			t.Errorf("scorecard differs between workers=1 and workers=%d:\n%s\nvs\n%s", workers, card1, cardN)
		}
	}
}

// TestFleetUsersPerSecSlowsProducers checks the Sec. IV-C load
// derivation: an aggregate target far below full load must stretch the
// run compared to full-speed polling.
func TestFleetUsersPerSecSlowsProducers(t *testing.T) {
	f := smallFleet()
	f.TimelineInterval = 0
	fast, err := RunFleet(f)
	if err != nil {
		t.Fatal(err)
	}
	f.UsersPerSec = 200 // 600 msgs at 200/s aggregate ≈ 3 s
	slow, err := RunFleet(f)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Duration <= fast.Duration {
		t.Errorf("users/sec target did not slow the fleet: %v vs %v", slow.Duration, fast.Duration)
	}
	if slow.Duration < 2*time.Second {
		t.Errorf("Duration = %v, want ≈3 s at 200 users/sec", slow.Duration)
	}
	if !slow.Completed || slow.Pl != 0 {
		t.Errorf("throttled fleet: completed=%t Pl=%v", slow.Completed, slow.Pl)
	}
}

// TestFleetAcceptanceScale is the issue's acceptance run: ≥1000
// producers across ≥8 topics and ≥32 partitions with timelines enabled,
// completing with a coherent scorecard.
func TestFleetAcceptanceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet acceptance scale run")
	}
	f := Fleet{
		Features:         fleetVector(),
		Producers:        1000,
		Topics:           8,
		Partitions:       32,
		Messages:         3000,
		Seed:             42,
		TimelineInterval: time.Second,
	}
	res, err := RunFleet(f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("acceptance fleet did not complete")
	}
	if res.Acquired != 3000 || res.Report.Distinct != 3000 {
		t.Errorf("acquired/distinct = %d/%d, want 3000/3000", res.Acquired, res.Report.Distinct)
	}
	if res.Report.Foreign != 0 {
		t.Errorf("Foreign = %d", res.Report.Foreign)
	}
	if want := 1000 + 8; len(res.Timelines) != want {
		t.Errorf("timelines = %d, want %d", len(res.Timelines), want)
	}
	card := res.Scorecard()
	if !bytes.Contains(card, []byte("topic t007 ")) {
		t.Errorf("scorecard missing topic t007:\n%s", card)
	}
}
