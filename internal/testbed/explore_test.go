package testbed

import (
	"testing"
	"time"

	"kafkarel/internal/features"
)

// TestExploreShapes is a manual calibration aid: run with
//
//	go test ./internal/testbed/ -run TestExploreShapes -v -explore
//
// It prints the operating points behind Figs. 4-8 so the Calibration
// constants can be tuned. It is skipped in normal runs.
func TestExploreShapes(t *testing.T) {
	if !*exploreFlag {
		t.Skip("pass -explore to run")
	}
	base := features.Vector{
		Timeliness:     5 * time.Second,
		Semantics:      features.SemanticsAtMostOnce,
		BatchSize:      1,
		MessageTimeout: 500 * time.Millisecond,
	}
	run := func(v features.Vector, n int) Result {
		res, err := Run(Experiment{Features: v, Messages: n, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	t.Log("=== Fig 4: Pl vs M at D=100ms L=19% ===")
	for _, m := range []int{50, 100, 200, 300, 500, 1000} {
		for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
			v := base
			v.MessageSize = m
			v.DelayMs = 100
			v.LossRate = 0.19
			v.Semantics = sem
			v.MessageTimeout = 1500 * time.Millisecond
			res := run(v, 3000)
			t.Logf("M=%4d sem=%d Pl=%.3f Pd=%.4f thr=%.1f/s dur=%v acq=%d",
				m, sem, res.Pl, res.Pd, res.Throughput, res.Duration.Round(time.Second), res.Acquired)
		}
	}

	t.Log("=== Fig 5: Pl vs To, no faults, full load, M=200 ===")
	for _, to := range []int{250, 500, 1000, 1500, 2000, 2500} {
		for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
			v := base
			v.MessageSize = 200
			v.Semantics = sem
			v.MessageTimeout = time.Duration(to) * time.Millisecond
			res := run(v, 5000)
			t.Logf("To=%4dms sem=%d Pl=%.3f lat(mean=%.0f max=%.0f)ms",
				to, sem, res.Pl, res.Latency.Mean(), res.Latency.Max())
		}
	}

	t.Log("=== Fig 6: Pl vs delta, To=500ms, M=200, at-most-once ===")
	for _, dm := range []int{0, 10, 30, 50, 70, 90} {
		v := base
		v.MessageSize = 200
		v.PollInterval = time.Duration(dm) * time.Millisecond
		res := run(v, 5000)
		t.Logf("delta=%3dms Pl=%.3f", dm, res.Pl)
	}

	t.Log("=== Fig 7: Pl vs L for B in {1,2,5,10}, M=200, both semantics ===")
	for _, b := range []int{1, 2, 5, 10} {
		for _, l := range []float64{0, 0.05, 0.08, 0.13, 0.20, 0.30, 0.40} {
			for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
				v := base
				v.MessageSize = 200
				v.BatchSize = b
				v.LossRate = l
				v.Semantics = sem
				res := run(v, 3000)
				t.Logf("B=%2d L=%.2f sem=%d Pl=%.3f Pd=%.4f", b, l, sem, res.Pl, res.Pd)
			}
		}
	}

	t.Log("=== Fig 8: Pd vs B at-least-once, various L, To=3s, D=100ms ===")
	for _, l := range []float64{0.05, 0.10, 0.15, 0.20} {
		for _, b := range []int{1, 2, 4, 6, 8, 10} {
			v := base
			v.MessageSize = 200
			v.BatchSize = b
			v.LossRate = l
			v.DelayMs = 100
			v.Semantics = features.SemanticsAtLeastOnce
			v.MessageTimeout = 3 * time.Second
			res := run(v, 3000)
			t.Logf("L=%.2f B=%2d Pd=%.4f Pl=%.3f", l, b, res.Pd, res.Pl)
		}
	}
}
