package testbed

import (
	"testing"
	"time"

	"kafkarel/internal/chaos"
	"kafkarel/internal/features"
	"kafkarel/internal/wire"
)

// TestBrokerFailureEvents exercises the broker-failure extension: the
// partition leader crashes mid-run, a follower takes over, and the
// producer's retries ride out the outage.
func TestBrokerFailureEvents(t *testing.T) {
	v := cleanVector()
	v.MessageTimeout = 10 * time.Second
	e := Experiment{
		Features:       v,
		Messages:       400,
		Seed:           3,
		MaxRetries:     20,
		RequestTimeout: 200 * time.Millisecond,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.BrokerCrash, At: 2 * time.Second, Broker: 0},
			{Kind: chaos.BrokerRecover, At: 4 * time.Second, Broker: 0},
		}},
	}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	// Leader failover keeps the stream alive; retries recover everything.
	if res.Pl > 0.02 {
		t.Errorf("Pl = %v despite failover and retries", res.Pl)
	}
	if res.Producer.ByCase[4] == 0 { // Case4: delivered by retry
		t.Log("note: no retry-delivered messages; outage may have fallen between requests")
	}
}

func TestBrokerFailureAllDownCausesLoss(t *testing.T) {
	v := cleanVector()
	v.MessageTimeout = 800 * time.Millisecond
	e := Experiment{
		Features: v,
		Messages: 400,
		Seed:     4,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.BrokerCrash, At: 2 * time.Second, Broker: 0},
			{Kind: chaos.BrokerCrash, At: 2 * time.Second, Broker: 1},
			{Kind: chaos.BrokerCrash, At: 2 * time.Second, Broker: 2},
			{Kind: chaos.BrokerRecover, At: 6 * time.Second, Broker: 0},
			{Kind: chaos.BrokerRecover, At: 6 * time.Second, Broker: 1},
			{Kind: chaos.BrokerRecover, At: 6 * time.Second, Broker: 2},
		}},
	}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pl == 0 {
		t.Error("no loss despite a 4s total outage against a 0.8s budget")
	}
	// After recovery the tail of the stream lands, so loss is partial.
	if res.Pl > 0.9 {
		t.Errorf("Pl = %v; recovery never helped", res.Pl)
	}
}

// TestMinISRSurfacesProduceErrors crashes a follower under acks=all
// with MinISR = 3: the cluster must fail produce requests fast with
// ErrNotEnoughReplicas, and the per-error-code counters must surface
// the rejections in the metrics snapshot.
func TestMinISRSurfacesProduceErrors(t *testing.T) {
	v := cleanVector()
	v.Semantics = features.SemanticsExactlyOnce
	v.MessageTimeout = 2 * time.Second
	e := Experiment{
		Features:       v,
		Messages:       400,
		Seed:           5,
		MinISR:         3,
		MaxRetries:     20,
		RequestTimeout: 200 * time.Millisecond,
		MaxSimTime:     60 * time.Second,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.BrokerCrash, At: time.Second, Broker: 2},
			{Kind: chaos.BrokerRecover, At: 3 * time.Second, Broker: 2},
		}},
	}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.ProduceErrors[wire.ErrNotEnoughReplicas]; got == 0 {
		t.Error("no ErrNotEnoughReplicas counted despite a follower outage under MinISR 3")
	}
	for c, n := range res.Metrics.ProduceErrors {
		if n > 0 && wire.ErrorCode(c) != wire.ErrNotEnoughReplicas {
			t.Errorf("unexpected produce errors: %d x %v", n, wire.ErrorCode(c))
		}
	}
}

func TestBrokerFailureValidation(t *testing.T) {
	e := Experiment{
		Features: cleanVector(),
		Messages: 10,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.BrokerCrash, At: 0, Broker: 99},
		}},
	}
	if _, err := Run(e); err == nil {
		t.Error("unknown broker accepted")
	}
}
