package testbed

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Calibration holds the producer-host cost constants that stand in for
// the paper's CPU-capped Docker containers. The paper fixes the
// producer's hardware resources (Sec. III-D: "we assume that the
// hardware resources for a producer are fixed") and its measured service
// rate μ depends strongly on the message size M (Sec. IV-A, citing [6]).
//
// The defaults below were calibrated so the emergent behaviour of the
// full simulation matches the paper's reported operating points — e.g.
// the full-load intake rate for 100-byte messages (~300 msg/s) sits far
// above the degraded TCP capacity at 19 % loss (driving Fig. 4's 85 % /
// 63 % losses), while the rate for 1000-byte messages (~1 msg/s) sits
// below it (both curves < 1 %). See DESIGN.md §5 and EXPERIMENTS.md for
// the calibration story and residual deviations.
type Calibration struct {
	// IOCoeffMicros and IOExp define the per-message source-acquisition
	// cost IOTime(M) = IOCoeffMicros · M^IOExp microseconds — the
	// "highest speed that I/O devices can handle" at full load
	// (Sec. IV-C). The superlinear exponent reflects the steep measured
	// μ(M) dependence of [6] on the containerised producer.
	IOCoeffMicros float64
	IOExp         float64
	// SerFactor scales the send-path serialisation cost relative to the
	// mean IOTime; below 1 keeps nominal capacity above full-load intake
	// so congestion comes in episodes rather than unbounded growth.
	SerFactor float64
	// Jitter is the ± relative uniform jitter on both costs.
	Jitter float64
	// Stall* give the send path a heavy-tailed service component (GC
	// pauses, container CPU throttling): each record's serialisation
	// stalls with probability StallProb for a uniform duration in
	// [StallMinMs, StallMaxMs]. In M/G/1 terms this creates the large
	// E[S²] that makes full-load waiting times heavy-tailed — the physics
	// behind Fig. 5's T_o curve and Fig. 6's δ=0 point — while keeping
	// waits λ-sensitive so increasing δ drains the tail.
	StallProb  float64
	StallMinMs float64
	StallMaxMs float64
	// SocketBuffer is the TCP send-buffer size in bytes; when degraded
	// TCP fills it, records back up in the accumulator where their
	// delivery budgets expire.
	SocketBuffer int
	// Bandwidth is the link rate in bits per second.
	Bandwidth float64
}

// DefaultCalibration returns the constants used throughout the
// reproduction.
func DefaultCalibration() Calibration {
	return Calibration{
		IOCoeffMicros: 0.43,
		IOExp:         2.11,
		SerFactor:     0.6,
		Jitter:        0.15,
		StallProb:     0.009,
		StallMinMs:    700,
		StallMaxMs:    1300,
		SocketBuffer:  32 * 1024,
		Bandwidth:     100e6,
	}
}

// Validate reports the first nonsensical constant.
func (c Calibration) Validate() error {
	switch {
	case c.IOCoeffMicros <= 0 || c.IOExp <= 0:
		return fmt.Errorf("testbed: IO cost constants must be positive")
	case c.SerFactor <= 0:
		return fmt.Errorf("testbed: serialisation factor must be positive")
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("testbed: jitter %v outside [0,1)", c.Jitter)
	case c.StallProb < 0 || c.StallProb > 1:
		return fmt.Errorf("testbed: stall probability %v outside [0,1]", c.StallProb)
	case c.StallMaxMs < c.StallMinMs:
		return fmt.Errorf("testbed: stall max below min")
	case c.SocketBuffer <= 0:
		return fmt.Errorf("testbed: socket buffer must be positive")
	case c.Bandwidth <= 0:
		return fmt.Errorf("testbed: bandwidth must be positive")
	default:
		return nil
	}
}

// ioMeanMicros returns the mean acquisition cost in microseconds for a
// message of m bytes.
func (c Calibration) ioMeanMicros(m int) float64 {
	if m < 1 {
		m = 1
	}
	return c.IOCoeffMicros * math.Pow(float64(m), c.IOExp)
}

// FullLoadRate returns the mean full-load intake rate 1/IOTime(M) in
// messages per second — the λ of Sec. IV-C at δ = 0.
func (c Calibration) FullLoadRate(m int) float64 {
	return 1e6 / c.ioMeanMicros(m)
}

// costModel implements producer.CostModel with the calibrated constants.
type costModel struct {
	cal Calibration
	rng *rand.Rand
}

func newCostModel(cal Calibration, rng *rand.Rand) *costModel {
	return &costModel{cal: cal, rng: rng}
}

func (cm *costModel) jitter() float64 {
	if cm.cal.Jitter == 0 {
		return 1
	}
	return 1 - cm.cal.Jitter + 2*cm.cal.Jitter*cm.rng.Float64()
}

// IOTime implements producer.CostModel.
func (cm *costModel) IOTime(payloadBytes int) time.Duration {
	us := cm.cal.ioMeanMicros(payloadBytes) * cm.jitter()
	return time.Duration(us * float64(time.Microsecond))
}

// SerTime implements producer.CostModel.
func (cm *costModel) SerTime(payloadBytes int) time.Duration {
	us := cm.cal.ioMeanMicros(payloadBytes) * cm.cal.SerFactor * cm.jitter()
	d := time.Duration(us * float64(time.Microsecond))
	if cm.cal.StallProb > 0 && cm.rng.Float64() < cm.cal.StallProb {
		stall := cm.cal.StallMinMs + (cm.cal.StallMaxMs-cm.cal.StallMinMs)*cm.rng.Float64()
		d += time.Duration(stall * float64(time.Millisecond))
	}
	return d
}
