package testbed

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"time"

	"kafkarel/internal/chaos"
	"kafkarel/internal/cluster"
	"kafkarel/internal/consumer"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
	"kafkarel/internal/producer"
	"kafkarel/internal/stats"
	"kafkarel/internal/transport"
	"kafkarel/internal/workload"
)

// Fleet describes a fleet-scale run: N producers spread over T topics,
// each topic carrying P partitions on its own three-broker cluster,
// with keyed partition routing and a consumer group draining every
// topic afterwards. One topic is one shard — an independent simulation
// with index-derived seeds — so shards fan out over exprun workers and
// merge deterministically: the scorecard and the merged entity
// timelines are byte-identical at any worker count.
//
// This generalises the paper's one-producer/one-partition testbed shape
// toward its future-work scale-out scenario; the per-producer delivery
// mechanics (Sec. III-E) are unchanged.
type Fleet struct {
	// Features carries the stream/network/config features every producer
	// runs with. PollInterval is overridden when UsersPerSec is set.
	Features features.Vector
	// Producers is the fleet-wide producer count, spread as evenly as
	// possible over the topics (earlier topics take the remainder).
	Producers int
	// Topics is the topic (= shard) count.
	Topics int
	// Partitions is the per-topic partition count; producers route to
	// partitions by key hash (producer.PartitionKeyed).
	Partitions int
	// Messages is the fleet-wide message budget, spread as evenly as
	// possible over the producers (earlier producers take the remainder).
	Messages int
	// Seed makes the whole fleet reproducible; shard and entity seeds
	// derive from it by index.
	Seed uint64
	// UsersPerSec, when positive, is the aggregate offered load: each
	// producer's poll interval δ is derived from the Sec. IV-C scaling
	// rule so that Producers producers together offer this many
	// messages/sec (clamped at full load when the target exceeds it).
	UsersPerSec float64
	// ConsumersPerTopic is each topic's consumer-group size (default 1).
	// The group runs in-simulation through each shard's coordinator:
	// members poll alongside the producers, commit through the
	// replicated offsets log, and leave once the shard's producers are
	// done and everything is drained and committed.
	ConsumersPerTopic int
	// Groups fans each topic's consumption out to that many independent
	// consumer groups (ids "g00", "g01", ...), each ConsumersPerTopic
	// strong, sharing the shard's coordinator and offsets log. The
	// default (0 or 1) runs the single legacy group "fleet". Multi-group
	// shards add one scorecard line and (under TimelineInterval) one
	// entity timeline ("t003/g01") per group.
	Groups int
	// Cooperative runs every group under the incremental cooperative
	// rebalance protocol (KIP-429) instead of the eager default.
	Cooperative bool
	// ConsumerFaults synthesizes deterministic per-shard consumer-member
	// crash/restart faults (derived from the shard seed) on top of
	// FaultPlan, forcing rebalances mid-stream — independently per
	// consumer group when Groups > 1. Requires ConsumersPerTopic >= 2 so
	// a survivor can take over.
	ConsumerFaults bool
	// ReplicationFactor and MinISR mirror Experiment (defaults 3 / 1).
	ReplicationFactor int
	MinISR            int
	// BrokerFlushInterval mirrors Experiment.
	BrokerFlushInterval time.Duration
	// MaxSimTime caps each shard's virtual duration (0 = none).
	MaxSimTime time.Duration
	// Calibration overrides the host cost constants (zero value: default).
	Calibration Calibration
	// TimelineInterval, when positive, samples entity-tagged timelines:
	// one per producer ("t003/p0007": netem, transport and producer
	// probes) and one per topic ("t003": broker probe), all returned in
	// FleetResult.Timelines in shard-then-producer order.
	TimelineInterval time.Duration
	// DisableMetrics switches off the sharded registries.
	DisableMetrics bool
	// FaultPlan injects broker faults (crash, recover, unclean restart,
	// slowdown) into every shard. Network and connection faults are
	// per-path and therefore rejected here — use a single-producer
	// Experiment for those.
	FaultPlan chaos.Plan
	// Producer plumbing overrides, as in Experiment.
	QueueLimit      int
	MaxInFlight     int
	MaxRetries      int
	RequestTimeout  time.Duration
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	LingerTime      time.Duration
}

// Validate reports the first invalid fleet parameter.
func (f Fleet) Validate() error {
	switch {
	case f.Producers <= 0:
		return fmt.Errorf("testbed: fleet producer count %d <= 0", f.Producers)
	case f.Topics <= 0:
		return fmt.Errorf("testbed: fleet topic count %d <= 0", f.Topics)
	case f.Topics > f.Producers:
		return fmt.Errorf("testbed: fleet has %d topics but only %d producers", f.Topics, f.Producers)
	case f.Partitions <= 0:
		return fmt.Errorf("testbed: fleet partition count %d <= 0", f.Partitions)
	case f.Messages < f.Producers:
		return fmt.Errorf("testbed: %d messages across %d producers", f.Messages, f.Producers)
	case f.UsersPerSec < 0:
		return fmt.Errorf("testbed: negative users/sec")
	case f.ConsumersPerTopic < 0:
		return fmt.Errorf("testbed: negative consumers per topic")
	case f.Groups < 0:
		return fmt.Errorf("testbed: negative consumer-group count")
	}
	if f.ConsumerFaults && exprun.DefInt(f.ConsumersPerTopic, 1) < 2 {
		return fmt.Errorf("testbed: consumer faults need at least 2 consumers per topic")
	}
	if err := f.Features.Validate(); err != nil {
		return fmt.Errorf("testbed: %w", err)
	}
	for i, ft := range f.FaultPlan.Faults {
		switch ft.Kind {
		case chaos.BrokerCrash, chaos.BrokerRecover, chaos.UncleanRestart, chaos.BrokerSlow:
		case chaos.ConsumerCrash:
			if int(ft.Member) >= exprun.DefInt(f.ConsumersPerTopic, 1) {
				return fmt.Errorf("testbed: fleet fault %d targets consumer %d of %d", i, ft.Member, f.ConsumersPerTopic)
			}
			if int(ft.Group) >= exprun.DefInt(f.Groups, 1) {
				return fmt.Errorf("testbed: fleet fault %d targets group %d of %d", i, ft.Group, exprun.DefInt(f.Groups, 1))
			}
		default:
			return fmt.Errorf("testbed: fleet fault %d (%s): only broker and consumer faults apply fleet-wide", i, ft.Kind)
		}
	}
	return nil
}

// FleetTopicResult is one shard's (topic's) aggregate.
type FleetTopicResult struct {
	Topic      string
	Producers  int
	Partitions int
	// Acquired is the shard's ground-truth denominator (messages its
	// producers took in).
	Acquired uint64
	// Report is the shard's ReconcileRanges reconciliation over the
	// consumer group's drained records.
	Report consumer.Report
	// Producer sums the shard's producer-view case distributions.
	Producer producer.Counts
	// Metrics is the shard registry's snapshot (zero when disabled).
	Metrics MetricsSnapshot
	// Latency merges the shard producers' delivery-latency summaries.
	Latency stats.Summary
	// Throughput is distinct delivered messages per simulated second.
	Throughput float64
	// Duration is the shard's simulated run time (when the last producer
	// finished, or the cut-off).
	Duration time.Duration
	// Completed reports whether every producer drained its source.
	Completed bool
	// Drained is how many records the consumer group delivered to the
	// application.
	Drained int64
	// GroupDrained reports whether every group member left cleanly with
	// its partitions consumed to the high watermark and committed.
	GroupDrained bool
	// Rebalances counts assignments the group's members applied;
	// Expirations counts coordinator-side session expirations.
	Rebalances  uint64
	Expirations uint64
	// E2EViolations counts end-to-end delivery invariant violations
	// (chaos.VerifyE2E) in the shard.
	E2EViolations int
	// CoopViolations counts cooperative-rebalance invariant violations
	// (chaos.VerifyCoop, counter-level: the redelivery bound) in the
	// shard.
	CoopViolations int
	// Lag is the per-partition records between durable committed
	// offsets and high watermarks at the end of the shard (zero
	// everywhere for a drained group).
	Lag []int64
	// Groups holds the per-group accounting in group-id order. A
	// single-group shard folds it into the fields above; multi-group
	// shards additionally sum (Drained, Rebalances, violations), AND
	// (GroupDrained) and mirror group 0 (Report, Lag) there.
	Groups []FleetGroupResult
}

// FleetGroupResult is one consumer group's share of a shard: every
// group independently drains the full topic through the shared
// coordinator, so each gets its own reconciliation and verdicts.
type FleetGroupResult struct {
	ID             string
	Drained        int64
	GroupDrained   bool
	Rebalances     uint64
	Expirations    uint64
	CoopFollowUps  uint64
	E2EViolations  int
	CoopViolations int
	Report         consumer.Report
	Lag            []int64
}

// FleetResult aggregates a fleet run in shard order.
type FleetResult struct {
	// Pl and Pd are the fleet-wide ground-truth reliability metrics.
	Pl float64
	Pd float64
	// Report sums the per-topic reconciliations.
	Report consumer.Report
	// Producer sums the per-topic producer-view counts.
	Producer producer.Counts
	// Metrics merges the sharded registries (MergeSnapshots semantics).
	Metrics MetricsSnapshot
	// Latency merges every producer's latency summary.
	Latency stats.Summary
	// Acquired is the fleet-wide acquired-message count.
	Acquired uint64
	// Throughput sums the per-topic throughputs.
	Throughput float64
	// Duration is the slowest shard's duration.
	Duration time.Duration
	// Completed reports whether every shard completed.
	Completed bool
	// Topics holds the per-shard results in topic order.
	Topics []FleetTopicResult
	// Timelines holds the entity-tagged timelines in shard-then-producer
	// order (nil unless Fleet.TimelineInterval was set). Render with
	// obs.WriteMergedCSV.
	Timelines []*obs.Timeline
	// Gamma, when set (cmd/testbed fills it via the kpi package), puts
	// the predicted γ next to the γ measured from the merged metrics on
	// the scorecard.
	Gamma *GammaComparison
}

// fleetG renders a float in the canonical form shared with the
// timeline CSV.
func fleetG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Scorecard renders the fleet result in a canonical text form — the
// byte-equality surface of the fleet determinism contract: one line per
// topic in topic order, the fleet totals, then the merged metrics
// snapshot.
func (r FleetResult) Scorecard() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet topics=%d producers=%d\n", len(r.Topics), r.fleetProducers())
	for _, tr := range r.Topics {
		e2e := tr.Metrics.SpanDelivery
		fmt.Fprintf(&b, "topic %s producers=%d partitions=%d acquired=%d distinct=%d lost=%d dup=%d extra=%d foreign=%d drained=%d group_drained=%t rebalances=%d expirations=%d e2e_viol=%d lag=%v e2e_p50=%v e2e_p95=%v e2e_p99=%v throughput=%s completed=%t\n",
			tr.Topic, tr.Producers, tr.Partitions, tr.Acquired,
			tr.Report.Distinct, tr.Report.NLost, tr.Report.NDuplicated,
			tr.Report.ExtraCopies, tr.Report.Foreign, tr.Drained,
			tr.GroupDrained, tr.Rebalances, tr.Expirations, tr.E2EViolations,
			tr.Lag, e2e.Quantile(0.50), e2e.Quantile(0.95), e2e.Quantile(0.99),
			fleetG(tr.Throughput), tr.Completed)
		if len(tr.Groups) > 1 {
			for _, gr := range tr.Groups {
				fmt.Fprintf(&b, "group %s/%s drained=%d group_drained=%t rebalances=%d expirations=%d followups=%d e2e_viol=%d coop_viol=%d lost=%d dup=%d lag=%v\n",
					tr.Topic, gr.ID, gr.Drained, gr.GroupDrained, gr.Rebalances,
					gr.Expirations, gr.CoopFollowUps, gr.E2EViolations,
					gr.CoopViolations, gr.Report.NLost, gr.Report.NDuplicated, gr.Lag)
			}
		}
	}
	fmt.Fprintf(&b, "total acquired=%d distinct=%d lost=%d dup=%d foreign=%d pl=%s pd=%s throughput=%s completed=%t\n",
		r.Acquired, r.Report.Distinct, r.Report.NLost, r.Report.NDuplicated,
		r.Report.Foreign, fleetG(r.Pl), fleetG(r.Pd), fleetG(r.Throughput), r.Completed)
	if r.Gamma != nil {
		b.WriteString(r.Gamma.Render())
	}
	b.WriteString("metrics:\n")
	b.Write(r.Metrics.Encode())
	return []byte(b.String())
}

func (r FleetResult) fleetProducers() int {
	n := 0
	for _, tr := range r.Topics {
		n += tr.Producers
	}
	return n
}

// fleetSeedStride separates shard seed streams (a prime well away from
// scalingSeedStride, which spaces the per-entity streams inside a
// shard).
const fleetSeedStride = 32452843

// RunFleet executes a fleet with default workers (GOMAXPROCS).
func RunFleet(f Fleet) (FleetResult, error) {
	return RunFleetContext(context.Background(), f, 0)
}

// splitCount spreads total over parts as evenly as possible: part i
// gets total/parts plus one of the total%parts remainder units when
// i is among the first.
func splitCount(total, parts, i int) int {
	n := total / parts
	if i < total%parts {
		n++
	}
	return n
}

// fleetShard is the precomputed input of one shard run — pure data, so
// the shard function is a pure function of (index, shard) as the exprun
// contract requires.
type fleetShard struct {
	f     Fleet
	index int
	topic string
	// first is the global index of the shard's first producer;
	// producers is how many the shard owns.
	first     int
	producers int
	// poll is the derived per-producer poll interval.
	poll time.Duration
	seed uint64
}

type fleetShardOut struct {
	topic     FleetTopicResult
	timelines []*obs.Timeline
}

// RunFleetContext is RunFleet with cancellation and an explicit worker
// bound (<= 0: GOMAXPROCS). Each topic is one independent simulation
// with index-derived seeds; the per-topic results merge in topic order,
// so scorecards and merged timelines are identical for every worker
// count.
func RunFleetContext(ctx context.Context, f Fleet, workers int) (FleetResult, error) {
	if err := f.Validate(); err != nil {
		return FleetResult{}, err
	}
	cal := f.Calibration
	if cal == (Calibration{}) {
		cal = DefaultCalibration()
	}
	if err := cal.Validate(); err != nil {
		return FleetResult{}, err
	}

	poll := f.Features.PollInterval
	if f.UsersPerSec > 0 {
		// Sec. IV-C scaling rule, solved for δ: each producer's arrival
		// period io + δ must be Producers/UsersPerSec for the aggregate
		// offered rate to hit the target.
		ioMean := time.Duration(float64(time.Second) / cal.FullLoadRate(f.Features.MessageSize))
		period := time.Duration(float64(f.Producers) * float64(time.Second) / f.UsersPerSec)
		poll = period - ioMean
		if poll < 0 {
			poll = 0
		}
	}

	seedAt := exprun.LinearSeeds(f.Seed, fleetSeedStride)
	shards := make([]fleetShard, f.Topics)
	first := 0
	for i := range shards {
		n := splitCount(f.Producers, f.Topics, i)
		shards[i] = fleetShard{
			f:         f,
			index:     i,
			topic:     fmt.Sprintf("t%03d", i),
			first:     first,
			producers: n,
			poll:      poll,
			seed:      seedAt(i),
		}
		first += n
	}

	var sharded *obs.Sharded
	if !f.DisableMetrics {
		sharded = obs.NewSharded(f.Topics)
	}
	outs, err := exprun.Map(ctx, shards,
		func(ctx context.Context, i int, sh fleetShard) (fleetShardOut, error) {
			out, err := runFleetShard(simFor(ctx), sh, cal, sharded.Shard(i))
			if err != nil {
				return fleetShardOut{}, fmt.Errorf("testbed: topic %s: %w", sh.topic, err)
			}
			return out, nil
		},
		exprun.Options{Workers: workers})
	if err != nil {
		return FleetResult{}, err
	}

	res := FleetResult{Completed: true}
	for _, out := range outs {
		tr := out.topic
		res.Topics = append(res.Topics, tr)
		res.Timelines = append(res.Timelines, out.timelines...)
		res.Acquired += tr.Acquired
		res.Report.SourceCount += tr.Report.SourceCount
		res.Report.Distinct += tr.Report.Distinct
		res.Report.NLost += tr.Report.NLost
		res.Report.NDuplicated += tr.Report.NDuplicated
		res.Report.ExtraCopies += tr.Report.ExtraCopies
		res.Report.Foreign += tr.Report.Foreign
		res.Producer.Total += tr.Producer.Total
		res.Producer.Delivered += tr.Producer.Delivered
		res.Producer.Lost += tr.Producer.Lost
		for c, n := range tr.Producer.ByCase {
			res.Producer.ByCase[c] += n
		}
		res.Latency.Merge(tr.Latency)
		res.Throughput += tr.Throughput
		if tr.Duration > res.Duration {
			res.Duration = tr.Duration
		}
		res.Completed = res.Completed && tr.Completed
	}
	if sharded != nil {
		// One deterministic fold over the shard registries; equal to
		// merging the per-topic MetricsSnapshots, but exercised through
		// the sharded-registry path the fleet exists for.
		res.Metrics = snapshotMetrics(sharded.Merged())
		res.Metrics.Cases = res.Producer.ByCase
		res.Metrics.Cases[producer.Case5] = res.Report.NDuplicated
	}
	if res.Acquired > 0 {
		res.Pl = float64(res.Report.NLost) / float64(res.Acquired)
		res.Pd = float64(res.Report.NDuplicated) / float64(res.Acquired)
	}
	return res, nil
}

// fleetEntity is one producer's wiring inside a shard.
type fleetEntity struct {
	prod     *producer.Producer
	timeline *obs.Timeline
	base     uint64
	doneAt   time.Duration
}

// runFleetShard builds and runs one topic's simulation: a cluster, the
// shard's producers (each with its own emulated path, transport
// connection and server endpoint), optional entity timelines, then the
// consumer-group drain and range reconciliation.
func runFleetShard(sim *des.Simulator, sh fleetShard, cal Calibration, reg *obs.Registry) (fleetShardOut, error) {
	f := sh.f
	o := &obs.Obs{Registry: reg}
	sim.Instrument(o)

	clstCfg := cluster.DefaultConfig()
	clstCfg.Obs = o
	clstCfg.Broker.Obs = o
	clstCfg.Broker.FlushInterval = f.BrokerFlushInterval
	clstCfg.MinISR = f.MinISR
	clst, err := cluster.New(sim, clstCfg)
	if err != nil {
		return fleetShardOut{}, err
	}
	rf := exprun.DefInt(f.ReplicationFactor, 3)
	if err := clst.CreateTopic(sh.topic, f.Partitions, rf); err != nil {
		return fleetShardOut{}, err
	}

	// The shard's consumer groups run in-simulation: each polls alongside
	// the producers, commits through the coordinator's replicated offsets
	// log (same rf as the data topic), and drains once the producers are
	// done. Fleet-wide broker faults hit their fetch and commit paths
	// too. Every group independently consumes the whole topic; they share
	// one coordinator and one offsets log.
	members := exprun.DefInt(f.ConsumersPerTopic, 1)
	nGroups := exprun.DefInt(f.Groups, 1)
	co, err := coordinator.New(sim, clst, coordinator.Config{OffsetsReplication: rf, Obs: o})
	if err != nil {
		return fleetShardOut{}, err
	}
	groups := make([]*consumer.Group, nGroups)
	for gi := range groups {
		id := "fleet"
		if nGroups > 1 {
			id = fmt.Sprintf("g%02d", gi)
		}
		grp, err := consumer.NewGroup(sim, co, clst, consumer.GroupConfig{
			ID:          id,
			Topic:       sh.topic,
			Auto:        true,
			Cooperative: f.Cooperative,
			Dedup:       f.Features.Semantics == features.SemanticsExactlyOnce,
			IdleGiveUp:  time.Second,
			Obs:         o,
		})
		if err != nil {
			return fleetShardOut{}, err
		}
		for c := 0; c < members; c++ {
			if err := grp.Join(fmt.Sprintf("c%02d", c)); err != nil {
				return fleetShardOut{}, err
			}
		}
		groups[gi] = grp
	}
	grp := groups[0]

	var cfgErr error
	onErr := func(err error) {
		if cfgErr == nil {
			cfgErr = err
		}
	}
	var topicTL *obs.Timeline
	var timelines []*obs.Timeline
	var groupTLs []*obs.Timeline
	if f.TimelineInterval > 0 {
		topicTL = obs.NewTimeline(f.TimelineInterval)
		topicTL.SetEntity(sh.topic)
		topicTL.BindClock(sim)
		timelines = append(timelines, topicTL)
		if nGroups > 1 {
			// Multi-group shards put each group's series (lag, deliveries,
			// commits, rebalances, paused time) on its own tagged entity so
			// the merged CSV separates the fan-out; the topic entity keeps
			// only the broker side.
			for gi, g := range groups {
				tl := obs.NewTimeline(f.TimelineInterval)
				tl.SetEntity(fmt.Sprintf("%s/g%02d", sh.topic, gi))
				tl.BindClock(sim)
				tl.SetGroupProbe(g.Probe)
				groupTLs = append(groupTLs, tl)
				timelines = append(timelines, tl)
			}
		}
	}
	plan := chaos.Plan{Faults: append([]chaos.Fault(nil), f.FaultPlan.Faults...)}
	if f.ConsumerFaults {
		plan.Faults = append(plan.Faults, fleetConsumerFaults(sh.seed, members, nGroups)...)
	}
	if len(plan.Faults) > 0 {
		err := chaos.Schedule(plan, chaos.Targets{
			Sim:      sim,
			Cluster:  clst,
			Group:    grp,
			Groups:   groups,
			Timeline: topicTL,
			Seed:     sh.seed,
			OnError:  onErr,
		})
		if err != nil {
			return fleetShardOut{}, fmt.Errorf("fault plan: %w", err)
		}
	}

	seedAt := exprun.LinearSeeds(sh.seed, scalingSeedStride)
	entities := make([]*fleetEntity, sh.producers)
	var base uint64
	for j := range entities {
		global := sh.first + j
		eSeed := seedAt(j)
		msgs := splitCount(f.Messages, f.Producers, global)
		ent := &fleetEntity{base: base, doneAt: -1}
		entities[j] = ent

		linkCfg := func(seed uint64) (netem.Config, error) {
			cfg := netem.Config{Bandwidth: cal.Bandwidth, QueueLimit: 1000, Obs: o}
			if f.Features.DelayMs > 0 {
				cfg.Delay = stats.Constant{Value: f.Features.DelayMs}
			}
			if f.Features.LossRate > 0 {
				loss, err := stats.NewBernoulli(f.Features.LossRate, rand.New(rand.NewPCG(seed, 0x01)))
				if err != nil {
					return cfg, err
				}
				cfg.Loss = loss
			}
			return cfg, nil
		}
		fwd, err := linkCfg(eSeed)
		if err != nil {
			return fleetShardOut{}, fmt.Errorf("producer %d forward link: %w", global, err)
		}
		rev, err := linkCfg(eSeed + 1)
		if err != nil {
			return fleetShardOut{}, fmt.Errorf("producer %d reverse link: %w", global, err)
		}
		path, err := netem.NewPath(sim, fwd, rev)
		if err != nil {
			return fleetShardOut{}, err
		}
		conn, err := transport.NewConn(sim, path, transport.Config{SendBufferLimit: cal.SocketBuffer, Obs: o})
		if err != nil {
			return fleetShardOut{}, err
		}
		srv, err := cluster.NewServer(clst, conn.Server)
		if err != nil {
			return fleetShardOut{}, err
		}
		conn.OnReset(srv.ResetParser)

		src, err := workload.NewFixedSource(f.Features.MessageSize, msgs)
		if err != nil {
			return fleetShardOut{}, err
		}
		pe := Experiment{
			Features:        f.Features,
			Seed:            eSeed,
			Partitions:      f.Partitions,
			QueueLimit:      f.QueueLimit,
			MaxInFlight:     f.MaxInFlight,
			MaxRetries:      f.MaxRetries,
			RequestTimeout:  f.RequestTimeout,
			RetryBackoff:    f.RetryBackoff,
			RetryBackoffMax: f.RetryBackoffMax,
			LingerTime:      f.LingerTime,
		}
		pcfg, err := producerConfig(pe, sh.topic)
		if err != nil {
			return fleetShardOut{}, err
		}
		pcfg.PollInterval = sh.poll
		pcfg.Partitioner = producer.PartitionKeyed
		pcfg.KeyBase = ent.base
		costs := newCostModel(cal, rand.New(rand.NewPCG(eSeed, 0x02)))
		prod, err := producer.New(sim, pcfg, costs, conn, src,
			producer.WithTimeliness(f.Features.Timeliness),
			producer.WithCompletion(func() { ent.doneAt = sim.Now() }),
			producer.WithObs(o),
			producer.WithRetryRand(rand.New(rand.NewPCG(eSeed, 0x03))),
		)
		if err != nil {
			return fleetShardOut{}, err
		}
		ent.prod = prod

		if f.TimelineInterval > 0 {
			tl := obs.NewTimeline(f.TimelineInterval)
			tl.SetEntity(fmt.Sprintf("%s/p%04d", sh.topic, global))
			tl.BindClock(sim)
			transProbe := func() obs.TransportProbe {
				p := conn.Client.Probe()
				s := conn.Server.Probe()
				p.SegmentsSent += s.SegmentsSent
				p.Retransmits += s.Retransmits
				p.RTOTimeouts += s.RTOTimeouts
				return p
			}
			tl.SetProbes(path.Probe, transProbe, prod.Probe, nil)
			tl.Sample()
			var tick *des.Ticker
			tick = des.NewTicker(sim, tl.Interval(), func() {
				if prod.Done() {
					tick.Stop()
					return
				}
				tl.Sample()
			})
			ent.timeline = tl
			timelines = append(timelines, tl)
		}
		base += uint64(msgs)
	}

	allDone := func() bool {
		for _, ent := range entities {
			if !ent.prod.Done() {
				return false
			}
		}
		return true
	}
	for _, g := range groups {
		g.SetDrainCheck(allDone)
	}
	if topicTL != nil {
		// The topic entity samples the broker side once per interval —
		// per-producer appends are not separable at the broker, so the
		// shard's broker series lives on the topic entity and the
		// per-producer series carry the client-side probes.
		topicTL.SetProbes(nil, nil, nil, func() obs.BrokerProbe { return clst.Probe(sh.topic) })
		if nGroups == 1 {
			// The consumer-group series (per-partition lag, deliveries,
			// commit acks, rebalances) also lives on the topic entity;
			// multi-group shards move them to the per-group entities.
			topicTL.SetGroupProbe(grp.Probe)
		}
		topicTL.Sample()
		var tick *des.Ticker
		tick = des.NewTicker(sim, topicTL.Interval(), func() {
			if allDone() {
				tick.Stop()
				return
			}
			topicTL.Sample()
		})
	}
	for _, tl := range groupTLs {
		tl.Sample()
		var tick *des.Ticker
		tl := tl
		tick = des.NewTicker(sim, tl.Interval(), func() {
			if allDone() {
				tick.Stop()
				return
			}
			tl.Sample()
		})
	}

	for _, ent := range entities {
		ent.prod.Start()
	}
	const eventCap = 2_000_000_000
	if f.MaxSimTime > 0 {
		if err := sim.RunUntil(f.MaxSimTime); err != nil {
			return fleetShardOut{}, fmt.Errorf("run: %w", err)
		}
	} else if err := sim.RunLimit(eventCap); err != nil {
		return fleetShardOut{}, fmt.Errorf("event cap exceeded (runaway fleet shard?): %w", err)
	}
	if cfgErr != nil {
		return fleetShardOut{}, fmt.Errorf("fault injection: %w", cfgErr)
	}

	// Final samples cover events past each ticker's stop, keeping the
	// column-sums-equal-counters invariant.
	for _, ent := range entities {
		ent.timeline.Sample()
	}
	topicTL.Sample()
	for _, tl := range groupTLs {
		tl.Sample()
	}

	tr := FleetTopicResult{
		Topic:      sh.topic,
		Producers:  sh.producers,
		Partitions: f.Partitions,
		Completed:  true,
	}
	ranges := make([]consumer.KeyRange, len(entities))
	for j, ent := range entities {
		counts := ent.prod.Counts()
		tr.Producer.Total += counts.Total
		tr.Producer.Delivered += counts.Delivered
		tr.Producer.Lost += counts.Lost
		for c, n := range counts.ByCase {
			tr.Producer.ByCase[c] += n
		}
		tr.Latency.Merge(ent.prod.Latency())
		tr.Acquired += ent.prod.Acquired()
		ranges[j] = consumer.KeyRange{Base: ent.base, Count: ent.prod.Acquired()}
		done := ent.prod.Done()
		tr.Completed = tr.Completed && done
		if ent.doneAt > tr.Duration {
			tr.Duration = ent.doneAt
		}
	}
	if !tr.Completed {
		tr.Duration = sim.Now()
	}

	sem := producer.AtLeastOnce
	switch f.Features.Semantics {
	case features.SemanticsAtMostOnce:
		sem = producer.AtMostOnce
	case features.SemanticsExactlyOnce:
		sem = producer.ExactlyOnce
	}
	regs := co.Regressions()
	tr.GroupDrained = true
	for gi, g := range groups {
		keys := g.ConsumedKeys()
		gev := g.Evidence()
		gst := co.GroupStats(gev.Group)
		gr := FleetGroupResult{
			ID:            gev.Group,
			GroupDrained:  gev.Drained,
			Rebalances:    gev.Rebalances,
			Expirations:   gst.SessionExpirations,
			CoopFollowUps: gst.CoopFollowUps,
		}
		for _, ks := range keys {
			gr.Drained += int64(len(ks))
		}
		gr.Report = consumer.ReconcileRangesKeys(ranges, keys)
		final := make([]int64, f.Partitions)
		for p := range final {
			off, err := g.Committed(int32(p))
			switch {
			case err == nil:
				final[p] = off
			case errors.Is(err, consumer.ErrNoCommit):
				final[p] = -1
			default:
				return fleetShardOut{}, fmt.Errorf("committed offset %s[%d] group %s: %w", sh.topic, p, gev.Group, err)
			}
		}
		verdict := chaos.VerifyE2E(chaos.E2EInput{
			Semantics:          sem,
			OffsetsReplication: rf,
			Plan:               plan,
			Evidence:           gev,
			ConsumedKeys:       keys,
			FinalCommitted:     final,
			Regressions:        regs,
		})
		gr.E2EViolations = len(verdict.Violations)
		coop := chaos.VerifyCoop(chaos.CoopInput{
			OffsetsReplication: rf,
			Plan:               plan,
			Evidence:           gev,
			Regressions:        regs,
		})
		gr.CoopViolations = len(coop.Violations)
		// Authoritative lag when the cluster can answer; the group's own
		// durable view when a partition ended the shard leaderless.
		if lags, err := g.LagByPartition(); err == nil {
			gr.Lag = lags
		} else {
			gr.Lag = g.Probe().LagByPartition
		}
		tr.Groups = append(tr.Groups, gr)
		tr.Drained += gr.Drained
		tr.Rebalances += gr.Rebalances
		tr.E2EViolations += gr.E2EViolations
		tr.CoopViolations += gr.CoopViolations
		tr.GroupDrained = tr.GroupDrained && gr.GroupDrained
		if gi == 0 {
			tr.Report = gr.Report
			tr.Lag = gr.Lag
		}
	}
	tr.Expirations = co.Stats().SessionExpirations
	if reg != nil {
		tr.Metrics = snapshotMetrics(reg.Snapshot())
		tr.Metrics.Cases = tr.Producer.ByCase
		tr.Metrics.Cases[producer.Case5] = tr.Report.NDuplicated
	}
	if d := tr.Duration.Seconds(); d > 0 {
		tr.Throughput = float64(tr.Report.Distinct) / d
	}
	return fleetShardOut{topic: tr, timelines: timelines}, nil
}

// fleetConsumerFaults synthesizes the per-shard consumer crash/restart
// schedule: two crash windows on seed-chosen members per group, placed
// early enough to land inside the producing phase and sequenced so the
// plan validates (a member is never crashed while already down). Each
// group draws from its own PCG stream; group 0's stream matches the
// historical single-group schedule exactly.
func fleetConsumerFaults(seed uint64, members, groups int) []chaos.Fault {
	var faults []chaos.Fault
	for g := 0; g < groups; g++ {
		rng := rand.New(rand.NewPCG(seed, 0xC0115+uint64(g)*0x9E3779B97F4A7C15))
		durat := func() time.Duration {
			return 100*time.Millisecond + time.Duration(rng.Int64N(int64(300*time.Millisecond)))
		}
		first := chaos.Fault{
			Kind:     chaos.ConsumerCrash,
			At:       50*time.Millisecond + time.Duration(rng.Int64N(int64(150*time.Millisecond))),
			Duration: durat(),
			Member:   int32(rng.IntN(members)),
			Group:    int32(g),
		}
		second := chaos.Fault{
			Kind:     chaos.ConsumerCrash,
			At:       first.At + first.Duration + 50*time.Millisecond + time.Duration(rng.Int64N(int64(200*time.Millisecond))),
			Duration: durat(),
			Member:   int32(rng.IntN(members)),
			Group:    int32(g),
		}
		faults = append(faults, first, second)
	}
	return faults
}
