package testbed

import (
	"testing"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/obs"
)

func timelineVector() features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        20,
		LossRate:       0.1,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      2,
		MessageTimeout: 800 * time.Millisecond,
	}
}

// TestRunTimelineSumsMatchCounters pins the tentpole invariant on a
// plain static run: summing the timeline's interval deltas reproduces
// the end-of-run counters exactly, including the tail past the last
// ticker sample (collect's final sample).
func TestRunTimelineSumsMatchCounters(t *testing.T) {
	tl := obs.NewTimeline(time.Second)
	res, err := Run(Experiment{
		Features: timelineVector(),
		Messages: 1500,
		Seed:     7,
		Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != tl {
		t.Fatal("Result.Timeline does not echo Experiment.Timeline")
	}
	rows := tl.Rows()
	if len(rows) < 3 {
		t.Fatalf("rows = %d, want a multi-interval run", len(rows))
	}
	var acked, lost, segs, retrans, pktsLost, appends uint64
	for _, r := range rows {
		acked += r.Acked
		lost += r.Lost
		segs += r.SegmentsSent
		retrans += r.Retransmits
		pktsLost += r.PktsLost
		appends += r.Appends
	}
	if acked != res.Producer.Delivered {
		t.Errorf("Σ acked = %d, want producer delivered %d", acked, res.Producer.Delivered)
	}
	if lost != res.Producer.Lost {
		t.Errorf("Σ lost = %d, want producer lost %d", lost, res.Producer.Lost)
	}
	if segs != res.Metrics.SegmentsSent {
		t.Errorf("Σ segments = %d, want metrics %d", segs, res.Metrics.SegmentsSent)
	}
	if retrans != res.Metrics.Retransmits {
		t.Errorf("Σ retransmits = %d, want metrics %d", retrans, res.Metrics.Retransmits)
	}
	if want := res.Metrics.PacketsLostRandom + res.Metrics.PacketsLostOverflow; pktsLost != want {
		t.Errorf("Σ packets lost = %d, want metrics %d", pktsLost, want)
	}
	if appends != res.Metrics.BrokerAppends {
		t.Errorf("Σ appends = %d, want metrics %d", appends, res.Metrics.BrokerAppends)
	}
	// Rows are stamped by the virtual clock at the sampling interval.
	for i := 1; i < len(rows)-1; i++ {
		if got := rows[i].At - rows[i-1].At; got != time.Second {
			t.Fatalf("rows %d→%d spaced %v, want the 1s interval", i-1, i, got)
		}
	}
}

// TestRunTimelineWorksWithMetricsDisabled checks the probes do not
// depend on the registry: a DisableMetrics run still yields a usable
// timeline.
func TestRunTimelineWorksWithMetricsDisabled(t *testing.T) {
	tl := obs.NewTimeline(time.Second)
	res, err := Run(Experiment{
		Features:       timelineVector(),
		Messages:       800,
		Seed:           3,
		Timeline:       tl,
		DisableMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var acked uint64
	for _, r := range tl.Rows() {
		acked += r.Acked
	}
	if acked != res.Producer.Delivered {
		t.Errorf("Σ acked = %d, want %d with metrics disabled", acked, res.Producer.Delivered)
	}
}

// TestRunScaledRejectsTimeline mirrors the tracer constraint: timeline
// samples follow one virtual clock.
func TestRunScaledRejectsTimeline(t *testing.T) {
	_, err := RunScaled(Experiment{
		Features: timelineVector(),
		Messages: 1000,
		Seed:     1,
		Timeline: obs.NewTimeline(0),
	}, 4)
	if err == nil {
		t.Fatal("scaled run accepted a timeline")
	}
}

// TestBrokerEventAnnotations checks injected failures land on the
// timeline as broker_event annotations.
func TestBrokerEventAnnotations(t *testing.T) {
	tl := obs.NewTimeline(time.Second)
	v := timelineVector()
	v.LossRate = 0
	_, err := Run(Experiment{
		Features: v,
		Messages: 1500,
		Seed:     5,
		Timeline: tl,
		BrokerFailures: []BrokerEvent{
			{At: 2 * time.Second, Broker: 1},
			{At: 4 * time.Second, Broker: 1, Recover: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, ann := range tl.Annotations() {
		if ann.Kind == obs.AnnBrokerEvent {
			kinds = append(kinds, ann.Detail)
		}
	}
	if len(kinds) != 2 {
		t.Fatalf("broker_event annotations = %v, want fail + recover", kinds)
	}
}
