package testbed

import (
	"bytes"
	"context"
	"testing"
	"time"

	"kafkarel/internal/chaos"
	"kafkarel/internal/features"
	"kafkarel/internal/obs"
)

func timelineVector() features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        20,
		LossRate:       0.1,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      2,
		MessageTimeout: 800 * time.Millisecond,
	}
}

// TestRunTimelineSumsMatchCounters pins the tentpole invariant on a
// plain static run: summing the timeline's interval deltas reproduces
// the end-of-run counters exactly, including the tail past the last
// ticker sample (collect's final sample).
func TestRunTimelineSumsMatchCounters(t *testing.T) {
	tl := obs.NewTimeline(time.Second)
	res, err := Run(Experiment{
		Features: timelineVector(),
		Messages: 1500,
		Seed:     7,
		Timeline: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != tl {
		t.Fatal("Result.Timeline does not echo Experiment.Timeline")
	}
	rows := tl.Rows()
	if len(rows) < 3 {
		t.Fatalf("rows = %d, want a multi-interval run", len(rows))
	}
	var acked, lost, segs, retrans, pktsLost, appends uint64
	for _, r := range rows {
		acked += r.Acked
		lost += r.Lost
		segs += r.SegmentsSent
		retrans += r.Retransmits
		pktsLost += r.PktsLost
		appends += r.Appends
	}
	if acked != res.Producer.Delivered {
		t.Errorf("Σ acked = %d, want producer delivered %d", acked, res.Producer.Delivered)
	}
	if lost != res.Producer.Lost {
		t.Errorf("Σ lost = %d, want producer lost %d", lost, res.Producer.Lost)
	}
	if segs != res.Metrics.SegmentsSent {
		t.Errorf("Σ segments = %d, want metrics %d", segs, res.Metrics.SegmentsSent)
	}
	if retrans != res.Metrics.Retransmits {
		t.Errorf("Σ retransmits = %d, want metrics %d", retrans, res.Metrics.Retransmits)
	}
	if want := res.Metrics.PacketsLostRandom + res.Metrics.PacketsLostOverflow; pktsLost != want {
		t.Errorf("Σ packets lost = %d, want metrics %d", pktsLost, want)
	}
	if appends != res.Metrics.BrokerAppends {
		t.Errorf("Σ appends = %d, want metrics %d", appends, res.Metrics.BrokerAppends)
	}
	// Rows are stamped by the virtual clock at the sampling interval.
	for i := 1; i < len(rows)-1; i++ {
		if got := rows[i].At - rows[i-1].At; got != time.Second {
			t.Fatalf("rows %d→%d spaced %v, want the 1s interval", i-1, i, got)
		}
	}
}

// TestRunTimelineWorksWithMetricsDisabled checks the probes do not
// depend on the registry: a DisableMetrics run still yields a usable
// timeline.
func TestRunTimelineWorksWithMetricsDisabled(t *testing.T) {
	tl := obs.NewTimeline(time.Second)
	res, err := Run(Experiment{
		Features:       timelineVector(),
		Messages:       800,
		Seed:           3,
		Timeline:       tl,
		DisableMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var acked uint64
	for _, r := range tl.Rows() {
		acked += r.Acked
	}
	if acked != res.Producer.Delivered {
		t.Errorf("Σ acked = %d, want %d with metrics disabled", acked, res.Producer.Delivered)
	}
}

// TestRunScaledTimelines checks the lifted constraint: a scaled run
// treats the experiment's timeline as an interval template and returns
// one entity-tagged timeline per producer, whose column sums match the
// merged counters and whose merged CSV is byte-identical at every
// worker count.
func TestRunScaledTimelines(t *testing.T) {
	e := Experiment{
		Features: timelineVector(),
		Messages: 1200,
		Seed:     1,
		Timeline: obs.NewTimeline(time.Second),
	}
	const producers = 3
	render := func(workers int) ([]byte, Result) {
		t.Helper()
		sub := e
		sub.Timeline = obs.NewTimeline(time.Second)
		res, err := RunScaledContext(context.Background(), sub, producers, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Timelines) != producers {
			t.Fatalf("timelines = %d, want one per producer (%d)", len(res.Timelines), producers)
		}
		var buf bytes.Buffer
		if err := obs.WriteMergedCSV(&buf, res.Timelines); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	csv1, res := render(1)
	for i, tl := range res.Timelines {
		if want := []string{"p0000", "p0001", "p0002"}[i]; tl.Entity() != want {
			t.Errorf("timeline %d entity = %q, want %q", i, tl.Entity(), want)
		}
	}
	var acked, segs uint64
	for _, tl := range res.Timelines {
		for _, r := range tl.Rows() {
			acked += r.Acked
			segs += r.SegmentsSent
		}
	}
	if acked != res.Producer.Delivered {
		t.Errorf("Σ acked over all timelines = %d, want merged delivered %d", acked, res.Producer.Delivered)
	}
	if segs != res.Metrics.SegmentsSent {
		t.Errorf("Σ segments = %d, want merged metrics %d", segs, res.Metrics.SegmentsSent)
	}
	for _, workers := range []int{4, 8} {
		csvN, _ := render(workers)
		if !bytes.Equal(csv1, csvN) {
			t.Errorf("merged timeline CSV differs between workers=1 and workers=%d", workers)
		}
	}
}

// TestBrokerEventAnnotations checks injected failures land on the
// timeline as broker_event annotations.
func TestBrokerEventAnnotations(t *testing.T) {
	tl := obs.NewTimeline(time.Second)
	v := timelineVector()
	v.LossRate = 0
	_, err := Run(Experiment{
		Features: v,
		Messages: 1500,
		Seed:     5,
		Timeline: tl,
		FaultPlan: chaos.Plan{Faults: []chaos.Fault{
			{Kind: chaos.BrokerCrash, At: 2 * time.Second, Broker: 1},
			{Kind: chaos.BrokerRecover, At: 4 * time.Second, Broker: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, ann := range tl.Annotations() {
		if ann.Kind == obs.AnnBrokerEvent {
			kinds = append(kinds, ann.Detail)
		}
	}
	if len(kinds) != 2 {
		t.Fatalf("broker_event annotations = %v, want fail + recover", kinds)
	}
}
