package testbed

import (
	"fmt"
	"strings"
	"time"

	"kafkarel/internal/obs"
	"kafkarel/internal/wire"
)

// MetricsSnapshot is the per-run observability summary returned next to
// {P_l, P_d}. It is a comparable struct of fixed-size scalars and
// arrays so determinism tests can require byte equality across worker
// counts, and Merge can aggregate scaled runs deterministically.
type MetricsSnapshot struct {
	// DES kernel.
	SimEvents uint64

	// Transport.
	SegmentsSent    uint64
	Retransmits     uint64
	FastRetransmits uint64
	RTOTimeouts     uint64
	RTOMax          time.Duration
	AcksSent        uint64

	// Network emulation.
	PacketsLostRandom   uint64
	PacketsLostOverflow uint64

	// Producer.
	RecordsEnqueued uint64
	BatchesSent     uint64
	BatchRetries    uint64
	RequestTimeouts uint64
	// QueueDepth histogram: bucket i counts enqueues that left the
	// accumulator at depth <= obs.QueueDepthBounds[i]; the last bucket
	// is the overflow.
	QueueDepth [obs.QueueDepthBuckets]uint64

	// Cases is the Table I distribution indexed by producer.Case
	// (index 0, CaseUnresolved, stays zero in completed runs). Index 5
	// is Case 5 — consumer-observed duplicated messages — which only
	// reconciliation can attribute.
	Cases [6]uint64

	// ProduceErrors counts failed produce responses by wire error code
	// (index = code; index 0, ErrNone, stays zero).
	ProduceErrors [wire.NumErrorCodes]uint64

	// Broker / cluster.
	BrokerProduceRequests uint64
	BrokerAppends         uint64
	BrokerDuplicates      uint64
	BrokerDupAppends      uint64
	BrokerTruncated       uint64
	BrokerUnclean         uint64
	Replications          uint64
	ReplicationFactor     int64 // config-valued gauge; max across shards

	// Delivery accounting for the measured KPI.
	RecordsDelivered  uint64 // producer acks resolved delivered
	RecordsLost       uint64 // producer records resolved lost
	NetBytesDelivered uint64 // payload bytes the network delivered

	// Consumer group.
	ConsumerDelivered   uint64
	ConsumerRedelivered uint64
	ConsumerCommitAcks  uint64
	ConsumerLagEnd      int64 // lag gauge at snapshot time (sums across shards)

	// Per-record latency spans, all timed from producer enqueue except
	// SpanCommit (commit send → durable ack), Rebalance (prepare →
	// generation bump) and Paused (per-partition windows without
	// polling coverage — the consumer-visible rebalance cost).
	SpanSend       SpanHist
	SpanAppend     SpanHist
	SpanReplicated SpanHist
	SpanAck        SpanHist
	SpanDelivery   SpanHist
	SpanCommit     SpanHist
	Rebalance      SpanHist
	Paused         SpanHist
}

// SpanHist is one latency-span histogram flattened to fixed-size
// arrays so MetricsSnapshot stays a comparable struct. Buckets follow
// obs.LatencyBounds; Max is the exact largest observation.
type SpanHist struct {
	Counts [obs.LatencyBuckets]uint64
	Max    time.Duration
}

func spanHist(s obs.Snapshot, name string) SpanHist {
	var out SpanHist
	if h, ok := s.Histogram(name); ok {
		copy(out.Counts[:], h.Counts)
		out.Max = time.Duration(h.Max)
	}
	return out
}

// value reconstitutes the obs view for quantile math.
func (s SpanHist) value() obs.HistogramValue {
	return obs.HistogramValue{Bounds: obs.LatencyBounds[:], Counts: s.Counts[:], Max: int64(s.Max)}
}

// Total returns the observation count.
func (s SpanHist) Total() uint64 { return s.value().Total() }

// Quantile returns the exact-clamped q-quantile (see
// obs.HistogramValue.Quantile).
func (s SpanHist) Quantile(q float64) time.Duration {
	return time.Duration(s.value().Quantile(q))
}

// merge adds counts and takes the max.
func (s *SpanHist) merge(o SpanHist) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// encode renders "name total=N p50=... p95=... p99=... max=..." — the
// quantiles are derived, so byte equality still follows the buckets.
func (s SpanHist) encode(b *strings.Builder, name string) {
	fmt.Fprintf(b, "%s total=%d p50=%v p95=%v p99=%v max=%v\n",
		name, s.Total(), s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Max)
}

// snapshotMetrics converts a registry snapshot into the fixed struct.
func snapshotMetrics(s obs.Snapshot) MetricsSnapshot {
	m := MetricsSnapshot{
		SimEvents:             s.Counter(obs.MSimEvents),
		SegmentsSent:          s.Counter(obs.MSegmentsSent),
		Retransmits:           s.Counter(obs.MRetransmits),
		FastRetransmits:       s.Counter(obs.MFastRetransmits),
		RTOTimeouts:           s.Counter(obs.MRTOTimeouts),
		RTOMax:                time.Duration(s.Gauge(obs.MRTOMaxNs)),
		AcksSent:              s.Counter(obs.MAcksSent),
		PacketsLostRandom:     s.Counter(obs.MNetLostRandom),
		PacketsLostOverflow:   s.Counter(obs.MNetLostOverflow),
		RecordsEnqueued:       s.Counter(obs.MRecordsEnqueued),
		BatchesSent:           s.Counter(obs.MBatchesSent),
		BatchRetries:          s.Counter(obs.MBatchRetries),
		RequestTimeouts:       s.Counter(obs.MRequestTimeouts),
		BrokerProduceRequests: s.Counter(obs.MBrokerProduce),
		BrokerAppends:         s.Counter(obs.MBrokerAppends),
		BrokerDuplicates:      s.Counter(obs.MBrokerDuplicates),
		BrokerDupAppends:      s.Counter(obs.MBrokerDupAppends),
		BrokerTruncated:       s.Counter(obs.MBrokerTruncated),
		BrokerUnclean:         s.Counter(obs.MBrokerUnclean),
		Replications:          s.Counter(obs.MReplications),
		ReplicationFactor:     s.Gauge(obs.MReplicationFactor),
		RecordsDelivered:      s.Counter(obs.MRecordsDelivered),
		RecordsLost:           s.Counter(obs.MRecordsLost),
		NetBytesDelivered:     s.Counter(obs.MNetBytesDelivered),
		ConsumerDelivered:     s.Counter(obs.MConsumerDelivered),
		ConsumerRedelivered:   s.Counter(obs.MConsumerRedelivered),
		ConsumerCommitAcks:    s.Counter(obs.MConsumerCommitAcks),
		ConsumerLagEnd:        s.Gauge(obs.MConsumerLag),
		SpanSend:              spanHist(s, obs.MSpanSend),
		SpanAppend:            spanHist(s, obs.MSpanAppend),
		SpanReplicated:        spanHist(s, obs.MSpanReplicated),
		SpanAck:               spanHist(s, obs.MSpanAck),
		SpanDelivery:          spanHist(s, obs.MSpanDelivery),
		SpanCommit:            spanHist(s, obs.MSpanCommit),
		Rebalance:             spanHist(s, obs.MRebalanceNs),
		Paused:                spanHist(s, obs.MPausedNs),
	}
	for c := 1; c < wire.NumErrorCodes; c++ {
		m.ProduceErrors[c] = s.Counter(obs.ProduceErrorMetric(wire.ErrorCode(c).String()))
	}
	if h, ok := s.Histogram(obs.MQueueDepth); ok {
		for i := 0; i < len(m.QueueDepth) && i < len(h.Counts); i++ {
			m.QueueDepth[i] = h.Counts[i]
		}
	}
	return m
}

// Merge accumulates another run's snapshot into m: counters add,
// RTOMax takes the maximum. Merging is commutative and associative, so
// a scaled run's aggregate is identical for every worker count.
func (m *MetricsSnapshot) Merge(o MetricsSnapshot) {
	m.SimEvents += o.SimEvents
	m.SegmentsSent += o.SegmentsSent
	m.Retransmits += o.Retransmits
	m.FastRetransmits += o.FastRetransmits
	m.RTOTimeouts += o.RTOTimeouts
	if o.RTOMax > m.RTOMax {
		m.RTOMax = o.RTOMax
	}
	m.AcksSent += o.AcksSent
	m.PacketsLostRandom += o.PacketsLostRandom
	m.PacketsLostOverflow += o.PacketsLostOverflow
	m.RecordsEnqueued += o.RecordsEnqueued
	m.BatchesSent += o.BatchesSent
	m.BatchRetries += o.BatchRetries
	m.RequestTimeouts += o.RequestTimeouts
	for i := range m.QueueDepth {
		m.QueueDepth[i] += o.QueueDepth[i]
	}
	for i := range m.Cases {
		m.Cases[i] += o.Cases[i]
	}
	for i := range m.ProduceErrors {
		m.ProduceErrors[i] += o.ProduceErrors[i]
	}
	m.BrokerProduceRequests += o.BrokerProduceRequests
	m.BrokerAppends += o.BrokerAppends
	m.BrokerDuplicates += o.BrokerDuplicates
	m.BrokerDupAppends += o.BrokerDupAppends
	m.BrokerTruncated += o.BrokerTruncated
	m.BrokerUnclean += o.BrokerUnclean
	m.Replications += o.Replications
	if o.ReplicationFactor > m.ReplicationFactor { // max-kind gauge
		m.ReplicationFactor = o.ReplicationFactor
	}
	m.RecordsDelivered += o.RecordsDelivered
	m.RecordsLost += o.RecordsLost
	m.NetBytesDelivered += o.NetBytesDelivered
	m.ConsumerDelivered += o.ConsumerDelivered
	m.ConsumerRedelivered += o.ConsumerRedelivered
	m.ConsumerCommitAcks += o.ConsumerCommitAcks
	m.ConsumerLagEnd += o.ConsumerLagEnd // sum-kind gauge: backlogs add
	m.SpanSend.merge(o.SpanSend)
	m.SpanAppend.merge(o.SpanAppend)
	m.SpanReplicated.merge(o.SpanReplicated)
	m.SpanAck.merge(o.SpanAck)
	m.SpanDelivery.merge(o.SpanDelivery)
	m.SpanCommit.merge(o.SpanCommit)
	m.Rebalance.merge(o.Rebalance)
	m.Paused.merge(o.Paused)
}

// Encode renders the snapshot in a canonical text form, one metric per
// line, for byte-equality comparison and human inspection.
func (m MetricsSnapshot) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "sim.events %d\n", m.SimEvents)
	fmt.Fprintf(&b, "transport.segments_sent %d\n", m.SegmentsSent)
	fmt.Fprintf(&b, "transport.retransmits %d\n", m.Retransmits)
	fmt.Fprintf(&b, "transport.fast_retransmits %d\n", m.FastRetransmits)
	fmt.Fprintf(&b, "transport.rto_timeouts %d\n", m.RTOTimeouts)
	fmt.Fprintf(&b, "transport.rto_max %v\n", m.RTOMax)
	fmt.Fprintf(&b, "transport.acks_sent %d\n", m.AcksSent)
	fmt.Fprintf(&b, "netem.lost_random %d\n", m.PacketsLostRandom)
	fmt.Fprintf(&b, "netem.lost_overflow %d\n", m.PacketsLostOverflow)
	fmt.Fprintf(&b, "producer.records_enqueued %d\n", m.RecordsEnqueued)
	fmt.Fprintf(&b, "producer.batches_sent %d\n", m.BatchesSent)
	fmt.Fprintf(&b, "producer.batch_retries %d\n", m.BatchRetries)
	fmt.Fprintf(&b, "producer.request_timeouts %d\n", m.RequestTimeouts)
	fmt.Fprintf(&b, "producer.queue_depth %v\n", m.QueueDepth)
	fmt.Fprintf(&b, "cases %v\n", m.Cases)
	fmt.Fprintf(&b, "producer.produce_errors %v\n", m.ProduceErrors)
	fmt.Fprintf(&b, "broker.produce_requests %d\n", m.BrokerProduceRequests)
	fmt.Fprintf(&b, "broker.appends %d\n", m.BrokerAppends)
	fmt.Fprintf(&b, "broker.duplicates_dropped %d\n", m.BrokerDuplicates)
	fmt.Fprintf(&b, "broker.duplicate_appends %d\n", m.BrokerDupAppends)
	fmt.Fprintf(&b, "broker.records_truncated %d\n", m.BrokerTruncated)
	fmt.Fprintf(&b, "broker.unclean_restarts %d\n", m.BrokerUnclean)
	fmt.Fprintf(&b, "cluster.replications %d\n", m.Replications)
	fmt.Fprintf(&b, "cluster.replication_factor %d\n", m.ReplicationFactor)
	fmt.Fprintf(&b, "producer.records_delivered %d\n", m.RecordsDelivered)
	fmt.Fprintf(&b, "producer.records_lost %d\n", m.RecordsLost)
	fmt.Fprintf(&b, "netem.bytes_delivered %d\n", m.NetBytesDelivered)
	fmt.Fprintf(&b, "consumer.delivered %d\n", m.ConsumerDelivered)
	fmt.Fprintf(&b, "consumer.redelivered %d\n", m.ConsumerRedelivered)
	fmt.Fprintf(&b, "consumer.commit_acks %d\n", m.ConsumerCommitAcks)
	fmt.Fprintf(&b, "consumer.lag_end %d\n", m.ConsumerLagEnd)
	m.SpanSend.encode(&b, "span.enqueue_to_send")
	m.SpanAppend.encode(&b, "span.enqueue_to_append")
	m.SpanReplicated.encode(&b, "span.enqueue_to_replicated")
	m.SpanAck.encode(&b, "span.enqueue_to_ack")
	m.SpanDelivery.encode(&b, "span.enqueue_to_delivery")
	m.SpanCommit.encode(&b, "span.commit")
	m.Rebalance.encode(&b, "coordinator.rebalance")
	m.Paused.encode(&b, "consumer.paused")
	return []byte(b.String())
}
